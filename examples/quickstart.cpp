// Quickstart: the whole NEC loop in ~60 lines of user code.
//
//   1. Enroll the target speaker ("Bob") from three short reference clips.
//   2. Monitor a mixed conversation (Bob + Alice).
//   3. Generate the shadow, modulate it onto a 27 kHz carrier, and play it
//      through the simulated air channel at a smartphone recorder.
//   4. Compare what the recorder captured with and without NEC.
//
// Writes listenable WAVs into ./quickstart_output/.
#include <cstdio>
#include <filesystem>

#include "audio/wav_io.h"
#include "core/experiment.h"
#include "core/model_cache.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"

int main() {
  using namespace nec;

  // A trained selector + encoder (trains once and caches on first run).
  core::StandardModel model = core::StandardModel::Get(/*verbose=*/true);
  core::NecPipeline pipeline(std::move(*model.selector), model.encoder, {});

  // Two synthetic people: Bob (to protect) and Alice (to leave alone).
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto bob = synth::SpeakerProfile::FromSeed(2024);
  const auto alice = synth::SpeakerProfile::FromSeed(7);

  // 1. Enrollment: 3 reference clips of 3 s, like the paper.
  const auto references = builder.MakeReferenceAudios(bob, 3, /*seed=*/1);
  pipeline.Enroll(references);
  std::printf("enrolled Bob: %zu-dim d-vector\n", pipeline.dvector().size());

  // 2.-3. One conversation through the full physical chain.
  const synth::MixInstance conversation = builder.MakeInstance(
      bob, synth::Scenario::kJointConversation, /*seed=*/42, &alice);
  core::ScenarioRunner runner;
  core::ScenarioSetup setup;  // defaults: 1 m distances, reference recorder
  const core::ScenarioResult result =
      runner.Run(pipeline, conversation, setup);

  // 4. Score it.
  const double bob_before = metrics::Sdr(
      result.bob_at_recorder.samples(), result.recorded_without_nec.samples());
  const double bob_after = metrics::Sdr(
      result.bob_at_recorder.samples(), result.recorded_with_nec.samples());
  const double alice_before = metrics::Sdr(
      result.bk_at_recorder.samples(), result.recorded_without_nec.samples());
  const double alice_after = metrics::Sdr(
      result.bk_at_recorder.samples(), result.recorded_with_nec.samples());

  std::printf("\nrecorder's view (SDR, higher = more audible):\n");
  std::printf("  Bob   : %6.2f dB -> %6.2f dB   %s\n", bob_before, bob_after,
              bob_after < bob_before - 3 ? "(hidden)" : "");
  std::printf("  Alice : %6.2f dB -> %6.2f dB   %s\n", alice_before,
              alice_after, alice_after >= alice_before ? "(retained)" : "");
  std::printf("  ultrasonic emitter power: %.1f dB_SPL @5 cm\n",
              result.emit_spl_db);

  const std::filesystem::path out = "quickstart_output";
  std::filesystem::create_directories(out);
  audio::WriteWav((out / "bob_clean.wav").string(), conversation.target);
  audio::WriteWav((out / "mixed.wav").string(), conversation.mixed);
  audio::WriteWav((out / "recorded_without_nec.wav").string(),
                  result.recorded_without_nec);
  audio::WriteWav((out / "recorded_with_nec.wav").string(),
                  result.recorded_with_nec);
  audio::WriteWav((out / "shadow_baseband.wav").string(),
                  result.shadow_baseband);
  std::printf("\nwrote WAVs to %s/ — listen to recorded_with_nec.wav vs "
              "recorded_without_nec.wav\n", out.string().c_str());
  return 0;
}
