// Scenario example — speaker enrollment / verification tool.
//
// Usage:
//   enrollment_tool                      demo on synthetic speakers
//   enrollment_tool ref1.wav ref2.wav [ref3.wav] probe.wav
//                                        enroll from reference WAVs and
//                                        report the probe's similarity
//
// Demonstrates the encoder in isolation: the d-vector of reference audio
// is a stable voiceprint — same-speaker probes score high cosine
// similarity, other speakers low (the property the selector conditions
// on).
#include <cstdio>
#include <string>
#include <vector>

#include "audio/wav_io.h"
#include "encoder/encoder.h"
#include "synth/dataset.h"

namespace {

using namespace nec;

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

int RunDemo() {
  std::printf("no WAVs given — running the synthetic demo\n");
  // The verification demo uses the trained GE2E d-vector, which separates
  // speakers much more sharply than the deterministic LAS embedding (the
  // trade-off the paper's encoder choice reflects).
  std::printf("training the GE2E encoder on synthetic speakers...\n\n");
  encoder::NeuralEncoder enc({.num_mels = 40, .hidden = 64,
                              .embedding_dim = 32});
  enc.Train({.num_speakers = 20, .utterances_per_speaker = 4,
             .steps = 60, .seed = 99});
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto speakers = synth::DatasetBuilder::MakeSpeakers(3, 4242);

  // Enroll speaker 0 from three clips.
  const auto refs = builder.MakeReferenceAudios(speakers[0], 3, 10);
  const auto voiceprint = enc.EmbedReferences(refs);
  std::printf("enrolled %s (3 reference clips, %zu-dim d-vector)\n",
              speakers[0].name.c_str(), voiceprint.size());

  std::printf("\n%-14s %-12s %10s\n", "probe speaker", "utterance",
              "cosine");
  for (int s = 0; s < 3; ++s) {
    for (int u = 0; u < 2; ++u) {
      const auto utt = builder.MakeUtterance(
          speakers[static_cast<std::size_t>(s)],
          static_cast<std::uint64_t>(100 + s * 10 + u));
      const double sim = Cosine(voiceprint, enc.Embed(utt.wave));
      std::printf("%-14s utt-%-8d %10.3f  %s\n",
                  speakers[static_cast<std::size_t>(s)].name.c_str(), u,
                  sim,
                  s == 0 ? (sim > 0.5 ? "<- target (accept)" : "<- MISS")
                         : (sim < 0.5 ? "" : "<- FALSE ACCEPT"));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return RunDemo();
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s [ref1.wav ref2.wav [ref3.wav] probe.wav]\n",
                 argv[0]);
    return 2;
  }
  try {
    encoder::LasEncoder enc(40);
    std::vector<audio::Waveform> refs;
    for (int i = 1; i + 1 < argc; ++i) {
      refs.push_back(audio::ReadWav(argv[i]));
      std::printf("reference %d: %s (%.1f s)\n", i, argv[i],
                  refs.back().duration());
    }
    const audio::Waveform probe = audio::ReadWav(argv[argc - 1]);
    const auto voiceprint = enc.EmbedReferences(refs);
    const double sim = Cosine(voiceprint, enc.Embed(probe));
    std::printf("probe %s: cosine similarity %.3f -> %s\n", argv[argc - 1],
                sim, sim > 0.75 ? "same speaker" : "different speaker");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
