// necctl — command-line front end for the NEC library.
//
//   necctl synth   --seed N --text "hot coffee" --out out.wav
//                  synthesize a sentence in a seeded synthetic voice
//   necctl noise   --type babble|factory|vehicle|white --seconds S --out out.wav
//                  generate a NOISEX-style noise bed
//   necctl shadow  --ref r1.wav [--ref r2.wav ...] --mixed m.wav
//                  --out shadow.wav [--modulated mod.wav] [--carrier 27000]
//                  enroll a target from reference WAVs and emit the shadow
//                  (and optionally the modulated ultrasound at 192 kHz)
//   necctl probe   --device "Moto Z4"
//                  sweep carriers against a Table III device model
//   necctl devices
//                  list the Table III device models
//   necctl stats   [--url http://127.0.0.1:9464] [--connect-timeout-ms N]
//                  [--read-timeout-ms N]
//                  scrape a running necd's metrics endpoint and render a
//                  human-readable table (counters, latency quantiles,
//                  per-session health)
//   necctl loadgen --endpoints host:port[,host:port...] [--sessions N]
//                  [--connections C] [--chunks K] [--streams P] [--seed S]
//                  [--max-seconds T] [--secret S] [--json]
//                  drive N concurrent synthetic wire sessions against a
//                  networked necd (shard or router) and report chunks/s +
//                  latency quantiles; --secret runs the v2 auth handshake
//                  (rejections are reported as their own class, distinct
//                  from refused/timeout)
//   necctl drain   --url http://127.0.0.1:9464 --shard host:port
//                  ask a router (via its metrics endpoint) to start a
//                  zero-fault draining reshard of one shard
//   necctl trace   --url http://host:port [--url ...] [--file t.json ...]
//                  [--out trace-merged.json] [--expect-cross-flow]
//                  pull per-process trace rings (GET /trace) and/or read
//                  dumped trace files, merge them into ONE Perfetto-loadable
//                  JSON (each source a distinct pid, wire-propagated flow
//                  ids preserved so client→router→shard arrows connect)
//   necctl top     [--url http://127.0.0.1:9464] [--interval-ms N] [--once]
//                  refresh-loop terminal view over a router's /fleet.json:
//                  per-shard chunks/s, e2e p50/p99, queue depth, degradation
//                  rungs and fault counters
//
// `loadgen --trace-out FILE` additionally records the client-side spans
// (and mints the wire flow ids) and dumps them for `trace --file`.
//
// Every subcommand works offline on WAV files — except `stats`,
// `loadgen`, `trace` and `top`, which talk to a live necd — so the
// pipeline can be exercised on real recordings, not just the synthetic
// corpus.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audio/wav_io.h"
#include "channel/modulation.h"
#include "core/carrier_probe.h"
#include "core/model_cache.h"
#include "core/pipeline.h"
#include "net/loadgen.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/dataset.h"
#include "synth/noise.h"

namespace {

using namespace nec;

struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> refs;
  /// Repeatable flags: `trace` merges several --url / --file sources.
  std::vector<std::string> urls;
  std::vector<std::string> files;

  static Args Parse(int argc, char** argv, int start) {
    Args a;
    for (int i = start; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      const char* name = argv[i] + 2;
      // A flag followed by another --flag (or nothing) is a bare boolean,
      // e.g. `loadgen ... --json`.
      const bool has_value =
          i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0;
      if (std::strcmp(name, "ref") == 0) {
        if (has_value) a.refs.emplace_back(argv[++i]);
      } else if (has_value) {
        a.flags[name] = argv[++i];
        // url/file stay in the map too (stats/drain read the last one);
        // the vectors keep every occurrence for `trace`.
        if (std::strcmp(name, "url") == 0) a.urls.push_back(a.flags[name]);
        if (std::strcmp(name, "file") == 0) a.files.push_back(a.flags[name]);
      } else {
        a.flags[name] = "1";
      }
    }
    return a;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

int CmdSynth(const Args& args) {
  const std::uint64_t seed = std::stoull(args.Get("seed", "1"));
  const std::string text = args.Get("text", "my ideal morning begins with hot coffee");
  const std::string out = args.Get("out", "synth.wav");
  synth::Synthesizer synth({.sample_rate = 16000});
  const auto utt = synth.SynthesizeSentence(
      synth::SpeakerProfile::FromSeed(seed), text, seed + 1);
  audio::WriteWav(out, utt.wave);
  std::printf("wrote %s (%.2f s, voice seed %llu)\n", out.c_str(),
              utt.wave.duration(), static_cast<unsigned long long>(seed));
  return 0;
}

int CmdNoise(const Args& args) {
  const std::string type_name = args.Get("type", "babble");
  const double seconds = std::stod(args.Get("seconds", "3"));
  const std::string out = args.Get("out", "noise.wav");
  synth::NoiseType type = synth::NoiseType::kBabble;
  if (type_name == "white") type = synth::NoiseType::kWhite;
  else if (type_name == "factory") type = synth::NoiseType::kFactory;
  else if (type_name == "vehicle") type = synth::NoiseType::kVehicle;
  else if (type_name != "babble") {
    std::fprintf(stderr, "unknown noise type: %s\n", type_name.c_str());
    return 2;
  }
  const auto wave = synth::GenerateNoise(
      type, 16000, static_cast<std::size_t>(seconds * 16000),
      std::stoull(args.Get("seed", "1")));
  audio::WriteWav(out, wave);
  std::printf("wrote %s (%s, %.1f s)\n", out.c_str(), type_name.c_str(),
              seconds);
  return 0;
}

int CmdShadow(const Args& args) {
  if (args.refs.empty() || !args.flags.count("mixed")) {
    std::fprintf(stderr,
                 "usage: necctl shadow --ref r.wav [...] --mixed m.wav "
                 "--out shadow.wav [--modulated mod.wav] [--carrier hz]\n");
    return 2;
  }
  core::StandardModel model = core::StandardModel::Get(true);
  core::NecPipeline pipeline(std::move(*model.selector), model.encoder, {});

  std::vector<audio::Waveform> refs;
  for (const std::string& path : args.refs) {
    refs.push_back(audio::ReadWav(path));
  }
  pipeline.Enroll(refs);

  const audio::Waveform mixed = audio::ReadWav(args.flags.at("mixed"));
  const audio::Waveform shadow = pipeline.GenerateShadow(mixed);
  const std::string out = args.Get("out", "shadow.wav");
  audio::WriteWav(out, shadow);
  std::printf("wrote %s (baseband shadow, %.2f s)\n", out.c_str(),
              shadow.duration());

  if (args.flags.count("modulated")) {
    channel::ModulationConfig mod;
    mod.carrier_hz = std::stod(args.Get("carrier", "27000"));
    const audio::Waveform ultra = channel::ModulateAm(shadow, mod);
    audio::WriteWav(args.flags.at("modulated"), ultra,
                    audio::WavEncoding::kFloat32);
    std::printf("wrote %s (192 kHz ultrasound, carrier %.1f kHz)\n",
                args.flags.at("modulated").c_str(), mod.carrier_hz / 1000);
  }
  return 0;
}

int CmdProbe(const Args& args) {
  const std::string model = args.Get("device", "Moto Z4");
  const auto& dev = channel::FindDevice(model);
  std::printf("probing %s (%s)...\n", dev.model.c_str(), dev.brand.c_str());
  core::CarrierProbeOptions opt;
  opt.step_hz = 500.0;
  const auto resp = core::ProbeCarrierResponse(dev, opt);
  for (std::size_t i = 0; i < resp.carrier_hz.size(); ++i) {
    const int bars = static_cast<int>(
        40.0 * resp.demod_level[i] /
        (*std::max_element(resp.demod_level.begin(),
                           resp.demod_level.end()) + 1e-12));
    std::printf("%5.1f kHz |%.*s\n", resp.carrier_hz[i] / 1000.0, bars,
                "########################################");
  }
  std::printf("best carrier %.1f kHz, acceptance band %.1f-%.1f kHz "
              "(paper: %.0f-%.0f kHz, best %.1f)\n",
              resp.best_carrier_hz / 1000, resp.band_lo_hz / 1000,
              resp.band_hi_hz / 1000, dev.paper_carrier_lo_hz / 1000,
              dev.paper_carrier_hi_hz / 1000,
              dev.paper_best_carrier_hz / 1000);
  return 0;
}

int CmdDevices() {
  std::printf("%-12s %-10s %-14s %s\n", "model", "brand", "carrier band",
              "paper max distance");
  for (const auto& d : channel::Table3Devices()) {
    std::printf("%-12s %-10s %4.0f-%2.0f kHz     %.2f m\n", d.model.c_str(),
                d.brand.c_str(), d.paper_carrier_lo_hz / 1000,
                d.paper_carrier_hi_hz / 1000, d.paper_max_distance_m);
  }
  return 0;
}

// Scrapes a live necd (`--metrics-port`) and renders the Prometheus
// exposition as an operator-facing table. Going through the public
// /metrics endpoint — rather than a private side channel — keeps necctl
// honest: anything it can show, any Prometheus server can scrape too.
int CmdStats(const Args& args) {
  const std::string url = args.Get("url", "http://127.0.0.1:9464");
  std::string host, path, error;
  int port = 0;
  if (!obs::ParseHttpUrl(url, &host, &port, &path)) {
    std::fprintf(stderr, "necctl stats: malformed url: %s\n", url.c_str());
    return 2;
  }

  // Explicit deadlines so a dead daemon ("connection refused"), a
  // black-holed address ("connect timed out"), and a wedged one ("read
  // timed out") each fail fast with a distinct message instead of
  // hanging the terminal.
  obs::HttpGetOptions http_options;
  http_options.connect_timeout_ms =
      std::stoi(args.Get("connect-timeout-ms", "2000"));
  http_options.read_timeout_ms =
      std::stoi(args.Get("read-timeout-ms", "5000"));

  std::string body;
  int status = 0;
  if (!obs::HttpGet(host, port, "/healthz", &body, &status, &error,
                    http_options)) {
    std::fprintf(stderr, "necctl stats: %s:%d unreachable: %s\n",
                 host.c_str(), port, error.c_str());
    return 1;
  }
  std::printf("necd @ %s:%d  %s", host.c_str(), port,
              status == 200 ? body.c_str() : "unhealthy\n");

  if (!obs::HttpGet(host, port, "/metrics", &body, &status, &error,
                    http_options) ||
      status != 200) {
    std::fprintf(stderr,
                 "necctl stats: bad response from /metrics (%s, status %d)\n",
                 error.empty() ? "non-200" : error.c_str(), status);
    return 1;
  }
  std::vector<obs::MetricFamily> families;
  if (!obs::ParsePrometheusText(body, &families, &error)) {
    std::fprintf(stderr, "necctl stats: bad exposition: %s\n", error.c_str());
    return 1;
  }

  std::printf("%-34s %14s\n", "metric", "value");
  for (const obs::MetricFamily& f : families) {
    if (f.type == obs::MetricType::kHistogram) continue;
    for (const obs::Metric& m : f.metrics) {
      std::string name = f.name;
      for (const auto& [k, v] : m.labels) {
        name += "{" + k + "=" + v + "}";
      }
      std::printf("%-34s %14.6g\n", name.c_str(), m.value);
    }
  }
  for (const obs::MetricFamily& f : families) {
    if (f.type != obs::MetricType::kHistogram) continue;
    for (const obs::Metric& m : f.metrics) {
      const obs::HistogramData& h = m.histogram;
      std::printf("%s: count %llu", f.name.c_str(),
                  static_cast<unsigned long long>(h.count));
      if (h.count > 0) {
        std::printf("  mean %.2f ms  p50 %.2f  p95 %.2f  p99 %.2f",
                    1e3 * h.sum / static_cast<double>(h.count),
                    1e3 * obs::HistogramQuantile(h, 0.50),
                    1e3 * obs::HistogramQuantile(h, 0.95),
                    1e3 * obs::HistogramQuantile(h, 0.99));
      }
      std::printf("\n");
    }
  }

  if (obs::HttpGet(host, port, "/sessions", &body, &status, &error,
                   http_options) &&
      status == 200) {
    std::printf("sessions: %s", body.c_str());
  }
  return 0;
}

// Drives synthetic concurrent sessions against a networked necd (a
// shard's --listen port or a router) and prints throughput + latency.
int CmdLoadgen(const Args& args) {
  net::LoadGenOptions options;
  const std::string endpoints = args.Get("endpoints", "127.0.0.1:9465");
  std::size_t start = 0;
  while (start <= endpoints.size()) {
    std::size_t end = endpoints.find(',', start);
    if (end == std::string::npos) end = endpoints.size();
    if (end > start) {
      options.endpoints.push_back(endpoints.substr(start, end - start));
    }
    if (end == endpoints.size()) break;
    start = end + 1;
  }
  options.sessions = std::stoul(args.Get("sessions", "64"));
  options.connections = std::stoul(args.Get("connections", "8"));
  options.chunks_per_session = std::stoul(args.Get("chunks", "4"));
  options.stream_pool = std::stoul(args.Get("streams", "8"));
  options.seed = std::stoull(args.Get("seed", "1"));
  options.max_seconds = std::stod(args.Get("max-seconds", "120"));
  options.secret = args.Get("secret", "");

  // --trace-out arms the client-side recorder so every SubmitChunk mints
  // a wire-propagated flow id; the ring is dumped after the run and can
  // be merged with the servers' /trace pulls via `necctl trace --file`.
  const std::string trace_out = args.Get("trace-out", "");
  if (!trace_out.empty()) obs::TraceRecorder::Global().Enable();

  // In --json mode stdout must carry exactly the JSON object (callers
  // redirect it into a file), so the banner goes to stderr.
  const bool emit_json = args.flags.count("json") != 0;
  std::fprintf(emit_json ? stderr : stdout,
               "loadgen: %zu sessions x %zu chunks over %zu connections -> "
               "%s\n",
               options.sessions, options.chunks_per_session,
               std::min(options.connections, options.sessions),
               endpoints.c_str());
  std::fflush(nullptr);
  const net::LoadGenReport report = net::RunLoadGen(options);

  if (emit_json) {
    std::printf(
        "{\"ok\":%s,\"auth_rejected\":%s,\"sessions_completed\":%zu,"
        "\"sessions_faulted\":%zu,\"sessions_auth_rejected\":%zu,"
        "\"chunks_acked\":%llu,\"wall_s\":%.3f,\"chunks_per_sec\":%.1f,"
        "\"latency_p50_ms\":%.2f,\"latency_p90_ms\":%.2f,"
        "\"latency_p99_ms\":%.2f,\"latency_max_ms\":%.2f,"
        "\"bytes_in\":%llu,\"bytes_out\":%llu}\n",
        report.ok ? "true" : "false", report.auth_rejected ? "true" : "false",
        report.sessions_completed, report.sessions_faulted,
        report.sessions_auth_rejected,
        static_cast<unsigned long long>(report.chunks_acked), report.wall_s,
        report.chunks_per_sec, report.latency_p50_ms, report.latency_p90_ms,
        report.latency_p99_ms, report.latency_max_ms,
        static_cast<unsigned long long>(report.bytes_in),
        static_cast<unsigned long long>(report.bytes_out));
  } else {
    std::printf("%s", net::FormatLoadGenReport(report).c_str());
    for (const auto& outcome : report.sessions) {
      if (outcome.completed || outcome.error.empty()) continue;
      std::printf("session %llu: %s\n",
                  static_cast<unsigned long long>(outcome.wire_sid),
                  outcome.error.c_str());
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (out) {
      obs::TraceRecorder::Global().WriteChromeTrace(out);
      std::fprintf(emit_json ? stderr : stdout, "trace written to %s\n",
                   trace_out.c_str());
    } else {
      std::fprintf(stderr, "loadgen: cannot write %s\n", trace_out.c_str());
    }
    obs::TraceRecorder::Global().Disable();
  }
  return report.ok && report.sessions_faulted == 0 ? 0 : 1;
}

// ---------------------------------------------------------------- trace

/// Extracts the inner text of the "traceEvents" array (first '[' to the
/// last ']'), trimmed. False when the document has no array.
bool ExtractTraceEvents(const std::string& body, std::string* inner) {
  const std::size_t open = body.find('[');
  const std::size_t close = body.rfind(']');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return false;
  }
  const auto is_space = [](char c) {
    return c == ' ' || c == '\n' || c == '\r' || c == '\t';
  };
  std::size_t b = open + 1;
  std::size_t e = close;
  while (b < e && is_space(body[b])) ++b;
  while (e > b && is_space(body[e - 1])) --e;
  *inner = body.substr(b, e - b);
  return true;
}

/// Rewrites the exporter's fixed "pid":1 to this source's merged pid.
/// Every event WriteChromeTrace emits carries exactly `"pid":1,` — the
/// trailing comma keeps the match from touching other numeric fields.
std::string RemapPid(const std::string& events, int pid) {
  const std::string from = "\"pid\":1,";
  const std::string to = "\"pid\":" + std::to_string(pid) + ",";
  std::string out;
  out.reserve(events.size());
  std::size_t start = 0;
  for (std::size_t at = events.find(from); at != std::string::npos;
       at = events.find(from, start)) {
    out.append(events, start, at - start);
    out += to;
    start = at + from.size();
  }
  out.append(events, start, events.size() - start);
  return out;
}

/// Records which merged pids carry each flow id and whether its begin
/// ("s") / end ("f") endpoints were seen anywhere. Flow ids are process-
/// salted, so cross-source collisions don't happen by construction.
void ScanFlowEndpoints(const std::string& events, int pid,
                       std::map<std::uint64_t, std::set<int>>* flow_pids,
                       std::map<std::uint64_t, int>* flow_kinds) {
  const auto scan = [&](const char* marker, int bit) {
    const std::size_t len = std::strlen(marker);
    for (std::size_t at = events.find(marker); at != std::string::npos;
         at = events.find(marker, at + len)) {
      const std::uint64_t id =
          std::strtoull(events.c_str() + at + len, nullptr, 10);
      if (id == 0) continue;
      (*flow_pids)[id].insert(pid);
      if (bit != 0) (*flow_kinds)[id] |= bit;
    }
  };
  scan("\"ph\":\"s\",\"id\":", 1);
  scan("\"ph\":\"f\",\"bp\":\"e\",\"id\":", 2);
  // Spans tagged with a flow also anchor it to this process (the
  // exporter emits their flow id as a bare ,"id": field).
  scan(",\"id\":", 0);
}

// Pulls per-process trace rings (GET /trace, or --file dumps) and merges
// them into ONE Chrome trace JSON: each source becomes a distinct pid
// with a process_name metadata row, flow ids pass through untouched —
// they carry a per-process salt, so a wire-propagated flow (kTraceContext)
// draws one arrow from the client's submit span to the shard's compute
// span across process rows in Perfetto.
int CmdTrace(const Args& args) {
  if (args.urls.empty() && args.files.empty()) {
    std::fprintf(stderr,
                 "usage: necctl trace --url http://host:port [--url ...]\n"
                 "                    [--file trace.json ...] [--out FILE]\n"
                 "                    [--expect-cross-flow]\n");
    return 2;
  }
  const std::string out_path = args.Get("out", "trace-merged.json");
  obs::HttpGetOptions http_options;
  http_options.connect_timeout_ms =
      std::stoi(args.Get("connect-timeout-ms", "2000"));
  http_options.read_timeout_ms =
      std::stoi(args.Get("read-timeout-ms", "5000"));

  struct Source {
    std::string label;
    std::string body;
  };
  std::vector<Source> sources;
  for (const std::string& url : args.urls) {
    std::string host, path, error;
    int port = 0;
    if (!obs::ParseHttpUrl(url, &host, &port, &path)) {
      std::fprintf(stderr, "necctl trace: malformed url: %s\n", url.c_str());
      return 2;
    }
    std::string body;
    int status = 0;
    if (!obs::HttpGet(host, port, "/trace", &body, &status, &error,
                      http_options) ||
        status != 200) {
      std::fprintf(stderr, "necctl trace: %s:%d/trace failed: %s (status %d)\n",
                   host.c_str(), port, error.empty() ? "non-200" : error.c_str(),
                   status);
      return 1;
    }
    sources.push_back({host + ":" + std::to_string(port), std::move(body)});
  }
  for (const std::string& file : args.files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "necctl trace: cannot read %s\n", file.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    sources.push_back({file, ss.str()});
  }

  std::string merged = "{\"traceEvents\":[\n";
  bool first = true;
  std::map<std::uint64_t, std::set<int>> flow_pids;
  std::map<std::uint64_t, int> flow_kinds;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    std::string inner;
    if (!ExtractTraceEvents(sources[i].body, &inner)) {
      std::fprintf(stderr, "necctl trace: %s: no traceEvents array\n",
                   sources[i].label.c_str());
      return 1;
    }
    ScanFlowEndpoints(inner, pid, &flow_pids, &flow_kinds);
    if (!first) merged += ",\n";
    first = false;
    merged += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
              std::to_string(pid) + ",\"args\":{\"name\":\"" +
              obs::JsonEscape(sources[i].label) + "\"}}";
    if (!inner.empty()) {
      merged += ",\n";
      merged += RemapPid(inner, pid);
    }
  }
  merged += "\n]}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "necctl trace: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << merged;
  out.close();

  std::size_t cross = 0;
  for (const auto& [id, pids] : flow_pids) {
    if (pids.size() >= 2 && flow_kinds[id] == 3) ++cross;
  }
  std::printf("merged %zu source(s) into %s: %zu flow id(s), %zu "
              "cross-process with both endpoints\n",
              sources.size(), out_path.c_str(), flow_pids.size(), cross);
  if (args.flags.count("expect-cross-flow") != 0 && cross == 0) {
    std::fprintf(stderr,
                 "necctl trace: no cross-process flow with both endpoints\n");
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------------ top

/// Minimal field extractors for the machine-generated /fleet.json
/// document (flat objects, fixed key spelling — produced by
/// net::RenderFleetJson, not arbitrary JSON).
double JsonNumberAfter(const std::string& obj, const std::string& key) {
  const std::size_t at = obj.find(key);
  if (at == std::string::npos) return 0.0;
  return std::strtod(obj.c_str() + at + key.size(), nullptr);
}

bool JsonBoolAfter(const std::string& obj, const std::string& key) {
  const std::size_t at = obj.find(key);
  return at != std::string::npos &&
         obj.compare(at + key.size(), 4, "true") == 0;
}

std::string JsonStringAfter(const std::string& obj, const std::string& key) {
  const std::size_t at = obj.find(key);
  if (at == std::string::npos) return "";
  const std::size_t start = at + key.size();
  const std::size_t end = obj.find('"', start);
  return end == std::string::npos ? "" : obj.substr(start, end - start);
}

/// Splits `"key":[{...},{...}]` into the flat object strings.
std::vector<std::string> SplitJsonObjects(const std::string& json,
                                          const std::string& array_key) {
  std::vector<std::string> out;
  std::size_t at = json.find(array_key);
  if (at == std::string::npos) return out;
  at += array_key.size();
  int depth = 0;
  bool in_string = false;
  std::size_t obj_start = 0;
  for (std::size_t i = at; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') { in_string = true; continue; }
    if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(json.substr(obj_start, i - obj_start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

// Refresh-loop terminal view over a router's /fleet.json: one row per
// member shard with chunks/s (delta between refreshes), merged-CDF
// latency quantiles, queue depth, degradation rungs and fault counters,
// plus the router's placement state. --once renders a single frame
// without clearing the screen (CI / scripting).
int CmdTop(const Args& args) {
  const std::string url = args.Get("url", "http://127.0.0.1:9464");
  std::string host, path, error;
  int port = 0;
  if (!obs::ParseHttpUrl(url, &host, &port, &path)) {
    std::fprintf(stderr, "necctl top: malformed url: %s\n", url.c_str());
    return 2;
  }
  const int interval_ms = std::stoi(args.Get("interval-ms", "1000"));
  const bool once = args.flags.count("once") != 0;
  obs::HttpGetOptions http_options;
  http_options.connect_timeout_ms =
      std::stoi(args.Get("connect-timeout-ms", "2000"));
  http_options.read_timeout_ms =
      std::stoi(args.Get("read-timeout-ms", "5000"));

  std::map<std::string, double> prev_chunks;
  auto prev_time = std::chrono::steady_clock::now();
  bool have_prev = false;
  for (;;) {
    std::string body;
    int status = 0;
    const bool ok = obs::HttpGet(host, port, "/fleet.json", &body, &status,
                                 &error, http_options) &&
                    status == 200;
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - prev_time).count();
    if (!once) std::printf("\x1b[H\x1b[2J");
    if (!ok) {
      std::printf("necctl top: %s:%d/fleet.json unreachable: %s\n",
                  host.c_str(), port, error.empty() ? "non-200" : error.c_str());
      if (once) return 1;
    } else {
      const auto members = SplitJsonObjects(body, "\"members\":[");
      const auto shards = SplitJsonObjects(body, "\"shards\":[");
      std::map<std::string, std::string> shard_state;
      std::map<std::string, double> shard_migrated;
      for (const std::string& s : shards) {
        const std::string label = JsonStringAfter(s, "\"label\":\"");
        std::string state = JsonBoolAfter(s, "\"up\":") ? "up" : "DOWN";
        if (JsonBoolAfter(s, "\"saturated\":")) state += "+sat";
        if (JsonBoolAfter(s, "\"drained\":")) state += "+drained";
        else if (JsonBoolAfter(s, "\"draining\":")) state += "+draining";
        shard_state[label] = state;
        shard_migrated[label] = JsonNumberAfter(s, "\"sessions_migrated\":");
      }
      std::printf("fleet @ %s:%d  —  %.0f member(s) merged\n\n", host.c_str(),
                  port, JsonNumberAfter(body, "\"folded\":"));
      std::printf("%-22s %-12s %8s %7s %8s %8s %6s %6s %7s %7s %5s\n",
                  "member", "state", "chunk/s", "queue", "p50(ms)", "p99(ms)",
                  "faults", "miss", "deg", "authrej", "migr");
      double fleet_rate = 0.0;
      for (const std::string& m : members) {
        const std::string label = JsonStringAfter(m, "\"label\":\"");
        if (!JsonBoolAfter(m, "\"folded\":")) {
          std::printf("%-22s %-12s %s\n", label.c_str(), "UNREACHABLE",
                      JsonStringAfter(m, "\"error\":\"").c_str());
          continue;
        }
        const double chunks = JsonNumberAfter(m, "\"chunks_total\":");
        char rate[24];
        if (have_prev && prev_chunks.count(label) != 0 && dt > 0.0) {
          const double r = (chunks - prev_chunks[label]) / dt;
          fleet_rate += r > 0.0 ? r : 0.0;
          std::snprintf(rate, sizeof rate, "%8.1f", r > 0.0 ? r : 0.0);
        } else {
          std::snprintf(rate, sizeof rate, "%8s", "-");
        }
        prev_chunks[label] = chunks;
        char deg[24];
        std::snprintf(deg, sizeof deg, "%.0f/%.0f",
                      JsonNumberAfter(m, "\"degrade_down_total\":"),
                      JsonNumberAfter(m, "\"degrade_up_total\":"));
        const auto state_it = shard_state.find(label);
        std::printf(
            "%-22s %-12s %s %7.0f %8.2f %8.2f %6.0f %6.0f %7s %7.0f %5.0f\n",
            label.c_str(),
            state_it != shard_state.end() ? state_it->second.c_str() : "?",
            rate, JsonNumberAfter(m, "\"queue_depth\":"),
            JsonNumberAfter(m, "\"e2e_p50_ms\":"),
            JsonNumberAfter(m, "\"e2e_p99_ms\":"),
            JsonNumberAfter(m, "\"faults_total\":"),
            JsonNumberAfter(m, "\"deadline_misses_total\":"), deg,
            JsonNumberAfter(m, "\"auth_rejects_total\":"),
            shard_migrated.count(label) != 0 ? shard_migrated[label] : 0.0);
      }
      // Fleet headline from the MERGED histograms (true fleet quantiles).
      const std::size_t fleet_at = body.find("\"fleet\":{");
      if (fleet_at != std::string::npos) {
        const std::size_t fleet_end = body.find('}', fleet_at);
        const std::string fleet = body.substr(fleet_at, fleet_end - fleet_at);
        char rate[24];
        if (have_prev) {
          std::snprintf(rate, sizeof rate, "%.1f", fleet_rate);
        } else {
          std::snprintf(rate, sizeof rate, "-");
        }
        std::printf("\nfleet: %.0f chunk(s), %s chunk/s, e2e p50 %.2f ms, "
                    "p99 %.2f ms, %.0f fault(s), %.0f deadline miss(es)\n",
                    JsonNumberAfter(fleet, "\"chunks_total\":"), rate,
                    JsonNumberAfter(fleet, "\"e2e_p50_ms\":"),
                    JsonNumberAfter(fleet, "\"e2e_p99_ms\":"),
                    JsonNumberAfter(fleet, "\"faults_total\":"),
                    JsonNumberAfter(fleet, "\"deadline_misses_total\":"));
      }
      have_prev = true;
    }
    std::fflush(stdout);
    if (once) return ok ? 0 : 1;
    prev_time = now;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

// Starts a zero-fault draining reshard through a router's metrics
// endpoint (GET /drain?shard=host:port). Like `stats`, this goes through
// the public HTTP surface — anything necctl can trigger, curl can too.
int CmdDrain(const Args& args) {
  const std::string url = args.Get("url", "http://127.0.0.1:9464");
  const std::string shard = args.Get("shard", "");
  if (shard.empty()) {
    std::fprintf(stderr,
                 "usage: necctl drain --url http://host:port --shard "
                 "host:port\n");
    return 2;
  }
  std::string host, path, error;
  int port = 0;
  if (!obs::ParseHttpUrl(url, &host, &port, &path)) {
    std::fprintf(stderr, "necctl drain: malformed url: %s\n", url.c_str());
    return 2;
  }
  obs::HttpGetOptions http_options;
  http_options.connect_timeout_ms =
      std::stoi(args.Get("connect-timeout-ms", "2000"));
  http_options.read_timeout_ms =
      std::stoi(args.Get("read-timeout-ms", "5000"));
  std::string body;
  int status = 0;
  if (!obs::HttpGet(host, port, "/drain?shard=" + shard, &body, &status,
                    &error, http_options)) {
    std::fprintf(stderr, "necctl drain: %s:%d unreachable: %s\n",
                 host.c_str(), port, error.c_str());
    return 1;
  }
  std::printf("%s", body.c_str());
  return status == 200 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: necctl <synth|noise|shadow|probe|devices|stats|"
                 "loadgen|drain|trace|top> [flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = Args::Parse(argc, argv, 2);
  try {
    if (cmd == "synth") return CmdSynth(args);
    if (cmd == "noise") return CmdNoise(args);
    if (cmd == "shadow") return CmdShadow(args);
    if (cmd == "probe") return CmdProbe(args);
    if (cmd == "devices") return CmdDevices();
    if (cmd == "stats") return CmdStats(args);
    if (cmd == "loadgen") return CmdLoadgen(args);
    if (cmd == "drain") return CmdDrain(args);
    if (cmd == "trace") return CmdTrace(args);
    if (cmd == "top") return CmdTop(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
