// necd — the NEC protection daemon.
//
// Spins up N concurrent protection sessions (one per monitored room /
// recorder, each enrolled on its own target speaker), drives synthetic
// monitored streams through the nec::runtime SessionManager in
// capture-callback-sized pieces, and prints a runtime stats table:
// aggregate throughput, per-chunk latency quantiles, and the verdict
// against the paper's ~300 ms overshadowing deadline (§IV-C2).
//
//   necd [--sessions N] [--workers K] [--seconds S] [--chunk-s C]
//        [--policy block|reject|drop] [--queue Q] [--las]
//        [--max-batch B] [--deadline-ms D] [--no-pace]
//        [--on-fault fault|degrade] [--degrade] [--reject-bad-input]
//        [--metrics-port P] [--trace-out FILE]
//        [--log-level trace|debug|info|warn|error|off] [--log-json]
//        [--listen PORT] [--route SHARDS] [--model standard|tiny]
//        [--secret S] [--saturate-depth N] [--recover-depth N]
//
// --secret arms the v2 auth handshake on whatever face(s) the process
// serves: a --listen shard challenges its clients, a --route router both
// challenges its clients and answers its shards' challenges. A router's
// /drain?shard=host:port metrics endpoint starts a zero-fault draining
// reshard; --saturate-depth/--recover-depth arm queue-depth admission
// control (shed new sessions with typed kOverload, hysteretic recovery).
//
// The synthetic feed is real-time paced by default: each session receives
// capture-callback-sized pieces at the audio rate, like a live microphone
// — so the latency quantiles mean what they would in deployment. --no-pace
// replays the whole workload as fast as possible instead (offline
// throughput mode; end-to-end latency then measures backlog, not service).
//
// Networked serving (DESIGN.md §5h): --listen turns necd into a shard —
// a TCP server speaking the NEC wire protocol (port 0 = ephemeral; the
// bound port is printed on stdout). Clients open seed-enrolled sessions
// and stream chunks; all runtime machinery (micro-batching, degradation
// ladder, fault containment) applies unchanged. --route turns necd into
// a router instead: SHARDS is a comma-separated list of
// host:port:health_port triples; new wire sessions are consistent-hashed
// onto healthy shards, /healthz probes eject and readmit them, and
// sessions pinned to a dead shard fault with a typed error while the
// rest keep streaming. --model tiny serves an untrained seeded model
// (deterministic, no training cache) for tests and benches.
//
// Observability (DESIGN.md §5g): --metrics-port starts a loopback HTTP
// listener (port 0 = ephemeral; the bound port is printed) serving
//   /metrics       Prometheus text exposition incl. latency histogram
//                  buckets, scrape-ready
//   /metrics.json  the same families as JSON
//   /healthz       liveness + uptime
//   /sessions      per-session status (state, ladder rung, fault) as JSON
//   /trace         live Chrome-trace window of this process's rings
// A router additionally serves /fleet (human table) and /fleet.json —
// every member shard's /metrics scraped and merged: counters summed,
// histograms bucket-merged, per-shard breakdown rows (`necctl top`
// refreshes over it). `necctl stats --url http://127.0.0.1:P` scrapes
// and pretty-prints /metrics. --trace-out enables pipeline tracing
// (spans for every stage and runtime hop, flow arrows linking batched
// chunks) and writes Chrome trace JSON — loadable in Perfetto — after
// the drain; --trace arms the recorder without a dump file so /trace
// serves a live window (`necctl trace` merges those across the fleet).
//
// --max-batch > 1 routes ready chunks through the continuous batcher
// (batched selector forwards across sessions, admitted earliest-deadline-
// first as dispatch slots free; see src/runtime/batcher.h) — per-session
// output stays bit-identical.
//
// Fault tolerance (DESIGN.md §5f): --on-fault picks what a session does
// when a chunk keeps failing — fault (default: the session parks in
// kFaulted, everyone else keeps running) or degrade (step down the
// neural → LAS → silence ladder and keep serving). --degrade arms the
// deadline watchdog so sustained over-budget chunks also step down the
// ladder (with automatic recovery probes back up). --reject-bad-input
// bounces NaN/Inf/wild-amplitude submits with a typed error instead of
// sanitizing them in place. Per-session health lands in the status table.
//
// SIGINT/SIGTERM request a graceful shutdown: the feed loop stops, every
// admitted strand drains, tails flush, and the stats tables still print.
//
// All sessions share one trained Selector/SpeakerEncoder weight set; see
// src/runtime/session_manager.h for the concurrency model.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model_cache.h"
#include "encoder/encoder.h"
#include "net/fleet.h"
#include "net/net_stats.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/http.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/session_manager.h"
#include "runtime/stats_export.h"
#include "synth/dataset.h"

namespace {

// Set by the SIGINT/SIGTERM handler; the feed loop polls it. sig_atomic_t
// is the only object a signal handler may portably write.
volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

struct Args {
  std::size_t sessions = 8;
  std::size_t workers = std::max(1u, std::thread::hardware_concurrency());
  double seconds = 6.0;
  double chunk_s = 1.0;
  std::size_t queue = 1024;
  nec::runtime::OverflowPolicy policy =
      nec::runtime::OverflowPolicy::kBlock;
  nec::core::SelectorKind kind = nec::core::SelectorKind::kNeural;
  std::size_t max_batch = 1;
  double deadline_ms = 300.0;
  bool pace = true;  ///< feed at the audio rate (false = offline replay)
  nec::runtime::FaultPolicy on_fault = nec::runtime::FaultPolicy::kFault;
  bool degrade_on_deadline = false;
  bool reject_bad_input = false;
  int metrics_port = -1;  ///< -1 = no listener; 0 = ephemeral
  std::string trace_out;  ///< write Chrome trace JSON here after the drain
  bool trace = false;     ///< arm tracing without a dump file (GET /trace)
  nec::obs::LogLevel log_level = nec::obs::LogLevel::kInfo;
  bool log_json = false;
  int listen_port = -1;  ///< >= 0: serve the wire protocol (0 = ephemeral)
  std::string route;     ///< "host:port:health,..." → router mode
  std::string model = "standard";  ///< standard (trained) | tiny (seeded)
  std::string secret;    ///< shared secret for the v2 auth handshake
  /// Router admission control (0 = disabled): shed new sessions from a
  /// shard whose reported queue depth reaches saturate; readmit after
  /// consecutive reports at/below recover.
  std::uint64_t saturate_depth = 0;
  std::uint64_t recover_depth = 0;
};

const char* PolicyName(nec::runtime::OverflowPolicy p) {
  switch (p) {
    case nec::runtime::OverflowPolicy::kBlock: return "block";
    case nec::runtime::OverflowPolicy::kReject: return "reject";
    case nec::runtime::OverflowPolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--sessions") {
      args.sessions = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--workers") {
      args.workers = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--seconds") {
      args.seconds = std::strtod(next(), nullptr);
    } else if (flag == "--chunk-s") {
      args.chunk_s = std::strtod(next(), nullptr);
    } else if (flag == "--queue") {
      args.queue = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--policy") {
      const std::string p = next();
      if (p == "block") {
        args.policy = nec::runtime::OverflowPolicy::kBlock;
      } else if (p == "reject") {
        args.policy = nec::runtime::OverflowPolicy::kReject;
      } else if (p == "drop") {
        args.policy = nec::runtime::OverflowPolicy::kDropOldest;
      } else {
        std::fprintf(stderr, "unknown policy '%s'\n", p.c_str());
        std::exit(2);
      }
    } else if (flag == "--las") {
      args.kind = nec::core::SelectorKind::kLasMask;
    } else if (flag == "--max-batch") {
      args.max_batch = std::strtoul(next(), nullptr, 10);
    } else if (flag == "--no-pace") {
      args.pace = false;
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = std::strtod(next(), nullptr);
    } else if (flag == "--on-fault") {
      const std::string p = next();
      if (p == "fault") {
        args.on_fault = nec::runtime::FaultPolicy::kFault;
      } else if (p == "degrade") {
        args.on_fault = nec::runtime::FaultPolicy::kDegrade;
      } else {
        std::fprintf(stderr, "unknown --on-fault '%s'\n", p.c_str());
        std::exit(2);
      }
    } else if (flag == "--degrade") {
      args.degrade_on_deadline = true;
    } else if (flag == "--reject-bad-input") {
      args.reject_bad_input = true;
    } else if (flag == "--metrics-port") {
      args.metrics_port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (flag == "--trace-out") {
      args.trace_out = next();
    } else if (flag == "--trace") {
      args.trace = true;
    } else if (flag == "--log-level") {
      const char* name = next();
      if (!nec::obs::ParseLogLevel(name, &args.log_level)) {
        std::fprintf(stderr, "unknown --log-level '%s'\n", name);
        std::exit(2);
      }
    } else if (flag == "--log-json") {
      args.log_json = true;
    } else if (flag == "--listen") {
      args.listen_port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (flag == "--route") {
      args.route = next();
    } else if (flag == "--secret") {
      args.secret = next();
    } else if (flag == "--saturate-depth") {
      args.saturate_depth = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--recover-depth") {
      args.recover_depth = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--model") {
      args.model = next();
      if (args.model != "standard" && args.model != "tiny") {
        std::fprintf(stderr, "unknown --model '%s'\n", args.model.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "usage: necd [--sessions N] [--workers K] [--seconds S]\n"
                   "            [--chunk-s C] [--policy block|reject|drop]\n"
                   "            [--queue Q] [--las] [--max-batch B]\n"
                   "            [--deadline-ms D] [--no-pace]\n"
                   "            [--on-fault fault|degrade] [--degrade]\n"
                   "            [--reject-bad-input] [--metrics-port P]\n"
                   "            [--trace-out FILE] [--trace] [--log-json]\n"
                   "            [--log-level trace|debug|info|warn|error|"
                   "off]\n"
                   "            [--listen PORT] [--model standard|tiny]\n"
                   "            [--route host:port:health_port,...]\n"
                   "            [--secret S] [--saturate-depth N]\n"
                   "            [--recover-depth N]\n");
      std::exit(flag == "--help" || flag == "-h" ? 0 : 2);
    }
  }
  // In router mode --listen (if given) is the router's own bind port;
  // otherwise an ephemeral one is picked and printed.
  if (args.max_batch < 1 || args.deadline_ms <= 0.0) {
    std::fprintf(stderr,
                 "necd: --max-batch must be >= 1 and --deadline-ms > 0\n");
    std::exit(2);
  }
  if (args.seconds <= 0.0 || args.chunk_s <= 0.0) {
    std::fprintf(stderr, "necd: --seconds and --chunk-s must be > 0\n");
    std::exit(2);
  }
  return args;
}

// Untrained seeded Fast() model: deterministic across processes and
// hermetic (no training cache), so every shard started with --model tiny
// serves bit-identical shadows for the same session seeds. Cancellation
// quality is meaningless — this exists for serving tests and benches.
nec::core::StandardModel TinyModel() {
  using namespace nec;
  core::StandardModel model;
  core::NecConfig cfg = core::NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  model.config = cfg;
  model.selector = std::make_shared<core::Selector>(cfg, 7);
  model.encoder = std::make_shared<encoder::LasEncoder>(cfg.embedding_dim);
  return model;
}

nec::core::StandardModel PickModel(const Args& args) {
  return args.model == "tiny" ? TinyModel()
                              : nec::core::StandardModel::Get(true);
}

nec::runtime::SessionManager::Options ManagerOptions(const Args& args) {
  using namespace nec;
  return {.workers = args.workers,
          .queue_capacity = args.queue,
          .policy = args.policy,
          .chunk_s = args.chunk_s,
          .kind = args.kind,
          .max_batch = args.max_batch,
          .deadline_ms = args.deadline_ms,
          .fault = {.on_error = args.on_fault,
                    .bad_input = args.reject_bad_input
                                     ? runtime::BadInputPolicy::kReject
                                     : runtime::BadInputPolicy::kSanitize,
                    .degrade_on_deadline = args.degrade_on_deadline}};
}

void PrintNetRows(const nec::net::NetStatsSnapshot& s) {
  const auto u = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::printf("%-28s %12llu\n", "net conns accepted", u(s.connections_accepted));
  std::printf("%-28s %12llu\n", "net conns active", u(s.connections_active));
  std::printf("%-28s %12llu\n", "net conns dropped", u(s.connections_dropped));
  std::printf("%-28s %12llu\n", "net frames in", u(s.frames_in));
  std::printf("%-28s %12llu\n", "net frames out", u(s.frames_out));
  std::printf("%-28s %12llu\n", "net bytes in", u(s.bytes_in));
  std::printf("%-28s %12llu\n", "net bytes out", u(s.bytes_out));
  std::printf("%-28s %12llu\n", "net decode errors", u(s.decode_errors));
  std::printf("%-28s %12llu\n", "net protocol errors", u(s.protocol_errors));
  std::printf("%-28s %12llu\n", "net sessions opened", u(s.sessions_opened));
  std::printf("%-28s %12llu\n", "net sessions closed", u(s.sessions_closed));
  std::printf("%-28s %12llu\n", "net sessions faulted",
              u(s.sessions_faulted));
  std::printf("%-28s %12llu\n", "net auth ok", u(s.auth_ok));
  std::printf("%-28s %12llu\n", "net auth rejected", u(s.auth_rejected));
  std::printf("%-28s %12llu\n", "net overload shed", u(s.overload_shed));
  std::printf("%-28s %12llu\n", "net sessions migrated",
              u(s.sessions_migrated));
}

/// necd --listen: serve the wire protocol until SIGINT/SIGTERM.
int RunListen(const Args& args) {
  using namespace nec;
  core::StandardModel model = PickModel(args);
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  ManagerOptions(args));
  net::NetServer server(&manager,
                        {.port = args.listen_port, .secret = args.secret});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "necd: wire listener failed: %s\n", error.c_str());
    return 2;
  }
  // stdout, greppable: scripts read the bound port when --listen 0.
  std::printf("necd: wire listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  obs::MetricsServer metrics;
  const auto started_at = std::chrono::steady_clock::now();
  if (args.metrics_port >= 0) {
    const auto families = [&] {
      auto fams = runtime::SnapshotToMetricFamilies(manager.Stats());
      auto net_fams =
          net::NetStatsToMetricFamilies(server.StatsSnapshot(), "server");
      fams.insert(fams.end(), net_fams.begin(), net_fams.end());
      fams.push_back(runtime::HopLatencyFamily());
      return fams;
    };
    metrics.Handle("/metrics", [families](const std::string&,
                                          const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = obs::RenderPrometheusText(families());
      return resp;
    });
    metrics.Handle("/metrics.json", [families](const std::string&,
                                               const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = obs::RenderMetricsJson(families());
      return resp;
    });
    metrics.Handle("/healthz", [&manager, started_at](const std::string&,
                                                      const std::string&) {
      const double uptime_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_at)
              .count();
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = "{\"status\":\"ok\",\"uptime_s\":" +
                  std::to_string(uptime_s) + ",\"sessions\":" +
                  std::to_string(manager.num_sessions()) + "}\n";
      return resp;
    });
    metrics.Handle("/sessions", [&manager](const std::string&,
                                           const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = runtime::SessionsJson(manager) + "\n";
      return resp;
    });
    // Live trace window (requires --trace / --trace-out; empty trace
    // otherwise). `necctl trace` pulls this from every fleet member and
    // merges the rings into one cross-process file.
    metrics.Handle("/trace", [](const std::string&, const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = obs::TraceRecorder::Global().ChromeTraceJson();
      return resp;
    });
    if (!metrics.Start({.host = "127.0.0.1", .port = args.metrics_port},
                       &error)) {
      std::fprintf(stderr, "necd: metrics listener failed: %s\n",
                   error.c_str());
      return 2;
    }
    std::printf("necd: metrics listening on http://127.0.0.1:%d\n",
                metrics.port());
    std::fflush(stdout);
  }

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  NEC_LOG_INFO("necd", "stop signal received — draining shard");
  server.Stop();
  manager.Drain();
  metrics.Stop();

  const runtime::RuntimeStatsSnapshot stats = manager.Stats();
  std::printf("\n============================ necd stats "
              "============================\n");
  std::printf("%-28s %12llu\n", "sessions",
              static_cast<unsigned long long>(stats.sessions));
  std::printf("%-28s %12llu\n", "chunks processed",
              static_cast<unsigned long long>(stats.chunks_processed));
  std::printf("%-28s %12.2f\n", "chunk latency p50 (ms)",
              stats.chunk_latency.p50_ms);
  std::printf("%-28s %12.2f\n", "chunk latency p99 (ms)",
              stats.chunk_latency.p99_ms);
  std::printf("%-28s %12.2f\n", "e2e latency p50 (ms)",
              stats.e2e_latency.p50_ms);
  std::printf("%-28s %12.2f\n", "e2e latency p99 (ms)",
              stats.e2e_latency.p99_ms);
  std::printf("%-28s %12llu\n", "session faults",
              static_cast<unsigned long long>(stats.faults));
  PrintNetRows(server.StatsSnapshot());
  std::printf("---------------------------------------------------------"
              "------------\n");
  return 0;
}

/// Parses "host:port:health_port[,host:port:health_port...]".
bool ParseShardList(const std::string& spec,
                    std::vector<nec::net::ShardSpec>* shards) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    const std::size_t c1 = item.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : item.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) return false;
    nec::net::ShardSpec shard;
    shard.host = item.substr(0, c1);
    shard.port = std::atoi(item.c_str() + c1 + 1);
    shard.health_port = std::atoi(item.c_str() + c2 + 1);
    if (shard.host.empty() || shard.port <= 0 || shard.health_port <= 0) {
      return false;
    }
    shards->push_back(std::move(shard));
    if (end == spec.size()) break;
    start = end + 1;
  }
  return !shards->empty();
}

/// necd --route: front a shard fleet until SIGINT/SIGTERM.
int RunRouter(const Args& args) {
  using namespace nec;
  net::Router::Options options;
  options.port = std::max(args.listen_port, 0);
  options.secret = args.secret;
  if (args.saturate_depth > 0) {
    options.saturate_queue_depth = args.saturate_depth;
    options.recover_queue_depth =
        args.recover_depth > 0 ? args.recover_depth : args.saturate_depth / 2;
  }
  if (!ParseShardList(args.route, &options.shards)) {
    std::fprintf(stderr,
                 "necd: --route wants host:port:health_port[,...], got "
                 "'%s'\n",
                 args.route.c_str());
    return 2;
  }
  const std::size_t num_shards = options.shards.size();
  // Scrape targets for /fleet: one row per shard, labeled by its
  // data-plane address, scraped on its metrics/health port.
  std::vector<net::FleetMember> fleet_members;
  for (const net::ShardSpec& shard : options.shards) {
    fleet_members.push_back(
        {.label = shard.host + ":" + std::to_string(shard.port),
         .host = shard.host,
         .port = shard.health_port});
  }
  net::Router router(std::move(options));
  std::string error;
  if (!router.Start(&error)) {
    std::fprintf(stderr, "necd: router failed: %s\n", error.c_str());
    return 2;
  }
  std::printf("necd: routing on 127.0.0.1:%d (%zu shards)\n", router.port(),
              num_shards);
  std::fflush(stdout);

  obs::MetricsServer metrics;
  const auto started_at = std::chrono::steady_clock::now();
  if (args.metrics_port >= 0) {
    const auto router_families = [&router] {
      auto fams = router.MetricFamilies();
      fams.push_back(runtime::HopLatencyFamily());
      return fams;
    };
    metrics.Handle("/metrics", [router_families](const std::string&,
                                                 const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = obs::RenderPrometheusText(router_families());
      return resp;
    });
    metrics.Handle("/metrics.json", [router_families](const std::string&,
                                                      const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = obs::RenderMetricsJson(router_families());
      return resp;
    });
    metrics.Handle("/trace", [](const std::string&, const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = obs::TraceRecorder::Global().ChromeTraceJson();
      return resp;
    });
    // Merged fleet view: scrape every member shard's /metrics, sum
    // counters, bucket-merge histograms (DESIGN.md §5g). Runs on the
    // HTTP thread with tight per-member timeouts — a dead member costs
    // one connect timeout and shows up as an unreachable row.
    const auto fleet_view = [&router, fleet_members] {
      obs::HttpGetOptions http;
      http.connect_timeout_ms = 500;
      http.read_timeout_ms = 2000;
      return net::ScrapeFleet(fleet_members, http);
    };
    metrics.Handle("/fleet", [&router, fleet_view](const std::string&,
                                                   const std::string&) {
      obs::HttpResponse resp;
      resp.body = net::RenderFleetText(fleet_view(), router.ShardStatuses());
      return resp;
    });
    metrics.Handle("/fleet.json", [&router, fleet_view](const std::string&,
                                                        const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body =
          net::RenderFleetJson(fleet_view(), router.ShardStatuses()) + "\n";
      return resp;
    });
    metrics.Handle("/healthz", [&router, started_at](const std::string&,
                                                     const std::string&) {
      std::size_t up = 0;
      const auto statuses = router.ShardStatuses();
      for (const auto& status : statuses) up += status.up ? 1 : 0;
      const double uptime_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_at)
              .count();
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      // A router with zero healthy shards is alive but not serviceable.
      resp.status = up > 0 ? 200 : 503;
      resp.body = "{\"status\":\"" + std::string(up > 0 ? "ok" : "no-shards") +
                  "\",\"uptime_s\":" + std::to_string(uptime_s) +
                  ",\"shards_up\":" + std::to_string(up) +
                  ",\"shards\":" + std::to_string(statuses.size()) + "}\n";
      return resp;
    });
    metrics.Handle("/shards", [&router](const std::string&,
                                        const std::string&) {
      std::string body = "[";
      bool first = true;
      for (const auto& status : router.ShardStatuses()) {
        if (!first) body += ",";
        first = false;
        body += "{\"host\":\"" + status.spec.host + "\",\"port\":" +
                std::to_string(status.spec.port) + ",\"health_port\":" +
                std::to_string(status.spec.health_port) + ",\"up\":" +
                (status.up ? "true" : "false") + ",\"saturated\":" +
                (status.saturated ? "true" : "false") + ",\"draining\":" +
                (status.draining ? "true" : "false") + ",\"drained\":" +
                (status.drained ? "true" : "false") + ",\"sessions_active\":" +
                std::to_string(status.sessions_active) +
                ",\"sessions_assigned_total\":" +
                std::to_string(status.sessions_assigned_total) +
                ",\"sessions_migrated\":" +
                std::to_string(status.sessions_migrated) +
                ",\"ejections\":" + std::to_string(status.ejections) +
                ",\"probes_ok\":" + std::to_string(status.probes_ok) +
                ",\"probes_failed\":" + std::to_string(status.probes_failed) +
                ",\"queue_depth\":" + std::to_string(status.queue_depth) +
                ",\"overload_total\":" +
                std::to_string(status.overload_total) + "}";
      }
      body += "]\n";
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = std::move(body);
      return resp;
    });
    // Operational drain trigger: GET /drain?shard=host:port starts the
    // zero-fault reshard (necctl drain wraps this). DrainShard only
    // flips an atomic, so running on the HTTP thread is safe.
    metrics.Handle("/drain", [&router](const std::string&,
                                       const std::string& query) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      const std::string prefix = "shard=";
      std::string label;
      std::size_t at = query.find(prefix);
      if (at != std::string::npos) {
        label = query.substr(at + prefix.size());
        const std::size_t amp = label.find('&');
        if (amp != std::string::npos) label.resize(amp);
      }
      std::string error;
      if (label.empty()) {
        resp.status = 400;
        resp.body = "{\"error\":\"missing ?shard=host:port\"}\n";
      } else if (!router.DrainShard(label, &error)) {
        resp.status = 404;
        resp.body = "{\"error\":\"" + error + "\"}\n";
      } else {
        resp.body = "{\"status\":\"draining\",\"shard\":\"" + label + "\"}\n";
      }
      return resp;
    });
    if (!metrics.Start({.host = "127.0.0.1", .port = args.metrics_port},
                       &error)) {
      std::fprintf(stderr, "necd: metrics listener failed: %s\n",
                   error.c_str());
      return 2;
    }
    std::printf("necd: metrics listening on http://127.0.0.1:%d\n",
                metrics.port());
    std::fflush(stdout);
  }

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  NEC_LOG_INFO("necd", "stop signal received — stopping router");
  router.Stop();
  metrics.Stop();

  std::printf("\n=========================== router stats "
              "===========================\n");
  PrintNetRows(router.StatsSnapshot());
  std::printf("------------------------------ shards "
              "------------------------------\n");
  for (const auto& status : router.ShardStatuses()) {
    std::printf("%s:%d  up=%d sat=%d drain=%d/%d sessions=%llu "
                "assigned=%llu migrated=%llu ejections=%llu probes_ok=%llu "
                "probes_failed=%llu\n",
                status.spec.host.c_str(), status.spec.port, status.up ? 1 : 0,
                status.saturated ? 1 : 0, status.draining ? 1 : 0,
                status.drained ? 1 : 0,
                static_cast<unsigned long long>(status.sessions_active),
                static_cast<unsigned long long>(
                    status.sessions_assigned_total),
                static_cast<unsigned long long>(status.sessions_migrated),
                static_cast<unsigned long long>(status.ejections),
                static_cast<unsigned long long>(status.probes_ok),
                static_cast<unsigned long long>(status.probes_failed));
  }
  std::printf("---------------------------------------------------------"
              "------------\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nec;
  const Args args = Parse(argc, argv);

  obs::SetLogLevel(args.log_level);
  if (args.log_json) obs::SetLogFormat(obs::LogFormat::kJson);
  obs::TraceRecorder::SetThreadName("main");
  // --trace-out dumps after the drain; --trace only arms the recorder so
  // the /trace endpoint serves a live window (fleet members run this way
  // and `necctl trace` pulls + merges their rings).
  if (!args.trace_out.empty() || args.trace) {
    obs::TraceRecorder::Global().Enable();
  }

  // A daemon dies by signal, not by EOF: drain in-flight audio and still
  // print the stats tables instead of dropping everything on the floor.
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  if (!args.route.empty()) return RunRouter(args);
  if (args.listen_port >= 0) return RunListen(args);

  NEC_LOG_INFO("necd",
               "%zu sessions, %zu workers, %.1f s streams, %.1f s chunks, "
               "policy=%s, selector=%s, max-batch=%zu",
               args.sessions, args.workers, args.seconds, args.chunk_s,
               PolicyName(args.policy),
               args.kind == core::SelectorKind::kNeural ? "neural"
                                                        : "las-mask",
               args.max_batch);

  core::StandardModel model = PickModel(args);
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  ManagerOptions(args));

  // Live scrape surface. Handlers run on the listener thread; everything
  // they touch (Stats snapshot, SessionStatus) is thread-safe by contract.
  obs::MetricsServer server;
  const auto started_at = std::chrono::steady_clock::now();
  if (args.metrics_port >= 0) {
    const auto families = [&manager] {
      auto fams = runtime::SnapshotToMetricFamilies(manager.Stats());
      fams.push_back(runtime::HopLatencyFamily());
      return fams;
    };
    server.Handle("/metrics", [families](const std::string&,
                                         const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = obs::RenderPrometheusText(families());
      return resp;
    });
    server.Handle("/metrics.json", [families](const std::string&,
                                              const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = obs::RenderMetricsJson(families());
      return resp;
    });
    server.Handle("/healthz", [&manager, started_at](const std::string&,
                                                     const std::string&) {
      const double uptime_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_at)
              .count();
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = "{\"status\":\"ok\",\"uptime_s\":" +
                  std::to_string(uptime_s) + ",\"sessions\":" +
                  std::to_string(manager.num_sessions()) + "}\n";
      return resp;
    });
    server.Handle("/sessions", [&manager](const std::string&,
                                          const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = runtime::SessionsJson(manager) + "\n";
      return resp;
    });
    server.Handle("/trace", [](const std::string&, const std::string&) {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = obs::TraceRecorder::Global().ChromeTraceJson();
      return resp;
    });
    std::string error;
    if (!server.Start({.host = "127.0.0.1", .port = args.metrics_port},
                      &error)) {
      std::fprintf(stderr, "necd: metrics listener failed: %s\n",
                   error.c_str());
      return 2;
    }
    // Printed on stdout (not just the log) so scripts can grep the bound
    // port when --metrics-port 0 picked an ephemeral one.
    std::printf("necd: metrics listening on http://127.0.0.1:%d\n",
                server.port());
    std::fflush(stdout);
  }

  // One enrolled target per session; the monitored stream mixes that
  // target's voice with a noise background (what the room mic hears).
  synth::DatasetBuilder builder({.duration_s = args.seconds});
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  std::vector<runtime::SessionManager::SessionId> ids;
  std::vector<audio::Waveform> streams;
  for (std::size_t i = 0; i < args.sessions; ++i) {
    const auto speaker = synth::SpeakerProfile::FromSeed(1000 + i);
    ids.push_back(manager.CreateSession(
        enroll_builder.MakeReferenceAudios(speaker, 3, 500 + i)));
    streams.push_back(
        builder
            .MakeInstance(speaker, synth::Scenario::kBabble, 7000 + i)
            .mixed);
  }
  NEC_LOG_INFO("necd", "%zu sessions enrolled, feeding %.1f s each...",
               ids.size(), args.seconds);

  // Interleaved capture-callback-sized pieces: all sessions live at once.
  // Paced mode delivers each round of pieces at the audio rate — the
  // arrival process a live capture callback would produce — so queue-wait
  // and end-to-end latency mean service latency, not replay backlog.
  const std::size_t piece = 4096;
  const double piece_s =
      streams.empty() ? 0.0
                      : static_cast<double>(piece) /
                            static_cast<double>(streams[0].sample_rate());
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t pos = 0;
  std::size_t rounds = 0;
  bool any_left = true;
  while (any_left && !g_stop) {
    any_left = false;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (pos >= streams[i].size()) continue;
      const std::size_t n = std::min(piece, streams[i].size() - pos);
      const runtime::SubmitResult r =
          manager.Submit(ids[i], streams[i].samples().subspan(pos, n));
      if (!r.ok() &&
          r.error->category == runtime::ErrorCategory::kOverload) {
        // kReject bounced the strand dispatch; the samples are already
        // buffered, so nudge with empty submits until the pool has room
        // (each bounce still shows up in the rejection counter). A nudge
        // can stop being kOverload — e.g. the session faults — so bail
        // on any other outcome.
        for (;;) {
          const runtime::SubmitResult nudge = manager.Submit(ids[i], {});
          if (nudge.ok() || g_stop ||
              nudge.error->category != runtime::ErrorCategory::kOverload) {
            break;
          }
          std::this_thread::yield();
        }
      }
      // Any other error (kFaulted session, rejected bad input) sheds this
      // piece; the session's fate shows up in the status table below.
      any_left = true;
    }
    pos += piece;
    ++rounds;
    if (args.pace && any_left) {
      // Absolute schedule (t0 + n·piece_s), not relative sleeps: pacing
      // error never accumulates, and a slow round simply skips its sleep.
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(piece_s *
                                                 static_cast<double>(rounds))));
    }
  }
  if (g_stop) {
    NEC_LOG_INFO("necd", "stop signal received — draining in-flight work");
  }
  manager.Drain();
  for (const auto id : ids) manager.Flush(id);

  // Post-drain the recorder is quiescent: dump the trace window before the
  // report so an operator killing necd mid-run still gets both.
  if (!args.trace_out.empty()) {
    obs::TraceRecorder& rec = obs::TraceRecorder::Global();
    std::ofstream out(args.trace_out);
    if (!out) {
      std::fprintf(stderr, "necd: cannot write trace to %s\n",
                   args.trace_out.c_str());
    } else {
      rec.WriteChromeTrace(out);
      NEC_LOG_INFO("necd",
                   "trace written to %s (%llu events held, %llu dropped by "
                   "ring wraparound)",
                   args.trace_out.c_str(),
                   static_cast<unsigned long long>(rec.events_recorded()),
                   static_cast<unsigned long long>(rec.events_dropped()));
    }
    rec.Disable();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const runtime::RuntimeStatsSnapshot stats = manager.Stats();
  const double chunks_per_sec =
      wall_s > 0.0 ? static_cast<double>(stats.chunks_processed) / wall_s
                   : 0.0;
  const double audio_s =
      args.seconds * static_cast<double>(args.sessions);

  std::printf("\n============================ necd stats "
              "============================\n");
  std::printf("%-28s %12llu\n", "sessions",
              static_cast<unsigned long long>(stats.sessions));
  std::printf("%-28s %12llu\n", "chunks processed",
              static_cast<unsigned long long>(stats.chunks_processed));
  std::printf("%-28s %12llu\n", "strand dispatches",
              static_cast<unsigned long long>(stats.dispatches));
  std::printf("%-28s %12llu\n", "dispatch rejections",
              static_cast<unsigned long long>(stats.dispatch_rejections));
  std::printf("%-28s %12llu\n", "dispatch drops (evicted)",
              static_cast<unsigned long long>(stats.dispatch_drops));
  std::printf("%-28s %12llu\n", "samples submitted",
              static_cast<unsigned long long>(stats.samples_submitted));
  std::printf("%-28s %12llu\n", "samples dropped",
              static_cast<unsigned long long>(stats.samples_dropped));
  std::printf("%-28s %12zu\n", "queue depth (now)", stats.queue_depth);
  std::printf("%-28s %12.2f\n", "wall time (s)", wall_s);
  std::printf("%-28s %12.2f\n", "audio processed (s)", audio_s);
  std::printf("%-28s %12.2f\n", "realtime factor", audio_s / wall_s);
  std::printf("%-28s %12.2f\n", "aggregate chunks/sec", chunks_per_sec);
  std::printf("%-28s %12.2f\n", "chunk latency p50 (ms)",
              stats.chunk_latency.p50_ms);
  std::printf("%-28s %12.2f\n", "chunk latency p95 (ms)",
              stats.chunk_latency.p95_ms);
  std::printf("%-28s %12.2f\n", "chunk latency p99 (ms)",
              stats.chunk_latency.p99_ms);
  std::printf("%-28s %12.2f\n", "chunk latency max (ms)",
              stats.chunk_latency.max_ms);
  std::printf("%-28s %12.2f\n", "e2e latency p50 (ms)",
              stats.e2e_latency.p50_ms);
  std::printf("%-28s %12.2f\n", "e2e latency p95 (ms)",
              stats.e2e_latency.p95_ms);
  std::printf("%-28s %12.2f\n", "e2e latency p99 (ms)",
              stats.e2e_latency.p99_ms);
  std::printf("%-28s %12.2f\n", "e2e latency max (ms)",
              stats.e2e_latency.max_ms);
  if (manager.batching_enabled()) {
    std::printf("%-28s %12llu\n", "batches dispatched",
                static_cast<unsigned long long>(stats.batches_dispatched));
    std::printf("%-28s %12llu\n", "batched chunks",
                static_cast<unsigned long long>(stats.batched_chunks));
    std::printf("%-28s %12.2f\n", "avg batch size",
                stats.avg_batch_size);
    std::printf("%-28s %12llu\n", "max batch size",
                static_cast<unsigned long long>(stats.max_batch_size));
    std::printf("%-28s %12.2f\n", "queue wait p50 (ms)",
                stats.queue_wait.p50_ms);
    std::printf("%-28s %12.2f\n", "queue wait p99 (ms)",
                stats.queue_wait.p99_ms);
  }
  std::printf("%-28s %12zu\n", "queue peak depth",
              stats.queue_peak_depth);
  std::printf("%-28s %12llu\n", "session faults",
              static_cast<unsigned long long>(stats.faults));
  for (std::size_t c = 0; c < runtime::kNumErrorCategories; ++c) {
    if (stats.faults_by_category[c] == 0) continue;
    std::printf("  %-26s %12llu\n",
                runtime::ErrorCategoryName(
                    static_cast<runtime::ErrorCategory>(c)),
                static_cast<unsigned long long>(stats.faults_by_category[c]));
  }
  std::printf("%-28s %12llu\n", "deadline misses",
              static_cast<unsigned long long>(stats.deadline_misses));
  std::printf("%-28s %12llu\n", "degrade steps down",
              static_cast<unsigned long long>(stats.degrade_steps_down));
  std::printf("%-28s %12llu\n", "degrade steps up",
              static_cast<unsigned long long>(stats.degrade_steps_up));
  std::printf("%-28s %12llu\n", "chunk retries",
              static_cast<unsigned long long>(stats.chunk_retries));
  std::printf("%-28s %12llu\n", "batch splits",
              static_cast<unsigned long long>(stats.batch_splits));
  std::printf("%-28s %12llu\n", "samples sanitized",
              static_cast<unsigned long long>(stats.samples_sanitized));
  std::printf("%-28s %12llu\n", "bad-input rejections",
              static_cast<unsigned long long>(stats.bad_input_rejections));
  std::printf("%-28s %12llu\n", "session resets",
              static_cast<unsigned long long>(stats.session_resets));
  std::printf("%-28s %12llu\n", "worker exceptions",
              static_cast<unsigned long long>(stats.worker_exceptions));

  // Per-module accounting (safe here: Drain + Flush left every session
  // idle, so the strand-owned counters are stable). Shows where each
  // session's wall time went — selector (STFT+DNN+iSTFT) vs. ultrasonic
  // modulation — the per-stage view the aggregate latency quantiles hide.
  std::printf("------------------------ per-module timings "
              "----------------------\n");
  std::printf("%-10s %8s %18s %19s\n", "session", "chunks",
              "selector ms/chunk", "broadcast ms/chunk");
  core::ModuleTimings total;
  for (const auto id : ids) {
    const core::ModuleTimings t = manager.SessionTimings(id);
    std::printf("%-10zu %8zu %18.2f %19.2f\n", id, t.chunks,
                t.avg_selector_ms(), t.avg_broadcast_ms());
    total.selector_ms += t.selector_ms;
    total.broadcast_ms += t.broadcast_ms;
    total.chunks += t.chunks;
  }
  std::printf("%-10s %8zu %18.2f %19.2f\n", "all", total.chunks,
              total.avg_selector_ms(), total.avg_broadcast_ms());

  // Per-session health: anything not idle/neural after a drained run
  // deserves a line the operator can act on.
  bool any_unhealthy = false;
  for (const auto id : ids) {
    const runtime::SessionStatus st = manager.SessionStatus(id);
    if (st.state == runtime::SessionState::kIdle && st.faults == 0 &&
        st.deadline_misses == 0) {
      continue;
    }
    if (!any_unhealthy) {
      std::printf("------------------------- session status "
                  "-------------------------\n");
      any_unhealthy = true;
    }
    std::printf("session %-4zu %-8s level=%-12s chunks=%-6llu "
                "faults=%-3llu misses=%llu%s%s\n",
                id, runtime::SessionStateName(st.state),
                runtime::DegradeLevelName(st.level),
                static_cast<unsigned long long>(st.chunks_emitted),
                static_cast<unsigned long long>(st.faults),
                static_cast<unsigned long long>(st.deadline_misses),
                st.error.has_value() ? " — " : "",
                st.error.has_value() ? st.error->message.c_str() : "");
  }
  std::printf("---------------------------------------------------------"
              "------------\n");
  // The verdict is end-to-end (enqueue → complete): a chunk that computed
  // fast but sat in a queue past the budget still failed its listener.
  const bool deadline_ok = stats.e2e_latency.p99_ms < args.deadline_ms;
  std::printf("overshadowing deadline (%.0f ms, IV-C2): e2e p99 %s\n",
              args.deadline_ms, deadline_ok ? "MET" : "MISSED");
  return deadline_ok ? 0 : 1;
}
