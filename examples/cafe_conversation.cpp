// Scenario example — the paper's Figure 1 cafe: Bob holds a private
// conversation in a public space. An eavesdropper's phone sits 1 m away;
// Alice's own phone (running her voice assistant) is next to her. Babble
// noise fills the room. With NEC on Bob's side:
//   * the eavesdropper's recording no longer contains Bob's words,
//   * Alice's assistant still understands her normally.
//
// Also demonstrates the paper's §VII limitation by recording the same
// scene on a hypothetical perfectly-linear microphone.
#include <cstdio>
#include <filesystem>

#include "asr/recognizer.h"
#include "audio/wav_io.h"
#include "core/experiment.h"
#include "core/model_cache.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"

namespace {

std::string Join(const std::vector<std::string>& words) {
  std::string out;
  for (const auto& w : words) {
    if (!out.empty()) out += ' ';
    out += w;
  }
  return out.empty() ? "(nothing)" : out;
}

}  // namespace

int main() {
  using namespace nec;

  core::StandardModel model = core::StandardModel::Get(true);
  core::NecPipeline pipeline(std::move(*model.selector), model.encoder, {});

  synth::DatasetBuilder builder(
      {.duration_s = 3.0, .background_snr_db = 2.0});
  const auto bob = synth::SpeakerProfile::FromSeed(1001);
  const auto alice = synth::SpeakerProfile::FromSeed(2002);

  pipeline.Enroll(builder.MakeReferenceAudios(bob, 3, 5));

  // The conversation: Bob + Alice talking at the same table.
  const synth::MixInstance convo = builder.MakeInstance(
      bob, synth::Scenario::kJointConversation, 77, &alice);
  std::printf("Bob said   : %s\n", Join(convo.target_words).c_str());
  std::printf("Alice said : %s\n", Join(convo.background_words).c_str());

  core::ScenarioRunner runner;
  std::printf("\nloading speech recognizer (the eavesdropper's ASR)...\n");
  asr::WordRecognizer asr_engine;

  // --- Eavesdropper's phone at 1 m.
  core::ScenarioSetup spy;
  spy.device = channel::FindDevice("Galaxy S9");
  spy.carrier_hz = spy.device.paper_best_carrier_hz;
  const auto spy_res = runner.Run(pipeline, convo, spy);

  std::printf("\n== eavesdropper's Galaxy S9, 1 m away ==\n");
  std::printf("transcript without NEC: %s\n",
              Join(asr_engine.Transcribe(spy_res.recorded_without_nec)).c_str());
  std::printf("transcript with NEC   : %s\n",
              Join(asr_engine.Transcribe(spy_res.recorded_with_nec)).c_str());
  std::printf("WER vs Bob's words    : %.2f -> %.2f\n",
              asr::WordErrorRate(convo.target_words,
                                 asr_engine.Transcribe(
                                     spy_res.recorded_without_nec)),
              asr::WordErrorRate(convo.target_words,
                                 asr_engine.Transcribe(
                                     spy_res.recorded_with_nec)));

  // --- Alice's own phone, close to her, with NEC still running.
  core::ScenarioSetup hers;
  hers.device = channel::FindDevice("Moto Z4");
  hers.carrier_hz = hers.device.paper_best_carrier_hz;
  hers.bk_distance_m = 0.3;  // her phone is in her hand
  hers.bob_distance_m = 1.0;
  hers.nec_distance_m = 1.0;
  const auto her_res = runner.Run(pipeline, convo, hers);
  const double her_wer_without = asr::WordErrorRate(
      convo.background_words,
      asr_engine.Transcribe(her_res.recorded_without_nec));
  const double her_wer_with = asr::WordErrorRate(
      convo.background_words,
      asr_engine.Transcribe(her_res.recorded_with_nec));
  std::printf("\n== Alice's Moto Z4 in her hand ==\n");
  std::printf("Alice's WER on her own phone: %.2f -> %.2f (NEC on)\n",
              her_wer_without, her_wer_with);

  // --- §VII: a perfectly linear microphone defeats NEC.
  core::ScenarioSetup linear = spy;
  linear.device = channel::IdealLinearRecorder();
  const auto lin_res = runner.Run(pipeline, convo, linear);
  std::printf("\n== hypothetical distortion-free recorder (paper §VII) ==\n");
  std::printf("Bob's SDR with NEC: %.2f dB (vs %.2f dB without) — "
              "no nonlinearity, no protection\n",
              metrics::Sdr(lin_res.bob_at_recorder.samples(),
                           lin_res.recorded_with_nec.samples()),
              metrics::Sdr(lin_res.bob_at_recorder.samples(),
                           lin_res.recorded_without_nec.samples()));

  const std::filesystem::path out = "cafe_output";
  std::filesystem::create_directories(out);
  audio::WriteWav((out / "spy_without_nec.wav").string(),
                  spy_res.recorded_without_nec);
  audio::WriteWav((out / "spy_with_nec.wav").string(),
                  spy_res.recorded_with_nec);
  std::printf("\nwrote the eavesdropper's two recordings to %s/\n",
              out.string().c_str());
  return 0;
}
