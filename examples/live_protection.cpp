// Scenario example — real-time protection loop.
//
// Simulates the deployed device: the monitor microphone delivers audio in
// irregular capture-callback-sized pieces; the StreamingProcessor chunks
// it, runs encoder-conditioned selection, inverse STFT and ultrasonic
// modulation, and reports per-module latency against the paper's 300 ms
// overshadowing tolerance (§IV-C2, Table II).
#include <cstdio>

#include "core/model_cache.h"
#include "core/streaming.h"
#include "synth/dataset.h"

int main() {
  using namespace nec;

  core::StandardModel model = core::StandardModel::Get(true);
  core::NecPipeline pipeline(std::move(*model.selector), model.encoder, {});

  synth::DatasetBuilder builder({.duration_s = 10.0});
  const auto bob = synth::SpeakerProfile::FromSeed(31337);
  pipeline.Enroll(builder.MakeReferenceAudios(bob, 3, 9));

  // A 10 s monitored stream: Bob talking over babble.
  const synth::MixInstance stream =
      builder.MakeInstance(bob, synth::Scenario::kBabble, 55);

  core::StreamingProcessor processor(pipeline, /*chunk_s=*/1.0);
  std::printf("streaming %0.1f s of monitored audio in 23 ms pieces...\n",
              stream.mixed.duration());

  std::size_t emitted_samples = 0;
  std::size_t pos = 0;
  const std::size_t piece = 368;  // ~23 ms capture callback
  while (pos < stream.mixed.size()) {
    const std::size_t n = std::min(piece, stream.mixed.size() - pos);
    const auto out = processor.Push(stream.mixed.samples().subspan(pos, n));
    if (out.has_value()) {
      emitted_samples += out->size();
      const auto& t = processor.timings();
      std::printf("  chunk %2zu ready: selector %6.1f ms, broadcast %5.1f ms"
                  "  (budget 300 ms)\n",
                  t.chunks, t.selector_ms / t.chunks,
                  t.broadcast_ms / t.chunks);
    }
    pos += n;
  }
  if (const auto tail = processor.Flush()) {
    emitted_samples += tail->size();
  }

  const auto& t = processor.timings();
  std::printf("\nprocessed %zu chunks, emitted %.1f s of modulated "
              "ultrasound\n",
              t.chunks,
              static_cast<double>(emitted_samples) / channel::kAirSampleRate);
  std::printf("average latency per 1 s chunk: %.1f ms (selector %.1f + "
              "broadcast %.1f)\n",
              t.total_ms() / t.chunks, t.avg_selector_ms(),
              t.avg_broadcast_ms());
  std::printf("=> %s the paper's 300 ms overshadowing tolerance\n",
              t.total_ms() / t.chunks < 300.0 ? "WITHIN" : "EXCEEDS");
  return 0;
}
