// Figure 11 reproduction — the system benchmark.
//
// Left/middle panels ("Hide Bob's voice on attacker's recorder"): across
// Joint-Conversation / Babble / Factory / Vehicle noise scenarios, the
// recorded audio must show *lower SDR* and *higher WER* for Bob than the
// raw mixed audio. Paper medians: SDR 0.997 -> -4.918 dB, WER 0.894 ->
// 1.798.
//
// Right panel ("Retain Alice's voice"): with NEC on, Alice's SDR should
// improve (shadow removes Bob, who was interference for Alice) and her WER
// should not rise.
#include <cstdio>
#include <map>
#include <vector>

#include "asr/recognizer.h"
#include "bench_support.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Fig. 11 — overall system benchmark");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 3.0});
  // 10 target speakers as in the paper's benchmark; an interferer pool of
  // "other" speakers for joint conversations.
  const auto targets = synth::DatasetBuilder::MakeSpeakers(10, 7100);
  const auto others = synth::DatasetBuilder::MakeSpeakers(6, 9100);
  core::ScenarioRunner runner;
  std::printf("building the speech recognizer (Google-STT substitute)...\n");
  asr::WordRecognizer recognizer;

  const synth::Scenario scenarios[] = {
      synth::Scenario::kJointConversation, synth::Scenario::kBabble,
      synth::Scenario::kFactory, synth::Scenario::kVehicle};

  struct Row {
    std::vector<double> sdr_mixed, sdr_nec, wer_mixed, wer_nec;
    std::vector<double> alice_sdr_mixed, alice_sdr_nec;
    std::vector<double> alice_wer_mixed, alice_wer_nec;
  };
  std::map<synth::Scenario, Row> rows;

  std::uint64_t seed = 40000;
  for (std::size_t s = 0; s < targets.size(); ++s) {
    const auto refs = builder.MakeReferenceAudios(targets[s], 3, seed++);
    pipeline.Enroll(refs);
    for (synth::Scenario sc : scenarios) {
      const synth::MixInstance inst = builder.MakeInstance(
          targets[s], sc, seed++, &others[s % others.size()]);
      core::ScenarioSetup setup;
      setup.noise_seed = seed++;
      const core::ScenarioResult res = runner.Run(pipeline, inst, setup);
      const bench::SdrPair sdr = bench::ScoreScenario(res);

      Row& row = rows[sc];
      row.sdr_mixed.push_back(sdr.bob_without);
      row.sdr_nec.push_back(sdr.bob_with);

      const auto hyp_mixed =
          recognizer.Transcribe(res.recorded_without_nec);
      const auto hyp_nec = recognizer.Transcribe(res.recorded_with_nec);
      row.wer_mixed.push_back(
          asr::WordErrorRate(inst.target_words, hyp_mixed));
      row.wer_nec.push_back(asr::WordErrorRate(inst.target_words, hyp_nec));

      if (sc == synth::Scenario::kJointConversation) {
        row.alice_sdr_mixed.push_back(sdr.alice_without);
        row.alice_sdr_nec.push_back(sdr.alice_with);
        row.alice_wer_mixed.push_back(
            asr::WordErrorRate(inst.background_words, hyp_mixed));
        row.alice_wer_nec.push_back(
            asr::WordErrorRate(inst.background_words, hyp_nec));
      }
    }
  }

  std::printf("\nHIDE BOB (median over %zu targets)\n", targets.size());
  std::printf("%-10s %12s %12s %12s %12s\n", "scenario", "SDR mixed",
              "SDR NEC", "WER mixed", "WER NEC");
  bench::PrintRule();
  bool hide_ok = true;
  for (synth::Scenario sc : scenarios) {
    Row& r = rows[sc];
    const double sm = bench::Median(r.sdr_mixed);
    const double sn = bench::Median(r.sdr_nec);
    const double wm = bench::Median(r.wer_mixed);
    const double wn = bench::Median(r.wer_nec);
    std::printf("%-10s %9.2f dB %9.2f dB %12.3f %12.3f\n",
                std::string(synth::ScenarioName(sc)).c_str(), sm, sn, wm,
                wn);
    hide_ok = hide_ok && sn < sm - 2.0 && wn >= wm;
  }
  std::printf("paper     %9.2f dB %9.2f dB %12.3f %12.3f  (medians)\n",
              0.997, -4.918, 0.894, 1.798);

  const Row& joint = rows[synth::Scenario::kJointConversation];
  std::printf("\nRETAIN ALICE (joint conversation)\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "", "SDR mixed", "SDR NEC",
              "WER mixed", "WER NEC");
  bench::PrintRule();
  const double am = bench::Median(joint.alice_sdr_mixed);
  const double an = bench::Median(joint.alice_sdr_nec);
  const double awm = bench::Median(joint.alice_wer_mixed);
  const double awn = bench::Median(joint.alice_wer_nec);
  std::printf("%-10s %9.2f dB %9.2f dB %12.3f %12.3f\n", "alice", am, an,
              awm, awn);

  std::printf("\nshape checks:\n");
  std::printf("  Bob hidden in every scenario (SDR drops >2 dB, WER up):  %s\n",
              hide_ok ? "PASS" : "FAIL");
  std::printf("  Alice retained (SDR does not drop):                      %s\n",
              an >= am - 0.5 ? "PASS" : "FAIL");
  std::printf("  Alice's WER does not explode:                            %s\n",
              awn <= awm + 0.25 ? "PASS" : "FAIL");
  return 0;
}
