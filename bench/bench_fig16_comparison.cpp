// Figure 16 reproduction — comparison study: NEC vs white-noise jamming
// vs Patronus scrambling on joint conversations.
//
//  (a) hiding Bob: all three systems push Bob's SDR far below the mixed
//      audio; white noise retains the most target voice of the three.
//  (b) retaining Alice: white noise is unrecoverable (lowest SDR);
//      Patronus recovers only partially (below the raw mixed audio, paper
//      ~-2.5 dB); NEC *improves* Alice over the mixed audio (paper: +5 dB)
//      because it removes Bob, who was interference for Alice.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/patronus.h"
#include "baselines/white_noise.h"
#include "bench_support.h"

int main() {
  using namespace nec;
  bench::PrintHeader(
      "Fig. 16 — comparison: NEC vs white noise vs Patronus");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto targets = synth::DatasetBuilder::MakeSpeakers(6, 16000);
  const auto others = synth::DatasetBuilder::MakeSpeakers(3, 26000);
  core::ScenarioRunner runner;
  baseline::Patronus patronus;

  std::vector<double> bob_mixed, bob_nec, bob_wn, bob_pat;
  std::vector<double> alice_mixed, alice_nec, alice_wn, alice_pat;

  std::uint64_t seed = 80000;
  for (std::size_t s = 0; s < targets.size(); ++s) {
    const auto refs = builder.MakeReferenceAudios(targets[s], 3, seed++);
    pipeline.Enroll(refs);
    const auto inst = builder.MakeInstance(
        targets[s], synth::Scenario::kJointConversation, seed++,
        &others[s % others.size()]);
    core::ScenarioSetup setup;
    setup.noise_seed = seed++;
    const auto res = runner.Run(pipeline, inst, setup);
    const bench::SdrPair sdr = bench::ScoreScenario(res);

    bob_mixed.push_back(sdr.bob_without);
    bob_nec.push_back(sdr.bob_with);
    alice_mixed.push_back(sdr.alice_without);
    alice_nec.push_back(sdr.alice_with);

    // White noise jammer at the same received volume as NEC's shadow
    // (the paper: "we use 10dB based on our previous observation of the
    // shadow sound volume on the same phone" — i.e. matched to the
    // shadow). Our shadow is calibrated to Bob's level at the recorder.
    const double wn_rel_db =
        20.0 * std::log10(1.6 *  // the deployed shadow_gain
                          std::max(1e-9f, res.bob_at_recorder.Rms()) /
                          std::max(1e-9f, res.recorded_without_nec.Rms()));
    const audio::Waveform jammed = baseline::JamWithWhiteNoise(
        res.recorded_without_nec,
        {.noise_rel_db = wn_rel_db, .seed = seed++});
    bob_wn.push_back(
        metrics::Sdr(res.bob_at_recorder.samples(), jammed.samples()));
    alice_wn.push_back(
        metrics::Sdr(res.bk_at_recorder.samples(), jammed.samples()));

    // Patronus: scramble at the recorder; Alice's side is what an
    // authorized device recovers.
    const audio::Waveform scrambled =
        patronus.Scramble(res.recorded_without_nec);
    const audio::Waveform recovered = patronus.Recover(scrambled);
    bob_pat.push_back(
        metrics::Sdr(res.bob_at_recorder.samples(), scrambled.samples()));
    alice_pat.push_back(
        metrics::Sdr(res.bk_at_recorder.samples(), recovered.samples()));
  }

  std::printf("\n(a) hide Bob — median SDR of Bob in the recording (dB)\n");
  bench::PrintRule();
  std::printf("  Bob-Mixed: %7.2f    (paper: ~3)\n",
              bench::Median(bob_mixed));
  std::printf("  Bob-NEC:   %7.2f    (paper: ~-20)\n",
              bench::Median(bob_nec));
  std::printf("  Bob-WN:    %7.2f    (paper: higher than NEC/Patronus)\n",
              bench::Median(bob_wn));
  std::printf("  Bob-Pat.:  %7.2f    (paper: ~-20)\n",
              bench::Median(bob_pat));

  std::printf("\n(b) retain Alice — median SDR of Alice (dB)\n");
  bench::PrintRule();
  std::printf("  Alice-Mixed: %7.2f\n", bench::Median(alice_mixed));
  std::printf("  Alice-NEC:   %7.2f  (paper: mixed +5 dB)\n",
              bench::Median(alice_nec));
  std::printf("  Alice-WN:    %7.2f  (paper: lowest — unrecoverable)\n",
              bench::Median(alice_wn));
  std::printf("  Alice-Pat.:  %7.2f  (paper: ~-2.5 dB, below mixed)\n",
              bench::Median(alice_pat));

  const double bm = bench::Median(bob_mixed), bn = bench::Median(bob_nec),
               bw = bench::Median(bob_wn), bp = bench::Median(bob_pat);
  const double am = bench::Median(alice_mixed),
               an = bench::Median(alice_nec),
               aw = bench::Median(alice_wn),
               ap = bench::Median(alice_pat);
  std::printf("\nshape checks:\n");
  std::printf("  all three systems hide Bob vs mixed:        %s\n",
              (bn < bm - 3 && bw < bm - 3 && bp < bm - 3) ? "PASS" : "FAIL");
  std::printf("  white noise hides least (Bob-WN highest):   %s\n",
              (bw > bn && bw > bp) ? "PASS" : "FAIL");
  std::printf("  Alice: NEC best, Patronus middle, WN worst: %s\n",
              (an > ap && ap > aw) ? "PASS" : "FAIL");
  std::printf("  NEC improves Alice over the mixed audio:    %s\n",
              an > am ? "PASS" : "FAIL");
  return 0;
}
