// Process-wide heap allocation counter for steady-state audits.
//
// Linking bench/alloc_hook.cpp into a binary replaces the global operator
// new/delete family with malloc/free wrappers that count every allocation.
// The count is the audit primitive behind the zero-allocation hot-path
// contract (DESIGN.md §5i): warm up the per-chunk pipeline, snapshot
// AllocCount(), run N chunks, and assert the delta is zero.
//
// The counter is a relaxed atomic — cheap enough to leave in a benchmark
// binary, exact whenever the audited phase is single-threaded (which the
// steady-state phase in bench_runtime_throughput is: it runs one
// StreamingProcessor on the main thread before any SessionManager spawns
// workers).
#pragma once

#include <cstdint>

namespace nec::bench {

/// Number of operator-new calls (all variants) since process start.
std::uint64_t AllocCount();

}  // namespace nec::bench
