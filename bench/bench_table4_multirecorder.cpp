// Table IV reproduction — multiple recorders jammed simultaneously.
//
// One NEC emitter, three recorders with different microphone circuits
// (Mi 8 Lite, Pocophone, Galaxy S9 — devices from the paper's experiment).
// For each of 20 mixed audios and each carrier f_c in {26.3, 27.2, 27.4}
// kHz, NEC succeeds on a recorder when the recorded SDR of Bob is lower
// than without NEC. Columns 1+ / 2+ / 3: at least that many recorders
// affected at once. Paper: 20/20 always for 1+; 2+ and 3 depend on the
// carrier matching each device's band.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "asr/recognizer.h"
#include "bench_support.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Table IV — NEC against multiple recorders");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  std::printf("building the speech recognizer (success criterion: the\n"
              "recorded audio is 'unable to recognize Bob\'s voice')...\n");
  asr::WordRecognizer recognizer;
  synth::DatasetBuilder builder({.duration_s = 2.0});
  const auto targets = synth::DatasetBuilder::MakeSpeakers(4, 4400);
  const auto others = synth::DatasetBuilder::MakeSpeakers(2, 5400);
  core::ScenarioRunner runner;

  const std::vector<std::string> recorders = {"Mi 8 Lite", "Pocophone",
                                              "Galaxy S9"};
  const double carriers_khz[] = {26.3, 27.2, 27.4};
  constexpr int kAudios = 20;

  std::printf("%-12s %8s %8s %8s\n", "f_c (kHz)", "1+", "2+", "3");
  bench::PrintRule();

  bool all_reach_one = true;
  int total_ge2 = 0, total_3 = 0;
  for (double fc : carriers_khz) {
    int count[4] = {0, 0, 0, 0};  // histogram of #affected recorders
    std::uint64_t seed = static_cast<std::uint64_t>(fc * 1000);
    for (int a = 0; a < kAudios; ++a) {
      const auto& target = targets[static_cast<std::size_t>(a) % targets.size()];
      const auto refs = builder.MakeReferenceAudios(target, 3, seed++);
      pipeline.Enroll(refs);
      const auto inst = builder.MakeInstance(
          target, synth::Scenario::kJointConversation, seed++,
          &others[static_cast<std::size_t>(a) % others.size()]);

      // One emitter, one emission: calibrate the power once (against the
      // first recorder, capped by the amplifier), then every recorder
      // hears that same broadcast — the paper's simultaneous-coverage
      // setting.
      int affected = 0;
      std::optional<double> shared_emit_spl;
      for (const std::string& model : recorders) {
        core::ScenarioSetup setup;
        setup.device = channel::FindDevice(model);
        setup.carrier_hz = fc * 1000.0;
        if (shared_emit_spl.has_value()) {
          setup.emit_spl_override = *shared_emit_spl;
        } else {
          setup.emit_spl_cap = 118.0;  // public-space amplifier limit
        }
        setup.noise_seed = seed;
        const auto res = runner.Run(pipeline, inst, setup);
        if (!shared_emit_spl.has_value()) {
          // Public-space deployment: overdrive 3 dB beyond the first
          // recorder's need (still under the amplifier cap) so weaker
          // circuits have a chance — the paper's partial 2+/3 coverage
          // comes from exactly this marginal-power regime.
          shared_emit_spl = std::min(res.emit_spl_db + 3.0, 118.0);
        }
        const bench::SdrPair sdr = bench::ScoreScenario(res);
        // The paper's mechanical criterion is "SDR of recorded audio less
        // than the mixed audio"; its stated meaning is that the recording
        // is "unable to recognize Bob's voice". An over-driven recorder
        // (stronger circuit than the emission was tuned for) fails the
        // SDR proxy while being *more* garbled, so we accept either
        // signal: SDR drop, or a clear WER increase on Bob's words.
        const double wer_without = asr::WordErrorRate(
            inst.target_words,
            recognizer.Transcribe(res.recorded_without_nec));
        const double wer_with = asr::WordErrorRate(
            inst.target_words, recognizer.Transcribe(res.recorded_with_nec));
        if (sdr.bob_with < sdr.bob_without ||
            wer_with > wer_without + 0.15) {
          ++affected;
        }
      }
      ++seed;
      ++count[affected];
    }
    const int ge1 = count[1] + count[2] + count[3];
    const int ge2 = count[2] + count[3];
    std::printf("%-12.1f %5d/20 %5d/20 %5d/20\n", fc, ge1, ge2, count[3]);
    all_reach_one = all_reach_one && ge1 >= 18;
    total_ge2 += ge2;
    total_3 += count[3];
  }
  bench::PrintRule();
  std::printf("paper:  26.3 kHz -> 20/20, 9/20, 4/20\n");
  std::printf("        27.2 kHz -> 20/20, 15/20, 11/20\n");
  std::printf("        27.4 kHz -> 20/20, 14/20, 8/20\n");
  std::printf("\nshape checks:\n");
  std::printf("  at least one recorder always affected:        %s\n",
              all_reach_one ? "PASS" : "FAIL");
  std::printf("  two recorders usually covered simultaneously: %s\n",
              total_ge2 >= 30 ? "PASS" : "FAIL");
  std::printf("  full 3-recorder coverage partial, fc-varying: %s\n",
              total_3 > 0 && total_3 < 60 ? "PASS" : "FAIL");
  return 0;
}
