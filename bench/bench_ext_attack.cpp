// Extension bench (§II threat model): the adaptive attacker.
//
// "If the attacker learns the frequency pattern of the scrambling noise
//  wave, the attacker can deploy an additional microphone to nullify the
//  noises and record them illegally."
//
// We give the attacker a spectral-subtraction denoiser and a clean profile
// of each system's interference, then measure how much of Bob he can
// recover from (a) a white-noise-jammed recording and (b) a NEC'd
// recording. Expected shape: jamming is substantially reversible; NEC is
// not (there is nothing additive to subtract — Bob's content is gone).
#include <cmath>
#include <cstdio>

#include "baselines/adaptive_attacker.h"
#include "baselines/white_noise.h"
#include "bench_support.h"
#include "synth/noise.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Extension — adaptive attacker vs jamming and NEC");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 777000);
  pipeline.Enroll(builder.MakeReferenceAudios(spks[0], 3, 1));
  core::ScenarioRunner runner;

  std::vector<double> jam_before, jam_after, nec_before, nec_after;
  std::uint64_t seed = 50;
  for (int i = 0; i < 4; ++i) {
    const auto inst = builder.MakeInstance(
        spks[0], synth::Scenario::kJointConversation, seed++, &spks[1]);
    core::ScenarioSetup setup;
    setup.noise_seed = seed++;
    const auto res = runner.Run(pipeline, inst, setup);

    // (a) white-noise jamming, then the attacker subtracts the noise
    // profile he measured separately.
    const audio::Waveform jammed = baseline::JamWithWhiteNoise(
        res.recorded_without_nec, {.noise_rel_db = 6.0, .seed = seed++});
    audio::Waveform profile = synth::GenerateNoise(
        synth::NoiseType::kWhite, 16000, jammed.size(), seed++);
    profile.NormalizeRms(res.recorded_without_nec.Rms() *
                         static_cast<float>(std::pow(10.0, 6.0 / 20.0)));
    const audio::Waveform recovered_jam =
        baseline::SpectralSubtractAttack(jammed, profile);
    jam_before.push_back(
        metrics::Sdr(res.bob_at_recorder.samples(), jammed.samples()));
    jam_after.push_back(metrics::Sdr(res.bob_at_recorder.samples(),
                                     recovered_jam.samples()));

    // (b) NEC'd recording: the attacker knows the shadow's average
    // spectrum (he records Bob-free moments) and subtracts it at the
    // level it appears in the recording.
    audio::Waveform shadow_profile = res.shadow_baseband;
    shadow_profile.NormalizeRms(res.recorded_with_nec.Rms());
    const audio::Waveform recovered_nec = baseline::SpectralSubtractAttack(
        res.recorded_with_nec, shadow_profile);
    nec_before.push_back(metrics::Sdr(res.bob_at_recorder.samples(),
                                      res.recorded_with_nec.samples()));
    nec_after.push_back(metrics::Sdr(res.bob_at_recorder.samples(),
                                     recovered_nec.samples()));
  }

  std::printf("\nSDR of Bob before/after the attack (median, dB)\n");
  std::printf("%-22s %10s %10s %10s\n", "protected by", "attacked?",
              "before", "after");
  bench::PrintRule();
  std::printf("%-22s %10s %10.2f %10.2f\n", "white-noise jammer",
              "spectral-sub", bench::Median(jam_before),
              bench::Median(jam_after));
  std::printf("%-22s %10s %10.2f %10.2f\n", "NEC", "spectral-sub",
              bench::Median(nec_before), bench::Median(nec_after));
  bench::PrintRule();

  const double jam_gain = bench::Median(jam_after) - bench::Median(jam_before);
  const double nec_gain = bench::Median(nec_after) - bench::Median(nec_before);
  std::printf("attacker's gain: jamming %+.2f dB, NEC %+.2f dB\n", jam_gain,
              nec_gain);
  std::printf("\nshape checks:\n");
  std::printf("  jamming is partially reversible (gain > 1.5 dB):  %s\n",
              jam_gain > 1.5 ? "PASS" : "FAIL");
  std::printf("  NEC resists the attack (gain < jamming gain):     %s\n",
              nec_gain < jam_gain ? "PASS" : "FAIL");
  return 0;
}
