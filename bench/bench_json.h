// Machine-readable bench output (BENCH_hotpath.json).
//
// The perf harness appends each bench's results as one named top-level
// section of a shared JSON file, so a driver (tools/check.sh smoke mode,
// CI, or a human diffing before/after) can read chunks/sec, module
// latencies and deadline margins without scraping the pretty-printed
// tables. No external JSON dependency: the writer emits a deliberately
// small dialect (ordered objects, arrays, numbers, booleans, and strings
// that must not contain quotes, braces or backslashes), and the section
// merger only ever re-reads files this helper produced.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace nec::bench {

/// Streaming writer for one JSON object. Keys and string values must stay
/// free of `"`, `{`, `}` and `\` — NEC_CHECK'd, not escaped.
class JsonWriter {
 public:
  JsonWriter() { Open('{'); }

  JsonWriter& Field(const char* key, double v) {
    Key(key);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(const char* key, bool v) {
    Key(key);
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Field(const char* key, const char* v) {
    CheckPlain(v);
    Key(key);
    out_ += '"';
    out_ += v;
    out_ += '"';
    return *this;
  }

  JsonWriter& BeginObject(const char* key = nullptr) {
    key != nullptr ? Key(key) : Comma();
    Open('{');
    return *this;
  }
  JsonWriter& BeginArray(const char* key) {
    Key(key);
    Open('[');
    return *this;
  }
  JsonWriter& EndObject() { return CloseScope('}'); }
  JsonWriter& EndArray() { return CloseScope(']'); }

  /// Closes the root object and returns its text. Call exactly once, with
  /// every nested scope already closed.
  std::string Finish() {
    NEC_CHECK_MSG(first_.size() == 1, "unclosed JSON scope at Finish");
    out_ += '}';
    first_.clear();
    return std::move(out_);
  }

 private:
  void CheckPlain(const char* s) {
    for (; *s != '\0'; ++s) {
      NEC_CHECK_MSG(*s != '"' && *s != '{' && *s != '}' && *s != '\\',
                    "JsonWriter strings must not need escaping");
    }
  }
  void Comma() {
    if (!first_.back()) out_ += ", ";
    first_.back() = false;
  }
  void Key(const char* k) {
    CheckPlain(k);
    Comma();
    out_ += '"';
    out_ += k;
    out_ += "\": ";
  }
  void Open(char c) {
    out_ += c;
    first_.push_back(true);
  }
  JsonWriter& CloseScope(char c) {
    NEC_CHECK_MSG(first_.size() > 1, "unbalanced JSON scope close");
    out_ += c;
    first_.pop_back();
    return *this;
  }

  std::string out_;
  std::vector<bool> first_;
};

/// Replaces (or appends) the top-level section `name` of the JSON object
/// file at `path` with `object_text` (a balanced object from JsonWriter).
/// Creates the file when missing. Other benches' sections are preserved,
/// so several binaries can accrete into one BENCH_hotpath.json.
inline void WriteJsonSection(const std::string& path, const std::string& name,
                             const std::string& object_text) {
  // Parse the existing file into (name, raw object) pairs with a brace
  // counter. Safe because the only brace-bearing strings this file can
  // contain are ones CheckPlain rejected at write time.
  std::vector<std::pair<std::string, std::string>> sections;
  std::string in;
  {
    std::ifstream f(path);
    if (f) {
      std::ostringstream ss;
      ss << f.rdbuf();
      in = ss.str();
    }
  }
  std::size_t i = in.find('{');
  while (i != std::string::npos) {
    const std::size_t q0 = in.find('"', i + 1);
    if (q0 == std::string::npos) break;
    const std::size_t q1 = in.find('"', q0 + 1);
    if (q1 == std::string::npos) break;
    const std::size_t b = in.find('{', q1 + 1);
    if (b == std::string::npos) break;
    int depth = 0;
    std::size_t e = b;
    for (; e < in.size(); ++e) {
      if (in[e] == '{') ++depth;
      if (in[e] == '}' && --depth == 0) break;
    }
    if (e >= in.size()) break;
    sections.emplace_back(in.substr(q0 + 1, q1 - q0 - 1),
                          in.substr(b, e - b + 1));
    i = e;  // next iteration scans for the following key's quote
  }

  bool replaced = false;
  for (auto& [key, value] : sections) {
    if (key == name) {
      value = object_text;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(name, object_text);

  std::ofstream out(path, std::ios::trunc);
  NEC_CHECK_MSG(out.good(), "cannot write " << path);
  out << "{\n";
  for (std::size_t s = 0; s < sections.size(); ++s) {
    out << "  \"" << sections[s].first << "\": " << sections[s].second
        << (s + 1 < sections.size() ? "," : "") << "\n";
  }
  out << "}\n";
}

/// Output path for the hot-path perf sections: $NEC_BENCH_JSON if set,
/// else BENCH_hotpath.json in the working directory.
inline std::string BenchJsonPath() {
  const char* env = std::getenv("NEC_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : "BENCH_hotpath.json";
}

/// True when $NEC_BENCH_SMOKE is set non-empty: benches shrink their
/// workloads to seconds so tools/check.sh can validate wiring + JSON
/// output without paying full measurement time. Smoke numbers are not
/// comparable baselines.
inline bool BenchSmokeMode() {
  const char* env = std::getenv("NEC_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

}  // namespace nec::bench
