// Figure 9(c)/(d) reproduction: cosine distance and SDR of the recorded
// signal against the background under time offsets and power coefficients.
//
//     x_record[n] = a * x_mixed[n] + x_shadow[n - t_offset]      (Eq. 11)
//
// As in the paper's quantitative analysis, the superposition is evaluated
// directly in the waveform domain with a known (oracle) shadow, crafted
// for the unit-scale mixed signal. Expected shape:
//  * a = 1 with zero offset gives near-perfect cancellation; smaller a
//    means the shadow over-powers the mix (the paper's favorable a<=0.6
//    regime for hiding),
//  * true waveform cancellation needs small offsets — SDR vs the
//    background is best at 0 and degrades with offset (the paper's
//    "smaller time offset (within 50ms) results in higher SDR"),
//  * for the operational goal (hiding Bob) the offset tolerance is much
//    wider: the misaligned shadow still *masks* Bob (≈300 ms tolerance).
#include <cstdio>
#include <vector>

#include "bench_support.h"

int main() {
  using namespace nec;
  bench::PrintHeader(
      "Fig. 9(c,d) — overshadowing vs time offset and power coefficient");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 909);
  const auto refs = builder.MakeReferenceAudios(spks[0], 3, 11);
  pipeline.Enroll(refs);

  const auto inst = builder.MakeInstance(
      spks[0], synth::Scenario::kJointConversation, 21, &spks[1]);
  // The paper's analysis uses the crafted (known) shadow; ours comes from
  // the oracle S_bk - S_mixed, the best any selector can do.
  const audio::Waveform shadow =
      pipeline.OracleShadow(inst.mixed, inst.background);

  const int offsets_ms[] = {0, 50, 100, 200, 300, 500, 800};
  const double powers[] = {0.4, 0.6, 0.8, 1.0};

  auto make_record = [&](double a, std::size_t off) {
    audio::Waveform record = inst.mixed;
    record.Scale(static_cast<float>(a));  // Eq. 11: a scales the mix only
    record.MixIn(shadow, off, 1.0f);
    return record;
  };

  std::printf("cosine distance of record vs background "
              "(paper Fig. 9c; lower = better)\n");
  std::printf("%-10s", "offset");
  for (double a : powers) std::printf("    a=%.1f", a);
  std::printf("\n");
  bench::PrintRule();

  std::vector<std::vector<double>> sdr_table;
  std::vector<double> bob_residual_sdr;  // at a = 1
  for (int off_ms : offsets_ms) {
    const std::size_t off = static_cast<std::size_t>(off_ms * 16);
    std::printf("%6d ms ", off_ms);
    std::vector<double> sdr_row;
    for (double a : powers) {
      const audio::Waveform record = make_record(a, off);
      std::printf("   %6.3f",
                  metrics::CosineDistance(record.samples(),
                                          inst.background.samples()));
      sdr_row.push_back(
          metrics::Sdr(inst.background.samples(), record.samples()));
    }
    sdr_table.push_back(sdr_row);
    bob_residual_sdr.push_back(metrics::Sdr(
        inst.target.samples(), make_record(1.0, off).samples()));
    std::printf("\n");
  }
  const double mixed_cos = metrics::CosineDistance(
      inst.mixed.samples(), inst.background.samples());
  const double mixed_sdr =
      metrics::Sdr(inst.background.samples(), inst.mixed.samples());
  const double mixed_bob_sdr =
      metrics::Sdr(inst.target.samples(), inst.mixed.samples());
  std::printf("%-10s   %6.3f   (no shadow, any a — worst case)\n", "mixed",
              mixed_cos);

  std::printf("\nSDR of record vs background in dB "
              "(paper Fig. 9d; higher = better)\n");
  std::printf("%-10s", "offset");
  for (double a : powers) std::printf("    a=%.1f", a);
  std::printf("\n");
  bench::PrintRule();
  for (std::size_t r = 0; r < sdr_table.size(); ++r) {
    std::printf("%6d ms ", offsets_ms[r]);
    for (double v : sdr_table[r]) std::printf("   %6.2f", v);
    std::printf("\n");
  }
  std::printf("%-10s   %6.2f   (no shadow reference)\n", "mixed",
              mixed_sdr);

  std::printf("\noperational tolerance: SDR of *Bob* inside the record at "
              "a=1 (lower = hidden)\n");
  std::printf("%-10s %8s\n", "offset", "Bob SDR");
  bench::PrintRule();
  for (std::size_t r = 0; r < sdr_table.size(); ++r) {
    std::printf("%6d ms  %7.2f\n", offsets_ms[r], bob_residual_sdr[r]);
  }
  std::printf("%-10s %7.2f   (no shadow)\n", "mixed", mixed_bob_sdr);

  const bool zero_offset_best =
      sdr_table[0][3] > sdr_table[1][3] + 3.0 &&
      sdr_table[0][3] > mixed_sdr + 3.0;
  bool bob_hidden_within_300 = true;
  for (std::size_t r = 0; r < 5; ++r) {  // offsets up to 300 ms
    if (bob_residual_sdr[r] > mixed_bob_sdr - 1.5) {
      bob_hidden_within_300 = false;
    }
  }
  std::printf("\nshape checks:\n");
  std::printf("  zero offset gives by far the best background SDR:  %s\n",
              zero_offset_best ? "PASS" : "FAIL");
  std::printf("  Bob stays hidden for offsets <= 300 ms (masking):  %s\n",
              bob_hidden_within_300 ? "PASS" : "FAIL");
  return 0;
}
