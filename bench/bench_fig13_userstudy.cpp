// Figure 13 reproduction — user case study 1: hiding 10 volunteers'
// voices in the wild. Left: per-volunteer SDR of mixed vs recorded audio
// (paper medians: 2.798 dB -> -4.374 dB). Right: per-reviewer URS scores
// (paper: recorded audios average ~4.03; mixed audios get mostly 1s,
// reviewers 7/8 being more lenient).
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "metrics/urs.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Fig. 13 — user study: SDR decline and URS scores");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  // "Volunteers" are a different speaker pool than the benchmark corpus.
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto volunteers = synth::DatasetBuilder::MakeSpeakers(10, 33000);
  const auto others = synth::DatasetBuilder::MakeSpeakers(4, 44000);
  core::ScenarioRunner runner;
  metrics::UserRatingModel raters;

  std::vector<double> sdr_mixed, sdr_rec;
  std::vector<std::vector<double>> urs_mixed(raters.num_reviewers()),
      urs_rec(raters.num_reviewers());

  std::uint64_t seed = 60000;
  std::printf("\n%-12s %12s %12s\n", "volunteer", "SDR mixed", "SDR NEC");
  bench::PrintRule();
  for (std::size_t v = 0; v < volunteers.size(); ++v) {
    const auto refs = builder.MakeReferenceAudios(volunteers[v], 3, seed++);
    pipeline.Enroll(refs);
    const auto inst = builder.MakeInstance(
        volunteers[v], synth::Scenario::kJointConversation, seed++,
        &others[v % others.size()]);
    core::ScenarioSetup setup;
    setup.noise_seed = seed++;
    const auto res = runner.Run(pipeline, inst, setup);
    const bench::SdrPair sdr = bench::ScoreScenario(res);
    sdr_mixed.push_back(sdr.bob_without);
    sdr_rec.push_back(sdr.bob_with);
    std::printf("vol-%-8zu %9.2f dB %9.2f dB\n", v + 1, sdr.bob_without,
                sdr.bob_with);

    for (std::size_t r = 0; r < raters.num_reviewers(); ++r) {
      urs_mixed[r].push_back(raters.Rate(r, res.recorded_without_nec,
                                         res.bob_at_recorder, seed));
      urs_rec[r].push_back(raters.Rate(r, res.recorded_with_nec,
                                       res.bob_at_recorder, seed));
    }
    ++seed;
  }
  bench::PrintRule();
  std::printf("median       %9.2f dB %9.2f dB\n",
              bench::Median(sdr_mixed), bench::Median(sdr_rec));
  std::printf("paper        %9.2f dB %9.2f dB\n", 2.798, -4.374);

  std::printf("\nURS by reviewer (1 = target clearly audible, 5 = muted):\n");
  std::printf("%-10s %10s %10s\n", "reviewer", "mixed", "recorded");
  bench::PrintRule();
  double grand_mixed = 0.0, grand_rec = 0.0;
  for (std::size_t r = 0; r < raters.num_reviewers(); ++r) {
    const double m = bench::Mean(urs_mixed[r]);
    const double q = bench::Mean(urs_rec[r]);
    std::printf("rev-%-6zu %10.2f %10.2f\n", r + 1, m, q);
    grand_mixed += m;
    grand_rec += q;
  }
  grand_mixed /= static_cast<double>(raters.num_reviewers());
  grand_rec /= static_cast<double>(raters.num_reviewers());
  bench::PrintRule();
  std::printf("mean       %10.2f %10.2f   (paper: ~1.x vs ~4.03)\n",
              grand_mixed, grand_rec);

  std::printf("\nshape checks:\n");
  std::printf("  SDR declines for every volunteer:   %s\n",
              [&] {
                for (std::size_t i = 0; i < sdr_rec.size(); ++i) {
                  if (sdr_rec[i] >= sdr_mixed[i]) return "FAIL";
                }
                return "PASS";
              }());
  std::printf("  recorded URS ~4, mixed URS low:     %s\n",
              grand_rec > 3.5 && grand_mixed < 2.5 ? "PASS" : "FAIL");
  return 0;
}
