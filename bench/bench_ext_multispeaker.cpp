// Extension bench (§VII future work): protecting a two-person private
// conversation. Both participants enroll; the union shadow must hide both
// from the eavesdropper while an unrelated third voice (the "public"
// background) survives.
//
// Compares the two embedding-integration strategies against the
// single-target baseline (which protects only participant 1).
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "core/multi_speaker.h"

int main() {
  using namespace nec;
  bench::PrintHeader(
      "Extension — multi-speaker protection (paper §VII future work)");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  core::MultiSpeakerProtector protector(pipeline);
  synth::DatasetBuilder builder({.duration_s = 3.0});
  // p1, p2: the private conversation. pub: unrelated background voice.
  const auto spks = synth::DatasetBuilder::MakeSpeakers(3, 121212);
  const auto& p1 = spks[0];
  const auto& p2 = spks[1];
  const auto& pub = spks[2];

  protector.EnrollTarget(builder.MakeReferenceAudios(p1, 3, 1));
  protector.EnrollTarget(builder.MakeReferenceAudios(p2, 3, 2));
  pipeline.Enroll(builder.MakeReferenceAudios(p1, 3, 1));  // single-target

  // The monitor's view of the scene: the two protected participants sit
  // at the table with the device (full level); the public voice is a
  // bystander several meters away (-12 dB) — the §VII deployment
  // geometry.
  const auto u1 = builder.MakeUtterance(p1, 31);
  const auto u2 = builder.MakeUtterance(p2, 32);
  auto u3 = builder.MakeUtterance(pub, 33);
  u3.wave.Scale(0.25f);
  audio::Waveform mixed = audio::Mix(u1.wave, u2.wave);
  mixed = audio::Mix(mixed, u3.wave);

  struct Result {
    const char* name;
    double p1_drop, p2_drop, pub_drop;
  };
  std::vector<Result> results;

  auto evaluate = [&](const char* name, const audio::Waveform& shadow) {
    // Deployment shadow strength (ScenarioSetup's default a ~ 0.6 regime).
    const audio::Waveform record = audio::Mix(mixed, shadow, 1.0f, 1.6f);
    auto drop = [&](const audio::Waveform& stem) {
      return metrics::Sdr(stem.samples(), mixed.samples()) -
             metrics::Sdr(stem.samples(), record.samples());
    };
    results.push_back(
        {name, drop(u1.wave), drop(u2.wave), drop(u3.wave)});
  };

  evaluate("single-target (p1 only)", pipeline.GenerateShadow(mixed));
  evaluate("merged embedding",
           protector.GenerateShadow(mixed,
                                    core::MultiStrategy::kMergedEmbedding));
  evaluate("iterative residual",
           protector.GenerateShadow(
               mixed, core::MultiStrategy::kIterativeResidual));

  std::printf("\nSDR drop in dB (positive = hidden; 'pub' should stay ~0)\n");
  std::printf("%-26s %8s %8s %8s\n", "strategy", "p1", "p2", "public");
  bench::PrintRule();
  for (const Result& r : results) {
    std::printf("%-26s %8.2f %8.2f %8.2f\n", r.name, r.p1_drop, r.p2_drop,
                r.pub_drop);
  }
  bench::PrintRule();
  const Result& iter = results[2];
  std::printf("\nshape checks:\n");
  std::printf("  iterative residual hides BOTH participants:   %s\n",
              (iter.p1_drop > 1.5 && iter.p2_drop > 1.5) ? "PASS" : "FAIL");
  std::printf("  public voice suffers less than participants:  %s\n",
              (iter.pub_drop < iter.p1_drop && iter.pub_drop < iter.p2_drop)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
