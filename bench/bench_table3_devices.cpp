// Table III reproduction — per-device carrier frequency response and
// maximum shadowing distance for the 8 smartphones.
//
// For each device we (1) sweep the carrier and report the acceptance band
// (within 10 dB of peak demodulation) plus the best carrier, and (2) push
// the recorder away from the scene until NEC stops hiding Bob (SDR with
// NEC no longer below SDR without by >2 dB) — the "Max Dis." column.
// Absolute distances depend on emitter power (fixed at 115 dB_SPL @5 cm,
// roughly a Vifa + power amp); the reproduced shape is the *ordering* and
// ~9x spread across devices.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support.h"

namespace {

using namespace nec;

// Demodulated level of a modulated probe at the device, fixed distance.
double DemodLevel(const channel::DeviceProfile& dev, double carrier_hz,
                  const audio::Waveform& probe_baseband) {
  const audio::Waveform mod =
      channel::ModulateAm(probe_baseband, {.carrier_hz = carrier_hz});
  channel::SceneSimulator sim;
  channel::MicrophoneModel mic(dev, {.noise_seed = 5});
  const audio::Waveform rec = sim.Record(
      {}, {{.wave = &mod, .distance_m = 0.5, .spl_at_ref_db = 110.0,
            .carrier_hz = carrier_hz}}, mic);
  return rec.Rms();
}

}  // namespace

int main() {
  bench::PrintHeader("Table III — devices: carrier bands and max distance");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 2.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 3300);
  const auto refs = builder.MakeReferenceAudios(spks[0], 3, 4);
  pipeline.Enroll(refs);
  const auto inst = builder.MakeInstance(
      spks[0], synth::Scenario::kJointConversation, 9, &spks[1]);
  core::ScenarioRunner runner;

  // Probe tone for the carrier sweep.
  audio::Waveform probe(16000, std::size_t{8000});
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe[i] = 0.5f * std::sin(2.0f * 3.14159265f * 800.0f * i / 16000.0f);
  }

  std::printf("%-12s %-9s %18s %18s %9s %9s\n", "model", "brand",
              "paper band (best)", "sim band (best)", "paper d", "sim d");
  bench::PrintRule();

  std::vector<double> paper_d, sim_d;
  for (const channel::DeviceProfile& dev : channel::Table3Devices()) {
    // --- Carrier sweep 21..33 kHz in 0.5 kHz steps.
    double best_level = 0.0, best_fc = 0.0;
    std::vector<std::pair<double, double>> sweep;
    for (double fc = 21000.0; fc <= 33000.0; fc += 500.0) {
      const double level = DemodLevel(dev, fc, probe);
      sweep.emplace_back(fc, level);
      if (level > best_level) {
        best_level = level;
        best_fc = fc;
      }
    }
    double band_lo = best_fc, band_hi = best_fc;
    for (const auto& [fc, level] : sweep) {
      if (level > best_level * 0.316) {  // within 10 dB of peak
        band_lo = std::min(band_lo, fc);
        band_hi = std::max(band_hi, fc);
      }
    }

    // --- Max distance: grow the scene until hiding fails.
    double max_dist = 0.0;
    for (double d : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0,
                     4.5}) {
      core::ScenarioSetup setup;
      setup.device = dev;
      setup.carrier_hz = best_fc;
      setup.bob_distance_m = d;
      setup.nec_distance_m = d;
      setup.bk_distance_m = d;
      // The amplifier's physical power limit caps the calibrated emit
      // level; beyond its reach, cancellation falls short.
      setup.emit_spl_cap = 115.0;
      setup.noise_seed = 77;
      const auto res = runner.Run(pipeline, inst, setup);
      const bench::SdrPair sdr = bench::ScoreScenario(res);
      if (sdr.bob_with < sdr.bob_without - 2.0) {
        max_dist = d;
      } else if (d > max_dist + 0.76) {
        break;  // two consecutive failures — out of range
      }
    }

    std::printf("%-12s %-9s %5.0f-%2.0f kHz (%4.1f) %5.0f-%2.0f kHz (%4.1f) "
                "%7.2f m %7.2f m\n",
                dev.model.c_str(), dev.brand.c_str(),
                dev.paper_carrier_lo_hz / 1000, dev.paper_carrier_hi_hz / 1000,
                dev.paper_best_carrier_hz / 1000, band_lo / 1000,
                band_hi / 1000, best_fc / 1000, dev.paper_max_distance_m,
                max_dist);
    paper_d.push_back(dev.paper_max_distance_m);
    sim_d.push_back(max_dist);
  }
  bench::PrintRule();

  // Rank correlation between paper and simulated max distances.
  const std::size_t n = paper_d.size();
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (v[j] < v[i]) r[i] += 1.0;
      }
    }
    return r;
  };
  const auto rp = ranks(paper_d);
  const auto rs = ranks(sim_d);
  std::vector<float> rpf(rp.begin(), rp.end()), rsf(rs.begin(), rs.end());
  const double rank_corr = metrics::PearsonCorrelation(rpf, rsf);

  const double spread =
      *std::max_element(sim_d.begin(), sim_d.end()) /
      std::max(0.01, *std::min_element(sim_d.begin(), sim_d.end()));
  std::printf("rank correlation of max distances (paper vs sim): %.2f\n",
              rank_corr);
  std::printf("device range spread: %.1fx (paper: 3.72/0.43 = 8.7x)\n",
              spread);
  std::printf("\nshape checks:\n");
  std::printf("  distance ordering matches Table III (rank corr > 0.7): %s\n",
              rank_corr > 0.7 ? "PASS" : "FAIL");
  std::printf("  wide device variance (spread > 3x):                   %s\n",
              spread > 3.0 ? "PASS" : "FAIL");
  return 0;
}
