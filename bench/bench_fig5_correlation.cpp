// Figure 5 reproduction: Pearson correlation matrix of the LAS of 10
// different utterances from 4 speakers. Paper: intra-speaker correlations
// reach ~0.96 on average; inter-speaker generally below 0.75.
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "encoder/las.h"
#include "synth/dataset.h"

int main() {
  using namespace nec;
  bench::PrintHeader(
      "Fig. 5 — Pearson correlation matrix of LAS (4 speakers x 10 "
      "utterances)");

  constexpr int kSpeakers = 4;
  constexpr int kUtterances = 10;
  synth::DatasetBuilder builder({.duration_s = 2.5});
  const auto speakers =
      synth::DatasetBuilder::MakeSpeakers(kSpeakers, 2025);

  std::vector<std::vector<float>> las;
  las.reserve(kSpeakers * kUtterances);
  for (int s = 0; s < kSpeakers; ++s) {
    for (int u = 0; u < kUtterances; ++u) {
      const auto utt = builder.MakeUtterance(
          speakers[static_cast<std::size_t>(s)],
          static_cast<std::uint64_t>(1000 + s * 100 + u));
      las.push_back(encoder::VoicedLas(utt.wave));
    }
  }

  // 4x4 block-average matrix (the figure's visible structure).
  double block[kSpeakers][kSpeakers] = {};
  double intra_sum = 0.0, inter_sum = 0.0;
  int intra_n = 0, inter_n = 0;
  for (int i = 0; i < kSpeakers * kUtterances; ++i) {
    for (int j = 0; j < kSpeakers * kUtterances; ++j) {
      if (i == j) continue;
      const double c = metrics::PearsonCorrelation(
          las[static_cast<std::size_t>(i)], las[static_cast<std::size_t>(j)]);
      const int si = i / kUtterances, sj = j / kUtterances;
      block[si][sj] += c;
      if (si == sj) {
        intra_sum += c;
        ++intra_n;
      } else {
        inter_sum += c;
        ++inter_n;
      }
    }
  }

  std::printf("block-averaged correlation matrix:\n        ");
  for (int j = 0; j < kSpeakers; ++j) std::printf("  spk-%c", 'A' + j);
  std::printf("\n");
  for (int i = 0; i < kSpeakers; ++i) {
    std::printf("  spk-%c ", 'A' + i);
    for (int j = 0; j < kSpeakers; ++j) {
      const double denom = (i == j) ? kUtterances * (kUtterances - 1)
                                    : kUtterances * kUtterances;
      std::printf("  %5.3f", block[i][j] / denom);
    }
    std::printf("\n");
  }
  bench::PrintRule();
  const double intra = intra_sum / intra_n;
  const double inter = inter_sum / inter_n;
  std::printf("mean intra-speaker correlation: %.3f   (paper: ~0.96)\n",
              intra);
  std::printf("mean inter-speaker correlation: %.3f   (paper: <0.75)\n",
              inter);
  // Note: our synthetic voices all come from one parametric source-filter
  // family, so raw-LAS inter-speaker correlation sits higher than the
  // paper's <0.75 across 40 human vocal tracts (EXPERIMENTS.md divergence
  // #2). The property the system needs is the intra/inter separation.
  std::printf("\nshape check (intra > inter): %s\n",
              intra > inter + 0.04
                  ? "PASS — timbre pattern is speaker-specific and "
                    "utterance-independent"
                  : "WEAK — speaker structure not separable");
  return 0;
}
