// Extension bench — overshadowing robustness under room reverberation.
//
// The paper evaluates in real rooms (office, cafe); our scene simulator is
// free-field by default. Reflections smear both Bob's voice and the
// demodulated shadow in time, degrading the phase-coherent part of the
// cancellation. This bench quantifies the degradation at the 16 kHz
// superposition level: the same oracle shadow applied to a dry scene and
// to increasingly reverberant rooms.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "channel/reverb.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Extension — cancellation vs room reverberation");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  // The monitor is worn by Bob: his voice dominates the monitored mix by
  // ~12 dB (deployment geometry), like ScenarioRunner's physical setup.
  synth::DatasetBuilder builder(
      {.duration_s = 3.0, .background_snr_db = 12.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 888111);
  pipeline.Enroll(builder.MakeReferenceAudios(spks[0], 3, 1));
  const auto inst = builder.MakeInstance(
      spks[0], synth::Scenario::kJointConversation, 5, &spks[1]);

  struct Room {
    const char* name;
    double rt60;
    double wet;
  };
  const Room rooms[] = {
      {"free field (dry)", 0.0, 0.0},
      {"office  (RT60 0.4 s)", 0.4, 0.15},
      {"cafe    (RT60 0.6 s)", 0.6, 0.25},
      {"hall    (RT60 1.2 s)", 1.2, 0.35},
  };

  std::printf("\n%-22s %14s %14s\n", "room", "Bob SDR drop",
              "Alice SDR gain");
  bench::PrintRule();
  std::vector<double> drops;
  for (const Room& room : rooms) {
    // The room shapes what the recorder hears: both the mixed voices and
    // the arriving shadow pass through it.
    audio::Waveform mixed = inst.mixed;
    audio::Waveform target = inst.target;
    audio::Waveform background = inst.background;
    if (room.rt60 > 0.0) {
      channel::RoomAcoustics acoustics{.rt60_s = room.rt60,
                                       .wet = room.wet};
      mixed = channel::Reverberator(16000, acoustics).Process(mixed);
      target = channel::Reverberator(16000, acoustics).Process(target);
      background =
          channel::Reverberator(16000, acoustics).Process(background);
    }
    // NEC monitors the reverberant mix and the shadow superposes on it.
    const audio::Waveform shadow = pipeline.GenerateShadow(
        mixed.Slice(0, inst.mixed.size()));
    audio::Waveform record = mixed;
    record.MixIn(shadow, 0, 1.6f);  // deployment shadow strength

    const double bob_drop =
        metrics::Sdr(target.samples(), mixed.samples()) -
        metrics::Sdr(target.samples(), record.samples());
    const double alice_gain =
        metrics::Sdr(background.samples(), record.samples()) -
        metrics::Sdr(background.samples(), mixed.samples());
    std::printf("%-22s %14.2f %14.2f\n", room.name, bob_drop, alice_gain);
    drops.push_back(bob_drop);
  }
  bench::PrintRule();
  std::printf("\nshape checks:\n");
  std::printf("  NEC still hides Bob in an office (drop > 1.5 dB):  %s\n",
              drops[1] > 1.5 ? "PASS" : "FAIL");
  // The monitor hears the same reverberant field it cancels, so the
  // shadow stays phase-coherent with the room's output — cancellation is
  // robust to RT60 rather than degrading (the offset study, Fig. 9, is
  // where alignment stress lives).
  std::printf("  cancellation stable across rooms (within 3 dB):    %s\n",
              std::abs(drops[3] - drops[0]) < 3.0 ? "PASS" : "FAIL");
  return 0;
}
