// Figure 3 reproduction: "Distribution of formants across spectrograms,
// representing the speaker-specific but utterance-independent timber
// pattern."
//
// Two speakers each read the paper's two calibration sentences; we derive
// formants per 20 ms frame (spectral peak picking on the LPC-free FFT
// spectrum, as the paper does) and report, per speaker, the mean and spread
// of the first three formant tracks. Expected shape (area 1 / area 2 of the
// figure): a speaker's formant statistics are stable across utterances,
// while differing between speakers.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "dsp/stft.h"
#include "synth/synthesizer.h"

namespace {

using namespace nec;

// Picks up to three formant peaks (local maxima with prominence) from one
// magnitude frame, in the 200-3500 Hz range.
std::vector<double> FormantPeaks(const dsp::Spectrogram& spec, std::size_t t,
                                 int sample_rate, std::size_t fft_size) {
  std::vector<double> peaks;
  const double bin_hz = static_cast<double>(sample_rate) / fft_size;
  const std::size_t lo = static_cast<std::size_t>(200.0 / bin_hz);
  const std::size_t hi = std::min(spec.num_bins() - 2,
                                  static_cast<std::size_t>(3500.0 / bin_hz));
  for (std::size_t f = std::max<std::size_t>(lo, 2); f < hi && peaks.size() < 3;
       ++f) {
    const float m = spec.MagAt(t, f);
    if (m > spec.MagAt(t, f - 1) && m > spec.MagAt(t, f + 1) &&
        m > 1.8f * (spec.MagAt(t, f - 2) + spec.MagAt(t, f + 2)) / 2.0f) {
      peaks.push_back(f * bin_hz);
      f += 3;  // skip the peak's shoulder
    }
  }
  return peaks;
}

struct FormantStats {
  double mean[3] = {0, 0, 0};
  double stddev[3] = {0, 0, 0};
  std::size_t frames = 0;
};

FormantStats AnalyzeUtterance(const audio::Waveform& wave) {
  // 20 ms frames as in §III.
  const dsp::StftConfig cfg{.fft_size = 1024, .win_length = 320,
                            .hop_length = 160};
  const dsp::Spectrogram spec = dsp::Stft(wave, cfg);

  std::vector<std::vector<double>> tracks(3);
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    // Voiced-frame gate.
    double energy = 0.0;
    for (std::size_t f = 0; f < spec.num_bins(); ++f) {
      energy += static_cast<double>(spec.MagAt(t, f)) * spec.MagAt(t, f);
    }
    if (energy < 1e-3) continue;
    const auto peaks = FormantPeaks(spec, t, 16000, cfg.fft_size);
    for (std::size_t k = 0; k < peaks.size() && k < 3; ++k) {
      tracks[k].push_back(peaks[k]);
    }
  }

  FormantStats stats;
  for (int k = 0; k < 3; ++k) {
    const auto& tr = tracks[static_cast<std::size_t>(k)];
    if (tr.empty()) continue;
    double m = 0.0;
    for (double v : tr) m += v;
    m /= static_cast<double>(tr.size());
    double var = 0.0;
    for (double v : tr) var += (v - m) * (v - m);
    stats.mean[k] = m;
    stats.stddev[k] = std::sqrt(var / static_cast<double>(tr.size()));
    stats.frames = tr.size();
  }
  return stats;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 3 — formant distributions: speaker-specific, "
      "utterance-independent");

  const char* utterances[2] = {
      "my ideal morning begins with hot coffee",
      "don't ask me to carry an oily rag like that"};
  synth::Synthesizer synth({.sample_rate = 16000});

  std::printf("%-10s %-12s %10s %10s %10s\n", "speaker", "utterance", "F1",
              "F2", "F3");
  bench::PrintRule();

  double cross_utt_shift[2] = {0, 0};   // per speaker
  double cross_spk_shift = 0.0;
  FormantStats all[2][2];

  for (int s = 0; s < 2; ++s) {
    const auto spk = synth::SpeakerProfile::FromSeed(11 + s * 17);
    for (int u = 0; u < 2; ++u) {
      const auto utt = synth.SynthesizeSentence(
          spk, utterances[u], static_cast<std::uint64_t>(40 + u));
      all[s][u] = AnalyzeUtterance(utt.wave);
      std::printf("%-10s utterance%-3d %7.0f Hz %7.0f Hz %7.0f Hz\n",
                  ("spk-" + std::string(1, char('A' + s))).c_str(), u + 1,
                  all[s][u].mean[0], all[s][u].mean[1], all[s][u].mean[2]);
    }
  }
  bench::PrintRule();

  auto shift = [](const FormantStats& a, const FormantStats& b) {
    double acc = 0.0;
    for (int k = 0; k < 3; ++k) {
      acc += std::abs(a.mean[k] - b.mean[k]);
    }
    return acc / 3.0;
  };
  cross_utt_shift[0] = shift(all[0][0], all[0][1]);
  cross_utt_shift[1] = shift(all[1][0], all[1][1]);
  cross_spk_shift =
      0.5 * (shift(all[0][0], all[1][0]) + shift(all[0][1], all[1][1]));

  std::printf("mean |formant shift| across utterances, same speaker:"
              " %.0f Hz / %.0f Hz\n",
              cross_utt_shift[0], cross_utt_shift[1]);
  std::printf("mean |formant shift| across speakers, same utterance:"
              " %.0f Hz\n", cross_spk_shift);
  std::printf("\nshape check (paper: area-1 consistency, area-2 "
              "distinctiveness): %s\n",
              (cross_spk_shift >
               1.5 * std::max(cross_utt_shift[0], cross_utt_shift[1]))
                  ? "PASS — inter-speaker shift dominates"
                  : "WEAK — margins below 1.5x");
  return 0;
}
