// Ablation (DESIGN.md §5) — phase choice for shadow rendering.
//
// §IV-C1 renders the shadow spectrogram with the mixed signal's phase.
// Alternatives: Griffin-Lim's self-consistent phase and random phase.
// Expected shape: the mixed phase wins at zero arrival offset (it is
// exactly anti-phase with the content being cancelled); Griffin-Lim
// lands close; random phase only masks.
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "dsp/griffin_lim.h"
#include "dsp/stft.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Ablation — shadow rendering phase "
                     "(mixed / Griffin-Lim / random)");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 424200);
  pipeline.Enroll(builder.MakeReferenceAudios(spks[0], 3, 1));
  const dsp::StftConfig& stft = pipeline.config().stft;

  std::vector<double> mixed_phase, gl_phase, rand_phase;
  std::uint64_t seed = 10;
  for (int i = 0; i < 4; ++i) {
    const auto inst = builder.MakeInstance(
        spks[0], synth::Scenario::kJointConversation, seed++, &spks[1]);
    const dsp::Spectrogram spec = dsp::Stft(inst.mixed, stft);
    // Oracle shadow surface so the comparison isolates the phase choice.
    const dsp::Spectrogram bk = dsp::Stft(inst.background, stft);
    std::vector<float> surface(spec.mag().size());
    for (std::size_t j = 0; j < surface.size(); ++j) {
      surface[j] = bk.mag()[j] - spec.mag()[j];
    }

    auto bob_drop = [&](const audio::Waveform& shadow) {
      const audio::Waveform record = audio::Mix(inst.mixed, shadow);
      return metrics::Sdr(inst.target.samples(), inst.mixed.samples()) -
             metrics::Sdr(inst.target.samples(), record.samples());
    };

    mixed_phase.push_back(bob_drop(dsp::IstftWithPhase(
        surface, spec, stft, 16000, inst.mixed.size())));
    gl_phase.push_back(bob_drop(dsp::GriffinLim(
        surface, spec.num_frames(), stft, 16000,
        {.iterations = 20, .num_samples = inst.mixed.size()})));
    gl_phase.back() = gl_phase.back();
    rand_phase.push_back(bob_drop(dsp::GriffinLim(
        surface, spec.num_frames(), stft, 16000,
        {.iterations = 1, .phase_seed = seed * 7 + 1,
         .num_samples = inst.mixed.size()})));
  }

  std::printf("\nSDR drop of Bob in dB (higher = better cancellation)\n");
  std::printf("%-22s %10s\n", "phase source", "median");
  bench::PrintRule();
  std::printf("%-22s %10.2f   (the paper's choice, §IV-C1)\n",
              "mixed-signal phase", bench::Median(mixed_phase));
  std::printf("%-22s %10.2f\n", "Griffin-Lim (20 it)",
              bench::Median(gl_phase));
  std::printf("%-22s %10.2f\n", "random phase",
              bench::Median(rand_phase));
  bench::PrintRule();
  std::printf("\nshape check (mixed phase is the right default): %s\n",
              bench::Median(mixed_phase) >= bench::Median(rand_phase)
                  ? "PASS"
                  : "FAIL");
  return 0;
}
