// Table I reproduction — the testing corpus: scenario catalogue with the
// occupied frequency band of each noise class and generated instance
// counts. Verifies each generated class actually occupies its Table I
// band.
#include <cstdio>

#include "bench_support.h"
#include "dsp/stft.h"
#include "synth/noise.h"

namespace {

using namespace nec;

double BandEdgeHz(const audio::Waveform& w, double energy_fraction) {
  // Frequency below which `energy_fraction` of the total energy lies.
  dsp::StftConfig cfg{.fft_size = 512, .win_length = 400, .hop_length = 160};
  const dsp::Spectrogram spec = dsp::Stft(w, cfg);
  std::vector<double> per_bin(spec.num_bins(), 0.0);
  double total = 0.0;
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    for (std::size_t f = 0; f < spec.num_bins(); ++f) {
      const double e =
          static_cast<double>(spec.MagAt(t, f)) * spec.MagAt(t, f);
      per_bin[f] += e;
      total += e;
    }
  }
  double acc = 0.0;
  for (std::size_t f = 0; f < per_bin.size(); ++f) {
    acc += per_bin[f];
    if (acc >= energy_fraction * total) {
      return f * 16000.0 / cfg.fft_size;
    }
  }
  return 8000.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Table I — testing dataset composition");

  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto targets = synth::DatasetBuilder::MakeSpeakers(10, 7100);
  const auto others = synth::DatasetBuilder::MakeSpeakers(6, 9100);

  struct Row {
    synth::Scenario scenario;
    const char* source;
    double paper_band_hz;
    int paper_instances;
  };
  const Row rows[] = {
      {synth::Scenario::kJointConversation, "synthetic speakers", 8000, 560},
      {synth::Scenario::kBabble, "babble generator", 4000, 690},
      {synth::Scenario::kFactory, "factory generator", 2000, 690},
      {synth::Scenario::kVehicle, "vehicle generator", 500, 690},
  };

  std::printf("%-10s %-20s %14s %14s %10s\n", "scenario", "source",
              "paper band", "measured 95%", "checked");
  bench::PrintRule();

  bool all_ok = true;
  std::uint64_t seed = 100;
  for (const Row& row : rows) {
    // Sample a few instances and measure the background's 95%-energy edge.
    double edge = 0.0;
    const int kProbe = 3;
    for (int i = 0; i < kProbe; ++i) {
      const auto inst = builder.MakeInstance(
          targets[static_cast<std::size_t>(i)], row.scenario, seed++,
          &others[static_cast<std::size_t>(i)]);
      edge += BandEdgeHz(inst.background, 0.95);
    }
    edge /= kProbe;
    // Joint conversations are full-band speech (0-8 kHz): accept any edge.
    const bool ok = row.scenario == synth::Scenario::kJointConversation
                        ? true
                        : edge <= 1.35 * row.paper_band_hz;
    all_ok = all_ok && ok;
    std::printf("%-10s %-20s %8.0f Hz %10.0f Hz %10s\n",
                std::string(synth::ScenarioName(row.scenario)).c_str(),
                row.source, row.paper_band_hz, edge, ok ? "PASS" : "FAIL");
  }
  bench::PrintRule();
  std::printf("paper instance counts: 560 joint + 690 per noise class "
              "(3,190 benchmark audios); our corpus generator is\n"
              "seed-parameterized and produces any count on demand — "
              "bench_fig11 uses 10 targets x 4 scenarios.\n");
  std::printf("\nband structure: %s\n", all_ok ? "PASS" : "FAIL");
  return 0;
}
