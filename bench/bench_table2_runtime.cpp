// Table II reproduction — running-time analysis.
//
// Times the three NEC modules on a 1 s mixed-audio chunk (the paper's unit
// of work): Encoder (d-vector), Selector (STFT + DNN + inverse STFT) and
// Broadcast (ultrasonic modulation), for both NEC's selector and the
// VoiceFilter baseline. Paper (PC, 1080Ti): encoder 0.467 ms, NEC selector
// 1.51 ms vs VoiceFilter 3.65 ms (2.4x), broadcast 11.96 ms; on a
// Raspberry Pi 4, 293.7 ms vs 446.2 ms (1.5x). We run on one CPU core, so
// absolute numbers sit between those two platforms; the NEC-vs-VoiceFilter
// *ratio* is the reproduced quantity. The Pi row is estimated with a fixed
// CPU scale factor (documented in EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "baselines/voicefilter.h"
#include "bench_json.h"
#include "bench_support.h"
#include "channel/modulation.h"
#include "dsp/stft.h"
#include "runtime/gemm_parallel.h"

namespace {

using namespace nec;

struct Workload {
  core::NecConfig config = core::NecConfig::Fast();
  audio::Waveform chunk;          // 1 s mixed audio
  nn::Tensor spec_tensor;         // normalized (T, F)
  std::vector<float> dvector;
  std::unique_ptr<core::Selector> selector;
  std::unique_ptr<baseline::VoiceFilterSelector> voicefilter;
  std::unique_ptr<encoder::LasEncoder> encoder;

  static Workload& Get() {
    static Workload w = [] {
      Workload w;
      synth::DatasetBuilder builder({.duration_s = 1.0});
      const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 222);
      const auto inst = builder.MakeInstance(
          spks[0], synth::Scenario::kJointConversation, 3, &spks[1]);
      w.chunk = inst.mixed;
      const dsp::Spectrogram spec = dsp::Stft(w.chunk, w.config.stft);
      w.spec_tensor = nn::Tensor({spec.num_frames(), spec.num_bins()});
      for (std::size_t i = 0; i < w.spec_tensor.numel(); ++i) {
        w.spec_tensor[i] = spec.mag()[i];
      }
      w.encoder = std::make_unique<encoder::LasEncoder>(
          w.config.embedding_dim);
      w.dvector = w.encoder->Embed(w.chunk);
      w.selector = std::make_unique<core::Selector>(w.config, 1);
      w.voicefilter =
          std::make_unique<baseline::VoiceFilterSelector>(w.config, 2);
      return w;
    }();
    return w;
  }
};

void BM_Encoder(benchmark::State& state) {
  Workload& w = Workload::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.encoder->Embed(w.chunk));
  }
}
BENCHMARK(BM_Encoder)->Unit(benchmark::kMillisecond);

void BM_SelectorNec(benchmark::State& state) {
  Workload& w = Workload::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.selector->Forward(w.spec_tensor, w.dvector, false));
  }
}
BENCHMARK(BM_SelectorNec)->Unit(benchmark::kMillisecond);

void BM_SelectorVoiceFilter(benchmark::State& state) {
  Workload& w = Workload::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.voicefilter->Forward(w.spec_tensor, w.dvector));
  }
}
BENCHMARK(BM_SelectorVoiceFilter)->Unit(benchmark::kMillisecond);

void BM_Broadcast(benchmark::State& state) {
  Workload& w = Workload::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel::ModulateAm(w.chunk, {}));
  }
}
BENCHMARK(BM_Broadcast)->Unit(benchmark::kMillisecond);

double TimeMs(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

void PrintSummary() {
  Workload& w = Workload::Get();
  // Smoke mode halves the reps; the numbers still land in the JSON but
  // are flagged so nobody diffs them against a real baseline.
  const int reps = nec::bench::BenchSmokeMode() ? 2 : 5;
  const double enc = TimeMs([&] { w.encoder->Embed(w.chunk); }, reps);
  const double nec =
      TimeMs([&] { w.selector->Forward(w.spec_tensor, w.dvector, false); },
             reps);
  const double vf =
      TimeMs([&] { w.voicefilter->Forward(w.spec_tensor, w.dvector); },
             reps);
  const double bc = TimeMs([&] { channel::ModulateAm(w.chunk, {}); }, reps);

  // The opt-in row-panel parallel GEMM path, on a pool dedicated to GEMM
  // (deployment keeps per-session inference serial; this row shows what a
  // single session could buy on a multi-core box).
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  double nec_par = 0.0;
  {
    runtime::ThreadPool pool({.workers = cores, .queue_capacity = 64});
    runtime::InstallGemmParallelFor(pool);
    nn::GemmParallelScope scope;
    nec_par =
        TimeMs([&] { w.selector->Forward(w.spec_tensor, w.dvector, false); },
               reps);
  }
  runtime::UninstallGemmParallelFor();

  // Single-core laptop → Raspberry Pi 4 scale factor (~6x for NEON-less
  // float workloads; see EXPERIMENTS.md).
  const double kPiScale = 6.0;

  bench::PrintHeader("Table II — time per 1 s audio chunk (ms)");
  std::printf("%-22s %10s %10s %10s\n", "platform/system", "Encoder",
              "Selector", "Broadcast");
  bench::PrintRule();
  std::printf("%-22s %10.2f %10.2f %10.2f\n", "this CPU / NEC", enc, nec,
              bc);
  std::printf("%-22s %10.2f %10.2f %10.2f\n", "this CPU / VoiceFilter",
              enc, vf, bc);
  std::printf("%-22s %10.2f %10.2f %10.2f   (x%.0f estimate)\n",
              "Pi-4 est. / NEC", enc * kPiScale, nec * kPiScale,
              bc * kPiScale, kPiScale);
  std::printf("%-22s %10.2f %10.2f %10.2f\n", "Pi-4 est. / VoiceFilter",
              enc * kPiScale, vf * kPiScale, bc * kPiScale);
  bench::PrintRule();
  std::printf("%-22s %10.3f %10.2f %10.2f\n", "paper PC / NEC", 0.467,
              1.51, 11.96);
  std::printf("%-22s %10.3f %10.2f %10.2f\n", "paper PC / VoiceFilter",
              0.467, 3.65, 11.96);
  std::printf("%-22s %10.1f %10.1f %10.2f\n", "paper Pi4 / NEC", 12.7,
              293.7, 11.96);
  std::printf("%-22s %10.1f %10.1f %10.2f\n", "paper Pi4 / VoiceFilter",
              12.7, 446.2, 11.96);
  bench::PrintRule();
  std::printf("VoiceFilter / NEC selector ratio: measured %.2fx "
              "(paper: 2.42x PC, 1.52x Pi)\n", vf / nec);
  std::printf("NEC selector with parallel GEMM (%u threads): %.2f ms "
              "(serial %.2f ms)%s\n", cores, nec_par, nec,
              cores < 2 ? " — single-core machine, row is overhead-only"
                        : "");
  const double total = enc + nec + bc;
  std::printf("NEC end-to-end latency: %.1f ms per 1 s chunk — %s the "
              "300 ms overshadowing tolerance (deployable per §IV-C2)\n",
              total, total < 300.0 ? "within" : "EXCEEDS");

  nec::bench::JsonWriter json;
  json.Field("encoder_ms", enc)
      .Field("selector_nec_ms", nec)
      .Field("selector_nec_parallel_ms", nec_par)
      .Field("gemm_parallel_threads", static_cast<double>(cores))
      .Field("selector_voicefilter_ms", vf)
      .Field("broadcast_ms", bc)
      .Field("total_ms", total)
      .Field("voicefilter_over_nec", nec > 0.0 ? vf / nec : 0.0)
      .Field("within_deadline", total < 300.0)
      .Field("smoke", nec::bench::BenchSmokeMode());
  const std::string path = nec::bench::BenchJsonPath();
  nec::bench::WriteJsonSection(path, "table2_modules", json.Finish());
  std::printf("wrote section table2_modules -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
