// Counting replacements for the global operator new/delete family (see
// alloc_hook.h). Every throwing, nothrow, and aligned form funnels through
// one counting malloc wrapper; sized and aligned deletes all forward to
// free, matching what the allocation forms hand out.
#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* CountedAllocAligned(std::size_t size, std::size_t align) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

[[noreturn]] void ThrowBadAlloc() { throw std::bad_alloc(); }

void* AllocOrThrow(std::size_t size) {
  for (;;) {
    if (void* p = CountedAlloc(size)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) ThrowBadAlloc();
    handler();
  }
}

void* AllocAlignedOrThrow(std::size_t size, std::size_t align) {
  for (;;) {
    if (void* p = CountedAllocAligned(size, align)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) ThrowBadAlloc();
    handler();
  }
}

}  // namespace

namespace nec::bench {

std::uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace nec::bench

void* operator new(std::size_t size) { return AllocOrThrow(size); }
void* operator new[](std::size_t size) { return AllocOrThrow(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return AllocAlignedOrThrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return AllocAlignedOrThrow(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
