// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure of the paper: it
// synthesizes the workload, runs the pipeline, and prints the same
// rows/series the paper reports, next to the paper's published values
// where applicable. Absolute numbers differ (our substrate is a simulator,
// not the authors' testbed); the *shape* — who wins, by roughly what
// factor, where crossovers fall — is the reproduction target.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/model_cache.h"
#include "core/pipeline.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"

namespace nec::bench {

/// Loads (or trains once and caches) the standard experiment model and
/// wraps it in a pipeline sharing the cached weights (no copy).
inline core::NecPipeline MakeStandardPipeline() {
  core::StandardModel model = core::StandardModel::Get(/*verbose=*/true);
  return model.MakePipeline();
}

inline double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

struct SdrPair {
  double bob_without = 0.0, bob_with = 0.0;
  double alice_without = 0.0, alice_with = 0.0;
};

/// SDR bookkeeping for one scenario run.
inline SdrPair ScoreScenario(const core::ScenarioResult& res) {
  SdrPair p;
  p.bob_without = metrics::Sdr(res.bob_at_recorder.samples(),
                               res.recorded_without_nec.samples());
  p.bob_with = metrics::Sdr(res.bob_at_recorder.samples(),
                            res.recorded_with_nec.samples());
  p.alice_without = metrics::Sdr(res.bk_at_recorder.samples(),
                                 res.recorded_without_nec.samples());
  p.alice_with = metrics::Sdr(res.bk_at_recorder.samples(),
                              res.recorded_with_nec.samples());
  return p;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace nec::bench
