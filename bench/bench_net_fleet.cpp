// Networked serving vs. in-process serving (DESIGN.md §5h).
//
// Three rows over the same synthetic workload (shared stream pool,
// seed-based enrollment, closed-loop one-outstanding-chunk discipline):
//   * direct       — SessionManager called in-process, no sockets,
//   * single_shard — one networked necd over the NEC1 wire protocol,
//   * router_fleet — two shards behind the consistent-hash router.
// Reported per row: aggregate chunks/sec and p50/p90/p99 per-chunk
// round-trip latency; for the fleet row also the session split across
// shards. `router_added_latency_p50_ms` is the router-minus-single-shard
// p50 — the price of the extra hop. Every row's shadow output is audited
// bit-exact against the sequential in-process reference (the protocol
// must not change a single sample), recorded as `all_bitexact`.
//
// The selector is a fixed-seed untrained tiny model (weights do not
// change arithmetic cost; hermetic, no training cache). Everything runs
// on loopback in this process, so rows share the same hardware budget —
// the interesting read is relative: protocol + router overhead on top of
// direct serving.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/selector.h"
#include "encoder/encoder.h"
#include "net/loadgen.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/http.h"
#include "runtime/session_manager.h"
#include "synth/dataset.h"

namespace nec::bench {
namespace {

/// Full run: 64 sessions x 3 chunks over 8 connections. Smoke mode
/// ($NEC_BENCH_SMOKE) shrinks to 8 x 2 over 4 — enough to exercise all
/// three serving paths and emit well-formed JSON in well under a minute.
struct BenchParams {
  std::size_t sessions = 64;
  std::size_t connections = 8;
  std::size_t chunks_per_session = 3;
  std::size_t stream_pool = 4;
  std::size_t workers = 4;  ///< per SessionManager
  std::uint64_t seed = 11;

  static BenchParams Get() {
    if (!BenchSmokeMode()) return {};
    return {.sessions = 8,
            .connections = 4,
            .chunks_per_session = 2,
            .stream_pool = 2};
  }
};

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  auto idx =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(values.size())));
  if (idx > 0) --idx;
  if (idx >= values.size()) idx = values.size() - 1;
  return values[idx];
}

struct Model {
  Model() {
    core::NecConfig cfg = core::NecConfig::Fast();
    cfg.conv_channels = 6;
    cfg.fc_hidden = 32;
    selector = std::make_shared<const core::Selector>(cfg, /*init_seed=*/7);
    encoder = std::make_shared<encoder::LasEncoder>(cfg.embedding_dim);
  }
  runtime::SessionManager::Options ManagerOptions(std::size_t workers) const {
    return {.workers = workers, .chunk_s = 1.0};
  }
  std::shared_ptr<const core::Selector> selector;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder;
};

/// Mirrors the loadgen's stream pool (net/loadgen.cpp): same seeds, same
/// synthesis, same zero-padding to a whole number of chunks.
struct PoolStream {
  std::uint64_t speaker_seed = 0;
  std::uint64_t ref_seed = 0;
  std::vector<float> samples;
};

std::vector<PoolStream> MakePool(const BenchParams& p,
                                 std::size_t chunk_samples) {
  const std::size_t samples_needed = p.chunks_per_session * chunk_samples;
  synth::DatasetBuilder builder(
      {.duration_s = static_cast<double>(samples_needed) / 16000.0});
  std::vector<PoolStream> pool(p.stream_pool);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].speaker_seed = p.seed + 101 * (i + 1);
    pool[i].ref_seed = p.seed + 577 * (i + 1);
    auto instance = builder.MakeInstance(
        synth::SpeakerProfile::FromSeed(pool[i].speaker_seed),
        synth::Scenario::kBabble, p.seed + 7919 * (i + 1));
    pool[i].samples = std::move(instance.mixed.data());
    pool[i].samples.resize(samples_needed, 0.0f);
  }
  return pool;
}

/// Sequential in-process reference for one pool stream — the ground
/// truth every serving path must reproduce sample-for-sample.
std::vector<float> ReferenceShadow(const Model& model, const PoolStream& s,
                                   std::size_t chunk_samples,
                                   std::size_t chunks) {
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions(1));
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  const auto refs = enroll_builder.MakeReferenceAudios(
      synth::SpeakerProfile::FromSeed(s.speaker_seed), 3, s.ref_seed);
  const auto id = manager.CreateSession(refs);
  for (std::size_t c = 0; c < chunks; ++c) {
    std::span<const float> chunk(s.samples.data() + c * chunk_samples,
                                 chunk_samples);
    for (;;) {
      const runtime::SubmitResult r = manager.Submit(id, chunk);
      if (r.ok() || r.error->category != runtime::ErrorCategory::kOverload)
        break;
      chunk = {};
      std::this_thread::yield();
    }
  }
  manager.Drain();
  audio::Waveform out = manager.TakeOutput(id);
  if (auto tail = manager.Flush(id)) out.Append(*tail);
  return std::vector<float>(out.samples().begin(), out.samples().end());
}

struct Row {
  const char* mode = "";
  double chunks_per_sec = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  bool bitexact = false;
  std::vector<std::uint64_t> shard_sessions;  ///< router row only
};

/// In-process row: the same closed-loop one-outstanding-chunk discipline
/// the loadgen applies over TCP, but calling the SessionManager directly
/// from `connections` driver threads. Per-chunk latency is submit-to-
/// output-visible, polled at the server's own tick granularity.
Row RunDirect(const Model& model, const BenchParams& p,
              const std::vector<PoolStream>& pool,
              const std::vector<std::vector<float>>& expected,
              std::size_t chunk_samples) {
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions(p.workers));
  struct Drive {
    runtime::SessionManager::SessionId id = 0;
    std::size_t stream = 0;
    std::size_t next_chunk = 0;
    std::size_t done_chunks = 0;
    std::vector<float> shadow;
    double submit_s = 0.0;
  };
  std::vector<Drive> drives(p.sessions);
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  for (std::size_t i = 0; i < p.sessions; ++i) {
    drives[i].stream = i % pool.size();
    const PoolStream& s = pool[drives[i].stream];
    const auto refs = enroll_builder.MakeReferenceAudios(
        synth::SpeakerProfile::FromSeed(s.speaker_seed), 3, s.ref_seed);
    drives[i].id = manager.CreateSession(refs);
  }

  std::mutex lat_mutex;
  std::vector<double> latencies_ms;
  const double start_s = NowS();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < p.connections; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::size_t> mine;
      for (std::size_t i = t; i < p.sessions; i += p.connections)
        mine.push_back(i);
      auto submit = [&](Drive& d) {
        const PoolStream& s = pool[d.stream];
        std::span<const float> chunk(
            s.samples.data() + d.next_chunk * chunk_samples, chunk_samples);
        d.submit_s = NowS();
        for (;;) {
          const runtime::SubmitResult r = manager.Submit(d.id, chunk);
          if (r.ok() ||
              r.error->category != runtime::ErrorCategory::kOverload)
            break;
          chunk = {};
          std::this_thread::yield();
        }
        d.next_chunk += 1;
      };
      for (std::size_t i : mine) submit(drives[i]);
      std::vector<double> local_ms;
      for (;;) {
        bool pending = false;
        for (std::size_t i : mine) {
          Drive& d = drives[i];
          if (d.done_chunks == p.chunks_per_session) continue;
          audio::Waveform burst = manager.TakeOutput(d.id);
          if (!burst.data().empty()) {
            d.shadow.insert(d.shadow.end(), burst.data().begin(),
                            burst.data().end());
            local_ms.push_back((NowS() - d.submit_s) * 1e3);
            d.done_chunks += 1;
            if (d.next_chunk < p.chunks_per_session) submit(d);
          }
          if (d.done_chunks < p.chunks_per_session) pending = true;
        }
        if (!pending) break;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      for (std::size_t i : mine) {
        Drive& d = drives[i];
        // The last burst becomes visible (output appended) a beat before
        // the strand parks, so "all output collected" is not yet "idle".
        // Flush demands idle — wait for it, the same gate the net server
        // applies before flushing (server.cpp PumpSessions).
        while (manager.SessionStatus(d.id).state ==
               runtime::SessionState::kRunning) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        if (auto tail = manager.Flush(d.id)) {
          d.shadow.insert(d.shadow.end(), tail->data().begin(),
                          tail->data().end());
        }
      }
      std::lock_guard<std::mutex> lock(lat_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall_s = NowS() - start_s;

  Row row;
  row.mode = "direct";
  row.chunks_per_sec =
      static_cast<double>(p.sessions * p.chunks_per_session) / wall_s;
  row.p50_ms = Quantile(latencies_ms, 0.50);
  row.p90_ms = Quantile(latencies_ms, 0.90);
  row.p99_ms = Quantile(latencies_ms, 0.99);
  row.bitexact = true;
  for (const Drive& d : drives) {
    const auto& want = expected[d.stream];
    if (d.shadow.size() != want.size() ||
        std::memcmp(d.shadow.data(), want.data(),
                    want.size() * sizeof(float)) != 0) {
      row.bitexact = false;
    }
  }
  return row;
}

bool AuditLoadGen(const net::LoadGenReport& report,
                  const std::vector<std::vector<float>>& expected) {
  for (const auto& outcome : report.sessions) {
    if (!outcome.completed) return false;
    const auto& want = expected[outcome.stream_index];
    if (outcome.shadow.size() != want.size() ||
        std::memcmp(outcome.shadow.data(), want.data(),
                    want.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

Row RowFromReport(const char* mode, const net::LoadGenReport& report,
                  const std::vector<std::vector<float>>& expected) {
  Row row;
  row.mode = mode;
  row.chunks_per_sec = report.chunks_per_sec;
  row.p50_ms = report.latency_p50_ms;
  row.p90_ms = report.latency_p90_ms;
  row.p99_ms = report.latency_p99_ms;
  row.bitexact = report.ok && report.sessions_faulted == 0 &&
                 AuditLoadGen(report, expected);
  return row;
}

net::LoadGenOptions LoadGenFor(const BenchParams& p, int port) {
  net::LoadGenOptions options;
  options.endpoints = {"127.0.0.1:" + std::to_string(port)};
  options.sessions = p.sessions;
  options.connections = p.connections;
  options.chunks_per_session = p.chunks_per_session;
  options.stream_pool = p.stream_pool;
  options.seed = p.seed;
  options.keep_shadows = true;
  options.max_seconds = 600.0;
  return options;
}

}  // namespace
}  // namespace nec::bench

int main() {
  using namespace nec;
  using namespace nec::bench;

  const BenchParams p = BenchParams::Get();
  const Model model;

  std::printf("== net_fleet: networked serving vs in-process ==\n");
  std::printf("sessions %zu  connections %zu  chunks/session %zu  pool %zu  "
              "workers %zu%s\n\n",
              p.sessions, p.connections, p.chunks_per_session, p.stream_pool,
              p.workers, BenchSmokeMode() ? "  [SMOKE]" : "");

  // Chunk geometry comes from the manager itself (1 s at 16 kHz).
  std::size_t chunk_samples = 0;
  {
    runtime::SessionManager probe(model.selector, model.encoder, {},
                                  model.ManagerOptions(1));
    chunk_samples = probe.chunk_samples();
  }
  const std::vector<PoolStream> pool = MakePool(p, chunk_samples);
  std::vector<std::vector<float>> expected(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    expected[i] =
        ReferenceShadow(model, pool[i], chunk_samples, p.chunks_per_session);
  }

  std::vector<Row> rows;

  rows.push_back(RunDirect(model, p, pool, expected, chunk_samples));

  // Single shard over TCP.
  {
    runtime::SessionManager manager(model.selector, model.encoder, {},
                                    model.ManagerOptions(p.workers));
    net::NetServer server(&manager, {});
    std::string error;
    NEC_CHECK_MSG(server.Start(&error), "single shard: " << error);
    const net::LoadGenReport report =
        net::RunLoadGen(LoadGenFor(p, server.port()));
    NEC_CHECK_MSG(report.ok, "single shard loadgen: " << report.error);
    rows.push_back(RowFromReport("single_shard", report, expected));
    server.Stop();
  }

  // Two shards behind the router.
  {
    std::vector<std::unique_ptr<runtime::SessionManager>> managers;
    std::vector<std::unique_ptr<net::NetServer>> servers;
    std::vector<std::unique_ptr<obs::MetricsServer>> health;
    net::Router::Options options;
    for (int s = 0; s < 2; ++s) {
      managers.push_back(std::make_unique<runtime::SessionManager>(
          model.selector, model.encoder, core::PipelineOptions{},
          model.ManagerOptions(p.workers)));
      servers.push_back(std::make_unique<net::NetServer>(
          managers.back().get(), net::NetServer::Options{}));
      std::string error;
      NEC_CHECK_MSG(servers.back()->Start(&error), "shard: " << error);
      health.push_back(std::make_unique<obs::MetricsServer>());
      health.back()->Handle("/healthz",
                            [](const std::string&, const std::string&) {
                              obs::HttpResponse resp;
                              resp.body = "{\"status\":\"ok\"}\n";
                              return resp;
                            });
      NEC_CHECK_MSG(
          health.back()->Start({.host = "127.0.0.1", .port = 0}, &error),
          "health: " << error);
      options.shards.push_back({.host = "127.0.0.1",
                                .port = servers.back()->port(),
                                .health_port = health.back()->port()});
    }
    auto router = std::make_unique<net::Router>(std::move(options));
    std::string error;
    NEC_CHECK_MSG(router->Start(&error), "router: " << error);
    const net::LoadGenReport report =
        net::RunLoadGen(LoadGenFor(p, router->port()));
    NEC_CHECK_MSG(report.ok, "router loadgen: " << report.error);
    Row row = RowFromReport("router_fleet", report, expected);
    for (const auto& status : router->ShardStatuses()) {
      row.shard_sessions.push_back(status.sessions_assigned_total);
    }
    rows.push_back(row);
    router->Stop();
    for (auto& server : servers) server->Stop();
    for (auto& h : health) h->Stop();
  }

  std::printf("%-14s %12s %10s %10s %10s %9s\n", "mode", "chunks/s",
              "p50 ms", "p90 ms", "p99 ms", "bitexact");
  for (const Row& row : rows) {
    std::printf("%-14s %12.1f %10.2f %10.2f %10.2f %9s", row.mode,
                row.chunks_per_sec, row.p50_ms, row.p90_ms, row.p99_ms,
                row.bitexact ? "yes" : "NO");
    if (!row.shard_sessions.empty()) {
      std::printf("   shards:");
      for (std::uint64_t n : row.shard_sessions)
        std::printf(" %llu", static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }
  const double added_ms = rows[2].p50_ms - rows[1].p50_ms;
  std::printf("\nrouter added latency (p50): %.2f ms\n", added_ms);
  bool all_bitexact = true;
  for (const Row& row : rows) all_bitexact = all_bitexact && row.bitexact;
  std::printf("all bit-exact vs in-process reference: %s\n",
              all_bitexact ? "yes" : "NO");

  JsonWriter json;
  json.Field("smoke", BenchSmokeMode())
      .Field("sessions", static_cast<double>(p.sessions))
      .Field("connections", static_cast<double>(p.connections))
      .Field("chunks_per_session", static_cast<double>(p.chunks_per_session))
      .Field("stream_pool", static_cast<double>(p.stream_pool))
      .Field("workers", static_cast<double>(p.workers))
      .Field("chunk_samples", static_cast<double>(chunk_samples));
  json.BeginArray("rows");
  for (const Row& row : rows) {
    json.BeginObject()
        .Field("mode", row.mode)
        .Field("chunks_per_sec", row.chunks_per_sec)
        .Field("latency_p50_ms", row.p50_ms)
        .Field("latency_p90_ms", row.p90_ms)
        .Field("latency_p99_ms", row.p99_ms)
        .Field("bitexact", row.bitexact);
    for (std::size_t s = 0; s < row.shard_sessions.size(); ++s) {
      char key[48];
      std::snprintf(key, sizeof key, "shard%zu_sessions", s);
      json.Field(key, static_cast<double>(row.shard_sessions[s]));
    }
    json.EndObject();
  }
  json.EndArray();
  json.Field("router_added_latency_p50_ms", added_ms)
      .Field("all_bitexact", all_bitexact);
  WriteJsonSection(BenchJsonPath(), "net_fleet", json.Finish());
  std::printf("\n[%s] section 'net_fleet' written\n", BenchJsonPath().c_str());
  return all_bitexact ? 0 : 1;
}
