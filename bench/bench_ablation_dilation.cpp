// Ablation (DESIGN.md §5) — the paper's dilation argument (§IV-B1): the
// (1,1)→(8,1) temporal dilation schedule extends the receptive field to
// 85–610 ms, "covering a few words". We train three small selectors that
// differ only in their dilation schedule and compare the Eq. 6 training
// loss they reach on identical data.
//
// NOTE: this bench trains three models from scratch (~2 minutes each on
// one core); it is the slowest binary in bench/.
#include <cstdio>

#include "bench_support.h"
#include "core/trainer.h"

// The dilation schedule lives in selector.cpp as the paper constant; for
// the ablation we emulate "no dilation" / "half dilation" by shrinking the
// temporal extent via the time-kernel: a selector whose dilated convs see
// less context. We approximate by varying conv channel budget is NOT the
// point — instead we train at different crop lengths, which bounds the
// usable temporal context identically (a 0.15 s crop cannot exploit a
// 610 ms receptive field).
int main() {
  using namespace nec;
  bench::PrintHeader(
      "Ablation — temporal context for the Eq. 6 objective");

  core::NecConfig cfg = core::NecConfig::Fast();
  cfg.conv_channels = 8;
  cfg.fc_hidden = 64;
  encoder::LasEncoder enc(cfg.embedding_dim);

  struct Variant {
    const char* name;
    double crop_s;  // temporal context available to the dilated stack
  };
  const Variant variants[] = {
      {"~250 ms context (sub-word)", 0.25},
      {"~500 ms context (one word)", 0.5},
      {"~1 s context (paper regime)", 1.0},
  };

  std::printf("\n%-30s %14s %14s\n", "temporal context", "zero-shadow",
              "trained loss");
  bench::PrintRule();
  double losses[3] = {0, 0, 0};
  int idx = 0;
  for (const Variant& v : variants) {
    core::TrainerOptions opt;
    opt.steps = 160;
    opt.num_speakers = 4;
    opt.instances_per_speaker = 4;
    opt.crop_s = v.crop_s;
    opt.seed = 77;
    core::SelectorTrainer trainer(cfg, enc, opt);
    core::Selector sel(cfg, 5);
    const float zero = trainer.ZeroShadowLoss();
    const float loss = trainer.Train(sel);
    std::printf("%-30s %14.4f %14.4f\n", v.name, zero, loss);
    losses[idx++] = loss / zero;  // normalized residual
  }
  bench::PrintRule();
  std::printf("normalized residual (trained/zero): %.3f / %.3f / %.3f\n",
              losses[0], losses[1], losses[2]);
  std::printf("\nshape check (longer context should not hurt; the paper's "
              "610 ms receptive\nfield is exploitable only with word-scale "
              "context): %s\n",
              losses[2] <= losses[0] + 0.05 ? "PASS" : "FAIL");
  return 0;
}
