// Figure 4 reproduction: "LAS results from four speakers" — every
// speaker's Long-time Average Spectrum is unique even for identical
// spoken content.
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "encoder/las.h"
#include "synth/synthesizer.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Fig. 4 — LAS of four speakers, same sentence");

  const char* sentence = "don't ask me to carry an oily rag like that";
  synth::Synthesizer synth({.sample_rate = 16000});

  // Four speakers, same content (the paper's A, B, C, D).
  std::vector<std::vector<float>> las;
  for (int s = 0; s < 4; ++s) {
    const auto spk = synth::SpeakerProfile::FromSeed(101 + s * 31);
    const auto utt = synth.SynthesizeSentence(spk, sentence, 7);
    las.push_back(encoder::VoicedLas(utt.wave));
  }

  // Print a coarse 16-band rendering of each curve (the figure's shape).
  const std::size_t bins = las[0].size();
  const std::size_t bands = 16;
  std::printf("%-8s", "band(Hz)");
  for (std::size_t b = 0; b < bands; ++b) {
    std::printf(" %5zu", b * 8000 / bands);
  }
  std::printf("\n");
  bench::PrintRule();
  for (int s = 0; s < 4; ++s) {
    std::printf("spk-%c   ", 'A' + s);
    for (std::size_t b = 0; b < bands; ++b) {
      double acc = 0.0;
      const std::size_t lo = b * bins / bands, hi = (b + 1) * bins / bands;
      for (std::size_t i = lo; i < hi; ++i) acc += las[static_cast<std::size_t>(s)][i];
      std::printf(" %5.2f", acc / static_cast<double>(hi - lo) * 100.0);
    }
    std::printf("\n");
  }
  bench::PrintRule();

  // Distinctiveness: pairwise Pearson correlations between speakers.
  std::printf("pairwise LAS Pearson correlation (same sentence):\n");
  double max_corr = -1.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      const double c = metrics::PearsonCorrelation(
          las[static_cast<std::size_t>(i)], las[static_cast<std::size_t>(j)]);
      std::printf("  spk-%c vs spk-%c: %.3f\n", 'A' + i, 'A' + j, c);
      max_corr = std::max(max_corr, c);
    }
  }
  std::printf("\nshape check (paper: every speaker's LAS is unique): %s\n",
              max_corr < 0.95 ? "PASS — no two speakers coincide"
                              : "WEAK — two speakers nearly identical");
  return 0;
}
