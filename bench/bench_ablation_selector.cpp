// Ablation (DESIGN.md §5) — what does the neural selector add?
//
// Compares three shadow generators on the same joint-conversation
// scenarios through the full physical chain:
//   * neural   — the trained NEC selector (speaker-conditioned DNN),
//   * las-mask — deterministic Wiener-style mask from the enrollment LAS,
//   * oracle   — S_bk - S_mixed from ground truth (upper bound).
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "channel/modulation.h"

int main() {
  using namespace nec;
  bench::PrintHeader("Ablation — selector variants (neural / LAS mask / oracle)");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto targets = synth::DatasetBuilder::MakeSpeakers(5, 90210);
  const auto others = synth::DatasetBuilder::MakeSpeakers(3, 80210);
  core::ScenarioRunner runner;

  struct Stats {
    std::vector<double> bob_drop;    // SDR drop of Bob (positive = hidden)
    std::vector<double> alice_gain;  // SDR gain of Alice
  };
  Stats neural, las;
  std::vector<double> oracle_bob_drop;

  std::uint64_t seed = 91000;
  for (std::size_t s = 0; s < targets.size(); ++s) {
    const auto refs = builder.MakeReferenceAudios(targets[s], 3, seed++);
    pipeline.Enroll(refs);
    const auto inst = builder.MakeInstance(
        targets[s], synth::Scenario::kJointConversation, seed++,
        &others[s % others.size()]);

    for (int kind = 0; kind < 2; ++kind) {
      core::ScenarioSetup setup;
      setup.selector_kind = kind == 0 ? core::SelectorKind::kNeural
                                      : core::SelectorKind::kLasMask;
      setup.noise_seed = seed;
      const auto res = runner.Run(pipeline, inst, setup);
      const bench::SdrPair sdr = bench::ScoreScenario(res);
      Stats& st = kind == 0 ? neural : las;
      st.bob_drop.push_back(sdr.bob_without - sdr.bob_with);
      st.alice_gain.push_back(sdr.alice_with - sdr.alice_without);
    }
    ++seed;

    // Oracle upper bound in the 16 kHz domain (no channel imperfections —
    // the bound no physical system can beat).
    const audio::Waveform shadow =
        pipeline.OracleShadow(inst.mixed, inst.background);
    const audio::Waveform record = audio::Mix(inst.mixed, shadow);
    oracle_bob_drop.push_back(
        metrics::Sdr(inst.target.samples(), inst.mixed.samples()) -
        metrics::Sdr(inst.target.samples(), record.samples()));
  }

  std::printf("\n%-12s %18s %18s\n", "selector", "Bob SDR drop (dB)",
              "Alice SDR gain (dB)");
  bench::PrintRule();
  std::printf("%-12s %18.2f %18.2f\n", "neural",
              bench::Median(neural.bob_drop),
              bench::Median(neural.alice_gain));
  std::printf("%-12s %18.2f %18.2f\n", "las-mask",
              bench::Median(las.bob_drop), bench::Median(las.alice_gain));
  std::printf("%-12s %18.2f %18s\n", "oracle(16k)",
              bench::Median(oracle_bob_drop), "(by construction)");
  bench::PrintRule();
  std::printf("Reading: both practical selectors must hide Bob without "
              "hurting Alice; the\noracle row shows the physical headroom "
              "left on the table.\n");
  return 0;
}
