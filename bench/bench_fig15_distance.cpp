// Figures 14 / 15 reproduction — user case study 2: distance behaviour.
//
//  Fig. 14: Bob's contribution to the mixed recording shrinks with his
//           distance from Alice's recorder.
//  Fig. 15(a): Bob's SPL at the recorder decays from 77 dB_SPL @5 cm to
//           ~40 dB at 5 m, while Alice stays at her own 77 dB.
//  Fig. 15(b): SONR with NEC reaches ~30 dB within 2 m; without NEC it
//           stays below ~20 dB. Shadowing loses strength beyond ~2 m but
//           Bob's own voice is negligible there anyway.
#include <cstdio>
#include <vector>

#include "audio/level.h"
#include "bench_support.h"

int main() {
  using namespace nec;
  bench::PrintHeader(
      "Fig. 14/15 — distance study: SPL decay and SONR with/without NEC");

  core::NecPipeline pipeline = bench::MakeStandardPipeline();
  synth::DatasetBuilder builder({.duration_s = 3.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 15000);
  const auto refs = builder.MakeReferenceAudios(spks[0], 3, 5);
  pipeline.Enroll(refs);
  core::ScenarioRunner runner;
  const channel::SceneSimulator scene;

  // --- Fig. 15(a): SPL vs distance (propagation model).
  std::printf("\nFig. 15(a): Bob's SPL at the recorder (77 dB_SPL at 5 cm)\n");
  std::printf("%-10s %14s\n", "distance", "SPL at recorder");
  bench::PrintRule();
  for (double d : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    std::printf("%6.1f m   %10.1f dB\n", d,
                scene.SourceSplAtRecorder(77.0, d));
  }
  std::printf("paper: ~43 dB_SPL at 5 m (incl. room reflections); Alice "
              "constant at 77 dB\n");

  // --- Fig. 14 + 15(b): full pipeline across distances. The Moto Z4 is
  // Alice's recorder in the paper's case study.
  std::printf("\nFig. 14/15(b): Bob at distance d (NEC worn by Bob)\n");
  std::printf("%-8s %16s %14s %14s\n", "d (m)", "bob share mixed",
              "SONR no NEC", "SONR with NEC");
  bench::PrintRule();

  std::uint64_t seed = 70000;
  std::vector<double> sonr_with, sonr_without, dists;
  for (double d : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0}) {
    const auto inst = builder.MakeInstance(
        spks[0], synth::Scenario::kJointConversation, seed++, &spks[1]);
    core::ScenarioSetup setup;
    setup.device = channel::FindDevice("Moto Z4");
    setup.carrier_hz = setup.device.paper_best_carrier_hz;
    setup.bob_distance_m = d;
    setup.nec_distance_m = d;  // worn by Bob
    setup.bk_distance_m = 0.5; // Alice close to her own phone
    setup.noise_seed = seed++;
    const auto res = runner.Run(pipeline, inst, setup);

    // Fig. 14: Bob's energy share of the mixed recording.
    double bob_e = 0.0, mix_e = 0.0;
    for (std::size_t i = 0; i < res.recorded_without_nec.size(); ++i) {
      if (i < res.bob_at_recorder.size()) {
        bob_e += static_cast<double>(res.bob_at_recorder[i]) *
                 res.bob_at_recorder[i];
      }
      mix_e += static_cast<double>(res.recorded_without_nec[i]) *
               res.recorded_without_nec[i];
    }

    // Fig. 15(b): SONR — power ratio between the recording and Bob's
    // *residual* inside it (ground-truth projection).
    auto sonr = [&](const audio::Waveform& rec) {
      const double rec_e =
          static_cast<double>(rec.Rms()) * rec.Rms() * rec.size();
      // Energy of the recording explained by Bob's ground-truth stem.
      const double bob_component_e =
          rec_e - metrics::ResidualEnergyAfterProjection(
                      rec.samples(), res.bob_at_recorder.samples());
      return audio::PowerToDb(rec_e / std::max(bob_component_e, 1e-12));
    };
    const double without = sonr(res.recorded_without_nec);
    const double with = sonr(res.recorded_with_nec);
    std::printf("%6.1f %14.1f %% %11.1f dB %11.1f dB\n", d,
                100.0 * bob_e / mix_e, without, with);
    dists.push_back(d);
    sonr_without.push_back(without);
    sonr_with.push_back(with);
  }
  std::printf("paper: SONR stays <20 dB without NEC; reaches ~30 dB with "
              "NEC within 2 m\n");

  bool nec_helps_close = true;
  for (std::size_t i = 0; i < dists.size(); ++i) {
    if (dists[i] <= 2.0 && sonr_with[i] < sonr_without[i] + 3.0) {
      nec_helps_close = false;
    }
  }
  std::printf("\nshape checks:\n");
  std::printf("  SPL decays ~20 dB/decade with distance:      PASS (model)\n");
  std::printf("  NEC raises SONR by >3 dB within 2 m:         %s\n",
              nec_helps_close ? "PASS" : "FAIL");
  return 0;
}
