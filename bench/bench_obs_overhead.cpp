// Tracing overhead guard: the nec::obs span sites are compiled into the
// hot path unconditionally (pipeline, streaming, runtime), so a disabled
// recorder must cost nothing measurable — one relaxed atomic load per
// site. This harness proves it with an A/B on the same single-thread
// sequential workload bench_runtime_throughput tracks:
//
//   * arm A: tracing disabled (the production default),
//   * arm B: tracing enabled (full span + flow recording),
//
// interleaved over several repetitions (best-of to shed scheduler noise),
// reporting selector ms/chunk and chunks/sec for both arms plus the
// enabled-tracing overhead. tools/check.sh (CHECK_OBS=1) asserts the
// disabled-arm numbers stay within 2% of the runtime_throughput
// sequential baseline recorded in the same BENCH_hotpath.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "core/selector.h"
#include "core/streaming.h"
#include "encoder/encoder.h"
#include "obs/trace.h"
#include "synth/dataset.h"

namespace nec::bench {
namespace {

constexpr double kChunkSeconds = 1.0;

struct BenchParams {
  std::size_t sessions = 4;
  double stream_seconds = 6.0;
  std::size_t reps = 3;

  static BenchParams Get() {
    if (!BenchSmokeMode()) return {};
    return {.sessions = 1, .stream_seconds = 2.0, .reps = 1};
  }
};

struct Workload {
  std::shared_ptr<const core::Selector> selector;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder;
  std::vector<std::vector<audio::Waveform>> references;
  std::vector<audio::Waveform> streams;
};

Workload MakeWorkload(const BenchParams& p) {
  Workload w;
  const core::NecConfig cfg = core::NecConfig::Fast();
  w.selector = std::make_shared<const core::Selector>(cfg, /*init_seed=*/29);
  w.encoder = std::make_shared<encoder::LasEncoder>(cfg.embedding_dim);
  synth::DatasetBuilder stream_builder({.duration_s = p.stream_seconds});
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  for (std::size_t i = 0; i < p.sessions; ++i) {
    const auto speaker = synth::SpeakerProfile::FromSeed(300 + i);
    w.references.push_back(
        enroll_builder.MakeReferenceAudios(speaker, 3, 600 + i));
    w.streams.push_back(
        stream_builder.MakeInstance(speaker, synth::Scenario::kBabble, 900 + i)
            .mixed);
  }
  return w;
}

struct ArmResult {
  double chunks_per_sec = 0.0;
  double selector_ms_per_chunk = 0.0;
  double broadcast_ms_per_chunk = 0.0;
};

/// One sequential pass over every stream (same shape as the
/// runtime_throughput "sequential" reference, so numbers are comparable).
ArmResult RunSequential(const Workload& w) {
  ArmResult r;
  double selector_ms = 0.0, broadcast_ms = 0.0;
  std::size_t chunks = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < w.streams.size(); ++i) {
    core::NecPipeline pipeline(w.selector, w.encoder, {});
    pipeline.Enroll(w.references[i]);
    core::StreamingProcessor proc(pipeline, kChunkSeconds,
                                  core::SelectorKind::kNeural);
    audio::Waveform out;
    if (auto o = proc.Push(w.streams[i].samples())) out = std::move(*o);
    if (auto tail = proc.Flush()) out.Append(*tail);
    selector_ms += proc.timings().selector_ms;
    broadcast_ms += proc.timings().broadcast_ms;
    chunks += proc.timings().chunks;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.chunks_per_sec =
      wall_s > 0.0 ? static_cast<double>(chunks) / wall_s : 0.0;
  r.selector_ms_per_chunk =
      chunks ? selector_ms / static_cast<double>(chunks) : 0.0;
  r.broadcast_ms_per_chunk =
      chunks ? broadcast_ms / static_cast<double>(chunks) : 0.0;
  return r;
}

/// Best-of across reps: fastest chunks/sec with its companion timings.
/// Min-of-reps is the standard noise filter for throughput A/Bs — the
/// true cost is the floor, everything above it is scheduler interference.
ArmResult Best(const ArmResult& a, const ArmResult& b) {
  return b.chunks_per_sec > a.chunks_per_sec ? b : a;
}

}  // namespace
}  // namespace nec::bench

int main() {
  using namespace nec::bench;
  using nec::obs::TraceRecorder;

  const BenchParams params = BenchParams::Get();
  PrintHeader("obs overhead: disabled-tracing vs enabled-tracing A/B");
  std::printf("%zu sessions x %.0f s streams, %zu reps, best-of%s\n",
              params.sessions, params.stream_seconds, params.reps,
              BenchSmokeMode() ? "  [SMOKE — not a baseline]" : "");

  const Workload w = MakeWorkload(params);
  // One untimed warmup pass primes caches for both arms alike.
  (void)RunSequential(w);

  ArmResult disabled, enabled;
  std::uint64_t events = 0;
  TraceRecorder& rec = TraceRecorder::Global();
  for (std::size_t rep = 0; rep < params.reps; ++rep) {
    rec.Disable();
    const ArmResult off = RunSequential(w);
    rec.Enable(/*ring_capacity=*/1 << 16);
    const ArmResult on = RunSequential(w);
    events = rec.events_recorded();
    rec.Disable();
    rec.Clear();
    disabled = rep == 0 ? off : Best(disabled, off);
    enabled = rep == 0 ? on : Best(enabled, on);
  }

  const double overhead_pct =
      disabled.chunks_per_sec > 0.0
          ? 100.0 * (disabled.chunks_per_sec - enabled.chunks_per_sec) /
                disabled.chunks_per_sec
          : 0.0;

  std::printf("\n%10s %14s %16s %17s\n", "tracing", "chunks/sec",
              "selector ms/ch", "broadcast ms/ch");
  PrintRule();
  std::printf("%10s %14.2f %16.2f %17.2f\n", "disabled",
              disabled.chunks_per_sec, disabled.selector_ms_per_chunk,
              disabled.broadcast_ms_per_chunk);
  std::printf("%10s %14.2f %16.2f %17.2f\n", "enabled",
              enabled.chunks_per_sec, enabled.selector_ms_per_chunk,
              enabled.broadcast_ms_per_chunk);
  PrintRule();
  std::printf("enabled-tracing overhead: %.2f%% (%llu events per pass)\n",
              overhead_pct, static_cast<unsigned long long>(events));

  JsonWriter json;
  json.Field("sessions", static_cast<double>(params.sessions))
      .Field("stream_seconds", params.stream_seconds)
      .Field("reps", static_cast<double>(params.reps))
      .Field("smoke", BenchSmokeMode());
  json.BeginObject("disabled")
      .Field("chunks_per_sec", disabled.chunks_per_sec)
      .Field("selector_ms_per_chunk", disabled.selector_ms_per_chunk)
      .Field("broadcast_ms_per_chunk", disabled.broadcast_ms_per_chunk)
      .EndObject();
  json.BeginObject("enabled")
      .Field("chunks_per_sec", enabled.chunks_per_sec)
      .Field("selector_ms_per_chunk", enabled.selector_ms_per_chunk)
      .Field("broadcast_ms_per_chunk", enabled.broadcast_ms_per_chunk)
      .Field("events_per_pass", static_cast<double>(events))
      .EndObject();
  json.Field("enabled_overhead_pct", overhead_pct);

  const std::string path = BenchJsonPath();
  WriteJsonSection(path, "obs_overhead", json.Finish());
  std::printf("wrote section obs_overhead -> %s\n", path.c_str());
  return 0;
}
