// Tracing overhead guard: the nec::obs span sites are compiled into the
// hot path unconditionally (pipeline, streaming, runtime), so a disabled
// recorder must cost nothing measurable — one relaxed atomic load per
// site. This harness proves it with an A/B on the same single-thread
// sequential workload bench_runtime_throughput tracks:
//
//   * arm A: tracing disabled (the production default),
//   * arm B: tracing enabled (full span + flow recording),
//
// interleaved over several repetitions (best-of to shed scheduler noise),
// reporting selector ms/chunk and chunks/sec for both arms plus the
// enabled-tracing overhead. tools/check.sh (CHECK_OBS=1) asserts the
// disabled-arm numbers stay within 2% of the runtime_throughput
// sequential baseline recorded in the same BENCH_hotpath.json.
//
// A second A/B covers the NETWORKED path (the fleet-observability
// surface): loadgen driving a 2-shard router fleet on loopback, tracing
// disabled vs enabled. With tracing enabled every chunk additionally
// mints a flow id, sends a kTraceContext frame ahead of the submit, and
// records client/router/shard spans — so this arm prices the whole
// cross-process propagation machinery, not just the span sites. Written
// as the `obs_fleet_overhead` section of the same BENCH_hotpath.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "core/selector.h"
#include "core/streaming.h"
#include "encoder/encoder.h"
#include "net/loadgen.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/http.h"
#include "obs/trace.h"
#include "runtime/session_manager.h"
#include "synth/dataset.h"

namespace nec::bench {
namespace {

constexpr double kChunkSeconds = 1.0;

struct BenchParams {
  std::size_t sessions = 4;
  double stream_seconds = 6.0;
  std::size_t reps = 3;

  static BenchParams Get() {
    if (!BenchSmokeMode()) return {};
    return {.sessions = 1, .stream_seconds = 2.0, .reps = 1};
  }
};

struct Workload {
  std::shared_ptr<const core::Selector> selector;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder;
  std::vector<std::vector<audio::Waveform>> references;
  std::vector<audio::Waveform> streams;
};

Workload MakeWorkload(const BenchParams& p) {
  Workload w;
  const core::NecConfig cfg = core::NecConfig::Fast();
  w.selector = std::make_shared<const core::Selector>(cfg, /*init_seed=*/29);
  w.encoder = std::make_shared<encoder::LasEncoder>(cfg.embedding_dim);
  synth::DatasetBuilder stream_builder({.duration_s = p.stream_seconds});
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  for (std::size_t i = 0; i < p.sessions; ++i) {
    const auto speaker = synth::SpeakerProfile::FromSeed(300 + i);
    w.references.push_back(
        enroll_builder.MakeReferenceAudios(speaker, 3, 600 + i));
    w.streams.push_back(
        stream_builder.MakeInstance(speaker, synth::Scenario::kBabble, 900 + i)
            .mixed);
  }
  return w;
}

struct ArmResult {
  double chunks_per_sec = 0.0;
  double selector_ms_per_chunk = 0.0;
  double broadcast_ms_per_chunk = 0.0;
};

/// One sequential pass over every stream (same shape as the
/// runtime_throughput "sequential" reference, so numbers are comparable).
ArmResult RunSequential(const Workload& w) {
  ArmResult r;
  double selector_ms = 0.0, broadcast_ms = 0.0;
  std::size_t chunks = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < w.streams.size(); ++i) {
    core::NecPipeline pipeline(w.selector, w.encoder, {});
    pipeline.Enroll(w.references[i]);
    core::StreamingProcessor proc(pipeline, kChunkSeconds,
                                  core::SelectorKind::kNeural);
    audio::Waveform out;
    if (auto o = proc.Push(w.streams[i].samples())) out = std::move(*o);
    if (auto tail = proc.Flush()) out.Append(*tail);
    selector_ms += proc.timings().selector_ms;
    broadcast_ms += proc.timings().broadcast_ms;
    chunks += proc.timings().chunks;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.chunks_per_sec =
      wall_s > 0.0 ? static_cast<double>(chunks) / wall_s : 0.0;
  r.selector_ms_per_chunk =
      chunks ? selector_ms / static_cast<double>(chunks) : 0.0;
  r.broadcast_ms_per_chunk =
      chunks ? broadcast_ms / static_cast<double>(chunks) : 0.0;
  return r;
}

/// Best-of across reps: fastest chunks/sec with its companion timings.
/// Min-of-reps is the standard noise filter for throughput A/Bs — the
/// true cost is the floor, everything above it is scheduler interference.
ArmResult Best(const ArmResult& a, const ArmResult& b) {
  return b.chunks_per_sec > a.chunks_per_sec ? b : a;
}

// ------------------------------------------------- networked fleet A/B

struct FleetParams {
  std::size_t sessions = 32;
  std::size_t connections = 8;
  std::size_t chunks_per_session = 3;
  std::size_t stream_pool = 4;
  std::size_t workers = 4;
  std::size_t reps = 2;

  static FleetParams Get() {
    if (!BenchSmokeMode()) return {};
    return {.sessions = 8,
            .connections = 4,
            .chunks_per_session = 2,
            .stream_pool = 2,
            .reps = 1};
  }
};

/// Two shards behind the consistent-hash router, all in this process on
/// loopback — the same topology bench_net_fleet measures, held alive
/// across both arms so A and B share identical placement.
struct LoopbackFleet {
  std::vector<std::unique_ptr<runtime::SessionManager>> managers;
  std::vector<std::unique_ptr<net::NetServer>> servers;
  std::vector<std::unique_ptr<obs::MetricsServer>> health;
  std::unique_ptr<net::Router> router;

  bool Start(const core::NecConfig& cfg, std::size_t workers,
             std::string* error) {
    net::Router::Options options;
    for (int s = 0; s < 2; ++s) {
      managers.push_back(std::make_unique<runtime::SessionManager>(
          std::make_shared<const core::Selector>(cfg, /*init_seed=*/29),
          std::make_shared<encoder::LasEncoder>(cfg.embedding_dim),
          core::PipelineOptions{},
          runtime::SessionManager::Options{.workers = workers,
                                           .chunk_s = kChunkSeconds}));
      servers.push_back(std::make_unique<net::NetServer>(
          managers.back().get(), net::NetServer::Options{}));
      if (!servers.back()->Start(error)) return false;
      health.push_back(std::make_unique<obs::MetricsServer>());
      health.back()->Handle("/healthz",
                            [](const std::string&, const std::string&) {
                              obs::HttpResponse resp;
                              resp.body = "{\"status\":\"ok\"}\n";
                              return resp;
                            });
      if (!health.back()->Start({.host = "127.0.0.1", .port = 0}, error)) {
        return false;
      }
      options.shards.push_back({.host = "127.0.0.1",
                                .port = servers.back()->port(),
                                .health_port = health.back()->port()});
    }
    router = std::make_unique<net::Router>(std::move(options));
    return router->Start(error);
  }

  void Stop() {
    if (router) router->Stop();
    for (auto& server : servers) server->Stop();
    for (auto& h : health) h->Stop();
  }
};

struct FleetArm {
  double chunks_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool ok = false;
};

FleetArm RunFleetPass(const FleetParams& p, int router_port,
                      std::uint64_t seed) {
  net::LoadGenOptions options;
  options.endpoints = {"127.0.0.1:" + std::to_string(router_port)};
  options.sessions = p.sessions;
  options.connections = p.connections;
  options.chunks_per_session = p.chunks_per_session;
  options.stream_pool = p.stream_pool;
  options.seed = seed;
  options.max_seconds = 600.0;
  const net::LoadGenReport report = net::RunLoadGen(options);
  FleetArm arm;
  arm.chunks_per_sec = report.chunks_per_sec;
  arm.p50_ms = report.latency_p50_ms;
  arm.p99_ms = report.latency_p99_ms;
  arm.ok = report.ok && report.sessions_faulted == 0;
  return arm;
}

FleetArm BestFleet(const FleetArm& a, const FleetArm& b) {
  return b.chunks_per_sec > a.chunks_per_sec ? b : a;
}

}  // namespace
}  // namespace nec::bench

int main() {
  using namespace nec::bench;
  using nec::obs::TraceRecorder;

  const BenchParams params = BenchParams::Get();
  PrintHeader("obs overhead: disabled-tracing vs enabled-tracing A/B");
  std::printf("%zu sessions x %.0f s streams, %zu reps, best-of%s\n",
              params.sessions, params.stream_seconds, params.reps,
              BenchSmokeMode() ? "  [SMOKE — not a baseline]" : "");

  const Workload w = MakeWorkload(params);
  // One untimed warmup pass primes caches for both arms alike.
  (void)RunSequential(w);

  ArmResult disabled, enabled;
  std::uint64_t events = 0;
  TraceRecorder& rec = TraceRecorder::Global();
  for (std::size_t rep = 0; rep < params.reps; ++rep) {
    rec.Disable();
    const ArmResult off = RunSequential(w);
    rec.Enable(/*ring_capacity=*/1 << 16);
    const ArmResult on = RunSequential(w);
    events = rec.events_recorded();
    rec.Disable();
    rec.Clear();
    disabled = rep == 0 ? off : Best(disabled, off);
    enabled = rep == 0 ? on : Best(enabled, on);
  }

  const double overhead_pct =
      disabled.chunks_per_sec > 0.0
          ? 100.0 * (disabled.chunks_per_sec - enabled.chunks_per_sec) /
                disabled.chunks_per_sec
          : 0.0;

  std::printf("\n%10s %14s %16s %17s\n", "tracing", "chunks/sec",
              "selector ms/ch", "broadcast ms/ch");
  PrintRule();
  std::printf("%10s %14.2f %16.2f %17.2f\n", "disabled",
              disabled.chunks_per_sec, disabled.selector_ms_per_chunk,
              disabled.broadcast_ms_per_chunk);
  std::printf("%10s %14.2f %16.2f %17.2f\n", "enabled",
              enabled.chunks_per_sec, enabled.selector_ms_per_chunk,
              enabled.broadcast_ms_per_chunk);
  PrintRule();
  std::printf("enabled-tracing overhead: %.2f%% (%llu events per pass)\n",
              overhead_pct, static_cast<unsigned long long>(events));

  JsonWriter json;
  json.Field("sessions", static_cast<double>(params.sessions))
      .Field("stream_seconds", params.stream_seconds)
      .Field("reps", static_cast<double>(params.reps))
      .Field("smoke", BenchSmokeMode());
  json.BeginObject("disabled")
      .Field("chunks_per_sec", disabled.chunks_per_sec)
      .Field("selector_ms_per_chunk", disabled.selector_ms_per_chunk)
      .Field("broadcast_ms_per_chunk", disabled.broadcast_ms_per_chunk)
      .EndObject();
  json.BeginObject("enabled")
      .Field("chunks_per_sec", enabled.chunks_per_sec)
      .Field("selector_ms_per_chunk", enabled.selector_ms_per_chunk)
      .Field("broadcast_ms_per_chunk", enabled.broadcast_ms_per_chunk)
      .Field("events_per_pass", static_cast<double>(events))
      .EndObject();
  json.Field("enabled_overhead_pct", overhead_pct);

  const std::string path = BenchJsonPath();
  WriteJsonSection(path, "obs_overhead", json.Finish());
  std::printf("wrote section obs_overhead -> %s\n", path.c_str());

  // ---- Networked path: loadgen → router → 2 shards, same recorder A/B.
  const FleetParams fp = FleetParams::Get();
  PrintHeader("obs fleet overhead: networked loadgen-through-router A/B");
  std::printf("%zu sessions x %zu chunks over %zu connections, 2 shards, "
              "%zu reps, best-of%s\n",
              fp.sessions, fp.chunks_per_session, fp.connections, fp.reps,
              BenchSmokeMode() ? "  [SMOKE — not a baseline]" : "");

  nec::core::NecConfig fleet_cfg = nec::core::NecConfig::Fast();
  fleet_cfg.conv_channels = 6;
  fleet_cfg.fc_hidden = 32;
  LoopbackFleet fleet;
  std::string error;
  if (!fleet.Start(fleet_cfg, fp.workers, &error)) {
    std::fprintf(stderr, "fleet start failed: %s\n", error.c_str());
    return 1;
  }
  // Untimed warmup primes connections, placement, and model caches.
  (void)RunFleetPass(fp, fleet.router->port(), /*seed=*/17);

  FleetArm net_disabled, net_enabled;
  bool fleet_ok = true;
  for (std::size_t rep = 0; rep < fp.reps; ++rep) {
    rec.Disable();
    const FleetArm off = RunFleetPass(fp, fleet.router->port(), 17 + rep);
    rec.Enable(/*ring_capacity=*/1 << 16);
    const FleetArm on = RunFleetPass(fp, fleet.router->port(), 17 + rep);
    rec.Disable();
    rec.Clear();
    fleet_ok = fleet_ok && off.ok && on.ok;
    net_disabled = rep == 0 ? off : BestFleet(net_disabled, off);
    net_enabled = rep == 0 ? on : BestFleet(net_enabled, on);
  }
  fleet.Stop();
  if (!fleet_ok) {
    std::fprintf(stderr, "fleet loadgen pass failed\n");
    return 1;
  }

  const double fleet_overhead_pct =
      net_disabled.chunks_per_sec > 0.0
          ? 100.0 *
                (net_disabled.chunks_per_sec - net_enabled.chunks_per_sec) /
                net_disabled.chunks_per_sec
          : 0.0;

  std::printf("\n%10s %14s %10s %10s\n", "tracing", "chunks/sec", "p50 ms",
              "p99 ms");
  PrintRule();
  std::printf("%10s %14.1f %10.2f %10.2f\n", "disabled",
              net_disabled.chunks_per_sec, net_disabled.p50_ms,
              net_disabled.p99_ms);
  std::printf("%10s %14.1f %10.2f %10.2f\n", "enabled",
              net_enabled.chunks_per_sec, net_enabled.p50_ms,
              net_enabled.p99_ms);
  PrintRule();
  std::printf("enabled-tracing fleet overhead: %.2f%%\n", fleet_overhead_pct);

  JsonWriter fleet_json;
  fleet_json.Field("sessions", static_cast<double>(fp.sessions))
      .Field("connections", static_cast<double>(fp.connections))
      .Field("chunks_per_session", static_cast<double>(fp.chunks_per_session))
      .Field("reps", static_cast<double>(fp.reps))
      .Field("smoke", BenchSmokeMode());
  fleet_json.BeginObject("disabled")
      .Field("chunks_per_sec", net_disabled.chunks_per_sec)
      .Field("latency_p50_ms", net_disabled.p50_ms)
      .Field("latency_p99_ms", net_disabled.p99_ms)
      .EndObject();
  fleet_json.BeginObject("enabled")
      .Field("chunks_per_sec", net_enabled.chunks_per_sec)
      .Field("latency_p50_ms", net_enabled.p50_ms)
      .Field("latency_p99_ms", net_enabled.p99_ms)
      .EndObject();
  fleet_json.Field("enabled_overhead_pct", fleet_overhead_pct);
  WriteJsonSection(path, "obs_fleet_overhead", fleet_json.Finish());
  std::printf("wrote section obs_fleet_overhead -> %s\n", path.c_str());
  return 0;
}
