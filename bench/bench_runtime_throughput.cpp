// Runtime throughput + serving latency: chunks/sec vs. worker count, and
// continuous-batching speedup with HONEST deadline accounting.
//
// The single-threaded deployment loop (Table II) bounds ONE stream; this
// harness measures how far the nec::runtime layer scales that with a pool
// and the continuous batcher. Two arrival modes, because throughput and
// latency need different harnesses:
//
//   * offline replay — the whole workload is submitted as fast as the
//     queues accept it. Right for chunks/sec and speedup (the machine is
//     saturated), WRONG for latency: end-to-end latency then measures the
//     replay backlog, which no deployment ever sees. Offline rows still
//     report e2e numbers, honestly labeled.
//   * paced (real-time) arrival — pieces are delivered on the audio
//     clock, sessions phase-staggered by chunk_s/sessions the way N
//     independent microphones would be. This is the only mode whose e2e
//     quantiles mean "service latency", so `deadline_met` (the §IV-C2
//     300 ms overshadowing deadline) is judged ONLY against paced e2e p99.
//
// Every row also carries a bit-exactness audit: batched / parallel output
// must equal the sequential StreamingProcessor result sample-for-sample.
//
// The selector is a fixed-seed untrained Fast() model: weight values do
// not change the arithmetic cost, and keeping the bench hermetic avoids a
// training dependency. Scaling is compute-bound, so multi-worker rows are
// only meaningful on a machine with as many cores as workers — each row
// records `workers`, and the file records hardware_concurrency, so a
// reader (and tools/check.sh) can tell a 1-core row from a 4-core row.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "alloc_hook.h"
#include "bench_json.h"
#include "bench_support.h"
#include "core/selector.h"
#include "core/streaming.h"
#include "encoder/encoder.h"
#include "runtime/session_manager.h"
#include "synth/dataset.h"

namespace nec::bench {
namespace {

constexpr double kChunkSeconds = 1.0;
constexpr double kDeadlineMs = 300.0;

/// Full run: 8 sessions x 6 s, worker sweep 1/2/4/8. Smoke mode
/// ($NEC_BENCH_SMOKE) shrinks to 2 x 2 s with workers 1/2 — enough to
/// exercise the wiring and emit well-formed JSON in a few seconds.
struct BenchParams {
  std::size_t sessions = 8;
  double stream_seconds = 6.0;
  std::vector<std::size_t> worker_sweep = {1, 2, 4, 8};
  /// Continuous-batching sweep: concurrent-session counts compared
  /// batched-vs-unbatched (ISSUE 3 records 1/4/8).
  std::vector<std::size_t> batched_session_sweep = {1, 4, 8};
  /// One InferBatch serializes its whole batch before the last chunk in it
  /// completes, so on a core-bound box max_batch bounds the per-chunk p99
  /// at roughly max_batch * chunk-compute. 3 keeps a full batch's compute
  /// inside the 300 ms deadline with ~25% margin at ~70 ms/chunk while
  /// still amortizing dispatch across sessions.
  std::size_t batched_max_batch = 3;

  static BenchParams Get() {
    if (!BenchSmokeMode()) return {};
    return {.sessions = 2,
            .stream_seconds = 2.0,
            .worker_sweep = {1, 2},
            .batched_session_sweep = {1, 2},
            .batched_max_batch = 2};
  }
};

struct Workload {
  std::shared_ptr<const core::Selector> selector;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder;
  std::vector<synth::SpeakerProfile> speakers;
  std::vector<std::vector<audio::Waveform>> references;
  std::vector<audio::Waveform> streams;
};

Workload MakeWorkload(const BenchParams& p) {
  Workload w;
  const core::NecConfig cfg = core::NecConfig::Fast();
  w.selector = std::make_shared<const core::Selector>(cfg, /*init_seed=*/29);
  w.encoder = std::make_shared<encoder::LasEncoder>(cfg.embedding_dim);
  synth::DatasetBuilder stream_builder({.duration_s = p.stream_seconds});
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  for (std::size_t i = 0; i < p.sessions; ++i) {
    w.speakers.push_back(synth::SpeakerProfile::FromSeed(300 + i));
    w.references.push_back(
        enroll_builder.MakeReferenceAudios(w.speakers[i], 3, 600 + i));
    w.streams.push_back(
        stream_builder
            .MakeInstance(w.speakers[i], synth::Scenario::kBabble, 900 + i)
            .mixed);
  }
  return w;
}

struct RunResult {
  double wall_s = 0.0;
  double chunks_per_sec = 0.0;
  double selector_ms_per_chunk = 0.0;  ///< per-session timing sum / chunks
  runtime::RuntimeStatsSnapshot stats;
  std::vector<audio::Waveform> outputs;
};

enum class Arrival {
  kOffline,  ///< submit as fast as the queues accept (throughput mode)
  kPaced,    ///< audio-clock arrival, phase-staggered (latency mode)
};

/// Runs the first `sessions` workload streams through a SessionManager.
/// `max_batch` > 1 turns on the continuous batcher (with `workers`
/// dispatch threads). kPaced delivers each 4096-sample piece on the audio
/// clock, with session i's schedule shifted by i * chunk_s / sessions:
/// independent microphones do not align their chunk boundaries, and a
/// lockstep feed would manufacture a synchronized burst every second that
/// no deployment produces.
RunResult RunWith(const Workload& w, std::size_t workers,
                  std::size_t sessions, std::size_t max_batch,
                  Arrival arrival) {
  runtime::SessionManager manager(w.selector, w.encoder, {},
                                  {.workers = workers,
                                   .queue_capacity = 1024,
                                   .chunk_s = kChunkSeconds,
                                   .kind = core::SelectorKind::kNeural,
                                   .max_batch = max_batch,
                                   .deadline_ms = kDeadlineMs});
  std::vector<runtime::SessionManager::SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    ids.push_back(manager.CreateSession(w.references[i]));
  }

  const std::size_t piece = 4096;
  const double piece_s =
      static_cast<double>(piece) /
      static_cast<double>(w.streams[0].sample_rate());
  const double stagger_s = kChunkSeconds / static_cast<double>(sessions);

  // One (due time, session, offset) event per piece, sorted by due time.
  // Offline replay keeps the same interleaving, just never sleeps.
  struct Event {
    double due_s;
    std::size_t session;
    std::size_t pos;
  };
  std::vector<Event> events;
  for (std::size_t i = 0; i < sessions; ++i) {
    for (std::size_t pos = 0; pos < w.streams[i].size(); pos += piece) {
      events.push_back(
          {static_cast<double>(i) * stagger_s +
               static_cast<double>(pos / piece) * piece_s,
           i, pos});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.due_s < b.due_s;
                   });

  const auto t0 = std::chrono::steady_clock::now();
  for (const Event& e : events) {
    if (arrival == Arrival::kPaced) {
      // Absolute schedule (t0 + due), not relative sleeps: pacing error
      // must not accumulate over a long stream.
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(e.due_s)));
    }
    const std::size_t n = std::min(piece, w.streams[e.session].size() - e.pos);
    manager.Submit(ids[e.session],
                   w.streams[e.session].samples().subspan(e.pos, n));
  }
  manager.Drain();

  RunResult r;
  for (std::size_t i = 0; i < sessions; ++i) {
    audio::Waveform out = manager.TakeOutput(ids[i]);
    if (auto tail = manager.Flush(ids[i])) out.Append(*tail);
    r.outputs.push_back(std::move(out));
  }
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.stats = manager.Stats();
  r.chunks_per_sec =
      r.wall_s > 0.0
          ? static_cast<double>(r.stats.chunks_processed) / r.wall_s
          : 0.0;
  double selector_ms = 0.0;
  std::size_t chunks = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const core::ModuleTimings t = manager.SessionTimings(ids[i]);
    selector_ms += t.selector_ms;
    chunks += t.chunks;
  }
  r.selector_ms_per_chunk =
      chunks ? selector_ms / static_cast<double>(chunks) : 0.0;
  return r;
}

struct SequentialResult {
  std::vector<audio::Waveform> outputs;
  double chunks_per_sec = 0.0;    ///< single-thread loop, all sessions
  double avg_selector_ms = 0.0;   ///< STFT + DNN + inverse STFT, per chunk
  double avg_broadcast_ms = 0.0;  ///< ultrasonic modulation, per chunk
};

/// Sequential reference: one StreamingProcessor per session, same weights.
/// Its per-module timings are the Table II-style single-thread hot-path
/// numbers the perf harness tracks across commits.
SequentialResult RunSequential(const Workload& w) {
  SequentialResult r;
  double selector_ms = 0.0, broadcast_ms = 0.0;
  std::size_t chunks = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < w.streams.size(); ++i) {
    core::NecPipeline pipeline(w.selector, w.encoder, {});
    pipeline.Enroll(w.references[i]);
    core::StreamingProcessor proc(pipeline, kChunkSeconds,
                                  core::SelectorKind::kNeural);
    audio::Waveform out;
    if (auto o = proc.Push(w.streams[i].samples())) out = std::move(*o);
    if (auto tail = proc.Flush()) out.Append(*tail);
    r.outputs.push_back(std::move(out));
    selector_ms += proc.timings().selector_ms;
    broadcast_ms += proc.timings().broadcast_ms;
    chunks += proc.timings().chunks;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.chunks_per_sec =
      wall_s > 0.0 ? static_cast<double>(chunks) / wall_s : 0.0;
  r.avg_selector_ms = chunks ? selector_ms / static_cast<double>(chunks) : 0.0;
  r.avg_broadcast_ms =
      chunks ? broadcast_ms / static_cast<double>(chunks) : 0.0;
  return r;
}

/// Per-chunk heap allocations of one hot-path arm, measured with the
/// alloc_hook counters: warm up `warmup` chunks (buffers grow to
/// steady-state size), then count operator-new calls across `measured`
/// more. `per_chunk` runs one prepared chunk through the arm under test.
/// Single-threaded by construction — runs before any SessionManager
/// exists, so the relaxed counter is exact.
struct AllocArm {
  std::uint64_t total = 0;      ///< allocations across the measured window
  std::size_t chunks = 0;       ///< measured chunk count
  double per_chunk() const {
    return chunks ? static_cast<double>(total) / static_cast<double>(chunks)
                  : 0.0;
  }
};

template <typename PerChunk>
AllocArm MeasureAllocArm(const std::vector<audio::Waveform>& chunks,
                         std::size_t warmup, PerChunk&& per_chunk) {
  AllocArm arm;
  for (std::size_t c = 0; c < warmup && c < chunks.size(); ++c) {
    per_chunk(chunks[c]);
  }
  const std::uint64_t before = AllocCount();
  for (std::size_t c = warmup; c < chunks.size(); ++c) {
    per_chunk(chunks[c]);
    ++arm.chunks;
  }
  arm.total = AllocCount() - before;
  return arm;
}

bool BitExact(const std::vector<audio::Waveform>& a,
              const std::vector<audio::Waveform>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      if (a[i][k] != b[i][k]) return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace nec::bench

int main() {
  using namespace nec::bench;

  const BenchParams params = BenchParams::Get();
  const unsigned hw = std::thread::hardware_concurrency();
  PrintHeader("Runtime throughput: chunks/sec and p99 latency vs. workers");
  std::printf("%zu sessions x %.0f s streams, %.0f s chunks; "
              "hardware_concurrency=%u%s\n",
              params.sessions, params.stream_seconds, kChunkSeconds, hw,
              BenchSmokeMode() ? "  [SMOKE — not a baseline]" : "");

  const Workload w = MakeWorkload(params);
  const SequentialResult sequential = RunSequential(w);
  std::printf("sequential loop: %.2f chunks/sec; per chunk selector "
              "%.2f ms, broadcast %.2f ms\n",
              sequential.chunks_per_sec, sequential.avg_selector_ms,
              sequential.avg_broadcast_ms);

  // ---- Steady-state allocation audit (ISSUE 8). Two arms over identical
  // chunks on one thread, counted via the linked alloc_hook operator-new
  // replacements:
  //   before — the legacy value-returning chunk path (PopChunk →
  //            GenerateShadow → CompleteShadowChunk), which allocates its
  //            spectrogram, selector tensors, FIR taps, and result
  //            waveforms per chunk;
  //   after  — the Into/arena path the runtime strands actually run
  //            (PopChunkInto → ProcessChunkInto), which must perform ZERO
  //            heap allocations per chunk once warm. Asserted below; the
  //            bench exits nonzero on any steady-state allocation.
  bool alloc_ok = true;
  {
    constexpr std::size_t kWarmupChunks = 2;
    constexpr std::size_t kMeasuredChunks = 4;
    nec::core::NecPipeline pipeline(w.selector, w.encoder, {});
    pipeline.Enroll(w.references[0]);

    // Pre-slice the chunk sequence (wrapping over the stream) OUTSIDE the
    // counted window so feeding costs nothing.
    const std::size_t chunk_n = static_cast<std::size_t>(
        kChunkSeconds * w.streams[0].sample_rate());
    const std::size_t in_stream =
        std::max<std::size_t>(1, w.streams[0].size() / chunk_n);
    std::vector<nec::audio::Waveform> chunks;
    for (std::size_t c = 0; c < kWarmupChunks + kMeasuredChunks; ++c) {
      chunks.push_back(w.streams[0].Slice((c % in_stream) * chunk_n,
                                          chunk_n));
    }

    nec::core::StreamingProcessor legacy(pipeline, kChunkSeconds,
                                    nec::core::SelectorKind::kNeural);
    const AllocArm before_arm = MeasureAllocArm(
        chunks, kWarmupChunks, [&](const nec::audio::Waveform& chunk) {
          nec::audio::Waveform shadow = pipeline.GenerateShadow(
              chunk, nec::core::SelectorKind::kNeural,
              &legacy.stft_workspace());
          legacy.CompleteShadowChunk(std::move(shadow), 0.0);
        });

    nec::core::StreamingProcessor proc(pipeline, kChunkSeconds,
                                  nec::core::SelectorKind::kNeural);
    nec::audio::Waveform chunk_buf, mod_buf;
    const AllocArm after_arm = MeasureAllocArm(
        chunks, kWarmupChunks, [&](const nec::audio::Waveform& chunk) {
          proc.BufferSamples(chunk.samples());
          while (proc.HasFullChunk()) {
            proc.PopChunkInto(chunk_buf);
            proc.ProcessChunkInto(chunk_buf, mod_buf);
          }
        });

    alloc_ok = after_arm.total == 0;
    std::printf("\nsteady-state allocations per chunk (%zu warmup + %zu "
                "measured):\n  legacy value path: %8.1f  (%llu total)\n"
                "  arena/Into path:   %8.1f  (%llu total)  %s\n",
                kWarmupChunks, kMeasuredChunks, before_arm.per_chunk(),
                static_cast<unsigned long long>(before_arm.total),
                after_arm.per_chunk(),
                static_cast<unsigned long long>(after_arm.total),
                alloc_ok ? "[OK: zero-alloc]" : "[FAIL: expected 0]");

    JsonWriter ajson;
    ajson.Field("warmup_chunks", static_cast<double>(kWarmupChunks))
        .Field("measured_chunks", static_cast<double>(after_arm.chunks))
        .Field("smoke", BenchSmokeMode());
    ajson.BeginObject("before")
        .Field("path", "legacy value-returning chunk path")
        .Field("total_allocs", static_cast<double>(before_arm.total))
        .Field("allocs_per_chunk", before_arm.per_chunk())
        .EndObject();
    ajson.BeginObject("after")
        .Field("path", "Into/arena chunk path (runtime strands)")
        .Field("total_allocs", static_cast<double>(after_arm.total))
        .Field("allocs_per_chunk", after_arm.per_chunk())
        .EndObject();
    ajson.Field("zero_alloc_steady_state", alloc_ok);
    WriteJsonSection(BenchJsonPath(), "alloc", ajson.Finish());
    std::printf("wrote section alloc -> %s\n", BenchJsonPath().c_str());
  }

  std::printf("\noffline replay (throughput mode; e2e includes replay "
              "backlog, so deadline_met is false by construction):\n");
  std::printf("%8s %12s %10s %10s %10s %12s %10s\n", "workers",
              "chunks/sec", "speedup", "p50 ms", "p99 ms", "e2e p99",
              "bitexact");
  PrintRule();

  JsonWriter json;
  json.Field("sessions", static_cast<double>(params.sessions))
      .Field("stream_seconds", params.stream_seconds)
      .Field("chunk_seconds", kChunkSeconds)
      .Field("deadline_ms", kDeadlineMs)
      .Field("hardware_concurrency", static_cast<double>(hw))
      .Field("arrival", "offline-replay")
      .Field("smoke", BenchSmokeMode());
  json.BeginObject("sequential")
      .Field("chunks_per_sec", sequential.chunks_per_sec)
      .Field("selector_ms_per_chunk", sequential.avg_selector_ms)
      .Field("broadcast_ms_per_chunk", sequential.avg_broadcast_ms)
      .EndObject();
  json.BeginArray("rows");

  double base = 0.0;
  double speedup_at_4 = 0.0;
  bool all_exact = true;
  for (const std::size_t workers : params.worker_sweep) {
    const RunResult r = RunWith(w, workers, params.sessions,
                                /*max_batch=*/1, Arrival::kOffline);
    if (workers == 1) base = r.chunks_per_sec;
    const double speedup = base > 0.0 ? r.chunks_per_sec / base : 0.0;
    if (workers == 4) speedup_at_4 = speedup;
    const bool exact = BitExact(r.outputs, sequential.outputs);
    all_exact &= exact;
    std::printf("%8zu %12.2f %9.2fx %10.2f %10.2f %12.2f %10s\n", workers,
                r.chunks_per_sec, speedup, r.stats.chunk_latency.p50_ms,
                r.stats.chunk_latency.p99_ms, r.stats.e2e_latency.p99_ms,
                exact ? "yes" : "NO");
    json.BeginObject()
        .Field("workers", static_cast<double>(workers))
        .Field("chunks_per_sec", r.chunks_per_sec)
        .Field("speedup_vs_1", speedup)
        .Field("p50_ms", r.stats.chunk_latency.p50_ms)
        .Field("p99_ms", r.stats.chunk_latency.p99_ms)
        .Field("max_ms", r.stats.chunk_latency.max_ms)
        .Field("e2e_p50_ms", r.stats.e2e_latency.p50_ms)
        .Field("e2e_p99_ms", r.stats.e2e_latency.p99_ms)
        .Field("bitexact", exact)
        // Honest accounting: the deadline verdict is end-to-end (queue
        // wait + compute), never compute-only. Under offline replay the
        // whole stream is enqueued up front, so e2e measures backlog and
        // this is false on any hardware slower than the replay — the
        // paced rows in the `batched` section are where the deadline can
        // genuinely be met or missed.
        .Field("deadline_met", r.stats.e2e_latency.p99_ms < kDeadlineMs)
        .EndObject();
  }
  json.EndArray();
  json.Field("all_bitexact", all_exact);

  PrintRule();
  std::printf("per-session outputs vs sequential StreamingProcessor: %s\n",
              all_exact ? "bit-identical" : "MISMATCH");
  std::printf("speedup at 4 workers: %.2fx%s\n", speedup_at_4,
              hw < 4 ? " (machine has fewer than 4 cores; scaling is "
                       "core-bound)"
                     : "");

  const std::string path = BenchJsonPath();
  WriteJsonSection(path, "runtime_throughput", json.Finish());
  std::printf("wrote section runtime_throughput -> %s\n", path.c_str());

  // ---- Continuous batching sweep (ISSUE 3 / ISSUE 7): batched vs
  // unbatched at 1/4/8 concurrent sessions. Each row is measured twice:
  //   * offline replay -> chunks/sec + speedup (saturation throughput),
  //   * paced arrival  -> e2e latency quantiles + deadline_met (serving).
  // On a machine with >= 4 cores an extra row runs the same comparison
  // with 4 dispatch workers and max_batch 4 — the continuous batcher's
  // multi-core configuration (EDF admission + work stealing across
  // dispatchers). Rows record `workers` so no reader mistakes a 1-core
  // number for a multi-core one.
  struct BatchedRow {
    std::size_t sessions;
    std::size_t workers;
    std::size_t max_batch;
  };
  std::vector<BatchedRow> brows;
  for (const std::size_t n : params.batched_session_sweep) {
    brows.push_back({n, 1, params.batched_max_batch});
  }
  const bool multicore = hw >= 4 && !BenchSmokeMode();
  if (multicore) {
    brows.push_back({params.sessions, 4, 4});
  }

  std::printf("\ncontinuous batching (offline -> speedup, paced -> e2e):\n");
  std::printf("%5s %4s %3s %11s %11s %9s %6s %9s %9s %5s %6s\n", "sess",
              "wrk", "mb", "unbat ch/s", "bat ch/s", "speedup", "avgB",
              "e2e p50", "e2e p99", "ddl", "exact");
  PrintRule();

  JsonWriter bjson;
  bjson.Field("max_batch", static_cast<double>(params.batched_max_batch))
      .Field("stream_seconds", params.stream_seconds)
      .Field("deadline_ms", kDeadlineMs)
      .Field("hardware_concurrency", static_cast<double>(hw))
      .Field("throughput_arrival", "offline-replay")
      .Field("latency_arrival", "paced-realtime")
      // True when this machine cannot produce the >= 4-core row the 1.5x
      // target is defined over; tools/check.sh downgrades the target to a
      // pending marker instead of judging multi-core scheduling on a box
      // that cannot express it.
      .Field("multicore_pending", !multicore)
      .Field("smoke", BenchSmokeMode());
  bjson.BeginArray("rows");
  bool batched_exact = true;
  bool batched_deadline_ok = true;
  for (const BatchedRow& row : brows) {
    // Throughput arms: offline replay, machine saturated.
    const RunResult off_un =
        RunWith(w, row.workers, row.sessions, /*max_batch=*/1,
                Arrival::kOffline);
    const RunResult off_ba =
        RunWith(w, row.workers, row.sessions, row.max_batch,
                Arrival::kOffline);
    // Latency arms: paced arrival, e2e == service latency.
    const RunResult pac_un =
        RunWith(w, row.workers, row.sessions, /*max_batch=*/1,
                Arrival::kPaced);
    const RunResult pac_ba =
        RunWith(w, row.workers, row.sessions, row.max_batch,
                Arrival::kPaced);
    const std::vector<nec::audio::Waveform> expect(
        sequential.outputs.begin(),
        sequential.outputs.begin() +
            static_cast<std::ptrdiff_t>(row.sessions));
    const bool exact = BitExact(off_ba.outputs, expect) &&
                       BitExact(pac_ba.outputs, expect);
    batched_exact &= exact;
    const bool deadline_met = pac_ba.stats.e2e_latency.p99_ms < kDeadlineMs;
    batched_deadline_ok &= deadline_met;
    const double speedup = off_un.chunks_per_sec > 0.0
                               ? off_ba.chunks_per_sec / off_un.chunks_per_sec
                               : 0.0;
    std::printf(
        "%5zu %4zu %3zu %11.2f %11.2f %8.2fx %6.2f %9.2f %9.2f %5s %6s\n",
        row.sessions, row.workers, row.max_batch, off_un.chunks_per_sec,
        off_ba.chunks_per_sec, speedup, off_ba.stats.avg_batch_size,
        pac_ba.stats.e2e_latency.p50_ms, pac_ba.stats.e2e_latency.p99_ms,
        deadline_met ? "met" : "MISS", exact ? "yes" : "NO");
    bjson.BeginObject()
        .Field("sessions", static_cast<double>(row.sessions))
        .Field("workers", static_cast<double>(row.workers))
        .Field("max_batch", static_cast<double>(row.max_batch))
        .Field("unbatched_chunks_per_sec", off_un.chunks_per_sec)
        .Field("unbatched_selector_ms_per_chunk",
               off_un.selector_ms_per_chunk)
        .Field("batched_chunks_per_sec", off_ba.chunks_per_sec)
        .Field("batched_selector_ms_per_chunk", off_ba.selector_ms_per_chunk)
        .Field("speedup_batched_vs_unbatched", speedup)
        .Field("avg_batch_size", off_ba.stats.avg_batch_size)
        .Field("max_batch_size",
               static_cast<double>(off_ba.stats.max_batch_size))
        // Paced-arm numbers: what a live deployment would see.
        .Field("paced_avg_batch_size", pac_ba.stats.avg_batch_size)
        .Field("queue_wait_p50_ms", pac_ba.stats.queue_wait.p50_ms)
        .Field("queue_wait_p99_ms", pac_ba.stats.queue_wait.p99_ms)
        .Field("p50_ms", pac_ba.stats.chunk_latency.p50_ms)
        .Field("p99_ms", pac_ba.stats.chunk_latency.p99_ms)
        .Field("e2e_p50_ms", pac_ba.stats.e2e_latency.p50_ms)
        .Field("e2e_p99_ms", pac_ba.stats.e2e_latency.p99_ms)
        .Field("unbatched_e2e_p99_ms", pac_un.stats.e2e_latency.p99_ms)
        .Field("bitexact", exact)
        .Field("deadline_met", deadline_met)
        .EndObject();
  }
  bjson.EndArray();
  bjson.Field("all_bitexact", batched_exact)
      .Field("deadline_ok", batched_deadline_ok);

  PrintRule();
  std::printf("batched outputs vs sequential StreamingProcessor: %s\n",
              batched_exact ? "bit-identical" : "MISMATCH");
  std::printf("300 ms deadline, paced e2e p99 (all rows): %s\n",
              batched_deadline_ok ? "met" : "missed");
  if (!multicore && !BenchSmokeMode()) {
    std::printf("NOTE: hardware_concurrency=%u < 4 — the >= 4-core "
                "batched row (workers=4, max_batch=4) is pending a "
                "multi-core machine.\n",
                hw);
  }
  WriteJsonSection(path, "batched", bjson.Finish());
  std::printf("wrote section batched -> %s\n", path.c_str());

  if (!alloc_ok) {
    std::printf("FAIL: steady-state chunk path allocated (see alloc "
                "section)\n");
  }
  return all_exact && batched_exact && alloc_ok ? 0 : 1;
}
