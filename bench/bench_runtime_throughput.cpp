// Runtime throughput: aggregate chunks/sec and p99 per-chunk latency vs.
// worker count, on >= 8 concurrent protection sessions.
//
// The single-threaded deployment loop (Table II) bounds ONE stream; this
// harness measures how far the nec::runtime layer scales that with a pool.
// Sweep: 1, 2, 4, 8 workers over the same 8-session workload, reporting
//   * aggregate chunks/sec (all sessions),
//   * p50/p99 per-chunk selector+broadcast latency vs. the 300 ms
//     overshadowing deadline (§IV-C2),
//   * speedup over the 1-worker row,
// plus a bit-exactness audit: every session's parallel output must equal
// the sequential StreamingProcessor result sample-for-sample (the strand
// design guarantees it; this harness re-proves it on real audio).
//
// The selector is a fixed-seed untrained Fast() model: weight values do
// not change the arithmetic cost, and keeping the bench hermetic avoids a
// training dependency. Scaling is compute-bound, so rows are only
// meaningful on a machine with as many cores as workers (the header line
// prints hardware_concurrency for honest reading).
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "core/selector.h"
#include "core/streaming.h"
#include "encoder/encoder.h"
#include "runtime/session_manager.h"
#include "synth/dataset.h"

namespace nec::bench {
namespace {

constexpr std::size_t kSessions = 8;
constexpr double kStreamSeconds = 6.0;
constexpr double kChunkSeconds = 1.0;
constexpr double kDeadlineMs = 300.0;

struct Workload {
  std::shared_ptr<const core::Selector> selector;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder;
  std::vector<synth::SpeakerProfile> speakers;
  std::vector<std::vector<audio::Waveform>> references;
  std::vector<audio::Waveform> streams;
};

Workload MakeWorkload() {
  Workload w;
  const core::NecConfig cfg = core::NecConfig::Fast();
  w.selector = std::make_shared<const core::Selector>(cfg, /*init_seed=*/29);
  w.encoder = std::make_shared<encoder::LasEncoder>(cfg.embedding_dim);
  synth::DatasetBuilder stream_builder({.duration_s = kStreamSeconds});
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  for (std::size_t i = 0; i < kSessions; ++i) {
    w.speakers.push_back(synth::SpeakerProfile::FromSeed(300 + i));
    w.references.push_back(
        enroll_builder.MakeReferenceAudios(w.speakers[i], 3, 600 + i));
    w.streams.push_back(
        stream_builder
            .MakeInstance(w.speakers[i], synth::Scenario::kBabble, 900 + i)
            .mixed);
  }
  return w;
}

struct RunResult {
  double wall_s = 0.0;
  double chunks_per_sec = 0.0;
  runtime::RuntimeStatsSnapshot stats;
  std::vector<audio::Waveform> outputs;
};

RunResult RunWith(const Workload& w, std::size_t workers) {
  runtime::SessionManager manager(w.selector, w.encoder, {},
                                  {.workers = workers,
                                   .queue_capacity = 1024,
                                   .chunk_s = kChunkSeconds,
                                   .kind = core::SelectorKind::kNeural});
  std::vector<runtime::SessionManager::SessionId> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    ids.push_back(manager.CreateSession(w.references[i]));
  }

  // Interleave piece-wise submissions so all strands are live together.
  const std::size_t piece = 4096;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t pos = 0;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (pos >= w.streams[i].size()) continue;
      const std::size_t n = std::min(piece, w.streams[i].size() - pos);
      manager.Submit(ids[i], w.streams[i].samples().subspan(pos, n));
      any_left = true;
    }
    pos += piece;
  }
  manager.Drain();

  RunResult r;
  for (std::size_t i = 0; i < kSessions; ++i) {
    audio::Waveform out = manager.TakeOutput(ids[i]);
    if (auto tail = manager.Flush(ids[i])) out.Append(*tail);
    r.outputs.push_back(std::move(out));
  }
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.stats = manager.Stats();
  r.chunks_per_sec =
      r.wall_s > 0.0
          ? static_cast<double>(r.stats.chunks_processed) / r.wall_s
          : 0.0;
  return r;
}

/// Sequential reference: one StreamingProcessor per session, same weights.
std::vector<audio::Waveform> RunSequential(const Workload& w) {
  std::vector<audio::Waveform> outs;
  for (std::size_t i = 0; i < kSessions; ++i) {
    core::NecPipeline pipeline(w.selector, w.encoder, {});
    pipeline.Enroll(w.references[i]);
    core::StreamingProcessor proc(pipeline, kChunkSeconds,
                                  core::SelectorKind::kNeural);
    audio::Waveform out;
    if (auto o = proc.Push(w.streams[i].samples())) out = std::move(*o);
    if (auto tail = proc.Flush()) out.Append(*tail);
    outs.push_back(std::move(out));
  }
  return outs;
}

bool BitExact(const std::vector<audio::Waveform>& a,
              const std::vector<audio::Waveform>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      if (a[i][k] != b[i][k]) return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace nec::bench

int main() {
  using namespace nec::bench;

  PrintHeader("Runtime throughput: chunks/sec and p99 latency vs. workers");
  std::printf("%zu sessions x %.0f s streams, %.0f s chunks; "
              "hardware_concurrency=%u\n",
              kSessions, kStreamSeconds, kChunkSeconds,
              std::thread::hardware_concurrency());

  const Workload w = MakeWorkload();
  const std::vector<nec::audio::Waveform> sequential = RunSequential(w);

  std::printf("\n%8s %12s %10s %10s %10s %10s %10s\n", "workers",
              "chunks/sec", "speedup", "p50 ms", "p99 ms", "max ms",
              "bitexact");
  PrintRule();

  double base = 0.0;
  double speedup_at_4 = 0.0;
  bool all_exact = true;
  bool deadline_ok = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunWith(w, workers);
    if (workers == 1) base = r.chunks_per_sec;
    const double speedup = base > 0.0 ? r.chunks_per_sec / base : 0.0;
    if (workers == 4) speedup_at_4 = speedup;
    const bool exact = BitExact(r.outputs, sequential);
    all_exact &= exact;
    deadline_ok &= r.stats.chunk_latency.p99_ms < kDeadlineMs;
    std::printf("%8zu %12.2f %9.2fx %10.2f %10.2f %10.2f %10s\n", workers,
                r.chunks_per_sec, speedup, r.stats.chunk_latency.p50_ms,
                r.stats.chunk_latency.p99_ms, r.stats.chunk_latency.max_ms,
                exact ? "yes" : "NO");
  }

  PrintRule();
  std::printf("per-session outputs vs sequential StreamingProcessor: %s\n",
              all_exact ? "bit-identical" : "MISMATCH");
  std::printf("300 ms overshadowing deadline (p99, all rows): %s\n",
              deadline_ok ? "met" : "missed");
  std::printf("speedup at 4 workers: %.2fx%s\n", speedup_at_4,
              std::thread::hardware_concurrency() < 4
                  ? " (machine has fewer than 4 cores; scaling is "
                    "core-bound)"
                  : "");
  return all_exact ? 0 : 1;
}
