// Runtime throughput: aggregate chunks/sec and p99 per-chunk latency vs.
// worker count, on >= 8 concurrent protection sessions.
//
// The single-threaded deployment loop (Table II) bounds ONE stream; this
// harness measures how far the nec::runtime layer scales that with a pool.
// Sweep: 1, 2, 4, 8 workers over the same 8-session workload, reporting
//   * aggregate chunks/sec (all sessions),
//   * p50/p99 per-chunk selector+broadcast latency vs. the 300 ms
//     overshadowing deadline (§IV-C2),
//   * speedup over the 1-worker row,
// plus a bit-exactness audit: every session's parallel output must equal
// the sequential StreamingProcessor result sample-for-sample (the strand
// design guarantees it; this harness re-proves it on real audio).
//
// The selector is a fixed-seed untrained Fast() model: weight values do
// not change the arithmetic cost, and keeping the bench hermetic avoids a
// training dependency. Scaling is compute-bound, so rows are only
// meaningful on a machine with as many cores as workers (the header line
// prints hardware_concurrency for honest reading).
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "core/selector.h"
#include "core/streaming.h"
#include "encoder/encoder.h"
#include "runtime/session_manager.h"
#include "synth/dataset.h"

namespace nec::bench {
namespace {

constexpr double kChunkSeconds = 1.0;
constexpr double kDeadlineMs = 300.0;

/// Full run: 8 sessions x 6 s, worker sweep 1/2/4/8. Smoke mode
/// ($NEC_BENCH_SMOKE) shrinks to 2 x 2 s with workers 1/2 — enough to
/// exercise the wiring and emit well-formed JSON in a few seconds.
struct BenchParams {
  std::size_t sessions = 8;
  double stream_seconds = 6.0;
  std::vector<std::size_t> worker_sweep = {1, 2, 4, 8};
  /// Micro-batching sweep: concurrent-session counts compared
  /// batched-vs-unbatched at a fixed worker count (ISSUE 3 records 1/4/8).
  std::vector<std::size_t> batched_session_sweep = {1, 4, 8};
  /// One InferBatch serializes its whole batch before the last chunk in it
  /// completes, so on a core-bound box max_batch bounds the per-chunk p99
  /// at roughly max_batch * chunk-compute. 3 keeps a full batch's compute
  /// inside the 300 ms deadline with ~25% margin at ~70 ms/chunk while
  /// still amortizing dispatch across sessions.
  std::size_t batched_max_batch = 3;

  static BenchParams Get() {
    if (!BenchSmokeMode()) return {};
    return {.sessions = 2,
            .stream_seconds = 2.0,
            .worker_sweep = {1, 2},
            .batched_session_sweep = {1, 2},
            .batched_max_batch = 2};
  }
};

struct Workload {
  std::shared_ptr<const core::Selector> selector;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder;
  std::vector<synth::SpeakerProfile> speakers;
  std::vector<std::vector<audio::Waveform>> references;
  std::vector<audio::Waveform> streams;
};

Workload MakeWorkload(const BenchParams& p) {
  Workload w;
  const core::NecConfig cfg = core::NecConfig::Fast();
  w.selector = std::make_shared<const core::Selector>(cfg, /*init_seed=*/29);
  w.encoder = std::make_shared<encoder::LasEncoder>(cfg.embedding_dim);
  synth::DatasetBuilder stream_builder({.duration_s = p.stream_seconds});
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  for (std::size_t i = 0; i < p.sessions; ++i) {
    w.speakers.push_back(synth::SpeakerProfile::FromSeed(300 + i));
    w.references.push_back(
        enroll_builder.MakeReferenceAudios(w.speakers[i], 3, 600 + i));
    w.streams.push_back(
        stream_builder
            .MakeInstance(w.speakers[i], synth::Scenario::kBabble, 900 + i)
            .mixed);
  }
  return w;
}

struct RunResult {
  double wall_s = 0.0;
  double chunks_per_sec = 0.0;
  double selector_ms_per_chunk = 0.0;  ///< per-session timing sum / chunks
  runtime::RuntimeStatsSnapshot stats;
  std::vector<audio::Waveform> outputs;
};

/// Runs the first `sessions` workload streams through a SessionManager.
/// `max_batch` > 1 turns on the micro-batching coalescer.
RunResult RunWith(const Workload& w, std::size_t workers,
                  std::size_t sessions, std::size_t max_batch) {
  runtime::SessionManager manager(w.selector, w.encoder, {},
                                  {.workers = workers,
                                   .queue_capacity = 1024,
                                   .chunk_s = kChunkSeconds,
                                   .kind = core::SelectorKind::kNeural,
                                   .max_batch = max_batch,
                                   .deadline_ms = kDeadlineMs});
  std::vector<runtime::SessionManager::SessionId> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    ids.push_back(manager.CreateSession(w.references[i]));
  }

  // Interleave piece-wise submissions so all strands are live together.
  const std::size_t piece = 4096;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t pos = 0;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t i = 0; i < sessions; ++i) {
      if (pos >= w.streams[i].size()) continue;
      const std::size_t n = std::min(piece, w.streams[i].size() - pos);
      manager.Submit(ids[i], w.streams[i].samples().subspan(pos, n));
      any_left = true;
    }
    pos += piece;
  }
  manager.Drain();

  RunResult r;
  for (std::size_t i = 0; i < sessions; ++i) {
    audio::Waveform out = manager.TakeOutput(ids[i]);
    if (auto tail = manager.Flush(ids[i])) out.Append(*tail);
    r.outputs.push_back(std::move(out));
  }
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.stats = manager.Stats();
  r.chunks_per_sec =
      r.wall_s > 0.0
          ? static_cast<double>(r.stats.chunks_processed) / r.wall_s
          : 0.0;
  double selector_ms = 0.0;
  std::size_t chunks = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const core::ModuleTimings t = manager.SessionTimings(ids[i]);
    selector_ms += t.selector_ms;
    chunks += t.chunks;
  }
  r.selector_ms_per_chunk =
      chunks ? selector_ms / static_cast<double>(chunks) : 0.0;
  return r;
}

struct SequentialResult {
  std::vector<audio::Waveform> outputs;
  double chunks_per_sec = 0.0;    ///< single-thread loop, all sessions
  double avg_selector_ms = 0.0;   ///< STFT + DNN + inverse STFT, per chunk
  double avg_broadcast_ms = 0.0;  ///< ultrasonic modulation, per chunk
};

/// Sequential reference: one StreamingProcessor per session, same weights.
/// Its per-module timings are the Table II-style single-thread hot-path
/// numbers the perf harness tracks across commits.
SequentialResult RunSequential(const Workload& w) {
  SequentialResult r;
  double selector_ms = 0.0, broadcast_ms = 0.0;
  std::size_t chunks = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < w.streams.size(); ++i) {
    core::NecPipeline pipeline(w.selector, w.encoder, {});
    pipeline.Enroll(w.references[i]);
    core::StreamingProcessor proc(pipeline, kChunkSeconds,
                                  core::SelectorKind::kNeural);
    audio::Waveform out;
    if (auto o = proc.Push(w.streams[i].samples())) out = std::move(*o);
    if (auto tail = proc.Flush()) out.Append(*tail);
    r.outputs.push_back(std::move(out));
    selector_ms += proc.timings().selector_ms;
    broadcast_ms += proc.timings().broadcast_ms;
    chunks += proc.timings().chunks;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.chunks_per_sec =
      wall_s > 0.0 ? static_cast<double>(chunks) / wall_s : 0.0;
  r.avg_selector_ms = chunks ? selector_ms / static_cast<double>(chunks) : 0.0;
  r.avg_broadcast_ms =
      chunks ? broadcast_ms / static_cast<double>(chunks) : 0.0;
  return r;
}

bool BitExact(const std::vector<audio::Waveform>& a,
              const std::vector<audio::Waveform>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      if (a[i][k] != b[i][k]) return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace nec::bench

int main() {
  using namespace nec::bench;

  const BenchParams params = BenchParams::Get();
  PrintHeader("Runtime throughput: chunks/sec and p99 latency vs. workers");
  std::printf("%zu sessions x %.0f s streams, %.0f s chunks; "
              "hardware_concurrency=%u%s\n",
              params.sessions, params.stream_seconds, kChunkSeconds,
              std::thread::hardware_concurrency(),
              BenchSmokeMode() ? "  [SMOKE — not a baseline]" : "");

  const Workload w = MakeWorkload(params);
  const SequentialResult sequential = RunSequential(w);
  std::printf("sequential loop: %.2f chunks/sec; per chunk selector "
              "%.2f ms, broadcast %.2f ms\n",
              sequential.chunks_per_sec, sequential.avg_selector_ms,
              sequential.avg_broadcast_ms);

  std::printf("\n%8s %12s %10s %10s %10s %10s %10s\n", "workers",
              "chunks/sec", "speedup", "p50 ms", "p99 ms", "max ms",
              "bitexact");
  PrintRule();

  JsonWriter json;
  json.Field("sessions", static_cast<double>(params.sessions))
      .Field("stream_seconds", params.stream_seconds)
      .Field("chunk_seconds", kChunkSeconds)
      .Field("deadline_ms", kDeadlineMs)
      .Field("hardware_concurrency",
             static_cast<double>(std::thread::hardware_concurrency()))
      .Field("smoke", BenchSmokeMode());
  json.BeginObject("sequential")
      .Field("chunks_per_sec", sequential.chunks_per_sec)
      .Field("selector_ms_per_chunk", sequential.avg_selector_ms)
      .Field("broadcast_ms_per_chunk", sequential.avg_broadcast_ms)
      .EndObject();
  json.BeginArray("rows");

  double base = 0.0;
  double speedup_at_4 = 0.0;
  bool all_exact = true;
  bool deadline_ok = true;
  for (const std::size_t workers : params.worker_sweep) {
    const RunResult r = RunWith(w, workers, params.sessions,
                                /*max_batch=*/1);
    if (workers == 1) base = r.chunks_per_sec;
    const double speedup = base > 0.0 ? r.chunks_per_sec / base : 0.0;
    if (workers == 4) speedup_at_4 = speedup;
    const bool exact = BitExact(r.outputs, sequential.outputs);
    all_exact &= exact;
    deadline_ok &= r.stats.chunk_latency.p99_ms < kDeadlineMs;
    std::printf("%8zu %12.2f %9.2fx %10.2f %10.2f %10.2f %10s\n", workers,
                r.chunks_per_sec, speedup, r.stats.chunk_latency.p50_ms,
                r.stats.chunk_latency.p99_ms, r.stats.chunk_latency.max_ms,
                exact ? "yes" : "NO");
    json.BeginObject()
        .Field("workers", static_cast<double>(workers))
        .Field("chunks_per_sec", r.chunks_per_sec)
        .Field("speedup_vs_1", speedup)
        .Field("p50_ms", r.stats.chunk_latency.p50_ms)
        .Field("p99_ms", r.stats.chunk_latency.p99_ms)
        .Field("max_ms", r.stats.chunk_latency.max_ms)
        .Field("bitexact", exact)
        .Field("deadline_met", r.stats.chunk_latency.p99_ms < kDeadlineMs)
        .EndObject();
  }
  json.EndArray();
  json.Field("all_bitexact", all_exact).Field("deadline_ok", deadline_ok);

  PrintRule();
  std::printf("per-session outputs vs sequential StreamingProcessor: %s\n",
              all_exact ? "bit-identical" : "MISMATCH");
  std::printf("300 ms overshadowing deadline (p99, all rows): %s\n",
              deadline_ok ? "met" : "missed");
  std::printf("speedup at 4 workers: %.2fx%s\n", speedup_at_4,
              std::thread::hardware_concurrency() < 4
                  ? " (machine has fewer than 4 cores; scaling is "
                    "core-bound)"
                  : "");

  const std::string path = BenchJsonPath();
  WriteJsonSection(path, "runtime_throughput", json.Finish());
  std::printf("wrote section runtime_throughput -> %s\n", path.c_str());

  // ---- Micro-batching sweep (ISSUE 3): batched vs unbatched at 1/4/8
  // concurrent sessions, one worker (the machine is compute-bound; the
  // coalescer's win is one batched forward amortizing packing across
  // sessions, not extra parallelism).
  std::printf("\nmicro-batching (max_batch=%zu, 1 worker):\n",
              params.batched_max_batch);
  std::printf("%8s %14s %14s %10s %10s %10s %10s %10s\n", "sessions",
              "unbat ch/s", "batched ch/s", "speedup", "sel ms", "avgB",
              "p99 ms", "bitexact");
  PrintRule();

  JsonWriter bjson;
  bjson.Field("max_batch", static_cast<double>(params.batched_max_batch))
      .Field("workers", 1.0)
      .Field("stream_seconds", params.stream_seconds)
      .Field("deadline_ms", kDeadlineMs)
      .Field("smoke", BenchSmokeMode());
  bjson.BeginArray("rows");
  bool batched_exact = true;
  bool batched_deadline_ok = true;
  for (const std::size_t n : params.batched_session_sweep) {
    const RunResult un = RunWith(w, /*workers=*/1, n, /*max_batch=*/1);
    const RunResult ba =
        RunWith(w, /*workers=*/1, n, params.batched_max_batch);
    const std::vector<nec::audio::Waveform> expect(
        sequential.outputs.begin(),
        sequential.outputs.begin() + static_cast<std::ptrdiff_t>(n));
    const bool exact = BitExact(ba.outputs, expect);
    batched_exact &= exact;
    batched_deadline_ok &= ba.stats.chunk_latency.p99_ms < kDeadlineMs;
    const double speedup = un.chunks_per_sec > 0.0
                               ? ba.chunks_per_sec / un.chunks_per_sec
                               : 0.0;
    std::printf("%8zu %14.2f %14.2f %9.2fx %10.2f %10.2f %10.2f %10s\n", n,
                un.chunks_per_sec, ba.chunks_per_sec, speedup,
                ba.selector_ms_per_chunk, ba.stats.avg_batch_size,
                ba.stats.chunk_latency.p99_ms, exact ? "yes" : "NO");
    bjson.BeginObject()
        .Field("sessions", static_cast<double>(n))
        .Field("unbatched_chunks_per_sec", un.chunks_per_sec)
        .Field("unbatched_selector_ms_per_chunk", un.selector_ms_per_chunk)
        .Field("batched_chunks_per_sec", ba.chunks_per_sec)
        .Field("batched_selector_ms_per_chunk", ba.selector_ms_per_chunk)
        .Field("speedup_batched_vs_unbatched", speedup)
        .Field("avg_batch_size", ba.stats.avg_batch_size)
        .Field("max_batch_size", static_cast<double>(ba.stats.max_batch_size))
        .Field("queue_wait_p50_ms", ba.stats.queue_wait.p50_ms)
        .Field("queue_wait_p99_ms", ba.stats.queue_wait.p99_ms)
        .Field("p50_ms", ba.stats.chunk_latency.p50_ms)
        .Field("p99_ms", ba.stats.chunk_latency.p99_ms)
        .Field("bitexact", exact)
        .Field("deadline_met",
               ba.stats.chunk_latency.p99_ms < kDeadlineMs)
        .EndObject();
  }
  bjson.EndArray();
  bjson.Field("all_bitexact", batched_exact)
      .Field("deadline_ok", batched_deadline_ok);

  PrintRule();
  std::printf("batched outputs vs sequential StreamingProcessor: %s\n",
              batched_exact ? "bit-identical" : "MISMATCH");
  std::printf("300 ms deadline under batching (p99, all rows): %s\n",
              batched_deadline_ok ? "met" : "missed");
  WriteJsonSection(path, "batched", bjson.Finish());
  std::printf("wrote section batched -> %s\n", path.c_str());

  return all_exact && batched_exact ? 0 : 1;
}
