// Tests for dB / SPL math.
#include <gtest/gtest.h>

#include "audio/level.h"

namespace nec::audio {
namespace {

TEST(Level, AmplitudeDbRoundTrip) {
  for (double db : {-40.0, -6.0, 0.0, 6.0, 20.0}) {
    EXPECT_NEAR(AmplitudeToDb(DbToAmplitude(db)), db, 1e-9);
  }
}

TEST(Level, PowerDbRoundTrip) {
  for (double db : {-30.0, 0.0, 10.0}) {
    EXPECT_NEAR(PowerToDb(DbToPower(db)), db, 1e-9);
  }
}

TEST(Level, KnownValues) {
  EXPECT_NEAR(AmplitudeToDb(2.0), 6.0206, 1e-3);
  EXPECT_NEAR(PowerToDb(2.0), 3.0103, 1e-3);
  EXPECT_NEAR(DbToAmplitude(20.0), 10.0, 1e-9);
  EXPECT_NEAR(DbToPower(10.0), 10.0, 1e-9);
}

TEST(Level, NonPositiveInputFloorsInsteadOfNan) {
  EXPECT_LE(AmplitudeToDb(0.0), -299.0);
  EXPECT_LE(AmplitudeToDb(-1.0), -299.0);
  EXPECT_LE(PowerToDb(0.0), -299.0);
}

TEST(SplScale, CalibrationPointMapsToUnity) {
  SplScale scale(94.0);
  EXPECT_NEAR(scale.SplToRms(94.0), 1.0, 1e-9);
  EXPECT_NEAR(scale.RmsToSpl(1.0), 94.0, 1e-9);
}

TEST(SplScale, TwentyDbPerDecade) {
  SplScale scale(94.0);
  EXPECT_NEAR(scale.SplToRms(74.0), 0.1, 1e-9);
  EXPECT_NEAR(scale.SplToRms(114.0), 10.0, 1e-7);
}

TEST(SplScale, SpeechLevelsAreSane) {
  // The paper's 77 dB_SPL speech at 5 cm should be a comfortably
  // representable digital level, and the 39.8 dB noise floor far below it.
  SplScale scale;
  const double speech = scale.SplToRms(77.0);
  const double floor = scale.SplToRms(39.8);
  EXPECT_GT(speech, 0.1);
  EXPECT_LT(speech, 0.2);
  EXPECT_LT(floor, speech / 50.0);
}

TEST(SplScale, RoundTripArbitraryScale) {
  SplScale scale(100.0);
  for (double spl : {30.0, 60.0, 94.0, 120.0}) {
    EXPECT_NEAR(scale.RmsToSpl(scale.SplToRms(spl)), spl, 1e-9);
  }
}

}  // namespace
}  // namespace nec::audio
