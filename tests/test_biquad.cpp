// Tests for biquad filters and designs.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsp/biquad.h"

namespace nec::dsp {
namespace {

// Measures empirical gain of a filter at frequency f by filtering a tone.
double MeasureGain(Biquad filter, double f_hz, double fs) {
  const std::size_t n = static_cast<std::size_t>(fs);  // 1 second
  double in_energy = 0.0, out_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * f_hz * i / fs));
    const float y = filter.Process(x);
    if (i > n / 4) {  // skip transient
      in_energy += static_cast<double>(x) * x;
      out_energy += static_cast<double>(y) * y;
    }
  }
  return std::sqrt(out_energy / in_energy);
}

TEST(Biquad, IdentityByDefault) {
  Biquad b;
  EXPECT_EQ(b.Process(0.5f), 0.5f);
  EXPECT_EQ(b.Process(-0.25f), -0.25f);
}

TEST(Biquad, LowPassAttenuatesHighPassesLow) {
  Biquad lp = DesignLowPass(1000.0, 16000.0);
  EXPECT_NEAR(MeasureGain(lp, 100.0, 16000.0), 1.0, 0.02);
  EXPECT_NEAR(MeasureGain(lp, 1000.0, 16000.0), std::sqrt(0.5), 0.03);
  EXPECT_LT(MeasureGain(lp, 6000.0, 16000.0), 0.05);
}

TEST(Biquad, HighPassMirrorsLowPass) {
  Biquad hp = DesignHighPass(1000.0, 16000.0);
  EXPECT_LT(MeasureGain(hp, 100.0, 16000.0), 0.05);
  EXPECT_NEAR(MeasureGain(hp, 6000.0, 16000.0), 1.0, 0.03);
}

TEST(Biquad, BandPassPeaksAtCenter) {
  Biquad bp = DesignBandPass(2000.0, 16000.0, 4.0);
  EXPECT_NEAR(MeasureGain(bp, 2000.0, 16000.0), 1.0, 0.05);
  EXPECT_LT(MeasureGain(bp, 500.0, 16000.0), 0.3);
  EXPECT_LT(MeasureGain(bp, 6000.0, 16000.0), 0.3);
}

TEST(Biquad, PeakingBoostsAtCenterOnly) {
  Biquad pk = DesignPeaking(1500.0, 16000.0, 2.0, 12.0);
  EXPECT_NEAR(MeasureGain(pk, 1500.0, 16000.0), std::pow(10.0, 12.0 / 20.0),
              0.3);
  EXPECT_NEAR(MeasureGain(pk, 100.0, 16000.0), 1.0, 0.05);
  EXPECT_NEAR(MeasureGain(pk, 7000.0, 16000.0), 1.0, 0.05);
}

TEST(Biquad, ResonatorUnitGainAtResonance) {
  for (double f : {500.0, 1500.0, 2800.0}) {
    Biquad r = DesignResonator(f, 80.0, 16000.0);
    EXPECT_NEAR(MeasureGain(r, f, 16000.0), 1.0, 0.1) << "center " << f;
    EXPECT_LT(MeasureGain(r, f * 2.5, 16000.0), 0.3);
  }
}

TEST(Biquad, MagnitudeAtMatchesMeasurement) {
  Biquad lp = DesignLowPass(2000.0, 16000.0);
  for (double f : {200.0, 2000.0, 5000.0}) {
    Biquad copy = lp;
    EXPECT_NEAR(lp.MagnitudeAt(f, 16000.0), MeasureGain(copy, f, 16000.0),
                0.03)
        << "f " << f;
  }
}

TEST(Biquad, ResetClearsState) {
  Biquad lp = DesignLowPass(500.0, 16000.0);
  for (int i = 0; i < 100; ++i) lp.Process(1.0f);
  lp.Reset();
  Biquad fresh = DesignLowPass(500.0, 16000.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lp.Process(0.5f), fresh.Process(0.5f));
  }
}

TEST(Biquad, DesignRejectsBadParameters) {
  EXPECT_THROW(DesignLowPass(9000.0, 16000.0), nec::CheckError);  // > fs/2
  EXPECT_THROW(DesignLowPass(-5.0, 16000.0), nec::CheckError);
  EXPECT_THROW(DesignLowPass(1000.0, 16000.0, -1.0), nec::CheckError);
  EXPECT_THROW(DesignResonator(500.0, 0.0, 16000.0), nec::CheckError);
}

TEST(BiquadChain, ButterworthSteeperThanSingleSection) {
  BiquadChain bw = DesignButterworthLowPass(8, 2000.0, 16000.0);
  Biquad single = DesignLowPass(2000.0, 16000.0);
  const double f = 4000.0;
  EXPECT_LT(bw.MagnitudeAt(f, 16000.0),
            0.2 * single.MagnitudeAt(f, 16000.0));
  EXPECT_NEAR(bw.MagnitudeAt(200.0, 16000.0), 1.0, 0.02);
  // -3 dB at cutoff for Butterworth, independent of order.
  EXPECT_NEAR(bw.MagnitudeAt(2000.0, 16000.0), std::sqrt(0.5), 0.05);
}

TEST(BiquadChain, OddOrderRejected) {
  EXPECT_THROW(DesignButterworthLowPass(3, 1000.0, 16000.0),
               nec::CheckError);
}

TEST(BiquadChain, ProcessBufferMatchesSampleWise) {
  BiquadChain a = DesignButterworthLowPass(4, 3000.0, 16000.0);
  BiquadChain b = DesignButterworthLowPass(4, 3000.0, 16000.0);
  std::vector<float> buf(256);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<float>(std::sin(0.1 * i) + 0.3 * std::sin(2.1 * i));
  }
  std::vector<float> expect = buf;
  for (float& s : expect) s = a.Process(s);
  b.ProcessBuffer(buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_FLOAT_EQ(buf[i], expect[i]);
  }
}

}  // namespace
}  // namespace nec::dsp
