// Tests for multi-speaker protection (§VII future work).
#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/multi_speaker.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"

namespace nec::core {
namespace {

NecConfig SmallConfig() {
  NecConfig cfg = NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  return cfg;
}

class MultiSpeakerTest : public ::testing::Test {
 protected:
  MultiSpeakerTest()
      : cfg_(SmallConfig()),
        pipeline_(Selector(cfg_, 7),
                  std::make_shared<encoder::LasEncoder>(cfg_.embedding_dim),
                  {}),
        builder_({.duration_s = 2.0}),
        spks_(synth::DatasetBuilder::MakeSpeakers(3, 6006)) {}

  NecConfig cfg_;
  NecPipeline pipeline_;
  synth::DatasetBuilder builder_;
  std::vector<synth::SpeakerProfile> spks_;
};

TEST_F(MultiSpeakerTest, RequiresEnrollment) {
  MultiSpeakerProtector protector(pipeline_);
  EXPECT_EQ(protector.num_targets(), 0u);
  const auto utt = builder_.MakeUtterance(spks_[0], 1);
  EXPECT_THROW(protector.GenerateShadow(utt.wave,
                                        MultiStrategy::kMergedEmbedding),
               nec::CheckError);
}

TEST_F(MultiSpeakerTest, EnrollsSeveralTargets) {
  MultiSpeakerProtector protector(pipeline_);
  EXPECT_EQ(protector.EnrollTarget(
                builder_.MakeReferenceAudios(spks_[0], 3, 1)),
            0u);
  EXPECT_EQ(protector.EnrollTarget(
                builder_.MakeReferenceAudios(spks_[1], 3, 2)),
            1u);
  EXPECT_EQ(protector.num_targets(), 2u);
}

class MultiStrategyTest
    : public MultiSpeakerTest,
      public ::testing::WithParamInterface<MultiStrategy> {};

TEST_P(MultiStrategyTest, ShadowShapeAndFiniteness) {
  MultiSpeakerProtector protector(pipeline_);
  protector.EnrollTarget(builder_.MakeReferenceAudios(spks_[0], 3, 1));
  protector.EnrollTarget(builder_.MakeReferenceAudios(spks_[1], 3, 2));

  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 9, &spks_[1]);
  const audio::Waveform shadow =
      protector.GenerateShadow(inst.mixed, GetParam());
  EXPECT_EQ(shadow.size(), inst.mixed.size());
  for (float v : shadow.samples()) ASSERT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Strategies, MultiStrategyTest,
                         ::testing::Values(MultiStrategy::kMergedEmbedding,
                                           MultiStrategy::kIterativeResidual));

TEST_F(MultiSpeakerTest, IterativeResidualCoversBothTargets) {
  // Two protected speakers talking over noise: the union shadow should
  // reduce both speakers' spectrogram residual, not just one.
  // (Uses the deterministic LAS selector path indirectly through the
  // untrained neural net — so we only check energy removal direction
  // with the iterative strategy and untrained weights: the masked head
  // at init removes ~50% everywhere, so both targets shrink.)
  MultiSpeakerProtector protector(pipeline_);
  protector.EnrollTarget(builder_.MakeReferenceAudios(spks_[0], 3, 1));
  protector.EnrollTarget(builder_.MakeReferenceAudios(spks_[1], 3, 2));

  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 11, &spks_[1]);
  const audio::Waveform shadow = protector.GenerateShadow(
      inst.mixed, MultiStrategy::kIterativeResidual);
  const audio::Waveform record = audio::Mix(inst.mixed, shadow);
  EXPECT_LT(metrics::Sdr(inst.target.samples(), record.samples()),
            metrics::Sdr(inst.target.samples(), inst.mixed.samples()));
  EXPECT_LT(metrics::Sdr(inst.background.samples(), record.samples()),
            metrics::Sdr(inst.background.samples(), inst.mixed.samples()));
}

TEST_F(MultiSpeakerTest, SingleTargetMatchesPipelineShadowScale) {
  // With one enrolled target, merged-embedding reduces to the single-
  // target selector (up to d-vector renormalization rounding).
  MultiSpeakerProtector protector(pipeline_);
  const auto refs = builder_.MakeReferenceAudios(spks_[0], 3, 1);
  protector.EnrollTarget(refs);
  pipeline_.Enroll(refs);

  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kBabble, 13);
  const audio::Waveform a = protector.GenerateShadow(
      inst.mixed, MultiStrategy::kMergedEmbedding);
  const audio::Waveform b = pipeline_.GenerateShadow(inst.mixed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 2e-4f);  // renormalization rounding
  }
}

}  // namespace
}  // namespace nec::core
