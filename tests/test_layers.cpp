// Tests for NN layers: shapes, known results, and finite-difference
// gradient checks (the property that makes training trustworthy).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"
#include "common/rng.h"
#include "nn/layers.h"

namespace nec::nn {
namespace {

// Scalar loss = <output, probe> with a fixed random probe, so
// dLoss/dOutput = probe.
float ProbeLoss(const Tensor& out, const Tensor& probe) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i) acc += out[i] * probe[i];
  return static_cast<float>(acc);
}

// Checks analytic input gradients of `layer` against central differences.
void CheckInputGradient(Layer& layer, Tensor input, double tol = 2e-2) {
  Rng rng(99);
  Tensor out = layer.Forward(input);
  const Tensor probe = Tensor::Randn(out.shape(), rng, 1.0f);
  const Tensor grad_in = layer.Backward(probe);
  ASSERT_EQ(grad_in.numel(), input.numel());

  const float eps = 1e-2f;
  // Spot-check a subset of coordinates for speed.
  const std::size_t stride = std::max<std::size_t>(1, input.numel() / 41);
  for (std::size_t i = 0; i < input.numel(); i += stride) {
    Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const float lp = ProbeLoss(layer.Forward(plus), probe);
    const float lm = ProbeLoss(layer.Forward(minus), probe);
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(grad_in[i], numeric,
                tol * (1.0 + std::abs(numeric)))
        << "input coordinate " << i;
  }
}

// Checks analytic parameter gradients against central differences.
void CheckParamGradients(Layer& layer, const Tensor& input,
                         double tol = 2e-2) {
  Rng rng(77);
  Tensor out = layer.Forward(input);
  const Tensor probe = Tensor::Randn(out.shape(), rng, 1.0f);
  for (Param* p : layer.Params()) p->ZeroGrad();
  layer.Backward(probe);

  const float eps = 1e-2f;
  for (Param* p : layer.Params()) {
    const std::size_t stride = std::max<std::size_t>(1, p->value.numel() / 23);
    for (std::size_t i = 0; i < p->value.numel(); i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float lp = ProbeLoss(layer.Forward(input), probe);
      p->value[i] = saved - eps;
      const float lm = ProbeLoss(layer.Forward(input), probe);
      p->value[i] = saved;
      const float numeric = (lp - lm) / (2.0f * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol * (1.0 + std::abs(numeric)))
          << "param coordinate " << i;
    }
  }
}

// ------------------------------------------------------------------ Conv2D

TEST(Conv2D, OutputShapeIsSamePadded) {
  Rng rng(1);
  Conv2D conv(3, 5, 3, 7, 2, 1, rng);
  Tensor in = Tensor::Randn({3, 10, 12}, rng, 1.0f);
  Tensor out = conv.Forward(in);
  ASSERT_EQ(out.rank(), 3u);
  EXPECT_EQ(out.dim(0), 5u);
  EXPECT_EQ(out.dim(1), 10u);
  EXPECT_EQ(out.dim(2), 12u);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  Rng rng(2);
  Conv2D conv(1, 1, 1, 1, 1, 1, rng);
  conv.weight().value[0] = 1.0f;
  conv.bias().value[0] = 0.0f;
  Tensor in = Tensor::Randn({1, 4, 5}, rng, 1.0f);
  Tensor out = conv.Forward(in);
  for (std::size_t i = 0; i < in.numel(); ++i) {
    EXPECT_FLOAT_EQ(out[i], in[i]);
  }
}

TEST(Conv2D, BiasAddsUniformly) {
  Rng rng(3);
  Conv2D conv(1, 2, 1, 1, 1, 1, rng);
  conv.weight().value.Fill(0.0f);
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -2.0f;
  Tensor in = Tensor::Randn({1, 3, 3}, rng, 1.0f);
  Tensor out = conv.Forward(in);
  for (std::size_t p = 0; p < 9; ++p) {
    EXPECT_FLOAT_EQ(out[p], 1.5f);
    EXPECT_FLOAT_EQ(out[9 + p], -2.0f);
  }
}

TEST(Conv2D, AveragingKernelOnConstantInput) {
  Rng rng(4);
  Conv2D conv(1, 1, 3, 3, 1, 1, rng);
  conv.weight().value.Fill(1.0f / 9.0f);
  conv.bias().value[0] = 0.0f;
  Tensor in({1, 5, 5});
  in.Fill(2.0f);
  Tensor out = conv.Forward(in);
  // Interior pixels: full 3x3 neighborhood of 2.0 → 2.0. Corners see 4/9.
  EXPECT_NEAR(out.At3(0, 2, 2), 2.0f, 1e-5);
  EXPECT_NEAR(out.At3(0, 0, 0), 2.0f * 4.0f / 9.0f, 1e-5);
}

TEST(Conv2D, DilationWidensReceptiveField) {
  Rng rng(5);
  Conv2D conv(1, 1, 3, 1, 4, 1, rng);  // 3-tap, dilation 4 → reach ±4
  conv.weight().value.Fill(1.0f);
  conv.bias().value[0] = 0.0f;
  Tensor in({1, 16, 1});
  in.At3(0, 8, 0) = 1.0f;  // impulse
  Tensor out = conv.Forward(in);
  // Taps at -4, 0, +4 from each output position.
  EXPECT_FLOAT_EQ(out.At3(0, 4, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At3(0, 8, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At3(0, 12, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.At3(0, 7, 0), 0.0f);
}

TEST(Conv2D, GradientCheckInput) {
  Rng rng(6);
  Conv2D conv(2, 3, 3, 3, 2, 1, rng);
  CheckInputGradient(conv, Tensor::Randn({2, 6, 5}, rng, 1.0f));
}

TEST(Conv2D, GradientCheckParams) {
  Rng rng(7);
  Conv2D conv(2, 2, 1, 3, 1, 1, rng);
  CheckParamGradients(conv, Tensor::Randn({2, 4, 6}, rng, 1.0f));
}

TEST(Conv2D, RejectsEvenKernel) {
  Rng rng(8);
  EXPECT_THROW(Conv2D(1, 1, 2, 3, 1, 1, rng), CheckError);
}

TEST(Conv2D, RejectsWrongInputChannels) {
  Rng rng(9);
  Conv2D conv(2, 2, 3, 3, 1, 1, rng);
  Tensor in = Tensor::Randn({3, 4, 4}, rng, 1.0f);
  EXPECT_THROW(conv.Forward(in), CheckError);
}

TEST(Conv2D, ReportsMacs) {
  Rng rng(10);
  Conv2D conv(2, 4, 3, 3, 1, 1, rng);
  EXPECT_EQ(conv.LastForwardMacs(), 0u);
  conv.Forward(Tensor::Randn({2, 5, 5}, rng, 1.0f));
  EXPECT_EQ(conv.LastForwardMacs(), 4u * 25u * (2u * 9u));
}

// ------------------------------------------------------------------ Linear

TEST(Linear, KnownResult) {
  Rng rng(11);
  Linear fc(2, 2, rng);
  fc.weight().value.At(0, 0) = 1.0f;
  fc.weight().value.At(0, 1) = 2.0f;
  fc.weight().value.At(1, 0) = -1.0f;
  fc.weight().value.At(1, 1) = 0.5f;
  fc.bias().value[0] = 0.1f;
  fc.bias().value[1] = -0.1f;
  Tensor in({1, 2});
  in[0] = 3.0f;
  in[1] = 4.0f;
  Tensor out = fc.Forward(in);
  EXPECT_NEAR(out[0], 3.0f + 8.0f + 0.1f, 1e-5);
  EXPECT_NEAR(out[1], -3.0f + 2.0f - 0.1f, 1e-5);
}

TEST(Linear, GradientCheckInput) {
  Rng rng(12);
  Linear fc(7, 5, rng);
  CheckInputGradient(fc, Tensor::Randn({4, 7}, rng, 1.0f));
}

TEST(Linear, GradientCheckParams) {
  Rng rng(13);
  Linear fc(6, 4, rng);
  CheckParamGradients(fc, Tensor::Randn({3, 6}, rng, 1.0f));
}

TEST(Linear, RejectsWrongFeatureDim) {
  Rng rng(14);
  Linear fc(6, 4, rng);
  EXPECT_THROW(fc.Forward(Tensor::Randn({3, 5}, rng, 1.0f)), CheckError);
}

// -------------------------------------------------------------- Activations

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor in({4});
  in[0] = -1.0f;
  in[1] = 0.0f;
  in[2] = 2.0f;
  in[3] = -0.5f;
  Tensor out = relu.Forward(in);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[2], 2.0f);
}

TEST(ReLU, BackwardMasksByInputSign) {
  ReLU relu;
  Tensor in({3});
  in[0] = -1.0f;
  in[1] = 2.0f;
  in[2] = 3.0f;
  relu.Forward(in);
  Tensor g({3});
  g.Fill(1.0f);
  Tensor gi = relu.Backward(g);
  EXPECT_EQ(gi[0], 0.0f);
  EXPECT_EQ(gi[1], 1.0f);
}

TEST(Sigmoid, GradientCheck) {
  Rng rng(15);
  Sigmoid s;
  CheckInputGradient(s, Tensor::Randn({2, 9}, rng, 1.0f), 1e-2);
}

TEST(Tanh, GradientCheck) {
  Rng rng(16);
  Tanh t;
  CheckInputGradient(t, Tensor::Randn({2, 9}, rng, 1.0f), 1e-2);
}

TEST(Sigmoid, RangeAndMidpoint) {
  Sigmoid s;
  Tensor in({3});
  in[0] = 0.0f;
  in[1] = 100.0f;
  in[2] = -100.0f;
  Tensor out = s.Forward(in);
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
  EXPECT_NEAR(out[2], 0.0f, 1e-6);
}

// ------------------------------------------------------------------- LSTM

TEST(Lstm, OutputShapeAndRange) {
  Rng rng(17);
  Lstm lstm(6, 8, rng);
  Tensor in = Tensor::Randn({10, 6}, rng, 1.0f);
  Tensor out = lstm.Forward(in);
  ASSERT_EQ(out.rank(), 2u);
  EXPECT_EQ(out.dim(0), 10u);
  EXPECT_EQ(out.dim(1), 8u);
  // h = o * tanh(c) ∈ (-1, 1).
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_GT(out[i], -1.0f);
    EXPECT_LT(out[i], 1.0f);
  }
}

TEST(Lstm, StatePropagatesAcrossTime) {
  Rng rng(18);
  Lstm lstm(2, 4, rng);
  // Same input at every step; outputs should differ between step 0 and 1
  // because hidden state accumulates.
  Tensor in({5, 2});
  in.Fill(0.7f);
  Tensor out = lstm.Forward(in);
  bool any_diff = false;
  for (std::size_t j = 0; j < 4; ++j) {
    if (std::abs(out.At(0, j) - out.At(1, j)) > 1e-6f) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Lstm, BackwardUnsupported) {
  Rng rng(19);
  Lstm lstm(2, 3, rng);
  lstm.Forward(Tensor::Randn({4, 2}, rng, 1.0f));
  EXPECT_THROW(lstm.Backward(Tensor({4, 3})), CheckError);
}

// --------------------------------------------------------------- LayerNorm

TEST(LayerNorm, NormalizesRowsToZeroMeanUnitVar) {
  LayerNorm ln(6);
  Rng rng(60);
  Tensor in = Tensor::Randn({4, 6}, rng, 2.0f);
  Tensor out = ln.Forward(in);  // gain=1, bias=0 at init
  for (std::size_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t j = 0; j < 6; ++j) mean += out.At(r, j);
    mean /= 6.0;
    for (std::size_t j = 0; j < 6; ++j) {
      var += (out.At(r, j) - mean) * (out.At(r, j) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var / 6.0, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GainAndBiasApply) {
  LayerNorm ln(3);
  ln.gain().value.Fill(0.0f);
  ln.bias().value[0] = 1.0f;
  ln.bias().value[1] = -2.0f;
  ln.bias().value[2] = 0.5f;
  Rng rng(61);
  Tensor out = ln.Forward(Tensor::Randn({2, 3}, rng, 1.0f));
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_FLOAT_EQ(out.At(r, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.At(r, 1), -2.0f);
    EXPECT_FLOAT_EQ(out.At(r, 2), 0.5f);
  }
}

TEST(LayerNorm, GradientCheckInput) {
  Rng rng(62);
  LayerNorm ln(7);
  // Perturb gain/bias off the identity so the gradient path is generic.
  ln.gain().value = Tensor::Randn({7}, rng, 0.3f);
  for (std::size_t i = 0; i < 7; ++i) ln.gain().value[i] += 1.0f;
  ln.bias().value = Tensor::Randn({7}, rng, 0.3f);
  CheckInputGradient(ln, Tensor::Randn({5, 7}, rng, 1.0f));
}

TEST(LayerNorm, GradientCheckParams) {
  Rng rng(63);
  LayerNorm ln(5);
  CheckParamGradients(ln, Tensor::Randn({4, 5}, rng, 1.0f));
}

TEST(LayerNorm, RejectsWrongFeatureDim) {
  Rng rng(64);
  LayerNorm ln(6);
  EXPECT_THROW(ln.Forward(Tensor::Randn({3, 5}, rng, 1.0f)), CheckError);
}

// ------------------------------------------------------- batched inference
//
// InferBatch must be bit-identical, per item, to slicing the batch and
// calling Infer item by item — the contract runtime micro-batching builds
// on (layers.h). Randomized inputs, batch sizes 1 / 2 / 7.

Tensor RandomBatch(const std::vector<std::size_t>& item_shape,
                   std::size_t batch, std::uint64_t seed) {
  std::vector<std::size_t> shape;
  shape.push_back(batch);
  shape.insert(shape.end(), item_shape.begin(), item_shape.end());
  Rng rng(seed);
  return Tensor::Randn(shape, rng, 1.0f);
}

Tensor SliceItem(const Tensor& batch, std::size_t b) {
  const std::vector<std::size_t> item_shape(batch.shape().begin() + 1,
                                            batch.shape().end());
  Tensor item(item_shape);
  std::copy(batch.data() + b * item.numel(),
            batch.data() + (b + 1) * item.numel(), item.data());
  return item;
}

void ExpectBatchedMatchesLooped(const Layer& layer,
                                const std::vector<std::size_t>& item_shape,
                                std::uint64_t seed) {
  for (const std::size_t b : {1u, 2u, 7u}) {
    const Tensor batch = RandomBatch(item_shape, b, seed + b);
    const Tensor out = layer.InferBatch(batch);
    ASSERT_EQ(out.dim(0), b);
    std::size_t off = 0;
    for (std::size_t i = 0; i < b; ++i) {
      const Tensor one = layer.Infer(SliceItem(batch, i));
      for (std::size_t j = 0; j < one.numel(); ++j, ++off) {
        ASSERT_EQ(out[off], one[j])
            << layer.Name() << " batch=" << b << " item=" << i
            << " elem=" << j;
      }
    }
    ASSERT_EQ(off, out.numel());
  }
}

TEST(InferBatch, Conv2DBitExactVsLoopedInfer) {
  Rng rng(70);
  Conv2D plain(2, 3, 3, 3, 1, 1, rng);
  ExpectBatchedMatchesLooped(plain, {2, 6, 5}, 700);
  Conv2D dilated(3, 2, 5, 1, 4, 1, rng);  // selector-style time dilation
  ExpectBatchedMatchesLooped(dilated, {3, 12, 7}, 701);
  Conv2D wide(1, 4, 1, 7, 1, 1, rng);
  ExpectBatchedMatchesLooped(wide, {1, 4, 11}, 702);
}

TEST(InferBatch, LinearBitExactVsLoopedInfer) {
  Rng rng(71);
  Linear fc(9, 4, rng);
  ExpectBatchedMatchesLooped(fc, {5, 9}, 710);
  Linear single(3, 6, rng);
  ExpectBatchedMatchesLooped(single, {1, 3}, 711);
}

TEST(InferBatch, ActivationsBitExactVsLoopedInfer) {
  ExpectBatchedMatchesLooped(ReLU(), {3, 4, 5}, 720);
  ExpectBatchedMatchesLooped(Sigmoid(), {2, 9}, 721);
  ExpectBatchedMatchesLooped(Tanh(), {6, 7}, 722);
}

TEST(InferBatch, LayerNormBitExactVsLoopedInfer) {
  Rng rng(73);
  LayerNorm ln(8);
  ln.gain().value = Tensor::Randn({8}, rng, 0.5f);
  ln.bias().value = Tensor::Randn({8}, rng, 0.5f);
  ExpectBatchedMatchesLooped(ln, {4, 8}, 730);
}

TEST(InferBatch, MatchesForwardBitExact) {
  // Batched path vs the training path: same ComputeInto kernel, so the two
  // must agree to the bit (rules out FMA-contraction divergence between
  // codegen of the two call sites).
  Rng rng(74);
  Conv2D conv(2, 2, 3, 3, 2, 1, rng);
  const Tensor batch = RandomBatch({2, 5, 6}, 3, 740);
  const Tensor out = conv.InferBatch(batch);
  std::size_t off = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const Tensor fwd = conv.Forward(SliceItem(batch, i));
    for (std::size_t j = 0; j < fwd.numel(); ++j, ++off) {
      ASSERT_EQ(out[off], fwd[j]);
    }
  }
}

TEST(InferBatch, RejectsMissingBatchDim) {
  Rng rng(75);
  Conv2D conv(2, 2, 3, 3, 1, 1, rng);
  EXPECT_THROW(conv.InferBatch(Tensor::Randn({2, 4, 4}, rng, 1.0f)),
               CheckError);
  Linear fc(4, 2, rng);
  EXPECT_THROW(fc.InferBatch(Tensor::Randn({3, 4}, rng, 1.0f)), CheckError);
}

TEST(InferBatch, LstmKeepsThrowingDefault) {
  Rng rng(76);
  Lstm lstm(2, 3, rng);
  EXPECT_THROW(lstm.Infer(Tensor({4, 2})), CheckError);
  EXPECT_THROW(lstm.InferBatch(Tensor({2, 4, 2})), CheckError);
}

TEST(InferBatch, SequentialChains) {
  Rng rng(77);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(5, 8, rng));
  seq.Add(std::make_unique<Tanh>());
  seq.Add(std::make_unique<LayerNorm>(8));
  seq.Add(std::make_unique<Linear>(8, 2, rng));
  const Sequential& shared = seq;
  const Tensor batch = RandomBatch({3, 5}, 4, 770);
  const Tensor out = shared.InferBatch(batch);
  std::size_t off = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const Tensor one = shared.Infer(SliceItem(batch, i));
    for (std::size_t j = 0; j < one.numel(); ++j, ++off) {
      ASSERT_EQ(out[off], one[j]);
    }
  }
}

// ------------------------------------------------------------- MAC audits

TEST(LastForwardMacs, ActivationsAndNormReportElementCount) {
  Rng rng(78);
  const Tensor in = Tensor::Randn({3, 4, 5}, rng, 1.0f);
  ReLU relu;
  EXPECT_EQ(relu.LastForwardMacs(), 0u);
  relu.Forward(in);
  EXPECT_EQ(relu.LastForwardMacs(), 60u);
  Sigmoid sig;
  sig.Forward(in);
  EXPECT_EQ(sig.LastForwardMacs(), 60u);
  Tanh th;
  th.Forward(in);
  EXPECT_EQ(th.LastForwardMacs(), 60u);
  LayerNorm ln(6);
  ln.Forward(Tensor::Randn({7, 6}, rng, 1.0f));
  EXPECT_EQ(ln.LastForwardMacs(), 42u);
}

// -------------------------------------------------------------- Sequential

TEST(Sequential, ForwardBackwardChains) {
  Rng rng(20);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(5, 8, rng));
  seq.Add(std::make_unique<Tanh>());
  seq.Add(std::make_unique<Linear>(8, 2, rng));
  Tensor in = Tensor::Randn({3, 5}, rng, 1.0f);
  Tensor out = seq.Forward(in);
  EXPECT_EQ(out.dim(1), 2u);
  Tensor g({3, 2});
  g.Fill(1.0f);
  Tensor gi = seq.Backward(g);
  EXPECT_EQ(gi.dim(1), 5u);
  EXPECT_EQ(seq.Params().size(), 4u);  // two Linear layers x (w, b)
}

}  // namespace
}  // namespace nec::nn
