// Tests for the User Rating Score model (Fig. 13 reviewer substitute).
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "metrics/urs.h"

namespace nec::metrics {
namespace {

audio::Waveform NoiseWave(std::size_t n, std::uint64_t seed, float amp) {
  nec::Rng rng(seed);
  audio::Waveform w(16000, n);
  for (std::size_t i = 0; i < n; ++i) w[i] = amp * rng.GaussianF();
  return w;
}

TEST(Urs, RatingsInRange) {
  UserRatingModel model;
  const auto target = NoiseWave(8000, 1, 0.1f);
  const auto rec = NoiseWave(8000, 2, 0.1f);
  for (double r : model.RateAll(rec, target, 7)) {
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 5.0);
  }
}

TEST(Urs, HiddenTargetScoresHigherThanAudibleTarget) {
  UserRatingModel model;
  const auto target = NoiseWave(16000, 3, 0.1f);

  // Recording A: contains the target clearly (target + small noise).
  audio::Waveform audible = target;
  const auto small = NoiseWave(16000, 4, 0.02f);
  audible.MixIn(small);
  // Recording B: target fully replaced by unrelated noise.
  const auto hidden = NoiseWave(16000, 5, 0.1f);

  double mean_audible = 0.0, mean_hidden = 0.0;
  for (std::size_t r = 0; r < model.num_reviewers(); ++r) {
    mean_audible += model.Rate(r, audible, target, 11);
    mean_hidden += model.Rate(r, hidden, target, 11);
  }
  mean_audible /= static_cast<double>(model.num_reviewers());
  mean_hidden /= static_cast<double>(model.num_reviewers());
  EXPECT_LT(mean_audible, 2.0);
  EXPECT_GT(mean_hidden, 3.5);
}

TEST(Urs, ReviewersHaveStableIndividualBias) {
  UserRatingModel model({.num_reviewers = 10, .rating_noise_std = 0.0,
                         .seed = 99});
  const auto target = NoiseWave(8000, 6, 0.1f);
  const auto rec = NoiseWave(8000, 7, 0.1f);
  const auto first = model.RateAll(rec, target, 1);
  const auto second = model.RateAll(rec, target, 1);
  // Same recording, same seed → identical ratings (bias is stable).
  EXPECT_EQ(first, second);
  // Different reviewers disagree (bias exists).
  bool any_diff = false;
  for (std::size_t i = 1; i < first.size(); ++i) {
    if (first[i] != first[0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Urs, HalfPointGranularity) {
  UserRatingModel model;
  const auto target = NoiseWave(8000, 8, 0.1f);
  const auto rec = NoiseWave(8000, 9, 0.1f);
  for (double r : model.RateAll(rec, target, 3)) {
    EXPECT_NEAR(r * 2.0, std::round(r * 2.0), 1e-9);
  }
}

TEST(Urs, RejectsOutOfRangeReviewer) {
  UserRatingModel model({.num_reviewers = 3});
  const auto w = NoiseWave(100, 10, 0.1f);
  EXPECT_THROW(model.Rate(5, w, w, 1), nec::CheckError);
}

}  // namespace
}  // namespace nec::metrics
