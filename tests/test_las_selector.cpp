// Tests for the deterministic LAS-mask selector (DSP ablation baseline).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/las_selector.h"
#include "synth/dataset.h"

namespace nec::core {
namespace {

class LasSelectorTest : public ::testing::Test {
 protected:
  NecConfig cfg_ = NecConfig::Fast();
  synth::DatasetBuilder builder_{{.duration_s = 1.5}};
  std::vector<synth::SpeakerProfile> spks_ =
      synth::DatasetBuilder::MakeSpeakers(2, 808);

  LasSelector MakeEnrolled(int spk) {
    LasSelector sel(cfg_);
    const auto refs = builder_.MakeReferenceAudios(
        spks_[static_cast<std::size_t>(spk)], 3, 50 + spk);
    sel.Enroll(refs);
    return sel;
  }
};

TEST_F(LasSelectorTest, RequiresEnrollment) {
  LasSelector sel(cfg_);
  EXPECT_FALSE(sel.enrolled());
  dsp::Spectrogram spec(4, cfg_.num_bins());
  EXPECT_THROW(sel.ComputeShadow(spec), nec::CheckError);
}

TEST_F(LasSelectorTest, EnrollRejectsEmpty) {
  LasSelector sel(cfg_);
  EXPECT_THROW(sel.Enroll({}), nec::CheckError);
}

TEST_F(LasSelectorTest, ShadowIsNonPositiveAndBounded) {
  LasSelector sel = MakeEnrolled(0);
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 3, &spks_[1]);
  const dsp::Spectrogram spec = dsp::Stft(inst.mixed, cfg_.stft);
  const auto shadow = sel.ComputeShadow(spec);
  ASSERT_EQ(shadow.size(), spec.mag().size());
  for (std::size_t i = 0; i < shadow.size(); ++i) {
    EXPECT_LE(shadow[i], 0.0f);
    // Mask never removes more than the mixed cell itself.
    EXPECT_GE(shadow[i], -spec.mag()[i] - 1e-6f);
  }
}

TEST_F(LasSelectorTest, SuperpositionMovesRecordTowardBackground) {
  LasSelector sel = MakeEnrolled(0);
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 5, &spks_[1]);
  const dsp::Spectrogram mixed = dsp::Stft(inst.mixed, cfg_.stft);
  const dsp::Spectrogram bk = dsp::Stft(inst.background, cfg_.stft);
  const auto shadow = sel.ComputeShadow(mixed);

  double err_before = 0.0, err_after = 0.0;
  for (std::size_t i = 0; i < shadow.size(); ++i) {
    const double b = mixed.mag()[i] - bk.mag()[i];
    const double a = mixed.mag()[i] + shadow[i] - bk.mag()[i];
    err_before += b * b;
    err_after += a * a;
  }
  EXPECT_LT(err_after, err_before);
}

TEST_F(LasSelectorTest, TargetSuppressedMoreThanInterferer) {
  // The selective property: the enrolled speaker's solo spectrogram loses
  // more energy to the mask than a different speaker's.
  LasSelector sel = MakeEnrolled(0);
  const auto target_utt = builder_.MakeUtterance(spks_[0], 99);
  const auto other_utt = builder_.MakeUtterance(spks_[1], 98);

  auto removal_fraction = [&](const audio::Waveform& w) {
    const dsp::Spectrogram spec = dsp::Stft(w, cfg_.stft);
    const auto shadow = sel.ComputeShadow(spec);
    double removed = 0.0, total = 0.0;
    for (std::size_t i = 0; i < shadow.size(); ++i) {
      removed += -shadow[i] * spec.mag()[i];
      total += static_cast<double>(spec.mag()[i]) * spec.mag()[i];
    }
    return removed / total;
  };

  EXPECT_GT(removal_fraction(target_utt.wave),
            removal_fraction(other_utt.wave));
}

}  // namespace
}  // namespace nec::core
