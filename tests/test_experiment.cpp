// Integration tests: the full physical scenario (synthesis → monitor →
// shadow → ultrasound → microphone) with the deterministic LAS selector —
// the end-to-end property the whole system exists for.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/experiment.h"
#include "metrics/metrics.h"

namespace nec::core {
namespace {

NecConfig SmallConfig() {
  NecConfig cfg = NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  return cfg;
}

class ExperimentTest : public ::testing::Test {
 protected:
  ExperimentTest()
      : cfg_(SmallConfig()),
        pipeline_(Selector(cfg_, 7),
                  std::make_shared<encoder::LasEncoder>(cfg_.embedding_dim),
                  {}),
        builder_({.duration_s = 2.0}),
        spks_(synth::DatasetBuilder::MakeSpeakers(2, 5150)) {
    const auto refs = builder_.MakeReferenceAudios(spks_[0], 3, 20);
    pipeline_.Enroll(refs);
    inst_ = builder_.MakeInstance(
        spks_[0], synth::Scenario::kJointConversation, 6, &spks_[1]);
  }

  NecConfig cfg_;
  NecPipeline pipeline_;
  synth::DatasetBuilder builder_;
  std::vector<synth::SpeakerProfile> spks_;
  synth::MixInstance inst_;
  ScenarioRunner runner_;
};

TEST_F(ExperimentTest, NecHidesBobAndRetainsAlice) {
  ScenarioSetup setup;
  setup.selector_kind = SelectorKind::kLasMask;
  const ScenarioResult res = runner_.Run(pipeline_, inst_, setup);

  const double bob_without = metrics::Sdr(
      res.bob_at_recorder.samples(), res.recorded_without_nec.samples());
  const double bob_with = metrics::Sdr(res.bob_at_recorder.samples(),
                                       res.recorded_with_nec.samples());
  const double alice_without = metrics::Sdr(
      res.bk_at_recorder.samples(), res.recorded_without_nec.samples());
  const double alice_with = metrics::Sdr(res.bk_at_recorder.samples(),
                                         res.recorded_with_nec.samples());

  // The Fig. 11 shape: Bob's SDR drops sharply; Alice's does not get worse
  // (the paper even measures an improvement).
  EXPECT_LT(bob_with, bob_without - 4.0);
  EXPECT_GT(alice_with, alice_without - 1.0);
}

TEST_F(ExperimentTest, LinearMicrophoneDefeatsNec) {
  // §VII limitation: no nonlinearity → no demodulated shadow → no hiding.
  ScenarioSetup setup;
  setup.selector_kind = SelectorKind::kLasMask;
  setup.device = channel::IdealLinearRecorder();
  const ScenarioResult res = runner_.Run(pipeline_, inst_, setup);
  const double bob_without = metrics::Sdr(
      res.bob_at_recorder.samples(), res.recorded_without_nec.samples());
  const double bob_with = metrics::Sdr(res.bob_at_recorder.samples(),
                                       res.recorded_with_nec.samples());
  EXPECT_GT(bob_with, bob_without - 1.5);
}

TEST_F(ExperimentTest, LargeOffsetWeakensCancellation) {
  // Fig. 9: time offsets degrade the overshadowing (true waveform
  // cancellation needs near-synchronous arrival).
  ScenarioSetup aligned;
  aligned.selector_kind = SelectorKind::kLasMask;
  ScenarioSetup offset = aligned;
  offset.processing_latency_s = 0.4;  // beyond the paper's 300 ms bound

  const ScenarioResult a = runner_.Run(pipeline_, inst_, aligned);
  const ScenarioResult b = runner_.Run(pipeline_, inst_, offset);
  const double sdr_aligned = metrics::Sdr(
      a.bk_at_recorder.samples(), a.recorded_with_nec.samples());
  const double sdr_offset = metrics::Sdr(
      b.bk_at_recorder.samples(), b.recorded_with_nec.samples());
  // The aligned record resembles the background more.
  EXPECT_GT(sdr_aligned, sdr_offset);
}

TEST_F(ExperimentTest, EmitPowerCalibrationIsReasonable) {
  ScenarioSetup setup;
  setup.selector_kind = SelectorKind::kLasMask;
  const ScenarioResult res = runner_.Run(pipeline_, inst_, setup);
  // Within the plausible range of an ultrasonic emitter.
  EXPECT_GT(res.emit_spl_db, 70.0);
  EXPECT_LT(res.emit_spl_db, 135.0);
}

TEST_F(ExperimentTest, EmitOverrideSkipsCalibration) {
  ScenarioSetup setup;
  setup.selector_kind = SelectorKind::kLasMask;
  setup.emit_spl_override = 105.0;
  const ScenarioResult res = runner_.Run(pipeline_, inst_, setup);
  EXPECT_EQ(res.emit_spl_db, 105.0);
}

TEST_F(ExperimentTest, StemsAlignedWithRecordings) {
  ScenarioSetup setup;
  setup.selector_kind = SelectorKind::kLasMask;
  const ScenarioResult res = runner_.Run(pipeline_, inst_, setup);
  // Without NEC, the recording is essentially bob + alice stems; their sum
  // should correlate strongly with the recording.
  const audio::Waveform sum =
      audio::Mix(res.bob_at_recorder, res.bk_at_recorder);
  EXPECT_GT(metrics::Sdr(sum.samples(), res.recorded_without_nec.samples()),
            10.0);
}

TEST_F(ExperimentTest, RequiresEnrolledPipeline) {
  NecPipeline fresh(Selector(cfg_, 9),
                    std::make_shared<encoder::LasEncoder>(cfg_.embedding_dim),
                    {});
  EXPECT_THROW(runner_.Run(fresh, inst_, {}), nec::CheckError);
}

TEST_F(ExperimentTest, StemAtAppliesSplAndDistance) {
  const audio::Waveform stem = inst_.target;
  const audio::Waveform at_1m = runner_.StemAt(stem, 77.0, 1.0);
  const audio::Waveform at_2m = runner_.StemAt(stem, 77.0, 2.0);
  EXPECT_NEAR(at_1m.Rms() / at_2m.Rms(), 2.0, 0.1);
  // Delay grows with distance.
  EXPECT_GT(at_2m.size(), at_1m.size());
}

}  // namespace
}  // namespace nec::core
