// Tests for Adam and the loss functions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace nec::nn {
namespace {

TEST(MseLoss, KnownValueAndGradient) {
  Tensor pred({2}), target({2});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  target[0] = 0.0f;
  target[1] = 1.0f;
  const MseResult r = MseLoss(pred, target);
  EXPECT_NEAR(r.loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(r.grad[0], 2.0f * 1.0f / 2.0f, 1e-6);
  EXPECT_NEAR(r.grad[1], 2.0f * 2.0f / 2.0f, 1e-6);
}

TEST(MseLoss, ZeroWhenEqual) {
  Tensor a({5});
  a.Fill(0.7f);
  const MseResult r = MseLoss(a, a);
  EXPECT_EQ(r.loss, 0.0f);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(r.grad[i], 0.0f);
}

TEST(MseLoss, RejectsShapeMismatch) {
  Tensor a({3}), b({4});
  EXPECT_THROW(MseLoss(a, b), CheckError);
}

TEST(MseLoss, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Tensor pred = Tensor::Randn({7}, rng, 1.0f);
  Tensor target = Tensor::Randn({7}, rng, 1.0f);
  const MseResult r = MseLoss(pred, target);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 7; ++i) {
    Tensor plus = pred;
    plus[i] += eps;
    Tensor minus = pred;
    minus[i] -= eps;
    const float numeric =
        (MseLoss(plus, target).loss - MseLoss(minus, target).loss) /
        (2.0f * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-3);
  }
}

TEST(L1Loss, KnownValueAndGradientSigns) {
  Tensor pred({3}), target({3});
  pred[0] = 2.0f;
  pred[1] = -1.0f;
  pred[2] = 0.5f;
  target[0] = 1.0f;
  target[1] = 1.0f;
  target[2] = 0.5f;
  const MseResult r = L1Loss(pred, target);
  EXPECT_NEAR(r.loss, (1.0 + 2.0 + 0.0) / 3.0, 1e-6);
  EXPECT_GT(r.grad[0], 0.0f);
  EXPECT_LT(r.grad[1], 0.0f);
  EXPECT_EQ(r.grad[2], 0.0f);
}

// A Param-only problem for optimizer testing.
struct QuadraticProblem {
  Param x;
  explicit QuadraticProblem(std::size_t n) : x(Tensor({n})) {}

  // loss = ||x - target||^2; accumulates gradient.
  float Step(const Tensor& target) {
    double loss = 0.0;
    for (std::size_t i = 0; i < x.value.numel(); ++i) {
      const float d = x.value[i] - target[i];
      x.grad[i] += 2.0f * d;
      loss += static_cast<double>(d) * d;
    }
    return static_cast<float>(loss);
  }
};

TEST(Adam, ConvergesOnQuadratic) {
  QuadraticProblem prob(8);
  Rng rng(2);
  Tensor target = Tensor::Randn({8}, rng, 2.0f);
  Adam adam({&prob.x}, {.lr = 0.1f});
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    const float loss = prob.Step(target);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    adam.Step();
  }
  EXPECT_LT(last_loss, 1e-3f * first_loss);
}

TEST(Adam, StepZeroesGradients) {
  QuadraticProblem prob(3);
  Tensor target({3});
  target.Fill(1.0f);
  Adam adam({&prob.x}, {});
  prob.Step(target);
  adam.Step();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(prob.x.grad[i], 0.0f);
}

TEST(Adam, GradClipKeepsDirection) {
  QuadraticProblem a(4), b(4);
  Tensor target({4});
  target.Fill(100.0f);  // huge gradients
  Adam clipped({&a.x}, {.lr = 0.01f, .grad_clip = 1.0f});
  Adam free({&b.x}, {.lr = 0.01f, .grad_clip = 0.0f});
  a.Step(target);
  b.Step(target);
  EXPECT_GT(clipped.GradNorm(), 100.0f);
  clipped.Step();
  free.Step();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(a.x.value[i], 0.0f);
    EXPECT_GT(b.x.value[i], 0.0f);
  }
}

TEST(Adam, WeightDecayShrinksParams) {
  QuadraticProblem prob(1);
  prob.x.value[0] = 10.0f;
  Adam adam({&prob.x}, {.lr = 0.1f, .weight_decay = 0.5f});
  adam.Step();  // zero gradient: only decay acts
  EXPECT_LT(prob.x.value[0], 10.0f);
}

TEST(Adam, RejectsEmptyParamList) {
  EXPECT_THROW(Adam({}, {}), CheckError);
}

TEST(Adam, CountsSteps) {
  QuadraticProblem prob(1);
  Adam adam({&prob.x}, {});
  EXPECT_EQ(adam.step_count(), 0);
  adam.Step();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(Adam, TrainsATinyNetworkEndToEnd) {
  // Fit y = 2x - 1 with a single Linear layer.
  Rng rng(3);
  Linear fc(1, 1, rng);
  Adam adam(fc.Params(), {.lr = 0.05f});
  for (int step = 0; step < 400; ++step) {
    const float x = rng.UniformF(-1.0f, 1.0f);
    Tensor in({1, 1});
    in[0] = x;
    Tensor target({1, 1});
    target[0] = 2.0f * x - 1.0f;
    Tensor out = fc.Forward(in);
    const MseResult mse = MseLoss(out, target);
    fc.Backward(mse.grad);
    adam.Step();
  }
  EXPECT_NEAR(fc.weight().value[0], 2.0f, 0.1f);
  EXPECT_NEAR(fc.bias().value[0], -1.0f, 0.1f);
}

}  // namespace
}  // namespace nec::nn
