// Tests for NecPipeline: enrollment, shadow generation, modulation glue.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/pipeline.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"

namespace nec::core {
namespace {

NecConfig SmallConfig() {
  NecConfig cfg = NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : cfg_(SmallConfig()),
        encoder_(std::make_shared<encoder::LasEncoder>(cfg_.embedding_dim)),
        pipeline_(Selector(cfg_, 7), encoder_, {}),
        builder_({.duration_s = 1.5}),
        spks_(synth::DatasetBuilder::MakeSpeakers(2, 1234)) {}

  void Enroll() {
    const auto refs = builder_.MakeReferenceAudios(spks_[0], 3, 10);
    pipeline_.Enroll(refs);
  }

  NecConfig cfg_;
  std::shared_ptr<encoder::SpeakerEncoder> encoder_;
  NecPipeline pipeline_;
  synth::DatasetBuilder builder_;
  std::vector<synth::SpeakerProfile> spks_;
};

TEST_F(PipelineTest, RequiresEnrollmentBeforeUse) {
  EXPECT_FALSE(pipeline_.enrolled());
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 1, &spks_[1]);
  EXPECT_THROW(pipeline_.GenerateShadow(inst.mixed), nec::CheckError);
  EXPECT_THROW(pipeline_.dvector(), nec::CheckError);
}

TEST_F(PipelineTest, EnrollmentProducesUnitDvector) {
  Enroll();
  EXPECT_TRUE(pipeline_.enrolled());
  const auto& d = pipeline_.dvector();
  ASSERT_EQ(d.size(), cfg_.embedding_dim);
  double norm = 0.0;
  for (float v : d) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(norm, 1.0, 1e-4);
}

TEST_F(PipelineTest, ShadowHasInputLengthAndRate) {
  Enroll();
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 2, &spks_[1]);
  const audio::Waveform shadow = pipeline_.GenerateShadow(inst.mixed);
  EXPECT_EQ(shadow.size(), inst.mixed.size());
  EXPECT_EQ(shadow.sample_rate(), cfg_.sample_rate);
}

TEST_F(PipelineTest, RejectsWrongSampleRate) {
  Enroll();
  audio::Waveform wrong(8000, std::size_t{8000});
  EXPECT_THROW(pipeline_.GenerateShadow(wrong), nec::CheckError);
}

TEST_F(PipelineTest, LasMaskShadowReducesTargetResidual) {
  Enroll();
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 3, &spks_[1]);
  const audio::Waveform shadow =
      pipeline_.GenerateShadow(inst.mixed, SelectorKind::kLasMask);
  const audio::Waveform record = audio::Mix(inst.mixed, shadow);
  // Eq. 6's own yardstick: the recorded spectrogram must be closer to the
  // background spectrogram than the mixed one was.
  const dsp::Spectrogram s_rec = dsp::Stft(record, cfg_.stft);
  const dsp::Spectrogram s_mix = dsp::Stft(inst.mixed, cfg_.stft);
  const dsp::Spectrogram s_bk = dsp::Stft(inst.background, cfg_.stft);
  double err_rec = 0.0, err_mix = 0.0;
  for (std::size_t i = 0; i < s_bk.mag().size(); ++i) {
    const double dr = s_rec.mag()[i] - s_bk.mag()[i];
    const double dm = s_mix.mag()[i] - s_bk.mag()[i];
    err_rec += dr * dr;
    err_mix += dm * dm;
  }
  EXPECT_LT(err_rec, 0.8 * err_mix);
  // And the target itself must be harder to find in the record.
  EXPECT_LT(metrics::Sdr(inst.target.samples(), record.samples()),
            metrics::Sdr(inst.target.samples(), inst.mixed.samples()));
}

TEST_F(PipelineTest, OracleShadowNearlyCancelsTarget) {
  Enroll();
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 4, &spks_[1]);
  const audio::Waveform shadow =
      pipeline_.OracleShadow(inst.mixed, inst.background);
  const audio::Waveform record = audio::Mix(inst.mixed, shadow);
  const double sdr_target_mixed =
      metrics::Sdr(inst.target.samples(), inst.mixed.samples());
  const double sdr_target_record =
      metrics::Sdr(inst.target.samples(), record.samples());
  EXPECT_LT(sdr_target_record, sdr_target_mixed - 6.0);
}

TEST_F(PipelineTest, ModulatedShadowIsUltrasonic) {
  Enroll();
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 5, &spks_[1]);
  const audio::Waveform mod = pipeline_.GenerateModulatedShadow(
      inst.mixed, SelectorKind::kLasMask);
  EXPECT_EQ(mod.sample_rate(), channel::kAirSampleRate);
  EXPECT_GT(mod.size(), inst.mixed.size() * 10);  // 12x rate
  EXPECT_LE(mod.Peak(), 1.0f);
}

TEST_F(PipelineTest, EncoderSelectorDimMismatchRejected) {
  auto enc40 = std::make_shared<encoder::LasEncoder>(16);
  EXPECT_THROW(NecPipeline(Selector(cfg_, 3), enc40, {}), nec::CheckError);
}

TEST_F(PipelineTest, GenerateShadowBatchMatchesPerItemBitExact) {
  // Sessions sharing one weight set (the runtime path) get coalesced into
  // one batched selector forward; each session's shadow must keep the exact
  // bits of its solo GenerateShadow.
  auto shared = std::make_shared<const Selector>(Selector(cfg_, 7));
  std::vector<std::unique_ptr<NecPipeline>> pipes;
  std::vector<audio::Waveform> chunks;
  for (std::size_t i = 0; i < 3; ++i) {
    pipes.push_back(std::make_unique<NecPipeline>(shared, encoder_));
    pipes.back()->Enroll(
        builder_.MakeReferenceAudios(spks_[i % 2], 3, 40 + i));
    chunks.push_back(builder_
                         .MakeInstance(spks_[i % 2],
                                       synth::Scenario::kJointConversation,
                                       50 + i, &spks_[(i + 1) % 2])
                         .mixed);
  }
  std::vector<ShadowBatchRequest> reqs;
  for (std::size_t i = 0; i < 3; ++i) {
    reqs.push_back({.pipeline = pipes[i].get(), .mixed = &chunks[i]});
  }
  const std::vector<audio::Waveform> batched = GenerateShadowBatch(reqs);
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const audio::Waveform solo = pipes[i]->GenerateShadow(chunks[i]);
    ASSERT_EQ(batched[i].size(), solo.size());
    for (std::size_t j = 0; j < solo.size(); ++j) {
      ASSERT_EQ(batched[i].samples()[j], solo.samples()[j])
          << "item=" << i << " sample=" << j;
    }
  }
}

TEST_F(PipelineTest, GenerateShadowBatchRejectsBadBatches) {
  auto shared = std::make_shared<const Selector>(Selector(cfg_, 7));
  NecPipeline a(shared, encoder_);
  NecPipeline other(Selector(cfg_, 8), encoder_);  // different weight set
  a.Enroll(builder_.MakeReferenceAudios(spks_[0], 3, 60));
  other.Enroll(builder_.MakeReferenceAudios(spks_[0], 3, 61));
  const auto inst = builder_.MakeInstance(
      spks_[0], synth::Scenario::kJointConversation, 62, &spks_[1]);
  const audio::Waveform& chunk = inst.mixed;
  const audio::Waveform shorter = chunk.Slice(0, chunk.size() / 2);

  EXPECT_THROW(GenerateShadowBatch({}), nec::CheckError);
  {
    std::vector<ShadowBatchRequest> reqs{
        {.pipeline = &a, .mixed = &chunk},
        {.pipeline = &other, .mixed = &chunk}};
    EXPECT_THROW(GenerateShadowBatch(reqs), nec::CheckError);
  }
  {
    std::vector<ShadowBatchRequest> reqs{
        {.pipeline = &a, .mixed = &chunk},
        {.pipeline = &a, .mixed = &shorter}};
    EXPECT_THROW(GenerateShadowBatch(reqs), nec::CheckError);
  }
  {
    NecPipeline unenrolled(shared, encoder_);
    std::vector<ShadowBatchRequest> reqs{
        {.pipeline = &unenrolled, .mixed = &chunk}};
    EXPECT_THROW(GenerateShadowBatch(reqs), nec::CheckError);
  }
}

}  // namespace
}  // namespace nec::core
