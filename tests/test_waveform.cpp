// Tests for audio::Waveform.
#include <gtest/gtest.h>

#include <cmath>

#include "audio/waveform.h"
#include "common/check.h"

namespace nec::audio {
namespace {

TEST(Waveform, DefaultConstructedIsEmpty) {
  Waveform w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.sample_rate(), 0);
  EXPECT_DOUBLE_EQ(w.duration(), 0.0);
}

TEST(Waveform, SilentConstruction) {
  Waveform w(16000, std::size_t{320});
  EXPECT_EQ(w.size(), 320u);
  EXPECT_DOUBLE_EQ(w.duration(), 0.02);
  for (float s : w.samples()) EXPECT_EQ(s, 0.0f);
}

TEST(Waveform, RejectsNonPositiveRate) {
  EXPECT_THROW(Waveform(0, std::size_t{10}), CheckError);
  EXPECT_THROW(Waveform(-1, std::vector<float>{1.0f}), CheckError);
}

TEST(Waveform, SliceZeroPadsPastEnd) {
  Waveform w(8000, std::vector<float>{1, 2, 3});
  Waveform s = w.Slice(2, 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 3.0f);
  EXPECT_EQ(s[1], 0.0f);
  EXPECT_EQ(s[3], 0.0f);
}

TEST(Waveform, ScaleAndClip) {
  Waveform w(8000, std::vector<float>{0.5f, -0.75f});
  w.Scale(4.0f);
  EXPECT_EQ(w[0], 2.0f);
  w.Clip();
  EXPECT_EQ(w[0], 1.0f);
  EXPECT_EQ(w[1], -1.0f);
}

TEST(Waveform, MixInRespectsOffsetAndGain) {
  Waveform base(8000, std::size_t{5});
  Waveform add(8000, std::vector<float>{1, 1, 1});
  base.MixIn(add, 2, 0.5f);
  EXPECT_EQ(base[1], 0.0f);
  EXPECT_EQ(base[2], 0.5f);
  EXPECT_EQ(base[4], 0.5f);
}

TEST(Waveform, MixInDropsOverhang) {
  Waveform base(8000, std::size_t{3});
  Waveform add(8000, std::vector<float>{1, 1, 1, 1});
  base.MixIn(add, 2);
  EXPECT_EQ(base[2], 1.0f);  // only one sample landed
}

TEST(Waveform, MixInRejectsRateMismatch) {
  Waveform base(8000, std::size_t{4});
  Waveform add(16000, std::size_t{2});
  EXPECT_THROW(base.MixIn(add), CheckError);
}

TEST(Waveform, RmsAndPeak) {
  Waveform w(8000, std::vector<float>{3, -4});
  EXPECT_NEAR(w.Rms(), std::sqrt((9.0 + 16.0) / 2.0), 1e-6);
  EXPECT_EQ(w.Peak(), 4.0f);
}

TEST(Waveform, NormalizePeak) {
  Waveform w(8000, std::vector<float>{0.1f, -0.2f});
  w.NormalizePeak(1.0f);
  EXPECT_NEAR(w.Peak(), 1.0f, 1e-6);
}

TEST(Waveform, NormalizeRms) {
  Waveform w(8000, std::vector<float>{0.3f, -0.3f, 0.3f});
  w.NormalizeRms(0.1f);
  EXPECT_NEAR(w.Rms(), 0.1f, 1e-6);
}

TEST(Waveform, NormalizeSilenceIsNoOp) {
  Waveform w(8000, std::size_t{16});
  w.NormalizePeak(1.0f);
  w.NormalizeRms(1.0f);
  EXPECT_EQ(w.Peak(), 0.0f);
}

TEST(Waveform, AppendConcatenates) {
  Waveform a(8000, std::vector<float>{1, 2});
  Waveform b(8000, std::vector<float>{3});
  a.Append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 3.0f);
}

TEST(Waveform, AppendSilence) {
  Waveform a(8000, std::vector<float>{1});
  a.AppendSilence(2);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 0.0f);
}

TEST(Waveform, ResizeToPadsAndTruncates) {
  Waveform a(8000, std::vector<float>{1, 2, 3});
  a.ResizeTo(5);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a[4], 0.0f);
  a.ResizeTo(2);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Mix, TakesMaxLengthAndAddsGains) {
  Waveform a(8000, std::vector<float>{1, 1});
  Waveform b(8000, std::vector<float>{1, 1, 1});
  Waveform m = Mix(a, b, 2.0f, 0.5f);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 2.5f);
  EXPECT_EQ(m[2], 0.5f);
}

TEST(Mix, RejectsRateMismatch) {
  Waveform a(8000, std::size_t{2});
  Waveform b(16000, std::size_t{2});
  EXPECT_THROW(Mix(a, b), CheckError);
}

}  // namespace
}  // namespace nec::audio
