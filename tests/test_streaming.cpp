// Tests for the real-time chunked processor.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/streaming.h"
#include "synth/dataset.h"

namespace nec::core {
namespace {

NecConfig SmallConfig() {
  NecConfig cfg = NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  return cfg;
}

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest()
      : cfg_(SmallConfig()),
        pipeline_(Selector(cfg_, 7),
                  std::make_shared<encoder::LasEncoder>(cfg_.embedding_dim),
                  {}),
        builder_({.duration_s = 2.5}),
        spk_(synth::SpeakerProfile::FromSeed(33)),
        refs_(builder_.MakeReferenceAudios(spk_, 3, 40)) {
    pipeline_.Enroll(refs_);
  }

  NecConfig cfg_;
  NecPipeline pipeline_;
  synth::DatasetBuilder builder_;
  synth::SpeakerProfile spk_;
  std::vector<audio::Waveform> refs_;
};

TEST_F(StreamingTest, EmitsChunkPerFullSecond) {
  StreamingProcessor proc(pipeline_, 1.0, SelectorKind::kLasMask);
  const auto utt = builder_.MakeUtterance(spk_, 5);  // 2.5 s

  int chunks = 0;
  // Feed in uneven pieces (simulates a real capture callback).
  std::size_t pos = 0;
  const std::size_t piece = 3700;
  while (pos < utt.wave.size()) {
    const std::size_t n = std::min(piece, utt.wave.size() - pos);
    auto out = proc.Push(utt.wave.samples().subspan(pos, n));
    if (out.has_value()) {
      ++chunks;
      EXPECT_EQ(out->sample_rate(), channel::kAirSampleRate);
    }
    pos += n;
  }
  EXPECT_EQ(chunks, 2);  // 2 full seconds out of 2.5

  const auto tail = proc.Flush();
  EXPECT_TRUE(tail.has_value());
  EXPECT_FALSE(proc.Flush().has_value());  // nothing left
}

TEST_F(StreamingTest, TimingsAccumulate) {
  StreamingProcessor proc(pipeline_, 0.5, SelectorKind::kLasMask);
  const auto utt = builder_.MakeUtterance(spk_, 6);
  proc.Push(utt.wave.samples());
  const ModuleTimings& t = proc.timings();
  EXPECT_GE(t.chunks, 4u);
  EXPECT_GT(t.selector_ms, 0.0);
  EXPECT_GT(t.broadcast_ms, 0.0);
  EXPECT_GT(t.avg_selector_ms(), 0.0);
  EXPECT_NEAR(t.total_ms(), t.selector_ms + t.broadcast_ms, 1e-9);
}

TEST_F(StreamingTest, LatencySanity) {
  // §IV-C2 requires <300 ms per 1 s chunk; the authoritative measurement
  // is bench_table2_runtime on an idle core. Under ctest the machine may
  // be loaded, so this test only guards against order-of-magnitude
  // regressions (a chunk must never take longer than the audio it covers).
  // Sanitizer instrumentation slows arithmetic ~2-10x, so widen the bound
  // there; tools/check.sh runs this suite under TSan.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr double kBudgetMs = 10000.0;
#else
  constexpr double kBudgetMs = 1000.0;
#endif
  StreamingProcessor proc(pipeline_, 1.0, SelectorKind::kNeural);
  const auto utt = builder_.MakeUtterance(spk_, 7);
  proc.Push(utt.wave.samples());
  ASSERT_GE(proc.timings().chunks, 1u);
  EXPECT_LT(proc.timings().total_ms() / proc.timings().chunks, kBudgetMs);
}

TEST_F(StreamingTest, SmallPushesBufferUntilChunk) {
  StreamingProcessor proc(pipeline_, 0.5, SelectorKind::kLasMask);
  std::vector<float> tiny(100, 0.01f);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(proc.Push(tiny).has_value());
  }
  EXPECT_EQ(proc.timings().chunks, 0u);
}

TEST_F(StreamingTest, RejectsChunkShorterThanWindow) {
  EXPECT_THROW(StreamingProcessor(pipeline_, 0.001), nec::CheckError);
}

TEST_F(StreamingTest, FlushZeroPadsPartialChunk) {
  // A 0.6 s residue in a 1 s-chunk processor must flush as one chunk that
  // is bit-identical to pushing the same samples explicitly zero-padded to
  // a full chunk.
  StreamingProcessor proc(pipeline_, 1.0, SelectorKind::kLasMask);
  const auto utt = builder_.MakeUtterance(spk_, 9);
  const std::size_t partial =
      static_cast<std::size_t>(0.6 * cfg_.sample_rate);
  ASSERT_FALSE(proc.Push(utt.wave.samples().subspan(0, partial)).has_value());

  const auto tail = proc.Flush();
  ASSERT_TRUE(tail.has_value());

  audio::Waveform padded = utt.wave.Slice(0, partial);
  padded.ResizeTo(proc.chunk_samples());  // explicit zero-pad
  StreamingProcessor ref(pipeline_, 1.0, SelectorKind::kLasMask);
  const auto expected = ref.Push(padded.samples());
  ASSERT_TRUE(expected.has_value());

  ASSERT_EQ(tail->size(), expected->size());
  for (std::size_t i = 0; i < tail->size(); ++i) {
    ASSERT_EQ((*tail)[i], (*expected)[i]) << "sample " << i;
  }
}

TEST_F(StreamingTest, MultiChunkPushMatchesSingleChunkPushes) {
  // One Push carrying several chunks must drain to EXACTLY the samples of
  // the same stream fed one chunk at a time — guards the read-offset
  // drain rewrite (the old loop rebuilt the remainder buffer per chunk,
  // which was also quadratic in buffered chunks).
  StreamingProcessor bulk(pipeline_, 0.5, SelectorKind::kLasMask);
  StreamingProcessor piecewise(pipeline_, 0.5, SelectorKind::kLasMask);
  const auto utt = builder_.MakeUtterance(spk_, 5);  // 2.5 s = 5 chunks

  auto bulk_out = bulk.Push(utt.wave.samples());
  ASSERT_TRUE(bulk_out.has_value());

  audio::Waveform piece_out;
  const std::size_t chunk = piecewise.chunk_samples();
  for (std::size_t pos = 0; pos < utt.wave.size(); pos += chunk) {
    const std::size_t n = std::min(chunk, utt.wave.size() - pos);
    if (auto o = piecewise.Push(utt.wave.samples().subspan(pos, n))) {
      piece_out.Append(*o);
    }
  }

  ASSERT_EQ(bulk.timings().chunks, piecewise.timings().chunks);
  ASSERT_EQ(bulk_out->size(), piece_out.size());
  for (std::size_t i = 0; i < piece_out.size(); ++i) {
    ASSERT_EQ((*bulk_out)[i], piece_out[i]) << "sample " << i;
  }
}

TEST_F(StreamingTest, LeftoverSamplesSurviveTheDrain) {
  // A push of 2 chunks + a ragged tail must keep exactly the tail
  // buffered: the follow-up push that completes it emits one more chunk.
  StreamingProcessor proc(pipeline_, 0.5, SelectorKind::kLasMask);
  const auto utt = builder_.MakeUtterance(spk_, 5);
  const std::size_t chunk = proc.chunk_samples();
  const std::size_t fed = 2 * chunk + 123;
  auto out = proc.Push(utt.wave.samples().subspan(0, fed));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(proc.timings().chunks, 2u);
  // 123 samples short of a chunk: exactly chunk - 123 more completes it.
  EXPECT_FALSE(
      proc.Push(utt.wave.samples().subspan(fed, chunk - 124)).has_value());
  EXPECT_TRUE(
      proc.Push(utt.wave.samples().subspan(fed + chunk - 124, 1))
          .has_value());
  EXPECT_EQ(proc.timings().chunks, 3u);
}

TEST_F(StreamingTest, LatchedGainMatchesExplicitReferencePeak) {
  // The processor latches its stream-wide modulation reference from the
  // first non-silent shadow chunk; a processor configured with that same
  // value explicitly must produce bit-identical output.
  const auto utt = builder_.MakeUtterance(spk_, 7);
  const std::size_t chunk_samples =
      static_cast<std::size_t>(1.0 * cfg_.sample_rate);
  const float ref =
      pipeline_
          .GenerateShadow(utt.wave.Slice(0, chunk_samples),
                          SelectorKind::kLasMask)
          .Peak();
  ASSERT_GT(ref, 0.0f);

  PipelineOptions opts;
  opts.modulation.reference_peak = ref;
  NecPipeline explicit_pipeline(pipeline_.shared_selector(),
                                pipeline_.shared_encoder(), opts);
  explicit_pipeline.Enroll(refs_);

  StreamingProcessor latched(pipeline_, 1.0, SelectorKind::kLasMask);
  StreamingProcessor configured(explicit_pipeline, 1.0,
                                SelectorKind::kLasMask);
  const auto a = latched.Push(utt.wave.samples());
  const auto b = configured.Push(utt.wave.samples());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ((*a)[i], (*b)[i]) << "sample " << i;
  }
}

TEST(ModuleTimings, ZeroChunkAveragesAreGuarded) {
  // Division guard: a processor that never emitted a chunk must report
  // zero averages, not NaN/inf.
  const ModuleTimings t;
  EXPECT_EQ(t.chunks, 0u);
  EXPECT_EQ(t.avg_selector_ms(), 0.0);
  EXPECT_EQ(t.avg_broadcast_ms(), 0.0);
  EXPECT_EQ(t.total_ms(), 0.0);
}

TEST(ModuleTimings, AveragesDivideByChunkCount) {
  ModuleTimings t;
  t.selector_ms = 30.0;
  t.broadcast_ms = 10.0;
  t.chunks = 4;
  EXPECT_DOUBLE_EQ(t.avg_selector_ms(), 7.5);
  EXPECT_DOUBLE_EQ(t.avg_broadcast_ms(), 2.5);
  EXPECT_DOUBLE_EQ(t.total_ms(), 40.0);
}

}  // namespace
}  // namespace nec::core
