// Tests for the acoustic scene simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "audio/level.h"
#include "channel/scene.h"
#include "common/check.h"

namespace nec::channel {
namespace {

audio::Waveform Tone(int rate, double f, double seconds) {
  audio::Waveform w(rate, static_cast<std::size_t>(rate * seconds));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(
        0.3 * std::sin(2.0 * std::numbers::pi * f * i / rate));
  }
  return w;
}

TEST(Scene, SingleSourceLeveledToSpl) {
  SceneSimulator sim;
  const audio::Waveform src = Tone(16000, 1000.0, 0.5);
  const audio::Waveform incident = sim.RenderIncident(
      {{.wave = &src, .distance_m = 0.05, .spl_at_ref_db = 77.0}}, {});
  // At the reference distance the incident RMS equals SplToRms(77).
  const double expected = audio::SplScale().SplToRms(77.0);
  EXPECT_NEAR(incident.Rms(), expected, 0.1 * expected);
  EXPECT_EQ(incident.sample_rate(), kAirSampleRate);
}

TEST(Scene, DistanceAttenuates) {
  SceneSimulator sim;
  const audio::Waveform src = Tone(16000, 1000.0, 0.5);
  const auto near = sim.RenderIncident(
      {{.wave = &src, .distance_m = 0.5, .spl_at_ref_db = 77.0}}, {});
  const auto far = sim.RenderIncident(
      {{.wave = &src, .distance_m = 2.0, .spl_at_ref_db = 77.0}}, {});
  // 4x distance = -12 dB.
  EXPECT_NEAR(audio::AmplitudeToDb(far.Rms() / near.Rms()), -12.0, 1.0);
}

TEST(Scene, SourcesSuperpose) {
  SceneSimulator sim;
  const audio::Waveform a = Tone(16000, 500.0, 0.4);
  const audio::Waveform b = Tone(16000, 1200.0, 0.4);
  const auto both = sim.RenderIncident(
      {{.wave = &a, .distance_m = 1.0, .spl_at_ref_db = 77.0},
       {.wave = &b, .distance_m = 1.0, .spl_at_ref_db = 77.0}},
      {});
  const auto only_a = sim.RenderIncident(
      {{.wave = &a, .distance_m = 1.0, .spl_at_ref_db = 77.0}}, {});
  const auto only_b = sim.RenderIncident(
      {{.wave = &b, .distance_m = 1.0, .spl_at_ref_db = 77.0}}, {});
  // Incoherent tones: powers add.
  EXPECT_NEAR(both.Rms() * both.Rms(),
              only_a.Rms() * only_a.Rms() + only_b.Rms() * only_b.Rms(),
              0.1 * both.Rms() * both.Rms());
}

TEST(Scene, StartOffsetShiftsSource) {
  SceneSimulator sim;
  const audio::Waveform src = Tone(16000, 1000.0, 0.1);
  const auto base = sim.RenderIncident(
      {{.wave = &src, .distance_m = 1.0, .spl_at_ref_db = 77.0}}, {});
  const auto delayed = sim.RenderIncident(
      {{.wave = &src,
        .distance_m = 1.0,
        .spl_at_ref_db = 77.0,
        .start_offset_s = 0.05}},
      {});
  EXPECT_NEAR(static_cast<double>(delayed.size()) - base.size(),
              0.05 * kAirSampleRate, 2.0);
}

TEST(Scene, SourceSplAtRecorderMatchesChannelMath) {
  SceneSimulator sim;
  // 77 dB at 5 cm → ~51 dB at 1 m (spreading -26 dB).
  const double spl = sim.SourceSplAtRecorder(77.0, 1.0);
  EXPECT_NEAR(spl, 51.0, 0.5);
}

TEST(Scene, UltrasoundSourceMustBeAtAirRate) {
  SceneSimulator sim;
  const audio::Waveform wrong_rate = Tone(16000, 1000.0, 0.1);
  EXPECT_THROW(
      sim.RenderIncident({}, {{.wave = &wrong_rate, .distance_m = 1.0}}),
      nec::CheckError);
}

TEST(Scene, NullSourceRejected) {
  SceneSimulator sim;
  EXPECT_THROW(sim.RenderIncident({{.wave = nullptr}}, {}),
               nec::CheckError);
}

}  // namespace
}  // namespace nec::channel
