// Tests for the evaluation metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "metrics/metrics.h"

namespace nec::metrics {
namespace {

std::vector<float> Noise(std::size_t n, std::uint64_t seed, float amp) {
  nec::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = amp * rng.GaussianF();
  return v;
}

TEST(Sdr, PerfectEstimateIsHuge) {
  const auto s = Noise(4000, 1, 0.5f);
  EXPECT_GT(Sdr(s, s), 60.0);
}

TEST(Sdr, ScaledEstimateStillPerfect) {
  // Projection-based SDR is scale-invariant.
  const auto s = Noise(4000, 2, 0.5f);
  std::vector<float> scaled = s;
  for (float& v : scaled) v *= 0.3f;
  EXPECT_GT(Sdr(s, scaled), 60.0);
}

TEST(Sdr, KnownSnr) {
  // estimate = reference + noise at -10 dB → SDR ≈ 10 dB.
  const auto s = Noise(40000, 3, 1.0f);
  const auto n = Noise(40000, 4, 1.0f);
  std::vector<float> est(s.size());
  const float g = std::pow(10.0f, -10.0f / 20.0f);
  for (std::size_t i = 0; i < s.size(); ++i) est[i] = s[i] + g * n[i];
  EXPECT_NEAR(Sdr(s, est), 10.0, 0.5);
}

TEST(Sdr, UncorrelatedEstimateIsStronglyNegative) {
  const auto s = Noise(40000, 5, 1.0f);
  const auto e = Noise(40000, 6, 1.0f);
  EXPECT_LT(Sdr(s, e), -15.0);
}

TEST(Sdr, EmptyOrSilentReferenceFloors) {
  std::vector<float> silence(100, 0.0f);
  const auto e = Noise(100, 7, 1.0f);
  EXPECT_LE(Sdr(silence, e), -299.0);
  EXPECT_LE(Sdr({}, {}), -299.0);
}

TEST(SdrPlain, PenalizesScaleErrors) {
  const auto s = Noise(4000, 8, 0.5f);
  std::vector<float> scaled = s;
  for (float& v : scaled) v *= 0.5f;
  EXPECT_GT(Sdr(s, scaled), 60.0);     // projection variant: invariant
  EXPECT_NEAR(SdrPlain(s, scaled), 6.0, 0.3);  // plain: 0.5x error = 6 dB
}

TEST(CosineDistance, IdenticalIsZero) {
  const auto s = Noise(1000, 9, 1.0f);
  EXPECT_NEAR(CosineDistance(s, s), 0.0, 1e-6);
}

TEST(CosineDistance, OppositeIsTwo) {
  const auto s = Noise(1000, 10, 1.0f);
  std::vector<float> neg = s;
  for (float& v : neg) v = -v;
  EXPECT_NEAR(CosineDistance(s, neg), 2.0, 1e-6);
}

TEST(CosineDistance, OrthogonalIsOne) {
  std::vector<float> a = {1.0f, 0.0f};
  std::vector<float> b = {0.0f, 1.0f};
  EXPECT_NEAR(CosineDistance(a, b), 1.0, 1e-9);
}

TEST(CosineDistance, ZeroNormFallsBackToOne) {
  std::vector<float> zero(10, 0.0f);
  const auto s = Noise(10, 11, 1.0f);
  EXPECT_EQ(CosineDistance(zero, s), 1.0);
}

TEST(Pearson, PerfectLinearRelation) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  std::vector<float> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-9);
  std::vector<float> c = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-9);
}

TEST(Pearson, MeanInvariant) {
  const auto a = Noise(1000, 12, 1.0f);
  std::vector<float> shifted = a;
  for (float& v : shifted) v += 100.0f;
  EXPECT_NEAR(PearsonCorrelation(a, shifted), 1.0, 1e-4);
}

TEST(Pearson, IndependentNearZero) {
  const auto a = Noise(20000, 13, 1.0f);
  const auto b = Noise(20000, 14, 1.0f);
  EXPECT_NEAR(PearsonCorrelation(a, b), 0.0, 0.05);
}

TEST(Pearson, ConstantInputGivesZero) {
  std::vector<float> c(100, 3.0f);
  const auto a = Noise(100, 15, 1.0f);
  EXPECT_EQ(PearsonCorrelation(c, a), 0.0);
}

TEST(Sonr, KnownPowerRatio) {
  // recorded has power 4x the target component → SONR = 6 dB.
  audio::Waveform rec(16000, std::vector<float>(1000, 0.2f));
  audio::Waveform target(16000, std::vector<float>(1000, 0.1f));
  EXPECT_NEAR(Sonr(rec, target), 6.02, 0.1);
}

TEST(Sonr, HigherWhenTargetSuppressed) {
  nec::Rng rng(16);
  audio::Waveform rec(16000, std::size_t{4000});
  audio::Waveform bob_strong(16000, std::size_t{4000});
  audio::Waveform bob_weak(16000, std::size_t{4000});
  for (std::size_t i = 0; i < 4000; ++i) {
    rec[i] = rng.GaussianF(0.0f, 0.1f);
    bob_strong[i] = rng.GaussianF(0.0f, 0.08f);
    bob_weak[i] = rng.GaussianF(0.0f, 0.01f);
  }
  EXPECT_GT(Sonr(rec, bob_weak), Sonr(rec, bob_strong) + 10.0);
}

TEST(Sonr, RejectsEmpty) {
  audio::Waveform a(16000, std::size_t{0});
  EXPECT_THROW(Sonr(a, a), nec::CheckError);
}

TEST(ResidualEnergy, RemovesProjectedComponent) {
  const auto c = Noise(8000, 17, 1.0f);
  std::vector<float> sig(c.size());
  const auto other = Noise(8000, 18, 0.1f);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = 3.0f * c[i] + other[i];
  }
  const double resid = ResidualEnergyAfterProjection(sig, c);
  double other_energy = 0.0;
  for (float v : other) other_energy += static_cast<double>(v) * v;
  EXPECT_NEAR(resid, other_energy, 0.15 * other_energy);
}


TEST(SpectralConvergence, ZeroForIdenticalSignals) {
  nec::Rng rng(20);
  audio::Waveform w(16000, std::size_t{6000});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.GaussianF();
  const dsp::StftConfig cfg{.fft_size = 256, .win_length = 256,
                            .hop_length = 128};
  EXPECT_NEAR(SpectralConvergence(w, w, cfg), 0.0, 1e-6);
}

TEST(SpectralConvergence, GrowsWithCorruption) {
  nec::Rng rng(21);
  audio::Waveform w(16000, std::size_t{6000});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.GaussianF(0, 0.3f);
  audio::Waveform lightly = w, heavily = w;
  for (std::size_t i = 0; i < w.size(); ++i) {
    lightly[i] += rng.GaussianF(0, 0.03f);
    heavily[i] += rng.GaussianF(0, 0.3f);
  }
  const dsp::StftConfig cfg{.fft_size = 256, .win_length = 256,
                            .hop_length = 128};
  const double light = SpectralConvergence(w, lightly, cfg);
  const double heavy = SpectralConvergence(w, heavily, cfg);
  EXPECT_LT(light, heavy);
  EXPECT_GT(light, 0.0);
}

}  // namespace
}  // namespace nec::metrics
