// Tests for the Schroeder room reverberator.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/reverb.h"
#include "common/check.h"

namespace nec::channel {
namespace {

audio::Waveform Impulse(int rate, std::size_t n) {
  audio::Waveform w(rate, n);
  w[0] = 1.0f;
  return w;
}

TEST(Reverb, OutputLongerByTail) {
  Reverberator verb(16000, {.rt60_s = 0.4});
  const auto out = verb.Process(Impulse(16000, 1600));
  EXPECT_EQ(out.size(), 1600u + static_cast<std::size_t>(0.4 * 16000));
}

TEST(Reverb, ImpulseResponseDecaysAtRt60Rate) {
  const double rt60 = 0.5;
  Reverberator verb(16000, {.rt60_s = rt60, .wet = 1.0, .damping = 0.0});
  const auto ir = verb.Process(Impulse(16000, 16000));

  // Energy in [50,150] ms vs [RT60-50, RT60+50] ms windows: RT60 means
  // -60 dB decay over rt60 seconds, so the later window sits far below.
  auto window_energy = [&](double t0, double t1) {
    double acc = 0.0;
    for (std::size_t i = static_cast<std::size_t>(t0 * 16000);
         i < static_cast<std::size_t>(t1 * 16000) && i < ir.size(); ++i) {
      acc += static_cast<double>(ir[i]) * ir[i];
    }
    return acc;
  };
  const double early = window_energy(0.05, 0.15);
  const double late = window_energy(rt60 - 0.05, rt60 + 0.05);
  EXPECT_GT(early, late * 30.0);
  EXPECT_GT(late, 0.0);  // the tail does ring
}

TEST(Reverb, DryPassThroughAtZeroWet) {
  Reverberator verb(16000, {.rt60_s = 0.3, .wet = 0.0});
  audio::Waveform in(16000, std::size_t{800});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(0.02f * static_cast<float>(i));
  }
  const auto out = verb.Process(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], in[i]);
  }
}

TEST(Reverb, WetPathAddsLateEnergy) {
  Reverberator verb(16000, {.rt60_s = 0.5, .wet = 0.4});
  audio::Waveform in(16000, std::size_t{3200});
  for (std::size_t i = 0; i < 1600; ++i) in[i] = 0.3f;
  const auto out = verb.Process(in);
  // The region right after the dry signal ends carries reverberant energy.
  double tail_energy = 0.0;
  for (std::size_t i = 3300; i < 4800 && i < out.size(); ++i) {
    tail_energy += static_cast<double>(out[i]) * out[i];
  }
  EXPECT_GT(tail_energy, 1e-4);
}

TEST(Reverb, ResetClearsState) {
  Reverberator verb(16000, {.rt60_s = 0.3, .wet = 1.0});
  const auto first = verb.Process(Impulse(16000, 800));
  verb.Reset();
  const auto second = verb.Process(Impulse(16000, 800));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]);
  }
}

TEST(Reverb, StableOverLongInput) {
  // Feedback < 1 everywhere: a long noisy input must not blow up.
  Reverberator verb(16000, {.rt60_s = 1.2, .wet = 0.5, .damping = 0.2});
  audio::Waveform in(16000, std::size_t{32000});
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = 0.2f * std::sin(0.37f * static_cast<float>(i));
  }
  const auto out = verb.Process(in);
  for (float v : out.samples()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::abs(v), 10.0f);
  }
}

TEST(Reverb, RejectsImplausibleRooms) {
  EXPECT_THROW(Reverberator(16000, {.rt60_s = 0.0}), nec::CheckError);
  EXPECT_THROW(Reverberator(16000, {.rt60_s = 0.4, .wet = 1.5}),
               nec::CheckError);
  EXPECT_THROW(
      Reverberator(16000, {.rt60_s = 0.4, .wet = 0.2, .damping = 1.0}),
      nec::CheckError);
}

}  // namespace
}  // namespace nec::channel
