// Tests for the Long-time Average Spectrum (Eq. 1) — the §III foundation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "encoder/las.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"

namespace nec::encoder {
namespace {

TEST(Las, ToneProducesPeakAtToneBin) {
  audio::Waveform w(16000, std::size_t{16000});
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(
        0.5 * std::sin(2.0 * std::numbers::pi * 1000.0 * i / 16000.0));
  }
  LasConfig cfg;
  const auto las = LongTimeAverageSpectrum(w, cfg);
  ASSERT_EQ(las.size(), cfg.fft_size / 2 + 1);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < las.size(); ++i) {
    if (las[i] > las[peak]) peak = i;
  }
  EXPECT_NEAR(static_cast<double>(peak),
              1000.0 * cfg.fft_size / 16000.0, 1.0);
}

TEST(Las, EmptyWaveformRejected) {
  audio::Waveform w;
  EXPECT_THROW(LongTimeAverageSpectrum(w), nec::CheckError);
}

TEST(Las, ScalesLinearlyWithAmplitude) {
  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(1);
  const auto utt = db.MakeUtterance(spk, 2);
  audio::Waveform loud = utt.wave;
  loud.Scale(2.0f);
  const auto a = LongTimeAverageSpectrum(utt.wave);
  const auto b = LongTimeAverageSpectrum(loud);
  for (std::size_t i = 10; i < a.size(); i += 37) {
    if (a[i] > 1e-4f) {
      EXPECT_NEAR(b[i] / a[i], 2.0f, 0.05f);
    }
  }
}

TEST(Las, VoicedLasIgnoresAppendedSilence) {
  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(3);
  auto utt = db.MakeUtterance(spk, 4);
  const auto las_clean = VoicedLas(utt.wave);
  audio::Waveform padded = utt.wave;
  padded.AppendSilence(16000);  // 1 s of silence
  const auto las_padded = VoicedLas(padded);
  // Voiced LAS is robust to silence padding; plain LAS would halve.
  const double corr = metrics::PearsonCorrelation(las_clean, las_padded);
  EXPECT_GT(corr, 0.99);
  double ratio = 0.0;
  int n = 0;
  for (std::size_t i = 5; i < las_clean.size(); i += 13) {
    if (las_clean[i] > 1e-4f) {
      ratio += las_padded[i] / las_clean[i];
      ++n;
    }
  }
  EXPECT_NEAR(ratio / n, 1.0, 0.15);
}

TEST(Las, PaperFig5Property) {
  // Pearson correlation of LAS: same speaker across utterances high,
  // different speakers lower (the Fig. 5 matrix structure).
  synth::DatasetBuilder db({.duration_s = 2.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(3, 555);
  std::vector<std::vector<float>> las_by_spk_utt;
  for (int s = 0; s < 3; ++s) {
    for (int u = 0; u < 2; ++u) {
      const auto utt = db.MakeUtterance(spks[s], 100 + s * 10 + u);
      las_by_spk_utt.push_back(VoicedLas(utt.wave));
    }
  }
  double intra = 0.0, inter = 0.0;
  int ni = 0, nx = 0;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      const double c =
          metrics::PearsonCorrelation(las_by_spk_utt[i], las_by_spk_utt[j]);
      if (i / 2 == j / 2) {
        intra += c;
        ++ni;
      } else {
        inter += c;
        ++nx;
      }
    }
  }
  EXPECT_GT(intra / ni, inter / nx + 0.02);
}

}  // namespace
}  // namespace nec::encoder
