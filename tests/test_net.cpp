// Tests for the nec::net subsystem (DESIGN.md §5h): frame codec
// round-trips and typed decode errors, seeded corruption fuzz that must
// never over-read, EINTR-safe socket I/O, the v2 auth handshake
// (challenge–response, replay defense, strict payload parses), and the
// load-bearing end-to-end properties — a networked necd serving shadows
// bit-identical to the in-process SessionManager, a 2-shard router
// fleet doing the same for a pool of concurrent sessions, a killed
// shard faulting only its own sessions, a saturated shard shedding new
// work with typed kOverload, and a draining reshard migrating every
// sticky session with zero faults and bit-identical continuation.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/selector.h"
#include "encoder/encoder.h"
#include "net/auth.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/loadgen.h"
#include "net/router.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/http.h"
#include "obs/trace.h"
#include "runtime/fault.h"
#include "runtime/session_manager.h"
#include "synth/dataset.h"

namespace nec::net {
namespace {

// ------------------------------------------------------------ frame codec

TEST(Crc32, KnownAnswers) {
  const char* check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

Frame MakeFrame(FrameType type, std::uint64_t sid,
                std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = type;
  f.session_id = sid;
  f.payload = std::move(payload);
  return f;
}

std::vector<Frame> RepresentativeFrames() {
  std::vector<Frame> frames;
  {
    std::vector<std::uint8_t> p;
    PutU32(&p, 1);
    PutU32(&p, 1);
    frames.push_back(MakeFrame(FrameType::kHello, 0, std::move(p)));
  }
  {
    std::vector<std::uint8_t> p;
    for (std::uint32_t v : {1u, 16000u, 16000u, 192000u, 192000u}) {
      PutU32(&p, v);
    }
    frames.push_back(MakeFrame(FrameType::kHelloAck, 0, std::move(p)));
  }
  {
    std::vector<std::uint8_t> p;
    PutU64(&p, 42);
    PutU64(&p, 43);
    frames.push_back(
        MakeFrame(FrameType::kOpenSession, 7, std::move(p)));
  }
  frames.push_back(MakeFrame(FrameType::kOpenAck, 7, {}));
  {
    std::vector<std::uint8_t> p;
    const float samples[] = {0.0f, 0.5f, -0.25f, 1.0f, -1.0f};
    PutFloats(&p, samples);
    frames.push_back(MakeFrame(FrameType::kSubmitChunk, 7, std::move(p)));
  }
  {
    std::vector<std::uint8_t> p;
    const float samples[] = {1e-7f, -3.25f};
    PutFloats(&p, samples);
    frames.push_back(MakeFrame(FrameType::kShadowData, 7, std::move(p)));
  }
  frames.push_back(MakeFrame(FrameType::kCloseSession, 7, {}));
  frames.push_back(MakeFrame(FrameType::kClosed, 7, {}));
  {
    std::vector<std::uint8_t> p;
    PutU32(&p, 1);
    const char* msg = "invariant broken";
    p.insert(p.end(), msg, msg + std::strlen(msg));
    frames.push_back(MakeFrame(FrameType::kError, 7, std::move(p)));
  }
  frames.push_back(MakeFrame(FrameType::kPing, 0, {0xde, 0xad}));
  frames.push_back(MakeFrame(FrameType::kPong, 0, {0xde, 0xad}));
  // v2: auth handshake, load reporting, draining reshard.
  {
    std::vector<std::uint8_t> p;
    PutU64(&p, 0x1122334455667788ull);
    frames.push_back(MakeFrame(FrameType::kAuthChallenge, 0, std::move(p)));
  }
  {
    std::vector<std::uint8_t> p;
    PutU64(&p, AuthTag("fleet-secret", 0x1122334455667788ull));
    frames.push_back(MakeFrame(FrameType::kAuthResponse, 17, std::move(p)));
  }
  {
    std::vector<std::uint8_t> p;
    PutU32(&p, 4);
    const char* msg = "auth tag mismatch";
    p.insert(p.end(), msg, msg + std::strlen(msg));
    frames.push_back(MakeFrame(FrameType::kAuthReject, 0, std::move(p)));
  }
  frames.push_back(MakeFrame(FrameType::kStatusRequest, 0, {}));
  {
    std::vector<std::uint8_t> p;
    PutShardStatus(&p, {.queue_depth = 3,
                        .active_sessions = 9,
                        .e2e_p99_ms = 41.5f,
                        .overload_total = 2});
    frames.push_back(MakeFrame(FrameType::kShardStatus, 0, std::move(p)));
  }
  frames.push_back(MakeFrame(FrameType::kDrainSession, 7, {}));
  {
    SessionSnapshotPayload snap;
    snap.speaker_seed = 42;
    snap.ref_seed = 43;
    snap.chunks_done = 1;
    snap.latch_bits = 0x3FF0000000000000ull;
    snap.tail = {0.5f, -0.25f};
    std::vector<std::uint8_t> p;
    PutSessionSnapshot(&p, snap);
    frames.push_back(MakeFrame(FrameType::kSessionSnapshot, 7, p));
    frames.push_back(MakeFrame(FrameType::kRestoreSession, 7, std::move(p)));
  }
  return frames;
}

TEST(FrameCodec, RoundTripsEveryFrameType) {
  for (const Frame& original : RepresentativeFrames()) {
    std::string wire;
    EncodeFrame(original, &wire);
    ASSERT_GE(wire.size(), kHeaderSize);

    FrameDecoder decoder;
    decoder.Feed(reinterpret_cast<const std::uint8_t*>(wire.data()),
                 wire.size());
    Frame decoded;
    ASSERT_EQ(decoder.Next(&decoded), DecodeStatus::kOk)
        << FrameTypeName(original.type);
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.session_id, original.session_id);
    EXPECT_EQ(decoded.payload, original.payload);
    EXPECT_EQ(decoder.Next(&decoded), DecodeStatus::kNeedMore);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameCodec, DecodesByteAtATimeAcrossMultipleFrames) {
  const std::vector<Frame> originals = RepresentativeFrames();
  std::string wire;
  for (const Frame& f : originals) EncodeFrame(f, &wire);

  FrameDecoder decoder;
  std::vector<Frame> decoded;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const auto byte = static_cast<std::uint8_t>(wire[i]);
    decoder.Feed(&byte, 1);
    Frame f;
    DecodeStatus status;
    while ((status = decoder.Next(&f)) == DecodeStatus::kOk) {
      decoded.push_back(f);
    }
    ASSERT_EQ(status, DecodeStatus::kNeedMore);
  }
  ASSERT_EQ(decoded.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(decoded[i].type, originals[i].type);
    EXPECT_EQ(decoded[i].session_id, originals[i].session_id);
    EXPECT_EQ(decoded[i].payload, originals[i].payload);
  }
}

std::string EncodeOne(FrameType type = FrameType::kPing) {
  std::string wire;
  EncodeFrame(MakeFrame(type, 9, {1, 2, 3, 4}), &wire);
  return wire;
}

DecodeStatus DecodeAll(const std::string& wire) {
  FrameDecoder decoder;
  decoder.Feed(reinterpret_cast<const std::uint8_t*>(wire.data()),
               wire.size());
  Frame f;
  DecodeStatus status;
  while ((status = decoder.Next(&f)) == DecodeStatus::kOk) {
  }
  return status;
}

TEST(FrameCodec, ReportsTypedHeaderErrors) {
  {
    std::string wire = EncodeOne();
    wire[0] = 'X';
    EXPECT_EQ(DecodeAll(wire), DecodeStatus::kBadMagic);
  }
  {
    std::string wire = EncodeOne();
    wire[4] = static_cast<char>(kProtocolVersion + 1);
    EXPECT_EQ(DecodeAll(wire), DecodeStatus::kBadVersion);
  }
  {
    std::string wire = EncodeOne();
    wire[5] = static_cast<char>(0xEE);
    EXPECT_EQ(DecodeAll(wire), DecodeStatus::kBadType);
  }
  {
    std::string wire = EncodeOne();
    wire[6] = 1;  // reserved must be zero
    EXPECT_EQ(DecodeAll(wire), DecodeStatus::kBadReserved);
  }
  {
    std::string wire = EncodeOne();
    wire[19] = static_cast<char>(0xFF);  // length beyond kMaxPayloadBytes
    EXPECT_EQ(DecodeAll(wire), DecodeStatus::kBadLength);
  }
  {
    std::string wire = EncodeOne();
    wire[kHeaderSize] ^= 0x01;  // payload no longer matches the CRC
    EXPECT_EQ(DecodeAll(wire), DecodeStatus::kBadCrc);
  }
}

TEST(FrameCodec, FirstErrorIsStickyAndConsumesNothingFurther) {
  std::string bad = EncodeOne();
  bad[0] = 'X';
  FrameDecoder decoder;
  decoder.Feed(reinterpret_cast<const std::uint8_t*>(bad.data()), bad.size());
  Frame f;
  ASSERT_EQ(decoder.Next(&f), DecodeStatus::kBadMagic);
  EXPECT_TRUE(decoder.failed());

  // A perfectly valid frame fed afterwards must not resurrect the stream.
  const std::string good = EncodeOne();
  decoder.Feed(reinterpret_cast<const std::uint8_t*>(good.data()),
               good.size());
  EXPECT_EQ(decoder.Next(&f), DecodeStatus::kBadMagic);

  decoder.Reset();
  decoder.Feed(reinterpret_cast<const std::uint8_t*>(good.data()),
               good.size());
  EXPECT_EQ(decoder.Next(&f), DecodeStatus::kOk);
}

TEST(FrameCodec, TruncationOnlyEverNeedsMore) {
  const std::string wire = EncodeOne(FrameType::kSubmitChunk);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(reinterpret_cast<const std::uint8_t*>(wire.data()), len);
    Frame f;
    EXPECT_EQ(decoder.Next(&f), DecodeStatus::kNeedMore) << "prefix " << len;
    EXPECT_EQ(decoder.buffered(), len);  // nothing consumed, nothing invented
  }
}

TEST(FrameCodec, FuzzRandomBytesNeverCrashOrOverRead) {
  std::mt19937_64 rng(20260809);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const std::size_t size = rng() % 512;
    std::vector<std::uint8_t> blob(size);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
    FrameDecoder decoder;
    decoder.Feed(blob.data(), blob.size());
    Frame f;
    DecodeStatus status;
    std::size_t decoded = 0;
    while ((status = decoder.Next(&f)) == DecodeStatus::kOk) {
      ASSERT_LE(f.payload.size(), blob.size());
      ++decoded;
    }
    // Random bytes essentially never hit the magic; either way the
    // decoder must land in a terminal typed state without reading past
    // what was fed.
    EXPECT_TRUE(status == DecodeStatus::kNeedMore || IsDecodeError(status));
    EXPECT_LE(decoded, blob.size() / kHeaderSize + 1);
  }
}

TEST(FrameCodec, FuzzSingleByteCorruptionPastHeaderNeverDecodes) {
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> payload(64);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  std::string wire;
  EncodeFrame(MakeFrame(FrameType::kShadowData, 5, payload), &wire);

  // Corrupt one byte anywhere in the length/CRC/payload region: the
  // decoder must report a typed error or keep waiting — never hand the
  // altered frame to the caller as kOk.
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string corrupt = wire;
    const std::size_t at = 16 + rng() % (corrupt.size() - 16);
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1u << (rng() % 8)));
    FrameDecoder decoder;
    decoder.Feed(reinterpret_cast<const std::uint8_t*>(corrupt.data()),
                 corrupt.size());
    Frame f;
    const DecodeStatus status = decoder.Next(&f);
    EXPECT_NE(status, DecodeStatus::kOk) << "flip at " << at;
    EXPECT_TRUE(status == DecodeStatus::kNeedMore || IsDecodeError(status));
  }
}

TEST(PayloadReader, PoisonsOnTruncation) {
  std::vector<std::uint8_t> payload;
  PutU32(&payload, 77);
  {
    PayloadReader reader(payload);
    std::uint64_t v = 0;
    EXPECT_FALSE(reader.U64(&v));  // only 4 bytes buffered
    EXPECT_FALSE(reader.ok());
  }
  {
    std::vector<std::uint8_t> odd = {1, 2, 3};  // not a multiple of 4
    PayloadReader reader(odd);
    std::vector<float> floats;
    EXPECT_FALSE(reader.Floats(&floats));
    EXPECT_FALSE(reader.ok());
  }
  {
    PayloadReader reader(payload);
    std::uint32_t v = 0;
    EXPECT_TRUE(reader.U32(&v));
    EXPECT_EQ(v, 77u);
    EXPECT_TRUE(reader.complete());
  }
}

TEST(PayloadReader, ShardStatusRoundTripIsStrict) {
  const ShardStatusPayload original = {.queue_depth = 12,
                                       .active_sessions = 3,
                                       .e2e_p99_ms = 87.25f,
                                       .overload_total = 41};
  std::vector<std::uint8_t> payload;
  PutShardStatus(&payload, original);

  ShardStatusPayload decoded;
  ASSERT_TRUE(ParseShardStatus(payload, &decoded));
  EXPECT_EQ(decoded.queue_depth, original.queue_depth);
  EXPECT_EQ(decoded.active_sessions, original.active_sessions);
  EXPECT_EQ(decoded.e2e_p99_ms, original.e2e_p99_ms);
  EXPECT_EQ(decoded.overload_total, original.overload_total);

  // Every strict prefix is truncated; a trailing byte is a schema lie.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    ShardStatusPayload scratch;
    EXPECT_FALSE(ParseShardStatus(
        std::span<const std::uint8_t>(payload.data(), len), &scratch))
        << "prefix " << len;
  }
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  ShardStatusPayload scratch;
  EXPECT_FALSE(ParseShardStatus(padded, &scratch));
}

TEST(PayloadReader, SessionSnapshotRoundTripIsStrict) {
  SessionSnapshotPayload original;
  original.speaker_seed = 0xA1B2C3D4E5F60718ull;
  original.ref_seed = 99;
  original.chunks_done = 7;
  original.latch_bits = 0x3FE5555555555555ull;
  original.tail = {0.125f, -0.5f, 1e-6f};
  std::vector<std::uint8_t> payload;
  PutSessionSnapshot(&payload, original);

  SessionSnapshotPayload decoded;
  ASSERT_TRUE(ParseSessionSnapshot(payload, &decoded));
  EXPECT_EQ(decoded.speaker_seed, original.speaker_seed);
  EXPECT_EQ(decoded.ref_seed, original.ref_seed);
  EXPECT_EQ(decoded.chunks_done, original.chunks_done);
  EXPECT_EQ(decoded.latch_bits, original.latch_bits);
  EXPECT_EQ(decoded.tail, original.tail);

  // The tail consumes everything after the fixed header, so the only
  // valid lengths are header + 4k; anything else must parse false. (A
  // 4-aligned truncation IS a shorter valid snapshot — the frame CRC is
  // what rules that out on the wire, not the schema.)
  const std::size_t fixed = payload.size() - 4 * original.tail.size();
  for (std::size_t len = 0; len < payload.size(); ++len) {
    if (len >= fixed && (len - fixed) % 4 == 0) continue;
    SessionSnapshotPayload scratch;
    EXPECT_FALSE(ParseSessionSnapshot(
        std::span<const std::uint8_t>(payload.data(), len), &scratch))
        << "prefix " << len;
  }
}

TEST(PayloadReader, FuzzV2ParsersNeverCrashOrOverRead) {
  std::mt19937_64 rng(20260809);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const std::size_t size = rng() % 96;
    std::vector<std::uint8_t> blob(size);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
    ShardStatusPayload status;
    ParseShardStatus(blob, &status);  // must not crash / over-read
    SessionSnapshotPayload snapshot;
    if (ParseSessionSnapshot(blob, &snapshot)) {
      // Anything it accepted must have fit inside the blob.
      EXPECT_LE(4 * snapshot.tail.size(), blob.size());
    }
  }
}

// --------------------------------------------------------------- auth

TEST(Auth, SipHash24MatchesReferenceVectors) {
  // Canonical SipHash-2-4 vectors (Aumasson & Bernstein reference
  // implementation): key 0x0f0e...0100, input bytes 0,1,...,n-1.
  std::uint8_t in[16];
  for (int i = 0; i < 16; ++i) in[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t k0 = 0x0706050403020100ull;
  const std::uint64_t k1 = 0x0f0e0d0c0b0a0908ull;
  EXPECT_EQ(SipHash24(k0, k1, in, 0), 0x726fdb47dd0e0e31ull);
  EXPECT_EQ(SipHash24(k0, k1, in, 1), 0x74f839c593dc67fdull);
  EXPECT_EQ(SipHash24(k0, k1, in, 7), 0xab0200f58b01d137ull);
  EXPECT_EQ(SipHash24(k0, k1, in, 8), 0x93f5f5799a932462ull);
  EXPECT_EQ(SipHash24(k0, k1, in, 15), 0xa129ca6149be45e5ull);
}

TEST(Auth, TagBindsSecretAndNonce) {
  const std::uint64_t tag = AuthTag("fleet-secret", 7);
  EXPECT_EQ(AuthTag("fleet-secret", 7), tag);  // deterministic
  EXPECT_NE(AuthTag("other-secret", 7), tag);
  EXPECT_NE(AuthTag("fleet-secret", 8), tag);
  EXPECT_NE(AuthTag("", 7), tag);
}

TEST(Auth, RandomNoncesAreDistinct) {
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(RandomNonce());
  EXPECT_EQ(seen.size(), 1000u);
}

// ------------------------------------------------------------- socket I/O

TEST(SocketIo, ReadFullWriteFullMoveExactBuffers) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<std::uint8_t> sent(1 << 20);
  std::mt19937_64 rng(3);
  for (auto& b : sent) b = static_cast<std::uint8_t>(rng());

  std::thread writer([&] {
    EXPECT_EQ(WriteFull(fds[0], sent.data(), sent.size(), 5000),
              IoStatus::kOk);
  });
  std::vector<std::uint8_t> got(sent.size());
  EXPECT_EQ(ReadFull(fds[1], got.data(), got.size(), 5000), IoStatus::kOk);
  writer.join();
  EXPECT_EQ(got, sent);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketIo, ReadFullTimesOutOnSilentPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::uint8_t byte = 0;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ReadFull(fds[1], &byte, 1, 100), IoStatus::kTimeout);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited_ms, 90.0);
  EXPECT_LT(waited_ms, 2000.0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketIo, WriteToClosedPeerReportsClosedNotSigpipe) {
  IgnoreSigpipe();
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  std::vector<std::uint8_t> big(1 << 20, 0xAB);
  // If SIGPIPE were not ignored this write would kill the process.
  EXPECT_EQ(WriteFull(fds[0], big.data(), big.size(), 1000),
            IoStatus::kClosed);
  ::close(fds[0]);
}

TEST(SocketIo, ParseHostPortAcceptsOnlyWellFormedSpecs) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(ParseHostPort("127.0.0.1:9465", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9465);
  EXPECT_FALSE(ParseHostPort("127.0.0.1", &host, &port));
  EXPECT_FALSE(ParseHostPort(":9465", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:notaport", &host, &port));
}

TEST(SocketIo, DialDistinguishesRefusedFromTimeout) {
  // Grab a port that is guaranteed closed: bind, read the number, close.
  int port = 0;
  {
    TcpListener listener;
    std::string error;
    ASSERT_TRUE(listener.Listen("127.0.0.1", 0, &error)) << error;
    port = listener.port();
  }
  std::string error;
  EXPECT_LT(DialTcp("127.0.0.1", port, 1000, &error), 0);
  EXPECT_NE(error.find("refused"), std::string::npos) << error;
}

// --------------------------------------------------------------- fixtures

core::NecConfig SmallConfig() {
  core::NecConfig cfg = core::NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  return cfg;
}

/// Weights shared by every manager in a test — the cross-process
/// equivalent is every shard loading the same --model tiny.
struct SharedModel {
  SharedModel()
      : cfg(SmallConfig()),
        selector(std::make_shared<const core::Selector>(cfg, 7)),
        encoder(std::make_shared<encoder::LasEncoder>(cfg.embedding_dim)) {}

  runtime::SessionManager::Options ManagerOptions() const {
    return {.workers = 4, .chunk_s = 1.0};
  }

  core::NecConfig cfg;
  std::shared_ptr<const core::Selector> selector;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder;
};

/// What a correct server must produce for (speaker_seed, ref_seed,
/// chunks): the in-process SessionManager result with seed enrollment.
std::vector<float> ExpectedShadow(const SharedModel& model,
                                  std::uint64_t speaker_seed,
                                  std::uint64_t ref_seed,
                                  const std::vector<float>& stream,
                                  std::size_t chunk_samples,
                                  std::size_t chunks) {
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  synth::DatasetBuilder enroll_builder({.duration_s = 3.0});
  const auto refs = enroll_builder.MakeReferenceAudios(
      synth::SpeakerProfile::FromSeed(speaker_seed), 3, ref_seed);
  const auto id = manager.CreateSession(refs);
  for (std::size_t c = 0; c < chunks; ++c) {
    std::span<const float> chunk(stream.data() + c * chunk_samples,
                                 chunk_samples);
    for (;;) {
      const runtime::SubmitResult r = manager.Submit(id, chunk);
      if (r.ok() ||
          r.error->category != runtime::ErrorCategory::kOverload) {
        break;
      }
      chunk = {};  // buffered; nudge until admitted
      std::this_thread::yield();
    }
  }
  manager.Drain();
  audio::Waveform out = manager.TakeOutput(id);
  if (auto tail = manager.Flush(id)) out.Append(*tail);
  return std::vector<float>(out.samples().begin(), out.samples().end());
}

std::vector<float> MakeStream(std::uint64_t speaker_seed,
                              std::uint64_t content_seed, double seconds) {
  synth::DatasetBuilder builder({.duration_s = seconds});
  auto instance =
      builder.MakeInstance(synth::SpeakerProfile::FromSeed(speaker_seed),
                           synth::Scenario::kBabble, content_seed);
  return std::move(instance.mixed.data());
}

// ----------------------------------------------------- server end-to-end

TEST(NetServerE2E, ServesBitIdenticalShadowsToInProcessManager) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::size_t chunk_samples = manager.chunk_samples();
  const std::size_t chunks = 2;
  std::vector<float> stream = MakeStream(42, 99, 2.0);
  stream.resize(chunks * chunk_samples, 0.0f);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 2000, &error))
      << error;
  HelloInfo hello;
  ASSERT_TRUE(client.Hello(&hello, 5000, &error)) << error;
  EXPECT_EQ(hello.version, kProtocolVersion);
  EXPECT_EQ(hello.chunk_samples, chunk_samples);
  EXPECT_EQ(hello.input_sample_rate, 16000u);
  EXPECT_EQ(hello.output_sample_rate, 192000u);

  ASSERT_TRUE(client.OpenSession(1, 42, 43, 10000, &error)) << error;
  for (std::size_t c = 0; c < chunks; ++c) {
    ASSERT_TRUE(client.SubmitChunk(
        1, std::span<const float>(stream.data() + c * chunk_samples,
                                  chunk_samples),
        &error))
        << error;
  }
  ASSERT_TRUE(client.SendCloseSession(1, &error)) << error;
  ASSERT_TRUE(client.WaitDone(1, 60000, &error)) << error;

  const WireSessionState& state = client.session(1);
  ASSERT_TRUE(state.closed);
  ASSERT_FALSE(state.error.has_value());

  const std::vector<float> expected =
      ExpectedShadow(model, 42, 43, stream, chunk_samples, chunks);
  ASSERT_EQ(state.shadow.size(), expected.size());
  // Bit-exact: memcmp, not tolerance — networked serving must not change
  // a single sample.
  EXPECT_EQ(std::memcmp(state.shadow.data(), expected.data(),
                        expected.size() * sizeof(float)),
            0);

  const NetStatsSnapshot stats = server.StatsSnapshot();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  server.Stop();
}

TEST(NetServerE2E, RejectsUnsupportedProtocolVersion) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const int fd = DialTcp("127.0.0.1", server.port(), 2000, &error);
  ASSERT_GE(fd, 0) << error;
  Frame hello;
  hello.type = FrameType::kHello;
  PutU32(&hello.payload, 99);
  PutU32(&hello.payload, 99);
  std::string wire;
  EncodeFrame(hello, &wire);
  ASSERT_EQ(WriteFull(fd, wire.data(), wire.size(), 2000), IoStatus::kOk);

  FrameDecoder decoder;
  Frame reply;
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::uint8_t buf[512];
  for (int i = 0; i < 100 && status == DecodeStatus::kNeedMore; ++i) {
    std::size_t n = 0;
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r > 0) n = static_cast<std::size_t>(r);
    if (r == 0) break;
    decoder.Feed(buf, n);
    status = decoder.Next(&reply);
  }
  ASSERT_EQ(status, DecodeStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  PayloadReader reader(reply.payload);
  std::uint32_t category = 0;
  ASSERT_TRUE(reader.U32(&category));
  EXPECT_EQ(category,
            static_cast<std::uint32_t>(runtime::ErrorCategory::kBadInput));
  ::close(fd);
  server.Stop();
}

TEST(NetServerE2E, MalformedBytesGetTypedErrorThenDisconnect) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const int fd = DialTcp("127.0.0.1", server.port(), 2000, &error);
  ASSERT_GE(fd, 0) << error;
  const char garbage[64] = "this is definitely not a NEC1 frame";
  ASSERT_EQ(WriteFull(fd, garbage, sizeof garbage, 2000), IoStatus::kOk);

  // Expect exactly one kError(kBadInput) frame, then EOF.
  FrameDecoder decoder;
  std::uint8_t buf[1024];
  bool saw_eof = false;
  for (int i = 0; i < 200 && !saw_eof; ++i) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r == 0) {
      saw_eof = true;
      break;
    }
    if (r > 0) decoder.Feed(buf, static_cast<std::size_t>(r));
  }
  EXPECT_TRUE(saw_eof);
  Frame reply;
  ASSERT_EQ(decoder.Next(&reply), DecodeStatus::kOk);
  EXPECT_EQ(reply.type, FrameType::kError);
  PayloadReader reader(reply.payload);
  std::uint32_t category = 0;
  ASSERT_TRUE(reader.U32(&category));
  EXPECT_EQ(category,
            static_cast<std::uint32_t>(runtime::ErrorCategory::kBadInput));
  EXPECT_NE(reader.RemainingText().find("malformed frame"),
            std::string::npos);
  EXPECT_EQ(server.StatsSnapshot().decode_errors, 1u);
  ::close(fd);
  server.Stop();
}

// ------------------------------------------------------- auth handshake

bool SendRawFrame(int fd, const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  return WriteFull(fd, wire.data(), wire.size(), 2000) == IoStatus::kOk;
}

/// Blocks for exactly one frame; false on EOF/decode failure. Handshake
/// exchanges are strictly one-frame-per-turn, so nothing coalesces.
bool RecvRawFrame(int fd, Frame* out) {
  FrameDecoder decoder;
  std::uint8_t buf[512];
  DecodeStatus status = DecodeStatus::kNeedMore;
  for (int i = 0; i < 200 && status == DecodeStatus::kNeedMore; ++i) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) return false;
    decoder.Feed(buf, static_cast<std::size_t>(r));
    status = decoder.Next(out);
  }
  return status == DecodeStatus::kOk;
}

Frame MakeHello() {
  Frame hello;
  hello.type = FrameType::kHello;
  PutU32(&hello.payload, kProtocolVersion);
  PutU32(&hello.payload, kProtocolVersion);
  return hello;
}

TEST(NetAuthE2E, GoodSecretRoundTripsBitIdentically) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {.secret = "fleet-secret"});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::size_t chunk_samples = manager.chunk_samples();
  const std::size_t chunks = 2;
  std::vector<float> stream = MakeStream(42, 99, 2.0);
  stream.resize(chunks * chunk_samples, 0.0f);

  NetClient client;
  client.set_secret("fleet-secret");
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 2000, &error))
      << error;
  HelloInfo hello;
  ASSERT_TRUE(client.Hello(&hello, 5000, &error)) << error;
  EXPECT_EQ(hello.version, kProtocolVersion);

  ASSERT_TRUE(client.OpenSession(1, 42, 43, 10000, &error)) << error;
  for (std::size_t c = 0; c < chunks; ++c) {
    ASSERT_TRUE(client.SubmitChunk(
        1, std::span<const float>(stream.data() + c * chunk_samples,
                                  chunk_samples),
        &error))
        << error;
  }
  ASSERT_TRUE(client.SendCloseSession(1, &error)) << error;
  ASSERT_TRUE(client.WaitDone(1, 60000, &error)) << error;

  const WireSessionState& state = client.session(1);
  ASSERT_TRUE(state.closed);
  ASSERT_FALSE(state.error.has_value());
  const std::vector<float> expected =
      ExpectedShadow(model, 42, 43, stream, chunk_samples, chunks);
  ASSERT_EQ(state.shadow.size(), expected.size());
  // The handshake must be pure preamble: authenticated serving changes
  // not a single shadow sample.
  EXPECT_EQ(std::memcmp(state.shadow.data(), expected.data(),
                        expected.size() * sizeof(float)),
            0);

  const NetStatsSnapshot stats = server.StatsSnapshot();
  EXPECT_EQ(stats.auth_ok, 1u);
  EXPECT_EQ(stats.auth_rejected, 0u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  server.Stop();
}

TEST(NetAuthE2E, WrongSecretIsRejectedAndCounted) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {.secret = "fleet-secret"});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  NetClient client;
  client.set_secret("wrong-secret");
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 2000, &error))
      << error;
  HelloInfo hello;
  EXPECT_FALSE(client.Hello(&hello, 5000, &error));
  EXPECT_TRUE(client.auth_rejected());
  ASSERT_TRUE(client.connection_error().has_value());
  EXPECT_EQ(client.connection_error()->category,
            static_cast<std::uint32_t>(
                runtime::ErrorCategory::kAuthRejected));

  const NetStatsSnapshot stats = server.StatsSnapshot();
  EXPECT_EQ(stats.auth_ok, 0u);
  EXPECT_EQ(stats.auth_rejected, 1u);
  EXPECT_EQ(stats.sessions_opened, 0u);
  server.Stop();
}

TEST(NetAuthE2E, RedialAfterRejectStartsFreshHandshake) {
  // Regression: Connect() must reset per-connection handshake state
  // (hello_info_, connection_error_, auth_rejected_). The router's
  // status prober reuses one NetClient across redials; stale state from
  // a failed attempt would otherwise fail — or skip — every later
  // handshake, freezing saturation tracking on a dead verdict.
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {.secret = "fleet-secret"});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  NetClient client;
  client.set_secret("wrong-secret");
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 2000, &error))
      << error;
  HelloInfo hello;
  ASSERT_FALSE(client.Hello(&hello, 5000, &error));
  ASSERT_TRUE(client.auth_rejected());

  client.set_secret("fleet-secret");
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 2000, &error))
      << error;
  EXPECT_FALSE(client.auth_rejected());
  EXPECT_FALSE(client.connection_error().has_value());
  EXPECT_FALSE(client.hello_info().has_value());
  ASSERT_TRUE(client.Hello(&hello, 5000, &error)) << error;
  EXPECT_EQ(hello.version, kProtocolVersion);
  // The redialed connection is fully usable: the post-hello status poll
  // (exactly the prober's sequence) must round-trip.
  ShardStatusPayload status;
  EXPECT_TRUE(client.QueryStatus(&status, 5000, &error)) << error;
  server.Stop();
}

TEST(NetAuthE2E, MissingSecretFailsAsAuthNotTimeout) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {.secret = "fleet-secret"});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  NetClient client;  // no secret set
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 2000, &error))
      << error;
  HelloInfo hello;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.Hello(&hello, 5000, &error));
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  // The challenge is answerable immediately ("I can't") — credential
  // failures must not masquerade as timeouts.
  EXPECT_LT(waited_ms, 2000.0);
  EXPECT_TRUE(client.auth_rejected());
  server.Stop();
}

TEST(NetAuthE2E, UnauthenticatedFramesAreGated) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {.secret = "fleet-secret"});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Skip the handshake and go straight for enrollment.
  const int fd = DialTcp("127.0.0.1", server.port(), 2000, &error);
  ASSERT_GE(fd, 0) << error;
  Frame open;
  open.type = FrameType::kOpenSession;
  open.session_id = 1;
  PutU64(&open.payload, 42);
  PutU64(&open.payload, 43);
  ASSERT_TRUE(SendRawFrame(fd, open));

  Frame reply;
  ASSERT_TRUE(RecvRawFrame(fd, &reply));
  EXPECT_EQ(reply.type, FrameType::kAuthReject);
  PayloadReader reader(reply.payload);
  std::uint32_t category = 0;
  ASSERT_TRUE(reader.U32(&category));
  EXPECT_EQ(category,
            static_cast<std::uint32_t>(
                runtime::ErrorCategory::kAuthRejected));
  // kAuthReject is terminal: the connection must be closed behind it.
  std::uint8_t byte = 0;
  EXPECT_EQ(ReadFull(fd, &byte, 1, 5000), IoStatus::kClosed);
  ::close(fd);

  const NetStatsSnapshot stats = server.StatsSnapshot();
  EXPECT_EQ(stats.auth_rejected, 1u);
  EXPECT_EQ(stats.sessions_opened, 0u);
  server.Stop();
}

TEST(NetAuthE2E, ReplayedTagFromAnotherConnectionIsRejected) {
  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {.secret = "fleet-secret"});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Connection A: complete a legitimate handshake, remembering the tag.
  const int fd_a = DialTcp("127.0.0.1", server.port(), 2000, &error);
  ASSERT_GE(fd_a, 0) << error;
  ASSERT_TRUE(SendRawFrame(fd_a, MakeHello()));
  Frame challenge_a;
  ASSERT_TRUE(RecvRawFrame(fd_a, &challenge_a));
  ASSERT_EQ(challenge_a.type, FrameType::kAuthChallenge);
  PayloadReader reader_a(challenge_a.payload);
  std::uint64_t nonce_a = 0;
  ASSERT_TRUE(reader_a.U64(&nonce_a));

  Frame response_a;
  response_a.type = FrameType::kAuthResponse;
  response_a.session_id = 5;
  const std::uint64_t tag_a = AuthTag("fleet-secret", nonce_a);
  PutU64(&response_a.payload, tag_a);
  ASSERT_TRUE(SendRawFrame(fd_a, response_a));
  Frame ack_a;
  ASSERT_TRUE(RecvRawFrame(fd_a, &ack_a));
  EXPECT_EQ(ack_a.type, FrameType::kHelloAck);

  // Connection B: replay A's tag. B was issued a different nonce, so the
  // eavesdropped tag proves nothing and must be rejected.
  const int fd_b = DialTcp("127.0.0.1", server.port(), 2000, &error);
  ASSERT_GE(fd_b, 0) << error;
  ASSERT_TRUE(SendRawFrame(fd_b, MakeHello()));
  Frame challenge_b;
  ASSERT_TRUE(RecvRawFrame(fd_b, &challenge_b));
  ASSERT_EQ(challenge_b.type, FrameType::kAuthChallenge);
  PayloadReader reader_b(challenge_b.payload);
  std::uint64_t nonce_b = 0;
  ASSERT_TRUE(reader_b.U64(&nonce_b));
  EXPECT_NE(nonce_b, nonce_a);  // fresh nonce per connection

  Frame response_b = response_a;  // verbatim replay
  ASSERT_TRUE(SendRawFrame(fd_b, response_b));
  Frame reply_b;
  ASSERT_TRUE(RecvRawFrame(fd_b, &reply_b));
  EXPECT_EQ(reply_b.type, FrameType::kAuthReject);
  std::uint8_t byte = 0;
  EXPECT_EQ(ReadFull(fd_b, &byte, 1, 5000), IoStatus::kClosed);
  ::close(fd_a);
  ::close(fd_b);

  const NetStatsSnapshot stats = server.StatsSnapshot();
  EXPECT_EQ(stats.auth_ok, 1u);
  EXPECT_EQ(stats.auth_rejected, 1u);
  server.Stop();
}

// ------------------------------------------------------ router fleet e2e

/// Knobs a fleet test can turn on: shared-secret auth on every hop, and
/// router admission control (saturate_queue_depth > 0 enables it).
struct FleetOptions {
  std::string secret;
  std::uint64_t saturate_queue_depth = 0;
  std::uint64_t recover_queue_depth = 0;
  std::size_t recover_statuses = 2;
};

/// A 2-shard fleet on loopback: two SessionManagers sharing one weight
/// set (the in-test stand-in for two processes loading the same model),
/// each behind a NetServer and a /healthz endpoint, fronted by a Router.
struct Fleet {
  explicit Fleet(const SharedModel& model,
                 const FleetOptions& fleet_options = {}) {
    for (int s = 0; s < 2; ++s) {
      managers.push_back(std::make_unique<runtime::SessionManager>(
          model.selector, model.encoder, core::PipelineOptions{},
          model.ManagerOptions()));
      servers.push_back(std::make_unique<NetServer>(
          managers.back().get(),
          NetServer::Options{.secret = fleet_options.secret}));
      std::string error;
      EXPECT_TRUE(servers.back()->Start(&error)) << error;

      health.push_back(std::make_unique<obs::MetricsServer>());
      health.back()->Handle("/healthz",
                            [](const std::string&, const std::string&) {
                              obs::HttpResponse resp;
                              resp.body = "{\"status\":\"ok\"}\n";
                              return resp;
                            });
      EXPECT_TRUE(health.back()->Start({.host = "127.0.0.1", .port = 0},
                                       &error))
          << error;
    }
    Router::Options options;
    options.probe_interval_ms = 100;
    options.secret = fleet_options.secret;
    if (fleet_options.saturate_queue_depth > 0) {
      options.saturate_queue_depth = fleet_options.saturate_queue_depth;
      options.recover_queue_depth = fleet_options.recover_queue_depth;
      options.recover_statuses = fleet_options.recover_statuses;
    }
    for (int s = 0; s < 2; ++s) {
      options.shards.push_back({.host = "127.0.0.1",
                                .port = servers[s]->port(),
                                .health_port = health[s]->port()});
    }
    router = std::make_unique<Router>(std::move(options));
    std::string error;
    EXPECT_TRUE(router->Start(&error)) << error;
  }

  /// The "host:port" label DrainShard and the metrics families use.
  std::string ShardLabel(std::size_t s) const {
    return "127.0.0.1:" + std::to_string(servers[s]->port());
  }

  ~Fleet() {
    router->Stop();
    for (auto& server : servers) server->Stop();
    for (auto& h : health) h->Stop();
  }

  std::vector<std::unique_ptr<runtime::SessionManager>> managers;
  std::vector<std::unique_ptr<NetServer>> servers;
  std::vector<std::unique_ptr<obs::MetricsServer>> health;
  std::unique_ptr<Router> router;
};

TEST(RouterFleetE2E, ServesSessionsBitIdenticalAcrossTwoShards) {
// Sanitizer builds keep the same shape (2 shards, pooled streams, many
// connections) at reduced scale: on a 1-core box the full 64-session
// run under TSan lands right on the wall-clock budget (~303 s observed
// against a 300 s cap) — a flake, not a finding.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  const std::size_t kSessions = 16;
  const std::size_t kConnections = 4;
#else
  const std::size_t kSessions = 64;
  const std::size_t kConnections = 8;
#endif
  SharedModel model;
  Fleet fleet(model);

  LoadGenOptions options;
  options.endpoints = {"127.0.0.1:" + std::to_string(fleet.router->port())};
  options.sessions = kSessions;
  options.connections = kConnections;
  options.chunks_per_session = 2;
  options.stream_pool = 4;
  options.seed = 11;
  options.keep_shadows = true;
  options.max_seconds = 300.0;
  const LoadGenReport report = RunLoadGen(options);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.sessions_completed, kSessions);
  EXPECT_EQ(report.sessions_faulted, 0u);
  EXPECT_EQ(report.chunks_acked, 2u * kSessions);
  EXPECT_GT(report.chunks_per_sec, 0.0);
  EXPECT_GT(report.latency_p50_ms, 0.0);

  // Consistent hashing must actually use both shards.
  const auto statuses = fleet.router->ShardStatuses();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_GT(statuses[0].sessions_assigned_total, 0u);
  EXPECT_GT(statuses[1].sessions_assigned_total, 0u);
  EXPECT_EQ(statuses[0].sessions_assigned_total +
                statuses[1].sessions_assigned_total,
            kSessions);

  // Bit-exactness: every session's shadow equals the in-process result
  // for its (speaker_seed, ref_seed, stream) tuple — shard placement must
  // not change a single sample. One expected shadow per pool index.
  const std::size_t chunk_samples = report.chunk_samples;
  std::vector<std::vector<float>> expected(options.stream_pool);
  for (const auto& outcome : report.sessions) {
    ASSERT_TRUE(outcome.completed) << outcome.error;
    auto& want = expected[outcome.stream_index];
    if (want.empty()) {
      std::vector<float> stream =
          MakeStream(outcome.speaker_seed, options.seed + 7919 * (outcome.stream_index + 1),
                     static_cast<double>(options.chunks_per_session *
                                         chunk_samples) /
                         16000.0);
      stream.resize(options.chunks_per_session * chunk_samples, 0.0f);
      want = ExpectedShadow(model, outcome.speaker_seed, outcome.ref_seed,
                            stream, chunk_samples,
                            options.chunks_per_session);
    }
    ASSERT_EQ(outcome.shadow.size(), want.size())
        << "session " << outcome.wire_sid;
    ASSERT_EQ(std::memcmp(outcome.shadow.data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << "session " << outcome.wire_sid << " diverged";
  }
}

TEST(RouterFleetE2E, KillingOneShardFaultsOnlyItsSessions) {
  SharedModel model;
  Fleet fleet(model);

  const std::size_t kSessions = 16;
  std::string error;
  NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fleet.router->port(), 2000, &error))
      << error;
  HelloInfo hello;
  ASSERT_TRUE(client.Hello(&hello, 5000, &error)) << error;
  std::vector<float> chunk(hello.chunk_samples, 0.01f);

  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    ASSERT_TRUE(client.OpenSession(sid, 100 + sid, 200 + sid, 30000, &error))
        << error;
    ASSERT_TRUE(client.SubmitChunk(sid, chunk, &error)) << error;
  }
  // Wait until every session produced its first burst, so all are
  // genuinely live on their shard.
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    while (client.session(sid).shadow.empty()) {
      bool timed_out = false;
      ASSERT_TRUE(client.PumpOnce(30000, &timed_out, &error)) << error;
      ASSERT_FALSE(client.session(sid).error.has_value());
    }
  }

  auto statuses = fleet.router->ShardStatuses();
  const std::uint64_t on_dead_shard = statuses[0].sessions_active;
  const std::uint64_t on_live_shard = statuses[1].sessions_active;
  ASSERT_EQ(on_dead_shard + on_live_shard, kSessions);
  ASSERT_GT(on_dead_shard, 0u);
  ASSERT_GT(on_live_shard, 0u);

  // Kill shard 0 mid-run. Its TCP connections drop; the router must
  // fault exactly the sessions pinned to it — and nothing else.
  fleet.servers[0]->Stop();
  auto count_faulted = [&] {
    std::size_t n = 0;
    for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
      if (client.session(sid).error.has_value()) ++n;
    }
    return n;
  };
  while (count_faulted() < on_dead_shard) {
    bool timed_out = false;
    ASSERT_TRUE(client.PumpOnce(30000, &timed_out, &error)) << error;
    ASSERT_FALSE(timed_out) << "router never faulted the dead shard";
  }

  // Every faulted session carries the runtime taxonomy; drive the
  // survivors to an orderly close to prove the blast radius stopped at
  // the shard boundary.
  std::size_t completed = 0;
  std::size_t faulted = 0;
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    const WireSessionState& state = client.session(sid);
    if (state.error.has_value()) {
      ++faulted;
      EXPECT_EQ(state.error->category,
                static_cast<std::uint32_t>(
                    runtime::ErrorCategory::kInvariant));
      EXPECT_NE(state.error->message.find("shard"), std::string::npos);
      continue;
    }
    ASSERT_TRUE(client.SendCloseSession(sid, &error)) << error;
    ASSERT_TRUE(client.WaitDone(sid, 60000, &error)) << error;
    const WireSessionState& done = client.session(sid);
    EXPECT_FALSE(done.error.has_value())
        << "survivor session " << sid << " faulted: " << done.error->message;
    EXPECT_TRUE(done.closed);
    EXPECT_FALSE(done.shadow.empty());
    ++completed;
  }
  EXPECT_EQ(faulted, on_dead_shard);
  EXPECT_EQ(completed, on_live_shard);
}

TEST(RouterFleetE2E, DrainingReshardMigratesEverySessionWithZeroFaults) {
  SharedModel model;
  Fleet fleet(model, {.secret = "fleet-secret"});

  const std::size_t kSessions = 8;
  std::string error;
  NetClient client;
  client.set_secret("fleet-secret");
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fleet.router->port(), 2000, &error))
      << error;
  HelloInfo hello;
  ASSERT_TRUE(client.Hello(&hello, 5000, &error)) << error;

  const std::size_t chunk_samples = hello.chunk_samples;
  const std::size_t chunks = 2;
  const double seconds =
      static_cast<double>(chunks * chunk_samples) / 16000.0;

  // Each session gets its own 2-chunk stream. The first chunk plus HALF
  // of the second go in before the drain, so every migrating session
  // carries real mid-stream state: a latched modulation gain AND a
  // buffered partial-chunk tail that must cross in the snapshot.
  std::vector<std::vector<float>> streams(kSessions);
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    auto& stream = streams[sid - 1];
    stream = MakeStream(100 + sid, 900 + sid, seconds);
    stream.resize(chunks * chunk_samples, 0.0f);
    ASSERT_TRUE(client.OpenSession(sid, 100 + sid, 200 + sid, 30000, &error))
        << error;
    ASSERT_TRUE(client.SubmitChunk(
        sid, std::span<const float>(stream.data(), chunk_samples), &error))
        << error;
    ASSERT_TRUE(client.SubmitChunk(
        sid,
        std::span<const float>(stream.data() + chunk_samples,
                               chunk_samples / 2),
        &error))
        << error;
  }
  // First shadow burst per session proves each is genuinely live (and
  // latched) on its shard before the drain starts.
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    while (client.session(sid).shadow.empty()) {
      bool timed_out = false;
      ASSERT_TRUE(client.PumpOnce(30000, &timed_out, &error)) << error;
      ASSERT_FALSE(client.session(sid).error.has_value());
    }
  }

  auto statuses = fleet.router->ShardStatuses();
  const std::size_t victim =
      statuses[0].sessions_active >= statuses[1].sessions_active ? 0 : 1;
  const std::uint64_t moving = statuses[victim].sessions_active;
  ASSERT_GT(moving, 0u);
  ASSERT_EQ(statuses[0].sessions_active + statuses[1].sessions_active,
            kSessions);

  std::string drain_error;
  EXPECT_FALSE(fleet.router->DrainShard("127.0.0.1:1", &drain_error));
  EXPECT_NE(drain_error.find("unknown shard"), std::string::npos);
  ASSERT_TRUE(fleet.router->DrainShard(fleet.ShardLabel(victim), &error))
      << error;
  // Idempotent: a second drain of the same shard is a no-op, not an error.
  ASSERT_TRUE(fleet.router->DrainShard(fleet.ShardLabel(victim), &error));

  // The drain quiesces each session, snapshots it, and restores it on
  // the survivor — all while the client keeps pumping. Zero faults.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    statuses = fleet.router->ShardStatuses();
    if (statuses[victim].drained) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "drain never completed";
    bool timed_out = false;
    ASSERT_TRUE(client.PumpOnce(50, &timed_out, &error)) << error;
  }
  EXPECT_TRUE(statuses[victim].draining);
  EXPECT_EQ(statuses[victim].sessions_active, 0u);
  EXPECT_EQ(statuses[victim].sessions_migrated, moving);
  EXPECT_EQ(fleet.router->StatsSnapshot().sessions_migrated, moving);
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    EXPECT_FALSE(client.session(sid).error.has_value())
        << "session " << sid << " faulted during drain: "
        << client.session(sid).error->message;
  }

  // Finish every stream across the migration boundary and compare
  // against the single-manager reference: migration must not change a
  // single sample.
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    const auto& stream = streams[sid - 1];
    ASSERT_TRUE(client.SubmitChunk(
        sid,
        std::span<const float>(
            stream.data() + chunk_samples + chunk_samples / 2,
            chunk_samples - chunk_samples / 2),
        &error))
        << error;
    ASSERT_TRUE(client.SendCloseSession(sid, &error)) << error;
  }
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    const auto& stream = streams[sid - 1];
    ASSERT_TRUE(client.WaitDone(sid, 120000, &error)) << error;
    const WireSessionState& state = client.session(sid);
    ASSERT_TRUE(state.closed);
    ASSERT_FALSE(state.error.has_value())
        << "session " << sid << ": " << state.error->message;
    const std::vector<float> expected = ExpectedShadow(
        model, 100 + sid, 200 + sid, stream, chunk_samples, chunks);
    ASSERT_EQ(state.shadow.size(), expected.size()) << "session " << sid;
    ASSERT_EQ(std::memcmp(state.shadow.data(), expected.data(),
                          expected.size() * sizeof(float)),
              0)
        << "session " << sid << " diverged across migration";
  }
  EXPECT_EQ(fleet.router->StatsSnapshot().sessions_faulted, 0u);
}

TEST(RouterFleetE2E, SaturatedShardShedsTypedOverloadThenRecovers) {
  SharedModel model;
  Fleet fleet(model, {.secret = "",
                      .saturate_queue_depth = 8,
                      .recover_queue_depth = 0,
                      .recover_statuses = 2});

  std::string error;
  NetClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", fleet.router->port(), 2000, &error))
      << error;
  HelloInfo hello;
  ASSERT_TRUE(client.Hello(&hello, 5000, &error)) << error;

  auto wait_for_saturated = [&](std::size_t s, bool want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      if (fleet.router->ShardStatuses()[s].saturated == want) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };

  // Saturate shard 0 only: placement must route around it, not shed.
  fleet.servers[0]->set_status_depth_override(64);
  ASSERT_TRUE(wait_for_saturated(0, true));
  EXPECT_FALSE(fleet.router->ShardStatuses()[1].saturated);
  for (std::uint64_t sid = 1; sid <= 4; ++sid) {
    ASSERT_TRUE(client.OpenSession(sid, 100 + sid, 200 + sid, 60000, &error))
        << error;
  }
  auto statuses = fleet.router->ShardStatuses();
  EXPECT_EQ(statuses[0].sessions_active, 0u);
  EXPECT_EQ(statuses[1].sessions_active, 4u);

  // Saturate the whole fleet: a new open is shed IMMEDIATELY with a
  // typed kOverload — no buffering toward a shard that already said no.
  fleet.servers[1]->set_status_depth_override(64);
  ASSERT_TRUE(wait_for_saturated(1, true));
  EXPECT_FALSE(client.OpenSession(99, 7, 8, 10000, &error));
  const WireSessionState& shed = client.session(99);
  ASSERT_TRUE(shed.error.has_value());
  EXPECT_EQ(shed.error->category,
            static_cast<std::uint32_t>(runtime::ErrorCategory::kOverload));
  EXPECT_NE(shed.error->message.find("saturated"), std::string::npos)
      << shed.error->message;
  EXPECT_GE(fleet.router->StatsSnapshot().overload_shed, 1u);

  // No thrash while the load report stays high: sample across several
  // probe intervals — the flag must hold steady.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_TRUE(fleet.router->ShardStatuses()[1].saturated);
  }

  // Recovery: drop shard 1's reported depth back to the truth (~0) and
  // the hysteresis readmits it after consecutive calm reports; a new
  // open then succeeds and lands there.
  fleet.servers[1]->set_status_depth_override(-1);
  ASSERT_TRUE(wait_for_saturated(1, false));
  ASSERT_TRUE(client.OpenSession(100, 7, 8, 60000, &error)) << error;
  statuses = fleet.router->ShardStatuses();
  EXPECT_EQ(statuses[1].sessions_active, 5u);
  EXPECT_EQ(statuses[0].sessions_active, 0u);
}

// ----------------------------------------------------------- obs satellite

TEST(HttpGetTimeouts, RefusedConnectionFailsFastWithDistinctMessage) {
  int port = 0;
  {
    TcpListener listener;
    std::string error;
    ASSERT_TRUE(listener.Listen("127.0.0.1", 0, &error)) << error;
    port = listener.port();
  }
  std::string body, error;
  int status = 0;
  obs::HttpGetOptions options;
  options.connect_timeout_ms = 500;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(
      obs::HttpGet("127.0.0.1", port, "/", &body, &status, &error, options));
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited_ms, 2000.0);
  EXPECT_NE(error.find("refused"), std::string::npos) << error;
}

// A submit over the wire carries its trace flow id in a kTraceContext
// frame, and the shard adopts it VERBATIM: the client's "client.submit"
// span and the shard's "shard.compute" span share one flow id, with the
// flow-begin recorded client-side and the flow-end shard-side. That
// shared id is what `necctl trace` relies on to stitch per-process rings
// into one cross-process arrow.
TEST(NetTraceE2E, WireFlowIdLinksClientSubmitToShardCompute) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Disable();
  rec.Clear();
  rec.Enable(/*ring_capacity=*/1024);

  SharedModel model;
  runtime::SessionManager manager(model.selector, model.encoder, {},
                                  model.ManagerOptions());
  NetServer server(&manager, {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::size_t chunk_samples = manager.chunk_samples();
  std::vector<float> stream = MakeStream(42, 5, 1.0);
  stream.resize(chunk_samples, 0.0f);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 2000, &error))
      << error;
  HelloInfo hello;
  ASSERT_TRUE(client.Hello(&hello, 5000, &error)) << error;
  ASSERT_TRUE(client.OpenSession(1, 42, 43, 10000, &error)) << error;
  ASSERT_TRUE(client.SubmitChunk(
      1, std::span<const float>(stream.data(), chunk_samples), &error))
      << error;
  ASSERT_TRUE(client.SendCloseSession(1, &error)) << error;
  ASSERT_TRUE(client.WaitDone(1, 60000, &error)) << error;
  server.Stop();

  const std::string json = rec.ChromeTraceJson();
  rec.Disable();
  rec.Clear();

  // The client minted exactly one flow this test; find it via the flow
  // begin it recorded, then demand the shard closed the SAME id.
  const std::size_t begin_at = json.find("\"ph\":\"s\",\"id\":");
  ASSERT_NE(begin_at, std::string::npos) << json;
  const std::uint64_t flow = std::strtoull(
      json.c_str() + begin_at + std::strlen("\"ph\":\"s\",\"id\":"), nullptr,
      10);
  ASSERT_NE(flow, 0u);
  const std::string id_tag = ",\"id\":" + std::to_string(flow);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\"" + id_tag),
            std::string::npos)
      << json;

  // Both endpoint spans carry the shared flow id.
  const auto span_has_flow = [&](const char* name) {
    const std::size_t at = json.find("\"name\":\"" + std::string(name) + "\"");
    if (at == std::string::npos) return false;
    const std::size_t end = json.find('\n', at);
    return json.substr(at, end - at).find(id_tag) != std::string::npos;
  };
  EXPECT_TRUE(span_has_flow("client.submit")) << json;
  EXPECT_TRUE(span_has_flow("shard.compute")) << json;
}

}  // namespace
}  // namespace nec::net
