// Tests for the ultrasonic emitter directivity model (§VII discussion).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/directivity.h"
#include "channel/scene.h"

namespace nec::channel {
namespace {

TEST(Directivity, OnAxisIsUnity) {
  const DirectivityPattern p = DirectivityPattern::VifaLike();
  EXPECT_NEAR(p.GainAt(0.0), 1.0, 1e-9);
}

TEST(Directivity, MinusThreeDbAtHalfBeamwidth) {
  const DirectivityPattern p{.beamwidth_deg = 60.0,
                             .back_attenuation_db = 20.0};
  const double g = p.GainAt(30.0);
  EXPECT_NEAR(20.0 * std::log10(g), -3.0, 0.3);
}

TEST(Directivity, BackAttenuationAt180) {
  const DirectivityPattern p{.beamwidth_deg = 60.0,
                             .back_attenuation_db = 22.0};
  EXPECT_NEAR(20.0 * std::log10(p.GainAt(180.0)), -22.0, 0.3);
}

TEST(Directivity, MonotonicallyDecreasing) {
  const DirectivityPattern p = DirectivityPattern::VifaLike();
  double prev = 2.0;
  for (double a = 0.0; a <= 180.0; a += 10.0) {
    const double g = p.GainAt(a);
    EXPECT_LE(g, prev + 1e-12) << "angle " << a;
    prev = g;
  }
}

TEST(Directivity, SymmetricInAngleSign) {
  const DirectivityPattern p = DirectivityPattern::VifaLike();
  EXPECT_DOUBLE_EQ(p.GainAt(45.0), p.GainAt(-45.0));
}

TEST(Directivity, OmniIsFlat) {
  const DirectivityPattern p = DirectivityPattern::Omni();
  for (double a : {0.0, 90.0, 180.0}) {
    EXPECT_DOUBLE_EQ(p.GainAt(a), 1.0);
  }
}

TEST(Directivity, SceneAppliesPattern) {
  // The §VII feedback-avoidance claim: a monitor behind the emitter
  // receives the shadow strongly attenuated relative to a recorder in
  // front.
  SceneSimulator sim;
  audio::Waveform carrier(kAirSampleRate, std::size_t{kAirSampleRate / 10});
  for (std::size_t i = 0; i < carrier.size(); ++i) {
    carrier[i] = static_cast<float>(
        0.5 * std::sin(2.0 * std::numbers::pi * 27000.0 * i /
                       kAirSampleRate));
  }
  const DirectivityPattern vifa = DirectivityPattern::VifaLike();
  const auto front = sim.RenderIncident(
      {}, {{.wave = &carrier, .distance_m = 1.0, .spl_at_ref_db = 110.0,
            .carrier_hz = 27000.0, .emitter_angle_deg = 0.0,
            .directivity = vifa}});
  const auto back = sim.RenderIncident(
      {}, {{.wave = &carrier, .distance_m = 1.0, .spl_at_ref_db = 110.0,
            .carrier_hz = 27000.0, .emitter_angle_deg = 180.0,
            .directivity = vifa}});
  const double ratio_db = 20.0 * std::log10(back.Rms() / front.Rms());
  EXPECT_NEAR(ratio_db, -22.0, 1.0);
}

}  // namespace
}  // namespace nec::channel
