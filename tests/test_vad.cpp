// Tests for the target-activity detector (emitter gating).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/vad.h"
#include "synth/dataset.h"
#include "synth/noise.h"

namespace nec::core {
namespace {

class VadTest : public ::testing::Test {
 protected:
  VadTest()
      : detector_(NecConfig::Fast()),
        builder_({.duration_s = 2.0}),
        spks_(synth::DatasetBuilder::MakeSpeakers(2, 9090)) {
    detector_.Enroll(builder_.MakeReferenceAudios(spks_[0], 3, 1));
  }

  TargetActivityDetector detector_;
  synth::DatasetBuilder builder_;
  std::vector<synth::SpeakerProfile> spks_;
};

TEST_F(VadTest, RequiresEnrollment) {
  TargetActivityDetector fresh(NecConfig::Fast());
  EXPECT_FALSE(fresh.enrolled());
  audio::Waveform chunk(16000, std::size_t{8000});
  EXPECT_THROW(fresh.IsTargetActive(chunk), nec::CheckError);
}

TEST_F(VadTest, SilenceIsInactive) {
  audio::Waveform silence(16000, std::size_t{16000});
  EXPECT_EQ(detector_.ActivityScore(silence), 0.0);
  EXPECT_FALSE(detector_.IsTargetActive(silence));
}

TEST_F(VadTest, TargetSpeechIsActive) {
  const auto utt = builder_.MakeUtterance(spks_[0], 50);
  EXPECT_TRUE(detector_.IsTargetActive(utt.wave));
  EXPECT_GT(detector_.ActivityScore(utt.wave), 0.75);
}

TEST_F(VadTest, TargetScoresAboveOtherSpeaker) {
  const auto target_utt = builder_.MakeUtterance(spks_[0], 51);
  const auto other_utt = builder_.MakeUtterance(spks_[1], 52);
  EXPECT_GT(detector_.ActivityScore(target_utt.wave),
            detector_.ActivityScore(other_utt.wave));
}

TEST_F(VadTest, BroadbandNoiseScoresLow) {
  const auto noise =
      synth::GenerateNoise(synth::NoiseType::kWhite, 16000, 16000, 3);
  EXPECT_LT(detector_.ActivityScore(noise),
            detector_.ActivityScore(builder_.MakeUtterance(spks_[0], 53).wave));
}

TEST_F(VadTest, ScoreIsBounded) {
  const auto utt = builder_.MakeUtterance(spks_[0], 54);
  const double score = detector_.ActivityScore(utt.wave);
  EXPECT_GE(score, -1.0);
  EXPECT_LE(score, 1.0 + 1e-9);
}

}  // namespace
}  // namespace nec::core
