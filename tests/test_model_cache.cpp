// Tests for the trained-model disk cache.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/model_cache.h"

namespace nec::core {
namespace {

NecConfig TinyConfig() {
  NecConfig cfg;
  cfg.stft = {.fft_size = 64, .win_length = 64, .hop_length = 32};
  cfg.conv_channels = 4;
  cfg.fc_hidden = 16;
  cfg.embedding_dim = 12;
  return cfg;
}

TrainerOptions TinyOptions() {
  TrainerOptions opt;
  opt.steps = 6;
  opt.num_speakers = 2;
  opt.instances_per_speaker = 2;
  opt.crop_s = 0.4;
  opt.seed = 321;
  return opt;
}

class ModelCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "nec_cache_test")
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  std::string dir_;
};

TEST_F(ModelCacheTest, TrainsOnceThenLoads) {
  const NecConfig cfg = TinyConfig();
  encoder::LasEncoder enc(cfg.embedding_dim);
  const TrainerOptions opt = TinyOptions();

  EXPECT_TRUE(std::filesystem::is_empty(dir_));
  Selector first = GetOrTrainSelector(cfg, enc, opt, dir_);
  // Exactly one cached model file appeared.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir_)) {
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // Second call loads the identical weights.
  Selector second = GetOrTrainSelector(cfg, enc, opt, dir_);
  auto pa = first.Params();
  auto pb = second.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

TEST_F(ModelCacheTest, DifferentOptionsGetDifferentCacheEntries) {
  const NecConfig cfg = TinyConfig();
  encoder::LasEncoder enc(cfg.embedding_dim);
  TrainerOptions a = TinyOptions();
  TrainerOptions b = TinyOptions();
  b.steps = 7;
  GetOrTrainSelector(cfg, enc, a, dir_);
  GetOrTrainSelector(cfg, enc, b, dir_);
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir_)) {
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

TEST(ModelCache, DefaultCacheDirIsCreated) {
  const std::string dir = DefaultCacheDir();
  EXPECT_TRUE(std::filesystem::exists(dir));
}

}  // namespace
}  // namespace nec::core
