// Fault-tolerance stress suite for nec::runtime (DESIGN.md §5f).
//
// Drives every containment path with the deterministic FaultInjector:
// per-session error containment (one poisoned session, seven bit-exact
// survivors), poisoned batch bisection, typed Submit errors
// (overload / bad input), the deadline-watchdog degradation ladder with
// recovery probes, and ContinuousBatcher purge-under-fault. Runs under TSan in
// tools/check.sh — the containment machinery must be race-free, not just
// correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.h"
#include "core/streaming.h"
#include "runtime/batcher.h"
#include "runtime/fault.h"
#include "runtime/session_manager.h"
#include "runtime/stats.h"
#include "synth/dataset.h"

namespace nec::runtime {
namespace {

// ---------------------------------------------------------- FaultInjector

TEST(FaultInjector, DisarmedIsCompletelyInert) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(injector.OnSite("strand.chunk", 7));
    EXPECT_FALSE(injector.SaturateAt("pool.submit", 7));
  }
  EXPECT_EQ(injector.injections("strand.chunk"), 0u);
}

TEST(FaultInjector, ThrowCarriesCategoryAndHonorsSkipAndLimit) {
  FaultInjector injector;
  injector.Arm("site", {.kind = FaultInjector::Kind::kThrow,
                        .category = ErrorCategory::kDeadlineMiss,
                        .skip_first = 2,
                        .limit = 3});
  int thrown = 0;
  for (int hit = 0; hit < 10; ++hit) {
    try {
      injector.OnSite("site");
    } catch (const InjectedFault& f) {
      ++thrown;
      EXPECT_EQ(f.category(), ErrorCategory::kDeadlineMiss);
      // skip_first lets hits 0 and 1 pass; limit stops after 3 throws.
      EXPECT_GE(hit, 2);
      EXPECT_LT(hit, 5);
    }
  }
  EXPECT_EQ(thrown, 3);
  EXPECT_EQ(injector.injections("site"), 3u);
  injector.DisarmAll();
  EXPECT_FALSE(injector.armed());
  EXPECT_NO_THROW(injector.OnSite("site"));
}

TEST(FaultInjector, KeyFilterTargetsOneSessionOnly) {
  FaultInjector injector;
  injector.Arm("site", {.kind = FaultInjector::Kind::kThrow, .key = 3});
  for (std::uint64_t key = 0; key < 8; ++key) {
    if (key == 3) {
      EXPECT_THROW(injector.OnSite("site", key), InjectedFault);
    } else {
      EXPECT_NO_THROW(injector.OnSite("site", key));
    }
  }
  EXPECT_EQ(injector.injections("site"), 1u);  // only the key-3 hit fired
}

TEST(FaultInjector, SeededProbabilityIsReproducible) {
  const auto pattern = [](std::uint64_t seed) {
    FaultInjector injector;
    injector.Arm("site",
                 {.kind = FaultInjector::Kind::kThrow, .probability = 0.3},
                 seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      try {
        injector.OnSite("site");
        fired.push_back(false);
      } catch (const InjectedFault&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  const std::vector<bool> b = pattern(42);
  EXPECT_EQ(a, b);
  // Some hits fired and some passed — the probability gate is real.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjector, SaturateFiresOnlyForSaturateSpecs) {
  FaultInjector injector;
  injector.Arm("q", {.kind = FaultInjector::Kind::kSaturate, .limit = 2});
  EXPECT_TRUE(injector.SaturateAt("q"));
  EXPECT_TRUE(injector.SaturateAt("q"));
  EXPECT_FALSE(injector.SaturateAt("q"));  // limit exhausted
  // A saturate spec never throws from OnSite.
  EXPECT_NO_THROW(injector.OnSite("q"));
}

// --------------------------------------------------------- input hygiene

TEST(SampleHygiene, ScanCountsWithoutModifying) {
  std::vector<float> samples = {0.5f,
                                std::numeric_limits<float>::quiet_NaN(),
                                -0.25f,
                                std::numeric_limits<float>::infinity(),
                                100.0f,
                                -3.9f};
  const std::vector<float> before = samples;
  const SampleScan scan = ScanSamples(samples);
  EXPECT_EQ(scan.nonfinite, 2u);
  EXPECT_EQ(scan.wild, 1u);  // -3.9 is within kWildSampleLimit
  EXPECT_FALSE(scan.clean());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Bitwise unchanged (NaN != NaN, so compare representations by scan).
    EXPECT_EQ(std::isnan(samples[i]), std::isnan(before[i]));
    if (!std::isnan(before[i])) {
      EXPECT_EQ(samples[i], before[i]);
    }
  }
}

TEST(SampleHygiene, SanitizeRepairsOnlyCorruptSamples) {
  std::vector<float> samples = {0.5f,
                                std::numeric_limits<float>::quiet_NaN(),
                                -0.25f,
                                -std::numeric_limits<float>::infinity(),
                                100.0f,
                                -77.0f};
  const SampleScan scan = SanitizeSamples(samples);
  EXPECT_EQ(scan.nonfinite, 2u);
  EXPECT_EQ(scan.wild, 2u);
  const std::vector<float> expected = {0.5f, 0.0f, -0.25f,
                                       0.0f, 1.0f, -1.0f};
  EXPECT_EQ(samples, expected);
  // A second pass finds nothing: sanitization is idempotent.
  std::vector<float> again = samples;
  EXPECT_TRUE(SanitizeSamples(again).clean());
  EXPECT_EQ(again, samples);
}

// -------------------------------------------------- SessionManager faults

core::NecConfig SmallConfig() {
  core::NecConfig cfg = core::NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  return cfg;
}

class RuntimeFaultTest : public ::testing::Test {
 protected:
  RuntimeFaultTest()
      : cfg_(SmallConfig()),
        selector_(std::make_shared<const core::Selector>(cfg_, 7)),
        encoder_(std::make_shared<encoder::LasEncoder>(cfg_.embedding_dim)),
        builder_({.duration_s = 2.5}) {
    // The injector is process-global: never let one test's armed sites
    // leak into the next.
    FaultInjector::Global().DisarmAll();
  }
  ~RuntimeFaultTest() override { FaultInjector::Global().DisarmAll(); }

  /// Sequential single-threaded reference over the same shared weights.
  audio::Waveform SequentialReference(const synth::SpeakerProfile& spk,
                                      std::uint64_t ref_seed,
                                      const audio::Waveform& stream,
                                      core::SelectorKind kind) {
    core::NecPipeline pipeline(selector_, encoder_, {});
    pipeline.Enroll(builder_.MakeReferenceAudios(spk, 3, ref_seed));
    core::StreamingProcessor seq(pipeline, 1.0, kind);
    audio::Waveform out;
    if (auto o = seq.Push(stream.samples())) out = std::move(*o);
    if (auto tail = seq.Flush()) out.Append(*tail);
    return out;
  }

  static void ExpectBitIdentical(const audio::Waveform& got,
                                 const audio::Waveform& want,
                                 const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t k = 0; k < want.size(); ++k) {
      ASSERT_EQ(got[k], want[k]) << label << " sample " << k;
    }
  }

  core::NecConfig cfg_;
  std::shared_ptr<const core::Selector> selector_;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder_;
  synth::DatasetBuilder builder_;
};

TEST_F(RuntimeFaultTest, BadInputRejectReturnsTypedErrorWithoutBuffering) {
  SessionManager manager(
      selector_, encoder_, {},
      {.workers = 1,
       .chunk_s = 1.0,
       .kind = core::SelectorKind::kLasMask,
       .fault = {.bad_input = BadInputPolicy::kReject}});
  const auto spk = synth::SpeakerProfile::FromSeed(201);
  const auto id =
      manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 211));
  audio::Waveform poisoned = builder_.MakeUtterance(spk, 221).wave;
  poisoned.data()[100] = std::numeric_limits<float>::quiet_NaN();

  const SubmitResult r = manager.Submit(id, poisoned.samples());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->category, ErrorCategory::kBadInput);
  // The rejection is a Submit verdict, not a session fault: the session
  // stays serviceable and the rejected samples were never buffered.
  EXPECT_EQ(manager.SessionStatus(id).state, SessionState::kIdle);
  manager.Drain();
  EXPECT_EQ(manager.Stats().chunks_processed, 0u);
  EXPECT_EQ(manager.Stats().bad_input_rejections, 1u);

  const audio::Waveform clean = builder_.MakeUtterance(spk, 221).wave;
  EXPECT_TRUE(manager.Submit(id, clean.samples()).ok());
  manager.Drain();
  EXPECT_EQ(manager.Stats().chunks_processed, 2u);  // 2.5 s at 1 s chunks
}

TEST_F(RuntimeFaultTest, SanitizedStreamMatchesManuallyRepairedStream) {
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 2,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kLasMask});
  const auto spk = synth::SpeakerProfile::FromSeed(202);
  const auto refs = builder_.MakeReferenceAudios(spk, 3, 212);
  const auto a = manager.CreateSession(refs);
  const auto b = manager.CreateSession(refs);

  audio::Waveform corrupt = builder_.MakeUtterance(spk, 222).wave;
  audio::Waveform repaired = corrupt;
  corrupt.data()[10] = std::numeric_limits<float>::quiet_NaN();
  repaired.data()[10] = 0.0f;
  corrupt.data()[5000] = -std::numeric_limits<float>::infinity();
  repaired.data()[5000] = 0.0f;
  corrupt.data()[9000] = 250.0f;
  repaired.data()[9000] = 1.0f;

  EXPECT_TRUE(manager.Submit(a, corrupt.samples()).ok());
  EXPECT_TRUE(manager.Submit(b, repaired.samples()).ok());
  manager.Drain();
  EXPECT_EQ(manager.Stats().samples_sanitized, 3u);

  audio::Waveform out_a = manager.TakeOutput(a);
  if (auto tail = manager.Flush(a)) out_a.Append(*tail);
  audio::Waveform out_b = manager.TakeOutput(b);
  if (auto tail = manager.Flush(b)) out_b.Append(*tail);
  // kSanitize repaired exactly the corrupt samples, so the two streams are
  // identical by the time they reach the DSP — and so is the output.
  ExpectBitIdentical(out_a, out_b, "sanitized-vs-repaired");
}

TEST_F(RuntimeFaultTest, InjectedSaturationSurfacesTypedOverloadError) {
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 1,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kLasMask});
  const auto spk = synth::SpeakerProfile::FromSeed(203);
  const auto id =
      manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 213));
  const audio::Waveform stream = builder_.MakeUtterance(spk, 223).wave;

  FaultInjector::Global().Arm(
      "pool.submit",
      {.kind = FaultInjector::Kind::kSaturate, .key = id, .limit = 1});
  const SubmitResult r = manager.Submit(id, stream.samples());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->category, ErrorCategory::kOverload);
  EXPECT_EQ(manager.Stats().dispatch_rejections, 1u);

  // kOverload's contract: the samples ARE buffered; an empty nudge
  // redispatches and nothing is lost.
  EXPECT_TRUE(manager.Submit(id, {}).ok());
  manager.Drain();
  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.chunks_processed, 2u);
  EXPECT_EQ(stats.samples_dropped, 0u);
  EXPECT_EQ(stats.faults, 0u);
}

// The acceptance scenario: 8 concurrent sessions, faults injected into
// exactly one, the other 7 bit-identical to an uninjected run; the faulted
// session reports the right category and ResetSession restores service.
TEST_F(RuntimeFaultTest, FaultIsContainedToThePoisonedSession) {
  constexpr std::size_t kSessions = 8;
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 3,
                          .queue_capacity = 64,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kLasMask});

  std::vector<synth::SpeakerProfile> speakers;
  std::vector<SessionManager::SessionId> ids;
  std::vector<audio::Waveform> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    speakers.push_back(synth::SpeakerProfile::FromSeed(300 + i));
    ids.push_back(manager.CreateSession(
        builder_.MakeReferenceAudios(speakers[i], 3, 310 + i)));
    streams.push_back(builder_.MakeUtterance(speakers[i], 320 + i).wave);
  }
  const SessionManager::SessionId victim = ids[3];
  FaultInjector::Global().Arm("strand.chunk",
                              {.kind = FaultInjector::Kind::kThrow,
                               .category = ErrorCategory::kInvariant,
                               .key = victim});

  // Interleave pieces so all strands overlap while the victim faults.
  const std::size_t piece = 3700;
  std::size_t pos = 0;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (pos >= streams[i].size()) continue;
      // Victim submits start failing once the fault lands; survivors
      // must keep succeeding.
      const SubmitResult r =
          manager.Submit(ids[i], streams[i].samples().subspan(
                                     pos, std::min(piece, streams[i].size() -
                                                              pos)));
      if (ids[i] != victim) {
        EXPECT_TRUE(r.ok());
      }
      any_left = true;
    }
    pos += piece;
  }
  manager.Drain();

  // Survivors: bit-identical to the uninjected sequential path.
  for (std::size_t i = 0; i < kSessions; ++i) {
    if (ids[i] == victim) continue;
    audio::Waveform out = manager.TakeOutput(ids[i]);
    if (auto tail = manager.Flush(ids[i])) out.Append(*tail);
    ExpectBitIdentical(out,
                       SequentialReference(speakers[i], 310 + i, streams[i],
                                           core::SelectorKind::kLasMask),
                       "survivor");
  }

  // Victim: faulted with the injected category, no output, Flush sheds.
  const SessionStatus faulted = manager.SessionStatus(victim);
  EXPECT_EQ(faulted.state, SessionState::kFaulted);
  ASSERT_TRUE(faulted.error.has_value());
  EXPECT_EQ(faulted.error->category, ErrorCategory::kInvariant);
  EXPECT_EQ(faulted.chunks_emitted, 0u);
  EXPECT_EQ(faulted.faults, 1u);
  EXPECT_FALSE(manager.Flush(victim).has_value());
  EXPECT_FALSE(manager.Submit(victim, streams[3].samples()).ok());

  RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.faults, 1u);
  EXPECT_EQ(stats.faults_by_category[static_cast<std::size_t>(
                ErrorCategory::kInvariant)],
            1u);
  EXPECT_GT(stats.samples_dropped, 0u);
  // Containment held at the session boundary — nothing escaped to the
  // pool's last-resort catch.
  EXPECT_EQ(stats.worker_exceptions, 0u);

  // Recovery: disarm, reset, and the victim serves a fresh stream with
  // output bit-identical to a from-scratch sequential run.
  FaultInjector::Global().DisarmAll();
  manager.TakeOutput(victim);
  manager.ResetSession(victim);
  EXPECT_EQ(manager.SessionStatus(victim).state, SessionState::kIdle);
  EXPECT_TRUE(manager.Submit(victim, streams[3].samples()).ok());
  manager.Drain();
  audio::Waveform out = manager.TakeOutput(victim);
  if (auto tail = manager.Flush(victim)) out.Append(*tail);
  ExpectBitIdentical(out,
                     SequentialReference(speakers[3], 313, streams[3],
                                         core::SelectorKind::kLasMask),
                     "reset victim");
  EXPECT_EQ(manager.Stats().session_resets, 1u);
}

TEST_F(RuntimeFaultTest, ErrorPolicyDegradeStepsDownAndProbesBackUp) {
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 1,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kNeural,
                          // A probe chunk that misses the deadline does not
                          // promote; this test is about error-driven
                          // degradation, so park the deadline far above what
                          // a sanitizer-slowed neural chunk can hit.
                          .deadline_ms = 600000.0,
                          .fault = {.on_error = FaultPolicy::kDegrade,
                                    .recovery_probe_chunks = 1,
                                    .max_retries = 1}});
  const auto spk = synth::SpeakerProfile::FromSeed(204);
  const auto id =
      manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 214));
  synth::DatasetBuilder long_builder({.duration_s = 4.5});
  const audio::Waveform stream = long_builder.MakeUtterance(spk, 224).wave;

  // Chunk 1: two injected throws burn the retry then force a step down to
  // the LAS rung, where the (exhausted) injector lets it emit — one clean
  // LAS chunk, which already satisfies the probe threshold of 1. Chunk 2
  // probes the neural rung, succeeds, and promotes. Chunks 3-4 are normal
  // neural.
  FaultInjector::Global().Arm(
      "strand.chunk",
      {.kind = FaultInjector::Kind::kThrow, .key = id, .limit = 2});
  EXPECT_TRUE(manager.Submit(id, stream.samples()).ok());
  manager.Drain();

  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_EQ(stats.chunk_retries, 1u);
  EXPECT_EQ(stats.degrade_steps_down, 1u);
  EXPECT_EQ(stats.degrade_steps_up, 1u);
  EXPECT_EQ(stats.chunks_processed, 4u);
  const SessionStatus status = manager.SessionStatus(id);
  EXPECT_EQ(status.state, SessionState::kIdle);
  EXPECT_EQ(status.level, DegradeLevel::kNeural);
  EXPECT_EQ(status.chunks_emitted, 4u);
  EXPECT_GT(manager.TakeOutput(id).size(), 0u);
}

TEST_F(RuntimeFaultTest, DeadlineWatchdogWalksTheLadderAndRecovers) {
  // LAS-kind session so the clean-chunk compute is far under the budget
  // even with sanitizers on: every deadline miss below is injector-driven
  // and the schedule is deterministic. Sanitizer instrumentation slows
  // the LAS probe chunk ~2-10x, so widen the budget there (same idiom as
  // StreamingTest.LatencySanity); the injected latency below must stay
  // well above the widened budget for the miss schedule to hold.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr double kBudgetMs = 1000.0;
#else
  constexpr double kBudgetMs = 150.0;
#endif
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 1,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kLasMask,
                          .deadline_ms = kBudgetMs,
                          .fault = {.degrade_on_deadline = true,
                                    .deadline_miss_threshold = 2,
                                    .recovery_probe_chunks = 2}});
  const auto spk = synth::SpeakerProfile::FromSeed(205);
  const auto id =
      manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 215));
  synth::DatasetBuilder long_builder({.duration_s = 8.0});
  const audio::Waveform stream = long_builder.MakeUtterance(spk, 225).wave;

  // Chunks 1-4 each sleep past the budget: misses 1 and 2 demote
  // LAS → silence (threshold 2); 3 and 4 miss at the floor. Chunks 5-6
  // are clean silence chunks (2 successes), so chunk 7 probes the LAS
  // rung — the injector is exhausted, the probe lands in budget, and the
  // session promotes back to its top rung for chunk 8.
  FaultInjector::Global().Arm("strand.chunk",
                              {.kind = FaultInjector::Kind::kLatency,
                               .latency_ms = kBudgetMs * 3.0,
                               .key = id,
                               .limit = 4});
  EXPECT_TRUE(manager.Submit(id, stream.samples()).ok());
  manager.Drain();

  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_GE(stats.deadline_misses, 4u);
  EXPECT_EQ(stats.degrade_steps_down, 1u);
  EXPECT_EQ(stats.degrade_steps_up, 1u);
  EXPECT_EQ(stats.chunks_processed, 8u);  // cadence survives degradation
  const SessionStatus status = manager.SessionStatus(id);
  EXPECT_EQ(status.state, SessionState::kIdle);
  EXPECT_EQ(status.level, DegradeLevel::kLasFallback);  // = top for LAS
  EXPECT_GE(status.deadline_misses, 4u);
  EXPECT_EQ(status.chunks_emitted, 8u);
}

TEST_F(RuntimeFaultTest, PoisonedBatchIsBisectedAroundTheVictim) {
  constexpr std::size_t kSessions = 4;
  // The continuous batcher has no hold window, so a multi-item batch is
  // manufactured by occupying the single dispatcher: a gate session's
  // batch sleeps inside the forward (injected latency) while the four
  // test sessions' chunks pile into their lanes; the next gather then
  // takes all four in one batch (max_batch = 4) and the bisection has a
  // real multi-item batch to split.
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 1,
                          .queue_capacity = 64,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kNeural,
                          .max_batch = kSessions,
                          .deadline_ms = 10000.0});
  ASSERT_TRUE(manager.batching_enabled());

  const auto gate_spk = synth::SpeakerProfile::FromSeed(399);
  const SessionManager::SessionId gate =
      manager.CreateSession(builder_.MakeReferenceAudios(gate_spk, 3, 409));
  const audio::Waveform gate_chunk =
      builder_.MakeUtterance(gate_spk, 419)
          .wave.Slice(0, manager.chunk_samples());

  std::vector<synth::SpeakerProfile> speakers;
  std::vector<SessionManager::SessionId> ids;
  std::vector<audio::Waveform> chunks;
  for (std::size_t i = 0; i < kSessions; ++i) {
    speakers.push_back(synth::SpeakerProfile::FromSeed(400 + i));
    ids.push_back(manager.CreateSession(
        builder_.MakeReferenceAudios(speakers[i], 3, 410 + i)));
    chunks.push_back(builder_.MakeUtterance(speakers[i], 420 + i)
                         .wave.Slice(0, manager.chunk_samples()));
  }
  const SessionManager::SessionId victim = ids[2];
  // Generous latency so the four enqueues land well inside the window
  // even under TSan/ASan slowdowns and suite-level ctest contention.
  FaultInjector::Global().Arm("batch.item",
                              {.kind = FaultInjector::Kind::kLatency,
                               .latency_ms = 3000.0,
                               .key = gate,
                               .limit = 1});
  FaultInjector::Global().Arm("batch.item",
                              {.kind = FaultInjector::Kind::kThrow,
                               .category = ErrorCategory::kInvariant,
                               .key = victim});

  EXPECT_TRUE(manager.Submit(gate, gate_chunk.samples()).ok());
  // AddBatch fires at RunBatch entry, before the injected sleep: once the
  // counter ticks, the sole dispatcher is pinned inside the gate batch.
  while (manager.Stats().batches_dispatched < 1) std::this_thread::yield();
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(manager.Submit(ids[i], chunks[i].samples()).ok());
  }
  manager.Drain();  // must return: the poisoned batch cannot stall FIFO

  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_GE(stats.batch_splits, 2u);  // 4 → 2+2 → 1+1 isolates the victim
  EXPECT_EQ(stats.faults, 1u);
  // kSessions - 1 survivors plus the gate session's chunk.
  EXPECT_EQ(stats.chunks_processed, kSessions);
  EXPECT_GE(stats.max_batch_size, kSessions);

  for (std::size_t i = 0; i < kSessions; ++i) {
    if (ids[i] == victim) continue;
    // Survivors' single chunk is bit-identical to the sequential
    // per-chunk path (no tail: the submit was exactly one chunk).
    core::NecPipeline pipeline(selector_, encoder_, {});
    pipeline.Enroll(builder_.MakeReferenceAudios(speakers[i], 3, 410 + i));
    core::StreamingProcessor seq(pipeline, 1.0,
                                 core::SelectorKind::kNeural);
    const auto want = seq.Push(chunks[i].samples());
    ASSERT_TRUE(want.has_value());
    ExpectBitIdentical(manager.TakeOutput(ids[i]), *want, "batch survivor");
  }
  const SessionStatus faulted = manager.SessionStatus(victim);
  EXPECT_EQ(faulted.state, SessionState::kFaulted);
  EXPECT_EQ(faulted.error->category, ErrorCategory::kInvariant);
  EXPECT_EQ(faulted.chunks_emitted, 0u);

  // The batcher keeps serving after the fault, and the victim recovers.
  FaultInjector::Global().DisarmAll();
  manager.ResetSession(victim);
  EXPECT_TRUE(manager.Submit(victim, chunks[2].samples()).ok());
  manager.Drain();
  EXPECT_EQ(manager.SessionStatus(victim).chunks_emitted, 1u);
  EXPECT_GT(manager.TakeOutput(victim).size(), 0u);
}

// -------------------------------------- ContinuousBatcher purge-under-fault

TEST(ContinuousBatcherFaults, PurgedSessionNeitherStallsNorReordersSurvivors) {
  // Two sessions' chunks interleave across lanes while the sole dispatch
  // thread is parked inside a gate batch; purging one session must leave
  // the survivor's items dispatching in FIFO order with no stall. Chunk
  // sizes encode identity + sequence.
  std::vector<std::pair<void*, std::size_t>> completed;
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  int gate_marker = 0;
  int a_marker = 0;
  int b_marker = 0;
  ContinuousBatcher batcher(
      {.max_batch = 8, .workers = 1},
      [&](std::vector<ContinuousBatcher::Item>&& items) {
        std::unique_lock lock(mu);
        for (const auto& it : items) {
          completed.emplace_back(it.key, it.chunk.size());
        }
        cv.notify_all();
        cv.wait(lock, [&] { return gate_open; });
      });

  // Pin the dispatcher: its batch {gate} records, then parks in the gate.
  batcher.Enqueue(&gate_marker, audio::Waveform(1000, std::size_t{1}));
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return !completed.empty(); });
  }
  batcher.Enqueue(&a_marker, audio::Waveform(1000, std::size_t{10}));
  batcher.Enqueue(&b_marker, audio::Waveform(1000, std::size_t{11}));
  batcher.Enqueue(&a_marker, audio::Waveform(1000, std::size_t{20}));
  batcher.Enqueue(&b_marker, audio::Waveform(1000, std::size_t{21}));
  batcher.Enqueue(&a_marker, audio::Waveform(1000, std::size_t{30}));
  // Session A faults while its chunks sit in its lane: purge all three.
  EXPECT_EQ(batcher.Purge(&a_marker), 3u);
  EXPECT_EQ(batcher.pending_for(&a_marker), 0u);
  EXPECT_EQ(batcher.pending_for(&b_marker), 2u);

  {
    std::lock_guard lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  batcher.Drain();  // must not hang on the purged items
  {
    std::lock_guard lock(mu);
    const std::vector<std::pair<void*, std::size_t>> want = {
        {&gate_marker, std::size_t{1}},
        {&b_marker, std::size_t{11}},
        {&b_marker, std::size_t{21}}};
    EXPECT_EQ(completed, want);
  }

  // Purging everything while nothing is pending is a harmless no-op.
  EXPECT_EQ(batcher.Purge(&b_marker), 0u);
  batcher.Shutdown();
}

}  // namespace
}  // namespace nec::runtime
