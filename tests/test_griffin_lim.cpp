// Tests for Griffin-Lim phase reconstruction.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsp/griffin_lim.h"
#include "synth/dataset.h"

namespace nec::dsp {
namespace {

const StftConfig kCfg{.fft_size = 256, .win_length = 256,
                      .hop_length = 128};

TEST(GriffinLim, ReconstructsToneMagnitude) {
  // A pure tone's magnitude surface has a trivially consistent phase;
  // Griffin-Lim must find (a) phase whose STFT magnitude matches.
  audio::Waveform tone(16000, std::size_t{8000});
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = static_cast<float>(
        0.4 * std::sin(2.0 * std::numbers::pi * 750.0 * i / 16000.0));
  }
  const Spectrogram target = Stft(tone, kCfg);
  const audio::Waveform rec =
      GriffinLim(target, kCfg, 16000, {.iterations = 40,
                                       .num_samples = tone.size()});
  const Spectrogram got = Stft(rec, kCfg);
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < target.mag().size(); ++i) {
    const double d = got.mag()[i] - target.mag()[i];
    err += d * d;
    ref += static_cast<double>(target.mag()[i]) * target.mag()[i];
  }
  EXPECT_LT(err / ref, 0.05);
}

TEST(GriffinLim, IterationsImproveConsistency) {
  synth::DatasetBuilder db({.duration_s = 0.8});
  const auto spk = synth::SpeakerProfile::FromSeed(4);
  const auto utt = db.MakeUtterance(spk, 9);
  const Spectrogram target = Stft(utt.wave, kCfg);

  auto consistency_err = [&](int iters) {
    const audio::Waveform rec = GriffinLim(
        target, kCfg, 16000,
        {.iterations = iters, .num_samples = utt.wave.size()});
    const Spectrogram got = Stft(rec, kCfg);
    double err = 0.0;
    for (std::size_t i = 0; i < target.mag().size(); ++i) {
      const double d = got.mag()[i] - target.mag()[i];
      err += d * d;
    }
    return err;
  };
  EXPECT_LT(consistency_err(25), consistency_err(1));
}

TEST(GriffinLim, HandlesSignedSurfaces) {
  // Signed magnitudes (shadow surfaces) must not crash or produce NaNs.
  synth::DatasetBuilder db({.duration_s = 0.5});
  const auto spk = synth::SpeakerProfile::FromSeed(5);
  const auto utt = db.MakeUtterance(spk, 10);
  const Spectrogram spec = Stft(utt.wave, kCfg);
  std::vector<float> signed_mag = spec.mag();
  for (std::size_t i = 0; i < signed_mag.size(); i += 3) {
    signed_mag[i] = -signed_mag[i];
  }
  const audio::Waveform rec = GriffinLim(
      signed_mag, spec.num_frames(), kCfg, 16000, {.iterations = 5});
  for (float v : rec.samples()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(rec.Rms(), 0.0f);
}

TEST(GriffinLim, ZeroPhaseInitIsDeterministic) {
  synth::DatasetBuilder db({.duration_s = 0.4});
  const auto spk = synth::SpeakerProfile::FromSeed(6);
  const auto utt = db.MakeUtterance(spk, 11);
  const Spectrogram spec = Stft(utt.wave, kCfg);
  const audio::Waveform a =
      GriffinLim(spec, kCfg, 16000, {.iterations = 3, .phase_seed = 0});
  const audio::Waveform b =
      GriffinLim(spec, kCfg, 16000, {.iterations = 3, .phase_seed = 0});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GriffinLim, RejectsShapeMismatch) {
  std::vector<float> mag(100, 0.1f);
  EXPECT_THROW(GriffinLim(mag, 7, kCfg, 16000), nec::CheckError);
}

}  // namespace
}  // namespace nec::dsp
