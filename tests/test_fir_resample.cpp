// Tests for FIR design/convolution and the polyphase resampler — the 16 kHz
// ↔ 192 kHz conversions the ultrasound channel depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsp/fir.h"
#include "dsp/resample.h"

namespace nec::dsp {
namespace {

audio::Waveform Tone(int rate, double f, double seconds) {
  audio::Waveform w(rate, static_cast<std::size_t>(rate * seconds));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(std::sin(2.0 * std::numbers::pi * f * i / rate));
  }
  return w;
}

double ToneRms(const audio::Waveform& w, std::size_t skip) {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = skip; i + skip < w.size(); ++i, ++n) {
    acc += static_cast<double>(w[i]) * w[i];
  }
  return std::sqrt(acc / std::max<std::size_t>(1, n));
}

TEST(Fir, UnitDcGain) {
  const auto taps = DesignFirLowPass(63, 2000.0, 16000.0);
  double sum = 0.0;
  for (float t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Fir, EvenTapCountBumpedToOdd) {
  const auto taps = DesignFirLowPass(64, 2000.0, 16000.0);
  EXPECT_EQ(taps.size() % 2, 1u);
}

TEST(Fir, SymmetricKernel) {
  const auto taps = DesignFirLowPass(101, 3000.0, 16000.0);
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-7);
  }
}

TEST(Fir, RejectsBadCutoff) {
  EXPECT_THROW(DesignFirLowPass(63, 9000.0, 16000.0), nec::CheckError);
  EXPECT_THROW(DesignFirLowPass(63, 0.0, 16000.0), nec::CheckError);
}

TEST(Convolve, KnownResult) {
  const std::vector<float> x = {1, 2, 3};
  const std::vector<float> h = {1, 1};
  const auto y = Convolve(x, h);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 5.0f);
  EXPECT_FLOAT_EQ(y[3], 3.0f);
}

TEST(Convolve, EmptyInputs) {
  EXPECT_TRUE(Convolve({}, std::vector<float>{1.0f}).empty());
  EXPECT_TRUE(Convolve(std::vector<float>{1.0f}, {}).empty());
}

TEST(ConvolveSame, PreservesLengthAndCentering) {
  std::vector<float> x(64, 0.0f);
  x[32] = 1.0f;  // impulse at center
  const auto taps = DesignFirLowPass(15, 4000.0, 16000.0);
  const auto y = ConvolveSame(x, taps);
  ASSERT_EQ(y.size(), x.size());
  std::size_t peak = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > y[peak]) peak = i;
  }
  EXPECT_EQ(peak, 32u);  // group delay compensated
}

TEST(Resample, IdentityRateReturnsCopy) {
  const audio::Waveform w = Tone(16000, 440.0, 0.1);
  const audio::Waveform r = Resample(w, 16000);
  ASSERT_EQ(r.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(r[i], w[i]);
}

class ResampleRateTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ResampleRateTest, TonePreservedThroughConversion) {
  const auto [src, dst] = GetParam();
  const audio::Waveform w = Tone(src, 1000.0, 0.25);
  const audio::Waveform r = Resample(w, dst);
  EXPECT_EQ(r.sample_rate(), dst);
  EXPECT_NEAR(static_cast<double>(r.size()),
              static_cast<double>(w.size()) * dst / src, 16.0);
  EXPECT_NEAR(ToneRms(r, static_cast<std::size_t>(dst) / 100),
              1.0 / std::sqrt(2.0), 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, ResampleRateTest,
    ::testing::Values(std::pair{16000, 192000}, std::pair{192000, 16000},
                      std::pair{16000, 48000}, std::pair{48000, 16000},
                      std::pair{16000, 44100}));

TEST(Resample, RoundTrip16kTo192kAndBack) {
  const audio::Waveform w = Tone(16000, 700.0, 0.3);
  const audio::Waveform up = Resample(w, 192000);
  const audio::Waveform back = Resample(up, 16000);
  // Group delay is compensated, so samples line up directly.
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 500; i + 500 < w.size() && i < back.size(); ++i) {
    const double d = back[i] - w[i];
    err += d * d;
    ref += static_cast<double>(w[i]) * w[i];
  }
  EXPECT_LT(err / ref, 1e-3);
}

TEST(Resample, DecimationRejectsAliases) {
  // A 40 kHz tone at 192 kHz must vanish when decimated to 16 kHz
  // (Nyquist 8 kHz) rather than aliasing into the audible band.
  const audio::Waveform w = Tone(192000, 40000.0, 0.1);
  const audio::Waveform down = Resample(w, 16000);
  EXPECT_LT(ToneRms(down, 200), 0.01);
}

TEST(Resample, UpsamplingAddsNoImages) {
  const audio::Waveform w = Tone(16000, 1000.0, 0.2);
  const audio::Waveform up = Resample(w, 192000);
  EXPECT_NEAR(ToneRms(up, 2000), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Resample, EmptyInput) {
  audio::Waveform w(16000, std::size_t{0});
  const audio::Waveform r = Resample(w, 48000);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.sample_rate(), 48000);
}

TEST(Resample, RejectsBadRates) {
  const audio::Waveform w = Tone(16000, 440.0, 0.05);
  EXPECT_THROW(Resample(w, 0), nec::CheckError);
  EXPECT_THROW(Resample(w, -8000), nec::CheckError);
}

}  // namespace
}  // namespace nec::dsp
