// Tests for analysis windows.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "dsp/window.h"

namespace nec::dsp {
namespace {

TEST(Window, RectangularIsAllOnes) {
  const auto w = MakeWindow(WindowType::kRectangular, 16);
  for (float v : w) EXPECT_EQ(v, 1.0f);
}

TEST(Window, HannPeriodicStartsAtZero) {
  const auto w = MakeWindow(WindowType::kHann, 64, /*periodic=*/true);
  EXPECT_NEAR(w[0], 0.0f, 1e-6);
  // Periodic Hann: w[N/2] is the peak.
  EXPECT_NEAR(w[32], 1.0f, 1e-6);
}

TEST(Window, HannSymmetricEndsAtZero) {
  const auto w = MakeWindow(WindowType::kHann, 65, /*periodic=*/false);
  EXPECT_NEAR(w[0], 0.0f, 1e-6);
  EXPECT_NEAR(w[64], 0.0f, 1e-6);
  EXPECT_NEAR(w[32], 1.0f, 1e-6);
}

TEST(Window, HammingEdgesNonZero) {
  const auto w = MakeWindow(WindowType::kHamming, 64);
  EXPECT_NEAR(w[0], 0.08f, 1e-3);
}

TEST(Window, BlackmanEdgesNearZero) {
  const auto w = MakeWindow(WindowType::kBlackman, 65, false);
  EXPECT_NEAR(w[0], 0.0f, 1e-6);
  EXPECT_NEAR(w[64], 0.0f, 1e-6);
}

TEST(Window, SymmetricWindowsAreSymmetric) {
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman}) {
    const auto w = MakeWindow(type, 33, /*periodic=*/false);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-6);
    }
  }
}

TEST(Window, HannPeriodicColaAtHalfOverlap) {
  // Periodic Hann with 50% overlap satisfies constant-overlap-add: the
  // shifted sum is constant — the property the ISTFT depends on.
  const std::size_t n = 64, hop = 32;
  const auto w = MakeWindow(WindowType::kHann, n, true);
  std::vector<double> sum(n * 4, 0.0);
  for (std::size_t start = 0; start + n <= sum.size(); start += hop) {
    for (std::size_t i = 0; i < n; ++i) sum[start + i] += w[i];
  }
  for (std::size_t i = n; i + n < sum.size(); ++i) {
    EXPECT_NEAR(sum[i], 1.0, 1e-6);
  }
}

TEST(Window, LengthOneIsUnity) {
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman, WindowType::kRectangular}) {
    const auto w = MakeWindow(type, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 1.0f);
  }
}

TEST(Window, ZeroLengthRejected) {
  EXPECT_THROW(MakeWindow(WindowType::kHann, 0), nec::CheckError);
}

}  // namespace
}  // namespace nec::dsp
