// Tests for the speaker encoders (d-vector module).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/check.h"
#include "encoder/encoder.h"
#include "synth/dataset.h"

namespace nec::encoder {
namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

class EncoderFixture : public ::testing::Test {
 protected:
  synth::DatasetBuilder builder_{{.duration_s = 2.0}};
  std::vector<synth::SpeakerProfile> speakers_ =
      synth::DatasetBuilder::MakeSpeakers(4, 777);

  audio::Waveform Utt(int spk, std::uint64_t seed) {
    return builder_.MakeUtterance(speakers_[static_cast<std::size_t>(spk)],
                                  seed)
        .wave;
  }
};

TEST_F(EncoderFixture, LasEmbeddingIsUnitNorm) {
  LasEncoder enc;
  const auto e = enc.Embed(Utt(0, 1));
  ASSERT_EQ(e.size(), enc.dim());
  double norm = 0.0;
  for (float v : e) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

TEST_F(EncoderFixture, LasIntraSpeakerBeatsInterSpeaker) {
  LasEncoder enc;
  const auto a1 = enc.Embed(Utt(0, 1));
  const auto a2 = enc.Embed(Utt(0, 2));
  const auto b1 = enc.Embed(Utt(1, 3));
  const auto c1 = enc.Embed(Utt(2, 4));
  const double intra = Cosine(a1, a2);
  const double inter = std::max(Cosine(a1, b1), Cosine(a1, c1));
  EXPECT_GT(intra, inter);
}

TEST_F(EncoderFixture, EmbedReferencesAveragesAndNormalizes) {
  LasEncoder enc;
  const std::vector<audio::Waveform> refs = {Utt(0, 10), Utt(0, 11),
                                             Utt(0, 12)};
  const auto d = enc.EmbedReferences(refs);
  double norm = 0.0;
  for (float v : d) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  // The enrolled vector is close to each individual embedding.
  for (const auto& ref : refs) {
    EXPECT_GT(Cosine(d, enc.Embed(ref)), 0.6);
  }
}

TEST_F(EncoderFixture, EmbedReferencesRejectsEmpty) {
  LasEncoder enc;
  EXPECT_THROW(enc.EmbedReferences({}), nec::CheckError);
}

TEST(LasMelFeatures, DimensionAndNormalization) {
  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(5);
  const auto utt = db.MakeUtterance(spk, 9);
  const auto f = LasMelFeatures(utt.wave, 40);
  ASSERT_EQ(f.size(), 40u);
  // Variance-normalized: RMS ≈ 1.
  double sq = 0.0;
  for (float v : f) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sq / f.size()), 1.0, 0.05);
}

TEST(LasMelFeatures, LoudnessInvariant) {
  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(6);
  auto utt = db.MakeUtterance(spk, 10);
  const auto f1 = LasMelFeatures(utt.wave, 40);
  utt.wave.Scale(0.1f);
  const auto f2 = LasMelFeatures(utt.wave, 40);
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_NEAR(f1[i], f2[i], 0.02f) << i;
  }
}

TEST_F(EncoderFixture, NeuralEncoderTrainingImprovesseparation) {
  NeuralEncoder enc({.num_mels = 40, .hidden = 32, .embedding_dim = 16});

  auto margin = [&] {
    const auto a1 = enc.Embed(Utt(0, 1));
    const auto a2 = enc.Embed(Utt(0, 2));
    const auto b1 = enc.Embed(Utt(1, 3));
    const auto b2 = enc.Embed(Utt(1, 4));
    const double intra = 0.5 * (Cosine(a1, a2) + Cosine(b1, b2));
    const double inter = 0.5 * (Cosine(a1, b1) + Cosine(a2, b2));
    return intra - inter;
  };

  const double before = margin();
  const float loss = enc.Train({.num_speakers = 8,
                                .utterances_per_speaker = 3,
                                .steps = 30,
                                .utterance_s = 1.5,
                                .seed = 21});
  const double after = margin();
  EXPECT_LT(loss, std::log(8.0));  // below chance level
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.1);
}

TEST(NeuralEncoder, SaveLoadRoundTrip) {
  NeuralEncoder enc({.num_mels = 40, .hidden = 24, .embedding_dim = 12});
  const std::string path =
      (std::filesystem::temp_directory_path() / "nec_enc_test.necm")
          .string();
  enc.Save(path);
  NeuralEncoder loaded = NeuralEncoder::Load(path);
  EXPECT_EQ(loaded.config().hidden, 24u);
  EXPECT_EQ(loaded.config().embedding_dim, 12u);

  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(8);
  const auto utt = db.MakeUtterance(spk, 3);
  const auto a = enc.Embed(utt.wave);
  const auto b = loaded.Embed(utt.wave);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(NeuralEncoder, EmbeddingIsUnitNorm) {
  NeuralEncoder enc({});
  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(9);
  const auto e = enc.Embed(db.MakeUtterance(spk, 4).wave);
  double norm = 0.0;
  for (float v : e) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

}  // namespace
}  // namespace nec::encoder
