// Tests for MFCC extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "asr/mfcc.h"
#include "dsp/stft.h"
#include "synth/dataset.h"

namespace nec::asr {
namespace {

TEST(Mfcc, ShapeMatchesConfig) {
  audio::Waveform w(16000, std::size_t{16000});
  MfccConfig cfg;
  const MfccFeatures f = ComputeMfcc(w, cfg);
  EXPECT_EQ(f.dim, cfg.num_coeffs * 2);  // with deltas
  const dsp::StftConfig stft{.fft_size = cfg.fft_size,
                             .win_length = cfg.win_length,
                             .hop_length = cfg.hop_length};
  EXPECT_EQ(f.num_frames, stft.NumFrames(w.size()));
  EXPECT_EQ(f.data.size(), f.num_frames * f.dim);
}

TEST(Mfcc, NoDeltasHalvesDim) {
  audio::Waveform w(16000, std::size_t{8000});
  MfccConfig cfg;
  cfg.append_deltas = false;
  const MfccFeatures f = ComputeMfcc(w, cfg);
  EXPECT_EQ(f.dim, cfg.num_coeffs);
}

TEST(Mfcc, CepstralMeanNormZeroesAverage) {
  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(1);
  const auto utt = db.MakeUtterance(spk, 2);
  MfccConfig cfg;
  cfg.cepstral_mean_norm = true;
  const MfccFeatures f = ComputeMfcc(utt.wave, cfg);
  // CMN is energy-gated (speech frames only); verify the mean over the
  // gated frames is zero. The gate is c0 within 7 nats of the maximum.
  float max_c0 = -1e30f;
  for (std::size_t t = 0; t < f.num_frames; ++t) {
    max_c0 = std::max(max_c0, f.frame(t)[0]);
  }
  for (std::size_t k = 0; k < cfg.num_coeffs; ++k) {
    double mean = 0.0;
    std::size_t used = 0;
    for (std::size_t t = 0; t < f.num_frames; ++t) {
      // Post-CMN c0 is shifted; the gate on normalized c0 uses the same
      // 7-nat width relative to the max.
      if (f.frame(t)[0] < max_c0 - 7.0f) continue;
      mean += f.frame(t)[k];
      ++used;
    }
    mean /= static_cast<double>(used);
    EXPECT_NEAR(mean, 0.0, 1e-3) << "coeff " << k;
  }
}

TEST(Mfcc, GainInvariantWithCmn) {
  synth::DatasetBuilder db({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(2);
  auto utt = db.MakeUtterance(spk, 3);
  const MfccFeatures a = ComputeMfcc(utt.wave);
  utt.wave.Scale(0.25f);
  const MfccFeatures b = ComputeMfcc(utt.wave);
  // With the relative log floor, c1.. are exactly gain-invariant.
  for (std::size_t t = 0; t < a.num_frames; t += 7) {
    for (std::size_t k = 1; k < 13; ++k) {
      EXPECT_NEAR(a.frame(t)[k], b.frame(t)[k], 2e-3);
    }
  }
}

TEST(Mfcc, DifferentVowelsGiveDifferentVectors) {
  // MFCCs must separate phonetic content or DTW matching cannot work.
  synth::Synthesizer synth({.sample_rate = 16000});
  const auto spk = synth::SpeakerProfile::FromSeed(3);
  const auto see = synth.SynthesizeWords(spk, {"see"}, 1);
  const auto saw = synth.SynthesizeWords(spk, {"two"}, 1);
  const MfccFeatures fa = ComputeMfcc(see.wave);
  const MfccFeatures fb = ComputeMfcc(saw.wave);
  // Compare mid-word frames.
  const float* va = fa.frame(fa.num_frames / 2);
  const float* vb = fb.frame(fb.num_frames / 2);
  double dist = 0.0;
  for (std::size_t k = 1; k < 13; ++k) {
    dist += (va[k] - vb[k]) * (va[k] - vb[k]);
  }
  EXPECT_GT(std::sqrt(dist), 0.5);
}

TEST(Mfcc, EmptyInputYieldsNoFrames) {
  audio::Waveform w(16000, std::size_t{0});
  const MfccFeatures f = ComputeMfcc(w);
  EXPECT_EQ(f.num_frames, 0u);
}

TEST(Mfcc, DeltasAreDifferences) {
  synth::DatasetBuilder db({.duration_s = 0.6});
  const auto spk = synth::SpeakerProfile::FromSeed(4);
  const auto utt = db.MakeUtterance(spk, 5);
  MfccConfig cfg;
  const MfccFeatures f = ComputeMfcc(utt.wave, cfg);
  const std::size_t base = cfg.num_coeffs;
  for (std::size_t t = 1; t + 1 < f.num_frames; t += 11) {
    for (std::size_t k = 0; k < base; k += 5) {
      const float expect =
          0.5f * (f.frame(t + 1)[k] - f.frame(t - 1)[k]);
      EXPECT_NEAR(f.frame(t)[base + k], expect, 1e-4);
    }
  }
}

}  // namespace
}  // namespace nec::asr
