// Tests for the nn::Tensor container.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/tensor.h"

namespace nec::nn {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, At2DRowMajor) {
  Tensor t({2, 3});
  t.At(1, 2) = 5.0f;
  EXPECT_EQ(t[1 * 3 + 2], 5.0f);
}

TEST(Tensor, At3DLayout) {
  Tensor t({2, 3, 4});
  t.At3(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[(1 * 3 + 2) * 4 + 3], 7.0f);
}

TEST(Tensor, FillAndScale) {
  Tensor t({4});
  t.Fill(2.0f);
  t.Scale(1.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 3.0f);
}

TEST(Tensor, AddAndAddScaled) {
  Tensor a({3}), b({3});
  a.Fill(1.0f);
  b.Fill(2.0f);
  a.Add(b);
  EXPECT_EQ(a[0], 3.0f);
  a.AddScaled(b, -0.5f);
  EXPECT_EQ(a[0], 2.0f);
}

TEST(Tensor, AddRejectsSizeMismatch) {
  Tensor a({3}), b({4});
  EXPECT_THROW(a.Add(b), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 9.0f;
  t.Reshape({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t[7], 9.0f);
}

TEST(Tensor, ReshapeRejectsWrongCount) {
  Tensor t({2, 3});
  EXPECT_THROW(t.Reshape({7}), CheckError);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(3);
  Tensor t = Tensor::Randn({10000}, rng, 0.5f);
  double mean = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    mean += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  mean /= static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sq / t.numel()), 0.5, 0.02);
}

TEST(Tensor, KaimingScalesWithFanIn) {
  Rng rng1(4), rng2(4);
  Tensor a = Tensor::KaimingNormal({1000}, rng1, 50);
  Tensor b = Tensor::KaimingNormal({1000}, rng2, 5000);
  EXPECT_GT(a.Norm(), 5.0f * b.Norm());
}

TEST(Tensor, NormOfKnownVector) {
  Tensor t({2});
  t[0] = 3.0f;
  t[1] = 4.0f;
  EXPECT_FLOAT_EQ(t.Norm(), 5.0f);
}

TEST(Tensor, EmptyRankRejected) {
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), CheckError);
}

TEST(Tensor, At4DLayout) {
  Tensor t({2, 3, 4, 5});
  t.At4(1, 2, 3, 4) = 11.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 11.0f);
  const Tensor& ct = t;
  EXPECT_EQ(ct.At4(1, 2, 3, 4), 11.0f);
}

#ifndef NDEBUG
// NEC_DCHECK bounds/rank guards compile out under -DNDEBUG (the Release
// hot path), so these contracts are only enforceable in debug builds.
TEST(Tensor, DebugAtRejectsRankMismatch) {
  Tensor t({2, 3, 4});
  EXPECT_THROW(t.At(0, 0), CheckError);     // At on rank-3
  EXPECT_THROW(t.At4(0, 0, 0, 0), CheckError);  // At4 on rank-3
  Tensor m({2, 3});
  EXPECT_THROW(m.At3(0, 0, 0), CheckError);  // At3 on rank-2
}

TEST(Tensor, DebugAtRejectsOutOfBounds) {
  Tensor t2({2, 3});
  EXPECT_THROW(t2.At(2, 0), CheckError);
  EXPECT_THROW(t2.At(0, 3), CheckError);
  Tensor t3({2, 3, 4});
  EXPECT_THROW(t3.At3(0, 3, 0), CheckError);
  EXPECT_THROW(t3.At3(0, 0, 4), CheckError);
  Tensor t4({2, 3, 4, 5});
  EXPECT_THROW(t4.At4(2, 0, 0, 0), CheckError);
  EXPECT_THROW(t4.At4(0, 0, 0, 5), CheckError);
}

TEST(Tensor, DebugAtConstOverloadsChecked) {
  const Tensor t({2, 3});
  EXPECT_THROW(t.At(2, 0), CheckError);
}
#endif  // NDEBUG

}  // namespace
}  // namespace nec::nn
