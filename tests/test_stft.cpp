// Tests for STFT / ISTFT: shapes (including the paper's configuration),
// perfect reconstruction, and the spectrogram superposition property the
// NEC training objective relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/stft.h"

namespace nec::dsp {
namespace {

audio::Waveform RandomWave(int rate, std::size_t n, std::uint64_t seed) {
  nec::Rng rng(seed);
  audio::Waveform w(rate, n);
  for (std::size_t i = 0; i < n; ++i) w[i] = 0.3f * rng.GaussianF();
  return w;
}

TEST(StftConfig, PaperDimensions) {
  // §IV-B1: 3 s at 16 kHz = 48000 samples, FFT 1200 → 601 bins; window
  // 400, hop 160 → ~299 frames.
  StftConfig cfg{.fft_size = 1200, .win_length = 400, .hop_length = 160};
  EXPECT_EQ(cfg.num_bins(), 601u);
  const std::size_t frames = cfg.NumFrames(48000);
  EXPECT_NEAR(static_cast<double>(frames), 299.0, 2.0);
}

TEST(StftConfig, FrameCountEdgeCases) {
  StftConfig cfg{.fft_size = 256, .win_length = 256, .hop_length = 128};
  EXPECT_EQ(cfg.NumFrames(0), 0u);
  EXPECT_EQ(cfg.NumFrames(1), 1u);
  EXPECT_EQ(cfg.NumFrames(256), 1u);
  EXPECT_EQ(cfg.NumFrames(257), 2u);
}

TEST(Stft, ToneConcentratesInCorrectBin) {
  const int rate = 16000;
  audio::Waveform w(rate, std::size_t{16000});
  const double f = 1000.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(std::sin(2.0 * std::numbers::pi * f * i / rate));
  }
  StftConfig cfg{.fft_size = 512, .win_length = 400, .hop_length = 160};
  const Spectrogram spec = Stft(w, cfg);
  const std::size_t expected_bin =
      static_cast<std::size_t>(f * cfg.fft_size / rate);
  // Check an interior frame.
  const std::size_t t = spec.num_frames() / 2;
  std::size_t peak = 0;
  for (std::size_t b = 1; b < spec.num_bins(); ++b) {
    if (spec.MagAt(t, b) > spec.MagAt(t, peak)) peak = b;
  }
  EXPECT_NEAR(static_cast<double>(peak), static_cast<double>(expected_bin),
              1.0);
}

TEST(Stft, EmptyInputYieldsEmptySpectrogram) {
  audio::Waveform w(16000, std::size_t{0});
  StftConfig cfg{.fft_size = 256, .win_length = 256, .hop_length = 128};
  const Spectrogram spec = Stft(w, cfg);
  EXPECT_EQ(spec.num_frames(), 0u);
}

class StftRoundTrip : public ::testing::TestWithParam<StftConfig> {};

TEST_P(StftRoundTrip, ReconstructsOriginal) {
  const StftConfig cfg = GetParam();
  const audio::Waveform w = RandomWave(16000, 8000, cfg.fft_size);
  const Spectrogram spec = Stft(w, cfg);
  const audio::Waveform back = Istft(spec, cfg, 16000, w.size());
  ASSERT_EQ(back.size(), w.size());
  // Skip the first/last window (edge effects from missing overlap).
  for (std::size_t i = cfg.win_length; i + cfg.win_length < w.size(); ++i) {
    EXPECT_NEAR(back[i], w[i], 5e-3) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, StftRoundTrip,
    ::testing::Values(
        StftConfig{.fft_size = 256, .win_length = 256, .hop_length = 128},
        StftConfig{.fft_size = 512, .win_length = 400, .hop_length = 160},
        StftConfig{.fft_size = 1200, .win_length = 400, .hop_length = 160},
        StftConfig{.fft_size = 512, .win_length = 512, .hop_length = 128}));

TEST(Stft, SpectrogramSuperpositionApproximation) {
  // Eq. 5 footing: for uncorrelated sources the mixed magnitude is close
  // to the element-wise sum of magnitudes in the cells where one source
  // dominates; globally |S_mixed| <= |S_a| + |S_b| (triangle inequality).
  const audio::Waveform a = RandomWave(16000, 6000, 1);
  const audio::Waveform b = RandomWave(16000, 6000, 2);
  const audio::Waveform mix = audio::Mix(a, b);
  StftConfig cfg{.fft_size = 256, .win_length = 256, .hop_length = 128};
  const Spectrogram sa = Stft(a, cfg), sb = Stft(b, cfg),
                    sm = Stft(mix, cfg);
  for (std::size_t i = 0; i < sm.mag().size(); ++i) {
    EXPECT_LE(sm.mag()[i], sa.mag()[i] + sb.mag()[i] + 1e-4f);
  }
}

audio::Waveform ToneMix(std::initializer_list<double> freqs,
                        std::size_t n) {
  audio::Waveform w(16000, n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (double f : freqs) {
      v += 0.2 * std::sin(2.0 * std::numbers::pi * f * i / 16000.0);
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

TEST(Istft, SignedShadowSuperpositionCancelsInWaveDomain) {
  // The core NEC mechanism: rendering (S_bk - S_mixed) with the mixed
  // phase and adding it to the mixed waveform should land close to the
  // background waveform. Sources occupy (mostly) disjoint T-F cells, like
  // two talkers — where the background dominates a cell, the mixed phase
  // approximates the background phase and cancellation carries over to
  // the wave domain.
  const audio::Waveform bob = ToneMix({300.0, 625.0, 937.5}, 8000);
  const audio::Waveform alice = ToneMix({437.5, 750.0, 1125.0}, 8000);
  const audio::Waveform mixed = audio::Mix(bob, alice);
  StftConfig cfg{.fft_size = 256, .win_length = 256, .hop_length = 128};
  const Spectrogram sm = Stft(mixed, cfg);
  const Spectrogram sbk = Stft(alice, cfg);

  std::vector<float> shadow(sm.mag().size());
  for (std::size_t i = 0; i < shadow.size(); ++i) {
    shadow[i] = sbk.mag()[i] - sm.mag()[i];
  }
  const audio::Waveform shadow_wave =
      IstftWithPhase(shadow, sm, cfg, 16000, mixed.size());
  const audio::Waveform record = audio::Mix(mixed, shadow_wave);

  // Residual of bob in record should be much smaller than in mixed.
  double err_before = 0.0, err_after = 0.0;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const double db = mixed[i] - alice[i];
    const double da = record[i] - alice[i];
    err_before += db * db;
    err_after += da * da;
  }
  EXPECT_LT(err_after, 0.35 * err_before);
}

TEST(IstftWithPhase, RejectsShapeMismatch) {
  const audio::Waveform w = RandomWave(16000, 4000, 3);
  StftConfig cfg{.fft_size = 256, .win_length = 256, .hop_length = 128};
  const Spectrogram spec = Stft(w, cfg);
  std::vector<float> wrong(spec.mag().size() + 1, 0.0f);
  EXPECT_THROW(IstftWithPhase(wrong, spec, cfg, 16000), nec::CheckError);
}

TEST(Spectrogram, EnergyAccumulates) {
  Spectrogram s(2, 3);
  s.MagAt(0, 0) = 2.0f;
  s.MagAt(1, 2) = 3.0f;
  EXPECT_NEAR(s.Energy(), 13.0, 1e-6);
}

}  // namespace
}  // namespace nec::dsp
