// Tests for the nec::runtime concurrency layer: bounded queue backpressure,
// graceful pool shutdown, stats, and — the load-bearing property — N
// concurrent sessions producing output bit-identical to the sequential
// StreamingProcessor path while sharing one trained weight set.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/streaming.h"
#include "runtime/batcher.h"
#include "runtime/session_manager.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "runtime/work_queue.h"
#include "synth/dataset.h"

namespace nec::runtime {
namespace {

// ------------------------------------------------------------- WorkQueue

TEST(WorkQueue, FifoWithinCapacity) {
  WorkQueue<int> q(4, OverflowPolicy::kReject);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
  EXPECT_EQ(q.Pop(), std::optional<int>(3));
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(WorkQueue, RejectPolicyBouncesWhenFull) {
  WorkQueue<int> q(2, OverflowPolicy::kReject);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_FALSE(q.Push(3));
  EXPECT_FALSE(q.Push(4));
  EXPECT_EQ(q.rejected(), 2u);
  EXPECT_EQ(q.pushed(), 2u);
  // Popping frees capacity again.
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  EXPECT_TRUE(q.Push(5));
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
  EXPECT_EQ(q.Pop(), std::optional<int>(5));
}

TEST(WorkQueue, DropOldestEvictsFront) {
  WorkQueue<int> q(3, OverflowPolicy::kDropOldest);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_TRUE(q.Push(4));  // evicts 1
  EXPECT_TRUE(q.Push(5));  // evicts 2
  EXPECT_EQ(q.dropped(), 2u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), std::optional<int>(3));
  EXPECT_EQ(q.Pop(), std::optional<int>(4));
  EXPECT_EQ(q.Pop(), std::optional<int>(5));
}

TEST(WorkQueue, DropOldestHandsBackEvictedItem) {
  WorkQueue<int> q(2, OverflowPolicy::kDropOldest);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  std::optional<int> evicted;
  EXPECT_TRUE(q.Push(3, &evicted));  // evicts 1 into the out-param
  EXPECT_EQ(evicted, std::optional<int>(1));
  // Below capacity nothing is evicted and the out-param stays empty.
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
  evicted.reset();
  EXPECT_TRUE(q.Push(4, &evicted));
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(q.dropped(), 1u);
}

TEST(WorkQueue, BlockPolicyWaitsForSpace) {
  WorkQueue<int> q(1, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.Push(1));

  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // must wait until the consumer pops 1
    second_admitted.store(true);
  });

  // Give the producer a chance to park on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_admitted.load());

  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
}

TEST(WorkQueue, CloseWakesBlockedProducerAndConsumer) {
  WorkQueue<int> full(1, OverflowPolicy::kBlock);
  ASSERT_TRUE(full.Push(1));
  std::thread producer([&] { EXPECT_FALSE(full.Push(2)); });
  WorkQueue<int> empty(1, OverflowPolicy::kBlock);
  std::thread consumer([&] { EXPECT_FALSE(empty.Pop().has_value()); });

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();

  // Items admitted before Close stay poppable (graceful drain).
  EXPECT_EQ(full.Pop(), std::optional<int>(1));
  EXPECT_FALSE(full.Pop().has_value());
  EXPECT_FALSE(full.Push(3));
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool({.workers = 4, .queue_capacity = 64});
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    EXPECT_TRUE(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  pool.Shutdown();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.executed(), 100u);
}

TEST(ThreadPool, ShutdownDrainsInFlightAndQueuedWork) {
  // Slow tasks + a deep queue: Shutdown must not drop the queued backlog.
  ThreadPool pool({.workers = 2, .queue_capacity = 64});
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    }));
  }
  pool.Shutdown();  // graceful: every admitted task runs
  EXPECT_EQ(done.load(), 16);
  // After shutdown, new work is refused.
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPool, RejectPolicyShedsLoadWhenSaturated) {
  ThreadPool pool(
      {.workers = 1, .queue_capacity = 1, .policy = OverflowPolicy::kReject});
  std::atomic<bool> release{false};
  // Occupy the single worker...
  ASSERT_TRUE(pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  // ...fill the queue, then overflow it.
  bool saw_reject = false;
  for (int i = 0; i < 8; ++i) saw_reject |= !pool.Submit([] {});
  EXPECT_TRUE(saw_reject);
  EXPECT_GT(pool.rejected(), 0u);
  release.store(true);
  pool.Shutdown();
}

TEST(ThreadPool, DropOldestFiresDropCallbackForEvictedTask) {
  ThreadPool pool({.workers = 1,
                   .queue_capacity = 1,
                   .policy = OverflowPolicy::kDropOldest});
  std::atomic<bool> release{false};
  // Occupy the single worker, then wait until it has actually popped the
  // gate task so the queue is empty and the eviction order is fixed.
  ASSERT_TRUE(pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  while (pool.queue_depth() != 0) std::this_thread::yield();

  std::atomic<int> ran{0};
  std::atomic<int> dropped{0};
  const auto task = [&ran] { ran.fetch_add(1); };
  const auto on_drop = [&dropped] { dropped.fetch_add(1); };
  ASSERT_TRUE(pool.Submit(task, on_drop));  // fills the queue
  ASSERT_TRUE(pool.Submit(task, on_drop));  // evicts the first task
  // The victim's on_drop ran synchronously inside the second Submit.
  EXPECT_EQ(dropped.load(), 1);
  EXPECT_EQ(pool.dropped(), 1u);

  release.store(true);
  pool.Shutdown();
  // Exactly one of {run, on_drop} fired for each task.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(dropped.load(), 1);
}

// ----------------------------------------------------------------- Stats

TEST(LatencyHistogram, QuantilesAreOrderedAndBracketed) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i) * 0.1);
  const LatencyQuantiles q = hist.Quantiles();
  EXPECT_EQ(q.count, 1000u);
  EXPECT_LE(q.p50_ms, q.p95_ms);
  EXPECT_LE(q.p95_ms, q.p99_ms);
  EXPECT_LE(q.p99_ms, q.max_ms);
  // True p50 is 50 ms; the log-bucket estimate must be within one growth
  // factor of it.
  EXPECT_GT(q.p50_ms, 50.0 / LatencyHistogram::kGrowth / LatencyHistogram::kGrowth);
  EXPECT_LT(q.p50_ms, 50.0 * LatencyHistogram::kGrowth * LatencyHistogram::kGrowth);
  EXPECT_NEAR(q.max_ms, 100.0, 0.2);
}

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram hist;
  const LatencyQuantiles q = hist.Quantiles();
  EXPECT_EQ(q.count, 0u);
  EXPECT_EQ(q.p50_ms, 0.0);
  EXPECT_EQ(q.p99_ms, 0.0);
  EXPECT_EQ(q.max_ms, 0.0);
}

// -------------------------------------------------------- SessionManager

core::NecConfig SmallConfig() {
  core::NecConfig cfg = core::NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  return cfg;
}

class SessionManagerTest : public ::testing::Test {
 protected:
  SessionManagerTest()
      : cfg_(SmallConfig()),
        selector_(std::make_shared<const core::Selector>(cfg_, 7)),
        encoder_(std::make_shared<encoder::LasEncoder>(cfg_.embedding_dim)),
        builder_({.duration_s = 2.5}) {}

  core::NecConfig cfg_;
  std::shared_ptr<const core::Selector> selector_;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder_;
  synth::DatasetBuilder builder_;
};

TEST_F(SessionManagerTest, ConcurrentSessionsMatchSequentialBitExact) {
  constexpr std::size_t kSessions = 4;
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 3,
                          .queue_capacity = 64,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kNeural});

  std::vector<synth::SpeakerProfile> speakers;
  std::vector<SessionManager::SessionId> ids;
  std::vector<audio::Waveform> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    speakers.push_back(synth::SpeakerProfile::FromSeed(100 + i));
    const auto refs = builder_.MakeReferenceAudios(speakers[i], 3, 40 + i);
    ids.push_back(manager.CreateSession(refs));
    streams.push_back(builder_.MakeUtterance(speakers[i], 7 + i).wave);
  }

  // Interleave submissions across sessions in capture-callback-sized
  // pieces so strands genuinely overlap on the pool.
  const std::size_t piece = 3700;
  std::size_t pos = 0;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (pos >= streams[i].size()) continue;
      const std::size_t n = std::min(piece, streams[i].size() - pos);
      EXPECT_TRUE(
          manager.Submit(ids[i], streams[i].samples().subspan(pos, n))
              .ok());
      any_left = true;
    }
    pos += piece;
  }
  manager.Drain();

  for (std::size_t i = 0; i < kSessions; ++i) {
    audio::Waveform parallel_out = manager.TakeOutput(ids[i]);
    if (auto tail = manager.Flush(ids[i])) parallel_out.Append(*tail);

    // Reference: the sequential single-threaded path over a pipeline that
    // shares the very same weights.
    core::NecPipeline seq_pipeline(selector_, encoder_, {});
    seq_pipeline.Enroll(builder_.MakeReferenceAudios(speakers[i], 3, 40 + i));
    core::StreamingProcessor seq(seq_pipeline, 1.0,
                                 core::SelectorKind::kNeural);
    audio::Waveform seq_out;
    if (auto out = seq.Push(streams[i].samples())) seq_out = std::move(*out);
    if (auto tail = seq.Flush()) seq_out.Append(*tail);

    ASSERT_EQ(parallel_out.size(), seq_out.size()) << "session " << i;
    for (std::size_t k = 0; k < seq_out.size(); ++k) {
      ASSERT_EQ(parallel_out[k], seq_out[k])
          << "session " << i << " sample " << k;
    }
  }

  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.sessions, kSessions);
  // 2.5 s per stream at 1 s chunks: 2 full chunks + 1 flush tail each.
  EXPECT_EQ(stats.chunks_processed, kSessions * 3u);
  EXPECT_EQ(stats.chunk_latency.count, kSessions * 3u);
  EXPECT_GT(stats.chunk_latency.p99_ms, 0.0);
  EXPECT_EQ(stats.samples_submitted,
            static_cast<std::uint64_t>(kSessions) * streams[0].size());
}

TEST_F(SessionManagerTest, FlushRequiresIdleSession) {
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 2, .kind = core::SelectorKind::kLasMask});
  const auto spk = synth::SpeakerProfile::FromSeed(5);
  const auto id =
      manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 9));
  // Nothing submitted: Flush is legal and empty.
  manager.Drain();
  EXPECT_FALSE(manager.Flush(id).has_value());
}

TEST_F(SessionManagerTest, SharedWeightsAreActuallyShared) {
  SessionManager manager(selector_, encoder_, {}, {.workers = 2});
  const auto spk = synth::SpeakerProfile::FromSeed(6);
  manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 11));
  manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 12));
  // 1 test-local ref + 1 manager ref + 0 copies inside sessions: sessions
  // must alias the manager's selector, not clone the weights.
  EXPECT_GE(selector_.use_count(), 2);
  EXPECT_EQ(manager.num_sessions(), 2u);
}

TEST_F(SessionManagerTest, RejectBackpressureLeavesSamplesBuffered) {
  // One worker, capacity-1 queue, kReject: hammer one session from two
  // producers; rejected dispatches must not lose samples — after a final
  // successful Submit+Drain every sample is accounted for.
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 1,
                          .queue_capacity = 1,
                          .policy = OverflowPolicy::kReject,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kLasMask});
  const auto spk = synth::SpeakerProfile::FromSeed(8);
  const auto id =
      manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 21));
  const audio::Waveform stream = builder_.MakeUtterance(spk, 3).wave;

  const std::size_t piece = 2000;
  for (std::size_t pos = 0; pos < stream.size(); pos += piece) {
    const std::size_t n = std::min(piece, stream.size() - pos);
    // Result intentionally ignored: kReject may bounce the dispatch but
    // must keep the samples buffered for a later strand.
    manager.Submit(id, stream.samples().subspan(pos, n));
  }
  // Keep nudging until a dispatch lands, then drain.
  while (!manager.Submit(id, {})) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.Drain();

  audio::Waveform out = manager.TakeOutput(id);
  if (auto tail = manager.Flush(id)) out.Append(*tail);
  // 2.5 s at 1 s chunks → 3 chunks of modulated output, none lost.
  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.chunks_processed, 3u);
  EXPECT_GT(out.size(), 0u);
}

TEST_F(SessionManagerTest, DropOldestEvictionUnwedgesSession) {
  // Regression: an evicted queued strand used to leave its session's
  // `running` flag true and in_flight_ non-zero forever — the session was
  // wedged (audio never processed, Flush CHECK-failed) and Drain
  // deadlocked. Now the eviction unwinds the session: stale audio is
  // discarded, the session returns to idle, and the loss is counted.
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 1,
                          .queue_capacity = 1,
                          .policy = OverflowPolicy::kDropOldest,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kNeural});
  const auto spk_a = synth::SpeakerProfile::FromSeed(31);
  const auto spk_b = synth::SpeakerProfile::FromSeed(32);
  const auto spk_c = synth::SpeakerProfile::FromSeed(33);
  const auto a =
      manager.CreateSession(builder_.MakeReferenceAudios(spk_a, 3, 61));
  const auto b =
      manager.CreateSession(builder_.MakeReferenceAudios(spk_b, 3, 62));
  const auto c =
      manager.CreateSession(builder_.MakeReferenceAudios(spk_c, 3, 63));
  const audio::Waveform sa = builder_.MakeUtterance(spk_a, 71).wave;
  const audio::Waveform sb = builder_.MakeUtterance(spk_b, 72).wave;
  const audio::Waveform sc = builder_.MakeUtterance(spk_c, 73).wave;

  // A's strand occupies the single worker (2.5 s of neural-selector work;
  // wait until the worker has popped it so the queue is empty), B's strand
  // sits in the capacity-1 queue, and C's dispatch evicts B's.
  EXPECT_TRUE(manager.Submit(a, sa.samples()).ok());
  while (manager.Stats().queue_depth != 0) std::this_thread::yield();
  EXPECT_TRUE(manager.Submit(b, sb.samples()).ok());
  EXPECT_TRUE(manager.Submit(c, sc.samples()).ok());

  manager.Drain();  // deadlocked here before the fix
  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.dispatch_drops, 1u);
  EXPECT_EQ(stats.samples_dropped, sb.size());

  // The evicted session is idle: Flush passes its idle check (its
  // processor never saw the dropped audio) and a fresh Submit runs
  // normally.
  EXPECT_FALSE(manager.Flush(b).has_value());
  EXPECT_TRUE(manager.Submit(b, sb.samples()).ok());
  manager.Drain();
  audio::Waveform out = manager.TakeOutput(b);
  if (auto tail = manager.Flush(b)) out.Append(*tail);
  EXPECT_GT(out.size(), 0u);

  // The sessions that were not evicted processed their full streams.
  EXPECT_GT(manager.TakeOutput(a).size(), 0u);
  EXPECT_GT(manager.TakeOutput(c).size(), 0u);
}

// ------------------------------------------------------ ContinuousBatcher

/// Collects dispatched batches (as key sequences). The callback can be
/// gated shut: while closed, every dispatch thread that picks up a batch
/// records it and then parks inside the callback, so a test can stage a
/// deterministic backlog while all dispatchers are provably busy.
struct BatchRecorder {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<void*>> batches;
  bool gate_open = true;

  ContinuousBatcher::BatchFn Fn() {
    return [this](std::vector<ContinuousBatcher::Item>&& items) {
      std::vector<void*> keys;
      for (const auto& it : items) keys.push_back(it.key);
      std::unique_lock lock(mu);
      batches.push_back(std::move(keys));
      cv.notify_all();
      cv.wait(lock, [&] { return gate_open; });
    };
  }

  void CloseGate() {
    std::lock_guard lock(mu);
    gate_open = false;
  }
  void OpenGate() {
    {
      std::lock_guard lock(mu);
      gate_open = true;
    }
    cv.notify_all();
  }

  std::size_t WaitForBatches(std::size_t n) {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5),
                [&] { return batches.size() >= n; });
    return batches.size();
  }
};

audio::Waveform TinyChunk() { return audio::Waveform(16000, std::size_t{16}); }

/// Deadline `ms` milliseconds from a fixed base — tests pass explicit,
/// distinct deadlines so EDF decisions never depend on clock granularity.
std::chrono::steady_clock::time_point DeadlineIn(double ms) {
  static const auto base = std::chrono::steady_clock::now();
  return base + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

TEST(ContinuousBatcher, BatchOfOneDispatchesImmediately) {
  // The defining difference from the PR 4 coalescer: a lone ready chunk
  // must dispatch on its own, not sit out a hold window waiting for
  // company that may never come.
  BatchRecorder rec;
  int k;
  ContinuousBatcher batcher({.max_batch = 4, .workers = 1}, rec.Fn());
  batcher.Enqueue(&k, TinyChunk());
  ASSERT_EQ(rec.WaitForBatches(1), 1u);
  EXPECT_EQ(rec.batches[0], (std::vector<void*>{&k}));
  batcher.Shutdown();
}

TEST(ContinuousBatcher, BacklogCoalescesUpToMaxBatchInEdfOrder) {
  // While the single dispatcher is busy, later chunks accumulate; the next
  // gather takes up to max_batch of them, earliest deadline first.
  BatchRecorder rec;
  rec.CloseGate();
  int gate, k1, k2, k3, k4;
  ContinuousBatcher batcher({.max_batch = 3, .workers = 1}, rec.Fn());
  batcher.Enqueue(&gate, TinyChunk());
  ASSERT_EQ(rec.WaitForBatches(1), 1u);  // dispatcher parked in the gate
  batcher.EnqueueWithDeadline(&k1, TinyChunk(), DeadlineIn(10));
  batcher.EnqueueWithDeadline(&k2, TinyChunk(), DeadlineIn(20));
  batcher.EnqueueWithDeadline(&k3, TinyChunk(), DeadlineIn(30));
  batcher.EnqueueWithDeadline(&k4, TinyChunk(), DeadlineIn(40));
  rec.OpenGate();
  batcher.Drain();
  ASSERT_EQ(rec.batches.size(), 3u);
  EXPECT_EQ(rec.batches[0], (std::vector<void*>{&gate}));
  EXPECT_EQ(rec.batches[1], (std::vector<void*>{&k1, &k2, &k3}));
  EXPECT_EQ(rec.batches[2], (std::vector<void*>{&k4}));
  batcher.Shutdown();
}

TEST(ContinuousBatcher, EdfAdmitsMostUrgentLaneFirst) {
  // Admission order is deadline order, NOT enqueue order: C is enqueued
  // last but owns the tightest deadline, so it leads the next batch.
  BatchRecorder rec;
  rec.CloseGate();
  int gate, a, b, c;
  ContinuousBatcher batcher({.max_batch = 3, .workers = 1}, rec.Fn());
  batcher.Enqueue(&gate, TinyChunk());
  ASSERT_EQ(rec.WaitForBatches(1), 1u);
  batcher.EnqueueWithDeadline(&a, TinyChunk(), DeadlineIn(300));
  batcher.EnqueueWithDeadline(&b, TinyChunk(), DeadlineIn(200));
  batcher.EnqueueWithDeadline(&c, TinyChunk(), DeadlineIn(100));
  rec.OpenGate();
  batcher.Drain();
  ASSERT_EQ(rec.batches.size(), 2u);
  EXPECT_EQ(rec.batches[1], (std::vector<void*>{&c, &b, &a}));
  batcher.Shutdown();
}

TEST(ContinuousBatcher, PurgeKeepsEvictedKeyOutOfLaterBatches) {
  // Drop-oldest eviction contract: once a session is purged, none of its
  // pending chunks may land in a subsequently dispatched batch.
  BatchRecorder rec;
  rec.CloseGate();
  int gate, k1, k2, k3, k4;
  ContinuousBatcher batcher({.max_batch = 3, .workers = 1}, rec.Fn());
  batcher.Enqueue(&gate, TinyChunk());
  ASSERT_EQ(rec.WaitForBatches(1), 1u);
  batcher.EnqueueWithDeadline(&k1, TinyChunk(), DeadlineIn(10));
  batcher.EnqueueWithDeadline(&k2, TinyChunk(), DeadlineIn(20));
  EXPECT_EQ(batcher.Purge(&k1), 1u);
  batcher.EnqueueWithDeadline(&k3, TinyChunk(), DeadlineIn(30));
  batcher.EnqueueWithDeadline(&k4, TinyChunk(), DeadlineIn(40));
  rec.OpenGate();
  batcher.Drain();
  ASSERT_EQ(rec.batches.size(), 2u);
  EXPECT_EQ(rec.batches[1], (std::vector<void*>{&k2, &k3, &k4}));
  EXPECT_EQ(batcher.pending(), 0u);
  batcher.Shutdown();
}

TEST(ContinuousBatcher, PurgeWhileLaneInFlightRemovesOnlyPending) {
  // Purge a session while one of its chunks is inside a running batch:
  // the in-flight chunk completes normally, the queued ones vanish, and
  // the lane is reusable afterwards (the in-flight claim is released).
  BatchRecorder rec;
  rec.CloseGate();
  int a;
  ContinuousBatcher batcher({.max_batch = 1, .workers = 1}, rec.Fn());
  batcher.Enqueue(&a, TinyChunk());
  ASSERT_EQ(rec.WaitForBatches(1), 1u);  // a's first chunk is in flight
  batcher.Enqueue(&a, TinyChunk());
  batcher.Enqueue(&a, TinyChunk());
  EXPECT_EQ(batcher.pending_for(&a), 2u);
  EXPECT_EQ(batcher.Purge(&a), 2u);  // in-flight chunk is NOT counted
  EXPECT_EQ(batcher.pending_for(&a), 0u);
  rec.OpenGate();
  batcher.Drain();
  ASSERT_EQ(rec.batches.size(), 1u);  // purged chunks never dispatched
  // The lane still works: a fresh chunk dispatches normally.
  batcher.Enqueue(&a, TinyChunk());
  ASSERT_EQ(rec.WaitForBatches(2), 2u);
  EXPECT_EQ(rec.batches[1], (std::vector<void*>{&a}));
  batcher.Shutdown();
}

TEST(ContinuousBatcher, StealingPreservesFifoWithinEveryLane) {
  // Work-stealing stress (TSan target): 4 dispatch threads drain 4 lanes
  // fed concurrently by 4 producers. Stealing may interleave LANES any
  // way it likes, but within one lane chunks must arrive strictly in
  // enqueue order — the lane's in-flight claim serializes them even when
  // they hop between dispatch threads. Chunk sizes encode sequence
  // numbers so the callback can verify order without extra plumbing.
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kChunksPerLane = 48;
  int keys[kLanes];
  std::mutex mu;
  std::array<std::size_t, kLanes> next_seq{};
  std::size_t total = 0;
  bool order_ok = true;
  ContinuousBatcher batcher(
      {.max_batch = 2, .workers = 4},
      [&](std::vector<ContinuousBatcher::Item>&& items) {
        std::lock_guard lock(mu);
        for (const auto& it : items) {
          const std::size_t lane =
              static_cast<std::size_t>(static_cast<int*>(it.key) - keys);
          order_ok &= it.chunk.size() == next_seq[lane] + 1;
          ++next_seq[lane];
          ++total;
        }
      });
  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&batcher, &keys, lane] {
      for (std::size_t seq = 0; seq < kChunksPerLane; ++seq) {
        batcher.Enqueue(&keys[lane], audio::Waveform(16000, seq + 1));
      }
    });
  }
  for (auto& t : producers) t.join();
  batcher.Drain();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(total, kLanes * kChunksPerLane);
  for (const std::size_t seen : next_seq) {
    EXPECT_EQ(seen, kChunksPerLane);
  }
  batcher.Shutdown();
}

TEST(ContinuousBatcher, DrainWaitsOutPendingAndInFlight) {
  BatchRecorder rec;
  int k;
  ContinuousBatcher batcher({.max_batch = 4, .workers = 1}, rec.Fn());
  for (int i = 0; i < 3; ++i) batcher.Enqueue(&k, TinyChunk());
  batcher.Drain();
  EXPECT_EQ(batcher.pending(), 0u);
  std::lock_guard lock(rec.mu);
  std::size_t total = 0;
  for (const auto& b : rec.batches) total += b.size();
  EXPECT_EQ(total, 3u);
}

TEST(ContinuousBatcher, EnqueueAfterShutdownIsTypedInvariant) {
  // Regression (ISSUE 7 satellite): the failure mode must be a typed
  // CheckError — which SessionManager's classifier maps to
  // ErrorCategory::kInvariant — not a silent drop or a data race on the
  // joined dispatch threads.
  BatchRecorder rec;
  int k;
  ContinuousBatcher batcher({.max_batch = 2, .workers = 1}, rec.Fn());
  batcher.Shutdown();
  try {
    batcher.Enqueue(&k, TinyChunk());
    FAIL() << "Enqueue after Shutdown must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("Shutdown"), std::string::npos);
  }
}

// ---------------------------------------------- SessionManager (batched)

TEST_F(SessionManagerTest, BatchedSessionsMatchSequentialBitExact) {
  // The tentpole property: routing chunks through the continuous batcher
  // (one InferBatch across sessions) must leave every session's output
  // bit-identical to the sequential single-threaded path.
  constexpr std::size_t kSessions = 4;
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 2,
                          .queue_capacity = 64,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kNeural,
                          .max_batch = 4});
  ASSERT_TRUE(manager.batching_enabled());

  std::vector<synth::SpeakerProfile> speakers;
  std::vector<SessionManager::SessionId> ids;
  std::vector<audio::Waveform> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    speakers.push_back(synth::SpeakerProfile::FromSeed(200 + i));
    ids.push_back(manager.CreateSession(
        builder_.MakeReferenceAudios(speakers[i], 3, 80 + i)));
    streams.push_back(builder_.MakeUtterance(speakers[i], 17 + i).wave);
  }

  const std::size_t piece = 3700;
  std::size_t pos = 0;
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (pos >= streams[i].size()) continue;
      const std::size_t n = std::min(piece, streams[i].size() - pos);
      EXPECT_TRUE(
          manager.Submit(ids[i], streams[i].samples().subspan(pos, n))
              .ok());
      any_left = true;
    }
    pos += piece;
  }
  manager.Drain();

  for (std::size_t i = 0; i < kSessions; ++i) {
    audio::Waveform batched_out = manager.TakeOutput(ids[i]);
    if (auto tail = manager.Flush(ids[i])) batched_out.Append(*tail);

    core::NecPipeline seq_pipeline(selector_, encoder_, {});
    seq_pipeline.Enroll(builder_.MakeReferenceAudios(speakers[i], 3, 80 + i));
    core::StreamingProcessor seq(seq_pipeline, 1.0,
                                 core::SelectorKind::kNeural);
    audio::Waveform seq_out;
    if (auto out = seq.Push(streams[i].samples())) seq_out = std::move(*out);
    if (auto tail = seq.Flush()) seq_out.Append(*tail);

    ASSERT_EQ(batched_out.size(), seq_out.size()) << "session " << i;
    for (std::size_t kk = 0; kk < seq_out.size(); ++kk) {
      ASSERT_EQ(batched_out[kk], seq_out[kk])
          << "session " << i << " sample " << kk;
    }
  }

  const RuntimeStatsSnapshot stats = manager.Stats();
  // 2.5 s per stream at 1 s chunks: 2 batched chunks + 1 flush tail each.
  EXPECT_EQ(stats.chunks_processed, kSessions * 3u);
  EXPECT_EQ(stats.batched_chunks, kSessions * 2u);
  EXPECT_GT(stats.batches_dispatched, 0u);
  EXPECT_LE(stats.batches_dispatched, stats.batched_chunks);
  EXPECT_GE(stats.avg_batch_size, 1.0);
  EXPECT_LE(stats.max_batch_size, 4u);
  EXPECT_EQ(stats.queue_wait.count, kSessions * 2u);
}

TEST_F(SessionManagerTest, BatchingNotEnabledForLasOrUnitBatch) {
  // The LAS ablation has no batched forward, and max_batch = 1 means the
  // coalescer would only add latency — both keep the classic strand path.
  SessionManager las(selector_, encoder_, {},
                     {.workers = 1,
                      .kind = core::SelectorKind::kLasMask,
                      .max_batch = 8});
  EXPECT_FALSE(las.batching_enabled());
  SessionManager unit(selector_, encoder_, {},
                      {.workers = 1,
                       .kind = core::SelectorKind::kNeural,
                       .max_batch = 1});
  EXPECT_FALSE(unit.batching_enabled());
}

TEST_F(SessionManagerTest, BatchedDropOldestEvictionStress) {
  // TSan-oriented stress of the batcher under drop-oldest eviction:
  // Enqueue (strand threads), RunBatch (dispatch threads) and Purge
  // (AbandonStrand on submitter threads) race on the lanes while
  // sessions are being evicted. The invariants: no deadlock, no purged
  // chunk lands in a batch after its eviction (Purge's contract — a
  // violation shows up as a torn StreamingProcessor latch under TSan), and
  // the stats stay self-consistent.
  constexpr std::size_t kSessions = 3;
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 1,
                          .queue_capacity = 1,
                          .policy = OverflowPolicy::kDropOldest,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kNeural,
                          .max_batch = 2});
  std::vector<SessionManager::SessionId> ids;
  std::vector<audio::Waveform> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto spk = synth::SpeakerProfile::FromSeed(300 + i);
    ids.push_back(manager.CreateSession(
        builder_.MakeReferenceAudios(spk, 3, 90 + i)));
    streams.push_back(builder_.MakeUtterance(spk, 27 + i).wave);
  }

  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < kSessions; ++i) {
    producers.emplace_back([&, i] {
      const std::size_t piece = 2000;
      for (std::size_t pos = 0; pos < streams[i].size(); pos += piece) {
        const std::size_t n = std::min(piece, streams[i].size() - pos);
        manager.Submit(ids[i], streams[i].samples().subspan(pos, n));
      }
    });
  }
  for (auto& t : producers) t.join();
  manager.Drain();

  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_LE(stats.batched_chunks, stats.chunks_processed);
  if (stats.batches_dispatched > 0) {
    EXPECT_GE(stats.avg_batch_size, 1.0);
    EXPECT_LE(stats.max_batch_size, 2u);
  }
  // Every session is idle after Drain: Flush's idle check must pass even
  // for sessions whose strands were evicted mid-stream.
  for (std::size_t i = 0; i < kSessions; ++i) {
    manager.Flush(ids[i]);
    manager.TakeOutput(ids[i]);
  }
}

TEST_F(SessionManagerTest, EndToEndLatencyRecordedForEveryChunk) {
  // Honest-accounting satellite: the runtime must expose end-to-end
  // latency (ready -> complete, queue wait included) next to the
  // compute-only chunk latency. Every chunk records both, and because the
  // e2e window starts at readiness — before any queue wait — its maximum
  // can never undercut the compute maximum.
  constexpr std::size_t kSessions = 3;
  SessionManager manager(selector_, encoder_, {},
                         {.workers = 2,
                          .queue_capacity = 64,
                          .chunk_s = 1.0,
                          .kind = core::SelectorKind::kNeural,
                          .max_batch = 2});
  std::vector<SessionManager::SessionId> ids;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto spk = synth::SpeakerProfile::FromSeed(400 + i);
    ids.push_back(
        manager.CreateSession(builder_.MakeReferenceAudios(spk, 3, 95 + i)));
    ASSERT_TRUE(
        manager.Submit(ids[i], builder_.MakeUtterance(spk, 37 + i).wave.samples())
            .ok());
  }
  manager.Drain();
  for (std::size_t i = 0; i < kSessions; ++i) manager.Flush(ids[i]);

  const RuntimeStatsSnapshot stats = manager.Stats();
  EXPECT_EQ(stats.chunks_processed, kSessions * 3u);
  EXPECT_EQ(stats.e2e_latency.count, stats.chunk_latency.count);
  EXPECT_GT(stats.e2e_latency.p99_ms, 0.0);
  EXPECT_GE(stats.e2e_latency.max_ms + 1e-6, stats.chunk_latency.max_ms);
}

TEST_F(SessionManagerTest, BatchedThroughputDoesNotRegressAtEightSessions) {
  // Regression guard for the batching cliff this PR removes: the PR 4
  // coalescer's hold-the-oldest window made batched serving SLOWER than
  // unbatched at 8 sessions (0.94x with multi-second queue waits). The
  // continuous batcher has no hold window, so batched throughput must stay
  // in the unbatched ballpark or above. Noise control: ctest runs suites
  // concurrently, so each arm takes the best of three alternating trials
  // (the least-contended sample) and the floor is a loose 0.75x — any
  // return of a coalescing wait (which cost 3-10x on tiny chunks) blows
  // through it instantly.
  constexpr std::size_t kSessions = 8;
  std::vector<synth::SpeakerProfile> speakers;
  std::vector<audio::Waveform> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    speakers.push_back(synth::SpeakerProfile::FromSeed(500 + i));
    streams.push_back(builder_.MakeUtterance(speakers[i], 47 + i).wave);
  }

  const auto run = [&](std::size_t max_batch) {
    SessionManager manager(selector_, encoder_, {},
                           {.workers = 2,
                            .queue_capacity = 256,
                            .chunk_s = 1.0,
                            .kind = core::SelectorKind::kNeural,
                            .max_batch = max_batch});
    std::vector<SessionManager::SessionId> ids;
    for (std::size_t i = 0; i < kSessions; ++i) {
      ids.push_back(manager.CreateSession(
          builder_.MakeReferenceAudios(speakers[i], 3, 85 + i)));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t piece = 3700;
    std::size_t pos = 0;
    bool any_left = true;
    while (any_left) {
      any_left = false;
      for (std::size_t i = 0; i < kSessions; ++i) {
        if (pos >= streams[i].size()) continue;
        const std::size_t n = std::min(piece, streams[i].size() - pos);
        EXPECT_TRUE(
            manager.Submit(ids[i], streams[i].samples().subspan(pos, n)).ok());
        any_left = true;
      }
      pos += piece;
    }
    manager.Drain();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const RuntimeStatsSnapshot stats = manager.Stats();
    EXPECT_EQ(stats.chunks_processed, kSessions * 2u);  // 2.5 s -> 2 chunks
    return wall_s > 0.0
               ? static_cast<double>(stats.chunks_processed) / wall_s
               : 0.0;
  };

  double unbatched_cps = 0.0;
  double batched_cps = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    unbatched_cps = std::max(unbatched_cps, run(/*max_batch=*/1));
    batched_cps = std::max(batched_cps, run(/*max_batch=*/3));
  }
  ASSERT_GT(unbatched_cps, 0.0);
  EXPECT_GE(batched_cps, 0.75 * unbatched_cps)
      << "batched " << batched_cps << " chunks/s vs unbatched "
      << unbatched_cps << " — the batching cliff is back";
}

}  // namespace
}  // namespace nec::runtime
