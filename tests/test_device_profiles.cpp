// Tests for the Table III device profile table.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "channel/device_profile.h"

namespace nec::channel {
namespace {

TEST(DeviceProfiles, EightDevicesAsInTableIII) {
  EXPECT_EQ(Table3Devices().size(), 8u);
}

TEST(DeviceProfiles, PaperColumnsPreserved) {
  const DeviceProfile& moto = FindDevice("Moto Z4");
  EXPECT_EQ(moto.brand, "Motorola");
  EXPECT_EQ(moto.paper_carrier_lo_hz, 24000.0);
  EXPECT_EQ(moto.paper_carrier_hi_hz, 28000.0);
  EXPECT_EQ(moto.paper_best_carrier_hz, 28000.0);
  EXPECT_NEAR(moto.paper_max_distance_m, 3.20, 1e-9);

  const DeviceProfile& ipad = FindDevice("iPad Air 3");
  EXPECT_NEAR(ipad.paper_max_distance_m, 3.72, 1e-9);
  const DeviceProfile& iphone_x = FindDevice("iPhone X");
  EXPECT_NEAR(iphone_x.paper_max_distance_m, 0.43, 1e-9);
}

TEST(DeviceProfiles, UniqueModels) {
  std::set<std::string> names;
  for (const auto& d : Table3Devices()) names.insert(d.model);
  EXPECT_EQ(names.size(), 8u);
}

TEST(DeviceProfiles, FindRejectsUnknown) {
  EXPECT_THROW(FindDevice("Nokia 3310"), std::invalid_argument);
}

TEST(DeviceProfiles, GainPeaksAtResonance) {
  for (const auto& d : Table3Devices()) {
    const double at_res = d.UltrasoundGainAt(d.us_resonance_hz);
    EXPECT_NEAR(at_res, d.us_gain, 1e-9) << d.model;
    EXPECT_LT(d.UltrasoundGainAt(d.us_resonance_hz + 8000.0), at_res)
        << d.model;
    EXPECT_LT(d.UltrasoundGainAt(d.us_resonance_hz - 8000.0), at_res)
        << d.model;
  }
}

TEST(DeviceProfiles, BandEdgesAreRoughlyMinus10Db) {
  for (const auto& d : Table3Devices()) {
    const double edge = d.UltrasoundGainAt(d.us_resonance_hz +
                                           d.us_bandwidth_hz / 2.0);
    const double ratio_db = 20.0 * std::log10(edge / d.us_gain);
    EXPECT_NEAR(ratio_db, -10.0, 1.0) << d.model;
  }
}

TEST(DeviceProfiles, NonlinearityStrengthTracksPaperMaxDistance) {
  // The calibrated a2 * us_gain^2 "demodulation strength" must be ordered
  // like the paper's max distances — this is what bench_table3_devices
  // relies on.
  const auto& devices = Table3Devices();
  for (const auto& a : devices) {
    for (const auto& b : devices) {
      if (a.paper_max_distance_m > b.paper_max_distance_m + 0.3) {
        EXPECT_GT(a.a2 * a.us_gain * a.us_gain,
                  b.a2 * b.us_gain * b.us_gain)
            << a.model << " vs " << b.model;
      }
    }
  }
}

TEST(DeviceProfiles, ReferenceRecorderIsStronglyNonlinear) {
  const DeviceProfile ref = ReferenceRecorder();
  EXPECT_GT(ref.a2, 0.5);
  EXPECT_GT(ref.us_gain, 0.9);
}

TEST(DeviceProfiles, IdealLinearRecorderHasNoNonlinearity) {
  const DeviceProfile lin = IdealLinearRecorder();
  EXPECT_EQ(lin.a2, 0.0);
  EXPECT_EQ(lin.a3, 0.0);
  EXPECT_EQ(lin.a1, 1.0);
}

TEST(DeviceProfiles, AllCarrierBandsAreUltrasonic) {
  for (const auto& d : Table3Devices()) {
    EXPECT_GE(d.paper_carrier_lo_hz, 20000.0) << d.model;
    EXPECT_LE(d.paper_carrier_hi_hz, 32000.0) << d.model;
    EXPECT_GT(d.us_resonance_hz, 20000.0) << d.model;
  }
}

}  // namespace
}  // namespace nec::channel
