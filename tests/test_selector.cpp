// Tests for the Selector DNN: architecture contract, gradients,
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/check.h"
#include "common/rng.h"
#include "core/selector.h"
#include "nn/loss.h"

namespace nec::core {
namespace {

NecConfig TinyConfig() {
  NecConfig cfg;
  cfg.stft = {.fft_size = 64, .win_length = 64, .hop_length = 32};
  cfg.conv_channels = 4;
  cfg.fc_hidden = 16;
  cfg.embedding_dim = 8;
  return cfg;
}

nn::Tensor RandomSpec(std::size_t T, std::size_t F, std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t({T, F});
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = std::abs(rng.GaussianF(0.0f, 0.5f));
  }
  return t;
}

std::vector<float> RandomDvec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> d(dim);
  for (float& v : d) v = rng.GaussianF();
  return d;
}

TEST(Selector, OutputShapeMatchesInput) {
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  const nn::Tensor in = RandomSpec(12, cfg.num_bins(), 1);
  const nn::Tensor out =
      sel.Forward(in, RandomDvec(cfg.embedding_dim, 2), false);
  ASSERT_EQ(out.rank(), 2u);
  EXPECT_EQ(out.dim(0), 12u);
  EXPECT_EQ(out.dim(1), cfg.num_bins());
}

TEST(Selector, InferMatchesForwardBitExact) {
  // Infer is the const, cache-free twin of Forward that nec::runtime
  // sessions run concurrently on shared weights; the two paths must never
  // diverge by even one ulp.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  const auto dvec = RandomDvec(cfg.embedding_dim, 21);
  for (std::size_t T : {1u, 7u, 24u}) {
    const nn::Tensor in = RandomSpec(T, cfg.num_bins(), 90 + T);
    const nn::Tensor fwd = sel.Forward(in, dvec, false);
    const Selector& shared = sel;  // const access only, as the runtime sees it
    const nn::Tensor inf = shared.Infer(in, dvec);
    ASSERT_EQ(fwd.numel(), inf.numel());
    for (std::size_t i = 0; i < fwd.numel(); ++i) {
      ASSERT_EQ(fwd[i], inf[i]) << "T=" << T << " i=" << i;
    }
  }
}

TEST(Selector, InferWritesNoObservableState) {
  // Running Infer between a Forward and its MAC query must not disturb the
  // training-path bookkeeping.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  const auto dvec = RandomDvec(cfg.embedding_dim, 22);
  sel.Forward(RandomSpec(6, cfg.num_bins(), 70), dvec, false);
  const std::size_t macs_before = sel.LastForwardMacs();
  const Selector& shared = sel;
  shared.Infer(RandomSpec(30, cfg.num_bins(), 71), dvec);
  EXPECT_EQ(sel.LastForwardMacs(), macs_before);
}

TEST(Selector, InferBatchMatchesLoopedInferBitExact) {
  // The micro-batching coalescer (runtime/batcher.h) replaces N Infer calls
  // with one InferBatch; every session's shadow must keep its exact bits.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 61);
  const Selector& shared = sel;
  for (const std::size_t B : {1u, 2u, 7u}) {
    std::vector<nn::Tensor> mags;
    std::vector<std::vector<float>> dvecs;
    for (std::size_t b = 0; b < B; ++b) {
      mags.push_back(RandomSpec(11, cfg.num_bins(), 600 + 10 * B + b));
      dvecs.push_back(RandomDvec(cfg.embedding_dim, 900 + 10 * B + b));
    }
    std::vector<const nn::Tensor*> mag_ptrs;
    std::vector<const std::vector<float>*> dvec_ptrs;
    for (std::size_t b = 0; b < B; ++b) {
      mag_ptrs.push_back(&mags[b]);
      dvec_ptrs.push_back(&dvecs[b]);
    }
    const std::vector<nn::Tensor> batched =
        shared.InferBatch(mag_ptrs, dvec_ptrs);
    ASSERT_EQ(batched.size(), B);
    for (std::size_t b = 0; b < B; ++b) {
      const nn::Tensor one = shared.Infer(mags[b], dvecs[b]);
      ASSERT_EQ(batched[b].numel(), one.numel());
      for (std::size_t i = 0; i < one.numel(); ++i) {
        ASSERT_EQ(batched[b][i], one[i])
            << "B=" << B << " item=" << b << " i=" << i;
      }
    }
  }
}

TEST(Selector, InferBatchHandlesDistinctDvectorsPerItem) {
  // Items with different speaker conditioning must not bleed into each
  // other: item i's batched output equals its solo output even when the
  // neighbours carry very different d-vectors.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 62);
  const nn::Tensor mag = RandomSpec(8, cfg.num_bins(), 620);
  const auto d1 = RandomDvec(cfg.embedding_dim, 621);
  auto d2 = d1;
  for (float& v : d2) v = -3.0f * v;
  const std::vector<const nn::Tensor*> mags{&mag, &mag};
  const std::vector<const std::vector<float>*> dvecs{&d1, &d2};
  const auto batched = sel.InferBatch(mags, dvecs);
  const nn::Tensor solo1 = sel.Infer(mag, d1);
  const nn::Tensor solo2 = sel.Infer(mag, d2);
  double diff = 0.0;
  for (std::size_t i = 0; i < solo1.numel(); ++i) {
    ASSERT_EQ(batched[0][i], solo1[i]);
    ASSERT_EQ(batched[1][i], solo2[i]);
    diff += std::abs(static_cast<double>(solo1[i]) - solo2[i]);
  }
  EXPECT_GT(diff, 1e-3);  // the conditioning actually differed
}

TEST(Selector, InferBatchRejectsMismatchedInputs) {
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 63);
  const nn::Tensor a = RandomSpec(6, cfg.num_bins(), 630);
  const nn::Tensor b = RandomSpec(7, cfg.num_bins(), 631);  // frame mismatch
  const auto d = RandomDvec(cfg.embedding_dim, 632);
  EXPECT_THROW(sel.InferBatch({&a, &b}, {&d, &d}), nec::CheckError);
  EXPECT_THROW(sel.InferBatch({}, {}), nec::CheckError);
  EXPECT_THROW(sel.InferBatch({&a, &a}, {&d}), nec::CheckError);
}

TEST(Selector, ComputeShadowBatchMatchesLoopedComputeShadow) {
  // ComputeShadowBatch layers the per-instance gain normalization on top of
  // InferBatch; it must reproduce ComputeShadow bit-for-bit per item.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 64);
  Rng rng(640);
  std::vector<dsp::Spectrogram> specs;
  std::vector<std::vector<float>> dvecs;
  for (std::size_t b = 0; b < 3; ++b) {
    dsp::Spectrogram spec(9, cfg.num_bins());
    for (auto& m : spec.mag()) m = std::abs(rng.GaussianF(0.0f, 0.4f));
    specs.push_back(std::move(spec));
    dvecs.push_back(RandomDvec(cfg.embedding_dim, 650 + b));
  }
  std::vector<const dsp::Spectrogram*> spec_ptrs;
  std::vector<const std::vector<float>*> dvec_ptrs;
  for (std::size_t b = 0; b < 3; ++b) {
    spec_ptrs.push_back(&specs[b]);
    dvec_ptrs.push_back(&dvecs[b]);
  }
  const auto batched = sel.ComputeShadowBatch(spec_ptrs, dvec_ptrs);
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    const auto one = sel.ComputeShadow(specs[b], dvecs[b]);
    ASSERT_EQ(batched[b].size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      ASSERT_EQ(batched[b][i], one[i]) << "item=" << b << " i=" << i;
    }
  }
}

TEST(Selector, HandlesVariableFrameCounts) {
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  const auto dvec = RandomDvec(cfg.embedding_dim, 3);
  for (std::size_t T : {1u, 5u, 33u}) {
    const nn::Tensor out =
        sel.Forward(RandomSpec(T, cfg.num_bins(), T), dvec, false);
    EXPECT_EQ(out.dim(0), T);
  }
}

TEST(Selector, DvectorChangesOutput) {
  // The speaker conditioning must actually reach the output.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  const nn::Tensor in = RandomSpec(8, cfg.num_bins(), 4);
  const nn::Tensor a = sel.Forward(in, RandomDvec(cfg.embedding_dim, 5),
                                   false);
  const nn::Tensor b = sel.Forward(in, RandomDvec(cfg.embedding_dim, 6),
                                   false);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Selector, ArchitectureMatchesPaper) {
  // Fig. 7's stack: 1x7 conv, 7x1 conv, four dilated 5x5 convs, the
  // 2-channel projection conv, then two FC layers — 9 parameterized
  // layers, each with a weight and a bias.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  EXPECT_EQ(sel.Params().size(), 18u);
}

TEST(Selector, RejectsWrongInputShapes) {
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  EXPECT_THROW(sel.Forward(RandomSpec(4, cfg.num_bins() + 1, 7),
                           RandomDvec(cfg.embedding_dim, 8), false),
               nec::CheckError);
  EXPECT_THROW(sel.Forward(RandomSpec(4, cfg.num_bins(), 9),
                           RandomDvec(cfg.embedding_dim + 1, 10), false),
               nec::CheckError);
}

TEST(Selector, GradientCheckThroughWholeNetwork) {
  // Finite-difference check of dLoss/dParam for a sample of parameters,
  // through conv stack, concat and FC head.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 77);
  const nn::Tensor in = RandomSpec(5, cfg.num_bins(), 11);
  const auto dvec = RandomDvec(cfg.embedding_dim, 12);
  Rng rng(13);
  nn::Tensor probe;

  auto loss_fn = [&]() {
    const nn::Tensor out = sel.Forward(in, dvec, true);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i) acc += out[i] * probe[i];
    return static_cast<float>(acc);
  };

  // Build the probe from the first forward's shape.
  {
    const nn::Tensor out = sel.Forward(in, dvec, true);
    probe = nn::Tensor::Randn(out.shape(), rng, 1.0f);
  }

  // Analytic gradients.
  for (nn::Param* p : sel.Params()) p->ZeroGrad();
  loss_fn();
  sel.Backward(probe);

  // Per-coordinate finite differences are noisy through seven ReLU layers
  // (kinks bias the central difference), so compare the *direction* of the
  // sampled numeric gradient against the analytic one: cosine similarity
  // must be high. Exact per-layer gradient checks live in test_layers.
  const float eps = 1e-2f;
  auto params = sel.Params();
  double dot = 0.0, na = 0.0, nn_ = 0.0;
  for (std::size_t pi = 0; pi < params.size(); pi += 3) {
    nn::Param* p = params[pi];
    const std::size_t stride =
        std::max<std::size_t>(1, p->value.numel() / 5);
    for (std::size_t i = 0; i < p->value.numel(); i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float lp = loss_fn();
      p->value[i] = saved - eps;
      const float lm = loss_fn();
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0f * eps);
      const double analytic = p->grad[i];
      dot += numeric * analytic;
      na += analytic * analytic;
      nn_ += numeric * numeric;
    }
  }
  const double cosine = dot / std::sqrt(na * nn_ + 1e-30);
  EXPECT_GT(cosine, 0.95);
}

TEST(Selector, SaveLoadRoundTrip) {
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 31);
  const std::string path =
      (std::filesystem::temp_directory_path() / "nec_selector_test.necm")
          .string();
  sel.Save(path);
  Selector loaded = Selector::Load(path);
  EXPECT_EQ(loaded.config().conv_channels, cfg.conv_channels);
  EXPECT_EQ(loaded.config().stft.fft_size, cfg.stft.fft_size);

  const nn::Tensor in = RandomSpec(6, cfg.num_bins(), 21);
  const auto dvec = RandomDvec(cfg.embedding_dim, 22);
  const nn::Tensor a = sel.Forward(in, dvec, false);
  const nn::Tensor b = loaded.Forward(in, dvec, false);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Selector, ComputeShadowIsGainEquivariant) {
  // Scaling the input spectrogram by g scales the shadow by g (the
  // per-instance normalization makes the mapping homogeneous) — required
  // for the monitor-to-recorder scale transfer.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 41);
  dsp::Spectrogram spec(6, cfg.num_bins());
  Rng rng(42);
  for (auto& m : spec.mag()) m = std::abs(rng.GaussianF(0.0f, 0.4f));
  const auto dvec = RandomDvec(cfg.embedding_dim, 43);

  const auto shadow1 = sel.ComputeShadow(spec, dvec);
  dsp::Spectrogram scaled = spec;
  for (auto& m : scaled.mag()) m *= 2.5f;
  const auto shadow2 = sel.ComputeShadow(scaled, dvec);
  for (std::size_t i = 0; i < shadow1.size(); i += 17) {
    EXPECT_NEAR(shadow2[i], 2.5f * shadow1[i],
                2e-2f * (1.0f + std::abs(shadow1[i])));
  }
}

TEST(Selector, ReportsMacsAfterForward) {
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg);
  sel.Forward(RandomSpec(10, cfg.num_bins(), 51),
              RandomDvec(cfg.embedding_dim, 52), false);
  EXPECT_GT(sel.LastForwardMacs(), 100000u);
}


TEST(Selector, PaperConfigurationForwardPass) {
  // The paper's full 601-bin geometry must be constructible and runnable
  // (training at that size is a GPU job, but inference is supported).
  const NecConfig cfg = NecConfig::Paper();
  EXPECT_EQ(cfg.num_bins(), 601u);
  Selector sel(cfg, 3);
  Rng rng(4);
  nn::Tensor in({6, 601});
  for (std::size_t i = 0; i < in.numel(); ++i) {
    in[i] = std::abs(rng.GaussianF(0.0f, 0.3f));
  }
  std::vector<float> dvec(cfg.embedding_dim, 0.1f);
  const nn::Tensor out = sel.Forward(in, dvec, false);
  EXPECT_EQ(out.dim(0), 6u);
  EXPECT_EQ(out.dim(1), 601u);
}

TEST(Selector, MaskBoundsTheShadow) {
  // The masked head guarantees |shadow| <= S_mixed per cell — the record
  // spectrogram can never go negative.
  const NecConfig cfg = TinyConfig();
  Selector sel(cfg, 5);
  const nn::Tensor in = RandomSpec(9, cfg.num_bins(), 31);
  const nn::Tensor out =
      sel.Forward(in, RandomDvec(cfg.embedding_dim, 32), false);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_LE(out[i], 0.0f);
    EXPECT_GE(out[i], -in[i] - 1e-6f);
  }
}

}  // namespace
}  // namespace nec::core
