// Tests for WAV read/write.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "audio/wav_io.h"

namespace nec::audio {
namespace {

class WavIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "nec_wav_test";
    std::filesystem::create_directories(dir_);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

Waveform MakeRamp(int rate, std::size_t n) {
  Waveform w(rate, n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = -0.9f + 1.8f * static_cast<float>(i) / static_cast<float>(n);
  }
  return w;
}

TEST_F(WavIoTest, Pcm16RoundTrip) {
  const Waveform original = MakeRamp(16000, 1000);
  WriteWav(Path("pcm16.wav"), original, WavEncoding::kPcm16);
  const Waveform loaded = ReadWav(Path("pcm16.wav"));
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.sample_rate(), 16000);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded[i], original[i], 2.0f / 32768.0f);
  }
}

TEST_F(WavIoTest, Float32RoundTripIsExact) {
  const Waveform original = MakeRamp(48000, 777);
  WriteWav(Path("f32.wav"), original, WavEncoding::kFloat32);
  const Waveform loaded = ReadWav(Path("f32.wav"));
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.sample_rate(), 48000);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);
  }
}

TEST_F(WavIoTest, Pcm16ClampsOutOfRange) {
  Waveform w(8000, std::vector<float>{2.0f, -3.0f});
  WriteWav(Path("clip.wav"), w, WavEncoding::kPcm16);
  const Waveform loaded = ReadWav(Path("clip.wav"));
  EXPECT_NEAR(loaded[0], 1.0f, 1e-3);
  EXPECT_NEAR(loaded[1], -1.0f, 1e-3);
}

TEST_F(WavIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadWav(Path("nope.wav")), std::runtime_error);
}

TEST_F(WavIoTest, GarbageFileThrows) {
  std::ofstream out(Path("garbage.wav"), std::ios::binary);
  out << "this is not a wav file at all, sorry";
  out.close();
  EXPECT_THROW(ReadWav(Path("garbage.wav")), std::runtime_error);
}

TEST_F(WavIoTest, TruncatedFileThrows) {
  const Waveform original = MakeRamp(16000, 1000);
  WriteWav(Path("full.wav"), original);
  // Copy only the first 100 bytes.
  std::ifstream in(Path("full.wav"), std::ios::binary);
  std::vector<char> head(100);
  in.read(head.data(), 100);
  std::ofstream out(Path("trunc.wav"), std::ios::binary);
  out.write(head.data(), 100);
  out.close();
  EXPECT_THROW(ReadWav(Path("trunc.wav")), std::runtime_error);
}

TEST_F(WavIoTest, EmptyWaveformWritesValidFile) {
  Waveform w(16000, std::size_t{0});
  WriteWav(Path("empty.wav"), w);
  const Waveform loaded = ReadWav(Path("empty.wav"));
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.sample_rate(), 16000);
}

}  // namespace
}  // namespace nec::audio
