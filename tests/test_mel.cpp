// Tests for mel filterbanks and the DCT.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "dsp/mel.h"

namespace nec::dsp {
namespace {

TEST(MelScale, RoundTrip) {
  for (double hz : {100.0, 440.0, 1000.0, 4000.0, 8000.0}) {
    EXPECT_NEAR(MelToHz(HzToMel(hz)), hz, 1e-6);
  }
}

TEST(MelScale, KnownPoint) {
  EXPECT_NEAR(HzToMel(1000.0), 999.99, 0.2);  // 1000 Hz ≈ 1000 mel
}

TEST(MelScale, Monotonic) {
  double prev = -1.0;
  for (double hz = 0.0; hz < 8000.0; hz += 50.0) {
    const double mel = HzToMel(hz);
    EXPECT_GT(mel, prev);
    prev = mel;
  }
}

TEST(MelFilterbank, RowsCoverSpectrumWithoutGaps) {
  const MelFilterbank bank(26, 257, 16000.0);
  // Every interior bin should be covered by at least one filter.
  for (std::size_t b = 5; b < 250; ++b) {
    float total = 0.0f;
    for (std::size_t m = 0; m < 26; ++m) total += bank.WeightAt(m, b);
    EXPECT_GT(total, 0.0f) << "bin " << b;
  }
}

TEST(MelFilterbank, FiltersAreTriangular) {
  const MelFilterbank bank(20, 257, 16000.0);
  // Each filter rises then falls (single peak).
  for (std::size_t m = 0; m < 20; ++m) {
    int sign_changes = 0;
    float prev = 0.0f;
    bool rising = true;
    for (std::size_t b = 0; b < 257; ++b) {
      const float w = bank.WeightAt(m, b);
      if (rising && w < prev - 1e-9f) {
        rising = false;
        ++sign_changes;
      } else if (!rising && w > prev + 1e-9f) {
        ++sign_changes;
      }
      prev = w;
    }
    EXPECT_LE(sign_changes, 1) << "filter " << m;
  }
}

TEST(MelFilterbank, ApplyIsolatesTone) {
  const std::size_t bins = 257;
  const MelFilterbank bank(26, bins, 16000.0);
  // Power concentrated at ~2 kHz (bin 64 of 257 at 16 kHz / fft 512).
  std::vector<float> power(bins, 0.0f);
  power[64] = 1.0f;
  const auto mel = bank.Apply(power);
  std::size_t peak = 0;
  for (std::size_t m = 0; m < mel.size(); ++m) {
    if (mel[m] > mel[peak]) peak = m;
  }
  // 2 kHz ≈ mel 1521 of [0, 2840] → roughly the middle of 26 bands.
  EXPECT_GT(peak, 10u);
  EXPECT_LT(peak, 20u);
}

TEST(MelFilterbank, RejectsWrongFrameSize) {
  const MelFilterbank bank(26, 257, 16000.0);
  std::vector<float> wrong(100, 0.0f);
  EXPECT_THROW(bank.Apply(wrong), nec::CheckError);
}

TEST(MelFilterbank, RejectsBadBandEdges) {
  EXPECT_THROW(MelFilterbank(26, 257, 16000.0, 5000.0, 4000.0),
               nec::CheckError);
  EXPECT_THROW(MelFilterbank(26, 257, 16000.0, 0.0, 9000.0),
               nec::CheckError);
}

TEST(MelFilterbank, SpectrogramApplication) {
  Spectrogram spec(3, 129);
  for (std::size_t t = 0; t < 3; ++t) spec.MagAt(t, 32) = 2.0f;
  const MelFilterbank bank(20, 129, 16000.0);
  const auto mel = bank.ApplyToSpectrogram(spec);
  ASSERT_EQ(mel.size(), 3u * 20u);
  // All frames identical.
  for (std::size_t m = 0; m < 20; ++m) {
    EXPECT_FLOAT_EQ(mel[m], mel[20 + m]);
    EXPECT_FLOAT_EQ(mel[m], mel[40 + m]);
  }
}

TEST(LogCompress, FloorsSmallValues) {
  const std::vector<float> x = {1.0f, 0.0f, -5.0f};
  const auto y = LogCompress(x, 1e-6f);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], std::log(1e-6f));
  EXPECT_FLOAT_EQ(y[2], std::log(1e-6f));
}

TEST(Dct2, OrthonormalOnConstant) {
  std::vector<float> row(16, 1.0f);
  const auto c = Dct2(row, 16);
  EXPECT_NEAR(c[0], std::sqrt(16.0), 1e-5);  // orthonormal c0 = sqrt(N)*mean
  for (std::size_t k = 1; k < 16; ++k) {
    EXPECT_NEAR(c[k], 0.0f, 1e-5);
  }
}

TEST(Dct2, ParsevalForFullTransform) {
  std::vector<float> row = {0.3f, -1.2f, 0.7f, 2.1f, -0.5f, 0.0f, 1.0f,
                            -0.1f};
  const auto c = Dct2(row, 8);
  double in = 0.0, out = 0.0;
  for (float v : row) in += static_cast<double>(v) * v;
  for (float v : c) out += static_cast<double>(v) * v;
  EXPECT_NEAR(in, out, 1e-4);  // orthonormal transform preserves energy
}

TEST(Dct2, TruncationKeepsLeadingCoeffs) {
  std::vector<float> row = {1.0f, 2.0f, 3.0f, 4.0f};
  const auto full = Dct2(row, 4);
  const auto trunc = Dct2(row, 2);
  ASSERT_EQ(trunc.size(), 2u);
  EXPECT_FLOAT_EQ(trunc[0], full[0]);
  EXPECT_FLOAT_EQ(trunc[1], full[1]);
}

TEST(Dct2, RejectsBadCoeffCount) {
  std::vector<float> row(8, 0.0f);
  EXPECT_THROW(Dct2(row, 9), nec::CheckError);
  EXPECT_THROW(Dct2(row, 0), nec::CheckError);
}

}  // namespace
}  // namespace nec::dsp
