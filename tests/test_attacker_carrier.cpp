// Tests for the adaptive attacker (spectral subtraction) and the carrier
// auto-selection probe.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/adaptive_attacker.h"
#include "baselines/white_noise.h"
#include "common/check.h"
#include "core/carrier_probe.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"
#include "synth/noise.h"

namespace nec {
namespace {

TEST(AdaptiveAttacker, RecoversVoiceFromStationaryJamming) {
  // White-noise jamming is stationary: knowing its average spectrum lets
  // the attacker claw back intelligibility (the §II threat).
  synth::DatasetBuilder builder({.duration_s = 2.0});
  const auto spk = synth::SpeakerProfile::FromSeed(77);
  const auto utt = builder.MakeUtterance(spk, 3);

  const audio::Waveform jammed =
      baseline::JamWithWhiteNoise(utt.wave, {.noise_rel_db = 8.0});
  // The attacker's interference profile: white noise with the jammer's
  // statistics (a different realization — only the average spectrum
  // matters for spectral subtraction).
  audio::Waveform noise_ref = synth::GenerateNoise(
      synth::NoiseType::kWhite, 16000, utt.wave.size(), 999);
  noise_ref.NormalizeRms(
      utt.wave.Rms() *
      static_cast<float>(std::pow(10.0, 8.0 / 20.0)));

  const audio::Waveform recovered =
      baseline::SpectralSubtractAttack(jammed, noise_ref);
  EXPECT_GT(metrics::Sdr(utt.wave.samples(), recovered.samples()),
            metrics::Sdr(utt.wave.samples(), jammed.samples()) + 2.0);
}

TEST(AdaptiveAttacker, PreservesLengthAndRate) {
  synth::DatasetBuilder builder({.duration_s = 1.0});
  const auto spk = synth::SpeakerProfile::FromSeed(78);
  const auto utt = builder.MakeUtterance(spk, 4);
  const auto noise = synth::GenerateNoise(synth::NoiseType::kWhite, 16000,
                                          8000, 5);
  const auto out = baseline::SpectralSubtractAttack(utt.wave, noise);
  EXPECT_EQ(out.size(), utt.wave.size());
  EXPECT_EQ(out.sample_rate(), 16000);
}

TEST(AdaptiveAttacker, RejectsRateMismatch) {
  audio::Waveform a(16000, std::size_t{1000});
  audio::Waveform b(8000, std::size_t{1000});
  EXPECT_THROW(baseline::SpectralSubtractAttack(a, b), CheckError);
}

TEST(AdaptiveAttacker, CannotUndoTargetRemoval) {
  // Against NEC the "interference" IS the removal of Bob: subtracting an
  // average spectrum cannot re-create content that is simply absent.
  // Emulate a NEC'd recording by zeroing Bob entirely (the ideal case)
  // and let the attacker try to recover Bob with a noise profile.
  synth::DatasetBuilder builder({.duration_s = 2.0});
  const auto spks = synth::DatasetBuilder::MakeSpeakers(2, 4242);
  const auto inst = builder.MakeInstance(
      spks[0], synth::Scenario::kJointConversation, 6, &spks[1]);

  const audio::Waveform& necd = inst.background;  // Bob fully removed
  const auto noise = synth::GenerateNoise(synth::NoiseType::kWhite, 16000,
                                          necd.size(), 7);
  const audio::Waveform attacked =
      baseline::SpectralSubtractAttack(necd, noise);
  // Bob is still unrecoverable.
  EXPECT_LT(metrics::Sdr(inst.target.samples(), attacked.samples()),
            -10.0);
}

TEST(CarrierProbe, FindsDeviceResonance) {
  const auto& dev = channel::FindDevice("Moto Z4");  // resonance 28 kHz
  core::CarrierProbeOptions opt;
  opt.step_hz = 1000.0;
  opt.probe_duration_s = 0.2;
  const core::CarrierResponse resp = core::ProbeCarrierResponse(dev, opt);
  EXPECT_NEAR(resp.best_carrier_hz, dev.us_resonance_hz, 1500.0);
  EXPECT_LT(resp.band_lo_hz, resp.best_carrier_hz);
  EXPECT_GT(resp.band_hi_hz, resp.best_carrier_hz);
}

TEST(CarrierProbe, ResponseCurvePeaksInsideBand) {
  const auto& dev = channel::FindDevice("iPhone SE2");
  core::CarrierProbeOptions opt;
  opt.step_hz = 1000.0;
  opt.probe_duration_s = 0.2;
  const auto resp = core::ProbeCarrierResponse(dev, opt);
  ASSERT_EQ(resp.carrier_hz.size(), resp.demod_level.size());
  // Levels fall off toward the sweep edges relative to the peak.
  const double peak =
      *std::max_element(resp.demod_level.begin(), resp.demod_level.end());
  EXPECT_LT(resp.demod_level.front(), peak);
  EXPECT_LT(resp.demod_level.back(), peak);
}

TEST(CarrierProbe, SelectCarrierForAllLandsInSharedBand) {
  std::vector<channel::DeviceProfile> devices = {
      channel::FindDevice("Mi 8 Lite"),     // 27.4 kHz
      channel::FindDevice("Galaxy S9"),     // 27.2 kHz
  };
  core::CarrierProbeOptions opt;
  opt.step_hz = 1000.0;
  opt.probe_duration_s = 0.2;
  const double fc = core::SelectCarrierForAll(devices, opt);
  EXPECT_GT(fc, 25000.0);
  EXPECT_LT(fc, 30000.0);
}

TEST(CarrierProbe, RejectsEmptyDeviceList) {
  EXPECT_THROW(core::SelectCarrierForAll({}), CheckError);
}

}  // namespace
}  // namespace nec
