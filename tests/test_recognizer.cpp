// Tests for the DTW word recognizer and WER (the Google-STT substitute).
#include <gtest/gtest.h>

#include "asr/recognizer.h"
#include "baselines/white_noise.h"
#include "synth/dataset.h"

namespace nec::asr {
namespace {

// The recognizer builds ~500 templates; share one across tests.
const WordRecognizer& SharedRecognizer() {
  static const WordRecognizer rec;
  return rec;
}

TEST(WordErrorRate, ZeroForExactMatch) {
  EXPECT_EQ(WordErrorRate({"a", "b", "c"}, {"a", "b", "c"}), 0.0);
}

TEST(WordErrorRate, SubstitutionsDeletionsInsertions) {
  EXPECT_NEAR(WordErrorRate({"a", "b", "c"}, {"a", "x", "c"}), 1.0 / 3.0,
              1e-9);
  EXPECT_NEAR(WordErrorRate({"a", "b", "c"}, {"a", "c"}), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(WordErrorRate({"a", "b"}, {"a", "x", "b"}), 0.5, 1e-9);
}

TEST(WordErrorRate, CanExceedOne) {
  // The paper reports WER ~2.0 on jammed audio: hypothesis full of
  // hallucinated words.
  EXPECT_NEAR(WordErrorRate({"a"}, {"x", "y", "z"}), 3.0, 1e-9);
}

TEST(WordErrorRate, EmptyCases) {
  EXPECT_EQ(WordErrorRate({}, {}), 0.0);
  EXPECT_EQ(WordErrorRate({"a", "b"}, {}), 1.0);
  EXPECT_EQ(WordErrorRate({}, {"a", "b"}), 2.0);
}

TEST(Recognizer, BuildsFullVocabulary) {
  EXPECT_GE(SharedRecognizer().vocabulary_size(), 300u);
}

TEST(Recognizer, IsolatedWordsFromUnseenSpeaker) {
  synth::Synthesizer synth({.sample_rate = 16000, .edge_silence_ms = 10});
  const auto spk = synth::SpeakerProfile::FromSeed(99991);
  int correct = 0;
  const std::vector<std::string> words = {"coffee", "morning", "window",
                                          "record", "water"};
  for (std::size_t i = 0; i < words.size(); ++i) {
    const auto utt = synth.SynthesizeWords(spk, {words[i]}, 50 + i);
    const auto hyp = SharedRecognizer().Transcribe(utt.wave);
    if (hyp.size() == 1 && hyp[0] == words[i]) ++correct;
  }
  EXPECT_GE(correct, 4);
}

TEST(Recognizer, CleanSentencesHaveModerateWer) {
  // Template matching across unseen voices is imperfect (so is Google's
  // ASR in the paper: mixed-audio WER ≈ 0.9 in Fig. 11); what matters is
  // that clean speech lands well below the jammed regime. Average over
  // several speakers to avoid single-voice luck.
  synth::Synthesizer synth({.sample_rate = 16000});
  const std::vector<std::string> ref = {"my",   "ideal", "morning", "begins",
                                        "with", "hot",   "coffee"};
  double wer = 0.0;
  const std::uint64_t seeds[] = {12345, 424242, 31415};
  for (std::uint64_t seed : seeds) {
    const auto spk = synth::SpeakerProfile::FromSeed(seed);
    const auto utt = synth.SynthesizeWords(spk, ref, 77);
    wer += WordErrorRate(ref, SharedRecognizer().Transcribe(utt.wave));
  }
  EXPECT_LT(wer / std::size(seeds), 0.6);
}

TEST(Recognizer, JammedAudioHasHighWer) {
  // With strong white noise over the recording, the recognizer must do
  // far worse than on clean audio — the property Fig. 11's WER metric
  // depends on.
  synth::Synthesizer synth({.sample_rate = 16000});
  const auto spk = synth::SpeakerProfile::FromSeed(31415);
  const std::vector<std::string> ref = {"please", "record", "the", "meeting",
                                        "today"};
  const auto utt = synth.SynthesizeWords(spk, ref, 3);
  const double clean_wer =
      WordErrorRate(ref, SharedRecognizer().Transcribe(utt.wave));
  const audio::Waveform jammed =
      baseline::JamWithWhiteNoise(utt.wave, {.noise_rel_db = 10.0});
  const double jammed_wer =
      WordErrorRate(ref, SharedRecognizer().Transcribe(jammed));
  EXPECT_GT(jammed_wer, clean_wer + 0.3);
  EXPECT_GE(jammed_wer, 0.8);
}

TEST(Recognizer, SilenceYieldsNothing) {
  audio::Waveform silence(16000, std::size_t{16000});
  EXPECT_TRUE(SharedRecognizer().Transcribe(silence).empty());
}

TEST(Recognizer, EmptyInputYieldsNothing) {
  audio::Waveform w(16000, std::size_t{0});
  EXPECT_TRUE(SharedRecognizer().Transcribe(w).empty());
}

TEST(Recognizer, RecognizedWordsCarryOrderedTimestamps) {
  synth::Synthesizer synth({.sample_rate = 16000});
  const auto spk = synth::SpeakerProfile::FromSeed(2718);
  const auto utt = synth.SynthesizeWords(spk, {"one", "two", "three"}, 1);
  const auto words = SharedRecognizer().Recognize(utt.wave);
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_LT(words[i].start_sample, words[i].end_sample);
    if (i > 0) {
      EXPECT_GE(words[i].start_sample, words[i - 1].start_sample);
    }
    EXPECT_LE(words[i].distance, 2.1 + 1e-9);
  }
}

}  // namespace
}  // namespace nec::asr
