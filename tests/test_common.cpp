// Tests for common/: NEC_CHECK macros and the deterministic Rng.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace nec {
namespace {

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(NEC_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(NEC_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndLocation) {
  try {
    NEC_CHECK(2 > 3);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, CheckMsgStreamsContext) {
  try {
    NEC_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.06);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, NextSeedForksDistinctStreams) {
  Rng parent(5);
  Rng a(parent.NextSeed()), b(parent.NextSeed());
  EXPECT_NE(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
}

}  // namespace
}  // namespace nec
