// Tests for the NOISEX-92 substitute noise generators: band structure per
// Table I and determinism.
#include <gtest/gtest.h>

#include "dsp/stft.h"
#include "synth/noise.h"

namespace nec::synth {
namespace {

// Fraction of spectral energy below `cutoff_hz`.
double LowBandFraction(const audio::Waveform& w, double cutoff_hz) {
  dsp::StftConfig cfg{.fft_size = 512, .win_length = 400, .hop_length = 160};
  const dsp::Spectrogram spec = dsp::Stft(w, cfg);
  double lo = 0.0, total = 0.0;
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    for (std::size_t f = 0; f < spec.num_bins(); ++f) {
      const double e =
          static_cast<double>(spec.MagAt(t, f)) * spec.MagAt(t, f);
      total += e;
      if (f * static_cast<double>(w.sample_rate()) / cfg.fft_size <
          cutoff_hz) {
        lo += e;
      }
    }
  }
  return total > 0 ? lo / total : 0.0;
}

class NoiseTypeTest : public ::testing::TestWithParam<NoiseType> {};

TEST_P(NoiseTypeTest, DeterministicInSeed) {
  const auto a = GenerateNoise(GetParam(), 16000, 8000, 77);
  const auto b = GenerateNoise(GetParam(), 16000, 8000, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(NoiseTypeTest, SeedChangesRealization) {
  const auto a = GenerateNoise(GetParam(), 16000, 8000, 1);
  const auto b = GenerateNoise(GetParam(), 16000, 8000, 2);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST_P(NoiseTypeTest, NormalizedRms) {
  const auto w = GenerateNoise(GetParam(), 16000, 16000, 5);
  EXPECT_NEAR(w.Rms(), 0.1f, 1e-3);
}

TEST_P(NoiseTypeTest, RequestedLength) {
  const auto w = GenerateNoise(GetParam(), 16000, 12345, 5);
  EXPECT_EQ(w.size(), 12345u);
  EXPECT_EQ(w.sample_rate(), 16000);
}

INSTANTIATE_TEST_SUITE_P(Types, NoiseTypeTest,
                         ::testing::Values(NoiseType::kWhite,
                                           NoiseType::kBabble,
                                           NoiseType::kFactory,
                                           NoiseType::kVehicle));

TEST(Noise, WhiteIsBroadband) {
  const auto w = GenerateNoise(NoiseType::kWhite, 16000, 32000, 3);
  // Roughly half the energy below 4 kHz (flat spectrum).
  EXPECT_NEAR(LowBandFraction(w, 4000.0), 0.5, 0.08);
}

TEST(Noise, BabbleBandLimitedTo4k) {
  // Table I: babble occupies 0-4 kHz.
  const auto w = GenerateNoise(NoiseType::kBabble, 16000, 32000, 3);
  EXPECT_GT(LowBandFraction(w, 4000.0), 0.97);
}

TEST(Noise, FactoryBandLimitedTo2k) {
  // Table I: factory occupies 0-2 kHz.
  const auto w = GenerateNoise(NoiseType::kFactory, 16000, 32000, 3);
  EXPECT_GT(LowBandFraction(w, 2000.0), 0.95);
}

TEST(Noise, VehicleBandLimitedTo500) {
  // Table I: vehicle occupies 0-500 Hz.
  const auto w = GenerateNoise(NoiseType::kVehicle, 16000, 32000, 3);
  EXPECT_GT(LowBandFraction(w, 500.0), 0.95);
}

TEST(Noise, BandsAreOrderedByWidth) {
  // Table I's occupied bands are strictly nested: energy above each class's
  // band edge must shrink from white → babble → factory → vehicle.
  const auto white = GenerateNoise(NoiseType::kWhite, 16000, 32000, 9);
  const auto babble = GenerateNoise(NoiseType::kBabble, 16000, 32000, 9);
  const auto factory = GenerateNoise(NoiseType::kFactory, 16000, 32000, 9);
  const auto vehicle = GenerateNoise(NoiseType::kVehicle, 16000, 32000, 9);
  // Above 4 kHz: only white has substantial energy.
  EXPECT_GT(1.0 - LowBandFraction(white, 4000.0),
            5.0 * (1.0 - LowBandFraction(babble, 4000.0)));
  // Above 2 kHz: babble has more than factory.
  EXPECT_GT(1.0 - LowBandFraction(babble, 2000.0),
            2.0 * (1.0 - LowBandFraction(factory, 2000.0)));
  // Above 500 Hz: factory has more than vehicle.
  EXPECT_GT(1.0 - LowBandFraction(factory, 500.0),
            2.0 * (1.0 - LowBandFraction(vehicle, 500.0)));
}

TEST(Noise, NamesAreStable) {
  EXPECT_EQ(NoiseTypeName(NoiseType::kWhite), "white");
  EXPECT_EQ(NoiseTypeName(NoiseType::kBabble), "babble");
  EXPECT_EQ(NoiseTypeName(NoiseType::kFactory), "factory");
  EXPECT_EQ(NoiseTypeName(NoiseType::kVehicle), "vehicle");
}

}  // namespace
}  // namespace nec::synth
