// Tests for speaker profiles and the source-filter synthesizer — the
// properties §III depends on: determinism, speaker-specific but
// utterance-independent spectra, sane signal statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "encoder/las.h"
#include "metrics/metrics.h"
#include "synth/speaker.h"
#include "synth/synthesizer.h"

namespace nec::synth {
namespace {

TEST(SpeakerProfile, DeterministicFromSeed) {
  const SpeakerProfile a = SpeakerProfile::FromSeed(42);
  const SpeakerProfile b = SpeakerProfile::FromSeed(42);
  EXPECT_EQ(a.f0_base_hz, b.f0_base_hz);
  EXPECT_EQ(a.formant_scale, b.formant_scale);
  EXPECT_EQ(a.formant_shift, b.formant_shift);
}

TEST(SpeakerProfile, DistinctSeedsDistinctVoices) {
  const SpeakerProfile a = SpeakerProfile::FromSeed(1);
  const SpeakerProfile b = SpeakerProfile::FromSeed(2);
  EXPECT_NE(a.f0_base_hz, b.f0_base_hz);
}

TEST(SpeakerProfile, ParametersInPhysiologicalRange) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const SpeakerProfile p = SpeakerProfile::FromSeed(seed);
    EXPECT_GE(p.f0_base_hz, 85.0);
    EXPECT_LE(p.f0_base_hz, 255.0);
    EXPECT_GE(p.formant_scale, 0.9);
    EXPECT_LE(p.formant_scale, 1.2);
    EXPECT_GE(p.speaking_rate, 0.8);
    EXPECT_LE(p.speaking_rate, 1.25);
  }
}

TEST(SpeakerProfile, AdjustFormantAppliesScaleAndShift) {
  SpeakerProfile p;
  p.formant_scale = 1.1;
  p.formant_shift = {0.05, -0.05, 0.0};
  EXPECT_NEAR(p.AdjustFormant(1000.0, 0), 1000.0 * 1.1 * 1.05, 1e-6);
  EXPECT_NEAR(p.AdjustFormant(1000.0, 1), 1000.0 * 1.1 * 0.95, 1e-6);
  // Index clamped for F4+.
  EXPECT_NEAR(p.AdjustFormant(1000.0, 7), p.AdjustFormant(1000.0, 2), 1e-9);
}

TEST(Synthesizer, DeterministicOutput) {
  Synthesizer synth({.sample_rate = 16000});
  const SpeakerProfile spk = SpeakerProfile::FromSeed(9);
  const Utterance a = synth.SynthesizeSentence(spk, "hot coffee", 5);
  const Utterance b = synth.SynthesizeSentence(spk, "hot coffee", 5);
  ASSERT_EQ(a.wave.size(), b.wave.size());
  for (std::size_t i = 0; i < a.wave.size(); ++i) {
    EXPECT_EQ(a.wave[i], b.wave[i]);
  }
}

TEST(Synthesizer, OutputStatisticsAreSane) {
  Synthesizer synth({.sample_rate = 16000, .target_rms = 0.08});
  const SpeakerProfile spk = SpeakerProfile::FromSeed(3);
  const Utterance utt =
      synth.SynthesizeSentence(spk, "my ideal morning begins with hot coffee", 1);
  EXPECT_NEAR(utt.wave.Rms(), 0.08f, 1e-3);
  EXPECT_LT(utt.wave.Peak(), 1.0f);
  EXPECT_GT(utt.wave.duration(), 1.5);
  EXPECT_LT(utt.wave.duration(), 6.0);
  for (float v : utt.wave.samples()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(Synthesizer, WordTimingsCoverAllWordsInOrder) {
  Synthesizer synth({.sample_rate = 16000});
  const SpeakerProfile spk = SpeakerProfile::FromSeed(4);
  const std::vector<std::string> words = {"one", "two", "three", "four"};
  const Utterance utt = synth.SynthesizeWords(spk, words, 7);
  ASSERT_EQ(utt.timings.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(utt.timings[i].word, words[i]);
    EXPECT_LT(utt.timings[i].start_sample, utt.timings[i].end_sample);
    if (i > 0) {
      EXPECT_GE(utt.timings[i].start_sample, utt.timings[i - 1].end_sample);
    }
  }
  EXPECT_LE(utt.timings.back().end_sample, utt.wave.size());
}

TEST(Synthesizer, UnknownWordThrows) {
  Synthesizer synth;
  const SpeakerProfile spk = SpeakerProfile::FromSeed(5);
  EXPECT_THROW(synth.SynthesizeWords(spk, {"xylophone"}, 1),
               std::invalid_argument);
}

TEST(Synthesizer, SpeechEnergyIsLowFrequencyDominated) {
  // Human speech has most energy below 4 kHz; the formant synthesizer must
  // reproduce that or the NOISEX band structure of Table I is meaningless.
  Synthesizer synth({.sample_rate = 16000});
  const SpeakerProfile spk = SpeakerProfile::FromSeed(6);
  const Utterance utt = synth.SynthesizeSentence(
      spk, "don't ask me to carry an oily rag like that", 2);
  dsp::StftConfig cfg{.fft_size = 512, .win_length = 400, .hop_length = 160};
  const dsp::Spectrogram spec = dsp::Stft(utt.wave, cfg);
  double lo = 0.0, hi = 0.0;
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    for (std::size_t f = 0; f < spec.num_bins(); ++f) {
      const double e =
          static_cast<double>(spec.MagAt(t, f)) * spec.MagAt(t, f);
      (f * 16000.0 / 512 < 4000.0 ? lo : hi) += e;
    }
  }
  EXPECT_GT(lo, 5.0 * hi);
}

TEST(Synthesizer, SameSpeakerLasCorrelatesAcrossUtterances) {
  // The §III property: intra-speaker LAS correlation must exceed
  // inter-speaker correlation.
  Synthesizer synth({.sample_rate = 16000});
  const SpeakerProfile a = SpeakerProfile::FromSeed(100);
  const SpeakerProfile b = SpeakerProfile::FromSeed(200);
  const auto a1 = synth.SynthesizeSentence(
      a, "my ideal morning begins with hot coffee", 11);
  const auto a2 = synth.SynthesizeSentence(
      a, "don't ask me to carry an oily rag like that", 12);
  const auto b1 = synth.SynthesizeSentence(
      b, "my ideal morning begins with hot coffee", 13);

  const auto las_a1 = encoder::VoicedLas(a1.wave);
  const auto las_a2 = encoder::VoicedLas(a2.wave);
  const auto las_b1 = encoder::VoicedLas(b1.wave);

  const double intra = metrics::PearsonCorrelation(las_a1, las_a2);
  const double inter = metrics::PearsonCorrelation(las_a1, las_b1);
  EXPECT_GT(intra, inter);
  EXPECT_GT(intra, 0.8);
}

TEST(Synthesizer, DifferentUtteranceSeedsVaryProsody) {
  Synthesizer synth;
  const SpeakerProfile spk = SpeakerProfile::FromSeed(7);
  const Utterance a = synth.SynthesizeSentence(spk, "hello hello", 1);
  const Utterance b = synth.SynthesizeSentence(spk, "hello hello", 2);
  // Durations differ due to per-utterance duration jitter.
  EXPECT_NE(a.wave.size(), b.wave.size());
}

TEST(Synthesizer, RejectsTinySampleRate) {
  EXPECT_THROW(Synthesizer({.sample_rate = 4000}), nec::CheckError);
}

}  // namespace
}  // namespace nec::synth
