// Tests for air propagation: delay, spreading loss, ultrasound absorption.
#include <gtest/gtest.h>

#include <cmath>

#include "audio/level.h"
#include "channel/air_channel.h"
#include "common/check.h"

namespace nec::channel {
namespace {

TEST(AirAbsorption, GrowsQuadraticallyWithFrequency) {
  const double a1k = AirAbsorptionDbPerM(1000.0);
  const double a8k = AirAbsorptionDbPerM(8000.0);
  const double a25k = AirAbsorptionDbPerM(25000.0);
  EXPECT_LT(a1k, 0.02);    // speech band: negligible
  EXPECT_GT(a25k, 0.8);    // ultrasound: ~1 dB/m
  EXPECT_LT(a25k, 1.5);
  EXPECT_GT(a8k, a1k);
  EXPECT_GT(a25k, a8k);
}

TEST(AirChannel, DelayMatchesSpeedOfSound) {
  AirChannel air({.distance_m = 3.43});
  EXPECT_NEAR(air.DelaySeconds(), 0.01, 1e-6);
  EXPECT_EQ(air.DelaySamples(16000), 160u);
  EXPECT_EQ(air.DelaySamples(192000), 1920u);
}

TEST(AirChannel, SpreadingLossIsInverseDistance) {
  AirChannel near({.distance_m = 0.05, .ref_distance_m = 0.05,
                   .absorption_ref_hz = 1000.0});
  AirChannel far({.distance_m = 5.0, .ref_distance_m = 0.05,
                  .absorption_ref_hz = 1000.0});
  // 0.05 → 5 m = 100x distance = -40 dB spreading (minus small absorption).
  const double drop_db =
      audio::AmplitudeToDb(far.Gain() / near.Gain());
  EXPECT_NEAR(drop_db, -40.0, 0.5);
}

TEST(AirChannel, PaperFig15aSpeechDecay) {
  // Fig. 15(a): 77 dB_SPL at 5 cm decays to ~43 dB at 5 m. Pure spherical
  // spreading gives 77 - 40 = 37 dB; the paper's 43 dB includes room
  // reflections, so we accept the [35, 45] band.
  AirChannel air({.distance_m = 5.0, .ref_distance_m = 0.05,
                  .absorption_ref_hz = 1000.0});
  const double spl_at_5m = 77.0 + audio::AmplitudeToDb(air.Gain());
  EXPECT_GT(spl_at_5m, 33.0);
  EXPECT_LT(spl_at_5m, 45.0);
}

TEST(AirChannel, UltrasoundDiesFasterThanSpeech) {
  AirChannelConfig speech{.distance_m = 3.0, .absorption_ref_hz = 1000.0};
  AirChannelConfig ultra{.distance_m = 3.0, .absorption_ref_hz = 27000.0};
  EXPECT_GT(AirChannel(speech).Gain(), 1.5 * AirChannel(ultra).Gain());
}

TEST(AirChannel, PropagateDelaysAndScales) {
  audio::Waveform src(16000, std::vector<float>{1.0f, 0.0f, 0.0f});
  AirChannel air({.distance_m = 0.343, .ref_distance_m = 0.05,
                  .absorption_ref_hz = 1000.0});
  const audio::Waveform out = air.Propagate(src);
  const std::size_t delay = air.DelaySamples(16000);
  ASSERT_EQ(out.size(), src.size() + delay);
  for (std::size_t i = 0; i < delay; ++i) EXPECT_EQ(out[i], 0.0f);
  EXPECT_NEAR(out[delay], air.Gain(), 1e-6);
}

TEST(AirChannel, WithinReferenceDistanceNoBoost) {
  // Closer than the reference distance must not amplify.
  AirChannel air({.distance_m = 0.01, .ref_distance_m = 0.05});
  EXPECT_LE(air.Gain(), 1.0);
}

TEST(AirChannel, RejectsBadConfig) {
  EXPECT_THROW(AirChannel({.distance_m = 0.0}), nec::CheckError);
  EXPECT_THROW(AirChannel({.distance_m = 1.0, .ref_distance_m = -0.1}),
               nec::CheckError);
}

TEST(AirChannel, GainMonotonicallyDecreasesWithDistance) {
  double prev = 1e9;
  for (double d : {0.1, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    AirChannel air({.distance_m = d, .absorption_ref_hz = 27000.0});
    EXPECT_LT(air.Gain(), prev);
    prev = air.Gain();
  }
}

}  // namespace
}  // namespace nec::channel
