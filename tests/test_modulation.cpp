// Tests for ultrasonic AM modulation (Eq. 7/9): carrier placement,
// inaudibility, and ideal-demodulation round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/modulation.h"
#include "common/check.h"
#include "dsp/fft.h"

namespace nec::channel {
namespace {

audio::Waveform Tone(int rate, double f, double seconds) {
  audio::Waveform w(rate, static_cast<std::size_t>(rate * seconds));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(
        0.5 * std::sin(2.0 * std::numbers::pi * f * i / rate));
  }
  return w;
}

// Energy of `w` inside [lo, hi) Hz via one big FFT.
double BandEnergy(const audio::Waveform& w, double lo, double hi) {
  const std::size_t nfft = dsp::NextPowerOfTwo(w.size());
  const auto half = dsp::RealFft(w.samples(), nfft);
  double acc = 0.0;
  for (std::size_t i = 0; i < half.size(); ++i) {
    const double f = i * static_cast<double>(w.sample_rate()) / nfft;
    if (f >= lo && f < hi) acc += std::norm(std::complex<double>(half[i]));
  }
  return acc;
}

TEST(Modulation, OutputAtAirRate) {
  const auto mod = ModulateAm(Tone(16000, 500.0, 0.2), {});
  EXPECT_EQ(mod.sample_rate(), kAirSampleRate);
  EXPECT_NEAR(static_cast<double>(mod.size()), 0.2 * kAirSampleRate, 64.0);
}

TEST(Modulation, EnergyConcentratedAroundCarrier) {
  ModulationConfig cfg{.carrier_hz = 27000.0, .alpha = 1.0};
  const auto mod = ModulateAm(Tone(16000, 1000.0, 0.25), cfg);
  const double near_carrier = BandEnergy(mod, 25000.0, 29000.0);
  const double audible = BandEnergy(mod, 0.0, 16000.0);
  EXPECT_GT(near_carrier, 100.0 * audible);
}

TEST(Modulation, IsInaudible) {
  // No more than a sliver of energy below 20 kHz → humans hear nothing.
  ModulationConfig cfg{.carrier_hz = 25000.0};
  const auto mod = ModulateAm(Tone(16000, 2000.0, 0.25), cfg);
  const double audible = BandEnergy(mod, 20.0, 20000.0);
  const double total = BandEnergy(mod, 20.0, 96000.0);
  EXPECT_LT(audible / total, 1e-3);
}

TEST(Modulation, PeakRespected) {
  ModulationConfig cfg{.carrier_hz = 27000.0, .peak = 0.8};
  const auto mod = ModulateAm(Tone(16000, 700.0, 0.2), cfg);
  EXPECT_LE(mod.Peak(), 0.82f);
  EXPECT_GT(mod.Peak(), 0.5f);
}

TEST(Modulation, SidebandsAtCarrierPlusMinusTone) {
  ModulationConfig cfg{.carrier_hz = 27000.0, .alpha = 1.0};
  const auto mod = ModulateAm(Tone(16000, 1500.0, 0.5), cfg);
  // DSB-AM: carrier at 27 kHz, sidebands at 25.5 and 28.5 kHz.
  const double side_lo = BandEnergy(mod, 25300.0, 25700.0);
  const double side_hi = BandEnergy(mod, 28300.0, 28700.0);
  const double gap = BandEnergy(mod, 26100.0, 26700.0);
  EXPECT_GT(side_lo, 10.0 * gap);
  EXPECT_GT(side_hi, 10.0 * gap);
}

TEST(Modulation, RejectsAudibleCarrier) {
  EXPECT_THROW(ModulateAm(Tone(16000, 500.0, 0.1), {.carrier_hz = 15000.0}),
               nec::CheckError);
}

TEST(Modulation, RejectsCarrierAboveSupportedBand) {
  EXPECT_THROW(
      ModulateAm(Tone(16000, 500.0, 0.1), {.carrier_hz = 90000.0}),
      nec::CheckError);
}

TEST(Modulation, RejectsNonPositiveAlpha) {
  EXPECT_THROW(
      ModulateAm(Tone(16000, 500.0, 0.1),
                 {.carrier_hz = 27000.0, .alpha = 0.0}),
      nec::CheckError);
}

class DemodRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DemodRoundTrip, CoherentDemodRecoversTone) {
  const double carrier = GetParam();
  const double tone_hz = 800.0;
  ModulationConfig cfg{.carrier_hz = carrier, .alpha = 1.0};
  const auto mod = ModulateAm(Tone(16000, tone_hz, 0.5), cfg);
  const auto demod = DemodulateAm(mod, carrier, 16000);
  // The demodulated signal contains the tone (plus DC from the carrier
  // offset); check the tone band dominates other non-DC content.
  const double tone_band = BandEnergy(demod, 700.0, 900.0);
  const double rest = BandEnergy(demod, 1200.0, 7000.0);
  EXPECT_GT(tone_band, 20.0 * rest);
}

INSTANTIATE_TEST_SUITE_P(Carriers, DemodRoundTrip,
                         ::testing::Values(24000.0, 27000.0, 30000.0));

TEST(Modulation, StreamedChunksMatchWholeUtteranceWithReferencePeak) {
  // THE streamed-gain regression (satellite of the hot-path PR): chunked
  // modulation with one shared reference_peak must reproduce the
  // whole-utterance result. Legacy per-chunk peak normalization re-scaled
  // every chunk by its own loudness, so a quiet second was emitted as loud
  // as a shouted one. Two 1 s halves at 5:1 amplitude expose that
  // immediately.
  const int rate = 16000;
  audio::Waveform whole(rate, static_cast<std::size_t>(2 * rate));
  for (std::size_t i = 0; i < whole.size(); ++i) {
    const double amp = i < static_cast<std::size_t>(rate) ? 0.5 : 0.1;
    whole[i] = static_cast<float>(
        amp * std::sin(2.0 * std::numbers::pi * 600.0 * i / rate));
  }
  // Integer carrier Hz x integer chunk seconds → the carrier phase at each
  // chunk boundary is a whole number of cycles, so per-chunk cos(w i)
  // restarts in phase with the whole-utterance carrier.
  ModulationConfig cfg{.carrier_hz = 24000.0};
  cfg.reference_peak = 0.5;

  const auto mod_whole = ModulateAm(whole, cfg);
  auto mod_chunked = ModulateAm(whole.Slice(0, rate), cfg);
  mod_chunked.Append(ModulateAm(whole.Slice(rate, rate), cfg));
  ASSERT_EQ(mod_chunked.size(), mod_whole.size());

  // Identical except for resampler edge transients at the chunk seam;
  // compare RMS of the difference over the interior of each chunk.
  const std::size_t guard = 2048;  // air-rate samples around each boundary
  double diff2 = 0.0, sig2 = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = guard; i + guard < mod_whole.size(); ++i) {
    const std::size_t chunk_pos = i % (mod_whole.size() / 2);
    if (chunk_pos < guard || chunk_pos + guard > mod_whole.size() / 2) {
      continue;
    }
    const double d = mod_chunked[i] - mod_whole[i];
    diff2 += d * d;
    sig2 += static_cast<double>(mod_whole[i]) * mod_whole[i];
    ++counted;
  }
  ASSERT_GT(counted, mod_whole.size() / 2);
  EXPECT_LT(std::sqrt(diff2 / counted), 1e-3 * std::sqrt(sig2 / counted));
}

TEST(Modulation, PerChunkNormalizationBugIsGone) {
  // Direct witness of the old bug: under legacy normalization a 5x quieter
  // chunk modulates to the SAME sideband power as the loud one; with a
  // shared reference the emitted power tracks the content.
  const auto loud = Tone(16000, 800.0, 0.25);  // peak 0.5
  auto quiet = loud;
  quiet.Scale(0.2f);

  ModulationConfig legacy{.carrier_hz = 27000.0};
  const double legacy_ratio =
      BandEnergy(ModulateAm(quiet, legacy), 25000.0, 29000.0) /
      BandEnergy(ModulateAm(loud, legacy), 25000.0, 29000.0);
  EXPECT_NEAR(legacy_ratio, 1.0, 0.05);  // the bug: loudness erased

  ModulationConfig fixed{.carrier_hz = 27000.0};
  fixed.reference_peak = 0.5;
  const auto fixed_loud = ModulateAm(loud, fixed);
  const auto fixed_quiet = ModulateAm(quiet, fixed);
  // Sideband (content) energy must scale ~(0.2)^2; total energy is
  // carrier-dominated so compare after removing the carrier line.
  const double side_loud =
      BandEnergy(fixed_loud, 26100.0, 26900.0) +
      BandEnergy(fixed_loud, 27100.0, 27900.0);
  const double side_quiet =
      BandEnergy(fixed_quiet, 26100.0, 26900.0) +
      BandEnergy(fixed_quiet, 27100.0, 27900.0);
  // ~(0.2)^2 = 0.04, with slack for carrier spectral leakage into the
  // sideband bands; the legacy ratio above pinned at 1.0 either way.
  EXPECT_LT(side_quiet / side_loud, 0.08);
  EXPECT_GT(side_quiet / side_loud, 0.01);
}

TEST(Modulation, ReferencePeakClampsHotterChunks) {
  // A chunk louder than the stream reference clamps its envelope to the
  // |m| <= 1 modulation-index invariant rather than exceeding it.
  ModulationConfig cfg{.carrier_hz = 27000.0, .peak = 0.9};
  cfg.reference_peak = 0.1;  // 5x below the tone's 0.5 peak
  const auto mod = ModulateAm(Tone(16000, 700.0, 0.2), cfg);
  EXPECT_LE(mod.Peak(), 0.92f);  // (1 + alpha) * peak / (1 + alpha) = peak
  EXPECT_GT(mod.Peak(), 0.5f);
}

TEST(Demodulation, RejectsRateThatClipsUpperSideband) {
  // 64 kHz carries a 27 kHz carrier (old guard: 64k > 2*27k passed) but
  // NOT its upper sideband at 27 + 8 kHz = 35 kHz > Nyquist (32 kHz); the
  // tightened guard must refuse instead of aliasing the sideband back
  // into the recovered audio.
  audio::Waveform passband(64000, std::size_t{6400});
  EXPECT_THROW(DemodulateAm(passband, 27000.0, 16000), nec::CheckError);
}

TEST(Demodulation, AcceptsRateCoveringCarrierPlusBandwidth) {
  audio::Waveform passband(96000, std::size_t{9600});
  // 2*(27000 + 8000) = 70 kHz < 96 kHz: legal, must not throw.
  const auto out = DemodulateAm(passband, 27000.0, 16000);
  EXPECT_EQ(out.sample_rate(), 16000);
}

TEST(Modulation, EnvelopeIsNonNegativeAtUnitAlpha) {
  // With |m| <= 1 and alpha = 1 the AM envelope (m + 1) never crosses
  // zero — the condition for distortion-free square-law demodulation.
  ModulationConfig cfg{.carrier_hz = 27000.0, .alpha = 1.0};
  const auto base = Tone(16000, 440.0, 0.1);
  const auto mod = ModulateAm(base, cfg);
  // Envelope check: local maxima of |mod| should never be (near) zero for
  // a full carrier cycle region; approximate via max over carrier periods.
  const std::size_t period =
      static_cast<std::size_t>(kAirSampleRate / cfg.carrier_hz);
  for (std::size_t start = 10 * period; start + period < mod.size() / 2;
       start += period) {
    float peak = 0.0f;
    for (std::size_t i = start; i < start + period; ++i) {
      peak = std::max(peak, std::abs(mod[i]));
    }
    EXPECT_GT(peak, 0.0f);
  }
}

}  // namespace
}  // namespace nec::channel
