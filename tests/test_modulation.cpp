// Tests for ultrasonic AM modulation (Eq. 7/9): carrier placement,
// inaudibility, and ideal-demodulation round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/modulation.h"
#include "common/check.h"
#include "dsp/fft.h"

namespace nec::channel {
namespace {

audio::Waveform Tone(int rate, double f, double seconds) {
  audio::Waveform w(rate, static_cast<std::size_t>(rate * seconds));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(
        0.5 * std::sin(2.0 * std::numbers::pi * f * i / rate));
  }
  return w;
}

// Energy of `w` inside [lo, hi) Hz via one big FFT.
double BandEnergy(const audio::Waveform& w, double lo, double hi) {
  const std::size_t nfft = dsp::NextPowerOfTwo(w.size());
  const auto half = dsp::RealFft(w.samples(), nfft);
  double acc = 0.0;
  for (std::size_t i = 0; i < half.size(); ++i) {
    const double f = i * static_cast<double>(w.sample_rate()) / nfft;
    if (f >= lo && f < hi) acc += std::norm(std::complex<double>(half[i]));
  }
  return acc;
}

TEST(Modulation, OutputAtAirRate) {
  const auto mod = ModulateAm(Tone(16000, 500.0, 0.2), {});
  EXPECT_EQ(mod.sample_rate(), kAirSampleRate);
  EXPECT_NEAR(static_cast<double>(mod.size()), 0.2 * kAirSampleRate, 64.0);
}

TEST(Modulation, EnergyConcentratedAroundCarrier) {
  ModulationConfig cfg{.carrier_hz = 27000.0, .alpha = 1.0};
  const auto mod = ModulateAm(Tone(16000, 1000.0, 0.25), cfg);
  const double near_carrier = BandEnergy(mod, 25000.0, 29000.0);
  const double audible = BandEnergy(mod, 0.0, 16000.0);
  EXPECT_GT(near_carrier, 100.0 * audible);
}

TEST(Modulation, IsInaudible) {
  // No more than a sliver of energy below 20 kHz → humans hear nothing.
  ModulationConfig cfg{.carrier_hz = 25000.0};
  const auto mod = ModulateAm(Tone(16000, 2000.0, 0.25), cfg);
  const double audible = BandEnergy(mod, 20.0, 20000.0);
  const double total = BandEnergy(mod, 20.0, 96000.0);
  EXPECT_LT(audible / total, 1e-3);
}

TEST(Modulation, PeakRespected) {
  ModulationConfig cfg{.carrier_hz = 27000.0, .peak = 0.8};
  const auto mod = ModulateAm(Tone(16000, 700.0, 0.2), cfg);
  EXPECT_LE(mod.Peak(), 0.82f);
  EXPECT_GT(mod.Peak(), 0.5f);
}

TEST(Modulation, SidebandsAtCarrierPlusMinusTone) {
  ModulationConfig cfg{.carrier_hz = 27000.0, .alpha = 1.0};
  const auto mod = ModulateAm(Tone(16000, 1500.0, 0.5), cfg);
  // DSB-AM: carrier at 27 kHz, sidebands at 25.5 and 28.5 kHz.
  const double side_lo = BandEnergy(mod, 25300.0, 25700.0);
  const double side_hi = BandEnergy(mod, 28300.0, 28700.0);
  const double gap = BandEnergy(mod, 26100.0, 26700.0);
  EXPECT_GT(side_lo, 10.0 * gap);
  EXPECT_GT(side_hi, 10.0 * gap);
}

TEST(Modulation, RejectsAudibleCarrier) {
  EXPECT_THROW(ModulateAm(Tone(16000, 500.0, 0.1), {.carrier_hz = 15000.0}),
               nec::CheckError);
}

TEST(Modulation, RejectsCarrierAboveSupportedBand) {
  EXPECT_THROW(
      ModulateAm(Tone(16000, 500.0, 0.1), {.carrier_hz = 90000.0}),
      nec::CheckError);
}

TEST(Modulation, RejectsNonPositiveAlpha) {
  EXPECT_THROW(
      ModulateAm(Tone(16000, 500.0, 0.1),
                 {.carrier_hz = 27000.0, .alpha = 0.0}),
      nec::CheckError);
}

class DemodRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DemodRoundTrip, CoherentDemodRecoversTone) {
  const double carrier = GetParam();
  const double tone_hz = 800.0;
  ModulationConfig cfg{.carrier_hz = carrier, .alpha = 1.0};
  const auto mod = ModulateAm(Tone(16000, tone_hz, 0.5), cfg);
  const auto demod = DemodulateAm(mod, carrier, 16000);
  // The demodulated signal contains the tone (plus DC from the carrier
  // offset); check the tone band dominates other non-DC content.
  const double tone_band = BandEnergy(demod, 700.0, 900.0);
  const double rest = BandEnergy(demod, 1200.0, 7000.0);
  EXPECT_GT(tone_band, 20.0 * rest);
}

INSTANTIATE_TEST_SUITE_P(Carriers, DemodRoundTrip,
                         ::testing::Values(24000.0, 27000.0, 30000.0));

TEST(Modulation, EnvelopeIsNonNegativeAtUnitAlpha) {
  // With |m| <= 1 and alpha = 1 the AM envelope (m + 1) never crosses
  // zero — the condition for distortion-free square-law demodulation.
  ModulationConfig cfg{.carrier_hz = 27000.0, .alpha = 1.0};
  const auto base = Tone(16000, 440.0, 0.1);
  const auto mod = ModulateAm(base, cfg);
  // Envelope check: local maxima of |mod| should never be (near) zero for
  // a full carrier cycle region; approximate via max over carrier periods.
  const std::size_t period =
      static_cast<std::size_t>(kAirSampleRate / cfg.carrier_hz);
  for (std::size_t start = 10 * period; start + period < mod.size() / 2;
       start += period) {
    float peak = 0.0f;
    for (std::size_t i = start; i < start + period; ++i) {
      peak = std::max(peak, std::abs(mod[i]));
    }
    EXPECT_GT(peak, 0.0f);
  }
}

}  // namespace
}  // namespace nec::channel
