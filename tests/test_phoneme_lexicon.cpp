// Tests for the phoneme inventory and pronunciation lexicon.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "synth/lexicon.h"
#include "synth/phoneme.h"

namespace nec::synth {
namespace {

TEST(Phoneme, InventoryNonEmptyAndWellFormed) {
  const auto& inv = PhonemeInventory();
  EXPECT_GT(inv.size(), 30u);
  for (const Phoneme& p : inv) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.duration_ms, 0.0);
    if (p.type == PhonemeType::kVowel) {
      // Vowels carry three ordered formants inside the speech band.
      EXPECT_GT(p.f1, 200.0);
      EXPECT_LT(p.f1, p.f2);
      EXPECT_LT(p.f2, p.f3);
      EXPECT_LT(p.f3, 4000.0);
      EXPECT_TRUE(p.voiced);
    }
    if (p.type == PhonemeType::kFricative) {
      EXPECT_GT(p.noise_hi, p.noise_lo);
    }
  }
}

TEST(Phoneme, LookupFindsKnownAndRejectsUnknown) {
  EXPECT_TRUE(FindPhoneme("AA").has_value());
  EXPECT_TRUE(FindPhoneme("NG").has_value());
  EXPECT_FALSE(FindPhoneme("QQ").has_value());
  EXPECT_FALSE(FindPhoneme("").has_value());
}

TEST(Phoneme, SilenceIsSilent) {
  const Phoneme& sil = SilencePhoneme();
  EXPECT_EQ(sil.type, PhonemeType::kSilence);
  EXPECT_EQ(sil.amplitude, 0.0);
}

TEST(Phoneme, VowelFormantsMatchPetersonBarney) {
  // Spot-check canonical values used by §III's observations.
  const auto iy = FindPhoneme("IY");
  ASSERT_TRUE(iy.has_value());
  EXPECT_NEAR(iy->f1, 270.0, 1.0);
  EXPECT_NEAR(iy->f2, 2290.0, 1.0);
  const auto aa = FindPhoneme("AA");
  ASSERT_TRUE(aa.has_value());
  EXPECT_NEAR(aa->f1, 730.0, 1.0);
}

TEST(Lexicon, ContainsPaperSentences) {
  const Lexicon& lex = Lexicon::Default();
  for (const char* w :
       {"my", "ideal", "morning", "begins", "with", "hot", "coffee",
        "don't", "ask", "me", "to", "carry", "an", "oily", "rag", "like",
        "that"}) {
    EXPECT_TRUE(lex.Contains(w)) << w;
    EXPECT_TRUE(lex.Lookup(w).has_value()) << w;
  }
}

TEST(Lexicon, VocabularyIsSubstantial) {
  EXPECT_GT(Lexicon::Default().Words().size(), 120u);
}

TEST(Lexicon, LookupIsCaseInsensitive) {
  const Lexicon& lex = Lexicon::Default();
  EXPECT_TRUE(lex.Lookup("COFFEE").has_value());
  EXPECT_TRUE(lex.Lookup("Coffee").has_value());
}

TEST(Lexicon, UnknownWordReturnsNullopt) {
  EXPECT_FALSE(Lexicon::Default().Lookup("xylophone").has_value());
}

TEST(Lexicon, AllEntriesUseValidPhonemes) {
  const Lexicon& lex = Lexicon::Default();
  for (const std::string& w : lex.Words()) {
    const auto phonemes = lex.Lookup(w);
    ASSERT_TRUE(phonemes.has_value()) << w;
    EXPECT_FALSE(phonemes->empty()) << w;
    for (const Phoneme& p : *phonemes) {
      EXPECT_TRUE(FindPhoneme(p.name).has_value()) << w;
    }
  }
}

TEST(Lexicon, WordsAreSorted) {
  const auto& words = Lexicon::Default().Words();
  for (std::size_t i = 1; i < words.size(); ++i) {
    EXPECT_LT(words[i - 1], words[i]);
  }
}

TEST(Lexicon, RandomSentenceDrawsFromVocabulary) {
  const Lexicon& lex = Lexicon::Default();
  nec::Rng rng(5);
  const auto sentence = lex.RandomSentence(rng, 12);
  ASSERT_EQ(sentence.size(), 12u);
  for (const std::string& w : sentence) {
    EXPECT_TRUE(lex.Contains(w)) << w;
  }
}

TEST(Lexicon, TokenizeSplitsAndLowercases) {
  const auto tokens =
      Lexicon::Tokenize("My Ideal  MORNING begins\twith hot coffee");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0], "my");
  EXPECT_EQ(tokens[2], "morning");
}

TEST(Lexicon, TokenizeKeepsApostrophesDropsDigits) {
  const auto tokens = Lexicon::Tokenize("don't record 123 me!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "don't");
  EXPECT_EQ(tokens[1], "record");
  EXPECT_EQ(tokens[2], "me");
}

TEST(Lexicon, TokenizeEmptyString) {
  EXPECT_TRUE(Lexicon::Tokenize("").empty());
  EXPECT_TRUE(Lexicon::Tokenize("   ").empty());
}

}  // namespace
}  // namespace nec::synth
