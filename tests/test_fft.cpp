// Tests for the FFT kernels: radix-2, Bluestein (arbitrary sizes including
// the paper's 1200-point transform), real-FFT wrappers.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/fft.h"

namespace nec::dsp {
namespace {

using Cf = std::complex<float>;

std::vector<Cf> NaiveDft(const std::vector<Cf>& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<Cf> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi * k * j / n;
      acc += std::complex<double>(x[j]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    if (inverse) acc /= static_cast<double>(n);
    out[k] = Cf(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return out;
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(1200));
  EXPECT_EQ(NextPowerOfTwo(1200), 2048u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Cf> x(n);
  for (Cf& v : x) v = Cf(rng.GaussianF(), rng.GaussianF());
  const auto expected = NaiveDft(x, false);
  std::vector<Cf> got = x;
  Fft(got, false);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i].real(), expected[i].real(), 2e-3 * std::sqrt(n))
        << "bin " << i << " size " << n;
    EXPECT_NEAR(got[i].imag(), expected[i].imag(), 2e-3 * std::sqrt(n));
  }
}

TEST_P(FftSizeTest, ForwardInverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n * 3 + 1);
  std::vector<Cf> x(n);
  for (Cf& v : x) v = Cf(rng.GaussianF(), rng.GaussianF());
  std::vector<Cf> y = x;
  Fft(y, false);
  Fft(y, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-3);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-3);
  }
}

TEST_P(FftSizeTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n * 7 + 5);
  std::vector<Cf> x(n);
  double time_energy = 0.0;
  for (Cf& v : x) {
    v = Cf(rng.GaussianF(), 0.0f);
    time_energy += std::norm(std::complex<double>(v));
  }
  std::vector<Cf> y = x;
  Fft(y, false);
  double freq_energy = 0.0;
  for (const Cf& v : y) freq_energy += std::norm(std::complex<double>(v));
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-2 * time_energy + 1e-6);
}

// 1200 is the paper's FFT size; 601 = its bin count appears as an odd
// Bluestein size; the rest cover radix-2, odd, prime and composite sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 100, 120,
                                           601, 1200, 17, 97, 509, 1023));

// The plan cache must be a pure acceleration: a planned transform (cached
// twiddles / bit-reversal / chirp tables) has to produce the SAME BITS as
// the unplanned kernel it replaced, because the runtime's N-session audit
// compares streamed output sample-for-sample against a sequential rerun —
// any planned/unplanned divergence would show up there as a "race".
class FftPlannedBitExact : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftPlannedBitExact, ComplexBothDirections) {
  const std::size_t n = GetParam();
  Rng rng(n * 13 + 7);
  std::vector<Cf> x(n);
  for (Cf& v : x) v = Cf(rng.GaussianF(), rng.GaussianF());
  for (const bool inverse : {false, true}) {
    std::vector<Cf> planned = x;
    std::vector<Cf> unplanned = x;
    Fft(planned, inverse);  // routed through GetFftPlan
    detail::FftUnplanned(unplanned, inverse);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(planned[i].real(), unplanned[i].real())
          << "size " << n << " bin " << i << " inverse " << inverse;
      ASSERT_EQ(planned[i].imag(), unplanned[i].imag())
          << "size " << n << " bin " << i << " inverse " << inverse;
    }
  }
}

TEST_P(FftPlannedBitExact, RealWrappersMatchAllocatingPath) {
  const std::size_t n = GetParam();
  if (n < 4) return;  // RealFft rejects tiny nfft
  Rng rng(n * 5 + 1);
  std::vector<float> x(n);
  for (float& v : x) v = rng.GaussianF();

  const auto plain = RealFft(x, n);
  const auto plan = GetFftPlan(n);
  FftScratch scratch;
  std::vector<Cf> planned;
  RealFft(x, *plan, planned, scratch);
  ASSERT_EQ(planned.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(planned[i].real(), plain[i].real()) << "size " << n;
    ASSERT_EQ(planned[i].imag(), plain[i].imag()) << "size " << n;
  }

  const auto back_plain = InverseRealFft(plain, n);
  std::vector<float> back_planned;
  InverseRealFft(planned, *plan, back_planned, scratch);
  ASSERT_EQ(back_planned.size(), back_plain.size());
  for (std::size_t i = 0; i < back_plain.size(); ++i) {
    ASSERT_EQ(back_planned[i], back_plain[i]) << "size " << n;
  }
}

// Radix-2, the configured sizes (1200 paper / 256 Fast), odd, prime and
// composite Bluestein sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, FftPlannedBitExact,
                         ::testing::Values(2, 8, 256, 1024, 100, 120, 601,
                                           1200, 17, 97, 509));

TEST(FftPlan, CacheReturnsSameInstance) {
  const auto a = GetFftPlan(1200);
  const auto b = GetFftPlan(1200);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(a->bluestein());
  EXPECT_EQ(a->size(), 1200u);
  EXPECT_FALSE(GetFftPlan(256)->bluestein());
}

TEST(FftPlan, ScratchReusableAcrossSizes) {
  // One FftScratch handed across transforms of different sizes — the
  // streaming rebinding case — must not corrupt results.
  FftScratch scratch;
  Rng rng(321);
  for (const std::size_t n : {1200u, 256u, 601u, 1200u}) {
    std::vector<float> x(n);
    for (float& v : x) v = rng.GaussianF();
    const auto plan = GetFftPlan(n);
    std::vector<Cf> half;
    RealFft(x, *plan, half, scratch);
    std::vector<float> back;
    InverseRealFft(half, *plan, back, scratch);
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(back[i], x[i], 2e-3) << "size " << n;
    }
  }
}

TEST(RealFft, ToneLandsInCorrectBin) {
  const std::size_t n = 256;
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * 16.0 * i / n);
  }
  const auto half = RealFft(x, n);
  ASSERT_EQ(half.size(), n / 2 + 1);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < half.size(); ++i) {
    if (std::abs(half[i]) > std::abs(half[peak])) peak = i;
  }
  EXPECT_EQ(peak, 16u);
  EXPECT_NEAR(std::abs(half[16]), n / 2.0, 1.0);
}

TEST(RealFft, RoundTripThroughInverse) {
  Rng rng(77);
  std::vector<float> x(300);
  for (float& v : x) v = rng.GaussianF();
  const std::size_t nfft = 512;
  const auto half = RealFft(x, nfft);
  const auto back = InverseRealFft(half, nfft);
  ASSERT_EQ(back.size(), nfft);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-3);
  }
  for (std::size_t i = x.size(); i < nfft; ++i) {
    EXPECT_NEAR(back[i], 0.0f, 1e-3);  // zero-padded region
  }
}

TEST(RealFft, PaperSize1200RoundTrip) {
  Rng rng(5);
  std::vector<float> x(1200);
  for (float& v : x) v = rng.GaussianF();
  const auto half = RealFft(x, 1200);
  ASSERT_EQ(half.size(), 601u);  // the paper's 601 frequency bins
  const auto back = InverseRealFft(half, 1200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 2e-3);
  }
}

TEST(RealFft, DcSignal) {
  std::vector<float> x(64, 1.0f);
  const auto half = RealFft(x, 64);
  EXPECT_NEAR(std::abs(half[0]), 64.0, 1e-3);
  for (std::size_t i = 1; i < half.size(); ++i) {
    EXPECT_NEAR(std::abs(half[i]), 0.0, 1e-3);
  }
}

TEST(RealFft, LinearityOfSuperposition) {
  // Eq. 4 of the paper: F[a1 x1 + a2 x2] = a1 X1 + a2 X2.
  Rng rng(9);
  std::vector<float> x1(200), x2(200), mix(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x1[i] = rng.GaussianF();
    x2[i] = rng.GaussianF();
    mix[i] = 0.7f * x1[i] + 1.3f * x2[i];
  }
  const auto h1 = RealFft(x1, 256);
  const auto h2 = RealFft(x2, 256);
  const auto hm = RealFft(mix, 256);
  for (std::size_t i = 0; i < hm.size(); ++i) {
    const Cf expect = 0.7f * h1[i] + 1.3f * h2[i];
    EXPECT_NEAR(hm[i].real(), expect.real(), 2e-3);
    EXPECT_NEAR(hm[i].imag(), expect.imag(), 2e-3);
  }
}

TEST(RealFft, RejectsTinyNfft) {
  std::vector<float> x(4, 1.0f);
  EXPECT_THROW(RealFft(x, 1), nec::CheckError);
}

TEST(InverseRealFft, RejectsWrongSpectrumLength) {
  std::vector<Cf> half(10);
  EXPECT_THROW(InverseRealFft(half, 64), nec::CheckError);
}

}  // namespace
}  // namespace nec::dsp
