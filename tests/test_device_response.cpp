// Property tests across all eight Table III device models: each device's
// microphone must demodulate best near its own resonance, and the
// calibrated nonlinearity strengths must order the demodulated levels.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "channel/device_profile.h"
#include "channel/microphone.h"
#include "channel/modulation.h"
#include "channel/scene.h"

namespace nec::channel {
namespace {

double DemodRms(const DeviceProfile& dev, double carrier_hz) {
  audio::Waveform tone(16000, std::size_t{4800});
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = static_cast<float>(
        0.5 * std::sin(2.0 * std::numbers::pi * 900.0 * i / 16000.0));
  }
  const audio::Waveform mod = ModulateAm(tone, {.carrier_hz = carrier_hz});
  SceneSimulator sim;
  MicrophoneModel mic(dev, {.noise_seed = 3});
  const audio::Waveform rec = sim.Record(
      {}, {{.wave = &mod, .distance_m = 0.5, .spl_at_ref_db = 110.0,
            .carrier_hz = carrier_hz}}, mic);
  return rec.Rms();
}

class DeviceResponseTest
    : public ::testing::TestWithParam<DeviceProfile> {};

TEST_P(DeviceResponseTest, ResonanceBeatsBandEdges) {
  const DeviceProfile& dev = GetParam();
  const double at_res = DemodRms(dev, dev.us_resonance_hz);
  // 5 kHz outside the acceptance band: response clearly lower.
  const double off_hi =
      DemodRms(dev, dev.us_resonance_hz + dev.us_bandwidth_hz / 2 + 5000);
  EXPECT_GT(at_res, 1.5 * off_hi) << dev.model;
}

TEST_P(DeviceResponseTest, DemodulationAboveNoiseFloorAtResonance) {
  const DeviceProfile& dev = GetParam();
  const double at_res = DemodRms(dev, dev.us_resonance_hz);
  // Noise floor of a silent recording for comparison.
  SceneSimulator sim;
  MicrophoneModel mic(dev, {.noise_seed = 3});
  audio::Waveform silence(kAirSampleRate, std::size_t{kAirSampleRate / 3});
  const double floor = mic.Record(silence).Rms();
  EXPECT_GT(at_res, 3.0 * floor) << dev.model;
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, DeviceResponseTest,
    ::testing::ValuesIn(Table3Devices()),
    [](const ::testing::TestParamInfo<DeviceProfile>& info) {
      std::string name = info.param.model;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DeviceResponse, StrongestDeviceOutDemodulatesWeakest) {
  // iPad Air 3 (3.72 m paper range) vs iPhone X (0.43 m): at their own
  // best carriers, the iPad's recorder must demodulate far more.
  const double ipad = DemodRms(FindDevice("iPad Air 3"),
                               FindDevice("iPad Air 3").us_resonance_hz);
  const double iphone_x = DemodRms(FindDevice("iPhone X"),
                                   FindDevice("iPhone X").us_resonance_hz);
  EXPECT_GT(ipad, 3.0 * iphone_x);
}

}  // namespace
}  // namespace nec::channel
