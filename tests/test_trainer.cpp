// Tests for the selector trainer (Eq. 6 objective) on a tiny config.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "core/trainer.h"
#include "encoder/encoder.h"

namespace nec::core {
namespace {

NecConfig TinyConfig() {
  NecConfig cfg;
  cfg.stft = {.fft_size = 128, .win_length = 128, .hop_length = 64};
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  cfg.embedding_dim = 24;
  return cfg;
}

TrainerOptions TinyOptions() {
  TrainerOptions opt;
  opt.steps = 40;
  opt.num_speakers = 3;
  opt.instances_per_speaker = 3;
  opt.crop_s = 0.6;
  opt.lr = 3e-3f;
  opt.seed = 123;
  return opt;
}

TEST(Trainer, LossDecreasesBelowZeroShadowBaseline) {
  const NecConfig cfg = TinyConfig();
  encoder::LasEncoder enc(cfg.embedding_dim);
  SelectorTrainer trainer(cfg, enc, TinyOptions());
  const float zero_loss = trainer.ZeroShadowLoss();
  EXPECT_GT(zero_loss, 0.0f);

  Selector sel(cfg);
  const float final_loss = trainer.Train(sel);
  EXPECT_LT(final_loss, zero_loss);
}

TEST(Trainer, OnStepCallbackFiresEveryStep) {
  const NecConfig cfg = TinyConfig();
  encoder::LasEncoder enc(cfg.embedding_dim);
  TrainerOptions opt = TinyOptions();
  opt.steps = 7;
  std::vector<float> losses;
  opt.on_step = [&losses](std::size_t, float loss) {
    losses.push_back(loss);
  };
  SelectorTrainer trainer(cfg, enc, opt);
  Selector sel(cfg);
  trainer.Train(sel);
  EXPECT_EQ(losses.size(), 7u);
  for (float l : losses) EXPECT_GT(l, 0.0f);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const NecConfig cfg = TinyConfig();
  encoder::LasEncoder enc(cfg.embedding_dim);
  TrainerOptions opt = TinyOptions();
  opt.steps = 10;

  Selector a(cfg, 5);
  Selector b(cfg, 5);
  const float la = SelectorTrainer(cfg, enc, opt).Train(a);
  const float lb = SelectorTrainer(cfg, enc, opt).Train(b);
  EXPECT_EQ(la, lb);
}

TEST(Trainer, RejectsEncoderDimMismatch) {
  NecConfig cfg = TinyConfig();
  cfg.embedding_dim = 16;
  encoder::LasEncoder enc(40);
  EXPECT_THROW(SelectorTrainer(cfg, enc, TinyOptions()), nec::CheckError);
}


TEST(Trainer, BatchAccumulationAlsoConverges) {
  const NecConfig cfg = TinyConfig();
  encoder::LasEncoder enc(cfg.embedding_dim);
  TrainerOptions opt = TinyOptions();
  opt.steps = 16;
  opt.batch_size = 3;
  SelectorTrainer trainer(cfg, enc, opt);
  Selector sel(cfg);
  const float loss = trainer.Train(sel);
  EXPECT_GT(loss, 0.0f);
  EXPECT_LT(loss, trainer.ZeroShadowLoss() * 1.2f);
}

}  // namespace
}  // namespace nec::core
