// Tests for the nec::core hot-path memory primitives (DESIGN.md §5i):
// bump Arena + RAII ArenaScope, size-classed Pool, inline Shape,
// non-owning TensorView, and the nn::Tensor arena-backed storage mode —
// including the bit-exactness contract between arena-backed and owning
// inference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/memory.h"
#include "core/selector.h"
#include "nn/tensor.h"

namespace nec::core {
namespace {

// ------------------------------------------------------------------ Arena

TEST(Arena, BumpAllocatesDistinctAlignedStorage) {
  Arena arena;
  float* a = arena.AllocateArray<float>(100);
  float* b = arena.AllocateArray<float>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  // Distinct live allocations must not overlap.
  a[99] = 1.0f;
  b[0] = 2.0f;
  EXPECT_EQ(a[99], 1.0f);
}

TEST(Arena, RespectsRequestedAlignment) {
  Arena arena;
  arena.Allocate(1, 1);  // misalign the bump pointer
  void* p = arena.Allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(Arena, ResetReusesStorageWithoutGrowing) {
  Arena arena(1024);
  float* first = arena.AllocateArray<float>(64);
  const std::size_t grown = arena.grow_count();
  const std::size_t cap = arena.Capacity();
  arena.Reset();
  // Same request replays into the same storage: no new blocks, and the
  // bump hands back the very same bytes.
  float* again = arena.AllocateArray<float>(64);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.grow_count(), grown);
  EXPECT_EQ(arena.Capacity(), cap);
}

TEST(Arena, RewindToMarkReleasesOnlyTail) {
  Arena arena;
  float* keep = arena.AllocateArray<float>(10);
  keep[0] = 42.0f;
  const Arena::Mark mark = arena.Position();
  const std::size_t in_use_at_mark = arena.InUse();
  arena.AllocateArray<float>(1000);
  EXPECT_GT(arena.InUse(), in_use_at_mark);
  arena.Rewind(mark);
  EXPECT_EQ(arena.InUse(), in_use_at_mark);
  EXPECT_EQ(keep[0], 42.0f);  // storage before the mark is untouched
}

TEST(Arena, GrowsAcrossBlocksForLargeRequests) {
  Arena arena(256);
  // Far larger than the initial block: must chain new blocks, not fail.
  float* big = arena.AllocateArray<float>(100000);
  ASSERT_NE(big, nullptr);
  big[0] = 1.0f;
  big[99999] = 2.0f;
  EXPECT_GE(arena.Capacity(), 100000 * sizeof(float));
  EXPECT_GT(arena.grow_count(), 0u);
  // After Reset, a steady-state replay of the same request needs no growth.
  arena.Reset();
  const std::uint64_t grown = arena.grow_count();
  arena.AllocateArray<float>(100000);
  EXPECT_EQ(arena.grow_count(), grown);
}

TEST(Arena, HighWaterTracksPeak) {
  Arena arena;
  arena.AllocateArray<float>(512);
  const std::size_t peak = arena.high_water_bytes();
  EXPECT_GE(peak, 512 * sizeof(float));
  arena.Reset();
  arena.AllocateArray<float>(8);
  EXPECT_GE(arena.high_water_bytes(), peak);  // monotone
}

// ------------------------------------------------------------- ArenaScope

TEST(ArenaScope, PublishesAndRestoresAmbientArena) {
  EXPECT_EQ(ArenaScope::Current(), nullptr);
  Arena arena;
  {
    ArenaScope scope(arena);
    EXPECT_EQ(ArenaScope::Current(), &arena);
  }
  EXPECT_EQ(ArenaScope::Current(), nullptr);
}

TEST(ArenaScope, NestedScopesRestorePrevious) {
  Arena outer_arena, inner_arena;
  ArenaScope outer(outer_arena);
  {
    ArenaScope inner(inner_arena);
    EXPECT_EQ(ArenaScope::Current(), &inner_arena);
  }
  EXPECT_EQ(ArenaScope::Current(), &outer_arena);
}

TEST(ArenaScope, RewindsOnNormalExit) {
  Arena arena;
  arena.AllocateArray<float>(16);
  const std::size_t before = arena.InUse();
  {
    ArenaScope scope(arena);
    arena.AllocateArray<float>(4096);
    EXPECT_GT(arena.InUse(), before);
  }
  EXPECT_EQ(arena.InUse(), before);
}

TEST(ArenaScope, RewindsDuringExceptionUnwind) {
  // A faulted chunk must not leak arena space or poison the strand's next
  // chunk: the scope's destructor rewinds during unwind.
  Arena arena;
  const std::size_t before = arena.InUse();
  EXPECT_THROW(
      {
        ArenaScope scope(arena);
        arena.AllocateArray<float>(2048);
        throw std::runtime_error("chunk fault");
      },
      std::runtime_error);
  EXPECT_EQ(arena.InUse(), before);
  EXPECT_EQ(ArenaScope::Current(), nullptr);
}

// ------------------------------------------------------------------- Pool

TEST(Pool, AcquireSizesAndClassCapacity) {
  Pool pool;
  std::vector<float> buf = pool.Acquire(300);
  EXPECT_EQ(buf.size(), 300u);
  EXPECT_GE(buf.capacity(), 512u);  // next pow2 class
}

TEST(Pool, RecyclesReleasedBufferWithoutZeroing) {
  Pool pool;
  std::vector<float> buf = pool.Acquire(1000);
  const float* storage = buf.data();
  buf[0] = 123.0f;
  buf[999] = 456.0f;
  pool.Release(std::move(buf));

  // Same class: must get the SAME storage back, stale contents retained —
  // Acquire does not zero (consumers overwrite fully; that is the
  // performance contract this test pins down).
  std::vector<float> again = pool.Acquire(1000);
  EXPECT_EQ(again.data(), storage);
  EXPECT_EQ(again[0], 123.0f);
  EXPECT_EQ(again[999], 456.0f);

  const Pool::Stats s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.discards, 0u);
}

TEST(Pool, GrowthBeyondRecycledSizeIsZeroFilled) {
  Pool pool;
  std::vector<float> buf = pool.Acquire(100);
  for (std::size_t i = 0; i < 100; ++i) buf[i] = 7.0f;
  pool.Release(std::move(buf));
  // Larger request in the same class: the resize's growth region is
  // value-initialized by vector semantics.
  std::vector<float> bigger = pool.Acquire(200);
  EXPECT_EQ(bigger[0], 7.0f);  // stale, recycled
  for (std::size_t i = 100; i < 200; ++i) ASSERT_EQ(bigger[i], 0.0f);
}

TEST(Pool, FullBinDiscards) {
  Pool pool(/*max_per_class=*/1);
  std::vector<float> a = pool.Acquire(300);
  std::vector<float> b = pool.Acquire(300);  // both live at once
  pool.Release(std::move(a));
  pool.Release(std::move(b));  // bin already holds one: dropped
  const Pool::Stats s = pool.stats();
  EXPECT_EQ(s.releases, 2u);
  EXPECT_EQ(s.discards, 1u);
}

// ------------------------------------------------------------------ Shape

TEST(Shape, InlineDimsAndNumel) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(Shape{}.numel(), 0u);
  const std::vector<std::size_t> v{5, 6};
  const Shape from_vec = v;
  EXPECT_EQ(from_vec.numel(), 30u);
  EXPECT_TRUE(from_vec == (Shape{5, 6}));
  EXPECT_TRUE(from_vec != s);
}

TEST(Shape, RejectsRankAboveMax) {
  EXPECT_THROW((Shape{1, 2, 3, 4, 5}), CheckError);
}

// ------------------------------------------------------------- TensorView

TEST(TensorView, AliasesStorage) {
  std::vector<float> storage(24, 0.0f);
  TensorView view(storage.data(), Shape{2, 3, 4});
  view.At3(1, 2, 3) = 9.0f;
  EXPECT_EQ(storage[(1 * 3 + 2) * 4 + 3], 9.0f);
  storage[0] = 5.0f;
  EXPECT_EQ(view[0], 5.0f);
}

TEST(TensorView, SubSlicesLeadingDimension) {
  std::vector<float> storage(24);
  for (std::size_t i = 0; i < 24; ++i) storage[i] = static_cast<float>(i);
  TensorView batch(storage.data(), Shape{2, 3, 4});
  TensorView item1 = batch.Sub(1);
  EXPECT_EQ(item1.rank(), 2u);
  EXPECT_EQ(item1.dim(0), 3u);
  EXPECT_EQ(item1.dim(1), 4u);
  EXPECT_EQ(item1.data(), storage.data() + 12);
  // Writes through the sub-view land in the parent storage (gather/scatter
  // batch assembly relies on this aliasing).
  item1.At(2, 3) = -1.0f;
  EXPECT_EQ(storage[23], -1.0f);
}

#ifndef NDEBUG
TEST(TensorView, DebugRejectsOutOfBoundsAndRankMisuse) {
  std::vector<float> storage(6);
  TensorView view(storage.data(), Shape{2, 3});
  EXPECT_THROW(view[6], CheckError);
  EXPECT_THROW(view.At(2, 0), CheckError);
  EXPECT_THROW(view.At(0, 3), CheckError);
  EXPECT_THROW(view.At3(0, 0, 0), CheckError);  // rank-2 view
  EXPECT_THROW(view.Sub(2), CheckError);
  TensorView flat(storage.data(), Shape{6});
  EXPECT_THROW(flat.Sub(0), CheckError);  // rank-1 has no sub-slice
}
#endif

// ------------------------------------------- Tensor arena-backed storage

TEST(TensorArena, ScopeSelectsArenaStorageAndZeroFills) {
  Arena arena;
  ArenaScope scope(arena);
  nn::Tensor t({4, 8});
  EXPECT_TRUE(t.arena_backed());
  for (std::size_t i = 0; i < t.numel(); ++i) ASSERT_EQ(t[i], 0.0f);
  EXPECT_GE(arena.InUse(), t.numel() * sizeof(float));
}

TEST(TensorArena, OutsideScopeOwnsStorage) {
  nn::Tensor t({4});
  EXPECT_FALSE(t.arena_backed());
  EXPECT_EQ(t.vec().size(), 4u);  // owning escape hatch works
}

TEST(TensorArena, VecThrowsOnArenaBackedStorage) {
  Arena arena;
  ArenaScope scope(arena);
  nn::Tensor t({4});
  EXPECT_THROW(t.vec(), CheckError);
}

TEST(TensorArena, CopyUnderScopeTakesArenaStorage) {
  nn::Tensor heap_tensor({8});
  heap_tensor.Fill(3.0f);
  Arena arena;
  {
    ArenaScope scope(arena);
    nn::Tensor copy = heap_tensor;  // copy allocates by CURRENT policy
    EXPECT_TRUE(copy.arena_backed());
    for (std::size_t i = 0; i < copy.numel(); ++i) ASSERT_EQ(copy[i], 3.0f);
  }
  EXPECT_FALSE(heap_tensor.arena_backed());
}

TEST(TensorArena, MoveKeepsStorageMode) {
  Arena arena;
  ArenaScope scope(arena);
  nn::Tensor t({16});
  t.Fill(2.0f);
  const float* storage = t.data();
  nn::Tensor moved = std::move(t);
  EXPECT_TRUE(moved.arena_backed());
  EXPECT_EQ(moved.data(), storage);  // move steals the arena slice
  EXPECT_EQ(moved[15], 2.0f);
}

TEST(TensorArena, ViewAndSubAliasTensorStorage) {
  Arena arena;
  ArenaScope scope(arena);
  nn::Tensor t({2, 3});
  t.View().At(1, 2) = 4.0f;
  EXPECT_EQ(t.At(1, 2), 4.0f);
  t.Sub(1)[0] = 6.0f;
  EXPECT_EQ(t.At(1, 0), 6.0f);
}

// --------------------------------------------- Arena-vs-heap bit-exactness

NecConfig TinyConfig() {
  NecConfig cfg;
  cfg.stft = {.fft_size = 64, .win_length = 64, .hop_length = 32};
  cfg.conv_channels = 4;
  cfg.fc_hidden = 16;
  cfg.embedding_dim = 8;
  return cfg;
}

TEST(TensorArena, SelectorInferBitIdenticalUnderArenaScope) {
  // The tentpole contract: running the selector with every per-call
  // temporary arena-backed must emit EXACTLY the bits of the owning heap
  // path — storage policy is invisible to the math (same zero-fill
  // construction semantics, same kernels, same accumulation order).
  const NecConfig cfg = TinyConfig();
  const Selector sel(cfg);

  Rng rng(17);
  nn::Tensor in({12, cfg.num_bins()});
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = std::abs(rng.GaussianF(0.0f, 0.5f));
  std::vector<float> dvec(cfg.embedding_dim);
  for (float& v : dvec) v = rng.GaussianF();

  const nn::Tensor heap_out = sel.Infer(in, dvec);
  ASSERT_FALSE(heap_out.arena_backed());

  Arena arena;
  std::vector<float> arena_bits;
  {
    ArenaScope scope(arena);
    const nn::Tensor arena_out = sel.Infer(in, dvec);
    EXPECT_TRUE(arena_out.arena_backed());
    arena_bits.assign(arena_out.data(), arena_out.data() + arena_out.numel());
  }
  ASSERT_EQ(arena_bits.size(), heap_out.numel());
  for (std::size_t i = 0; i < arena_bits.size(); ++i) {
    ASSERT_EQ(arena_bits[i], heap_out[i]) << "i=" << i;
  }

  // Steady state: a second scoped run replays into the warmed arena
  // without growing the chain, and still matches bit for bit.
  const std::uint64_t grown = arena.grow_count();
  {
    ArenaScope scope(arena);
    const nn::Tensor again = sel.Infer(in, dvec);
    for (std::size_t i = 0; i < again.numel(); ++i)
      ASSERT_EQ(again[i], heap_out[i]);
  }
  EXPECT_EQ(arena.grow_count(), grown);
  EXPECT_EQ(arena.InUse(), 0u);
}

}  // namespace
}  // namespace nec::core
