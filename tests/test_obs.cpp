// nec::obs: trace ring semantics (wraparound, concurrency, Chrome JSON
// well-formedness), leveled/rate-limited logging, Prometheus exposition
// round-trip + lint, LatencyHistogram bucket export, and the metrics HTTP
// endpoint. The concurrent-recording tests are in the TSan regex of
// tools/check.sh on purpose: the per-thread rings claim wait-freedom and
// this is where that claim is checked.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/http.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/stats.h"
#include "runtime/stats_export.h"

namespace nec {
namespace {

using obs::TraceEventKind;
using obs::TraceRecorder;

// ------------------------------------------------------------- helpers

/// Minimal JSON syntax check: balanced braces/brackets outside strings,
/// valid escapes, non-empty. Not a full parser — enough to catch the
/// classic exporter bugs (trailing comma handled by scan, unterminated
/// string, unbalanced scope).
bool JsonWellFormed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && !s.empty();
}

/// Scoped trace reset: tests own the process-global recorder.
struct TraceReset {
  TraceReset() { Reset(); }
  ~TraceReset() { Reset(); }
  static void Reset() {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

/// Scoped logger reset to defaults + capture.
struct LogCapture {
  std::vector<obs::LogRecord> records;
  LogCapture() {
    obs::SetLogLevel(obs::LogLevel::kInfo);
    obs::ClearComponentLogLevels();
    obs::SetLogCapture([this](const obs::LogRecord& r) {
      records.push_back(r);
    });
  }
  ~LogCapture() {
    obs::SetLogCapture(nullptr);
    obs::SetLogFormat(obs::LogFormat::kText);
    obs::SetLogLevel(obs::LogLevel::kInfo);
    obs::ClearComponentLogLevels();
  }
};

// --------------------------------------------------------------- trace

TEST(Trace, DisabledSiteRecordsNothing) {
  TraceReset reset;
  {
    obs::TraceSpan span("never");
    EXPECT_FALSE(span.armed());
  }
  obs::TraceInstant("never.instant");
  EXPECT_EQ(TraceRecorder::Global().events_recorded(), 0u);
  EXPECT_EQ(TraceRecorder::Global().events_dropped(), 0u);
}

TEST(Trace, RecordsSpansInstantsAndFlows) {
  TraceReset reset;
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(/*ring_capacity=*/256);
  TraceRecorder::SetThreadName("gtest-main");

  const std::uint64_t flow = rec.NextFlowId();
  EXPECT_NE(flow, 0u);
  EXPECT_NE(rec.NextFlowId(), flow);
  {
    obs::TraceSpan span("unit.work", "nec", /*arg=*/42);
    EXPECT_TRUE(span.armed());
    span.SetFlow(flow);
  }
  rec.RecordFlow(TraceEventKind::kFlowBegin, "unit.flow", flow);
  rec.RecordFlow(TraceEventKind::kFlowEnd, "unit.flow", flow);
  obs::TraceInstant("unit.fault", 7);
  EXPECT_EQ(rec.events_recorded(), 4u);

  const std::string json = rec.ChromeTraceJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Thread-name metadata + the span's numeric arg survive the export.
  EXPECT_NE(json.find("\"gtest-main\""), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
}

TEST(Trace, RingWraparoundKeepsNewestEvents) {
  TraceReset reset;
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(/*ring_capacity=*/8);
  for (int i = 0; i < 12; ++i) {
    rec.RecordSpan("early.span", "nec", obs::TraceNowNs(), 10);
  }
  for (int i = 0; i < 8; ++i) {
    rec.RecordSpan("late.span", "nec", obs::TraceNowNs(), 10);
  }
  EXPECT_EQ(rec.events_recorded(), 8u);
  EXPECT_EQ(rec.events_dropped(), 12u);
  const std::string json = rec.ChromeTraceJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("late.span"), std::string::npos);
  EXPECT_EQ(json.find("early.span"), std::string::npos);

  rec.Clear();
  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_EQ(rec.events_dropped(), 0u);
}

TEST(Trace, ConcurrentRecordingIsRaceFree) {
  TraceReset reset;
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(/*ring_capacity=*/1024);

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ready] {
      TraceRecorder::SetThreadName("recorder");
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan span("mt.span");
        obs::TraceInstant("mt.instant",
                          static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(rec.events_recorded(),
            static_cast<std::uint64_t>(kThreads * kSpansPerThread * 2));
  EXPECT_EQ(rec.events_dropped(), 0u);
  EXPECT_TRUE(JsonWellFormed(rec.ChromeTraceJson()));
}

// ----------------------------------------------------------------- log

TEST(Log, ParseLevelRoundTrip) {
  obs::LogLevel lvl = obs::LogLevel::kOff;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("off", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kOff);
  EXPECT_FALSE(obs::ParseLogLevel("loud", &lvl));
  EXPECT_STREQ(obs::LogLevelName(obs::LogLevel::kWarn), "warn");
}

TEST(Log, LevelGateAndComponentOverride) {
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::LogEnabled("trainer", obs::LogLevel::kInfo));
  NEC_LOG_INFO("trainer", "dropped %d", 1);
  NEC_LOG_WARN("trainer", "kept %d", 2);
  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_EQ(capture.records[0].component, "trainer");
  EXPECT_EQ(capture.records[0].message, "kept 2");

  // An override wins in both directions: opens trainer debug while the
  // global level still drops other components' info.
  obs::SetComponentLogLevel("trainer", obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::LogEnabled("trainer", obs::LogLevel::kDebug));
  EXPECT_FALSE(obs::LogEnabled("necd", obs::LogLevel::kInfo));
  NEC_LOG_DEBUG("trainer", "verbose %d", 3);
  ASSERT_EQ(capture.records.size(), 2u);
  EXPECT_EQ(capture.records[1].message, "verbose 3");
}

TEST(Log, RateLimitSuppressesAndReportsCount) {
  obs::LogRateLimit limit(/*per_second=*/1.0, /*burst=*/2.0);
  std::uint64_t suppressed = 0;
  EXPECT_TRUE(limit.Allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  EXPECT_TRUE(limit.Allow(&suppressed));
  // Bucket empty: the flood is swallowed and counted.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(limit.Allow(&suppressed));
  }
  limit.AdvanceForTest(1.0);  // refills one token
  EXPECT_TRUE(limit.Allow(&suppressed));
  EXPECT_EQ(suppressed, 10u);
  EXPECT_FALSE(limit.Allow(&suppressed));
}

TEST(Log, JsonLinesAreWellFormed) {
  LogCapture capture;
  obs::SetLogCapture(nullptr);  // write to a file instead
  obs::SetLogFormat(obs::LogFormat::kJson);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  obs::SetLogFile(tmp);
  NEC_LOG_INFO("necd", "quoted \"payload\" %d", 5);
  obs::SetLogFile(stderr);
  obs::SetLogFormat(obs::LogFormat::kText);

  std::rewind(tmp);
  char buf[512] = {};
  ASSERT_NE(std::fgets(buf, sizeof buf, tmp), nullptr);
  std::fclose(tmp);
  const std::string line(buf);
  EXPECT_TRUE(JsonWellFormed(line)) << line;
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"necd\""), std::string::npos) << line;
  EXPECT_NE(line.find("\\\"payload\\\""), std::string::npos) << line;
}

// ------------------------------------------------------------- metrics

obs::MetricFamily MakeTestHistogram() {
  obs::MetricFamily f;
  f.name = "nec_test_seconds";
  f.help = "test latency";
  f.type = obs::MetricType::kHistogram;
  obs::Metric m;
  m.histogram.upper_bounds = {0.01, 0.1, 1.0};
  m.histogram.cumulative = {2, 5, 9};
  m.histogram.count = 10;  // one observation above the last bound
  m.histogram.sum = 3.5;
  f.metrics.push_back(m);
  return f;
}

TEST(Metrics, PrometheusRenderParsesCleanly) {
  std::vector<obs::MetricFamily> families;
  families.push_back(obs::MakeCounter("nec_chunks_total", "chunks", 42));
  families.push_back(obs::MakeGauge("nec_queue_depth", "depth", 3));
  families.push_back(MakeTestHistogram());

  const std::string text = obs::RenderPrometheusText(families);
  EXPECT_NE(text.find("# TYPE nec_chunks_total counter"), std::string::npos);
  EXPECT_NE(text.find("nec_test_seconds_bucket{le=\"+Inf\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("nec_test_seconds_count 10"), std::string::npos);

  std::vector<obs::MetricFamily> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), families.size());
  EXPECT_DOUBLE_EQ(parsed[0].metrics[0].value, 42.0);
  const obs::HistogramData& h = parsed[2].metrics[0].histogram;
  ASSERT_EQ(h.upper_bounds.size(), 3u);  // +Inf folded into count
  EXPECT_EQ(h.cumulative, (std::vector<std::uint64_t>{2, 5, 9}));
  EXPECT_EQ(h.count, 10u);
  EXPECT_DOUBLE_EQ(h.sum, 3.5);
}

TEST(Metrics, LintRejectsBrokenExposition) {
  std::vector<obs::MetricFamily> parsed;
  std::string error;

  // Buckets must be cumulative.
  EXPECT_FALSE(obs::ParsePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
      &parsed, &error));
  EXPECT_NE(error.find("cumulative"), std::string::npos) << error;

  // The +Inf bucket must equal _count.
  parsed.clear();
  EXPECT_FALSE(obs::ParsePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n"
      "h_sum 1\nh_count 3\n",
      &parsed, &error));

  // TYPE after the family's samples is a spec violation.
  parsed.clear();
  EXPECT_FALSE(obs::ParsePrometheusText(
      "c_total 1\n# TYPE c_total counter\n", &parsed, &error));
}

TEST(Metrics, HistogramQuantileCrossesCdf) {
  obs::HistogramData h;
  h.upper_bounds = {1.0, 2.0, 4.0};
  h.cumulative = {10, 50, 100};
  h.count = 100;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(h, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(h, 0.50), 2.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(h, 0.99), 4.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(obs::HistogramData{}, 0.5), 0.0);
}

// ------------------------------------------------- runtime stats export

TEST(StatsExport, LatencyHistogramBucketsMatchQuantiles) {
  runtime::LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));

  const runtime::HistogramSnapshot snap = hist.Buckets();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.sum_ms, 5050.0, 0.5);
  EXPECT_NEAR(snap.max_ms, 100.0, 1e-6);
  ASSERT_FALSE(snap.cumulative.empty());
  EXPECT_EQ(snap.cumulative.back(), 100u);
  for (std::size_t i = 1; i < snap.cumulative.size(); ++i) {
    EXPECT_GE(snap.cumulative[i], snap.cumulative[i - 1]);
  }

  // The bucketed CDF must reproduce the pre-existing Quantiles() numbers
  // exactly — same buckets, same crossing rule (the bit-identical
  // contract for this refactor).
  const runtime::LatencyQuantiles q = hist.Quantiles();
  obs::HistogramData h;
  for (std::size_t i = 0; i < snap.cumulative.size(); ++i) {
    h.upper_bounds.push_back(runtime::LatencyHistogram::BucketUpperMs(i));
    h.cumulative.push_back(snap.cumulative[i]);
  }
  h.count = snap.count;
  // Quantiles() clamps tail quantiles to the true max (bucket ceilings
  // overshoot); apply the same clamp to the bucketed CDF result.
  const auto clamped = [&](double p) {
    return std::min(obs::HistogramQuantile(h, p), snap.max_ms);
  };
  EXPECT_DOUBLE_EQ(clamped(0.50), q.p50_ms);
  EXPECT_DOUBLE_EQ(clamped(0.95), q.p95_ms);
  EXPECT_DOUBLE_EQ(clamped(0.99), q.p99_ms);
}

TEST(StatsExport, SnapshotRendersLintCleanPrometheus) {
  runtime::LatencyHistogram hist;
  hist.Record(12.0);
  hist.Record(40.0);

  runtime::RuntimeStatsSnapshot snap;
  snap.sessions = 2;
  snap.chunks_processed = 17;
  snap.queue_depth = 3;
  snap.chunk_latency = hist.Quantiles();
  snap.chunk_latency_hist = hist.Buckets();

  const auto families = runtime::SnapshotToMetricFamilies(snap);
  const std::string text = obs::RenderPrometheusText(families);

  std::vector<obs::MetricFamily> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(text, &parsed, &error))
      << error << "\n" << text;
  EXPECT_NE(text.find("nec_chunks_processed_total 17"), std::string::npos);
  EXPECT_NE(text.find("nec_chunk_latency_seconds_count 2"),
            std::string::npos);
  // Fault categories come out as labeled samples of one family.
  EXPECT_NE(text.find("nec_faults_total{category=\"overload\"} 0"),
            std::string::npos);
  EXPECT_TRUE(JsonWellFormed(obs::RenderMetricsJson(families)));
}

// ---------------------------------------------------------------- http

TEST(Http, ParseUrlForms) {
  std::string host, path;
  int port = 0;
  EXPECT_TRUE(obs::ParseHttpUrl("http://127.0.0.1:9000/metrics", &host,
                                &port, &path));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  EXPECT_EQ(path, "/metrics");
  EXPECT_TRUE(obs::ParseHttpUrl("localhost", &host, &port, &path));
  EXPECT_EQ(port, 9464);
  EXPECT_EQ(path, "/");
  EXPECT_FALSE(obs::ParseHttpUrl("https://x", &host, &port, &path));
  EXPECT_FALSE(obs::ParseHttpUrl("", &host, &port, &path));
}

TEST(Http, ServesHandlersOnEphemeralPort) {
  obs::MetricsServer server;
  std::atomic<int> hits{0};
  server.Handle("/metrics", [&hits](const std::string&,
                                    const std::string& query) {
    ++hits;
    return obs::HttpResponse{200, "text/plain; version=0.0.4",
                             "nec_up 1\nquery=" + query + "\n"};
  });
  std::string error;
  ASSERT_TRUE(server.Start({.host = "127.0.0.1", .port = 0}, &error))
      << error;
  ASSERT_GT(server.port(), 0);

  std::string body;
  int status = 0;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", server.port(), "/metrics?x=1",
                           &body, &status, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("nec_up 1"), std::string::npos);
  EXPECT_NE(body.find("query=x=1"), std::string::npos);

  ASSERT_TRUE(obs::HttpGet("127.0.0.1", server.port(), "/missing", &body,
                           &status, &error))
      << error;
  EXPECT_EQ(status, 404);

  EXPECT_EQ(hits.load(), 1);
  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(obs::HttpGet("127.0.0.1", server.port(), "/metrics", &body,
                            &status, &error));
}

}  // namespace
}  // namespace nec
