// nec::obs: trace ring semantics (wraparound, concurrency, Chrome JSON
// well-formedness), leveled/rate-limited logging, Prometheus exposition
// round-trip + lint, LatencyHistogram bucket export, and the metrics HTTP
// endpoint. The concurrent-recording tests are in the TSan regex of
// tools/check.sh on purpose: the per-thread rings claim wait-freedom and
// this is where that claim is checked.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/fleet.h"
#include "obs/http.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/stats.h"
#include "runtime/stats_export.h"

namespace nec {
namespace {

using obs::TraceEventKind;
using obs::TraceRecorder;

// ------------------------------------------------------------- helpers

/// Minimal JSON syntax check: balanced braces/brackets outside strings,
/// valid escapes, non-empty. Not a full parser — enough to catch the
/// classic exporter bugs (trailing comma handled by scan, unterminated
/// string, unbalanced scope).
bool JsonWellFormed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && !s.empty();
}

/// Scoped trace reset: tests own the process-global recorder.
struct TraceReset {
  TraceReset() { Reset(); }
  ~TraceReset() { Reset(); }
  static void Reset() {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

/// Scoped logger reset to defaults + capture.
struct LogCapture {
  std::vector<obs::LogRecord> records;
  LogCapture() {
    obs::SetLogLevel(obs::LogLevel::kInfo);
    obs::ClearComponentLogLevels();
    obs::SetLogCapture([this](const obs::LogRecord& r) {
      records.push_back(r);
    });
  }
  ~LogCapture() {
    obs::SetLogCapture(nullptr);
    obs::SetLogFormat(obs::LogFormat::kText);
    obs::SetLogLevel(obs::LogLevel::kInfo);
    obs::ClearComponentLogLevels();
  }
};

// --------------------------------------------------------------- trace

TEST(Trace, DisabledSiteRecordsNothing) {
  TraceReset reset;
  {
    obs::TraceSpan span("never");
    EXPECT_FALSE(span.armed());
  }
  obs::TraceInstant("never.instant");
  EXPECT_EQ(TraceRecorder::Global().events_recorded(), 0u);
  EXPECT_EQ(TraceRecorder::Global().events_dropped(), 0u);
}

TEST(Trace, RecordsSpansInstantsAndFlows) {
  TraceReset reset;
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(/*ring_capacity=*/256);
  TraceRecorder::SetThreadName("gtest-main");

  const std::uint64_t flow = rec.NextFlowId();
  EXPECT_NE(flow, 0u);
  EXPECT_NE(rec.NextFlowId(), flow);
  {
    obs::TraceSpan span("unit.work", "nec", /*arg=*/42);
    EXPECT_TRUE(span.armed());
    span.SetFlow(flow);
  }
  rec.RecordFlow(TraceEventKind::kFlowBegin, "unit.flow", flow);
  rec.RecordFlow(TraceEventKind::kFlowEnd, "unit.flow", flow);
  obs::TraceInstant("unit.fault", 7);
  EXPECT_EQ(rec.events_recorded(), 4u);

  const std::string json = rec.ChromeTraceJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Thread-name metadata + the span's numeric arg survive the export.
  EXPECT_NE(json.find("\"gtest-main\""), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
}

TEST(Trace, RingWraparoundKeepsNewestEvents) {
  TraceReset reset;
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(/*ring_capacity=*/8);
  for (int i = 0; i < 12; ++i) {
    rec.RecordSpan("early.span", "nec", obs::TraceNowNs(), 10);
  }
  for (int i = 0; i < 8; ++i) {
    rec.RecordSpan("late.span", "nec", obs::TraceNowNs(), 10);
  }
  EXPECT_EQ(rec.events_recorded(), 8u);
  EXPECT_EQ(rec.events_dropped(), 12u);
  const std::string json = rec.ChromeTraceJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("late.span"), std::string::npos);
  EXPECT_EQ(json.find("early.span"), std::string::npos);

  rec.Clear();
  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_EQ(rec.events_dropped(), 0u);
}

TEST(Trace, ConcurrentRecordingIsRaceFree) {
  TraceReset reset;
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(/*ring_capacity=*/1024);

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ready] {
      TraceRecorder::SetThreadName("recorder");
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan span("mt.span");
        obs::TraceInstant("mt.instant",
                          static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(rec.events_recorded(),
            static_cast<std::uint64_t>(kThreads * kSpansPerThread * 2));
  EXPECT_EQ(rec.events_dropped(), 0u);
  EXPECT_TRUE(JsonWellFormed(rec.ChromeTraceJson()));
}

// ----------------------------------------------------------------- log

TEST(Log, ParseLevelRoundTrip) {
  obs::LogLevel lvl = obs::LogLevel::kOff;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("off", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kOff);
  EXPECT_FALSE(obs::ParseLogLevel("loud", &lvl));
  EXPECT_STREQ(obs::LogLevelName(obs::LogLevel::kWarn), "warn");
}

TEST(Log, LevelGateAndComponentOverride) {
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::LogEnabled("trainer", obs::LogLevel::kInfo));
  NEC_LOG_INFO("trainer", "dropped %d", 1);
  NEC_LOG_WARN("trainer", "kept %d", 2);
  ASSERT_EQ(capture.records.size(), 1u);
  EXPECT_EQ(capture.records[0].component, "trainer");
  EXPECT_EQ(capture.records[0].message, "kept 2");

  // An override wins in both directions: opens trainer debug while the
  // global level still drops other components' info.
  obs::SetComponentLogLevel("trainer", obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::LogEnabled("trainer", obs::LogLevel::kDebug));
  EXPECT_FALSE(obs::LogEnabled("necd", obs::LogLevel::kInfo));
  NEC_LOG_DEBUG("trainer", "verbose %d", 3);
  ASSERT_EQ(capture.records.size(), 2u);
  EXPECT_EQ(capture.records[1].message, "verbose 3");
}

TEST(Log, RateLimitSuppressesAndReportsCount) {
  obs::LogRateLimit limit(/*per_second=*/1.0, /*burst=*/2.0);
  std::uint64_t suppressed = 0;
  EXPECT_TRUE(limit.Allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  EXPECT_TRUE(limit.Allow(&suppressed));
  // Bucket empty: the flood is swallowed and counted.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(limit.Allow(&suppressed));
  }
  limit.AdvanceForTest(1.0);  // refills one token
  EXPECT_TRUE(limit.Allow(&suppressed));
  EXPECT_EQ(suppressed, 10u);
  EXPECT_FALSE(limit.Allow(&suppressed));
}

TEST(Log, JsonLinesAreWellFormed) {
  LogCapture capture;
  obs::SetLogCapture(nullptr);  // write to a file instead
  obs::SetLogFormat(obs::LogFormat::kJson);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  obs::SetLogFile(tmp);
  NEC_LOG_INFO("necd", "quoted \"payload\" %d", 5);
  obs::SetLogFile(stderr);
  obs::SetLogFormat(obs::LogFormat::kText);

  std::rewind(tmp);
  char buf[512] = {};
  ASSERT_NE(std::fgets(buf, sizeof buf, tmp), nullptr);
  std::fclose(tmp);
  const std::string line(buf);
  EXPECT_TRUE(JsonWellFormed(line)) << line;
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"necd\""), std::string::npos) << line;
  EXPECT_NE(line.find("\\\"payload\\\""), std::string::npos) << line;
}

// ------------------------------------------------------------- metrics

obs::MetricFamily MakeTestHistogram() {
  obs::MetricFamily f;
  f.name = "nec_test_seconds";
  f.help = "test latency";
  f.type = obs::MetricType::kHistogram;
  obs::Metric m;
  m.histogram.upper_bounds = {0.01, 0.1, 1.0};
  m.histogram.cumulative = {2, 5, 9};
  m.histogram.count = 10;  // one observation above the last bound
  m.histogram.sum = 3.5;
  f.metrics.push_back(m);
  return f;
}

TEST(Metrics, PrometheusRenderParsesCleanly) {
  std::vector<obs::MetricFamily> families;
  families.push_back(obs::MakeCounter("nec_chunks_total", "chunks", 42));
  families.push_back(obs::MakeGauge("nec_queue_depth", "depth", 3));
  families.push_back(MakeTestHistogram());

  const std::string text = obs::RenderPrometheusText(families);
  EXPECT_NE(text.find("# TYPE nec_chunks_total counter"), std::string::npos);
  EXPECT_NE(text.find("nec_test_seconds_bucket{le=\"+Inf\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("nec_test_seconds_count 10"), std::string::npos);

  std::vector<obs::MetricFamily> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), families.size());
  EXPECT_DOUBLE_EQ(parsed[0].metrics[0].value, 42.0);
  const obs::HistogramData& h = parsed[2].metrics[0].histogram;
  ASSERT_EQ(h.upper_bounds.size(), 3u);  // +Inf folded into count
  EXPECT_EQ(h.cumulative, (std::vector<std::uint64_t>{2, 5, 9}));
  EXPECT_EQ(h.count, 10u);
  EXPECT_DOUBLE_EQ(h.sum, 3.5);
}

TEST(Metrics, LintRejectsBrokenExposition) {
  std::vector<obs::MetricFamily> parsed;
  std::string error;

  // Buckets must be cumulative.
  EXPECT_FALSE(obs::ParsePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
      &parsed, &error));
  EXPECT_NE(error.find("cumulative"), std::string::npos) << error;

  // The +Inf bucket must equal _count.
  parsed.clear();
  EXPECT_FALSE(obs::ParsePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n"
      "h_sum 1\nh_count 3\n",
      &parsed, &error));

  // TYPE after the family's samples is a spec violation.
  parsed.clear();
  EXPECT_FALSE(obs::ParsePrometheusText(
      "c_total 1\n# TYPE c_total counter\n", &parsed, &error));
}

TEST(Metrics, HistogramQuantileCrossesCdf) {
  obs::HistogramData h;
  h.upper_bounds = {1.0, 2.0, 4.0};
  h.cumulative = {10, 50, 100};
  h.count = 100;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(h, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(h, 0.50), 2.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(h, 0.99), 4.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(obs::HistogramData{}, 0.5), 0.0);
}

// ------------------------------------------------- runtime stats export

TEST(StatsExport, LatencyHistogramBucketsMatchQuantiles) {
  runtime::LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));

  const runtime::HistogramSnapshot snap = hist.Buckets();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.sum_ms, 5050.0, 0.5);
  EXPECT_NEAR(snap.max_ms, 100.0, 1e-6);
  ASSERT_FALSE(snap.cumulative.empty());
  EXPECT_EQ(snap.cumulative.back(), 100u);
  for (std::size_t i = 1; i < snap.cumulative.size(); ++i) {
    EXPECT_GE(snap.cumulative[i], snap.cumulative[i - 1]);
  }

  // The bucketed CDF must reproduce the pre-existing Quantiles() numbers
  // exactly — same buckets, same crossing rule (the bit-identical
  // contract for this refactor).
  const runtime::LatencyQuantiles q = hist.Quantiles();
  obs::HistogramData h;
  for (std::size_t i = 0; i < snap.cumulative.size(); ++i) {
    h.upper_bounds.push_back(runtime::LatencyHistogram::BucketUpperMs(i));
    h.cumulative.push_back(snap.cumulative[i]);
  }
  h.count = snap.count;
  // Quantiles() clamps tail quantiles to the true max (bucket ceilings
  // overshoot); apply the same clamp to the bucketed CDF result.
  const auto clamped = [&](double p) {
    return std::min(obs::HistogramQuantile(h, p), snap.max_ms);
  };
  EXPECT_DOUBLE_EQ(clamped(0.50), q.p50_ms);
  EXPECT_DOUBLE_EQ(clamped(0.95), q.p95_ms);
  EXPECT_DOUBLE_EQ(clamped(0.99), q.p99_ms);
}

TEST(StatsExport, SnapshotRendersLintCleanPrometheus) {
  runtime::LatencyHistogram hist;
  hist.Record(12.0);
  hist.Record(40.0);

  runtime::RuntimeStatsSnapshot snap;
  snap.sessions = 2;
  snap.chunks_processed = 17;
  snap.queue_depth = 3;
  snap.chunk_latency = hist.Quantiles();
  snap.chunk_latency_hist = hist.Buckets();

  const auto families = runtime::SnapshotToMetricFamilies(snap);
  const std::string text = obs::RenderPrometheusText(families);

  std::vector<obs::MetricFamily> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(text, &parsed, &error))
      << error << "\n" << text;
  EXPECT_NE(text.find("nec_chunks_processed_total 17"), std::string::npos);
  EXPECT_NE(text.find("nec_chunk_latency_seconds_count 2"),
            std::string::npos);
  // Fault categories come out as labeled samples of one family.
  EXPECT_NE(text.find("nec_faults_total{category=\"overload\"} 0"),
            std::string::npos);
  EXPECT_TRUE(JsonWellFormed(obs::RenderMetricsJson(families)));
}

// ---------------------------------------------------------------- http

TEST(Http, ParseUrlForms) {
  std::string host, path;
  int port = 0;
  EXPECT_TRUE(obs::ParseHttpUrl("http://127.0.0.1:9000/metrics", &host,
                                &port, &path));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  EXPECT_EQ(path, "/metrics");
  EXPECT_TRUE(obs::ParseHttpUrl("localhost", &host, &port, &path));
  EXPECT_EQ(port, 9464);
  EXPECT_EQ(path, "/");
  EXPECT_FALSE(obs::ParseHttpUrl("https://x", &host, &port, &path));
  EXPECT_FALSE(obs::ParseHttpUrl("", &host, &port, &path));
}

TEST(Http, ServesHandlersOnEphemeralPort) {
  obs::MetricsServer server;
  std::atomic<int> hits{0};
  server.Handle("/metrics", [&hits](const std::string&,
                                    const std::string& query) {
    ++hits;
    return obs::HttpResponse{200, "text/plain; version=0.0.4",
                             "nec_up 1\nquery=" + query + "\n"};
  });
  std::string error;
  ASSERT_TRUE(server.Start({.host = "127.0.0.1", .port = 0}, &error))
      << error;
  ASSERT_GT(server.port(), 0);

  std::string body;
  int status = 0;
  ASSERT_TRUE(obs::HttpGet("127.0.0.1", server.port(), "/metrics?x=1",
                           &body, &status, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("nec_up 1"), std::string::npos);
  EXPECT_NE(body.find("query=x=1"), std::string::npos);

  ASSERT_TRUE(obs::HttpGet("127.0.0.1", server.port(), "/missing", &body,
                           &status, &error))
      << error;
  EXPECT_EQ(status, 404);

  EXPECT_EQ(hits.load(), 1);
  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(obs::HttpGet("127.0.0.1", server.port(), "/metrics", &body,
                            &status, &error));
}

// --------------------------------------------- parser fleet edge cases

TEST(Metrics, LabelValueEscapingRoundTrips) {
  obs::MetricFamily f = obs::MakeCounter("nec_odd_total", "odd labels", 7);
  f.metrics[0].labels.emplace_back("path", "a\"b}c\\d\ne");
  f.metrics[0].labels.emplace_back("plain", "ok");
  std::vector<obs::MetricFamily> families{f};

  const std::string text = obs::RenderPrometheusText(families);
  std::vector<obs::MetricFamily> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(text, &parsed, &error))
      << error << "\n" << text;
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].metrics.size(), 1u);
  EXPECT_EQ(parsed[0].metrics[0].labels, f.metrics[0].labels);
  EXPECT_DOUBLE_EQ(parsed[0].metrics[0].value, 7.0);
}

TEST(Metrics, ZeroSampleFamilyParsesAsEmpty) {
  // A TYPE header with no samples yet is legal exposition — a process
  // that has not observed anything still declares its families, and the
  // fleet fold must accept such a member.
  std::vector<obs::MetricFamily> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(
      "# HELP nec_idle_total not yet incremented\n"
      "# TYPE nec_idle_total counter\n"
      "# TYPE nec_busy_total counter\n"
      "nec_busy_total 1\n",
      &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "nec_idle_total");
  EXPECT_TRUE(parsed[0].metrics.empty());
  ASSERT_EQ(parsed[1].metrics.size(), 1u);
}

TEST(Metrics, MultiLabelHistogramKeepsLabelSetsApart) {
  // One histogram family, two label sets (the shape of
  // nec_hop_latency_seconds): each non-le label combination must come
  // back as its own Metric with its own bucket surface.
  std::vector<obs::MetricFamily> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParsePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{hop=\"reply\",le=\"1\"} 2\n"
      "h_bucket{hop=\"reply\",le=\"+Inf\"} 3\n"
      "h_sum{hop=\"reply\"} 1.5\n"
      "h_count{hop=\"reply\"} 3\n"
      "h_bucket{hop=\"shard_queue\",le=\"1\"} 5\n"
      "h_bucket{hop=\"shard_queue\",le=\"+Inf\"} 5\n"
      "h_sum{hop=\"shard_queue\"} 2.5\n"
      "h_count{hop=\"shard_queue\"} 5\n",
      &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].metrics.size(), 2u);
  EXPECT_EQ(parsed[0].metrics[0].histogram.count, 3u);
  EXPECT_EQ(parsed[0].metrics[1].histogram.count, 5u);
  // ... and the le="+Inf" == count lint applies per label set.
  EXPECT_FALSE(obs::ParsePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{hop=\"reply\",le=\"+Inf\"} 3\n"
      "h_sum{hop=\"reply\"} 1.5\n"
      "h_count{hop=\"reply\"} 4\n",
      &parsed, &error));
}

// ------------------------------------------------------ fleet merging

TEST(HistogramMerge, CommutativeWithEmptyIdentity) {
  runtime::LatencyHistogram ha, hb;
  for (int i = 1; i <= 40; ++i) ha.Record(i * 3.0);
  for (int i = 1; i <= 25; ++i) hb.Record(i * 7.0);
  const runtime::HistogramSnapshot a = ha.Buckets();
  const runtime::HistogramSnapshot b = hb.Buckets();

  const runtime::HistogramSnapshot ab = runtime::LatencyHistogram::Merge(a, b);
  const runtime::HistogramSnapshot ba = runtime::LatencyHistogram::Merge(b, a);
  EXPECT_EQ(ab.cumulative, ba.cumulative);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_DOUBLE_EQ(ab.sum_ms, ba.sum_ms);
  EXPECT_DOUBLE_EQ(ab.max_ms, ba.max_ms);
  EXPECT_EQ(ab.count, a.count + b.count);

  const runtime::HistogramSnapshot id =
      runtime::LatencyHistogram::Merge(a, runtime::HistogramSnapshot{});
  EXPECT_EQ(id.cumulative, a.cumulative);
  EXPECT_EQ(id.count, a.count);
  EXPECT_DOUBLE_EQ(id.sum_ms, a.sum_ms);
  EXPECT_DOUBLE_EQ(id.max_ms, a.max_ms);
}

TEST(HistogramMerge, MergedCdfEqualsPooledSamples) {
  // Recording A∪B into one histogram must equal Merge(A-hist, B-hist)
  // bucket-for-bucket: same deterministic bucketing, so any quantile of
  // the merged CDF is a true pooled quantile, not an average of
  // per-shard quantiles.
  runtime::LatencyHistogram ha, hb, pooled;
  for (int i = 1; i <= 60; ++i) {
    const double ms = 0.5 + i * 1.7;
    ha.Record(ms);
    pooled.Record(ms);
  }
  for (int i = 1; i <= 90; ++i) {
    const double ms = 20.0 + i * 4.3;
    hb.Record(ms);
    pooled.Record(ms);
  }
  const runtime::HistogramSnapshot merged =
      runtime::LatencyHistogram::Merge(ha.Buckets(), hb.Buckets());
  const runtime::HistogramSnapshot want = pooled.Buckets();
  EXPECT_EQ(merged.cumulative, want.cumulative);
  EXPECT_EQ(merged.count, want.count);
  EXPECT_NEAR(merged.sum_ms, want.sum_ms, 1e-6 * want.sum_ms);
  EXPECT_DOUBLE_EQ(merged.max_ms, want.max_ms);
}

/// HistogramData on the canonical grid from a LatencyHistogram snapshot
/// (what a member's /metrics scrape reconstitutes to), change-compressed
/// the way the renderer emits it: only bounds where the CDF moves.
obs::HistogramData CompressedSurface(const runtime::HistogramSnapshot& snap) {
  obs::HistogramData h;
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < snap.cumulative.size(); ++i) {
    if (snap.cumulative[i] == last && i + 1 != snap.cumulative.size()) {
      continue;
    }
    h.upper_bounds.push_back(runtime::LatencyHistogram::BucketUpperMs(i) /
                             1000.0);
    h.cumulative.push_back(snap.cumulative[i]);
    last = snap.cumulative[i];
  }
  h.count = snap.count;
  h.sum = snap.sum_ms / 1000.0;
  return h;
}

TEST(StatsExport, MergeHistogramDataAddsCompressedSurfaces) {
  runtime::LatencyHistogram ha, hb, pooled;
  for (int i = 1; i <= 30; ++i) {
    ha.Record(i * 2.0);
    pooled.Record(i * 2.0);
  }
  for (int i = 1; i <= 50; ++i) {
    hb.Record(i * 11.0);
    pooled.Record(i * 11.0);
  }
  // Two members legitimately expose DIFFERENT bound subsets of the same
  // grid (change compression); the merge must reconstitute both.
  obs::HistogramData acc;  // empty accumulator = identity
  std::string error;
  ASSERT_EQ(runtime::MergeHistogramData(CompressedSurface(ha.Buckets()), &acc,
                                        &error),
            runtime::HistogramMergeStatus::kOk)
      << error;
  ASSERT_EQ(runtime::MergeHistogramData(CompressedSurface(hb.Buckets()), &acc,
                                        &error),
            runtime::HistogramMergeStatus::kOk)
      << error;

  const runtime::HistogramSnapshot want = pooled.Buckets();
  ASSERT_EQ(acc.cumulative.size(), want.cumulative.size());
  for (std::size_t i = 0; i < want.cumulative.size(); ++i) {
    EXPECT_EQ(acc.cumulative[i], want.cumulative[i]) << "bucket " << i;
  }
  EXPECT_EQ(acc.count, want.count);
}

TEST(StatsExport, MergeHistogramDataRejectsOffGridBounds) {
  obs::HistogramData acc;
  std::string error;
  // Seed the accumulator with a real surface first.
  runtime::LatencyHistogram h;
  h.Record(5.0);
  ASSERT_EQ(runtime::MergeHistogramData(CompressedSurface(h.Buckets()), &acc,
                                        &error),
            runtime::HistogramMergeStatus::kOk);
  const std::uint64_t count_before = acc.count;

  obs::HistogramData alien;
  alien.upper_bounds = {0.005, 0.05, 0.5};  // a different bucket layout
  alien.cumulative = {1, 2, 3};
  alien.count = 3;
  EXPECT_EQ(runtime::MergeHistogramData(alien, &acc, &error),
            runtime::HistogramMergeStatus::kBoundaryMismatch);
  EXPECT_NE(error.find("canonical grid"), std::string::npos) << error;

  // The typed error left the accumulator usable: the bad source was not
  // folded and a good one still merges.
  EXPECT_EQ(acc.count, count_before);
  runtime::LatencyHistogram more;
  more.Record(9.0);
  EXPECT_EQ(runtime::MergeHistogramData(CompressedSurface(more.Buckets()),
                                        &acc, &error),
            runtime::HistogramMergeStatus::kOk);
  EXPECT_EQ(acc.count, count_before + 1);
}

TEST(StatsExport, HopLatencyFamilyOmitsZeroHops) {
  runtime::HopStats::Global().Reset();
  runtime::HopStats::Global().Record(runtime::Hop::kShardQueue, 1.5);
  runtime::HopStats::Global().Record(runtime::Hop::kShardCompute, 12.0);
  runtime::HopStats::Global().Record(runtime::Hop::kShardCompute, 14.0);

  const obs::MetricFamily family = runtime::HopLatencyFamily();
  EXPECT_EQ(family.name, "nec_hop_latency_seconds");
  ASSERT_EQ(family.metrics.size(), 2u);  // recorded hops only
  EXPECT_EQ(family.metrics[0].labels[0].second, "shard_queue");
  EXPECT_EQ(family.metrics[1].labels[0].second, "shard_compute");
  EXPECT_EQ(family.metrics[1].histogram.count, 2u);

  // The family renders lint-clean alongside the rest of a scrape.
  std::vector<obs::MetricFamily> families{family};
  std::vector<obs::MetricFamily> parsed;
  std::string error;
  EXPECT_TRUE(obs::ParsePrometheusText(obs::RenderPrometheusText(families),
                                       &parsed, &error))
      << error;
  runtime::HopStats::Global().Reset();
}

TEST(Fleet, FoldSumsCountersAndMergesHistograms) {
  const auto member_text = [](double chunks, double queue,
                              const runtime::HistogramSnapshot& e2e) {
    runtime::RuntimeStatsSnapshot snap;
    snap.chunks_processed = static_cast<std::uint64_t>(chunks);
    snap.queue_depth = static_cast<std::size_t>(queue);
    snap.e2e_latency_hist = e2e;
    return obs::RenderPrometheusText(runtime::SnapshotToMetricFamilies(snap));
  };
  runtime::LatencyHistogram ha, hb;
  for (int i = 1; i <= 10; ++i) ha.Record(i * 5.0);
  for (int i = 1; i <= 30; ++i) hb.Record(i * 9.0);

  net::FleetView view;
  ASSERT_TRUE(
      net::FoldMemberMetrics("s1", member_text(100, 3, ha.Buckets()), &view));
  ASSERT_TRUE(
      net::FoldMemberMetrics("s2", member_text(40, 2, hb.Buckets()), &view));
  EXPECT_EQ(view.folded, 2u);
  ASSERT_EQ(view.rows.size(), 2u);
  EXPECT_EQ(view.rows[0].label, "s1");
  EXPECT_DOUBLE_EQ(view.rows[0].chunks_total, 100.0);
  EXPECT_EQ(view.rows[0].e2e_count, 10u);
  EXPECT_DOUBLE_EQ(view.rows[1].chunks_total, 40.0);

  // Merged families: counters summed, histogram counts added.
  double chunks = -1.0;
  std::uint64_t e2e_count = 0;
  for (const obs::MetricFamily& f : view.merged) {
    if (f.name == "nec_chunks_processed_total") chunks = f.metrics[0].value;
    if (f.name == "nec_chunk_e2e_latency_seconds") {
      e2e_count = f.metrics[0].histogram.count;
    }
  }
  EXPECT_DOUBLE_EQ(chunks, 140.0);
  EXPECT_EQ(e2e_count, 40u);

  const std::string json = net::RenderFleetJson(view, {});
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"folded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"chunks_total\":140"), std::string::npos);
}

TEST(Fleet, BrokenMemberIsReportedNotFolded) {
  net::FleetView view;
  EXPECT_FALSE(net::FoldMemberMetrics(
      "bad", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n",
      &view));
  EXPECT_EQ(view.folded, 0u);
  ASSERT_EQ(view.rows.size(), 1u);
  EXPECT_FALSE(view.rows[0].folded);
  EXPECT_TRUE(view.rows[0].reachable);
  EXPECT_NE(view.rows[0].error.find("exposition lint"), std::string::npos);

  // A good member after a bad one still folds; JSON carries both rows.
  ASSERT_TRUE(net::FoldMemberMetrics(
      "good", "# TYPE nec_chunks_processed_total counter\n"
              "nec_chunks_processed_total 9\n",
      &view));
  EXPECT_EQ(view.folded, 1u);
  const std::string json = net::RenderFleetJson(view, {});
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"reachable\":true,\"folded\":false"),
            std::string::npos);
}

}  // namespace
}  // namespace nec
