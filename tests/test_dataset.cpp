// Tests for the benchmark corpus builder (Table I substitute).
#include <gtest/gtest.h>

#include "audio/level.h"
#include "common/check.h"
#include "synth/dataset.h"

namespace nec::synth {
namespace {

TEST(DatasetBuilder, MakeSpeakersAreDistinctAndDeterministic) {
  const auto a = DatasetBuilder::MakeSpeakers(5, 42);
  const auto b = DatasetBuilder::MakeSpeakers(5, 42);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].f0_base_hz, b[i].f0_base_hz);
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(a[i].f0_base_hz, a[j].f0_base_hz);
    }
  }
}

TEST(DatasetBuilder, ReferenceAudiosMatchPaperEnrollment) {
  // Paper: 3 reference clips of 3 s each.
  DatasetBuilder builder({.duration_s = 3.0});
  const auto spk = SpeakerProfile::FromSeed(1);
  const auto refs = builder.MakeReferenceAudios(spk, 3, 7);
  ASSERT_EQ(refs.size(), 3u);
  for (const auto& ref : refs) {
    EXPECT_EQ(ref.size(), 48000u);
    EXPECT_GT(ref.Rms(), 0.01f);
  }
}

TEST(DatasetBuilder, UtteranceFillsExactDuration) {
  DatasetBuilder builder({.duration_s = 2.0});
  const auto spk = SpeakerProfile::FromSeed(2);
  const Utterance utt = builder.MakeUtterance(spk, 5);
  EXPECT_EQ(utt.wave.size(), 32000u);
  EXPECT_FALSE(utt.timings.empty());
  EXPECT_LT(utt.timings.back().start_sample, 32000u);
}

TEST(DatasetBuilder, MixedEqualsSumOfStems) {
  DatasetBuilder builder({.duration_s = 1.5});
  const auto spks = DatasetBuilder::MakeSpeakers(2, 9);
  const MixInstance inst =
      builder.MakeInstance(spks[0], Scenario::kJointConversation, 3,
                           &spks[1]);
  ASSERT_EQ(inst.mixed.size(), inst.target.size());
  ASSERT_EQ(inst.mixed.size(), inst.background.size());
  for (std::size_t i = 0; i < inst.mixed.size(); ++i) {
    EXPECT_NEAR(inst.mixed[i], inst.target[i] + inst.background[i], 1e-5);
  }
}

TEST(DatasetBuilder, SnrSettingControlsStemRatio) {
  for (double snr : {-6.0, 0.0, 6.0}) {
    DatasetBuilder builder(
        {.duration_s = 1.5, .background_snr_db = snr});
    const auto spks = DatasetBuilder::MakeSpeakers(2, 11);
    const MixInstance inst =
        builder.MakeInstance(spks[0], Scenario::kBabble, 3);
    const double measured =
        audio::AmplitudeToDb(inst.target.Rms() / inst.background.Rms());
    EXPECT_NEAR(measured, snr, 0.5) << "snr " << snr;
  }
}

TEST(DatasetBuilder, JointRequiresInterferer) {
  DatasetBuilder builder({.duration_s = 1.0});
  const auto spk = SpeakerProfile::FromSeed(1);
  EXPECT_THROW(
      builder.MakeInstance(spk, Scenario::kJointConversation, 3, nullptr),
      nec::CheckError);
}

class DatasetScenarioTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(DatasetScenarioTest, InstanceIsWellFormed) {
  DatasetBuilder builder({.duration_s = 1.5});
  const auto spks = DatasetBuilder::MakeSpeakers(2, 13);
  const MixInstance inst =
      builder.MakeInstance(spks[0], GetParam(), 5, &spks[1]);
  EXPECT_EQ(inst.scenario, GetParam());
  EXPECT_EQ(inst.mixed.size(), 24000u);
  EXPECT_GT(inst.target.Rms(), 0.0f);
  EXPECT_GT(inst.background.Rms(), 0.0f);
  EXPECT_FALSE(inst.target_words.empty());
  if (GetParam() == Scenario::kJointConversation) {
    EXPECT_FALSE(inst.background_words.empty());
  } else {
    EXPECT_TRUE(inst.background_words.empty());
  }
}

TEST_P(DatasetScenarioTest, DeterministicInSeed) {
  DatasetBuilder builder({.duration_s = 1.0});
  const auto spks = DatasetBuilder::MakeSpeakers(2, 17);
  const MixInstance a = builder.MakeInstance(spks[0], GetParam(), 5, &spks[1]);
  const MixInstance b = builder.MakeInstance(spks[0], GetParam(), 5, &spks[1]);
  ASSERT_EQ(a.mixed.size(), b.mixed.size());
  for (std::size_t i = 0; i < a.mixed.size(); ++i) {
    EXPECT_EQ(a.mixed[i], b.mixed[i]);
  }
  EXPECT_EQ(a.target_words, b.target_words);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, DatasetScenarioTest,
                         ::testing::Values(Scenario::kJointConversation,
                                           Scenario::kBabble,
                                           Scenario::kFactory,
                                           Scenario::kVehicle,
                                           Scenario::kWhite));

TEST(Scenario, NamesAreStable) {
  EXPECT_EQ(ScenarioName(Scenario::kJointConversation), "joint");
  EXPECT_EQ(ScenarioName(Scenario::kBabble), "babble");
  EXPECT_EQ(ScenarioName(Scenario::kFactory), "factory");
  EXPECT_EQ(ScenarioName(Scenario::kVehicle), "vehicle");
  EXPECT_EQ(ScenarioName(Scenario::kWhite), "white");
}

}  // namespace
}  // namespace nec::synth
