// Tests for the GEMM kernels against a naive reference, across transpose
// variants and a sweep of shapes (property-style).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "nn/gemm.h"
#include "runtime/gemm_parallel.h"
#include "runtime/thread_pool.h"

namespace nec::nn {
namespace {

using Shape = std::tuple<std::size_t, std::size_t, std::size_t>;  // M, N, K

std::vector<float> RandomMatrix(std::size_t n, Rng& rng) {
  std::vector<float> m(n);
  for (float& v : m) v = rng.GaussianF();
  return m;
}

void NaiveNN(const std::vector<float>& a, const std::vector<float>& b,
             std::vector<float>& c, std::size_t M, std::size_t N,
             std::size_t K, float alpha, float beta) {
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < K; ++k) acc += a[i * K + k] * b[k * N + j];
      c[i * N + j] = static_cast<float>(alpha * acc + beta * c[i * N + j]);
    }
  }
}

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, NNMatchesNaive) {
  const auto [M, N, K] = GetParam();
  Rng rng(M * 131 + N * 17 + K);
  const auto a = RandomMatrix(M * K, rng);
  const auto b = RandomMatrix(K * N, rng);
  std::vector<float> expect(M * N, 0.0f), got(M * N, 0.0f);
  NaiveNN(a, b, expect, M, N, K, 1.0f, 0.0f);
  GemmNN(a.data(), b.data(), got.data(), M, N, K);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-3f * K) << "index " << i;
  }
}

TEST_P(GemmShapes, NTMatchesNN) {
  const auto [M, N, K] = GetParam();
  Rng rng(M * 7 + N * 31 + K);
  const auto a = RandomMatrix(M * K, rng);
  const auto b = RandomMatrix(K * N, rng);  // row-major K x N
  // Transpose b into N x K for the NT call.
  std::vector<float> bt(N * K);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t j = 0; j < N; ++j) bt[j * K + k] = b[k * N + j];
  }
  std::vector<float> expect(M * N, 0.0f), got(M * N, 0.0f);
  GemmNN(a.data(), b.data(), expect.data(), M, N, K);
  GemmNT(a.data(), bt.data(), got.data(), M, N, K);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-3f * K);
  }
}

TEST_P(GemmShapes, TNMatchesNN) {
  const auto [M, N, K] = GetParam();
  Rng rng(M * 3 + N * 5 + K * 7);
  const auto a = RandomMatrix(M * K, rng);  // row-major M x K
  const auto b = RandomMatrix(K * N, rng);
  // Transpose a into K x M for the TN call.
  std::vector<float> at(K * M);
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t k = 0; k < K; ++k) at[k * M + i] = a[i * K + k];
  }
  std::vector<float> expect(M * N, 0.0f), got(M * N, 0.0f);
  GemmNN(a.data(), b.data(), expect.data(), M, N, K);
  GemmTN(at.data(), b.data(), got.data(), M, N, K);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-3f * K);
  }
}

// The last three shapes straddle the cache-blocking tiles (MC=64, KC=256,
// NC=256): full tiles plus ragged remainders in every dimension.
INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4},
                                           Shape{5, 1, 7}, Shape{1, 8, 3},
                                           Shape{16, 16, 16},
                                           Shape{33, 17, 65},
                                           Shape{64, 129, 40},
                                           Shape{65, 257, 300},
                                           Shape{128, 256, 256},
                                           Shape{130, 33, 301}));

TEST(Gemm, AlphaScalesResult) {
  const std::vector<float> a = {1, 2, 3, 4};  // 2x2
  const std::vector<float> b = {1, 0, 0, 1};  // identity
  std::vector<float> c(4, 0.0f);
  GemmNN(a.data(), b.data(), c.data(), 2, 2, 2, 2.0f);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[3], 8.0f);
}

TEST(Gemm, BetaAccumulates) {
  const std::vector<float> a = {1, 0, 0, 1};
  const std::vector<float> b = {5, 6, 7, 8};
  std::vector<float> c = {100, 0, 0, 100};
  GemmNN(a.data(), b.data(), c.data(), 2, 2, 2, 1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c[0], 105.0f);
  EXPECT_FLOAT_EQ(c[3], 108.0f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {2.0f};
  std::vector<float> c = {999.0f};
  GemmNN(a.data(), b.data(), c.data(), 1, 1, 1, 1.0f, 0.0f);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

TEST(Gemm, NTBetaAccumulates) {
  const std::vector<float> a = {1, 2};   // 1x2
  const std::vector<float> bt = {3, 4};  // 1x2 (N=1, K=2)
  std::vector<float> c = {10.0f};
  GemmNT(a.data(), bt.data(), c.data(), 1, 1, 2, 1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c[0], 21.0f);  // 10 + 1*3 + 2*4
}

// Row-panel parallel GEMM must be BIT-identical to serial: panels are cut
// on MC-aligned rows so each row's tiling (and the NT kernel's 4-wide
// unroll grouping) is the same whichever thread runs it. The fixture
// installs a real runtime::ThreadPool behind the hook and opts this thread
// in via GemmParallelScope — exactly the deployment wiring.
class GemmParallelBitExact : public ::testing::Test {
 protected:
  GemmParallelBitExact()
      : pool_({.workers = 4, .queue_capacity = 64}) {
    runtime::InstallGemmParallelFor(pool_);
  }
  ~GemmParallelBitExact() override { runtime::UninstallGemmParallelFor(); }

  runtime::ThreadPool pool_;
};

TEST_F(GemmParallelBitExact, AllVariantsMatchSerialBitwise) {
  // Above both parallel thresholds: M >= 2*MC = 128 rows and
  // M*N*K = 300*64*128 > 2^21 multiply-adds.
  const std::size_t M = 300, N = 64, K = 128;
  Rng rng(4242);
  const auto a = RandomMatrix(M * K, rng);
  const auto b = RandomMatrix(K * N, rng);
  std::vector<float> at(K * M), bt(N * K);
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t k = 0; k < K; ++k) at[k * M + i] = a[i * K + k];
  }
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t j = 0; j < N; ++j) bt[j * K + k] = b[k * N + j];
  }

  std::vector<float> serial_nn(M * N, 0.0f), serial_nt(M * N, 0.0f),
      serial_tn(M * N, 0.0f);
  ASSERT_FALSE(GemmParallelActive());  // hook installed, but not opted in
  GemmNN(a.data(), b.data(), serial_nn.data(), M, N, K);
  GemmNT(a.data(), bt.data(), serial_nt.data(), M, N, K);
  GemmTN(at.data(), b.data(), serial_tn.data(), M, N, K);

  std::vector<float> par_nn(M * N, 0.0f), par_nt(M * N, 0.0f),
      par_tn(M * N, 0.0f);
  {
    GemmParallelScope scope;
    ASSERT_TRUE(GemmParallelActive());
    GemmNN(a.data(), b.data(), par_nn.data(), M, N, K);
    GemmNT(a.data(), bt.data(), par_nt.data(), M, N, K);
    GemmTN(at.data(), b.data(), par_tn.data(), M, N, K);
  }
  ASSERT_FALSE(GemmParallelActive());

  for (std::size_t i = 0; i < M * N; ++i) {
    ASSERT_EQ(par_nn[i], serial_nn[i]) << "NN index " << i;
    ASSERT_EQ(par_nt[i], serial_nt[i]) << "NT index " << i;
    ASSERT_EQ(par_tn[i], serial_tn[i]) << "TN index " << i;
  }
}

TEST_F(GemmParallelBitExact, BetaAccumulationSurvivesFanOut) {
  const std::size_t M = 256, N = 80, K = 128;
  Rng rng(99);
  const auto a = RandomMatrix(M * K, rng);
  const auto b = RandomMatrix(K * N, rng);
  auto serial_c = RandomMatrix(M * N, rng);
  auto par_c = serial_c;
  GemmNN(a.data(), b.data(), serial_c.data(), M, N, K, 0.5f, 1.0f);
  {
    GemmParallelScope scope;
    GemmNN(a.data(), b.data(), par_c.data(), M, N, K, 0.5f, 1.0f);
  }
  for (std::size_t i = 0; i < M * N; ++i) {
    ASSERT_EQ(par_c[i], serial_c[i]) << "index " << i;
  }
}

TEST(GemmParallel, ScopeWithoutHookStaysSerialAndCorrect) {
  // Opting in with no hook installed must be a no-op, not a crash.
  const std::size_t M = 160, N = 64, K = 256;
  Rng rng(7);
  const auto a = RandomMatrix(M * K, rng);
  const auto b = RandomMatrix(K * N, rng);
  std::vector<float> expect(M * N, 0.0f), got(M * N, 0.0f);
  GemmNN(a.data(), b.data(), expect.data(), M, N, K);
  {
    GemmParallelScope scope;
    GemmNN(a.data(), b.data(), got.data(), M, N, K);
  }
  for (std::size_t i = 0; i < M * N; ++i) {
    ASSERT_EQ(got[i], expect[i]);
  }
}

}  // namespace
}  // namespace nec::nn
