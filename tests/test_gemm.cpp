// Tests for the GEMM kernels against a naive reference, across transpose
// variants and a sweep of shapes (property-style).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "nn/gemm.h"

namespace nec::nn {
namespace {

using Shape = std::tuple<std::size_t, std::size_t, std::size_t>;  // M, N, K

std::vector<float> RandomMatrix(std::size_t n, Rng& rng) {
  std::vector<float> m(n);
  for (float& v : m) v = rng.GaussianF();
  return m;
}

void NaiveNN(const std::vector<float>& a, const std::vector<float>& b,
             std::vector<float>& c, std::size_t M, std::size_t N,
             std::size_t K, float alpha, float beta) {
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < K; ++k) acc += a[i * K + k] * b[k * N + j];
      c[i * N + j] = static_cast<float>(alpha * acc + beta * c[i * N + j]);
    }
  }
}

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, NNMatchesNaive) {
  const auto [M, N, K] = GetParam();
  Rng rng(M * 131 + N * 17 + K);
  const auto a = RandomMatrix(M * K, rng);
  const auto b = RandomMatrix(K * N, rng);
  std::vector<float> expect(M * N, 0.0f), got(M * N, 0.0f);
  NaiveNN(a, b, expect, M, N, K, 1.0f, 0.0f);
  GemmNN(a.data(), b.data(), got.data(), M, N, K);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-3f * K) << "index " << i;
  }
}

TEST_P(GemmShapes, NTMatchesNN) {
  const auto [M, N, K] = GetParam();
  Rng rng(M * 7 + N * 31 + K);
  const auto a = RandomMatrix(M * K, rng);
  const auto b = RandomMatrix(K * N, rng);  // row-major K x N
  // Transpose b into N x K for the NT call.
  std::vector<float> bt(N * K);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t j = 0; j < N; ++j) bt[j * K + k] = b[k * N + j];
  }
  std::vector<float> expect(M * N, 0.0f), got(M * N, 0.0f);
  GemmNN(a.data(), b.data(), expect.data(), M, N, K);
  GemmNT(a.data(), bt.data(), got.data(), M, N, K);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-3f * K);
  }
}

TEST_P(GemmShapes, TNMatchesNN) {
  const auto [M, N, K] = GetParam();
  Rng rng(M * 3 + N * 5 + K * 7);
  const auto a = RandomMatrix(M * K, rng);  // row-major M x K
  const auto b = RandomMatrix(K * N, rng);
  // Transpose a into K x M for the TN call.
  std::vector<float> at(K * M);
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t k = 0; k < K; ++k) at[k * M + i] = a[i * K + k];
  }
  std::vector<float> expect(M * N, 0.0f), got(M * N, 0.0f);
  GemmNN(a.data(), b.data(), expect.data(), M, N, K);
  GemmTN(at.data(), b.data(), got.data(), M, N, K);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-3f * K);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4},
                                           Shape{5, 1, 7}, Shape{1, 8, 3},
                                           Shape{16, 16, 16},
                                           Shape{33, 17, 65},
                                           Shape{64, 129, 40}));

TEST(Gemm, AlphaScalesResult) {
  const std::vector<float> a = {1, 2, 3, 4};  // 2x2
  const std::vector<float> b = {1, 0, 0, 1};  // identity
  std::vector<float> c(4, 0.0f);
  GemmNN(a.data(), b.data(), c.data(), 2, 2, 2, 2.0f);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[3], 8.0f);
}

TEST(Gemm, BetaAccumulates) {
  const std::vector<float> a = {1, 0, 0, 1};
  const std::vector<float> b = {5, 6, 7, 8};
  std::vector<float> c = {100, 0, 0, 100};
  GemmNN(a.data(), b.data(), c.data(), 2, 2, 2, 1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c[0], 105.0f);
  EXPECT_FLOAT_EQ(c[3], 108.0f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {2.0f};
  std::vector<float> c = {999.0f};
  GemmNN(a.data(), b.data(), c.data(), 1, 1, 1, 1.0f, 0.0f);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

TEST(Gemm, NTBetaAccumulates) {
  const std::vector<float> a = {1, 2};   // 1x2
  const std::vector<float> bt = {3, 4};  // 1x2 (N=1, K=2)
  std::vector<float> c = {10.0f};
  GemmNT(a.data(), bt.data(), c.data(), 1, 1, 2, 1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c[0], 21.0f);  // 10 + 1*3 + 2*4
}

}  // namespace
}  // namespace nec::nn
