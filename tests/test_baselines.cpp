// Tests for the comparison-study baselines: white-noise jammer, Patronus
// scrambling, and the VoiceFilter runtime model.
#include <gtest/gtest.h>

#include "audio/level.h"
#include "baselines/patronus.h"
#include "baselines/voicefilter.h"
#include "baselines/white_noise.h"
#include "common/rng.h"
#include "core/selector.h"
#include "metrics/metrics.h"
#include "synth/dataset.h"

namespace nec::baseline {
namespace {

audio::Waveform SpeechClip(std::uint64_t seed) {
  synth::DatasetBuilder builder({.duration_s = 1.5});
  const auto spk = synth::SpeakerProfile::FromSeed(seed);
  return builder.MakeUtterance(spk, seed + 1).wave;
}

TEST(WhiteNoiseJammer, NoiseLevelMatchesConfig) {
  const audio::Waveform clean = SpeechClip(1);
  const audio::Waveform jammed =
      JamWithWhiteNoise(clean, {.noise_rel_db = 10.0});
  // Noise power = 10x signal power → total ≈ 11x.
  const double ratio = (jammed.Rms() * jammed.Rms()) /
                       (clean.Rms() * clean.Rms());
  EXPECT_NEAR(ratio, 11.0, 1.5);
}

TEST(WhiteNoiseJammer, DegradesSdrSharply) {
  const audio::Waveform clean = SpeechClip(2);
  const audio::Waveform jammed = JamWithWhiteNoise(clean, {});
  EXPECT_LT(metrics::Sdr(clean.samples(), jammed.samples()), -8.0);
}

TEST(WhiteNoiseJammer, Deterministic) {
  const audio::Waveform clean = SpeechClip(3);
  const audio::Waveform a = JamWithWhiteNoise(clean, {.seed = 9});
  const audio::Waveform b = JamWithWhiteNoise(clean, {.seed = 9});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Patronus, ScrambleBuriesTheVoice) {
  Patronus pat;
  const audio::Waveform clean = SpeechClip(4);
  const audio::Waveform scrambled = pat.Scramble(clean);
  ASSERT_EQ(scrambled.size(), clean.size());
  EXPECT_LT(metrics::Sdr(clean.samples(), scrambled.samples()), -4.0);
}

TEST(Patronus, AuthorizedRecoveryRestoresMostOfTheVoice) {
  Patronus pat;
  const audio::Waveform clean = SpeechClip(5);
  const audio::Waveform scrambled = pat.Scramble(clean);
  const audio::Waveform recovered = pat.Recover(scrambled);
  const double sdr_scrambled =
      metrics::Sdr(clean.samples(), scrambled.samples());
  const double sdr_recovered =
      metrics::Sdr(clean.samples(), recovered.samples());
  // Recovery helps a lot but stays imperfect (the paper's Fig. 16(b)
  // shows Alice-Pat below the raw mixed audio).
  EXPECT_GT(sdr_recovered, sdr_scrambled + 6.0);
  EXPECT_LT(sdr_recovered, 40.0);
}

TEST(Patronus, WrongKeyCannotRecover) {
  Patronus alice({.key = 0xC0FFEE});
  Patronus eve({.key = 0xBADBEEF});
  const audio::Waveform clean = SpeechClip(6);
  const audio::Waveform scrambled = alice.Scramble(clean);
  const audio::Waveform eve_attempt = eve.Recover(scrambled);
  const double sdr_scrambled =
      metrics::Sdr(clean.samples(), scrambled.samples());
  const double sdr_eve = metrics::Sdr(clean.samples(), eve_attempt.samples());
  EXPECT_LT(sdr_eve, sdr_scrambled + 3.0);  // no meaningful gain
}

TEST(Patronus, ScrambleIsBandLimitedToSpeechRange) {
  Patronus pat;
  const audio::Waveform scramble = pat.GenerateScramble(16000, 32000);
  dsp::StftConfig cfg{.fft_size = 512, .win_length = 400,
                      .hop_length = 160};
  const dsp::Spectrogram spec = dsp::Stft(scramble, cfg);
  double in_band = 0.0, out_band = 0.0;
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    for (std::size_t f = 0; f < spec.num_bins(); ++f) {
      const double hz = f * 16000.0 / 512;
      const double e =
          static_cast<double>(spec.MagAt(t, f)) * spec.MagAt(t, f);
      if (hz >= 250.0 && hz <= 4200.0) {
        in_band += e;
      } else {
        out_band += e;
      }
    }
  }
  EXPECT_GT(in_band, 20.0 * out_band);
}

TEST(VoiceFilter, OutputShapeMatchesSelectorContract) {
  core::NecConfig cfg = core::NecConfig::Fast();
  cfg.conv_channels = 6;
  cfg.fc_hidden = 32;
  VoiceFilterSelector vf(cfg);
  nec::Rng rng(7);
  nn::Tensor in({20, cfg.num_bins()});
  for (std::size_t i = 0; i < in.numel(); ++i) {
    in[i] = std::abs(rng.GaussianF());
  }
  std::vector<float> dvec(cfg.embedding_dim, 0.1f);
  const nn::Tensor out = vf.Forward(in, dvec);
  EXPECT_EQ(out.dim(0), 20u);
  EXPECT_EQ(out.dim(1), cfg.num_bins());
}

TEST(VoiceFilter, CostsMoreComputeThanNecSelector) {
  // Table II's premise: VoiceFilter's LSTM + deeper stack make it several
  // times heavier than the NEC selector at the same spectrogram geometry.
  core::NecConfig cfg = core::NecConfig::Fast();
  cfg.conv_channels = 8;
  cfg.fc_hidden = 64;

  core::Selector nec_sel(cfg);
  VoiceFilterSelector vf(cfg);
  nec::Rng rng(8);
  nn::Tensor in({30, cfg.num_bins()});
  for (std::size_t i = 0; i < in.numel(); ++i) {
    in[i] = std::abs(rng.GaussianF());
  }
  std::vector<float> dvec(cfg.embedding_dim, 0.1f);
  nec_sel.Forward(in, dvec, false);
  vf.Forward(in, dvec);
  EXPECT_GT(vf.LastForwardMacs(), nec_sel.LastForwardMacs() * 3 / 2);
}

}  // namespace
}  // namespace nec::baseline
