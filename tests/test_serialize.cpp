// Tests for the binary tensor (de)serialization format.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "nn/serialize.h"

namespace nec::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "nec_serialize_test";
    std::filesystem::create_directories(dir_);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripPreservesEverything) {
  Rng rng(1);
  TensorMap map;
  map.emplace("alpha", Tensor::Randn({3, 4}, rng, 1.0f));
  map.emplace("beta.weight", Tensor::Randn({2, 5, 7}, rng, 0.3f));
  map.emplace("gamma", Tensor({1}));

  SaveTensors(Path("model.necm"), map);
  const TensorMap loaded = LoadTensors(Path("model.necm"));

  ASSERT_EQ(loaded.size(), map.size());
  for (const auto& [name, tensor] : map) {
    ASSERT_TRUE(loaded.count(name)) << name;
    const Tensor& got = loaded.at(name);
    ASSERT_EQ(got.shape(), tensor.shape()) << name;
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_EQ(got[i], tensor[i]) << name << "[" << i << "]";
    }
  }
}

TEST_F(SerializeTest, FilesAreByteStable) {
  Rng rng(2);
  TensorMap map;
  map.emplace("w", Tensor::Randn({8, 8}, rng, 1.0f));
  SaveTensors(Path("a.necm"), map);
  SaveTensors(Path("b.necm"), map);
  std::ifstream a(Path("a.necm"), std::ios::binary);
  std::ifstream b(Path("b.necm"), std::ios::binary);
  const std::string sa((std::istreambuf_iterator<char>(a)), {});
  const std::string sb((std::istreambuf_iterator<char>(b)), {});
  EXPECT_EQ(sa, sb);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(LoadTensors(Path("missing.necm")), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicThrows) {
  std::ofstream out(Path("bad.necm"), std::ios::binary);
  out << "XXXX garbage follows";
  out.close();
  EXPECT_THROW(LoadTensors(Path("bad.necm")), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  Rng rng(3);
  TensorMap map;
  map.emplace("w", Tensor::Randn({32, 32}, rng, 1.0f));
  SaveTensors(Path("full.necm"), map);
  std::ifstream in(Path("full.necm"), std::ios::binary);
  std::vector<char> head(64);
  in.read(head.data(), 64);
  std::ofstream out(Path("cut.necm"), std::ios::binary);
  out.write(head.data(), 64);
  out.close();
  EXPECT_THROW(LoadTensors(Path("cut.necm")), std::runtime_error);
}

TEST_F(SerializeTest, EmptyMapRoundTrips) {
  SaveTensors(Path("empty.necm"), {});
  const TensorMap loaded = LoadTensors(Path("empty.necm"));
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace nec::nn
