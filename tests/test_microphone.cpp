// Tests for the COTS microphone model — the nonlinearity that NEC's
// inaudible shadow rides on (§IV-C1).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "audio/level.h"
#include "channel/device_profile.h"
#include "channel/microphone.h"
#include "channel/modulation.h"
#include "common/check.h"
#include "dsp/fft.h"

namespace nec::channel {
namespace {

audio::Waveform Tone(int rate, double f, double seconds, float amp) {
  audio::Waveform w(rate, static_cast<std::size_t>(rate * seconds));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(
        amp * std::sin(2.0 * std::numbers::pi * f * i / rate));
  }
  return w;
}

// Amplitude of the DFT bin nearest f.
double ToneAmplitude(const audio::Waveform& w, double f) {
  double re = 0.0, im = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double ph =
        2.0 * std::numbers::pi * f * i / w.sample_rate();
    re += w[i] * std::cos(ph);
    im -= w[i] * std::sin(ph);
  }
  return 2.0 * std::sqrt(re * re + im * im) / w.size();
}

audio::Waveform ModulatedTone(double tone_hz, double carrier_hz,
                              float scale) {
  audio::Waveform base = Tone(16000, tone_hz, 0.5, 0.5f);
  audio::Waveform mod = ModulateAm(base, {.carrier_hz = carrier_hz});
  mod.Scale(scale);
  return mod;
}

TEST(Microphone, AudiblePassThrough) {
  MicrophoneModel mic(ReferenceRecorder(), {.noise_seed = 1});
  const audio::Waveform in = Tone(192000, 1000.0, 0.5, 0.05f);
  const audio::Waveform rec = mic.Record(in);
  EXPECT_EQ(rec.sample_rate(), 16000);
  EXPECT_NEAR(ToneAmplitude(rec, 1000.0), 0.05, 0.005);
}

TEST(Microphone, NonlinearityDemodulatesUltrasound) {
  MicrophoneModel mic(ReferenceRecorder(), {.noise_seed = 2});
  const audio::Waveform rec = mic.Record(ModulatedTone(1000.0, 27000.0, 0.5f));
  // The 1 kHz baseband must appear in the recording.
  EXPECT_GT(ToneAmplitude(rec, 1000.0), 0.005);
}

TEST(Microphone, LinearMicRecordsNothingFromUltrasound) {
  // §VII: "when the non-linear effect is not present ... our selective
  // voice protection will no longer be effective."
  MicrophoneModel mic(IdealLinearRecorder(), {.noise_seed = 3});
  const audio::Waveform rec = mic.Record(ModulatedTone(1000.0, 27000.0, 0.5f));
  EXPECT_LT(ToneAmplitude(rec, 1000.0), 5e-4);
}

TEST(Microphone, DemodulatedLevelScalesQuadratically) {
  // v_out ~ a2 v^2: doubling the incident ultrasound amplitude must
  // quadruple the demodulated baseband.
  MicrophoneModel mic(ReferenceRecorder(), {.noise_seed = 4});
  const double a1 =
      ToneAmplitude(mic.Record(ModulatedTone(800.0, 27000.0, 0.25f)), 800.0);
  const double a2 =
      ToneAmplitude(mic.Record(ModulatedTone(800.0, 27000.0, 0.5f)), 800.0);
  EXPECT_NEAR(a2 / a1, 4.0, 0.6);
}

TEST(Microphone, CarrierOutsideAcceptanceBandIsWeak) {
  DeviceProfile dev = ReferenceRecorder();  // resonance 27 kHz, bw 10 kHz
  MicrophoneModel mic(dev, {.noise_seed = 5});
  const double in_band =
      ToneAmplitude(mic.Record(ModulatedTone(900.0, 27000.0, 0.5f)), 900.0);
  const double off_band =
      ToneAmplitude(mic.Record(ModulatedTone(900.0, 38000.0, 0.5f)), 900.0);
  EXPECT_GT(in_band, 4.0 * off_band);
}

TEST(Microphone, NoiseFloorMatchesDeviceSpec) {
  DeviceProfile dev = ReferenceRecorder();
  dev.noise_floor_db_spl = 40.0;
  MicrophoneModel mic(dev, {.noise_seed = 6});
  const audio::Waveform silence(192000, std::size_t{192000});
  const audio::Waveform rec = mic.Record(silence);
  const double expected_rms = audio::SplScale().SplToRms(40.0);
  EXPECT_NEAR(rec.Rms(), expected_rms, 0.3 * expected_rms);
}

TEST(Microphone, OutputIsClipped) {
  DeviceProfile dev = ReferenceRecorder();
  MicrophoneModel mic(dev, {.noise_seed = 7, .clip_level = 1.0});
  const audio::Waveform loud = Tone(192000, 1000.0, 0.2, 3.0f);
  const audio::Waveform rec = mic.Record(loud);
  for (float s : rec.samples()) {
    EXPECT_LE(std::abs(s), 1.0f);
  }
}

TEST(Microphone, RemovesDcOffset) {
  // The squaring nonlinearity produces a DC term; real recorders are
  // AC-coupled.
  MicrophoneModel mic(ReferenceRecorder(), {.noise_seed = 8});
  const audio::Waveform rec = mic.Record(ModulatedTone(1000.0, 27000.0, 0.7f));
  double mean = 0.0;
  for (float s : rec.samples()) mean += s;
  mean /= static_cast<double>(rec.size());
  EXPECT_NEAR(mean, 0.0, 1e-4);
}

TEST(Microphone, UltrasoundCarrierAbsentFromRecording) {
  // After the recorder's low-pass + decimation to 16 kHz, no component
  // above 8 kHz can exist by construction; check energy near the old
  // carrier image (27k - 16k = aliased would be 5 kHz if unfiltered).
  MicrophoneModel mic(ReferenceRecorder(), {.noise_seed = 9});
  audio::Waveform carrier_only = Tone(192000, 27000.0, 0.5, 0.5f);
  const audio::Waveform rec = mic.Record(carrier_only);
  EXPECT_LT(ToneAmplitude(rec, 5000.0), 1e-3);
  EXPECT_LT(ToneAmplitude(rec, 27000.0 - 16000.0), 2e-3);
}

TEST(Microphone, RejectsBasebandInput) {
  MicrophoneModel mic(ReferenceRecorder(), {});
  const audio::Waveform w = Tone(16000, 440.0, 0.1, 0.1f);
  EXPECT_THROW(mic.Record(w), nec::CheckError);
}

TEST(Microphone, DeterministicGivenSeed) {
  MicrophoneModel mic(ReferenceRecorder(), {.noise_seed = 10});
  const audio::Waveform in = Tone(192000, 500.0, 0.1, 0.05f);
  const audio::Waveform a = mic.Record(in);
  const audio::Waveform b = mic.Record(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}


TEST(MicrophoneAgc, NormalizesLoudAndQuietToSimilarLevels) {
  MicrophoneOptions opt;
  opt.agc_enabled = true;
  opt.noise_seed = 21;
  MicrophoneModel mic(ReferenceRecorder(), opt);
  const audio::Waveform loud = Tone(192000, 1000.0, 1.0, 0.3f);
  const audio::Waveform quiet = Tone(192000, 1000.0, 1.0, 0.01f);
  const double r_loud = mic.Record(loud).Rms();
  const double r_quiet = mic.Record(quiet).Rms();
  // Without AGC these differ by 30x; with it, well under 3x (after the
  // attack transient).
  EXPECT_LT(r_loud / r_quiet, 4.0);
}

TEST(MicrophoneAgc, MaxGainBoundsSilenceAmplification) {
  MicrophoneOptions opt;
  opt.agc_enabled = true;
  opt.agc_max_gain = 10.0;
  opt.noise_seed = 22;
  MicrophoneModel mic(ReferenceRecorder(), opt);
  const audio::Waveform tiny = Tone(192000, 1000.0, 0.5, 1e-4f);
  // Gain capped at 10x: the recorded tone cannot exceed ~1e-3 (+ noise).
  EXPECT_LT(mic.Record(tiny).Rms(), 5e-3);
}

TEST(MicrophoneAgc, ShadowSurvivesAgc) {
  // AGC rescales the mixed audio and the demodulated shadow together, so
  // the nonlinear demodulation path still lands at a usable level.
  MicrophoneOptions opt;
  opt.agc_enabled = true;
  opt.noise_seed = 23;
  MicrophoneModel mic(ReferenceRecorder(), opt);
  const audio::Waveform rec =
      mic.Record(ModulatedTone(1000.0, 27000.0, 0.5f));
  EXPECT_GT(ToneAmplitude(rec, 1000.0), 0.005);
}

}  // namespace
}  // namespace nec::channel
