#!/usr/bin/env bash
# CI-style verification: Release build + full ctest, then a ThreadSanitizer
# build exercising the nec::runtime concurrency tests, plus an optional
# bench smoke step that runs the JSON-emitting perf harnesses briefly and
# fails on malformed output.
#
#   tools/check.sh                 # release: all tests; tsan: runtime tests
#   CHECK_TSAN_ALL=1 tools/check.sh  # run the ENTIRE suite under TSan (slow)
#   CHECK_BENCH_SMOKE=1 tools/check.sh  # also smoke the perf JSON benches
#   CHECK_FAULTS=1 tools/check.sh    # also run the fault-injection stress
#                                    # suite under ASan+UBSan (the TSan run
#                                    # above already covers it for races)
#   CHECK_JOBS=8 tools/check.sh      # override build/test parallelism
#
# Both builds configure with NEC_NATIVE_ARCH=OFF so the script behaves the
# same inside CI containers and on developer machines.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${CHECK_JOBS:-$(nproc)}"
BENCH_SMOKE="${CHECK_BENCH_SMOKE:-0}"
FAULTS="${CHECK_FAULTS:-0}"
STEPS=4
[[ "${BENCH_SMOKE}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${FAULTS}" == "1" ]] && STEPS=$((STEPS + 1))
STEP=0
step() { STEP=$((STEP + 1)); echo "== [${STEP}/${STEPS}] $1 =="; }

step "configure + build: Release"
cmake -B build-check-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_BUILD_BENCH="$([[ "${BENCH_SMOKE}" == "1" ]] && echo ON || echo OFF)" \
  -DNEC_BUILD_EXAMPLES=OFF
cmake --build build-check-release -j "${JOBS}"

step "ctest: Release (full suite)"
ctest --test-dir build-check-release --output-on-failure -j "${JOBS}"

step "configure + build: Release + ThreadSanitizer"
cmake -B build-check-tsan -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_SANITIZE=thread \
  -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
cmake --build build-check-tsan -j "${JOBS}"

step "ctest: TSan"
if [[ "${CHECK_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-check-tsan --output-on-failure -j "${JOBS}"
else
  # The concurrency-bearing tests (test_runtime, test_runtime_faults,
  # test_streaming); the rest of the suite is single-threaded and already
  # covered by step 2 (CHECK_TSAN_ALL=1 runs everything).
  ctest --test-dir build-check-tsan --output-on-failure \
    -R 'test_runtime|test_streaming'
fi

if [[ "${FAULTS}" == "1" ]]; then
  step "fault-injection stress: ASan+UBSan"
  # The containment paths move exception objects and purge queues across
  # threads; ASan+UBSan catches lifetime/UB bugs the TSan run (which
  # already includes test_runtime_faults) cannot see.
  cmake -B build-check-asan -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DNEC_NATIVE_ARCH=OFF \
    -DNEC_SANITIZE=address,undefined \
    -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
  cmake --build build-check-asan -j "${JOBS}" --target test_runtime_faults
  ctest --test-dir build-check-asan --output-on-failure \
    -R 'test_runtime_faults'
fi

if [[ "${BENCH_SMOKE}" == "1" ]]; then
  step "bench smoke: hot-path JSON harness"
  # Shrunken workloads (NEC_BENCH_SMOKE) — this validates wiring and the
  # BENCH_hotpath.json contract, not performance. Numbers in the smoke
  # file are flagged "smoke": true and must not be used as baselines.
  SMOKE_JSON="build-check-release/BENCH_smoke.json"
  rm -f "${SMOKE_JSON}"
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${SMOKE_JSON}" \
    ./build-check-release/bench/bench_runtime_throughput
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${SMOKE_JSON}" \
    ./build-check-release/bench/bench_table2_runtime \
    --benchmark_filter=BM_NONE
  # Fail on malformed or incomplete output: all sections present, valid
  # JSON, and the audit/deadline booleans true.
  python3 - "${SMOKE_JSON}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rt = doc["runtime_throughput"]
t2 = doc["table2_modules"]
assert rt["all_bitexact"] is True, "runtime outputs not bit-exact"
assert rt["rows"], "no throughput rows"
assert all("chunks_per_sec" in r and "p99_ms" in r for r in rt["rows"])
assert "selector_nec_ms" in t2 and "total_ms" in t2
ba = doc["batched"]
assert ba["all_bitexact"] is True, "batched outputs not bit-exact"
assert ba["rows"], "no batched rows"
assert ba["max_batch"] >= 2, "batched section ran without batching"
required = ("sessions", "unbatched_chunks_per_sec", "batched_chunks_per_sec",
            "speedup_batched_vs_unbatched", "avg_batch_size",
            "queue_wait_p99_ms", "p99_ms", "bitexact")
assert all(all(k in r for k in required) for r in ba["rows"]), \
    "batched row missing fields"
assert all(r["bitexact"] is True for r in ba["rows"])
print("bench smoke: BENCH json well-formed,",
      len(rt["rows"]), "throughput rows,", len(ba["rows"]), "batched rows")
EOF
fi

echo "check.sh: all green"
