#!/usr/bin/env bash
# CI-style verification: Release build + full ctest, then a ThreadSanitizer
# build exercising the nec::runtime concurrency tests, plus an optional
# bench smoke step that runs the JSON-emitting perf harnesses briefly and
# fails on malformed output.
#
#   tools/check.sh                 # release: all tests; tsan: runtime tests
#   CHECK_TSAN_ALL=1 tools/check.sh  # run the ENTIRE suite under TSan (slow)
#   CHECK_BENCH_SMOKE=1 tools/check.sh  # also smoke the perf JSON benches
#   CHECK_FAULTS=1 tools/check.sh    # also run the fault-injection stress
#                                    # suite under ASan+UBSan (the TSan run
#                                    # above already covers it for races)
#   CHECK_OBS=1 tools/check.sh       # also boot necd with --metrics-port,
#                                    # scrape /metrics + /healthz, validate
#                                    # the Chrome trace dump, and enforce
#                                    # the disabled-tracing <2% overhead
#                                    # guard on BENCH_hotpath.json
#   CHECK_ALLOC=1 tools/check.sh     # also run the steady-state allocation
#                                    # audit: bench_runtime_throughput with
#                                    # the counting operator-new hook must
#                                    # record 0 mallocs/chunk after warmup
#                                    # on the arena/Into path, and the
#                                    # `alloc` JSON section (smoke + the
#                                    # committed BENCH_hotpath.json) must
#                                    # carry honest before/after counts
#   CHECK_NET=1 tools/check.sh       # also run the wire-codec + v2 payload
#                                    # fuzz tests under ASan+UBSan, boot an
#                                    # AUTHENTICATED 2-shard fleet + router
#                                    # on loopback, push a loadgen smoke
#                                    # through the router while draining one
#                                    # shard mid-traffic (zero faults
#                                    # required), prove a bad-secret probe
#                                    # is rejected and counted, scrape
#                                    # /metrics from all three daemons, and
#                                    # validate the net_fleet bench JSON
#   CHECK_FLEET_OBS=1 tools/check.sh # also boot an authed 2-shard fleet +
#                                    # router with tracing armed, push a
#                                    # loadgen through it, assert the
#                                    # router's /fleet.json merges the
#                                    # member scrapes exactly (histogram
#                                    # sample counts add), render one
#                                    # `necctl top` frame, merge /trace
#                                    # pulls + the client dump with
#                                    # `necctl trace` and demand at least
#                                    # one cross-process flow, and
#                                    # validate the obs_fleet_overhead
#                                    # bench section
#   CHECK_JOBS=8 tools/check.sh      # override build/test parallelism
#
# Both builds configure with NEC_NATIVE_ARCH=OFF so the script behaves the
# same inside CI containers and on developer machines.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${CHECK_JOBS:-$(nproc)}"
BENCH_SMOKE="${CHECK_BENCH_SMOKE:-0}"
FAULTS="${CHECK_FAULTS:-0}"
OBS="${CHECK_OBS:-0}"
NET="${CHECK_NET:-0}"
ALLOC="${CHECK_ALLOC:-0}"
FLEET_OBS="${CHECK_FLEET_OBS:-0}"
STEPS=4
[[ "${BENCH_SMOKE}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${FAULTS}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${OBS}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${NET}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${ALLOC}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${FLEET_OBS}" == "1" ]] && STEPS=$((STEPS + 1))
STEP=0
step() { STEP=$((STEP + 1)); echo "== [${STEP}/${STEPS}] $1 =="; }

step "configure + build: Release"
cmake -B build-check-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_BUILD_BENCH="$([[ "${BENCH_SMOKE}" == "1" || "${NET}" == "1" || "${ALLOC}" == "1" || "${FLEET_OBS}" == "1" ]] && echo ON || echo OFF)" \
  -DNEC_BUILD_EXAMPLES="$([[ "${OBS}" == "1" || "${NET}" == "1" || "${FLEET_OBS}" == "1" ]] && echo ON || echo OFF)"
cmake --build build-check-release -j "${JOBS}"

step "ctest: Release (full suite)"
ctest --test-dir build-check-release --output-on-failure -j "${JOBS}"

step "configure + build: Release + ThreadSanitizer"
cmake -B build-check-tsan -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_SANITIZE=thread \
  -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
cmake --build build-check-tsan -j "${JOBS}"

step "ctest: TSan"
if [[ "${CHECK_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-check-tsan --output-on-failure -j "${JOBS}"
else
  # The concurrency-bearing tests (test_runtime, test_runtime_faults,
  # test_streaming, test_obs — the trace rings claim wait-freedom — and
  # test_net, whose servers/router/prober all run their own threads); the
  # rest of the suite is single-threaded and already covered by step 2
  # (CHECK_TSAN_ALL=1 runs everything).
  ctest --test-dir build-check-tsan --output-on-failure \
    -R 'test_runtime|test_streaming|test_obs|test_net'
fi

if [[ "${FAULTS}" == "1" ]]; then
  step "fault-injection stress: ASan+UBSan"
  # The containment paths move exception objects and purge queues across
  # threads; ASan+UBSan catches lifetime/UB bugs the TSan run (which
  # already includes test_runtime_faults) cannot see.
  cmake -B build-check-asan -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DNEC_NATIVE_ARCH=OFF \
    -DNEC_SANITIZE=address,undefined \
    -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
  cmake --build build-check-asan -j "${JOBS}" --target test_runtime_faults
  ctest --test-dir build-check-asan --output-on-failure \
    -R 'test_runtime_faults'
fi

if [[ "${BENCH_SMOKE}" == "1" ]]; then
  step "bench smoke: hot-path JSON harness"
  # Shrunken workloads (NEC_BENCH_SMOKE) — this validates wiring and the
  # BENCH_hotpath.json contract, not performance. Numbers in the smoke
  # file are flagged "smoke": true and must not be used as baselines.
  SMOKE_JSON="build-check-release/BENCH_smoke.json"
  rm -f "${SMOKE_JSON}"
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${SMOKE_JSON}" \
    ./build-check-release/bench/bench_runtime_throughput
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${SMOKE_JSON}" \
    ./build-check-release/bench/bench_table2_runtime \
    --benchmark_filter=BM_NONE
  # Fail on malformed or incomplete output: all sections present, valid
  # JSON, honest deadline accounting (deadline_met must be derived from
  # end-to-end latency, never compute-only p99), and the audit booleans
  # true. The same validator then re-checks the COMMITTED
  # BENCH_hotpath.json, where it additionally enforces the multi-core
  # batching target (>= 1.5x at 8 sessions with >= 4 dispatch workers)
  # whenever the recording machine had >= 4 cores.
  bench_validate() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
committed = sys.argv[2] == "committed"
with open(sys.argv[1]) as f:
    doc = json.load(f)

rt = doc["runtime_throughput"]
assert rt["all_bitexact"] is True, "runtime outputs not bit-exact"
assert rt["rows"], "no throughput rows"
assert "hardware_concurrency" in rt, "runtime_throughput lacks hardware_concurrency"
for r in rt["rows"]:
    for k in ("workers", "chunks_per_sec", "p99_ms", "e2e_p50_ms",
              "e2e_p99_ms", "deadline_met"):
        assert k in r, f"throughput row missing {k!r}"
    # Honest accounting: the verdict must be the end-to-end p99 (queue
    # wait included), not the compute-only chunk latency.
    assert r["deadline_met"] == (r["e2e_p99_ms"] < rt["deadline_ms"]), \
        f"deadline_met not derived from e2e latency in row {r}"

ba = doc["batched"]
assert ba["all_bitexact"] is True, "batched outputs not bit-exact"
assert ba["rows"], "no batched rows"
assert ba["max_batch"] >= 2, "batched section ran without batching"
assert "hardware_concurrency" in ba, "batched section lacks hardware_concurrency"
assert "multicore_pending" in ba, "batched section lacks multicore_pending"
required = ("sessions", "workers", "max_batch",
            "unbatched_chunks_per_sec", "batched_chunks_per_sec",
            "speedup_batched_vs_unbatched", "avg_batch_size",
            "queue_wait_p99_ms", "p99_ms", "e2e_p50_ms", "e2e_p99_ms",
            "bitexact", "deadline_met")
for r in ba["rows"]:
    assert all(k in r for k in required), f"batched row missing fields: {r}"
    assert r["bitexact"] is True, f"batched row not bit-exact: {r}"
    assert r["deadline_met"] == (r["e2e_p99_ms"] < ba["deadline_ms"]), \
        f"deadline_met not derived from e2e latency in row {r}"

if committed:
    assert not rt.get("smoke") and not ba.get("smoke"), \
        "committed BENCH_hotpath.json contains smoke data"
    assert all(r["deadline_met"] for r in ba["rows"]), \
        "a committed batched row misses the paced e2e deadline"
    hw = ba["hardware_concurrency"]
    if hw >= 4:
        assert not ba["multicore_pending"], \
            ">= 4 cores but multicore_pending is set"
        multi = [r for r in ba["rows"]
                 if r["workers"] >= 4 and r["sessions"] >= 8]
        assert multi, "no >= 4-worker batched row on a >= 4-core machine"
        best = max(r["speedup_batched_vs_unbatched"] for r in multi)
        assert best >= 1.5, \
            f"multi-core batched speedup {best:.2f}x < 1.5x target"
        print(f"bench check: multi-core target met ({best:.2f}x)")
    else:
        assert ba["multicore_pending"] is True, \
            "< 4 cores but multicore_pending is unset"
        print("bench check: NOTE — recorded on < 4 cores; the 1.5x "
              "multi-core batched target is PENDING a >= 4-core machine")
else:
    t2 = doc["table2_modules"]
    assert "selector_nec_ms" in t2 and "total_ms" in t2

print(("committed" if committed else "bench smoke") + ": BENCH json ok,",
      len(rt["rows"]), "throughput rows,", len(ba["rows"]), "batched rows")
EOF
  }
  bench_validate "${SMOKE_JSON}" smoke
  bench_validate BENCH_hotpath.json committed
fi

if [[ "${ALLOC}" == "1" ]]; then
  step "allocation audit: zero-malloc steady state on the arena/Into path"
  # bench_runtime_throughput links bench/alloc_hook.cpp (counting operator
  # new/delete). It runs the same chunk workload down both arms — the
  # legacy value-returning path and the arena/Into path used by runtime
  # strands — and exits non-zero unless the arena arm performs exactly 0
  # heap allocations per chunk after warmup. The validator then re-checks
  # the emitted `alloc` JSON section for honest before/after accounting,
  # and the committed BENCH_hotpath.json for the same contract.
  ALLOC_JSON="build-check-release/BENCH_alloc_smoke.json"
  rm -f "${ALLOC_JSON}"
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${ALLOC_JSON}" \
    ./build-check-release/bench/bench_runtime_throughput
  alloc_validate() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
committed = sys.argv[2] == "committed"
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert "alloc" in doc, "missing `alloc` section"
al = doc["alloc"]
for k in ("warmup_chunks", "measured_chunks", "before", "after",
          "zero_alloc_steady_state"):
    assert k in al, f"alloc section missing {k!r}"
assert al["warmup_chunks"] >= 1, "alloc audit ran without warmup"
assert al["measured_chunks"] >= 1, "alloc audit measured no chunks"
for arm in ("before", "after"):
    for k in ("path", "total_allocs", "allocs_per_chunk"):
        assert k in al[arm], f"alloc.{arm} missing {k!r}"
# Honest before/after accounting: the legacy arm must show the allocations
# the refactor removed (otherwise the hook is not counting), and the
# arena/Into arm must be exactly zero — not "small", zero.
assert al["before"]["total_allocs"] > 0, \
    "legacy arm recorded 0 allocs — counting hook not engaged"
assert al["after"]["total_allocs"] == 0, \
    f"arena path allocated: {al['after']['total_allocs']} allocs"
assert al["after"]["allocs_per_chunk"] == 0, \
    f"arena path allocs/chunk = {al['after']['allocs_per_chunk']}"
assert al["zero_alloc_steady_state"] is True, \
    "zero_alloc_steady_state flag not set"
if committed:
    assert not al.get("smoke"), "committed alloc section is smoke data"
print(("committed" if committed else "alloc smoke") +
      f": 0 mallocs/chunk on the arena path "
      f"(legacy arm: {al['before']['allocs_per_chunk']:.1f}/chunk)")
EOF
  }
  alloc_validate "${ALLOC_JSON}" smoke
  alloc_validate BENCH_hotpath.json committed
fi

if [[ "${OBS}" == "1" ]]; then
  step "observability: live endpoints + trace dump + overhead guard"
  OBS_DIR="build-check-release/obs-check"
  rm -rf "${OBS_DIR}" && mkdir -p "${OBS_DIR}"

  # Boot necd with an ephemeral metrics port; it prints the bound port on
  # stdout. The stream is long enough that the scrape below happens while
  # sessions are live.
  ./build-check-release/examples/necd \
    --sessions 2 --seconds 20 --max-batch 2 --metrics-port 0 \
    --trace-out "${OBS_DIR}/trace.json" \
    > "${OBS_DIR}/necd.out" 2> "${OBS_DIR}/necd.err" &
  NECD_PID=$!
  trap 'kill "${NECD_PID}" 2>/dev/null || true' EXIT

  for _ in $(seq 1 120); do
    grep -q 'metrics listening' "${OBS_DIR}/necd.out" 2>/dev/null && break
    kill -0 "${NECD_PID}" 2>/dev/null || break
    sleep 1
  done
  PORT="$(grep -o 'http://127.0.0.1:[0-9]*' "${OBS_DIR}/necd.out" \
          | grep -o '[0-9]*$')"
  [[ -n "${PORT}" ]] || { echo "necd never bound a metrics port"; exit 1; }

  # Scrape while the daemon is serving (no curl dependency in CI images).
  python3 - "${PORT}" <<'EOF'
import json, sys, urllib.request
port = sys.argv[1]
def get(path):
    r = urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10)
    return r.status, r.read().decode()
status, health = get("/healthz")
assert status == 200 and json.loads(health)["status"] == "ok", health
status, metrics = get("/metrics")
assert status == 200, status
for needle in ("# TYPE nec_chunks_processed_total counter",
               "nec_chunk_latency_seconds_bucket{le=",
               "nec_chunk_latency_seconds_count",
               "nec_faults_total{category="):
    assert needle in metrics, f"missing {needle!r} in /metrics"
status, sessions = get("/sessions")
assert status == 200 and json.loads(sessions)["sessions"], sessions
print("obs check: /healthz + /metrics (histogram buckets) + /sessions ok")
EOF

  # necctl must render the same scrape as a table.
  ./build-check-release/examples/necctl stats \
    --url "http://127.0.0.1:${PORT}" | grep -q nec_chunks_processed_total

  wait "${NECD_PID}"
  trap - EXIT

  # The SIGINT/SIGTERM drain path dumps a Chrome trace; validate it is
  # loadable JSON with per-chunk stage spans and batch flow links.
  python3 - "${OBS_DIR}/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
phases = {e["ph"] for e in events}
names = {e.get("name") for e in events}
assert "X" in phases, "no spans in trace"
assert {"s", "f"} <= phases, "no batch flow links in trace"
# A fully-batched run records the _batch variant of the shadow span.
assert names & {"pipeline.generate_shadow", "pipeline.generate_shadow_batch"}, \
    "missing pipeline.generate_shadow[_batch] span"
for span in ("dsp.stft", "dsp.istft", "channel.modulate_am", "runtime.batch"):
    assert span in names, f"missing span {span!r}"
print(f"obs check: trace well-formed, {len(events)} events,"
      f" {len(names)} distinct names")
EOF

  # Overhead guard on the committed baselines: the disabled-tracing arm of
  # bench_obs_overhead must sit within 2% of the runtime_throughput
  # sequential numbers recorded in the same BENCH_hotpath.json.
  python3 - BENCH_hotpath.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
seq = doc["runtime_throughput"]["sequential"]
obs = doc["obs_overhead"]
assert not obs.get("smoke"), "obs_overhead section is smoke data"
off = obs["disabled"]
sel_delta = 100.0 * (off["selector_ms_per_chunk"] /
                     seq["selector_ms_per_chunk"] - 1.0)
cps_delta = 100.0 * (1.0 - off["chunks_per_sec"] /
                     seq["chunks_per_sec"])
assert sel_delta < 2.0, f"selector ms/chunk regressed {sel_delta:.2f}%"
assert cps_delta < 2.0, f"chunks/sec regressed {cps_delta:.2f}%"
print(f"obs check: disabled-tracing overhead guard ok"
      f" (selector {sel_delta:+.2f}%, chunks/s {cps_delta:+.2f}%,"
      f" enabled-arm overhead {obs['enabled_overhead_pct']:.2f}%)")
EOF
fi

if [[ "${NET}" == "1" ]]; then
  step "networked serving: ASan codec fuzz + authed 2-shard fleet + drain"

  # The frame-codec and v2-payload fuzz suites assert typed errors and no
  # over-read on random/truncated/corrupted input (auth, status, and
  # snapshot frames included); ASan turns any over-read the assertions
  # miss into a hard failure. Auth.* covers SipHash KATs + tag binding.
  cmake -B build-check-asan -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DNEC_NATIVE_ARCH=OFF \
    -DNEC_SANITIZE=address,undefined \
    -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
  cmake --build build-check-asan -j "${JOBS}" --target test_net
  ./build-check-asan/tests/test_net \
    --gtest_filter='Auth.*:Crc32.*:FrameCodec.*:PayloadReader.*:SocketIo.*'

  NET_DIR="build-check-release/net-check"
  rm -rf "${NET_DIR}" && mkdir -p "${NET_DIR}"
  NECD="./build-check-release/examples/necd"
  NECCTL="./build-check-release/examples/necctl"

  # Two tiny-model shards + the router, all on ephemeral loopback ports
  # grepped from stdout, and ALL requiring the v2 shared-secret handshake.
  # Tiny keeps the stage hermetic (no training cache).
  SECRET="fleet-check-secret"
  "${NECD}" --listen 0 --model tiny --metrics-port 0 --workers 2 \
    --secret "${SECRET}" \
    > "${NET_DIR}/shard1.out" 2> "${NET_DIR}/shard1.err" &
  SHARD1_PID=$!
  "${NECD}" --listen 0 --model tiny --metrics-port 0 --workers 2 \
    --secret "${SECRET}" \
    > "${NET_DIR}/shard2.out" 2> "${NET_DIR}/shard2.err" &
  SHARD2_PID=$!
  trap 'kill "${SHARD1_PID}" "${SHARD2_PID}" "${ROUTER_PID:-}" 2>/dev/null || true' EXIT
  for out in shard1.out shard2.out; do
    for _ in $(seq 1 60); do
      grep -q 'wire listening' "${NET_DIR}/${out}" 2>/dev/null && \
        grep -q 'metrics listening' "${NET_DIR}/${out}" 2>/dev/null && break
      sleep 1
    done
  done
  port_of() { grep -o "${2}" "${NET_DIR}/${1}" | grep -o '[0-9]*$' | head -1; }
  P1="$(port_of shard1.out 'wire listening on 127.0.0.1:[0-9]*')"
  M1="$(port_of shard1.out 'http://127.0.0.1:[0-9]*')"
  P2="$(port_of shard2.out 'wire listening on 127.0.0.1:[0-9]*')"
  M2="$(port_of shard2.out 'http://127.0.0.1:[0-9]*')"
  [[ -n "${P1}" && -n "${M1}" && -n "${P2}" && -n "${M2}" ]] || {
    echo "shards never bound their ports"; exit 1; }

  "${NECD}" --route "127.0.0.1:${P1}:${M1},127.0.0.1:${P2}:${M2}" \
    --metrics-port 0 --secret "${SECRET}" \
    > "${NET_DIR}/router.out" 2> "${NET_DIR}/router.err" &
  ROUTER_PID=$!
  for _ in $(seq 1 60); do
    grep -q 'routing on' "${NET_DIR}/router.out" 2>/dev/null && \
      grep -q 'metrics listening' "${NET_DIR}/router.out" 2>/dev/null && break
    sleep 1
  done
  RP="$(port_of router.out 'routing on 127.0.0.1:[0-9]*')"
  RM="$(port_of router.out 'http://127.0.0.1:[0-9]*')"
  [[ -n "${RP}" && -n "${RM}" ]] || { echo "router never bound"; exit 1; }

  # A probe with the wrong secret must be rejected as its own failure
  # class — auth_rejected, not refused and not a timeout — and counted on
  # the router's /metrics.
  "${NECCTL}" loadgen --endpoints "127.0.0.1:${RP}" --secret "wrong-secret" \
    --sessions 1 --connections 1 --chunks 1 --streams 1 --json \
    > "${NET_DIR}/badsecret.json" && {
      echo "bad-secret loadgen unexpectedly succeeded"; exit 1; } || true
  python3 - "${NET_DIR}/badsecret.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["ok"] is False, r
assert r["auth_rejected"] is True, f"not flagged as auth rejection: {r}"
print("net check: bad-secret probe rejected as auth_rejected")
EOF

  # Authenticated loadgen through the router, with a zero-fault draining
  # reshard of shard 1 kicked off mid-traffic: every session must still
  # complete — migrated sessions continue on the surviving shard.
  "${NECCTL}" loadgen --endpoints "127.0.0.1:${RP}" --secret "${SECRET}" \
    --sessions 16 --connections 4 --chunks 6 --streams 2 --json \
    > "${NET_DIR}/loadgen.json" &
  LOADGEN_PID=$!
  sleep 2
  "${NECCTL}" drain --url "http://127.0.0.1:${RM}" \
    --shard "127.0.0.1:${P1}" > "${NET_DIR}/drain.out"
  grep -q '"draining"' "${NET_DIR}/drain.out" || {
    echo "drain request not accepted:"; cat "${NET_DIR}/drain.out"; exit 1; }
  wait "${LOADGEN_PID}"
  python3 - "${NET_DIR}/loadgen.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["ok"] is True, r
assert r["sessions_completed"] == 16 and r["sessions_faulted"] == 0, \
    f"drain faulted sessions: {r}"
assert r["chunks_acked"] == 96, r
print(f"net check: loadgen 16/16 sessions across a mid-traffic drain,"
      f" {r['chunks_per_sec']:.1f} chunks/s,"
      f" p50 {r['latency_p50_ms']:.0f} ms through the router")
EOF

  # The drained shard must reach the terminal state: zero sticky
  # sessions, drained gauge raised, nothing faulted by the reshard.
  python3 - "${RM}" "127.0.0.1:${P1}" <<'EOF'
import sys, time, urllib.request
port, shard = sys.argv[1], sys.argv[2]
def scrape():
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                timeout=10) as r:
        assert r.status == 200
        return r.read().decode()
def value(text, name):
    for line in text.splitlines():
        if line.startswith(f'{name}{{shard="{shard}"}}'):
            return float(line.split()[-1])
    raise AssertionError(f"{name} for {shard} not in /metrics")
for _ in range(100):
    text = scrape()
    if value(text, "nec_router_shard_drained") == 1.0:
        break
    time.sleep(0.2)
else:
    raise AssertionError("shard never reported drained")
assert value(text, "nec_router_shard_draining") == 1.0
assert value(text, "nec_router_shard_sessions") == 0.0
migrated = value(text, "nec_router_shard_sessions_migrated_total")
for line in text.splitlines():
    if line.startswith('nec_net_sessions_faulted_total{role="router"}'):
        assert float(line.split()[-1]) == 0.0, line
print(f"net check: shard drained clean ({migrated:.0f} session(s) migrated,"
      f" 0 faulted)")
EOF

  # All three daemons must expose per-connection counters on /metrics —
  # shards with role="server", router with role="router" + shard health.
  python3 - "${M1}" "${M2}" "${RM}" <<'EOF'
import sys, urllib.request
def scrape(port):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                timeout=10) as r:
        assert r.status == 200
        return r.read().decode()
def value(text, needle):
    for line in text.splitlines():
        if line.startswith(needle):
            return float(line.split()[-1])
    raise AssertionError(f"{needle!r} not in /metrics")
for port in (sys.argv[1], sys.argv[2]):
    text = scrape(port)
    for needle in ('nec_net_connections_accepted_total{role="server"}',
                   'nec_net_frames_in_total{role="server"}',
                   'nec_net_sessions_opened_total{role="server"}',
                   "nec_chunks_processed_total"):
        assert needle in text, f"shard :{port} missing {needle!r}"
    # The router's upstream dials + status prober authenticate too.
    assert value(text, 'nec_net_auth_ok_total{role="server"}') > 0
text = scrape(sys.argv[3])
for needle in ('nec_net_connections_accepted_total{role="router"}',
               "nec_router_shard_up{shard=",
               "nec_router_shard_sessions_assigned_total{shard="):
    assert needle in text, f"router missing {needle!r}"
# The good loadgen authenticated; the deliberate bad-secret probe must
# have been counted as a rejection.
assert value(text, 'nec_net_auth_ok_total{role="router"}') > 0
rejected = value(text, 'nec_net_auth_rejected_total{role="router"}')
assert rejected > 0, "bad-secret probe not counted in auth_rejected"
up = [l for l in text.splitlines()
      if l.startswith("nec_router_shard_up{") and l.endswith(" 1")]
assert len(up) == 2, f"expected 2 shards up, got {up}"
print("net check: /metrics ok on both shards + router"
      f" (2 shards up, {rejected:.0f} auth rejection(s))")
EOF

  kill "${SHARD1_PID}" "${SHARD2_PID}" "${ROUTER_PID}" 2>/dev/null || true
  wait "${SHARD1_PID}" "${SHARD2_PID}" "${ROUTER_PID}" 2>/dev/null || true
  trap - EXIT

  # The net_fleet bench must emit a well-formed section whose serving
  # paths are all bit-exact against the in-process reference.
  NET_JSON="${NET_DIR}/BENCH_net_smoke.json"
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${NET_JSON}" \
    ./build-check-release/bench/bench_net_fleet
  python3 - "${NET_JSON}" <<'EOF'
import json, sys
nf = json.load(open(sys.argv[1]))["net_fleet"]
assert nf["all_bitexact"] is True, "networked serving not bit-exact"
modes = [r["mode"] for r in nf["rows"]]
assert modes == ["direct", "single_shard", "router_fleet"], modes
for r in nf["rows"]:
    assert r["bitexact"] is True and r["chunks_per_sec"] > 0, r
fleet = nf["rows"][2]
assert fleet["shard0_sessions"] + fleet["shard1_sessions"] == nf["sessions"]
assert "router_added_latency_p50_ms" in nf
print("net check: net_fleet JSON well-formed,", len(nf["rows"]),
      "rows, shard split",
      f"{fleet['shard0_sessions']}/{fleet['shard1_sessions']}")
EOF
fi

if [[ "${FLEET_OBS}" == "1" ]]; then
  step "fleet observability: /fleet.json merge + necctl top + merged trace"
  FO_DIR="build-check-release/fleet-obs-check"
  rm -rf "${FO_DIR}" && mkdir -p "${FO_DIR}"
  NECD="./build-check-release/examples/necd"
  NECCTL="./build-check-release/examples/necctl"

  # Authed 2-shard fleet + router, tracing armed everywhere (--trace keeps
  # the per-process rings live for GET /trace without a shutdown dump).
  SECRET="fleet-obs-secret"
  "${NECD}" --listen 0 --model tiny --metrics-port 0 --workers 2 \
    --secret "${SECRET}" --trace \
    > "${FO_DIR}/shard1.out" 2> "${FO_DIR}/shard1.err" &
  SHARD1_PID=$!
  "${NECD}" --listen 0 --model tiny --metrics-port 0 --workers 2 \
    --secret "${SECRET}" --trace \
    > "${FO_DIR}/shard2.out" 2> "${FO_DIR}/shard2.err" &
  SHARD2_PID=$!
  trap 'kill "${SHARD1_PID}" "${SHARD2_PID}" "${ROUTER_PID:-}" 2>/dev/null || true' EXIT
  for out in shard1.out shard2.out; do
    for _ in $(seq 1 60); do
      grep -q 'wire listening' "${FO_DIR}/${out}" 2>/dev/null && \
        grep -q 'metrics listening' "${FO_DIR}/${out}" 2>/dev/null && break
      sleep 1
    done
  done
  port_of() { grep -o "${2}" "${FO_DIR}/${1}" | grep -o '[0-9]*$' | head -1; }
  P1="$(port_of shard1.out 'wire listening on 127.0.0.1:[0-9]*')"
  M1="$(port_of shard1.out 'http://127.0.0.1:[0-9]*')"
  P2="$(port_of shard2.out 'wire listening on 127.0.0.1:[0-9]*')"
  M2="$(port_of shard2.out 'http://127.0.0.1:[0-9]*')"
  [[ -n "${P1}" && -n "${M1}" && -n "${P2}" && -n "${M2}" ]] || {
    echo "shards never bound their ports"; exit 1; }

  "${NECD}" --route "127.0.0.1:${P1}:${M1},127.0.0.1:${P2}:${M2}" \
    --metrics-port 0 --secret "${SECRET}" --trace \
    > "${FO_DIR}/router.out" 2> "${FO_DIR}/router.err" &
  ROUTER_PID=$!
  for _ in $(seq 1 60); do
    grep -q 'routing on' "${FO_DIR}/router.out" 2>/dev/null && \
      grep -q 'metrics listening' "${FO_DIR}/router.out" 2>/dev/null && break
    sleep 1
  done
  RP="$(port_of router.out 'routing on 127.0.0.1:[0-9]*')"
  RM="$(port_of router.out 'http://127.0.0.1:[0-9]*')"
  [[ -n "${RP}" && -n "${RM}" ]] || { echo "router never bound"; exit 1; }

  # Traffic through the router; --trace-out arms the CLIENT-side recorder
  # so flow ids are minted and wire-propagated, and dumps its ring.
  "${NECCTL}" loadgen --endpoints "127.0.0.1:${RP}" --secret "${SECRET}" \
    --sessions 8 --connections 4 --chunks 4 --streams 2 --json \
    --trace-out "${FO_DIR}/client-trace.json" \
    > "${FO_DIR}/loadgen.json"
  python3 - "${FO_DIR}/loadgen.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["ok"] is True and r["sessions_faulted"] == 0, r
assert r["chunks_acked"] == 32, r
print(f"fleet-obs check: loadgen 8/8 sessions,"
      f" {r['chunks_per_sec']:.1f} chunks/s through the router")
EOF

  # /fleet.json must merge the member scrapes EXACTLY: every counter the
  # sum, every histogram's sample count the sum of the per-shard counts
  # (loadgen has finished, so the counters are quiescent).
  python3 - "${RM}" "${M1}" "${M2}" "127.0.0.1:${P1}" "127.0.0.1:${P2}" <<'EOF'
import json, sys, urllib.request
rm, m1, m2 = sys.argv[1], sys.argv[2], sys.argv[3]
shard_labels = {sys.argv[4], sys.argv[5]}
def get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10) as r:
        assert r.status == 200, (port, path, r.status)
        return r.read().decode()
def hist_count(text, family):
    total = 0
    for line in text.splitlines():
        if line.startswith(f"{family}_count"):
            total += int(float(line.split()[-1]))
    return total
fleet = json.loads(get(rm, "/fleet.json"))
assert fleet["folded"] == 2, fleet["folded"]
rows = {m["label"]: m for m in fleet["members"]}
assert set(rows) == shard_labels, set(rows)
for label, row in rows.items():
    assert row["reachable"] and row["folded"], row
    assert row["chunks_total"] > 0, f"{label} served nothing"
shards = {s["label"]: s for s in fleet["shards"]}
assert set(shards) == shard_labels, set(shards)
assert all(s["up"] for s in shards.values()), shards
# Merged histogram totals == sum of the per-shard scrapes.
per_shard = hist_count(get(m1, "/metrics"), "nec_chunk_e2e_latency_seconds") \
          + hist_count(get(m2, "/metrics"), "nec_chunk_e2e_latency_seconds")
merged = next(f for f in fleet["merged"]["families"]
              if f["name"] == "nec_chunk_e2e_latency_seconds")
merged_count = sum(m["count"] for m in merged["metrics"])
assert merged_count == per_shard == fleet["fleet"]["e2e_count"], \
    (merged_count, per_shard, fleet["fleet"]["e2e_count"])
row_sum = sum(r["e2e_count"] for r in rows.values())
assert row_sum == merged_count, (row_sum, merged_count)
chunk_sum = sum(r["chunks_total"] for r in rows.values())
assert chunk_sum == fleet["fleet"]["chunks_total"] == 32, chunk_sum
assert fleet["fleet"]["e2e_p99_ms"] > 0, fleet["fleet"]
print(f"fleet-obs check: /fleet.json merged 2 members exactly"
      f" ({merged_count} e2e samples, fleet p99"
      f" {fleet['fleet']['e2e_p99_ms']:.1f} ms)")
EOF

  # The human surfaces over the same data: /fleet text and one top frame.
  "${NECCTL}" top --url "http://127.0.0.1:${RM}" --once \
    > "${FO_DIR}/top.out"
  grep -q "127.0.0.1:${P1}" "${FO_DIR}/top.out" || {
    echo "necctl top missing shard row:"; cat "${FO_DIR}/top.out"; exit 1; }
  grep -q '^fleet:' "${FO_DIR}/top.out" || {
    echo "necctl top missing fleet summary"; exit 1; }

  # Merge the three live rings + the client dump into one trace; necctl
  # itself fails unless at least one flow spans two processes with both
  # endpoints (the client-submit ... shard-compute arrow).
  "${NECCTL}" trace \
    --url "http://127.0.0.1:${RM}" \
    --url "http://127.0.0.1:${M1}" \
    --url "http://127.0.0.1:${M2}" \
    --file "${FO_DIR}/client-trace.json" \
    --expect-cross-flow --out "${FO_DIR}/trace-merged.json" \
    > "${FO_DIR}/trace.out"
  cat "${FO_DIR}/trace.out"
  python3 - "${FO_DIR}/trace-merged.json" <<'EOF'
import json, sys
from collections import defaultdict
events = json.load(open(sys.argv[1]))["traceEvents"]
names = {e.get("name") for e in events}
procs = {e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"}
assert len(procs) == 4, f"expected 4 process rows, got {procs}"
flow_pids = defaultdict(set)
flow_phs = defaultdict(set)
for e in events:
    if "id" in e:
        flow_pids[e["id"]].add(e["pid"])
        flow_phs[e["id"]].add(e["ph"])
cross = [f for f in flow_pids
         if len(flow_pids[f]) >= 2 and {"s", "f"} <= flow_phs[f]]
assert cross, "no cross-process flow with both endpoints in merged trace"
for span in ("client.submit", "shard.compute"):
    assert span in names, f"missing {span!r} span in merged trace"
print(f"fleet-obs check: merged trace ok — {len(events)} events,"
      f" {len(procs)} processes, {len(cross)} cross-process flow(s)")
EOF

  kill "${SHARD1_PID}" "${SHARD2_PID}" "${ROUTER_PID}" 2>/dev/null || true
  wait "${SHARD1_PID}" "${SHARD2_PID}" "${ROUTER_PID}" 2>/dev/null || true
  trap - EXIT

  # The networked-tracing A/B must emit its section, and the committed
  # baselines must already carry a non-smoke obs_fleet_overhead record.
  FO_JSON="${FO_DIR}/BENCH_fleet_obs_smoke.json"
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${FO_JSON}" \
    ./build-check-release/bench/bench_obs_overhead
  fleet_obs_validate() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
committed = sys.argv[2] == "committed"
doc = json.load(open(sys.argv[1]))
assert "obs_fleet_overhead" in doc, "missing obs_fleet_overhead section"
fo = doc["obs_fleet_overhead"]
for arm in ("disabled", "enabled"):
    for k in ("chunks_per_sec", "latency_p50_ms", "latency_p99_ms"):
        assert k in fo[arm], f"obs_fleet_overhead.{arm} missing {k!r}"
    assert fo[arm]["chunks_per_sec"] > 0, fo[arm]
assert "enabled_overhead_pct" in fo
if committed:
    assert not fo.get("smoke"), "committed obs_fleet_overhead is smoke data"
print(("committed" if committed else "fleet-obs smoke") +
      f": networked A/B ok (enabled overhead"
      f" {fo['enabled_overhead_pct']:.2f}%)")
EOF
  }
  fleet_obs_validate "${FO_JSON}" smoke
  fleet_obs_validate BENCH_hotpath.json committed
fi

echo "check.sh: all green"
