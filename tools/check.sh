#!/usr/bin/env bash
# CI-style verification: Release build + full ctest, then a ThreadSanitizer
# build exercising the nec::runtime concurrency tests, plus an optional
# bench smoke step that runs the JSON-emitting perf harnesses briefly and
# fails on malformed output.
#
#   tools/check.sh                 # release: all tests; tsan: runtime tests
#   CHECK_TSAN_ALL=1 tools/check.sh  # run the ENTIRE suite under TSan (slow)
#   CHECK_BENCH_SMOKE=1 tools/check.sh  # also smoke the perf JSON benches
#   CHECK_FAULTS=1 tools/check.sh    # also run the fault-injection stress
#                                    # suite under ASan+UBSan (the TSan run
#                                    # above already covers it for races)
#   CHECK_OBS=1 tools/check.sh       # also boot necd with --metrics-port,
#                                    # scrape /metrics + /healthz, validate
#                                    # the Chrome trace dump, and enforce
#                                    # the disabled-tracing <2% overhead
#                                    # guard on BENCH_hotpath.json
#   CHECK_JOBS=8 tools/check.sh      # override build/test parallelism
#
# Both builds configure with NEC_NATIVE_ARCH=OFF so the script behaves the
# same inside CI containers and on developer machines.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${CHECK_JOBS:-$(nproc)}"
BENCH_SMOKE="${CHECK_BENCH_SMOKE:-0}"
FAULTS="${CHECK_FAULTS:-0}"
OBS="${CHECK_OBS:-0}"
STEPS=4
[[ "${BENCH_SMOKE}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${FAULTS}" == "1" ]] && STEPS=$((STEPS + 1))
[[ "${OBS}" == "1" ]] && STEPS=$((STEPS + 1))
STEP=0
step() { STEP=$((STEP + 1)); echo "== [${STEP}/${STEPS}] $1 =="; }

step "configure + build: Release"
cmake -B build-check-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_BUILD_BENCH="$([[ "${BENCH_SMOKE}" == "1" ]] && echo ON || echo OFF)" \
  -DNEC_BUILD_EXAMPLES="$([[ "${OBS}" == "1" ]] && echo ON || echo OFF)"
cmake --build build-check-release -j "${JOBS}"

step "ctest: Release (full suite)"
ctest --test-dir build-check-release --output-on-failure -j "${JOBS}"

step "configure + build: Release + ThreadSanitizer"
cmake -B build-check-tsan -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_SANITIZE=thread \
  -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
cmake --build build-check-tsan -j "${JOBS}"

step "ctest: TSan"
if [[ "${CHECK_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-check-tsan --output-on-failure -j "${JOBS}"
else
  # The concurrency-bearing tests (test_runtime, test_runtime_faults,
  # test_streaming, test_obs — the trace rings claim wait-freedom); the
  # rest of the suite is single-threaded and already covered by step 2
  # (CHECK_TSAN_ALL=1 runs everything).
  ctest --test-dir build-check-tsan --output-on-failure \
    -R 'test_runtime|test_streaming|test_obs'
fi

if [[ "${FAULTS}" == "1" ]]; then
  step "fault-injection stress: ASan+UBSan"
  # The containment paths move exception objects and purge queues across
  # threads; ASan+UBSan catches lifetime/UB bugs the TSan run (which
  # already includes test_runtime_faults) cannot see.
  cmake -B build-check-asan -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DNEC_NATIVE_ARCH=OFF \
    -DNEC_SANITIZE=address,undefined \
    -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
  cmake --build build-check-asan -j "${JOBS}" --target test_runtime_faults
  ctest --test-dir build-check-asan --output-on-failure \
    -R 'test_runtime_faults'
fi

if [[ "${BENCH_SMOKE}" == "1" ]]; then
  step "bench smoke: hot-path JSON harness"
  # Shrunken workloads (NEC_BENCH_SMOKE) — this validates wiring and the
  # BENCH_hotpath.json contract, not performance. Numbers in the smoke
  # file are flagged "smoke": true and must not be used as baselines.
  SMOKE_JSON="build-check-release/BENCH_smoke.json"
  rm -f "${SMOKE_JSON}"
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${SMOKE_JSON}" \
    ./build-check-release/bench/bench_runtime_throughput
  NEC_BENCH_SMOKE=1 NEC_BENCH_JSON="${SMOKE_JSON}" \
    ./build-check-release/bench/bench_table2_runtime \
    --benchmark_filter=BM_NONE
  # Fail on malformed or incomplete output: all sections present, valid
  # JSON, and the audit/deadline booleans true.
  python3 - "${SMOKE_JSON}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rt = doc["runtime_throughput"]
t2 = doc["table2_modules"]
assert rt["all_bitexact"] is True, "runtime outputs not bit-exact"
assert rt["rows"], "no throughput rows"
assert all("chunks_per_sec" in r and "p99_ms" in r for r in rt["rows"])
assert "selector_nec_ms" in t2 and "total_ms" in t2
ba = doc["batched"]
assert ba["all_bitexact"] is True, "batched outputs not bit-exact"
assert ba["rows"], "no batched rows"
assert ba["max_batch"] >= 2, "batched section ran without batching"
required = ("sessions", "unbatched_chunks_per_sec", "batched_chunks_per_sec",
            "speedup_batched_vs_unbatched", "avg_batch_size",
            "queue_wait_p99_ms", "p99_ms", "bitexact")
assert all(all(k in r for k in required) for r in ba["rows"]), \
    "batched row missing fields"
assert all(r["bitexact"] is True for r in ba["rows"])
print("bench smoke: BENCH json well-formed,",
      len(rt["rows"]), "throughput rows,", len(ba["rows"]), "batched rows")
EOF
fi

if [[ "${OBS}" == "1" ]]; then
  step "observability: live endpoints + trace dump + overhead guard"
  OBS_DIR="build-check-release/obs-check"
  rm -rf "${OBS_DIR}" && mkdir -p "${OBS_DIR}"

  # Boot necd with an ephemeral metrics port; it prints the bound port on
  # stdout. The stream is long enough that the scrape below happens while
  # sessions are live.
  ./build-check-release/examples/necd \
    --sessions 2 --seconds 20 --max-batch 2 --metrics-port 0 \
    --trace-out "${OBS_DIR}/trace.json" \
    > "${OBS_DIR}/necd.out" 2> "${OBS_DIR}/necd.err" &
  NECD_PID=$!
  trap 'kill "${NECD_PID}" 2>/dev/null || true' EXIT

  for _ in $(seq 1 120); do
    grep -q 'metrics listening' "${OBS_DIR}/necd.out" 2>/dev/null && break
    kill -0 "${NECD_PID}" 2>/dev/null || break
    sleep 1
  done
  PORT="$(grep -o 'http://127.0.0.1:[0-9]*' "${OBS_DIR}/necd.out" \
          | grep -o '[0-9]*$')"
  [[ -n "${PORT}" ]] || { echo "necd never bound a metrics port"; exit 1; }

  # Scrape while the daemon is serving (no curl dependency in CI images).
  python3 - "${PORT}" <<'EOF'
import json, sys, urllib.request
port = sys.argv[1]
def get(path):
    r = urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10)
    return r.status, r.read().decode()
status, health = get("/healthz")
assert status == 200 and json.loads(health)["status"] == "ok", health
status, metrics = get("/metrics")
assert status == 200, status
for needle in ("# TYPE nec_chunks_processed_total counter",
               "nec_chunk_latency_seconds_bucket{le=",
               "nec_chunk_latency_seconds_count",
               "nec_faults_total{category="):
    assert needle in metrics, f"missing {needle!r} in /metrics"
status, sessions = get("/sessions")
assert status == 200 and json.loads(sessions)["sessions"], sessions
print("obs check: /healthz + /metrics (histogram buckets) + /sessions ok")
EOF

  # necctl must render the same scrape as a table.
  ./build-check-release/examples/necctl stats \
    --url "http://127.0.0.1:${PORT}" | grep -q nec_chunks_processed_total

  wait "${NECD_PID}"
  trap - EXIT

  # The SIGINT/SIGTERM drain path dumps a Chrome trace; validate it is
  # loadable JSON with per-chunk stage spans and batch flow links.
  python3 - "${OBS_DIR}/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
phases = {e["ph"] for e in events}
names = {e.get("name") for e in events}
assert "X" in phases, "no spans in trace"
assert {"s", "f"} <= phases, "no batch flow links in trace"
# A fully-batched run records the _batch variant of the shadow span.
assert names & {"pipeline.generate_shadow", "pipeline.generate_shadow_batch"}, \
    "missing pipeline.generate_shadow[_batch] span"
for span in ("dsp.stft", "dsp.istft", "channel.modulate_am", "runtime.batch"):
    assert span in names, f"missing span {span!r}"
print(f"obs check: trace well-formed, {len(events)} events,"
      f" {len(names)} distinct names")
EOF

  # Overhead guard on the committed baselines: the disabled-tracing arm of
  # bench_obs_overhead must sit within 2% of the runtime_throughput
  # sequential numbers recorded in the same BENCH_hotpath.json.
  python3 - BENCH_hotpath.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
seq = doc["runtime_throughput"]["sequential"]
obs = doc["obs_overhead"]
assert not obs.get("smoke"), "obs_overhead section is smoke data"
off = obs["disabled"]
sel_delta = 100.0 * (off["selector_ms_per_chunk"] /
                     seq["selector_ms_per_chunk"] - 1.0)
cps_delta = 100.0 * (1.0 - off["chunks_per_sec"] /
                     seq["chunks_per_sec"])
assert sel_delta < 2.0, f"selector ms/chunk regressed {sel_delta:.2f}%"
assert cps_delta < 2.0, f"chunks/sec regressed {cps_delta:.2f}%"
print(f"obs check: disabled-tracing overhead guard ok"
      f" (selector {sel_delta:+.2f}%, chunks/s {cps_delta:+.2f}%,"
      f" enabled-arm overhead {obs['enabled_overhead_pct']:.2f}%)")
EOF
fi

echo "check.sh: all green"
