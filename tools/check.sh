#!/usr/bin/env bash
# CI-style verification: Release build + full ctest, then a ThreadSanitizer
# build exercising the nec::runtime concurrency tests.
#
#   tools/check.sh                 # release: all tests; tsan: runtime tests
#   CHECK_TSAN_ALL=1 tools/check.sh  # run the ENTIRE suite under TSan (slow)
#   CHECK_JOBS=8 tools/check.sh      # override build/test parallelism
#
# Both builds configure with NEC_NATIVE_ARCH=OFF so the script behaves the
# same inside CI containers and on developer machines.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${CHECK_JOBS:-$(nproc)}"

echo "== [1/4] configure + build: Release =="
cmake -B build-check-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
cmake --build build-check-release -j "${JOBS}"

echo "== [2/4] ctest: Release (full suite) =="
ctest --test-dir build-check-release --output-on-failure -j "${JOBS}"

echo "== [3/4] configure + build: Release + ThreadSanitizer =="
cmake -B build-check-tsan -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNEC_NATIVE_ARCH=OFF \
  -DNEC_SANITIZE=thread \
  -DNEC_BUILD_BENCH=OFF -DNEC_BUILD_EXAMPLES=OFF
cmake --build build-check-tsan -j "${JOBS}"

echo "== [4/4] ctest: TSan =="
if [[ "${CHECK_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-check-tsan --output-on-failure -j "${JOBS}"
else
  # The concurrency-bearing tests; the rest of the suite is single-threaded
  # and already covered by step 2 (CHECK_TSAN_ALL=1 runs everything).
  ctest --test-dir build-check-tsan --output-on-failure \
    -R 'test_runtime|test_streaming'
fi

echo "check.sh: all green"
