#include "baselines/voicefilter.h"

#include "common/check.h"

namespace nec::baseline {

VoiceFilterSelector::VoiceFilterSelector(const core::NecConfig& config,
                                         std::uint64_t init_seed)
    : config_(config) {
  Rng rng(init_seed ^ 0x94D049BB133111EBULL);
  // VoiceFilter's stack is not size-optimized; NEC §IV-B1 explicitly
  // "compresses the DNN layers" relative to it. Scale the channel budget
  // accordingly so the relative cost matches the published architectures.
  const std::size_t C = config_.conv_channels * 7 / 5;

  // VoiceFilter's CNN: 1x7, 7x1, then 5x5 with dilations 1,2,4,8,16 — one
  // more dilated layer than NEC and a final 1x1 8-channel projection.
  convs_.push_back(std::make_unique<nn::Conv2D>(1, C, 1, 7, 1, 1, rng));
  convs_.push_back(std::make_unique<nn::Conv2D>(C, C, 7, 1, 1, 1, rng));
  for (std::size_t d : {1, 2, 4, 8, 16}) {
    convs_.push_back(std::make_unique<nn::Conv2D>(C, C, 5, 5, d, 1, rng));
  }
  convs_.push_back(std::make_unique<nn::Conv2D>(C, 8, 1, 1, 1, 1, rng));
  relus_.resize(convs_.size());

  const std::size_t F = config_.num_bins();
  // LSTM over time on (8F + E) features; hidden size scales with F the
  // way VoiceFilter's 400 units relate to its 601 bins.
  const std::size_t lstm_hidden = std::max<std::size_t>(64, (2 * F) / 3);
  lstm_ = std::make_unique<nn::Lstm>(8 * F + config_.embedding_dim,
                                     lstm_hidden, rng);
  fc1_ = std::make_unique<nn::Linear>(lstm_hidden, 2 * config_.fc_hidden,
                                      rng);
  fc2_ = std::make_unique<nn::Linear>(2 * config_.fc_hidden, F, rng);
}

nn::Tensor VoiceFilterSelector::Forward(const nn::Tensor& mixed_mag,
                                        const std::vector<float>& dvector) {
  NEC_CHECK(mixed_mag.rank() == 2 &&
            mixed_mag.dim(1) == config_.num_bins());
  NEC_CHECK(dvector.size() == config_.embedding_dim);
  const std::size_t T = mixed_mag.dim(0);
  const std::size_t F = config_.num_bins();

  nn::Tensor x = mixed_mag;
  x.Reshape({1, T, F});
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    x = relus_[i].Forward(convs_[i]->Forward(x));
  }

  // (8, T, F) -> (T, 8F + E)
  NEC_CHECK(x.dim(0) == 8);
  nn::Tensor fused({T, 8 * F + config_.embedding_dim});
  for (std::size_t t = 0; t < T; ++t) {
    float* row = fused.data() + t * (8 * F + config_.embedding_dim);
    for (std::size_t c = 0; c < 8; ++c) {
      for (std::size_t f = 0; f < F; ++f) {
        row[c * F + f] = x.At3(c, t, f);
      }
    }
    for (std::size_t e = 0; e < config_.embedding_dim; ++e) {
      row[8 * F + e] = dvector[e];
    }
  }

  nn::Tensor h = lstm_->Forward(fused);
  return fc2_->Forward(fc1_->Forward(h));
}

std::size_t VoiceFilterSelector::LastForwardMacs() const {
  std::size_t macs = 0;
  for (const auto& conv : convs_) macs += conv->LastForwardMacs();
  macs += lstm_->LastForwardMacs();
  macs += fc1_->LastForwardMacs() + fc2_->LastForwardMacs();
  return macs;
}

}  // namespace nec::baseline
