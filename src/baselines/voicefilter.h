// VoiceFilter selector baseline (Wang et al., Interspeech 2019) — the
// runtime comparison of Table II.
//
// VoiceFilter performs the same speaker-conditioned spectrogram masking as
// NEC's selector but with a heavier architecture: a deeper CNN stack with
// larger dilations, an LSTM over time (400 units in the original), and a
// wider FC head. The paper's Table II shows NEC's slimmed selector runs
// ~2.4x faster on a 1080Ti and ~1.5x faster on a Raspberry Pi 4.
//
// Only the forward pass matters for the runtime study, so this model is
// never trained here (weights are randomly initialized; FLOPs and memory
// traffic are identical either way).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/layers.h"

namespace nec::baseline {

class VoiceFilterSelector {
 public:
  /// `config` supplies the spectrogram geometry; internal widths follow
  /// VoiceFilter's proportions relative to NEC's (same conv channels, but
  /// 8 conv layers, an LSTM, and a 2x wider FC head).
  explicit VoiceFilterSelector(const core::NecConfig& config,
                               std::uint64_t init_seed = 19);

  /// (T, F) magnitude + d-vector → (T, F) mask/shadow surface.
  nn::Tensor Forward(const nn::Tensor& mixed_mag,
                     const std::vector<float>& dvector);

  std::size_t LastForwardMacs() const;

  const core::NecConfig& config() const { return config_; }

 private:
  core::NecConfig config_;
  std::vector<std::unique_ptr<nn::Conv2D>> convs_;
  std::vector<nn::ReLU> relus_;
  std::unique_ptr<nn::Lstm> lstm_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
};

}  // namespace nec::baseline
