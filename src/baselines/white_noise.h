// White-noise jammer baseline (§VI-B).
//
// Commercial ultrasonic jammers blanket every microphone in range with
// broadband noise. The paper simulates this class by adding 10 dB of white
// noise over the recording ("we use 10dB based on our previous observation
// of the shadow sound volume on the same phone"); we reproduce exactly
// that: noise whose power sits `noise_rel_db` above the recording's.
#pragma once

#include <cstdint>

#include "audio/waveform.h"

namespace nec::baseline {

struct WhiteNoiseJammerOptions {
  /// Noise power relative to the recording's power, in dB.
  double noise_rel_db = 10.0;
  std::uint64_t seed = 5150;
};

/// Returns recording + white noise at the configured relative level.
audio::Waveform JamWithWhiteNoise(const audio::Waveform& recording,
                                  const WhiteNoiseJammerOptions& options = {});

}  // namespace nec::baseline
