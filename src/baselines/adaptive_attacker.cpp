#include "baselines/adaptive_attacker.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace nec::baseline {

audio::Waveform SpectralSubtractAttack(
    const audio::Waveform& jammed,
    const audio::Waveform& interference_profile,
    const SpectralSubtractionOptions& options) {
  NEC_CHECK_MSG(jammed.sample_rate() == interference_profile.sample_rate(),
                "attacker inputs must share a sample rate");
  const dsp::Spectrogram spec = dsp::Stft(jammed, options.stft);
  const dsp::Spectrogram noise = dsp::Stft(interference_profile,
                                           options.stft);
  const std::size_t F = spec.num_bins();

  // Average interference magnitude per bin.
  std::vector<double> profile(F, 0.0);
  if (noise.num_frames() > 0) {
    for (std::size_t t = 0; t < noise.num_frames(); ++t) {
      for (std::size_t f = 0; f < F; ++f) {
        profile[f] += noise.MagAt(t, f);
      }
    }
    for (double& v : profile) v /= static_cast<double>(noise.num_frames());
  }

  // Classic magnitude-domain spectral subtraction with a spectral floor.
  std::vector<float> cleaned(spec.mag().size());
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    for (std::size_t f = 0; f < F; ++f) {
      const double m = spec.MagAt(t, f);
      const double sub = m - options.alpha * profile[f];
      cleaned[t * F + f] = static_cast<float>(
          std::max(sub, options.floor * m));
    }
  }
  return dsp::IstftWithPhase(cleaned, spec, options.stft,
                             jammed.sample_rate(), jammed.size());
}

}  // namespace nec::baseline
