#include "baselines/white_noise.h"

#include "audio/level.h"
#include "common/rng.h"

namespace nec::baseline {

audio::Waveform JamWithWhiteNoise(const audio::Waveform& recording,
                                  const WhiteNoiseJammerOptions& options) {
  Rng rng(options.seed ^ 0xACF34CE7B91A65DBULL);
  const float rec_rms = recording.Rms();
  const float noise_rms =
      rec_rms *
      static_cast<float>(audio::DbToAmplitude(options.noise_rel_db));
  audio::Waveform out = recording;
  for (float& s : out.samples()) {
    s += rng.GaussianF(0.0f, noise_rms);
  }
  return out;
}

}  // namespace nec::baseline
