// Patronus baseline (Li et al., SenSys 2020) — scrambling with selective
// unscrambling.
//
// Patronus hides recordings by overlaying a *designed* pseudo-random
// scramble (frequency-hopping tonal chirps in the speech band, delivered
// via ultrasound in the original system) and lets authorized devices
// subtract the scramble because they know its generation schedule.
// Unauthorized recorders keep the scrambled mess.
//
// We reproduce the signal contract the NEC paper compares against
// (§VI-B): Scramble() applies the keyed scramble; Recover() regenerates
// the scramble from the shared key and subtracts it with imperfect gain
// and timing (recovery is never exact over the air — this is why the
// paper measures Alice's post-recovery SDR at ~-2.5 dB, below the raw
// mixed audio).
#pragma once

#include <cstdint>

#include "audio/waveform.h"

namespace nec::baseline {

struct PatronusOptions {
  std::uint64_t key = 0xC0FFEE;  ///< shared scramble schedule key
  /// Scramble power relative to the recording, in dB.
  double scramble_rel_db = 8.0;
  /// Frequency-hop interval in ms.
  double hop_interval_ms = 40.0;
  /// Scramble band (speech formant range, per the Patronus design).
  double band_lo_hz = 300.0;
  double band_hi_hz = 4000.0;
  /// Recovery imperfection: gain mismatch of the regenerated scramble
  /// (1.0 = perfect) and timing error in samples.
  double recovery_gain = 0.85;
  int recovery_offset_samples = 0;
};

class Patronus {
 public:
  explicit Patronus(PatronusOptions options = {});

  /// The keyed scramble waveform for a clip of `num_samples` samples.
  audio::Waveform GenerateScramble(int sample_rate,
                                   std::size_t num_samples) const;

  /// recording + scramble (what an unauthorized recorder keeps).
  audio::Waveform Scramble(const audio::Waveform& recording) const;

  /// Authorized recovery: subtracts the regenerated scramble with the
  /// configured gain/timing imperfection.
  audio::Waveform Recover(const audio::Waveform& scrambled) const;

  const PatronusOptions& options() const { return options_; }

 private:
  PatronusOptions options_;
};

}  // namespace nec::baseline
