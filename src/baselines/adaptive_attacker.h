// Adaptive attacker analysis (§II threat discussion).
//
// The paper motivates NEC over scrambling jammers partly by attack
// resistance: "if the attacker learns the frequency pattern of the
// scrambling noise wave, the attacker can deploy an additional microphone
// to nullify the noises". We make that concrete with a spectral-
// subtraction attacker:
//
//   * the attacker estimates the interference's average spectrum from a
//     segment where the victim (Bob) is silent (or from a second
//     microphone), and
//   * subtracts that estimate from the recording's spectrogram, trying to
//     un-jam it.
//
// Against *stationary* jamming (white noise, fixed scramble statistics)
// this recovers much of the buried voice. Against NEC it cannot: the
// shadow is Bob-shaped and non-stationary — subtracting its average
// spectrum does not resurrect the canceled content. bench_ext_attack
// quantifies both.
#pragma once

#include "audio/waveform.h"
#include "dsp/stft.h"

namespace nec::baseline {

struct SpectralSubtractionOptions {
  dsp::StftConfig stft{.fft_size = 512, .win_length = 400,
                       .hop_length = 160};
  /// Over-subtraction factor (classic spectral subtraction uses 1–3).
  double alpha = 1.6;
  /// Magnitude floor as a fraction of the original cell.
  double floor = 0.05;
};

/// The attacker's denoiser: subtracts `interference_profile`'s average
/// magnitude spectrum (estimated from a reference recording of the
/// interference alone) from `jammed`, returning the attempted recovery.
audio::Waveform SpectralSubtractAttack(
    const audio::Waveform& jammed,
    const audio::Waveform& interference_profile,
    const SpectralSubtractionOptions& options = {});

}  // namespace nec::baseline
