#include "baselines/patronus.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"

namespace nec::baseline {

Patronus::Patronus(PatronusOptions options) : options_(options) {
  NEC_CHECK(options_.band_lo_hz > 0 &&
            options_.band_hi_hz > options_.band_lo_hz);
}

audio::Waveform Patronus::GenerateScramble(int sample_rate,
                                           std::size_t num_samples) const {
  // Three simultaneous frequency-hopping tones with randomized phase —
  // deterministic in the key, so an authorized device can regenerate it.
  Rng rng(options_.key * 0x9E3779B97F4A7C15ULL + 1);
  audio::Waveform scramble(sample_rate, num_samples);
  const std::size_t hop_len = static_cast<std::size_t>(
      options_.hop_interval_ms * sample_rate / 1000.0);
  NEC_CHECK(hop_len >= 8);

  constexpr int kTones = 3;
  for (int tone = 0; tone < kTones; ++tone) {
    double phase = rng.Uniform(0.0, 2.0 * std::numbers::pi);
    double freq = 0.0;
    for (std::size_t i = 0; i < num_samples; ++i) {
      if (i % hop_len == 0) {
        freq = rng.Uniform(options_.band_lo_hz, options_.band_hi_hz);
      }
      phase += 2.0 * std::numbers::pi * freq / sample_rate;
      // Short raised-cosine ramp at hop boundaries to avoid clicks.
      const std::size_t in_hop = i % hop_len;
      const double edge = std::min<std::size_t>(in_hop, hop_len - in_hop);
      const double ramp = std::min(1.0, static_cast<double>(edge) /
                                            (0.1 * hop_len));
      scramble[i] += static_cast<float>(std::sin(phase) * ramp / kTones);
    }
  }
  return scramble;
}

audio::Waveform Patronus::Scramble(const audio::Waveform& recording) const {
  audio::Waveform scramble =
      GenerateScramble(recording.sample_rate(), recording.size());
  const float rec_rms = recording.Rms();
  const float target_rms =
      rec_rms *
      static_cast<float>(std::pow(10.0, options_.scramble_rel_db / 20.0));
  scramble.NormalizeRms(target_rms);
  return audio::Mix(recording, scramble);
}

audio::Waveform Patronus::Recover(const audio::Waveform& scrambled) const {
  // The authorized device regenerates the schedule and subtracts it, but
  // with a gain mismatch and a small timing error (over-the-air recovery
  // is never sample-exact).
  audio::Waveform scramble =
      GenerateScramble(scrambled.sample_rate(), scrambled.size());
  // The scramble level inside `scrambled` is unknown to the receiver; it
  // estimates it by projecting the received signal onto the known
  // scramble (least squares).
  double dot = 0.0, ss = 0.0;
  for (std::size_t i = 0; i < scrambled.size(); ++i) {
    dot += static_cast<double>(scrambled[i]) * scramble[i];
    ss += static_cast<double>(scramble[i]) * scramble[i];
  }
  const double est_gain = ss > 0 ? dot / ss : 0.0;

  audio::Waveform out = scrambled;
  const std::ptrdiff_t off = options_.recovery_offset_samples;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) - off;
    const float s =
        (j >= 0 && j < static_cast<std::ptrdiff_t>(scramble.size()))
            ? scramble[static_cast<std::size_t>(j)]
            : 0.0f;
    out[i] -= static_cast<float>(est_gain * options_.recovery_gain) * s;
  }
  return out;
}

}  // namespace nec::baseline
