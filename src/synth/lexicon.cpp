#include "synth/lexicon.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace nec::synth {
namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

struct RawEntry {
  const char* word;
  const char* phonemes;  // space-separated ARPABET labels
};

// CMUdict-style transcriptions restricted to our phoneme inventory.
const RawEntry kRawLexicon[] = {
    // §III calibration sentences.
    {"my", "M AY"},
    {"ideal", "AY D IY AH L"},
    {"morning", "M AO R N IH NG"},
    {"begins", "B IH G IH N Z"},
    {"with", "W IH TH"},
    {"hot", "HH AA T"},
    {"coffee", "K AO F IY"},
    {"don't", "D OW N T"},
    {"ask", "AE S K"},
    {"me", "M IY"},
    {"to", "T UW"},
    {"carry", "K AE R IY"},
    {"an", "AE N"},
    {"oily", "OY L IY"},
    {"rag", "R AE G"},
    {"like", "L AY K"},
    {"that", "DH AE T"},
    // Function words.
    {"the", "DH AH"},
    {"a", "AH"},
    {"and", "AE N D"},
    {"is", "IH Z"},
    {"was", "W AA Z"},
    {"are", "AA R"},
    {"be", "B IY"},
    {"have", "HH AE V"},
    {"has", "HH AE Z"},
    {"it", "IH T"},
    {"you", "Y UW"},
    {"we", "W IY"},
    {"they", "DH EY"},
    {"he", "HH IY"},
    {"she", "SH IY"},
    {"this", "DH IH S"},
    {"for", "F AO R"},
    {"not", "N AA T"},
    {"on", "AA N"},
    {"at", "AE T"},
    {"by", "B AY"},
    {"from", "F R AH M"},
    {"up", "AH P"},
    {"down", "D AW N"},
    {"out", "AW T"},
    {"about", "AH B AW T"},
    {"into", "IH N T UW"},
    {"over", "OW V ER"},
    {"after", "AE F T ER"},
    // Time and daily life.
    {"time", "T AY M"},
    {"day", "D EY"},
    {"night", "N AY T"},
    {"week", "W IY K"},
    {"year", "Y IH R"},
    {"today", "T AH D EY"},
    {"tomorrow", "T AH M AA R OW"},
    {"evening", "IY V N IH NG"},
    {"people", "P IY P AH L"},
    {"way", "W EY"},
    {"water", "W AO T ER"},
    {"weather", "W EH DH ER"},
    {"sunny", "S AH N IY"},
    {"rain", "R EY N"},
    {"cold", "K OW L D"},
    {"warm", "W AO R M"},
    // Communication / privacy-themed vocabulary (the paper's scenario).
    {"call", "K AO L"},
    {"phone", "F OW N"},
    {"meeting", "M IY T IH NG"},
    {"work", "W ER K"},
    {"office", "AO F IH S"},
    {"home", "HH OW M"},
    {"money", "M AH N IY"},
    {"bank", "B AE NG K"},
    {"secret", "S IY K R IH T"},
    {"private", "P R AY V AH T"},
    {"voice", "V OY S"},
    {"record", "R EH K ER D"},
    {"sound", "S AW N D"},
    {"speak", "S P IY K"},
    {"talk", "T AO K"},
    {"listen", "L IH S AH N"},
    {"hear", "HH IY R"},
    {"say", "S EY"},
    {"tell", "T EH L"},
    {"email", "IY M EY L"},
    {"letter", "L EH T ER"},
    {"paper", "P EY P ER"},
    {"book", "B UH K"},
    {"read", "R IY D"},
    {"write", "R AY T"},
    {"number", "N AH M B ER"},
    // Adjectives.
    {"good", "G UH D"},
    {"bad", "B AE D"},
    {"big", "B IH G"},
    {"small", "S M AO L"},
    {"new", "N UW"},
    {"old", "OW L D"},
    {"long", "L AO NG"},
    {"high", "HH AY"},
    {"low", "L OW"},
    {"right", "R AY T"},
    {"left", "L EH F T"},
    {"green", "G R IY N"},
    {"blue", "B L UW"},
    {"red", "R EH D"},
    {"white", "W AY T"},
    {"black", "B L AE K"},
    {"yellow", "Y EH L OW"},
    // Numbers.
    {"one", "W AH N"},
    {"two", "T UW"},
    {"three", "TH R IY"},
    {"four", "F AO R"},
    {"five", "F AY V"},
    {"six", "S IH K S"},
    {"seven", "S EH V AH N"},
    {"eight", "EY T"},
    {"nine", "N AY N"},
    {"ten", "T EH N"},
    // Verbs and nouns for generated chatter.
    {"please", "P L IY Z"},
    {"thank", "TH AE NG K"},
    {"hello", "HH EH L OW"},
    {"tea", "T IY"},
    {"dinner", "D IH N ER"},
    {"city", "S IH T IY"},
    {"street", "S T R IY T"},
    {"car", "K AA R"},
    {"drive", "D R AY V"},
    {"train", "T R EY N"},
    {"walk", "W AO K"},
    {"run", "R AH N"},
    {"open", "OW P AH N"},
    {"close", "K L OW Z"},
    {"start", "S T AA R T"},
    {"stop", "S T AA P"},
    {"go", "G OW"},
    {"come", "K AH M"},
    {"see", "S IY"},
    {"look", "L UH K"},
    {"find", "F AY N D"},
    {"give", "G IH V"},
    {"take", "T EY K"},
    {"make", "M EY K"},
    {"know", "N OW"},
    {"think", "TH IH NG K"},
    {"feel", "F IY L"},
    {"need", "N IY D"},
    {"want", "W AA N T"},
    {"help", "HH EH L P"},
    {"send", "S EH N D"},
    {"house", "HH AW S"},
    {"door", "D AO R"},
    {"window", "W IH N D OW"},
    {"table", "T EY B AH L"},
    {"room", "R UW M"},
    {"family", "F AE M AH L IY"},
    {"friend", "F R EH N D"},
    {"mother", "M AH DH ER"},
    {"father", "F AA DH ER"},
    {"sister", "S IH S T ER"},
    {"brother", "B R AH DH ER"},
    {"baby", "B EY B IY"},
    {"boy", "B OY"},
    {"girl", "G ER L"},
    {"man", "M AE N"},
    {"woman", "W UH M AH N"},
    {"doctor", "D AA K T ER"},
    {"student", "S T UW D AH N T"},
    {"music", "M Y UW Z IH K"},
    {"play", "P L EY"},
    {"game", "G EY M"},
    {"food", "F UW D"},
    {"bread", "B R EH D"},
    {"milk", "M IH L K"},
    {"sugar", "SH UH G ER"},
    {"apple", "AE P AH L"},
};

}  // namespace

Lexicon::Lexicon() {
  entries_.reserve(std::size(kRawLexicon));
  for (const RawEntry& raw : kRawLexicon) {
    Entry e;
    e.word = raw.word;
    std::string_view rest(raw.phonemes);
    while (!rest.empty()) {
      const std::size_t sp = rest.find(' ');
      const std::string_view tok = rest.substr(0, sp);
      NEC_CHECK_MSG(FindPhoneme(tok).has_value(),
                    "lexicon entry '" << raw.word
                                      << "' uses unknown phoneme " << tok);
      e.phoneme_names.emplace_back(tok);
      rest = sp == std::string_view::npos ? std::string_view{}
                                          : rest.substr(sp + 1);
    }
    entries_.push_back(std::move(e));
    words_.emplace_back(raw.word);
  }
  std::sort(words_.begin(), words_.end());
}

const Lexicon& Lexicon::Default() {
  static const Lexicon instance;
  return instance;
}

std::optional<std::vector<Phoneme>> Lexicon::Lookup(
    std::string_view word) const {
  const std::string key = ToLower(word);
  for (const Entry& e : entries_) {
    if (e.word == key) {
      std::vector<Phoneme> out;
      out.reserve(e.phoneme_names.size());
      for (const std::string& name : e.phoneme_names) {
        out.push_back(*FindPhoneme(name));
      }
      return out;
    }
  }
  return std::nullopt;
}

bool Lexicon::Contains(std::string_view word) const {
  const std::string key = ToLower(word);
  return std::binary_search(words_.begin(), words_.end(), key);
}

std::vector<std::string> Lexicon::RandomSentence(
    Rng& rng, std::size_t num_words) const {
  std::vector<std::string> out;
  out.reserve(num_words);
  for (std::size_t i = 0; i < num_words; ++i) {
    out.push_back(
        words_[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<int>(words_.size()) - 1))]);
  }
  return out;
}

std::vector<std::string> Lexicon::Tokenize(std::string_view sentence) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : sentence) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(ToLower(cur));
        cur.clear();
      }
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '\'') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(ToLower(cur));
  return out;
}

}  // namespace nec::synth
