// Synthetic speaker identities.
//
// A SpeakerProfile is the stand-in for a LibriSpeech speaker / study
// volunteer: a stable bundle of vocal-tract parameters derived
// deterministically from a seed. Identity is carried by exactly the
// features the paper shows to be speaker-specific but utterance-independent
// (§III): fundamental frequency, per-formant frequency offsets, a global
// vocal-tract length scale, formant bandwidths and spectral tilt. Two
// utterances from the same profile share these; two profiles differ.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace nec::synth {

struct SpeakerProfile {
  std::uint64_t seed = 0;   ///< identity seed this profile was derived from
  std::string name;         ///< display label, e.g. "spk-0042"

  double f0_base_hz = 120.0;   ///< median fundamental (≈85–250 Hz)
  double f0_range = 0.18;      ///< relative prosodic F0 excursion
  double vibrato_hz = 5.0;     ///< slow F0 modulation rate
  double vibrato_depth = 0.01; ///< relative vibrato depth
  double jitter = 0.008;       ///< per-period random F0 perturbation
  double shimmer = 0.04;       ///< per-period amplitude perturbation

  /// Global vocal-tract length factor: all formants scale by this.
  double formant_scale = 1.0;
  /// Idiosyncratic relative offsets for F1..F3 (e.g. +0.06 = +6%).
  std::array<double, 3> formant_shift = {0.0, 0.0, 0.0};
  /// Formant bandwidth scale (1.0 → B1..B3 ≈ 60/90/120 Hz).
  double bandwidth_scale = 1.0;

  double breathiness = 0.02;    ///< aspiration noise mixed into voicing
  double speaking_rate = 1.0;   ///< 1.0 ≈ 184 words/min (paper's figure)
  double tilt_lp_hz = 3200.0;   ///< one-pole source-tilt cutoff

  /// Derives a stable profile from a seed. The same seed always yields the
  /// same speaker; distinct seeds yield distinct formant signatures.
  static SpeakerProfile FromSeed(std::uint64_t seed);

  /// Speaker-adjusted formant frequency for canonical target `f_hz` of
  /// formant index `i` (0-based, clamped to 2 for F4+).
  double AdjustFormant(double f_hz, int i) const;
};

}  // namespace nec::synth
