#include "synth/noise.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/biquad.h"
#include "synth/lexicon.h"
#include "synth/speaker.h"
#include "synth/synthesizer.h"

namespace nec::synth {
namespace {

constexpr float kTargetRms = 0.1f;

audio::Waveform White(int fs, std::size_t n, Rng& rng) {
  audio::Waveform w(fs, n);
  for (std::size_t i = 0; i < n; ++i) w[i] = rng.GaussianF(0.0f, 1.0f);
  return w;
}

audio::Waveform Babble(int fs, std::size_t n, Rng& rng) {
  // Overlapping synthetic speakers at staggered offsets. A dozen voices at
  // matched levels is enough for the spectral texture of a crowd.
  constexpr int kVoices = 12;
  audio::Waveform mix(fs, n);
  Synthesizer synth({.sample_rate = fs, .target_rms = 0.1});
  const Lexicon& lex = Lexicon::Default();
  for (int v = 0; v < kVoices; ++v) {
    const SpeakerProfile spk = SpeakerProfile::FromSeed(rng.NextSeed());
    std::size_t cursor =
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(fs / 2)));
    Rng srng(rng.NextSeed());
    while (cursor < n) {
      const auto words = lex.RandomSentence(srng, srng.UniformInt(3, 7));
      const Utterance utt = synth.SynthesizeWords(spk, words, srng.NextSeed());
      mix.MixIn(utt.wave, cursor, 1.0f / kVoices);
      cursor += utt.wave.size() + static_cast<std::size_t>(fs / 8);
    }
  }
  // Keep the babble band below ~4 kHz as in NOISEX babble.
  auto lp = dsp::DesignButterworthLowPass(4, 3800.0, fs);
  lp.ProcessBuffer(mix.samples());
  return mix;
}

audio::Waveform Factory(int fs, std::size_t n, Rng& rng) {
  audio::Waveform w(fs, n);
  // Broadband machinery floor.
  for (std::size_t i = 0; i < n; ++i) w[i] = rng.GaussianF(0.0f, 0.6f);
  auto lp = dsp::DesignButterworthLowPass(8, 1500.0, fs);
  lp.ProcessBuffer(w.samples());

  // Periodic impacts: Poisson hammer blows ringing through a resonator.
  dsp::Biquad ring = dsp::DesignResonator(420.0, 80.0, fs);
  double next_hit = rng.Uniform(0.0, 0.25) * fs;
  for (std::size_t i = 0; i < n; ++i) {
    float impulse = 0.0f;
    if (static_cast<double>(i) >= next_hit) {
      impulse = rng.UniformF(2.0f, 5.0f);
      next_hit += rng.Uniform(0.12, 0.5) * fs;
    }
    w[i] += ring.Process(impulse);
  }
  return w;
}

audio::Waveform Vehicle(int fs, std::size_t n, Rng& rng) {
  audio::Waveform w(fs, n);
  // Leaky-integrated white noise ≈ brown rumble.
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc = 0.999 * acc + rng.Gaussian(0.0, 1.0);
    w[i] = static_cast<float>(acc * 0.02);
  }
  // Engine firing harmonics around 35 Hz with slow drift (~120 km/h cruise).
  double phase = 0.0, f_eng = 35.0;
  for (std::size_t i = 0; i < n; ++i) {
    f_eng += rng.Gaussian(0.0, 0.002);
    f_eng = std::clamp(f_eng, 30.0, 42.0);
    phase += f_eng / fs;
    w[i] += static_cast<float>(0.3 * std::sin(2.0 * std::numbers::pi * phase) +
                               0.12 * std::sin(4.0 * std::numbers::pi * phase));
  }
  auto lp = dsp::DesignButterworthLowPass(4, 480.0, fs);
  lp.ProcessBuffer(w.samples());
  return w;
}

}  // namespace

std::string_view NoiseTypeName(NoiseType type) {
  switch (type) {
    case NoiseType::kWhite: return "white";
    case NoiseType::kBabble: return "babble";
    case NoiseType::kFactory: return "factory";
    case NoiseType::kVehicle: return "vehicle";
  }
  return "unknown";
}

audio::Waveform GenerateNoise(NoiseType type, int sample_rate,
                              std::size_t num_samples, std::uint64_t seed) {
  NEC_CHECK(sample_rate >= 8000);
  Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
  audio::Waveform w(sample_rate, std::size_t{0});
  switch (type) {
    case NoiseType::kWhite:
      w = White(sample_rate, num_samples, rng);
      break;
    case NoiseType::kBabble:
      w = Babble(sample_rate, num_samples, rng);
      break;
    case NoiseType::kFactory:
      w = Factory(sample_rate, num_samples, rng);
      break;
    case NoiseType::kVehicle:
      w = Vehicle(sample_rate, num_samples, rng);
      break;
  }
  w.NormalizeRms(kTargetRms);
  return w;
}

}  // namespace nec::synth
