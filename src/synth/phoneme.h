// Phoneme inventory for the parametric voice synthesizer.
//
// The paper's core observation (§III) is that speaker identity lives in the
// formant structure (timbre pattern) of speech, independent of utterance
// content. Our LibriSpeech substitute therefore synthesizes speech with an
// explicit source-filter model whose phonemes carry canonical formant
// targets (Peterson & Barney-style vowel tables); each synthetic speaker
// perturbs these targets with a stable, speaker-specific transform
// (speaker.h), which reproduces the "speaker-specific but
// utterance-independent" property the encoder/selector exploit.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nec::synth {

enum class PhonemeType {
  kVowel,
  kNasal,
  kFricative,
  kStop,
  kApproximant,
  kSilence,
};

/// One phoneme's canonical acoustic targets.
struct Phoneme {
  std::string_view name;  ///< ARPABET-style label
  PhonemeType type;
  bool voiced;
  // First three formant targets in Hz (0 where not applicable).
  double f1, f2, f3;
  // Nominal duration in milliseconds (before speaker-rate scaling).
  double duration_ms;
  // Frication noise band for fricatives / stop bursts (Hz).
  double noise_lo, noise_hi;
  // Relative amplitude (1.0 = vowel reference level).
  double amplitude;
};

/// Full inventory (vowels, nasals, fricatives, stops, approximants,
/// word-gap silence).
const std::vector<Phoneme>& PhonemeInventory();

/// Looks up a phoneme by name; nullopt if unknown.
std::optional<Phoneme> FindPhoneme(std::string_view name);

/// The inter-word silence pseudo-phoneme.
const Phoneme& SilencePhoneme();

}  // namespace nec::synth
