#include "synth/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/check.h"
#include "common/rng.h"

namespace nec::synth {
namespace {

constexpr double kControlRateHz = 1000.0;  // one control frame per ms

// Canonical -3 dB bandwidths for F1..F3 (Hz); the paper cites 33–79 Hz for
// formant bandwidths, we use slightly wider values typical of running
// speech so resonances stay stable under fast formant motion.
constexpr double kBaseBandwidth[3] = {60.0, 90.0, 120.0};

/// One control frame: targets for the renderer.
struct ControlFrame {
  double f[3] = {500.0, 1500.0, 2500.0};  // formant centers (Hz)
  double voiced_amp = 0.0;                // glottal source amplitude
  double noise_amp = 0.0;                 // frication amplitude
  double noise_lo = 500.0, noise_hi = 4000.0;
  double f0 = 120.0;
};

/// Two-pole resonator with per-frame coefficient update but persistent
/// difference-equation state, so formant glides do not click.
class GlidingResonator {
 public:
  void SetTarget(double center_hz, double bandwidth_hz, double fs) {
    const double r = std::exp(-std::numbers::pi * bandwidth_hz / fs);
    a1_ = -2.0 * r * std::cos(2.0 * std::numbers::pi * center_hz / fs);
    a2_ = r * r;
    // Klatt-style unit DC gain: cascaded resonators then superimpose
    // formant peaks on the source spectrum without attenuating the
    // passband between formants.
    b0_ = 1.0 + a1_ + a2_;
  }

  double Process(double x) {
    const double y = b0_ * x - a1_ * y1_ - a2_ * y2_;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

 private:
  double b0_ = 1.0, a1_ = 0.0, a2_ = 0.0;
  double y1_ = 0.0, y2_ = 0.0;
};

/// One-pole low-pass with persistent state (source tilt / glottal shaping).
class OnePoleLp {
 public:
  void SetCutoff(double cutoff_hz, double fs) {
    a_ = std::exp(-2.0 * std::numbers::pi * cutoff_hz / fs);
  }
  double Process(double x) {
    y_ = (1.0 - a_) * x + a_ * y_;
    return y_;
  }

 private:
  double a_ = 0.0, y_ = 0.0;
};

/// Simple state-variable band-pass used for frication noise; coefficients
/// may change every control frame.
class NoiseBand {
 public:
  void SetBand(double lo, double hi, double fs) {
    lo = std::clamp(lo, 50.0, fs / 2 - 100.0);
    hi = std::clamp(hi, lo + 50.0, fs / 2 - 50.0);
    hp_a_ = std::exp(-2.0 * std::numbers::pi * lo / fs);
    lp_a_ = std::exp(-2.0 * std::numbers::pi * hi / fs);
  }
  double Process(double x) {
    lp_y_ = (1.0 - lp_a_) * x + lp_a_ * lp_y_;   // low-pass at hi
    hp_y_ = (1.0 - hp_a_) * lp_y_ + hp_a_ * hp_y_;  // running low at lo
    return lp_y_ - hp_y_;                        // band = LP(hi) - LP(lo)
  }

 private:
  double lp_a_ = 0.0, hp_a_ = 0.0;
  double lp_y_ = 0.0, hp_y_ = 0.0;
};

/// Expands one phoneme into control frames appended to `track`.
/// Returns frames appended.
std::size_t AppendPhoneme(const Phoneme& ph, const SpeakerProfile& spk,
                          Rng& rng, std::vector<ControlFrame>& track) {
  const double dur_scale =
      (1.0 / spk.speaking_rate) * rng.Uniform(0.85, 1.18);
  std::size_t frames = static_cast<std::size_t>(
      std::max(2.0, ph.duration_ms * dur_scale));

  ControlFrame base;
  if (ph.f1 > 0) {
    base.f[0] = spk.AdjustFormant(ph.f1, 0);
    base.f[1] = spk.AdjustFormant(ph.f2, 1);
    base.f[2] = spk.AdjustFormant(ph.f3, 2);
  } else if (!track.empty()) {
    // Noise-only phonemes keep the previous formant state so the resonator
    // track interpolates smoothly through them.
    base.f[0] = track.back().f[0];
    base.f[1] = track.back().f[1];
    base.f[2] = track.back().f[2];
  }

  switch (ph.type) {
    case PhonemeType::kVowel:
    case PhonemeType::kApproximant:
      base.voiced_amp = ph.amplitude;
      break;
    case PhonemeType::kNasal:
      base.voiced_amp = ph.amplitude;
      break;
    case PhonemeType::kFricative:
      base.noise_amp = ph.amplitude;
      base.noise_lo = ph.noise_lo;
      base.noise_hi = ph.noise_hi;
      if (ph.voiced) base.voiced_amp = 0.45 * ph.amplitude;
      break;
    case PhonemeType::kStop: {
      // Closure silence followed by a burst: emit closure frames now, then
      // burst frames below.
      const std::size_t closure = frames / 2;
      const std::size_t burst = frames - closure;
      ControlFrame cl = base;
      cl.voiced_amp = ph.voiced ? 0.08 * ph.amplitude : 0.0;  // voice bar
      cl.noise_amp = 0.0;
      for (std::size_t i = 0; i < closure; ++i) track.push_back(cl);
      ControlFrame bu = base;
      bu.noise_amp = 1.6 * ph.amplitude;
      bu.noise_lo = ph.noise_lo;
      bu.noise_hi = ph.noise_hi;
      if (ph.voiced) bu.voiced_amp = 0.5 * ph.amplitude;
      for (std::size_t i = 0; i < burst; ++i) track.push_back(bu);
      return frames;
    }
    case PhonemeType::kSilence:
      break;
  }

  for (std::size_t i = 0; i < frames; ++i) track.push_back(base);
  return frames;
}

/// Moving-average smoothing of formant and amplitude tracks — the cheap
/// coarticulation model (formants glide over ~±12 ms).
void SmoothTrack(std::vector<ControlFrame>& track) {
  constexpr int kHalf = 12;
  const int n = static_cast<int>(track.size());
  std::vector<ControlFrame> out = track;
  for (int i = 0; i < n; ++i) {
    double f[3] = {0, 0, 0};
    double va = 0.0, na = 0.0;
    int count = 0;
    for (int j = std::max(0, i - kHalf); j <= std::min(n - 1, i + kHalf);
         ++j) {
      for (int k = 0; k < 3; ++k) f[k] += track[static_cast<std::size_t>(j)].f[k];
      va += track[static_cast<std::size_t>(j)].voiced_amp;
      na += track[static_cast<std::size_t>(j)].noise_amp;
      ++count;
    }
    for (int k = 0; k < 3; ++k)
      out[static_cast<std::size_t>(i)].f[k] = f[k] / count;
    out[static_cast<std::size_t>(i)].voiced_amp = va / count;
    out[static_cast<std::size_t>(i)].noise_amp = na / count;
  }
  track = std::move(out);
}

}  // namespace

Synthesizer::Synthesizer(SynthesisOptions options)
    : options_(options) {
  NEC_CHECK_MSG(options_.sample_rate >= 8000,
                "synthesizer needs >= 8 kHz output");
}

Utterance Synthesizer::SynthesizeWords(
    const SpeakerProfile& speaker, const std::vector<std::string>& words,
    std::uint64_t utterance_seed) const {
  const Lexicon& lex = Lexicon::Default();
  Rng rng(utterance_seed ^ (speaker.seed * 0x2545F4914F6CDD1DULL));

  // --- Build the control track (1 frame per ms) with word alignment.
  std::vector<ControlFrame> track;
  std::vector<std::pair<std::size_t, std::size_t>> word_frames;
  const std::size_t edge =
      static_cast<std::size_t>(options_.edge_silence_ms);
  track.resize(edge);

  for (std::size_t w = 0; w < words.size(); ++w) {
    const auto phonemes = lex.Lookup(words[w]);
    if (!phonemes) {
      throw std::invalid_argument("synthesizer: unknown word '" + words[w] +
                                  "'");
    }
    const std::size_t start = track.size();
    for (const Phoneme& ph : *phonemes) {
      AppendPhoneme(ph, speaker, rng, track);
    }
    word_frames.emplace_back(start, track.size());
    if (w + 1 < words.size()) {
      const std::size_t gap = static_cast<std::size_t>(std::max(
          60.0, options_.word_gap_ms / speaker.speaking_rate *
                    rng.Uniform(0.7, 1.5)));
      track.resize(track.size() + gap);
    }
  }
  track.resize(track.size() + edge);
  SmoothTrack(track);

  // --- Prosody: smooth random F0 contour with declination.
  const std::size_t n_frames = track.size();
  {
    double phrase = rng.Uniform(-0.5, 0.5);
    for (std::size_t i = 0; i < n_frames; ++i) {
      const double pos =
          static_cast<double>(i) / std::max<std::size_t>(1, n_frames - 1);
      phrase += rng.Gaussian(0.0, 0.02);
      phrase *= 0.995;  // mean-reverting random walk
      const double declination = 1.0 + 0.12 * (0.5 - pos);
      track[i].f0 = speaker.f0_base_hz * declination *
                    (1.0 + speaker.f0_range * phrase);
    }
  }

  // --- Render at audio rate.
  const int fs = options_.sample_rate;
  const double frames_per_sample = kControlRateHz / fs;
  const std::size_t n_samples = static_cast<std::size_t>(
      static_cast<double>(n_frames) / frames_per_sample);
  audio::Waveform wave(fs, n_samples);

  GlidingResonator res[3];
  OnePoleLp glottal_shape1, glottal_shape2, tilt;
  glottal_shape1.SetCutoff(900.0, fs);
  glottal_shape2.SetCutoff(1400.0, fs);
  tilt.SetCutoff(speaker.tilt_lp_hz, fs);
  NoiseBand noise_band;

  double phase = 0.0;
  double period_gain = 1.0;   // shimmer, resampled once per glottal period
  double period_f0_mult = 1.0;  // jitter
  std::size_t last_cf = static_cast<std::size_t>(-1);
  double dc_prev_x = 0.0, dc_prev_y = 0.0;  // DC blocker

  for (std::size_t i = 0; i < n_samples; ++i) {
    const std::size_t cf_idx = std::min(
        n_frames - 1, static_cast<std::size_t>(i * frames_per_sample));
    const ControlFrame& cf = track[cf_idx];
    if (cf_idx != last_cf) {
      for (int k = 0; k < 3; ++k) {
        res[k].SetTarget(
            cf.f[k],
            kBaseBandwidth[k] * speaker.bandwidth_scale,
            fs);
      }
      noise_band.SetBand(cf.noise_lo, cf.noise_hi, fs);
      last_cf = cf_idx;
    }

    // Glottal source: impulse train with vibrato, jitter and shimmer,
    // shaped to ≈ -12 dB/oct by two one-pole LPs.
    const double t = static_cast<double>(i) / fs;
    const double vibrato =
        1.0 + speaker.vibrato_depth *
                  std::sin(2.0 * std::numbers::pi * speaker.vibrato_hz * t);
    const double f0 = cf.f0 * vibrato * period_f0_mult;
    phase += f0 / fs;
    double pulse = 0.0;
    if (phase >= 1.0) {
      phase -= 1.0;
      pulse = 1.0 * period_gain;
      period_gain = 1.0 + rng.Gaussian(0.0, speaker.shimmer);
      period_f0_mult = 1.0 + rng.Gaussian(0.0, speaker.jitter);
    }
    double voiced = glottal_shape2.Process(glottal_shape1.Process(pulse * 40.0));
    voiced += speaker.breathiness * rng.Gaussian(0.0, 1.0) *
              (cf.voiced_amp > 0 ? 1.0 : 0.0);
    voiced = tilt.Process(voiced);

    // Vocal tract: cascade of three formant resonators.
    double vt = voiced * cf.voiced_amp;
    for (int k = 0; k < 3; ++k) vt = res[k].Process(vt);

    // Frication path bypasses the full cascade (front-cavity noise);
    // a light pass through F3 adds some coloring.
    const double fric =
        cf.noise_amp > 0
            ? cf.noise_amp * 3.5 * noise_band.Process(rng.Gaussian(0.0, 1.0))
            : 0.0;

    const double x = vt + fric;
    // DC blocker.
    const double y = x - dc_prev_x + 0.995 * dc_prev_y;
    dc_prev_x = x;
    dc_prev_y = y;
    wave[i] = static_cast<float>(y);
  }

  wave.NormalizeRms(static_cast<float>(options_.target_rms));

  // --- Word timings in samples.
  Utterance utt;
  utt.wave = std::move(wave);
  for (std::size_t w = 0; w < words.size(); ++w) {
    WordTiming tm;
    tm.word = words[w];
    tm.start_sample = static_cast<std::size_t>(
        static_cast<double>(word_frames[w].first) / frames_per_sample);
    tm.end_sample = static_cast<std::size_t>(
        static_cast<double>(word_frames[w].second) / frames_per_sample);
    utt.timings.push_back(std::move(tm));
  }
  return utt;
}

Utterance Synthesizer::SynthesizeSentence(const SpeakerProfile& speaker,
                                          std::string_view sentence,
                                          std::uint64_t utterance_seed) const {
  return SynthesizeWords(speaker, Lexicon::Tokenize(sentence),
                         utterance_seed);
}

}  // namespace nec::synth
