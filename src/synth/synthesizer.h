// Source-filter speech synthesizer — the LibriSpeech / volunteer substitute.
//
// Classic cascade formant synthesis (Klatt-style, reduced): a glottal pulse
// source with speaker-specific F0 contour, jitter/shimmer and spectral
// tilt, filtered by three time-varying formant resonators whose targets are
// the speaker-adjusted phoneme formants; fricatives and stop bursts are
// band-filtered noise. Control parameters are computed on a 1 kHz control
// track and smoothed for coarticulation, then rendered at audio rate.
//
// The output is intentionally "speech-like" rather than natural: what
// matters for the reproduction is that spectrograms carry stable,
// speaker-specific formant structure (§III of the paper) and word-level
// temporal structure the ASR substitute can recognize.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "audio/waveform.h"
#include "synth/lexicon.h"
#include "synth/phoneme.h"
#include "synth/speaker.h"

namespace nec::synth {

struct SynthesisOptions {
  int sample_rate = 16000;
  /// Nominal inter-word gap in ms (scaled by speaking rate, randomized).
  double word_gap_ms = 110.0;
  /// Target RMS of the rendered utterance (post-normalization).
  double target_rms = 0.08;
  /// Leading/trailing silence in ms.
  double edge_silence_ms = 40.0;
};

/// Timing of one synthesized word within an utterance (sample indices) —
/// ground truth for the ASR substitute's templates and WER scoring.
struct WordTiming {
  std::string word;
  std::size_t start_sample = 0;
  std::size_t end_sample = 0;
};

/// A rendered utterance plus its word alignment.
struct Utterance {
  audio::Waveform wave;
  std::vector<WordTiming> timings;
};

class Synthesizer {
 public:
  explicit Synthesizer(SynthesisOptions options = {});

  /// Renders `words` in the given speaker's voice. `utterance_seed` drives
  /// per-utterance prosody randomness only — the speaker identity comes
  /// entirely from `speaker`. Unknown words throw std::invalid_argument.
  Utterance SynthesizeWords(const SpeakerProfile& speaker,
                            const std::vector<std::string>& words,
                            std::uint64_t utterance_seed) const;

  /// Convenience: tokenizes `sentence` and renders it.
  Utterance SynthesizeSentence(const SpeakerProfile& speaker,
                               std::string_view sentence,
                               std::uint64_t utterance_seed) const;

  const SynthesisOptions& options() const { return options_; }

 private:
  SynthesisOptions options_;
};

}  // namespace nec::synth
