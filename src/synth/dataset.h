// Benchmark corpus builder — the Table I substitute.
//
// Produces mixed-audio instances with ground-truth stems: the target
// speaker's clean utterance (S_Bob), the background (S_bk: another
// speaker's utterance for "Joint Conversation", or a NOISEX-style noise
// bed), and their sum (S_mixed). The training and evaluation pipelines
// consume these instances; reference audios for speaker enrollment are
// generated from the same speaker with disjoint content seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audio/waveform.h"
#include "synth/noise.h"
#include "synth/speaker.h"
#include "synth/synthesizer.h"

namespace nec::synth {

/// Evaluation scenario — the rows of Table I / x-axis of Fig. 11.
enum class Scenario {
  kJointConversation,  ///< two speakers talking jointly (0–8 kHz)
  kBabble,             ///< 100 people whispering (0–4 kHz)
  kFactory,            ///< production hall (0–2 kHz)
  kVehicle,            ///< vehicle at 120 km/h (0–500 Hz)
  kWhite,              ///< broadband white (jammer baseline experiments)
};

std::string_view ScenarioName(Scenario s);

/// One evaluation instance with ground-truth stems.
struct MixInstance {
  audio::Waveform mixed;       ///< target + background (what a mic hears)
  audio::Waveform target;      ///< Bob's clean voice (to be cancelled)
  audio::Waveform background;  ///< everything that must survive
  std::vector<std::string> target_words;
  std::vector<std::string> background_words;  ///< empty for noise scenarios
  Scenario scenario = Scenario::kJointConversation;
};

struct DatasetOptions {
  int sample_rate = 16000;
  double duration_s = 3.0;       ///< paper: 3 s clips
  double background_snr_db = 0.0;  ///< target-vs-background power ratio
  std::size_t words_per_utterance = 6;
};

class DatasetBuilder {
 public:
  explicit DatasetBuilder(DatasetOptions options = {});

  /// Deterministic pool of distinct speaker identities.
  static std::vector<SpeakerProfile> MakeSpeakers(std::size_t count,
                                                  std::uint64_t base_seed);

  /// `count` reference audios for speaker enrollment (paper: 3 clips of
  /// 3 s). Content is random and disjoint from evaluation seeds.
  std::vector<audio::Waveform> MakeReferenceAudios(
      const SpeakerProfile& speaker, std::size_t count,
      std::uint64_t seed) const;

  /// Builds one mixed instance for `target` under `scenario`. For
  /// kJointConversation, `interferer` supplies the second voice (required);
  /// for noise scenarios it is ignored.
  MixInstance MakeInstance(const SpeakerProfile& target, Scenario scenario,
                           std::uint64_t seed,
                           const SpeakerProfile* interferer = nullptr) const;

  /// A clean utterance of the exact configured duration.
  Utterance MakeUtterance(const SpeakerProfile& speaker,
                          std::uint64_t seed) const;

  const DatasetOptions& options() const { return options_; }
  const Synthesizer& synthesizer() const { return synth_; }

 private:
  std::size_t NumSamples() const;

  DatasetOptions options_;
  Synthesizer synth_;
};

}  // namespace nec::synth
