#include "synth/dataset.h"

#include <cmath>

#include "audio/level.h"
#include "common/check.h"
#include "common/rng.h"
#include "synth/lexicon.h"

namespace nec::synth {

std::string_view ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kJointConversation: return "joint";
    case Scenario::kBabble: return "babble";
    case Scenario::kFactory: return "factory";
    case Scenario::kVehicle: return "vehicle";
    case Scenario::kWhite: return "white";
  }
  return "unknown";
}

DatasetBuilder::DatasetBuilder(DatasetOptions options)
    : options_(options),
      synth_({.sample_rate = options.sample_rate}) {
  NEC_CHECK(options_.duration_s > 0.2);
}

std::size_t DatasetBuilder::NumSamples() const {
  return static_cast<std::size_t>(options_.duration_s *
                                  options_.sample_rate);
}

std::vector<SpeakerProfile> DatasetBuilder::MakeSpeakers(
    std::size_t count, std::uint64_t base_seed) {
  std::vector<SpeakerProfile> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(SpeakerProfile::FromSeed(base_seed + i * 7919));
  }
  return out;
}

std::vector<audio::Waveform> DatasetBuilder::MakeReferenceAudios(
    const SpeakerProfile& speaker, std::size_t count,
    std::uint64_t seed) const {
  Rng rng(seed ^ 0xA24BAED4963EE407ULL);
  std::vector<audio::Waveform> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Utterance utt = MakeUtterance(speaker, rng.NextSeed());
    out.push_back(std::move(utt.wave));
  }
  return out;
}

Utterance DatasetBuilder::MakeUtterance(const SpeakerProfile& speaker,
                                        std::uint64_t seed) const {
  const Lexicon& lex = Lexicon::Default();
  Rng rng(seed);
  const std::size_t target_len = NumSamples();

  // Keep adding words until the utterance fills the configured duration,
  // then trim to the exact clip length.
  Utterance utt = synth_.SynthesizeWords(
      speaker, lex.RandomSentence(rng, options_.words_per_utterance),
      rng.NextSeed());
  while (utt.wave.size() < target_len) {
    Utterance more = synth_.SynthesizeWords(
        speaker, lex.RandomSentence(rng, 3), rng.NextSeed());
    const std::size_t offset = utt.wave.size();
    utt.wave.Append(more.wave);
    for (WordTiming tm : more.timings) {
      tm.start_sample += offset;
      tm.end_sample += offset;
      utt.timings.push_back(std::move(tm));
    }
  }
  utt.wave.ResizeTo(target_len);
  // Drop timings that fall past the trim point.
  while (!utt.timings.empty() &&
         utt.timings.back().start_sample >= target_len) {
    utt.timings.pop_back();
  }
  return utt;
}

MixInstance DatasetBuilder::MakeInstance(
    const SpeakerProfile& target, Scenario scenario, std::uint64_t seed,
    const SpeakerProfile* interferer) const {
  Rng rng(seed ^ 0x94D049BB133111EBULL);
  const std::size_t n = NumSamples();

  MixInstance inst;
  inst.scenario = scenario;

  Utterance target_utt = MakeUtterance(target, rng.NextSeed());
  inst.target = std::move(target_utt.wave);
  for (const WordTiming& tm : target_utt.timings)
    inst.target_words.push_back(tm.word);

  if (scenario == Scenario::kJointConversation) {
    NEC_CHECK_MSG(interferer != nullptr,
                  "joint-conversation instances need an interferer speaker");
    Utterance bk_utt = MakeUtterance(*interferer, rng.NextSeed());
    inst.background = std::move(bk_utt.wave);
    for (const WordTiming& tm : bk_utt.timings)
      inst.background_words.push_back(tm.word);
  } else {
    NoiseType type = NoiseType::kWhite;
    switch (scenario) {
      case Scenario::kBabble: type = NoiseType::kBabble; break;
      case Scenario::kFactory: type = NoiseType::kFactory; break;
      case Scenario::kVehicle: type = NoiseType::kVehicle; break;
      case Scenario::kWhite: type = NoiseType::kWhite; break;
      case Scenario::kJointConversation: break;  // unreachable
    }
    inst.background =
        GenerateNoise(type, options_.sample_rate, n, rng.NextSeed());
  }

  // Scale the background for the configured SNR (target power relative to
  // background power).
  const float t_rms = inst.target.Rms();
  const float b_rms = inst.background.Rms();
  if (t_rms > 0 && b_rms > 0) {
    const float desired_b_rms =
        t_rms / static_cast<float>(
                    audio::DbToAmplitude(options_.background_snr_db));
    inst.background.Scale(desired_b_rms / b_rms);
  }

  inst.mixed = audio::Mix(inst.target, inst.background);
  inst.mixed.ResizeTo(n);
  inst.target.ResizeTo(n);
  inst.background.ResizeTo(n);
  return inst;
}

}  // namespace nec::synth
