#include "synth/phoneme.h"

namespace nec::synth {
namespace {

// Vowel formants follow the classic Peterson & Barney (1952) measurements
// for adult male speakers; consonant loci are standard synthesis values
// (Klatt 1980). Durations are mid-range values from phonetic duration
// studies (the paper cites 5–670 ms for phoneme lengths).
const std::vector<Phoneme> kInventory = {
    // name  type                    voiced  f1    f2    f3    dur   nlo   nhi    amp
    {"IY", PhonemeType::kVowel, true, 270, 2290, 3010, 110, 0, 0, 1.00},
    {"IH", PhonemeType::kVowel, true, 390, 1990, 2550, 90, 0, 0, 0.95},
    {"EH", PhonemeType::kVowel, true, 530, 1840, 2480, 100, 0, 0, 1.00},
    {"AE", PhonemeType::kVowel, true, 660, 1720, 2410, 130, 0, 0, 1.00},
    {"AH", PhonemeType::kVowel, true, 640, 1190, 2390, 90, 0, 0, 0.95},
    {"AA", PhonemeType::kVowel, true, 730, 1090, 2440, 130, 0, 0, 1.00},
    {"AO", PhonemeType::kVowel, true, 570, 840, 2410, 120, 0, 0, 1.00},
    {"UH", PhonemeType::kVowel, true, 440, 1020, 2240, 80, 0, 0, 0.90},
    {"UW", PhonemeType::kVowel, true, 300, 870, 2240, 110, 0, 0, 0.95},
    {"ER", PhonemeType::kVowel, true, 490, 1350, 1690, 110, 0, 0, 0.95},
    {"EY", PhonemeType::kVowel, true, 480, 2080, 2690, 130, 0, 0, 1.00},
    {"AY", PhonemeType::kVowel, true, 660, 1400, 2500, 150, 0, 0, 1.00},
    {"OW", PhonemeType::kVowel, true, 540, 980, 2410, 130, 0, 0, 1.00},
    {"AW", PhonemeType::kVowel, true, 680, 1060, 2400, 150, 0, 0, 1.00},
    {"OY", PhonemeType::kVowel, true, 550, 1200, 2400, 150, 0, 0, 1.00},

    {"M", PhonemeType::kNasal, true, 250, 1100, 2200, 70, 0, 0, 0.55},
    {"N", PhonemeType::kNasal, true, 250, 1500, 2400, 65, 0, 0, 0.55},
    {"NG", PhonemeType::kNasal, true, 250, 1900, 2500, 75, 0, 0, 0.55},

    {"F", PhonemeType::kFricative, false, 0, 0, 0, 90, 1500, 7000, 0.25},
    {"V", PhonemeType::kFricative, true, 300, 1400, 2400, 60, 1500, 7000, 0.35},
    {"S", PhonemeType::kFricative, false, 0, 0, 0, 100, 3500, 7800, 0.35},
    {"Z", PhonemeType::kFricative, true, 280, 1700, 2500, 75, 3500, 7800, 0.40},
    {"SH", PhonemeType::kFricative, false, 0, 0, 0, 105, 2000, 6500, 0.40},
    {"TH", PhonemeType::kFricative, false, 0, 0, 0, 85, 1400, 7500, 0.20},
    {"DH", PhonemeType::kFricative, true, 300, 1400, 2500, 50, 1400, 7500, 0.35},
    {"HH", PhonemeType::kFricative, false, 0, 0, 0, 60, 500, 4500, 0.20},

    {"P", PhonemeType::kStop, false, 0, 0, 0, 60, 500, 3500, 0.30},
    {"B", PhonemeType::kStop, true, 300, 900, 2300, 55, 400, 2500, 0.40},
    {"T", PhonemeType::kStop, false, 0, 0, 0, 60, 2500, 7500, 0.30},
    {"D", PhonemeType::kStop, true, 300, 1700, 2600, 55, 2000, 6000, 0.40},
    {"K", PhonemeType::kStop, false, 0, 0, 0, 65, 1500, 4500, 0.30},
    {"G", PhonemeType::kStop, true, 300, 1600, 2500, 55, 1200, 4000, 0.40},

    {"L", PhonemeType::kApproximant, true, 360, 1300, 2700, 70, 0, 0, 0.70},
    {"R", PhonemeType::kApproximant, true, 310, 1060, 1380, 75, 0, 0, 0.70},
    {"W", PhonemeType::kApproximant, true, 290, 610, 2150, 65, 0, 0, 0.65},
    {"Y", PhonemeType::kApproximant, true, 270, 2100, 3000, 60, 0, 0, 0.65},

    {"SIL", PhonemeType::kSilence, false, 0, 0, 0, 90, 0, 0, 0.0},
};

}  // namespace

const std::vector<Phoneme>& PhonemeInventory() { return kInventory; }

std::optional<Phoneme> FindPhoneme(std::string_view name) {
  for (const Phoneme& p : kInventory) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

const Phoneme& SilencePhoneme() { return kInventory.back(); }

}  // namespace nec::synth
