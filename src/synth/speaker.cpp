#include "synth/speaker.h"

#include <algorithm>

#include "common/rng.h"

namespace nec::synth {

SpeakerProfile SpeakerProfile::FromSeed(std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  SpeakerProfile p;
  p.seed = seed;
  p.name = "spk-" + std::to_string(seed);

  // Bimodal F0: roughly half "low" voices (85–155 Hz), half "high"
  // (165–255 Hz) — mirrors the male/female split of the user studies.
  if (rng.Chance(0.5)) {
    p.f0_base_hz = rng.Uniform(85.0, 155.0);
    p.formant_scale = rng.Uniform(0.92, 1.04);
  } else {
    p.f0_base_hz = rng.Uniform(165.0, 255.0);
    p.formant_scale = rng.Uniform(1.02, 1.16);
  }

  p.f0_range = rng.Uniform(0.10, 0.28);
  p.vibrato_hz = rng.Uniform(4.0, 6.5);
  p.vibrato_depth = rng.Uniform(0.004, 0.018);
  p.jitter = rng.Uniform(0.004, 0.014);
  p.shimmer = rng.Uniform(0.02, 0.07);

  for (int i = 0; i < 3; ++i) {
    p.formant_shift[static_cast<std::size_t>(i)] =
        rng.Uniform(-0.13, 0.13);
  }
  p.bandwidth_scale = rng.Uniform(0.72, 1.45);
  p.breathiness = rng.Uniform(0.004, 0.065);
  p.speaking_rate = rng.Uniform(0.85, 1.2);
  p.tilt_lp_hz = rng.Uniform(1700.0, 5300.0);
  return p;
}

double SpeakerProfile::AdjustFormant(double f_hz, int i) const {
  const int idx = std::clamp(i, 0, 2);
  return f_hz * formant_scale *
         (1.0 + formant_shift[static_cast<std::size_t>(idx)]);
}

}  // namespace nec::synth
