// Environmental noise generators — the NOISEX-92 substitute.
//
// Table I of the paper characterizes the noise classes by their occupied
// band: Babble 0–4 kHz (100 people whispering), Factory 0–2 kHz (production
// hall), Vehicle 0–500 Hz (car at 120 km/h), plus broadband white noise used
// by the jammer baseline. Each generator below is shaped to the same band
// and texture.
#pragma once

#include <cstdint>
#include <string_view>

#include "audio/waveform.h"

namespace nec::synth {

enum class NoiseType {
  kWhite,    ///< flat broadband
  kBabble,   ///< many overlapping voices, energy below ~4 kHz
  kFactory,  ///< machinery: periodic impacts + broadband below ~2 kHz
  kVehicle,  ///< low-frequency rumble below ~500 Hz + engine harmonics
};

/// Human-readable label ("white", "babble", ...).
std::string_view NoiseTypeName(NoiseType type);

/// Generates `num_samples` of the given noise class at `sample_rate`,
/// normalized to RMS 0.1. Deterministic in `seed`.
audio::Waveform GenerateNoise(NoiseType type, int sample_rate,
                              std::size_t num_samples, std::uint64_t seed);

}  // namespace nec::synth
