// Pronunciation lexicon for the synthesizer and the template ASR.
//
// Covers the two calibration sentences the paper uses in §III ("my ideal
// morning begins with hot coffee", "don't ask me to carry an oily rag like
// that") plus ~120 everyday words used to generate random conversation
// content for the benchmark corpus. The same lexicon feeds the DTW-based
// ASR substitute: its recognizable vocabulary is exactly this word list.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "synth/phoneme.h"

namespace nec::synth {

class Lexicon {
 public:
  /// Process-wide default lexicon.
  static const Lexicon& Default();

  /// Phoneme sequence for `word` (case-insensitive); nullopt if unknown.
  std::optional<std::vector<Phoneme>> Lookup(std::string_view word) const;

  bool Contains(std::string_view word) const;

  /// All known words, sorted.
  const std::vector<std::string>& Words() const { return words_; }

  /// Draws `num_words` words uniformly (with replacement) — the random
  /// "conversation" generator for the benchmark corpus.
  std::vector<std::string> RandomSentence(Rng& rng,
                                          std::size_t num_words) const;

  /// Splits a space-separated sentence into lowercase words.
  static std::vector<std::string> Tokenize(std::string_view sentence);

 private:
  Lexicon();

  struct Entry {
    std::string word;
    std::vector<std::string> phoneme_names;
  };
  std::vector<Entry> entries_;
  std::vector<std::string> words_;
};

}  // namespace nec::synth
