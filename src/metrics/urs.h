// User Rating Score model — the human-reviewer substitute for Fig. 13.
//
// In the paper, 10 reviewers score recordings 1–5 by how few of the target
// speaker's words they can recognize (5 = none recognizable). Human
// recognizability of a masked voice tracks how much of the voice's energy
// survives in the recording, so we model each reviewer as a noisy logistic
// read-out of the target speaker's residual SDR, with a per-reviewer bias
// (the paper's reviewers 7 and 8 are visibly more lenient than the rest).
#pragma once

#include <cstdint>
#include <vector>

#include "audio/waveform.h"

namespace nec::metrics {

struct UserRatingOptions {
  std::size_t num_reviewers = 10;
  /// SDR (dB) of the target's residual at which the median reviewer gives
  /// a 3.0. Calibrated so clean mixed audio (SDR ~ +3 dB) reads ~1.5 and
  /// a NEC'd recording (SDR ~ -2 dB) reads ~4 — the operating points of
  /// Fig. 13.
  double midpoint_sdr_db = 0.5;
  /// Logistic slope: dB of SDR per rating unit.
  double slope_db = 1.5;
  /// Std-dev of the per-reviewer stable bias (rating units).
  double reviewer_bias_std = 0.35;
  /// Std-dev of per-recording rating noise.
  double rating_noise_std = 0.3;
  std::uint64_t seed = 2024;
};

class UserRatingModel {
 public:
  explicit UserRatingModel(UserRatingOptions options = {});

  /// Rating of one reviewer for a recording in which the target's ground
  /// truth stem is `target_truth`. 5 = target inaudible, 1 = clearly
  /// audible. `recording_seed` decorrelates the per-recording noise.
  double Rate(std::size_t reviewer, const audio::Waveform& recording,
              const audio::Waveform& target_truth,
              std::uint64_t recording_seed) const;

  /// All reviewers' ratings for one recording.
  std::vector<double> RateAll(const audio::Waveform& recording,
                              const audio::Waveform& target_truth,
                              std::uint64_t recording_seed) const;

  std::size_t num_reviewers() const { return options_.num_reviewers; }

 private:
  UserRatingOptions options_;
  std::vector<double> reviewer_bias_;
};

}  // namespace nec::metrics
