#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "audio/level.h"
#include "common/check.h"

namespace nec::metrics {
namespace {

struct DotStats {
  double rr = 0.0;  // <ref, ref>
  double ee = 0.0;  // <est, est>
  double re = 0.0;  // <ref, est>
  std::size_t n = 0;
};

DotStats ComputeDots(std::span<const float> a, std::span<const float> b) {
  DotStats s;
  s.n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < s.n; ++i) {
    s.rr += static_cast<double>(a[i]) * a[i];
    s.ee += static_cast<double>(b[i]) * b[i];
    s.re += static_cast<double>(a[i]) * b[i];
  }
  return s;
}

}  // namespace

double Sdr(std::span<const float> reference,
           std::span<const float> estimate) {
  const DotStats s = ComputeDots(reference, estimate);
  if (s.n == 0 || s.rr <= 0.0) return -300.0;
  // Project estimate onto the reference: s_target = (<e,r>/<r,r>) r.
  const double alpha = s.re / s.rr;
  const double target_energy = alpha * alpha * s.rr;
  const double distortion_energy = s.ee - target_energy;
  return audio::PowerToDb(target_energy /
                          std::max(distortion_energy, 1e-300));
}

double SdrPlain(std::span<const float> reference,
                std::span<const float> estimate) {
  const DotStats s = ComputeDots(reference, estimate);
  if (s.n == 0 || s.rr <= 0.0) return -300.0;
  const double err = s.rr - 2.0 * s.re + s.ee;
  return audio::PowerToDb(s.rr / std::max(err, 1e-300));
}

double CosineDistance(std::span<const float> a, std::span<const float> b) {
  const DotStats s = ComputeDots(a, b);
  if (s.rr <= 0.0 || s.ee <= 0.0) return 1.0;
  return 1.0 - s.re / std::sqrt(s.rr * s.ee);
}

double PearsonCorrelation(std::span<const float> a,
                          std::span<const float> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double Sonr(const audio::Waveform& recorded,
            const audio::Waveform& target_component) {
  const std::size_t n = std::min(recorded.size(), target_component.size());
  NEC_CHECK_MSG(n > 0, "SONR of empty signals");
  double p_rec = 0.0, p_tgt = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p_rec += static_cast<double>(recorded[i]) * recorded[i];
    p_tgt += static_cast<double>(target_component[i]) * target_component[i];
  }
  return audio::PowerToDb(p_rec / std::max(p_tgt, 1e-300));
}

double ResidualEnergyAfterProjection(std::span<const float> signal,
                                     std::span<const float> component) {
  const DotStats s = ComputeDots(component, signal);
  if (s.rr <= 0.0) return s.ee;
  const double alpha = s.re / s.rr;
  return std::max(0.0, s.ee - alpha * alpha * s.rr);
}

double SpectralConvergence(const audio::Waveform& reference,
                           const audio::Waveform& estimate,
                           const dsp::StftConfig& config) {
  const dsp::Spectrogram ref = dsp::Stft(reference, config);
  const dsp::Spectrogram est = dsp::Stft(estimate, config);
  const std::size_t n = std::min(ref.mag().size(), est.mag().size());
  NEC_CHECK_MSG(n > 0, "spectral convergence of empty spectrograms");
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = est.mag()[i] - ref.mag()[i];
    err += d * d;
    norm += static_cast<double>(ref.mag()[i]) * ref.mag()[i];
  }
  return std::sqrt(err / std::max(norm, 1e-300));
}

}  // namespace nec::metrics
