// Evaluation metrics (§V "Quantitative Metrics").
//
//  * SDR — source-to-distortion ratio; the paper's primary separation
//    metric (low for Bob after NEC, high for Alice).
//  * Cosine distance — Fig. 9(c)'s similarity between the recorded and
//    background signals under time/power offsets.
//  * Pearson correlation — Fig. 5's LAS correlation matrix.
//  * SONR — "sound-noise ratio": power ratio between the full mixed audio
//    and Bob's leaked voice in it (Fig. 15b).
#pragma once

#include <span>

#include "audio/waveform.h"
#include "dsp/stft.h"

namespace nec::metrics {

/// Classic SDR in dB: 10*log10(||s||^2 / ||s_hat - s||^2), where the
/// estimate is first aligned to the reference by the optimal scalar
/// projection (BSS-eval style: distortion is everything outside span{s}).
/// Inputs are truncated to the common length.
double Sdr(std::span<const float> reference, std::span<const float> estimate);

/// Scale-dependent SDR: no projection; measures raw residual energy.
double SdrPlain(std::span<const float> reference,
                std::span<const float> estimate);

/// Cosine distance 1 - <a,b>/(|a||b|) over the common length. Returns 1
/// for a zero-norm input.
double CosineDistance(std::span<const float> a, std::span<const float> b);

/// Pearson correlation coefficient over the common length (0 if either
/// input is constant).
double PearsonCorrelation(std::span<const float> a,
                          std::span<const float> b);

/// SONR in dB: 10*log10(P_mixed / P_target_component). `target_component`
/// is the target speaker's contribution contained in `recorded` — in the
/// simulation we know the ground-truth stem. Higher = less of Bob leaked.
double Sonr(const audio::Waveform& recorded,
            const audio::Waveform& target_component);

/// Energy of the residual of `signal` after projecting out `component`
/// (diagnostic for "how much of component survives in signal").
double ResidualEnergyAfterProjection(std::span<const float> signal,
                                     std::span<const float> component);

/// Spectral convergence: ||,|STFT(est)| - |STFT(ref)|,||_F /
/// ||,|STFT(ref)|,||_F — the spectrogram-domain distance the Eq. 6
/// training objective optimizes, exposed as a metric (0 = identical
/// magnitude spectrograms).
double SpectralConvergence(const audio::Waveform& reference,
                           const audio::Waveform& estimate,
                           const dsp::StftConfig& config);

}  // namespace nec::metrics
