#include "metrics/urs.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "metrics/metrics.h"

namespace nec::metrics {

UserRatingModel::UserRatingModel(UserRatingOptions options)
    : options_(options) {
  NEC_CHECK(options_.num_reviewers >= 1);
  Rng rng(options_.seed ^ 0xB5297A4D2E4B3C71ULL);
  reviewer_bias_.resize(options_.num_reviewers);
  for (double& b : reviewer_bias_) {
    b = rng.Gaussian(0.0, options_.reviewer_bias_std);
  }
}

double UserRatingModel::Rate(std::size_t reviewer,
                             const audio::Waveform& recording,
                             const audio::Waveform& target_truth,
                             std::uint64_t recording_seed) const {
  NEC_CHECK(reviewer < options_.num_reviewers);
  // How much of the target survives: SDR of the target stem against the
  // recording. High SDR → target clearly audible → low rating.
  const double sdr = Sdr(target_truth.samples(), recording.samples());
  const double x = (options_.midpoint_sdr_db - sdr) / options_.slope_db;
  const double base = 1.0 + 4.0 / (1.0 + std::exp(-x));

  Rng rng(recording_seed * 0x9E3779B97F4A7C15ULL + reviewer);
  const double noisy = base + reviewer_bias_[reviewer] +
                       rng.Gaussian(0.0, options_.rating_noise_std);
  // Reviewers rate on a discrete 1..5 scale; keep half-point granularity.
  return std::clamp(std::round(noisy * 2.0) / 2.0, 1.0, 5.0);
}

std::vector<double> UserRatingModel::RateAll(
    const audio::Waveform& recording, const audio::Waveform& target_truth,
    std::uint64_t recording_seed) const {
  std::vector<double> out(options_.num_reviewers);
  for (std::size_t r = 0; r < options_.num_reviewers; ++r) {
    out[r] = Rate(r, recording, target_truth, recording_seed);
  }
  return out;
}

}  // namespace nec::metrics
