// Single-precision matrix multiply kernels backing Conv2D (via im2col) and
// Linear layers.
//
// The kernels are cache-blocked (MC/KC/NC tiling, register-blocked inner
// loops) and tuned for auto-vectorization (contiguous inner loops,
// restrict-qualified pointers). For a fixed thread configuration every call
// is deterministic: each output element accumulates its k-products in
// ascending k order, so results are reproducible run-to-run — the property
// the nec::runtime bit-exactness audit depends on.
//
// Optional parallelism: an application can install a parallel-for hook
// (e.g. bridging to nec::runtime::ThreadPool — see runtime/gemm_parallel.h)
// and opt a thread into row-panel parallel GEMM with GemmParallelScope.
// Panels split the M dimension only, so each output element's arithmetic —
// and therefore the result — is bit-identical to the serial kernel. The
// scope gate is THREAD-LOCAL and defaults to off: nec::runtime worker
// strands never enter a scope, keeping per-session work serial and the
// N-session bit-exactness audit trivially valid.
#pragma once

#include <cstddef>
#include <functional>

namespace nec::nn {

/// C(M,N) = alpha * A(M,K) * B(K,N) + beta * C. Row-major.
void GemmNN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha = 1.0f,
            float beta = 0.0f);

/// C(M,N) = alpha * A(M,K) * B(N,K)^T + beta * C. Row-major (B stored N×K).
void GemmNT(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha = 1.0f,
            float beta = 0.0f);

/// C(M,N) = alpha * A(K,M)^T * B(K,N) + beta * C. Row-major (A stored K×M).
void GemmTN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha = 1.0f,
            float beta = 0.0f);

/// Runs `body(i)` for i in [0, num_tasks), possibly concurrently. The hook
/// must not return until every body call has completed.
using GemmParallelFor =
    std::function<void(std::size_t num_tasks,
                       const std::function<void(std::size_t)>& body)>;

/// Installs (or, with nullptr, removes) the process-wide parallel-for hook.
/// Not thread-safe against concurrent GEMM calls — install once at startup.
void SetGemmParallelFor(GemmParallelFor fn);

/// True when the calling thread is inside a GemmParallelScope AND a hook is
/// installed — i.e. the next GEMM call may fan out row panels.
bool GemmParallelActive();

/// RAII opt-in: while alive, GEMM calls on THIS thread may use the
/// installed parallel-for hook for large row counts. Nestable; the previous
/// state is restored on destruction.
class GemmParallelScope {
 public:
  explicit GemmParallelScope(bool enabled = true);
  ~GemmParallelScope();

  GemmParallelScope(const GemmParallelScope&) = delete;
  GemmParallelScope& operator=(const GemmParallelScope&) = delete;

 private:
  bool previous_;
};

}  // namespace nec::nn
