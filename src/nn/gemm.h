// Single-precision matrix multiply kernels backing Conv2D (via im2col) and
// Linear layers.
//
// The deployment environment for this reproduction is a single CPU core, so
// the kernels are tuned for auto-vectorization (contiguous inner loops,
// restrict-qualified pointers) rather than multi-threading. Three transpose
// variants cover every case the forward and backward passes need.
#pragma once

#include <cstddef>

namespace nec::nn {

/// C(M,N) = alpha * A(M,K) * B(K,N) + beta * C. Row-major.
void GemmNN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha = 1.0f,
            float beta = 0.0f);

/// C(M,N) = alpha * A(M,K) * B(N,K)^T + beta * C. Row-major (B stored N×K).
void GemmNT(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha = 1.0f,
            float beta = 0.0f);

/// C(M,N) = alpha * A(K,M)^T * B(K,N) + beta * C. Row-major (A stored K×M).
void GemmTN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha = 1.0f,
            float beta = 0.0f);

}  // namespace nec::nn
