// Loss functions. The selector trains with the paper's Eq. 6 objective:
// an L2 norm between the superposed recorded spectrogram and the background
// spectrogram — an MSE over spectrogram cells once normalized by count.
#pragma once

#include "nn/tensor.h"

namespace nec::nn {

/// Mean-squared-error loss and its gradient with respect to `pred`.
struct MseResult {
  float loss;
  Tensor grad;  ///< dLoss/dPred, same shape as pred
};

MseResult MseLoss(const Tensor& pred, const Tensor& target);

/// L1 (mean absolute error) loss and gradient — used by ablation tests.
MseResult L1Loss(const Tensor& pred, const Tensor& target);

}  // namespace nec::nn
