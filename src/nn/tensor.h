// Minimal dense float tensor for the NEC neural network substrate.
//
// Row-major, arbitrary rank up to 4. The selector network only needs rank
// 2 (frames × features) through rank 4 (batched conv) access, so the type
// stays deliberately simple: no strides, no broadcasting.
//
// Storage modes (DESIGN.md §5i): a Tensor constructed while an
// core::ArenaScope is active on the thread takes NON-OWNING storage from
// that arena — allocation is a pointer bump and the storage is reclaimed
// wholesale when the scope rewinds at the chunk boundary. Outside a scope
// (weights, model cache, training, serialization) it owns a
// std::vector<float> exactly as before. The shape is stored inline
// (core::Shape), so no construction path touches the heap for metadata.
// Arena-backed tensors must not outlive their scope; results that escape
// a chunk are copied into caller-owned storage first.
#pragma once

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/memory.h"

namespace nec::nn {

using core::Shape;
using core::TensorView;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(const Shape& shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Copy allocates by the *current* policy (arena if a scope is active,
  /// owning otherwise) and memcpys — copying under a scope never inherits
  /// the source's storage mode.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  static Tensor Zeros(const Shape& shape);
  /// Gaussian init with the given standard deviation.
  static Tensor Randn(const Shape& shape, Rng& rng, float stddev);
  /// Kaiming/He initialization for a layer with `fan_in` inputs.
  static Tensor KaimingNormal(const Shape& shape, Rng& rng,
                              std::size_t fan_in);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.rank(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }
  /// True when the storage is a bump-arena slice (non-owning).
  bool arena_backed() const { return arena_backed_; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  /// Owning-mode escape hatch for serialization/enrollment code that
  /// moves or swaps the underlying vector. NEC_CHECK's owning storage —
  /// hot-path code must use data()/numel() instead.
  std::vector<float>& vec() {
    NEC_CHECK_MSG(!arena_backed_, "Tensor::vec() on arena-backed storage");
    return owned_;
  }
  const std::vector<float>& vec() const {
    NEC_CHECK_MSG(!arena_backed_, "Tensor::vec() on arena-backed storage");
    return owned_;
  }

  /// Non-owning shaped view of the whole tensor (aliases storage).
  TensorView View() { return TensorView(data_, shape_); }
  /// Rank-(R-1) aliasing view of item `i` along the leading dimension —
  /// the gather/scatter slice used for batch assembly.
  TensorView Sub(std::size_t i) { return View().Sub(i); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessor (rank must be 2). Rank and bounds are NEC_DCHECK'd:
  /// calling a wrong-rank accessor reads misindexed memory, so debug
  /// builds throw instead of silently returning garbage.
  float& At(std::size_t r, std::size_t c) {
    CheckAt2(r, c);
    return data_[r * shape_[1] + c];
  }
  float At(std::size_t r, std::size_t c) const {
    CheckAt2(r, c);
    return data_[r * shape_[1] + c];
  }

  /// 3-D accessor (rank must be 3): (c, h, w).
  float& At3(std::size_t c, std::size_t h, std::size_t w) {
    CheckAt3(c, h, w);
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }
  float At3(std::size_t c, std::size_t h, std::size_t w) const {
    CheckAt3(c, h, w);
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

  /// 4-D accessor (rank must be 4): (b, c, h, w) — batched conv tensors.
  float& At4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) {
    CheckAt4(b, c, h, w);
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float At4(std::size_t b, std::size_t c, std::size_t h,
            std::size_t w) const {
    CheckAt4(b, c, h, w);
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  void Fill(float v);
  /// Reinterprets the buffer with a new shape of identical element count.
  void Reshape(const Shape& shape);

  /// Elementwise in-place operations.
  void Add(const Tensor& other);          // this += other
  void AddScaled(const Tensor& other, float s);  // this += s*other
  void Scale(float s);

  /// L2 norm of the flattened tensor.
  float Norm() const;

 private:
  /// Binds storage for `numel` elements per the ambient policy and
  /// zero-fills it (both modes: construction semantics are identical, so
  /// arena-backed inference stays bit-identical to the heap path).
  void AllocateStorage();

  void CheckAt2([[maybe_unused]] std::size_t r,
                [[maybe_unused]] std::size_t c) const {
    NEC_DCHECK_MSG(rank() == 2, "Tensor::At on rank-" << rank());
    NEC_DCHECK_MSG(r < shape_[0] && c < shape_[1],
                   "Tensor::At(" << r << ", " << c << ") out of ("
                                 << shape_[0] << ", " << shape_[1] << ")");
  }
  void CheckAt3([[maybe_unused]] std::size_t c,
                [[maybe_unused]] std::size_t h,
                [[maybe_unused]] std::size_t w) const {
    NEC_DCHECK_MSG(rank() == 3, "Tensor::At3 on rank-" << rank());
    NEC_DCHECK_MSG(c < shape_[0] && h < shape_[1] && w < shape_[2],
                   "Tensor::At3(" << c << ", " << h << ", " << w
                                  << ") out of (" << shape_[0] << ", "
                                  << shape_[1] << ", " << shape_[2] << ")");
  }
  void CheckAt4([[maybe_unused]] std::size_t b,
                [[maybe_unused]] std::size_t c,
                [[maybe_unused]] std::size_t h,
                [[maybe_unused]] std::size_t w) const {
    NEC_DCHECK_MSG(rank() == 4, "Tensor::At4 on rank-" << rank());
    NEC_DCHECK_MSG(
        b < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
        "Tensor::At4(" << b << ", " << c << ", " << h << ", " << w
                       << ") out of (" << shape_[0] << ", " << shape_[1]
                       << ", " << shape_[2] << ", " << shape_[3] << ")");
  }

  Shape shape_;
  float* data_ = nullptr;
  std::size_t numel_ = 0;
  bool arena_backed_ = false;
  std::vector<float> owned_;  // bound to data_ in owning mode, else empty
};

}  // namespace nec::nn
