// Minimal dense float tensor for the NEC neural network substrate.
//
// Row-major, arbitrary rank. The selector network only needs rank 2 (frames
// × features) and rank 3 (channels × frames × bins) views, so the type stays
// deliberately simple: no strides, no broadcasting, no views. Shapes are
// checked with NEC_CHECK at the API boundary.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace nec::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  static Tensor Zeros(std::vector<std::size_t> shape);
  /// Gaussian init with the given standard deviation.
  static Tensor Randn(std::vector<std::size_t> shape, Rng& rng,
                      float stddev);
  /// Kaiming/He initialization for a layer with `fan_in` inputs.
  static Tensor KaimingNormal(std::vector<std::size_t> shape, Rng& rng,
                              std::size_t fan_in);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessor (rank must be 2). Rank and bounds are NEC_DCHECK'd:
  /// calling a wrong-rank accessor reads misindexed memory, so debug
  /// builds throw instead of silently returning garbage.
  float& At(std::size_t r, std::size_t c) {
    CheckAt2(r, c);
    return data_[r * shape_[1] + c];
  }
  float At(std::size_t r, std::size_t c) const {
    CheckAt2(r, c);
    return data_[r * shape_[1] + c];
  }

  /// 3-D accessor (rank must be 3): (c, h, w).
  float& At3(std::size_t c, std::size_t h, std::size_t w) {
    CheckAt3(c, h, w);
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }
  float At3(std::size_t c, std::size_t h, std::size_t w) const {
    CheckAt3(c, h, w);
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

  /// 4-D accessor (rank must be 4): (b, c, h, w) — batched conv tensors.
  float& At4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) {
    CheckAt4(b, c, h, w);
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float At4(std::size_t b, std::size_t c, std::size_t h,
            std::size_t w) const {
    CheckAt4(b, c, h, w);
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  void Fill(float v);
  /// Reinterprets the buffer with a new shape of identical element count.
  void Reshape(std::vector<std::size_t> shape);

  /// Elementwise in-place operations.
  void Add(const Tensor& other);          // this += other
  void AddScaled(const Tensor& other, float s);  // this += s*other
  void Scale(float s);

  /// L2 norm of the flattened tensor.
  float Norm() const;

 private:
  void CheckAt2([[maybe_unused]] std::size_t r,
                [[maybe_unused]] std::size_t c) const {
    NEC_DCHECK_MSG(rank() == 2, "Tensor::At on rank-" << rank());
    NEC_DCHECK_MSG(r < shape_[0] && c < shape_[1],
                   "Tensor::At(" << r << ", " << c << ") out of ("
                                 << shape_[0] << ", " << shape_[1] << ")");
  }
  void CheckAt3([[maybe_unused]] std::size_t c,
                [[maybe_unused]] std::size_t h,
                [[maybe_unused]] std::size_t w) const {
    NEC_DCHECK_MSG(rank() == 3, "Tensor::At3 on rank-" << rank());
    NEC_DCHECK_MSG(c < shape_[0] && h < shape_[1] && w < shape_[2],
                   "Tensor::At3(" << c << ", " << h << ", " << w
                                  << ") out of (" << shape_[0] << ", "
                                  << shape_[1] << ", " << shape_[2] << ")");
  }
  void CheckAt4([[maybe_unused]] std::size_t b,
                [[maybe_unused]] std::size_t c,
                [[maybe_unused]] std::size_t h,
                [[maybe_unused]] std::size_t w) const {
    NEC_DCHECK_MSG(rank() == 4, "Tensor::At4 on rank-" << rank());
    NEC_DCHECK_MSG(
        b < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
        "Tensor::At4(" << b << ", " << c << ", " << h << ", " << w
                       << ") out of (" << shape_[0] << ", " << shape_[1]
                       << ", " << shape_[2] << ", " << shape_[3] << ")");
  }

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace nec::nn
