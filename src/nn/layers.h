// Neural network layers with explicit forward/backward passes.
//
// The NEC selector (core/selector.h) is a static pipeline of these layers:
// Conv2D with temporal dilation, elementwise activations, and Linear heads.
// Layers cache whatever the backward pass needs during Forward; Backward
// consumes the cached state, accumulates parameter gradients into
// Param::grad and returns the gradient with respect to the layer input.
//
// Thread-safety contract (nec::runtime shares one trained weight set across
// concurrent sessions):
//   * Forward/Backward MUTATE the layer (activation caches, MAC counters)
//     and must only be used by a single thread — the training path.
//   * Infer is const, writes no member state (scratch buffers are per-call
//     locals), and is bit-identical to Forward. Any number of threads may
//     call Infer on the same layer concurrently as long as nothing mutates
//     the parameters at the same time.
//   * InferBatch is const like Infer and takes a leading batch dimension
//     (rank 4 (B, C, H, W) for Conv2D, rank 3 (B, rows, in) for Linear,
//     Infer's shape plus one leading dim for elementwise/norm layers). It
//     is REQUIRED to be bit-identical, per item, to slicing the batch and
//     calling Infer item by item: every output element accumulates its
//     k-products in the same ascending-k order on both paths. At batch = 1
//     it therefore reduces exactly to Infer. The runtime micro-batching
//     layer (runtime/batcher.h) depends on this to coalesce chunks from
//     concurrent sessions without changing any session's emitted bits.
//
// The LSTM layer exists for the VoiceFilter runtime baseline (Table II) and
// implements forward only — the baseline is never trained in this repo.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace nec::nn {

/// A learnable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer; caches activations needed by Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Propagates gradients; accumulates into parameter grads and returns the
  /// gradient with respect to the layer's input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Cache-free const forward, bit-identical to Forward (see thread-safety
  /// contract above). Layers without a shared-weight inference path (LSTM)
  /// keep the throwing default.
  virtual Tensor Infer(const Tensor& input) const;

  /// Batched const forward over a leading batch dimension, bit-identical
  /// per item to looped Infer (see contract above). Throwing default.
  virtual Tensor InferBatch(const Tensor& batch) const;

  /// Learnable parameters (empty for activations).
  virtual std::vector<Param*> Params() { return {}; }

  virtual std::string Name() const = 0;

  /// Approximate multiply-accumulate count of one Forward call with the
  /// last-seen input shape (0 before the first Forward). Elementwise and
  /// norm layers report their processed element count — one fused op per
  /// element — so the Table II MAC audit does not undercount them. Used by
  /// the runtime analysis bench (Table II).
  virtual std::size_t LastForwardMacs() const { return 0; }
};

/// 2-D convolution over (channels, height, width) tensors; stride 1, zero
/// "same" padding, independent dilation per axis. Height is the time axis
/// and width the frequency axis in the selector's usage.
///
/// Forward, Infer and InferBatch all run ONE direct kernel (ComputeInto):
/// a zero-padded input copy plus per-tap axpys vectorized over the width
/// axis, each output element accumulating its K taps ascending in k. The
/// im2col lowering survives only as Backward's gradient workspace. Sharing
/// the kernel makes every path bit-identical by construction — the batched
/// inference contract above — and the direct form is an order of magnitude
/// lighter on memory traffic than im2col + GEMM at the selector's tiny
/// channel counts.
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_h, std::size_t kernel_w, std::size_t dilation_h,
         std::size_t dilation_w, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  /// (B, C_in, H, W) -> (B, C_out, H, W).
  Tensor InferBatch(const Tensor& batch) const override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv2D"; }
  std::size_t LastForwardMacs() const override { return last_macs_; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  void Im2ColT(const float* in, std::size_t h, std::size_t w,
               std::vector<float>& colt) const;
  /// One item: `in` is a (C_in, h, w) slab, `out` a (C_out, h, w) slab.
  /// `scratch` receives the zero-padded input copy (grow-only).
  void ComputeInto(const float* in, std::size_t h, std::size_t w,
                   std::vector<float>& scratch, float* out) const;

  std::size_t in_channels_, out_channels_;
  std::size_t kh_, kw_, dh_, dw_;
  Param weight_;  // (out_channels, in_channels*kh*kw)
  Param bias_;    // (out_channels)

  std::vector<float> pad_cache_;   // Forward's padded-input scratch
  std::vector<float> colt_cache_;  // (in_channels*kh*kw, H*W) for Backward
  std::size_t in_h_ = 0, in_w_ = 0;
  std::size_t last_macs_ = 0;
};

/// Fully connected layer applied to the last dimension of a (rows, in)
/// tensor.
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  /// (B, rows, in) -> (B, rows, out); one GEMM over all B*rows rows.
  Tensor InferBatch(const Tensor& batch) const override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Linear"; }
  std::size_t LastForwardMacs() const override { return last_macs_; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  /// Shared kernel: `rows` rows of `in` produce `rows` rows of `out`.
  void InferRows(const float* in, std::size_t rows, float* out) const;

  std::size_t in_features_, out_features_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  Tensor input_cache_;
  std::size_t last_macs_ = 0;
};

/// Rectified linear activation.
class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor InferBatch(const Tensor& batch) const override;
  std::string Name() const override { return "ReLU"; }
  std::size_t LastForwardMacs() const override { return last_elems_; }

 private:
  Tensor input_cache_;
  std::size_t last_elems_ = 0;
};

/// Logistic sigmoid activation.
class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor InferBatch(const Tensor& batch) const override;
  std::string Name() const override { return "Sigmoid"; }
  std::size_t LastForwardMacs() const override { return last_elems_; }

 private:
  Tensor output_cache_;
  std::size_t last_elems_ = 0;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor InferBatch(const Tensor& batch) const override;
  std::string Name() const override { return "Tanh"; }
  std::size_t LastForwardMacs() const override { return last_elems_; }

 private:
  Tensor output_cache_;
  std::size_t last_elems_ = 0;
};

/// Layer normalization over the last dimension with learnable gain/bias:
/// y = g * (x - mean) / sqrt(var + eps) + b, per row. The paper's selector
/// uses no normalization; this is the nn substrate's norm layer (available
/// to encoder MLPs and ablation variants) and takes part in the batched
/// inference contract like every other layer — rows are independent, so
/// batching is bit-exact by construction.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(std::size_t features, float eps = 1e-5f);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor InferBatch(const Tensor& batch) const override;
  std::vector<Param*> Params() override { return {&gain_, &bias_}; }
  std::string Name() const override { return "LayerNorm"; }
  std::size_t LastForwardMacs() const override { return last_elems_; }

  std::size_t features() const { return features_; }

  Param& gain() { return gain_; }
  Param& bias() { return bias_; }

 private:
  /// Normalizes `rows` rows of `features_` elements from `in` into `out`;
  /// optionally records x-hat and 1/sigma for the backward pass.
  void NormalizeRows(const float* in, std::size_t rows, float* out,
                     float* xhat = nullptr, float* inv_sigma = nullptr) const;

  std::size_t features_;
  float eps_;
  Param gain_;  // (features)
  Param bias_;  // (features)
  Tensor xhat_cache_;                  ///< normalized input, per Forward
  std::vector<float> inv_sigma_cache_; ///< 1/sigma per row
  std::size_t last_elems_ = 0;
};

/// Unidirectional LSTM over a (T, input) sequence producing (T, hidden).
/// Forward-only: used by the VoiceFilter baseline for runtime comparison.
/// Keeps the throwing Infer/InferBatch defaults — the baseline never runs
/// on the shared-weight concurrent path.
class Lstm : public Layer {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  /// Not supported; throws nec::CheckError.
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Param*> Params() override { return {&w_, &u_, &b_}; }
  std::string Name() const override { return "Lstm"; }
  std::size_t LastForwardMacs() const override { return last_macs_; }

 private:
  std::size_t input_size_, hidden_size_;
  Param w_;  // (4*hidden, input)  gate order: i, f, g, o
  Param u_;  // (4*hidden, hidden)
  Param b_;  // (4*hidden)
  std::size_t last_macs_ = 0;
};

/// Simple sequential container (used by the neural d-vector encoder MLP).
class Sequential {
 public:
  void Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& input);
  Tensor Backward(const Tensor& grad_output);
  /// Const chains of the layers' Infer/InferBatch paths.
  Tensor Infer(const Tensor& input) const;
  Tensor InferBatch(const Tensor& batch) const;
  std::vector<Param*> Params();
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nec::nn
