// Neural network layers with explicit forward/backward passes.
//
// The NEC selector (core/selector.h) is a static pipeline of these layers:
// Conv2D with temporal dilation, elementwise activations, and Linear heads.
// Layers cache whatever the backward pass needs during Forward; Backward
// consumes the cached state, accumulates parameter gradients into
// Param::grad and returns the gradient with respect to the layer input.
//
// Thread-safety contract (nec::runtime shares one trained weight set across
// concurrent sessions):
//   * Forward/Backward MUTATE the layer (activation caches, MAC counters)
//     and must only be used by a single thread — the training path.
//   * Infer is const, writes no member state (scratch buffers are per-call
//     locals), and is bit-identical to Forward. Any number of threads may
//     call Infer on the same layer concurrently as long as nothing mutates
//     the parameters at the same time.
//
// The LSTM layer exists for the VoiceFilter runtime baseline (Table II) and
// implements forward only — the baseline is never trained in this repo.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace nec::nn {

/// A learnable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer; caches activations needed by Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Propagates gradients; accumulates into parameter grads and returns the
  /// gradient with respect to the layer's input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for activations).
  virtual std::vector<Param*> Params() { return {}; }

  virtual std::string Name() const = 0;

  /// Approximate multiply-accumulate count of one Forward call with the
  /// last-seen input shape (0 before the first Forward). Used by the
  /// runtime analysis bench (Table II).
  virtual std::size_t LastForwardMacs() const { return 0; }
};

/// 2-D convolution over (channels, height, width) tensors; stride 1, zero
/// "same" padding, independent dilation per axis. Height is the time axis
/// and width the frequency axis in the selector's usage.
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_h, std::size_t kernel_w, std::size_t dilation_h,
         std::size_t dilation_w, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  /// Cache-free forward pass (see thread-safety contract above).
  Tensor Infer(const Tensor& input) const;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv2D"; }
  std::size_t LastForwardMacs() const override { return last_macs_; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  void Im2Col(const Tensor& input, std::vector<float>& col) const;
  Tensor Compute(const Tensor& input, std::vector<float>& col) const;

  std::size_t in_channels_, out_channels_;
  std::size_t kh_, kw_, dh_, dw_;
  Param weight_;  // (out_channels, in_channels*kh*kw)
  Param bias_;    // (out_channels)

  std::vector<float> col_cache_;  // (H*W, in_channels*kh*kw) row-major
  std::size_t in_h_ = 0, in_w_ = 0;
  std::size_t last_macs_ = 0;
};

/// Fully connected layer applied to the last dimension of a (rows, in)
/// tensor.
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  /// Cache-free forward pass (see thread-safety contract above).
  Tensor Infer(const Tensor& input) const;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Linear"; }
  std::size_t LastForwardMacs() const override { return last_macs_; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::size_t in_features_, out_features_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  Tensor input_cache_;
  std::size_t last_macs_ = 0;
};

/// Rectified linear activation.
class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  /// Cache-free forward pass (see thread-safety contract above).
  Tensor Infer(const Tensor& input) const;
  std::string Name() const override { return "ReLU"; }

 private:
  Tensor input_cache_;
};

/// Logistic sigmoid activation.
class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  /// Cache-free forward pass (see thread-safety contract above).
  Tensor Infer(const Tensor& input) const;
  std::string Name() const override { return "Sigmoid"; }

 private:
  Tensor output_cache_;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  /// Cache-free forward pass (see thread-safety contract above).
  Tensor Infer(const Tensor& input) const;
  std::string Name() const override { return "Tanh"; }

 private:
  Tensor output_cache_;
};

/// Unidirectional LSTM over a (T, input) sequence producing (T, hidden).
/// Forward-only: used by the VoiceFilter baseline for runtime comparison.
class Lstm : public Layer {
 public:
  Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  /// Not supported; throws nec::CheckError.
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Param*> Params() override { return {&w_, &u_, &b_}; }
  std::string Name() const override { return "Lstm"; }
  std::size_t LastForwardMacs() const override { return last_macs_; }

 private:
  std::size_t input_size_, hidden_size_;
  Param w_;  // (4*hidden, input)  gate order: i, f, g, o
  Param u_;  // (4*hidden, hidden)
  Param b_;  // (4*hidden)
  std::size_t last_macs_ = 0;
};

/// Simple sequential container (used by the neural d-vector encoder MLP).
class Sequential {
 public:
  void Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& input);
  Tensor Backward(const Tensor& grad_output);
  std::vector<Param*> Params();
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nec::nn
