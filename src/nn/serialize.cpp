#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace nec::nn {
namespace {

constexpr char kMagic[4] = {'N', 'E', 'C', 'M'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WriteLe(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadLe(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("model file truncated");
  return v;
}

}  // namespace

void SaveTensors(const std::string& path, const TensorMap& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot create model file " + path);

  out.write(kMagic, 4);
  WriteLe<std::uint32_t>(out, kVersion);
  WriteLe<std::uint32_t>(out, static_cast<std::uint32_t>(tensors.size()));

  for (const auto& [name, tensor] : tensors) {
    WriteLe<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteLe<std::uint32_t>(out,
                           static_cast<std::uint32_t>(tensor.rank()));
    for (std::size_t d : tensor.shape())
      WriteLe<std::uint64_t>(out, static_cast<std::uint64_t>(d));
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("write failure for model " + path);
}

TensorMap LoadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open model file " + path);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("bad magic in model file " + path);
  const auto version = ReadLe<std::uint32_t>(in);
  if (version != kVersion)
    throw std::runtime_error("unsupported model version " +
                             std::to_string(version));

  const auto count = ReadLe<std::uint32_t>(in);
  TensorMap tensors;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = ReadLe<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto rank = ReadLe<std::uint32_t>(in);
    if (rank == 0 || rank > 8)
      throw std::runtime_error("implausible tensor rank in " + path);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape)
      d = static_cast<std::size_t>(ReadLe<std::uint64_t>(in));
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("model file truncated: " + path);
    tensors.emplace(std::move(name), std::move(t));
  }
  return tensors;
}

}  // namespace nec::nn
