#include "nn/gemm.h"

#include <algorithm>
#include <utility>

namespace nec::nn {
namespace {

// Cache-blocking parameters. A kMc x kKc panel of A (64 KiB) plus a
// kKc x kNc panel of B (256 KiB) stay resident in L2 while a kMc x kNc
// tile of C is updated; the inner loops stream contiguous rows so the
// compiler vectorizes them into FMA streams.
constexpr std::size_t kMc = 64;
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 256;

// Row-panel parallelism kicks in only when a split pays for its dispatch:
// enough rows for >= 2 panels of kMc and a non-trivial flop count.
constexpr std::size_t kParallelMinRows = 2 * kMc;
constexpr std::size_t kParallelMinMacs = std::size_t{1} << 21;
constexpr std::size_t kParallelMaxPanels = 16;

GemmParallelFor g_parallel_for;                    // install-once hook
thread_local bool t_parallel_enabled = false;      // GemmParallelScope gate

inline void ScaleC(float* c, std::size_t count, float beta) {
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < count; ++i) c[i] = 0.0f;
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

// ---------------------------------------------------------------- serial
// Every kernel accumulates each C element's k-products in ascending k
// order regardless of tile position, so a row-panel split (which only
// partitions M) reproduces the serial result bit-for-bit.

void GemmNNSerial(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t n, std::size_t k, float alpha, float beta) {
  ScaleC(c, m * n, beta);
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      for (std::size_t ic = 0; ic < m; ic += kMc) {
        const std::size_t mc = std::min(kMc, m - ic);
        for (std::size_t i = ic; i < ic + mc; ++i) {
          float* __restrict ci = c + i * n + jc;
          const float* ai = a + i * k + pc;
          // i-k-j micro-loop: the j loop runs over contiguous memory in
          // both B and C.
          for (std::size_t kk = 0; kk < kc; ++kk) {
            const float av = alpha * ai[kk];
            const float* __restrict bk = b + (pc + kk) * n + jc;
            for (std::size_t j = 0; j < nc; ++j) ci[j] += av * bk[j];
          }
        }
      }
    }
  }
}

void GemmNTSerial(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t n, std::size_t k, float alpha, float beta) {
  // Dot-product formulation: the k loop is contiguous in both A and B
  // rows. i/j tiling keeps a kMc x k panel of A and a kNc x k panel of B
  // hot across the tile; the 4-wide i unroll shares each B-row load across
  // four dot products (four independent accumulator chains for ILP).
  for (std::size_t ic = 0; ic < m; ic += kMc) {
    const std::size_t mc = std::min(kMc, m - ic);
    for (std::size_t jc = 0; jc < n; jc += kNc) {
      const std::size_t nc = std::min(kNc, n - jc);
      for (std::size_t j = jc; j < jc + nc; ++j) {
        const float* __restrict bj = b + j * k;
        std::size_t i = ic;
        for (; i + 4 <= ic + mc; i += 4) {
          const float* __restrict a0 = a + i * k;
          const float* __restrict a1 = a0 + k;
          const float* __restrict a2 = a1 + k;
          const float* __restrict a3 = a2 + k;
          float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
          for (std::size_t kk = 0; kk < k; ++kk) {
            const float bv = bj[kk];
            s0 += a0[kk] * bv;
            s1 += a1[kk] * bv;
            s2 += a2[kk] * bv;
            s3 += a3[kk] * bv;
          }
          float* c0 = c + i * n + j;
          const float b0 = beta == 0.0f ? 0.0f : beta * *c0;
          *c0 = alpha * s0 + b0;
          float* c1 = c0 + n;
          const float b1 = beta == 0.0f ? 0.0f : beta * *c1;
          *c1 = alpha * s1 + b1;
          float* c2 = c1 + n;
          const float b2 = beta == 0.0f ? 0.0f : beta * *c2;
          *c2 = alpha * s2 + b2;
          float* c3 = c2 + n;
          const float b3 = beta == 0.0f ? 0.0f : beta * *c3;
          *c3 = alpha * s3 + b3;
        }
        for (; i < ic + mc; ++i) {
          const float* __restrict ai = a + i * k;
          float acc = 0.0f;
          for (std::size_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
          float* ci = c + i * n + j;
          *ci = alpha * acc + (beta == 0.0f ? 0.0f : beta * *ci);
        }
      }
    }
  }
}

/// TN kernel over the row slice [row0, row0 + rows) of C. A is stored
/// (K, M) with row stride `lda` (= the full M), so a C-row panel is a
/// column slice of A.
void GemmTNPanel(const float* a, const float* b, float* c, std::size_t row0,
                 std::size_t rows, std::size_t lda, std::size_t n,
                 std::size_t k, float alpha, float beta) {
  ScaleC(c + row0 * n, rows * n, beta);
  // Rank-1 update form, blocked so the kMc x kNc tile of C stays hot
  // across a kKc run of k instead of re-streaming all of C per k row.
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    for (std::size_t ic = row0; ic < row0 + rows; ic += kMc) {
      const std::size_t mc = std::min(kMc, row0 + rows - ic);
      for (std::size_t jc = 0; jc < n; jc += kNc) {
        const std::size_t nc = std::min(kNc, n - jc);
        for (std::size_t kk = pc; kk < pc + kc; ++kk) {
          const float* ak = a + kk * lda;
          const float* __restrict bk = b + kk * n + jc;
          for (std::size_t i = ic; i < ic + mc; ++i) {
            const float av = alpha * ak[i];
            if (av == 0.0f) continue;
            float* __restrict ci = c + i * n + jc;
            for (std::size_t j = 0; j < nc; ++j) ci[j] += av * bk[j];
          }
        }
      }
    }
  }
}

// -------------------------------------------------------------- parallel

bool ShouldParallelize(std::size_t m, std::size_t n, std::size_t k) {
  return t_parallel_enabled && g_parallel_for != nullptr &&
         m >= kParallelMinRows && m * n * k >= kParallelMinMacs;
}

/// Splits [0, m) into row panels and runs `panel(i0, rows)` for each via
/// the installed hook. Panel boundaries are kMc-aligned so each panel's
/// internal tiling (and unroll grouping) coincides with the serial
/// kernel's — a requirement for bit-exact parallel results. Workers see
/// t_parallel_enabled == false (it is thread-local), so panel bodies never
/// fan out recursively.
void ParallelOverRows(
    std::size_t m,
    const std::function<void(std::size_t, std::size_t)>& panel) {
  const std::size_t max_panels =
      std::min(kParallelMaxPanels, (m + kMc - 1) / kMc);
  const std::size_t rows_per_panel =
      ((m + max_panels - 1) / max_panels + kMc - 1) / kMc * kMc;
  const std::size_t panels = (m + rows_per_panel - 1) / rows_per_panel;
  g_parallel_for(panels, [&](std::size_t p) {
    const std::size_t i0 = p * rows_per_panel;
    panel(i0, std::min(rows_per_panel, m - i0));
  });
}

}  // namespace

void SetGemmParallelFor(GemmParallelFor fn) {
  g_parallel_for = std::move(fn);
}

bool GemmParallelActive() {
  return t_parallel_enabled && g_parallel_for != nullptr;
}

GemmParallelScope::GemmParallelScope(bool enabled)
    : previous_(t_parallel_enabled) {
  t_parallel_enabled = enabled;
}

GemmParallelScope::~GemmParallelScope() { t_parallel_enabled = previous_; }

void GemmNN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha, float beta) {
  if (ShouldParallelize(m, n, k)) {
    ParallelOverRows(m, [&](std::size_t i0, std::size_t rows) {
      GemmNNSerial(a + i0 * k, b, c + i0 * n, rows, n, k, alpha, beta);
    });
    return;
  }
  GemmNNSerial(a, b, c, m, n, k, alpha, beta);
}

void GemmNT(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha, float beta) {
  if (ShouldParallelize(m, n, k)) {
    ParallelOverRows(m, [&](std::size_t i0, std::size_t rows) {
      GemmNTSerial(a + i0 * k, b, c + i0 * n, rows, n, k, alpha, beta);
    });
    return;
  }
  GemmNTSerial(a, b, c, m, n, k, alpha, beta);
}

void GemmTN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha, float beta) {
  if (ShouldParallelize(m, n, k)) {
    // A is stored (K, M): a row panel of C corresponds to a column slice
    // of A, offset by i0 within each k row.
    ParallelOverRows(m, [&](std::size_t i0, std::size_t rows) {
      GemmTNPanel(a, b, c, i0, rows, m, n, k, alpha, beta);
    });
    return;
  }
  GemmTNPanel(a, b, c, 0, m, m, n, k, alpha, beta);
}

}  // namespace nec::nn
