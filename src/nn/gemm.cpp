#include "nn/gemm.h"

namespace nec::nn {
namespace {

inline void ScaleC(float* c, std::size_t count, float beta) {
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < count; ++i) c[i] = 0.0f;
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha, float beta) {
  ScaleC(c, m * n, beta);
  // i-k-j order: the j loop runs over contiguous memory in both B and C,
  // which gcc vectorizes into FMA streams.
  for (std::size_t i = 0; i < m; ++i) {
    float* __restrict ci = c + i * n;
    const float* ai = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = alpha * ai[kk];
      const float* __restrict bk = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
  }
}

void GemmNT(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha, float beta) {
  // Dot-product formulation: the k loop is contiguous in both A and B
  // rows. Loop nesting follows the smaller operand so the large one is
  // streamed exactly once: the conv forward pass has a tiny A
  // (C_out x K weights, fits in L1) against a huge B (im2col patches) —
  // iterating j outermost there cuts memory traffic by ~C_out x.
  if (m <= n) {
    for (std::size_t j = 0; j < n; ++j) {
      const float* __restrict bj = b + j * k;
      for (std::size_t i = 0; i < m; ++i) {
        const float* __restrict ai = a + i * k;
        float acc = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
        float* ci = c + i * n + j;
        *ci = alpha * acc + (beta == 0.0f ? 0.0f : beta * *ci);
      }
    }
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      const float* __restrict ai = a + i * k;
      float* ci = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* __restrict bj = b + j * k;
        float acc = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
        ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
      }
    }
  }
}

void GemmTN(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha, float beta) {
  ScaleC(c, m * n, beta);
  // k-i-j order: for each k row of A^T and B, rank-1 update of C.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* ak = a + kk * m;
    const float* __restrict bk = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * ak[i];
      if (av == 0.0f) continue;
      float* __restrict ci = c + i * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
  }
}

}  // namespace nec::nn
