#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace nec::nn {

Adam::Adam(std::vector<Param*> params, const Options& options)
    : params_(std::move(params)), options_(options) {
  NEC_CHECK_MSG(!params_.empty(), "Adam needs at least one parameter");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

float Adam::GradNorm() const {
  double acc = 0.0;
  for (const Param* p : params_) {
    for (float g : p->grad.vec()) acc += static_cast<double>(g) * g;
  }
  return static_cast<float>(std::sqrt(acc));
}

void Adam::Step() {
  ++step_;
  float scale = 1.0f;
  if (options_.grad_clip > 0.0f) {
    const float norm = GradNorm();
    if (norm > options_.grad_clip) scale = options_.grad_clip / norm;
  }

  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] * scale;
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      float update = options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
      if (options_.weight_decay > 0.0f) {
        update += options_.lr * options_.weight_decay * p.value[j];
      }
      p.value[j] -= update;
    }
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  for (Param* p : params_) p->ZeroGrad();
}

}  // namespace nec::nn
