#include "nn/loss.h"

#include <cmath>

#include "common/check.h"

namespace nec::nn {

MseResult MseLoss(const Tensor& pred, const Tensor& target) {
  NEC_CHECK_MSG(pred.numel() == target.numel() && pred.numel() > 0,
                "MseLoss shape mismatch");
  MseResult r{0.0f, Tensor(pred.shape())};
  const float inv_n = 1.0f / static_cast<float>(pred.numel());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const float d = pred[i] - target[i];
    acc += static_cast<double>(d) * d;
    r.grad[i] = 2.0f * d * inv_n;
  }
  r.loss = static_cast<float>(acc * inv_n);
  return r;
}

MseResult L1Loss(const Tensor& pred, const Tensor& target) {
  NEC_CHECK_MSG(pred.numel() == target.numel() && pred.numel() > 0,
                "L1Loss shape mismatch");
  MseResult r{0.0f, Tensor(pred.shape())};
  const float inv_n = 1.0f / static_cast<float>(pred.numel());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const float d = pred[i] - target[i];
    acc += std::abs(static_cast<double>(d));
    r.grad[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) * inv_n;
  }
  r.loss = static_cast<float>(acc * inv_n);
  return r;
}

}  // namespace nec::nn
