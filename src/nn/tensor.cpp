#include "nn/tensor.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace nec::nn {

void Tensor::AllocateStorage() {
  numel_ = shape_.numel();
  if (core::Arena* arena = core::ArenaScope::Current()) {
    arena_backed_ = true;
    data_ = arena->AllocateArray<float>(numel_);
    std::memset(data_, 0, numel_ * sizeof(float));
  } else {
    arena_backed_ = false;
    owned_.assign(numel_, 0.0f);
    data_ = owned_.data();
  }
}

Tensor::Tensor(const Shape& shape) : shape_(shape) {
  NEC_CHECK_MSG(!shape_.empty(), "tensor rank must be >= 1");
  AllocateStorage();
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(Shape(shape)) {}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  if (other.numel_ == 0 && other.shape_.empty()) return;
  AllocateStorage();
  std::memcpy(data_, other.data_, numel_ * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (numel_ == other.numel_ && numel_ != 0) {
    // Storage fits exactly: keep this tensor's mode, copy in place.
    shape_ = other.shape_;
    std::memcpy(data_, other.data_, numel_ * sizeof(float));
    return *this;
  }
  shape_ = other.shape_;
  if (other.numel_ == 0 && other.shape_.empty()) {
    data_ = nullptr;
    numel_ = 0;
    arena_backed_ = false;
    owned_.clear();
    return *this;
  }
  AllocateStorage();
  std::memcpy(data_, other.data_, numel_ * sizeof(float));
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_),
      data_(other.data_),
      numel_(other.numel_),
      arena_backed_(other.arena_backed_),
      owned_(std::move(other.owned_)) {
  if (!arena_backed_) data_ = owned_.data();
  other.shape_ = Shape();
  other.data_ = nullptr;
  other.numel_ = 0;
  other.arena_backed_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = other.shape_;
  numel_ = other.numel_;
  arena_backed_ = other.arena_backed_;
  owned_ = std::move(other.owned_);
  data_ = arena_backed_ ? other.data_ : owned_.data();
  other.shape_ = Shape();
  other.data_ = nullptr;
  other.numel_ = 0;
  other.arena_backed_ = false;
  return *this;
}

Tensor Tensor::Zeros(const Shape& shape) { return Tensor(shape); }

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float stddev) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel_; ++i)
    t.data_[i] = rng.GaussianF(0.0f, stddev);
  return t;
}

Tensor Tensor::KaimingNormal(const Shape& shape, Rng& rng,
                             std::size_t fan_in) {
  NEC_CHECK(fan_in > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Randn(shape, rng, stddev);
}

void Tensor::Fill(float v) {
  for (std::size_t i = 0; i < numel_; ++i) data_[i] = v;
}

void Tensor::Reshape(const Shape& shape) {
  NEC_CHECK_MSG(shape.numel() == numel_, "reshape element count mismatch");
  shape_ = shape;
}

void Tensor::Add(const Tensor& other) {
  NEC_CHECK(other.numel() == numel());
  for (std::size_t i = 0; i < numel_; ++i) data_[i] += other.data_[i];
}

void Tensor::AddScaled(const Tensor& other, float s) {
  NEC_CHECK(other.numel() == numel());
  for (std::size_t i = 0; i < numel_; ++i) data_[i] += s * other.data_[i];
}

void Tensor::Scale(float s) {
  for (std::size_t i = 0; i < numel_; ++i) data_[i] *= s;
}

float Tensor::Norm() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < numel_; ++i)
    acc += static_cast<double>(data_[i]) * data_[i];
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace nec::nn
