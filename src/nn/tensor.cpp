#include "nn/tensor.h"

#include <cmath>

#include "common/check.h"

namespace nec::nn {
namespace {

std::size_t Product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(Product(shape_), 0.0f) {
  NEC_CHECK_MSG(!shape_.empty(), "tensor rank must be >= 1");
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor Tensor::Zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Randn(std::vector<std::size_t> shape, Rng& rng,
                     float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.GaussianF(0.0f, stddev);
  return t;
}

Tensor Tensor::KaimingNormal(std::vector<std::size_t> shape, Rng& rng,
                             std::size_t fan_in) {
  NEC_CHECK(fan_in > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Randn(std::move(shape), rng, stddev);
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

void Tensor::Reshape(std::vector<std::size_t> shape) {
  NEC_CHECK_MSG(Product(shape) == data_.size(),
                "reshape element count mismatch");
  shape_ = std::move(shape);
}

void Tensor::Add(const Tensor& other) {
  NEC_CHECK(other.numel() == numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::AddScaled(const Tensor& other, float s) {
  NEC_CHECK(other.numel() == numel());
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += s * other.data_[i];
}

void Tensor::Scale(float s) {
  for (float& x : data_) x *= s;
}

float Tensor::Norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace nec::nn
