// Binary (de)serialization of named tensors — the on-disk model format.
//
// Format: magic "NECM", u32 version, u32 tensor count, then per tensor:
// u32 name length + bytes, u32 rank, u64 dims..., f32 data. Little-endian.
// Used to cache trained selector/encoder weights so example binaries and
// benches can share one training run.
#pragma once

#include <map>
#include <string>

#include "nn/tensor.h"

namespace nec::nn {

/// Ordered name → tensor map (ordering makes files byte-stable).
using TensorMap = std::map<std::string, Tensor>;

/// Writes tensors to `path`; throws std::runtime_error on IO failure.
void SaveTensors(const std::string& path, const TensorMap& tensors);

/// Reads tensors from `path`; throws std::runtime_error on malformed input.
TensorMap LoadTensors(const std::string& path);

}  // namespace nec::nn
