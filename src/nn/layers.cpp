#include "nn/layers.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "nn/gemm.h"

namespace nec::nn {

// ------------------------------------------------------------------ Layer

Tensor Layer::Infer(const Tensor&) const {
  NEC_CHECK_MSG(false, Name() << " has no const inference path");
  return Tensor();
}

Tensor Layer::InferBatch(const Tensor&) const {
  NEC_CHECK_MSG(false, Name() << " has no batched inference path");
  return Tensor();
}

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w,
               std::size_t dilation_h, std::size_t dilation_w, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      dh_(dilation_h),
      dw_(dilation_w),
      weight_(Tensor::KaimingNormal(
          {out_channels, in_channels * kernel_h * kernel_w}, rng,
          in_channels * kernel_h * kernel_w)),
      bias_(Tensor::Zeros({out_channels})) {
  NEC_CHECK(in_channels >= 1 && out_channels >= 1);
  NEC_CHECK_MSG(kernel_h % 2 == 1 && kernel_w % 2 == 1,
                "same-padding Conv2D requires odd kernel sizes");
  NEC_CHECK(dilation_h >= 1 && dilation_w >= 1);
}

// Builds the K-major lowering colT(K, P): row idx = (c*kh + ky)*kw + kx —
// the same k index the weight matrix uses — holds the input shifted by the
// tap's (ky, kx) offset, zero-padded at the edges. Each colT row is h
// shifted copies of input rows, so it assembles from memcpy + small zero
// fills instead of a per-element gather: ~K·P bytes of straight-line
// copies, and the GEMM that follows streams both operands contiguously.
void Conv2D::Im2ColT(const float* in, std::size_t h, std::size_t w,
                     std::vector<float>& colt) const {
  const std::ptrdiff_t pad_h =
      static_cast<std::ptrdiff_t>(dh_ * (kh_ - 1) / 2);
  const std::ptrdiff_t pad_w =
      static_cast<std::ptrdiff_t>(dw_ * (kw_ - 1) / 2);
  const std::size_t pixels = h * w;

  std::size_t idx = 0;
  for (std::size_t c = 0; c < in_channels_; ++c) {
    const float* chan = in + c * pixels;
    for (std::size_t ky = 0; ky < kh_; ++ky) {
      const std::ptrdiff_t sy0 =
          static_cast<std::ptrdiff_t>(ky * dh_) - pad_h;
      for (std::size_t kx = 0; kx < kw_; ++kx, ++idx) {
        const std::ptrdiff_t sx0 =
            static_cast<std::ptrdiff_t>(kx * dw_) - pad_w;
        // Valid x positions: 0 <= x + sx0 < w.
        const std::size_t x_lo =
            sx0 < 0 ? static_cast<std::size_t>(-sx0) : 0;
        const std::size_t x_hi =
            sx0 > 0 ? w - static_cast<std::size_t>(sx0) : w;
        float* row = colt.data() + idx * pixels;
        for (std::size_t y = 0; y < h; ++y) {
          const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + sy0;
          float* dst = row + y * w;
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(h)) {
            std::memset(dst, 0, w * sizeof(float));
            continue;
          }
          const float* src = chan + static_cast<std::size_t>(sy) * w;
          if (x_lo > 0) std::memset(dst, 0, x_lo * sizeof(float));
          std::memcpy(dst + x_lo, src + x_lo + sx0,
                      (x_hi - x_lo) * sizeof(float));
          if (x_hi < w)
            std::memset(dst + x_hi, 0, (w - x_hi) * sizeof(float));
        }
      }
    }
  }
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define NEC_CONV_VECTOR_KERNEL 1
// Float vector for the convolution inner loop, sized to the widest SIMD
// registers the compile target actually has. Matching the native register
// width matters: the kernel keeps eight named accumulators live across the
// whole tap loop, and eight one-register vectors always fit the register
// file, while eight wider-than-native vectors would be split and spilled
// to the stack — slower than no vectors at all. Element-wise ops on these
// types are ordinary per-lane float arithmetic, so the kernel stays
// deterministic at every width.
#if defined(__AVX512F__)
typedef float ConvVec __attribute__((vector_size(64), aligned(4)));
#elif defined(__AVX__)
typedef float ConvVec __attribute__((vector_size(32), aligned(4)));
#else
typedef float ConvVec __attribute__((vector_size(16), aligned(4)));
#endif
constexpr std::size_t kConvLanes = sizeof(ConvVec) / sizeof(float);

inline ConvVec LoadConvVec(const float* p) {
  ConvVec v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreConvVec(float* p, ConvVec v) {
  __builtin_memcpy(p, &v, sizeof(v));
}
#endif

}  // namespace

// Direct "same"-padded convolution over a zero-padded copy of the input.
//
// `scratch` holds the padded input (C_in, h + 2*pad_h, w + 2*pad_w);
// building it costs one input-sized pass of memcpys. Each output channel
// then accumulates its K = C_in*kh*kw taps in ascending-k order as an axpy
// over the contiguous width axis:
//     out[m][y][x] += weight[m][k] * padded[c][y + ky*dh][x + kx*dw]
// The padding contributes explicit `w * 0.0f` addends, exactly like the
// zero entries of the im2col lowering the training path keeps for its
// gradients — every output element sees the same addend sequence on every
// path (Forward, Infer, InferBatch), so the kernels are bit-compatible by
// construction.
//
// Why direct instead of im2col + GEMM: C_out is tiny (selector convs are
// 6-channel), so the GEMM formulation is memory-bound streaming a K×P
// column matrix that is ~K times the input size. The direct kernel's
// working set is the padded input slab (L2-resident for 1 s selector
// chunks) plus one output channel, and the axpy inner loop vectorizes over
// width — an order of magnitude less memory traffic per layer.
void Conv2D::ComputeInto(const float* in, std::size_t h, std::size_t w,
                         std::vector<float>& scratch, float* out) const {
  const std::size_t pad_h = dh_ * (kh_ - 1) / 2;
  const std::size_t pad_w = dw_ * (kw_ - 1) / 2;
  const std::size_t ph = h + 2 * pad_h, pw = w + 2 * pad_w;
  const std::size_t pixels = h * w;

  scratch.assign(in_channels_ * ph * pw, 0.0f);
  for (std::size_t c = 0; c < in_channels_; ++c) {
    for (std::size_t y = 0; y < h; ++y) {
      std::memcpy(scratch.data() + ((c * ph) + y + pad_h) * pw + pad_w,
                  in + (c * h + y) * w, w * sizeof(float));
    }
  }

  // Register-blocked accumulation: each x-block of one output row keeps its
  // accumulators in vector registers across the ENTIRE tap loop, so the k
  // loop costs one shifted src load + one multiply-add per tap per vector —
  // no per-tap load/store of the output. Eight NAMED accumulators are
  // deliberate: a local `float acc[]` array lives on the stack and GCC then
  // reloads/stores it every tap (~3x slower), while named one-register
  // vectors stay in registers, and eight independent chains cover the FMA
  // latency*throughput product. The per-element addend order is still
  // ascending k, then + bias, matching the im2col lowering term for term.
  constexpr std::size_t kXBlock = 128;
  for (std::size_t m = 0; m < out_channels_; ++m) {
    float* om = out + m * pixels;
    const float* wm = weight_.value.data() + m * in_channels_ * kh_ * kw_;
    const float b = bias_.value[m];
    for (std::size_t y = 0; y < h; ++y) {
      float* dst = om + y * w;
      std::size_t xb = 0;
#ifdef NEC_CONV_VECTOR_KERNEL
      constexpr std::size_t kVecBlock = 8 * kConvLanes;
      for (; xb + kVecBlock <= w; xb += kVecBlock) {
        ConvVec a0{}, a1{}, a2{}, a3{}, a4{}, a5{}, a6{}, a7{};
        std::size_t k = 0;
        for (std::size_t c = 0; c < in_channels_; ++c) {
          const float* chan = scratch.data() + c * ph * pw;
          for (std::size_t ky = 0; ky < kh_; ++ky) {
            const float* row = chan + (y + ky * dh_) * pw + xb;
            for (std::size_t kx = 0; kx < kw_; ++kx, ++k) {
              const float wk = wm[k];
              const float* src = row + kx * dw_;
              a0 += wk * LoadConvVec(src);
              a1 += wk * LoadConvVec(src + kConvLanes);
              a2 += wk * LoadConvVec(src + 2 * kConvLanes);
              a3 += wk * LoadConvVec(src + 3 * kConvLanes);
              a4 += wk * LoadConvVec(src + 4 * kConvLanes);
              a5 += wk * LoadConvVec(src + 5 * kConvLanes);
              a6 += wk * LoadConvVec(src + 6 * kConvLanes);
              a7 += wk * LoadConvVec(src + 7 * kConvLanes);
            }
          }
        }
        StoreConvVec(dst + xb, a0 + b);
        StoreConvVec(dst + xb + kConvLanes, a1 + b);
        StoreConvVec(dst + xb + 2 * kConvLanes, a2 + b);
        StoreConvVec(dst + xb + 3 * kConvLanes, a3 + b);
        StoreConvVec(dst + xb + 4 * kConvLanes, a4 + b);
        StoreConvVec(dst + xb + 5 * kConvLanes, a5 + b);
        StoreConvVec(dst + xb + 6 * kConvLanes, a6 + b);
        StoreConvVec(dst + xb + 7 * kConvLanes, a7 + b);
      }
#endif
      for (; xb < w; xb += kXBlock) {
        const std::size_t xn = std::min(kXBlock, w - xb);
        float acc[kXBlock] = {};
        std::size_t k = 0;
        for (std::size_t c = 0; c < in_channels_; ++c) {
          const float* chan = scratch.data() + c * ph * pw;
          for (std::size_t ky = 0; ky < kh_; ++ky) {
            const float* row = chan + (y + ky * dh_) * pw + xb;
            for (std::size_t kx = 0; kx < kw_; ++kx, ++k) {
              const float wk = wm[k];
              const float* src = row + kx * dw_;
              for (std::size_t i = 0; i < xn; ++i) acc[i] += wk * src[i];
            }
          }
        }
        for (std::size_t i = 0; i < xn; ++i) dst[xb + i] = acc[i] + b;
      }
    }
  }
}

Tensor Conv2D::Forward(const Tensor& input) {
  NEC_CHECK_MSG(input.rank() == 3 && input.dim(0) == in_channels_,
                "Conv2D expects (in_channels, H, W) input");
  const std::size_t h = input.dim(1), w = input.dim(2);
  Tensor out({out_channels_, h, w});
  ComputeInto(input.data(), h, w, pad_cache_, out.data());
  // The backward pass consumes the im2col lowering (grad_weight is a GEMM
  // against colT); build it here — training throughput is not the hot
  // path, and keeping gradients on the GEMM formulation keeps Backward
  // simple while the forward kernels stay direct.
  colt_cache_.resize(in_channels_ * kh_ * kw_ * h * w);
  Im2ColT(input.data(), h, w, colt_cache_);
  in_h_ = h;
  in_w_ = w;
  last_macs_ = out_channels_ * h * w * in_channels_ * kh_ * kw_;
  return out;
}

Tensor Conv2D::Infer(const Tensor& input) const {
  NEC_CHECK_MSG(input.rank() == 3 && input.dim(0) == in_channels_,
                "Conv2D expects (in_channels, H, W) input");
  // Per-thread scratch: Infer is const and shared across sessions, so a
  // member cache would race; a thread_local (shared by every Conv2D on
  // the thread, sized to the largest layer) keeps steady-state inference
  // allocation-free without locks. Bit-exactness is unaffected — the
  // scratch is fully rewritten (see ComputeInto) before it is read.
  thread_local std::vector<float> scratch;
  const std::size_t h = input.dim(1), w = input.dim(2);
  Tensor out({out_channels_, h, w});
  ComputeInto(input.data(), h, w, scratch, out.data());
  return out;
}

Tensor Conv2D::InferBatch(const Tensor& batch) const {
  NEC_CHECK_MSG(batch.rank() == 4 && batch.dim(1) == in_channels_,
                "Conv2D::InferBatch expects (B, in_channels, H, W)");
  const std::size_t b = batch.dim(0), h = batch.dim(2), w = batch.dim(3);
  const std::size_t in_item = in_channels_ * h * w;
  const std::size_t out_item = out_channels_ * h * w;
  thread_local std::vector<float> scratch;
  Tensor out({b, out_channels_, h, w});
  // Each item runs exactly the per-item ComputeInto kernel over the shared
  // weights, so the batched path is bit-identical to looped Infer by
  // construction (the batch win is hot-cache weights and amortized
  // per-layer overhead, not a reassociated reduction).
  for (std::size_t i = 0; i < b; ++i) {
    ComputeInto(batch.data() + i * in_item, h, w, scratch,
                out.data() + i * out_item);
  }
  return out;
}

Tensor Conv2D::Backward(const Tensor& grad_output) {
  NEC_CHECK_MSG(grad_output.rank() == 3 &&
                    grad_output.dim(0) == out_channels_ &&
                    grad_output.dim(1) == in_h_ &&
                    grad_output.dim(2) == in_w_,
                "Conv2D backward shape mismatch");
  const std::size_t pixels = in_h_ * in_w_;
  const std::size_t k = in_channels_ * kh_ * kw_;

  // grad_weight(C_out, K) += grad_out(C_out, P) * colT(K, P)^T
  GemmNT(grad_output.data(), colt_cache_.data(), weight_.grad.data(),
         out_channels_, k, pixels, 1.0f, 1.0f);

  // grad_bias += row sums of grad_out.
  for (std::size_t c = 0; c < out_channels_; ++c) {
    const float* gc = grad_output.data() + c * pixels;
    double acc = 0.0;
    for (std::size_t p = 0; p < pixels; ++p) acc += gc[p];
    bias_.grad[c] += static_cast<float>(acc);
  }

  // grad_colT(K, P) = weight(C_out, K)^T * grad_out(C_out, P)
  Tensor grad_colt({k, pixels});
  GemmTN(weight_.value.data(), grad_output.data(), grad_colt.data(), k,
         pixels, out_channels_);

  // col2im: the inverse of Im2ColT — each colT row scatter-adds back into
  // the input at its tap's (ky, kx) offset. Same shifted-row structure,
  // so the adds are contiguous spans, not per-element gathers.
  Tensor grad_input({in_channels_, in_h_, in_w_});
  const std::ptrdiff_t pad_h =
      static_cast<std::ptrdiff_t>(dh_ * (kh_ - 1) / 2);
  const std::ptrdiff_t pad_w =
      static_cast<std::ptrdiff_t>(dw_ * (kw_ - 1) / 2);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < in_channels_; ++c) {
    float* chan = grad_input.data() + c * pixels;
    for (std::size_t ky = 0; ky < kh_; ++ky) {
      const std::ptrdiff_t sy0 =
          static_cast<std::ptrdiff_t>(ky * dh_) - pad_h;
      for (std::size_t kx = 0; kx < kw_; ++kx, ++idx) {
        const std::ptrdiff_t sx0 =
            static_cast<std::ptrdiff_t>(kx * dw_) - pad_w;
        const std::size_t x_lo =
            sx0 < 0 ? static_cast<std::size_t>(-sx0) : 0;
        const std::size_t x_hi =
            sx0 > 0 ? in_w_ - static_cast<std::size_t>(sx0) : in_w_;
        const float* row = grad_colt.data() + idx * pixels;
        for (std::size_t y = 0; y < in_h_; ++y) {
          const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + sy0;
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(in_h_)) continue;
          const float* src = row + y * in_w_;
          float* dst = chan + static_cast<std::size_t>(sy) * in_w_;
          for (std::size_t x = x_lo; x < x_hi; ++x) dst[x + sx0] += src[x];
        }
      }
    }
  }
  return grad_input;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::KaimingNormal({out_features, in_features}, rng,
                                    in_features)),
      bias_(Tensor::Zeros({out_features})) {
  NEC_CHECK(in_features >= 1 && out_features >= 1);
}

void Linear::InferRows(const float* in, std::size_t rows, float* out) const {
  // Each output row depends only on its own input row, so running B items'
  // rows through ONE GemmNT call is bit-identical, row for row, to B
  // separate calls — the property Linear::InferBatch relies on.
  GemmNT(in, weight_.value.data(), out, rows, out_features_, in_features_);
  for (std::size_t r = 0; r < rows; ++r) {
    float* orow = out + r * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j)
      orow[j] += bias_.value[j];
  }
}

Tensor Linear::Infer(const Tensor& input) const {
  NEC_CHECK_MSG(input.rank() == 2 && input.dim(1) == in_features_,
                "Linear expects (rows, in_features); got last dim "
                    << (input.rank() >= 1 ? input.dim(input.rank() - 1) : 0));
  Tensor out({input.dim(0), out_features_});
  InferRows(input.data(), input.dim(0), out.data());
  return out;
}

Tensor Linear::InferBatch(const Tensor& batch) const {
  NEC_CHECK_MSG(batch.rank() == 3 && batch.dim(2) == in_features_,
                "Linear::InferBatch expects (B, rows, in_features)");
  Tensor out({batch.dim(0), batch.dim(1), out_features_});
  InferRows(batch.data(), batch.dim(0) * batch.dim(1), out.data());
  return out;
}

Tensor Linear::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  input_cache_ = input;
  last_macs_ = input.dim(0) * out_features_ * in_features_;
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  const std::size_t rows = input_cache_.dim(0);
  NEC_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == rows &&
            grad_output.dim(1) == out_features_);

  // grad_weight(out, in) += grad_out(rows, out)^T * input(rows, in)
  GemmTN(grad_output.data(), input_cache_.data(), weight_.grad.data(),
         out_features_, in_features_, rows, 1.0f, 1.0f);

  for (std::size_t r = 0; r < rows; ++r) {
    const float* grow = grad_output.data() + r * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j)
      bias_.grad[j] += grow[j];
  }

  // grad_input(rows, in) = grad_out(rows, out) * weight(out, in)
  Tensor grad_input({rows, in_features_});
  GemmNN(grad_output.data(), weight_.value.data(), grad_input.data(), rows,
         in_features_, out_features_);
  return grad_input;
}

// ----------------------------------------------------------- Activations

Tensor ReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    o[i] = o[i] > 0.0f ? o[i] : 0.0f;
  return out;
}

Tensor ReLU::InferBatch(const Tensor& batch) const { return Infer(batch); }

Tensor ReLU::Forward(const Tensor& input) {
  input_cache_ = input;
  last_elems_ = input.numel();
  return Infer(input);
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  NEC_CHECK(grad_output.numel() == input_cache_.numel());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (input_cache_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

Tensor Sigmoid::Infer(const Tensor& input) const {
  Tensor out = input;
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i)
    o[i] = 1.0f / (1.0f + std::exp(-o[i]));
  return out;
}

Tensor Sigmoid::InferBatch(const Tensor& batch) const {
  return Infer(batch);
}

Tensor Sigmoid::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  output_cache_ = out;
  last_elems_ = input.numel();
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  NEC_CHECK(grad_output.numel() == output_cache_.numel());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = output_cache_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

Tensor Tanh::Infer(const Tensor& input) const {
  Tensor out = input;
  float* o = out.data();
  for (std::size_t i = 0; i < out.numel(); ++i) o[i] = std::tanh(o[i]);
  return out;
}

Tensor Tanh::InferBatch(const Tensor& batch) const { return Infer(batch); }

Tensor Tanh::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  output_cache_ = out;
  last_elems_ = input.numel();
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  NEC_CHECK(grad_output.numel() == output_cache_.numel());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = output_cache_[i];
    grad[i] *= 1.0f - y * y;
  }
  return grad;
}

// -------------------------------------------------------------- LayerNorm

namespace {

Tensor OnesVector(std::size_t n) {
  Tensor t({n});
  t.Fill(1.0f);
  return t;
}

}  // namespace

LayerNorm::LayerNorm(std::size_t features, float eps)
    : features_(features),
      eps_(eps),
      gain_(OnesVector(features)),
      bias_(Tensor::Zeros({features})) {
  NEC_CHECK(features >= 1);
  NEC_CHECK(eps > 0.0f);
}

void LayerNorm::NormalizeRows(const float* in, std::size_t rows, float* out,
                              float* xhat, float* inv_sigma) const {
  const std::size_t n = features_;
  const float* g = gain_.value.data();
  const float* b = bias_.value.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = in + r * n;
    float* o = out + r * n;
    // Fixed ascending-order double accumulation: rows are normalized
    // independently and identically regardless of how many ride in the
    // call, which is what makes Infer/InferBatch bit-identical per item.
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += x[j];
    const float mean = static_cast<float>(sum / static_cast<double>(n));
    double var_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = static_cast<double>(x[j]) - mean;
      var_sum += d * d;
    }
    const float var = static_cast<float>(var_sum / static_cast<double>(n));
    const float is = 1.0f / std::sqrt(var + eps_);
    if (inv_sigma != nullptr) inv_sigma[r] = is;
    for (std::size_t j = 0; j < n; ++j) {
      const float xh = (x[j] - mean) * is;
      if (xhat != nullptr) xhat[r * n + j] = xh;
      o[j] = g[j] * xh + b[j];
    }
  }
}

Tensor LayerNorm::Infer(const Tensor& input) const {
  NEC_CHECK_MSG(
      input.rank() >= 1 && input.dim(input.rank() - 1) == features_,
      "LayerNorm expects last dim == " << features_);
  Tensor out(input.shape());
  NormalizeRows(input.data(), input.numel() / features_, out.data());
  return out;
}

Tensor LayerNorm::InferBatch(const Tensor& batch) const {
  // Row-wise and shape-preserving: a leading batch dim just folds into
  // the row count, so the batched path IS the per-item path.
  return Infer(batch);
}

Tensor LayerNorm::Forward(const Tensor& input) {
  NEC_CHECK_MSG(
      input.rank() >= 1 && input.dim(input.rank() - 1) == features_,
      "LayerNorm expects last dim == " << features_);
  const std::size_t rows = input.numel() / features_;
  Tensor out(input.shape());
  xhat_cache_ = Tensor(input.shape());
  inv_sigma_cache_.resize(rows);
  NormalizeRows(input.data(), rows, out.data(), xhat_cache_.data(),
                inv_sigma_cache_.data());
  last_elems_ = input.numel();
  return out;
}

Tensor LayerNorm::Backward(const Tensor& grad_output) {
  NEC_CHECK(grad_output.numel() == xhat_cache_.numel());
  const std::size_t n = features_;
  const std::size_t rows = xhat_cache_.numel() / n;
  const float* g = gain_.value.data();

  Tensor grad_input(grad_output.shape());
  for (std::size_t r = 0; r < rows; ++r) {
    const float* dy = grad_output.data() + r * n;
    const float* xh = xhat_cache_.data() + r * n;
    float* dx = grad_input.data() + r * n;
    const float is = inv_sigma_cache_[r];

    double sum_gdy = 0.0, sum_gdy_xh = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double gdy = static_cast<double>(g[j]) * dy[j];
      sum_gdy += gdy;
      sum_gdy_xh += gdy * xh[j];
      gain_.grad[j] += dy[j] * xh[j];
      bias_.grad[j] += dy[j];
    }
    const float mean_gdy =
        static_cast<float>(sum_gdy / static_cast<double>(n));
    const float mean_gdy_xh =
        static_cast<float>(sum_gdy_xh / static_cast<double>(n));
    for (std::size_t j = 0; j < n; ++j) {
      dx[j] = is * (g[j] * dy[j] - mean_gdy - xh[j] * mean_gdy_xh);
    }
  }
  return grad_input;
}

// ------------------------------------------------------------------ LSTM

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_(Tensor::KaimingNormal({4 * hidden_size, input_size}, rng,
                               input_size)),
      u_(Tensor::KaimingNormal({4 * hidden_size, hidden_size}, rng,
                               hidden_size)),
      b_(Tensor::Zeros({4 * hidden_size})) {
  NEC_CHECK(input_size >= 1 && hidden_size >= 1);
}

Tensor Lstm::Forward(const Tensor& input) {
  NEC_CHECK_MSG(input.rank() == 2 && input.dim(1) == input_size_,
                "Lstm expects (T, input_size)");
  const std::size_t T = input.dim(0);
  const std::size_t H = hidden_size_;

  Tensor out({T, H});
  std::vector<float> h(H, 0.0f), c(H, 0.0f), gates(4 * H);

  for (std::size_t t = 0; t < T; ++t) {
    // gates = W x_t + U h_{t-1} + b
    GemmNT(w_.value.data(), input.data() + t * input_size_, gates.data(),
           4 * H, 1, input_size_);
    GemmNT(u_.value.data(), h.data(), gates.data(), 4 * H, 1, H, 1.0f,
           1.0f);
    for (std::size_t j = 0; j < 4 * H; ++j) gates[j] += b_.value[j];

    for (std::size_t j = 0; j < H; ++j) {
      const float i_g = 1.0f / (1.0f + std::exp(-gates[j]));
      const float f_g = 1.0f / (1.0f + std::exp(-gates[H + j]));
      const float g_g = std::tanh(gates[2 * H + j]);
      const float o_g = 1.0f / (1.0f + std::exp(-gates[3 * H + j]));
      c[j] = f_g * c[j] + i_g * g_g;
      h[j] = o_g * std::tanh(c[j]);
      out.At(t, j) = h[j];
    }
  }
  last_macs_ = T * 4 * H * (input_size_ + H);
  return out;
}

Tensor Lstm::Backward(const Tensor&) {
  NEC_CHECK_MSG(false,
                "Lstm is forward-only (VoiceFilter runtime baseline)");
  return Tensor();
}

// ------------------------------------------------------------ Sequential

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

Tensor Sequential::Infer(const Tensor& input) const {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->Infer(x);
  return x;
}

Tensor Sequential::InferBatch(const Tensor& batch) const {
  Tensor x = batch;
  for (const auto& layer : layers_) x = layer->InferBatch(x);
  return x;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) params.push_back(p);
  }
  return params;
}

}  // namespace nec::nn
