#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "nn/gemm.h"

namespace nec::nn {

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w,
               std::size_t dilation_h, std::size_t dilation_w, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      dh_(dilation_h),
      dw_(dilation_w),
      weight_(Tensor::KaimingNormal(
          {out_channels, in_channels * kernel_h * kernel_w}, rng,
          in_channels * kernel_h * kernel_w)),
      bias_(Tensor::Zeros({out_channels})) {
  NEC_CHECK(in_channels >= 1 && out_channels >= 1);
  NEC_CHECK_MSG(kernel_h % 2 == 1 && kernel_w % 2 == 1,
                "same-padding Conv2D requires odd kernel sizes");
  NEC_CHECK(dilation_h >= 1 && dilation_w >= 1);
}

void Conv2D::Im2Col(const Tensor& input, std::vector<float>& col) const {
  const std::size_t h = input.dim(1), w = input.dim(2);
  const std::ptrdiff_t pad_h =
      static_cast<std::ptrdiff_t>(dh_ * (kh_ - 1) / 2);
  const std::ptrdiff_t pad_w =
      static_cast<std::ptrdiff_t>(dw_ * (kw_ - 1) / 2);
  const std::size_t k = in_channels_ * kh_ * kw_;

  float* out = col.data();
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      float* row = out + (y * w + x) * k;
      std::size_t idx = 0;
      for (std::size_t c = 0; c < in_channels_; ++c) {
        for (std::size_t ky = 0; ky < kh_; ++ky) {
          const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) +
                                    static_cast<std::ptrdiff_t>(ky * dh_) -
                                    pad_h;
          for (std::size_t kx = 0; kx < kw_; ++kx, ++idx) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x) +
                static_cast<std::ptrdiff_t>(kx * dw_) - pad_w;
            row[idx] =
                (sy >= 0 && sy < static_cast<std::ptrdiff_t>(h) && sx >= 0 &&
                 sx < static_cast<std::ptrdiff_t>(w))
                    ? input.At3(c, static_cast<std::size_t>(sy),
                                static_cast<std::size_t>(sx))
                    : 0.0f;
          }
        }
      }
    }
  }
}

Tensor Conv2D::Compute(const Tensor& input,
                       std::vector<float>& col) const {
  NEC_CHECK_MSG(input.rank() == 3 && input.dim(0) == in_channels_,
                "Conv2D expects (in_channels, H, W) input");
  const std::size_t h = input.dim(1), w = input.dim(2);
  const std::size_t pixels = h * w;
  const std::size_t k = in_channels_ * kh_ * kw_;

  // Grow-only scratch: the col matrix is MBs per layer per chunk, and a
  // fresh allocation each call pays mmap + first-touch page faults that
  // rival the GEMM itself. vector::resize keeps capacity when shrinking,
  // so one scratch serves consecutive layers of different (pixels, k)
  // and the streaming hot path stops allocating here after the first
  // chunk. Im2Col overwrites every element, so stale contents never leak.
  col.resize(pixels * k);
  Im2Col(input, col);

  // out(C_out, P) = weight(C_out, K) * col(P, K)^T
  Tensor out({out_channels_, h, w});
  GemmNT(weight_.value.data(), col.data(), out.data(), out_channels_,
         pixels, k);
  for (std::size_t c = 0; c < out_channels_; ++c) {
    const float b = bias_.value[c];
    float* oc = out.data() + c * pixels;
    for (std::size_t p = 0; p < pixels; ++p) oc[p] += b;
  }
  return out;
}

Tensor Conv2D::Forward(const Tensor& input) {
  Tensor out = Compute(input, col_cache_);
  in_h_ = input.dim(1);
  in_w_ = input.dim(2);
  last_macs_ = out_channels_ * in_h_ * in_w_ * in_channels_ * kh_ * kw_;
  return out;
}

Tensor Conv2D::Infer(const Tensor& input) const {
  // Per-thread scratch: Infer is const and shared across sessions, so a
  // member cache would race; a thread_local (shared by every Conv2D on
  // the thread, sized to the largest layer) keeps steady-state inference
  // allocation-free without locks. Bit-exactness is unaffected — the
  // scratch is fully rewritten (see Compute) before it is read.
  thread_local std::vector<float> col;
  return Compute(input, col);
}

Tensor Conv2D::Backward(const Tensor& grad_output) {
  NEC_CHECK_MSG(grad_output.rank() == 3 &&
                    grad_output.dim(0) == out_channels_ &&
                    grad_output.dim(1) == in_h_ &&
                    grad_output.dim(2) == in_w_,
                "Conv2D backward shape mismatch");
  const std::size_t pixels = in_h_ * in_w_;
  const std::size_t k = in_channels_ * kh_ * kw_;

  // grad_weight(C_out, K) += grad_out(C_out, P) * col(P, K)
  GemmNN(grad_output.data(), col_cache_.data(), weight_.grad.data(),
         out_channels_, k, pixels, 1.0f, 1.0f);

  // grad_bias += row sums of grad_out.
  for (std::size_t c = 0; c < out_channels_; ++c) {
    const float* gc = grad_output.data() + c * pixels;
    double acc = 0.0;
    for (std::size_t p = 0; p < pixels; ++p) acc += gc[p];
    bias_.grad[c] += static_cast<float>(acc);
  }

  // grad_col(P, K) = grad_out(C_out, P)^T * weight(C_out, K)
  Tensor grad_col({pixels, k});
  GemmTN(grad_output.data(), weight_.value.data(), grad_col.data(), pixels,
         k, out_channels_);

  // col2im scatter-add.
  Tensor grad_input({in_channels_, in_h_, in_w_});
  const std::ptrdiff_t pad_h =
      static_cast<std::ptrdiff_t>(dh_ * (kh_ - 1) / 2);
  const std::ptrdiff_t pad_w =
      static_cast<std::ptrdiff_t>(dw_ * (kw_ - 1) / 2);
  for (std::size_t y = 0; y < in_h_; ++y) {
    for (std::size_t x = 0; x < in_w_; ++x) {
      const float* row = grad_col.data() + (y * in_w_ + x) * k;
      std::size_t idx = 0;
      for (std::size_t c = 0; c < in_channels_; ++c) {
        for (std::size_t ky = 0; ky < kh_; ++ky) {
          const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) +
                                    static_cast<std::ptrdiff_t>(ky * dh_) -
                                    pad_h;
          for (std::size_t kx = 0; kx < kw_; ++kx, ++idx) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x) +
                static_cast<std::ptrdiff_t>(kx * dw_) - pad_w;
            if (sy >= 0 && sy < static_cast<std::ptrdiff_t>(in_h_) &&
                sx >= 0 && sx < static_cast<std::ptrdiff_t>(in_w_)) {
              grad_input.At3(c, static_cast<std::size_t>(sy),
                             static_cast<std::size_t>(sx)) += row[idx];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::KaimingNormal({out_features, in_features}, rng,
                                    in_features)),
      bias_(Tensor::Zeros({out_features})) {
  NEC_CHECK(in_features >= 1 && out_features >= 1);
}

Tensor Linear::Infer(const Tensor& input) const {
  NEC_CHECK_MSG(input.rank() == 2 && input.dim(1) == in_features_,
                "Linear expects (rows, in_features); got last dim "
                    << (input.rank() >= 1 ? input.dim(input.rank() - 1) : 0));
  const std::size_t rows = input.dim(0);

  Tensor out({rows, out_features_});
  GemmNT(input.data(), weight_.value.data(), out.data(), rows,
         out_features_, in_features_);
  for (std::size_t r = 0; r < rows; ++r) {
    float* orow = out.data() + r * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j)
      orow[j] += bias_.value[j];
  }
  return out;
}

Tensor Linear::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  input_cache_ = input;
  last_macs_ = input.dim(0) * out_features_ * in_features_;
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  const std::size_t rows = input_cache_.dim(0);
  NEC_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == rows &&
            grad_output.dim(1) == out_features_);

  // grad_weight(out, in) += grad_out(rows, out)^T * input(rows, in)
  GemmTN(grad_output.data(), input_cache_.data(), weight_.grad.data(),
         out_features_, in_features_, rows, 1.0f, 1.0f);

  for (std::size_t r = 0; r < rows; ++r) {
    const float* grow = grad_output.data() + r * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j)
      bias_.grad[j] += grow[j];
  }

  // grad_input(rows, in) = grad_out(rows, out) * weight(out, in)
  Tensor grad_input({rows, in_features_});
  GemmNN(grad_output.data(), weight_.value.data(), grad_input.data(), rows,
         in_features_, out_features_);
  return grad_input;
}

// ----------------------------------------------------------- Activations

Tensor ReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  for (float& v : out.vec()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor ReLU::Forward(const Tensor& input) {
  input_cache_ = input;
  return Infer(input);
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  NEC_CHECK(grad_output.numel() == input_cache_.numel());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (input_cache_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

Tensor Sigmoid::Infer(const Tensor& input) const {
  Tensor out = input;
  for (float& v : out.vec()) v = 1.0f / (1.0f + std::exp(-v));
  return out;
}

Tensor Sigmoid::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  output_cache_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  NEC_CHECK(grad_output.numel() == output_cache_.numel());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = output_cache_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

Tensor Tanh::Infer(const Tensor& input) const {
  Tensor out = input;
  for (float& v : out.vec()) v = std::tanh(v);
  return out;
}

Tensor Tanh::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  output_cache_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  NEC_CHECK(grad_output.numel() == output_cache_.numel());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = output_cache_[i];
    grad[i] *= 1.0f - y * y;
  }
  return grad;
}

// ------------------------------------------------------------------ LSTM

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_(Tensor::KaimingNormal({4 * hidden_size, input_size}, rng,
                               input_size)),
      u_(Tensor::KaimingNormal({4 * hidden_size, hidden_size}, rng,
                               hidden_size)),
      b_(Tensor::Zeros({4 * hidden_size})) {
  NEC_CHECK(input_size >= 1 && hidden_size >= 1);
}

Tensor Lstm::Forward(const Tensor& input) {
  NEC_CHECK_MSG(input.rank() == 2 && input.dim(1) == input_size_,
                "Lstm expects (T, input_size)");
  const std::size_t T = input.dim(0);
  const std::size_t H = hidden_size_;

  Tensor out({T, H});
  std::vector<float> h(H, 0.0f), c(H, 0.0f), gates(4 * H);

  for (std::size_t t = 0; t < T; ++t) {
    // gates = W x_t + U h_{t-1} + b
    GemmNT(w_.value.data(), input.data() + t * input_size_, gates.data(),
           4 * H, 1, input_size_);
    GemmNT(u_.value.data(), h.data(), gates.data(), 4 * H, 1, H, 1.0f,
           1.0f);
    for (std::size_t j = 0; j < 4 * H; ++j) gates[j] += b_.value[j];

    for (std::size_t j = 0; j < H; ++j) {
      const float i_g = 1.0f / (1.0f + std::exp(-gates[j]));
      const float f_g = 1.0f / (1.0f + std::exp(-gates[H + j]));
      const float g_g = std::tanh(gates[2 * H + j]);
      const float o_g = 1.0f / (1.0f + std::exp(-gates[3 * H + j]));
      c[j] = f_g * c[j] + i_g * g_g;
      h[j] = o_g * std::tanh(c[j]);
      out.At(t, j) = h[j];
    }
  }
  last_macs_ = T * 4 * H * (input_size_ + H);
  return out;
}

Tensor Lstm::Backward(const Tensor&) {
  NEC_CHECK_MSG(false,
                "Lstm is forward-only (VoiceFilter runtime baseline)");
  return Tensor();
}

// ------------------------------------------------------------ Sequential

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) params.push_back(p);
  }
  return params;
}

}  // namespace nec::nn
