// Optimizers for training the selector and the neural d-vector encoder.
#pragma once

#include <vector>

#include "nn/layers.h"

namespace nec::nn {

/// Adam optimizer (Kingma & Ba). Holds first/second moment state per
/// parameter; parameters are registered once and must outlive the optimizer.
class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;   ///< decoupled (AdamW-style) decay
    float grad_clip = 0.0f;      ///< global-norm clip; 0 disables
  };

  Adam(std::vector<Param*> params, const Options& options);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all parameter gradients without updating.
  void ZeroGrad();

  /// Global L2 norm of all gradients (diagnostic; also used by clipping).
  float GradNorm() const;

  Options& options() { return options_; }
  long step_count() const { return step_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  Options options_;
  long step_ = 0;
};

}  // namespace nec::nn
