// Leveled, rate-limited structured logging.
//
// Replaces the scattered std::printf in model_cache/trainer and necd's
// ad-hoc fprintf with one sink that can emit human text or JSON lines
// (one object per line — jq/Loki-friendly) and can be filtered globally
// or per component ("trainer", "model_cache", "necd", "runtime").
//
// Design points:
//   * LogEnabled is the hot-path gate: one relaxed atomic load when no
//     per-component override exists. The NEC_LOG macros evaluate their
//     format arguments only after the gate passes.
//   * Formatting + sink IO run under a mutex — logging is a control-plane
//     path (startup, faults, training progress), never per-sample.
//   * Rate limiting is per call site: a static LogRateLimit token bucket
//     in the NEC_LOG_EVERY macro suppresses floods (e.g. a fault storm)
//     and reports how many messages it swallowed when it re-opens.
//   * Tests capture records via SetLogCapture instead of scraping stderr.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace nec::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* LogLevelName(LogLevel level);

/// Parses "trace|debug|info|warn|error|off"; false on unknown names.
bool ParseLogLevel(std::string_view name, LogLevel* out);

enum class LogFormat { kText, kJson };

/// One emitted log record (what a capture sink sees).
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  std::uint64_t suppressed = 0;  ///< messages a rate limit swallowed before
};

/// Global minimum level (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Per-component override; kOff silences a component entirely. Overrides
/// win over the global level in both directions.
void SetComponentLogLevel(const std::string& component, LogLevel level);
void ClearComponentLogLevels();

void SetLogFormat(LogFormat format);

/// Output stream for formatted records (default stderr). Not owned.
void SetLogFile(std::FILE* file);

/// Captures records instead of writing them to the log file (nullptr
/// restores file output). Test hook; called under the logger mutex.
void SetLogCapture(std::function<void(const LogRecord&)> capture);

/// The hot-path gate: true when a record at `level` for `component` would
/// be emitted.
bool LogEnabled(const char* component, LogLevel level);

/// Emits a preformatted record (gate NOT rechecked).
void LogWrite(const char* component, LogLevel level, std::string message,
              std::uint64_t suppressed = 0);

/// printf-style convenience over LogWrite.
#if defined(__GNUC__)
__attribute__((format(printf, 4, 5)))
#endif
void Logf(const char* component, LogLevel level, std::uint64_t suppressed,
          const char* format, ...);

/// Token-bucket rate limiter for one log site. `per_second` tokens refill
/// continuously up to `burst`; Allow() reports (and resets) how many calls
/// were suppressed since it last returned true. Thread-safe.
class LogRateLimit {
 public:
  explicit LogRateLimit(double per_second, double burst = 5.0);

  bool Allow(std::uint64_t* suppressed_before);

  /// Test hook: advance the refill clock manually by `seconds`.
  void AdvanceForTest(double seconds);

 private:
  bool AllowAt(std::uint64_t now_ns, std::uint64_t* suppressed_before);

  const double per_second_;
  const double burst_;
  std::uint64_t last_ns_;  // guarded by mu_ (all below)
  double tokens_;
  std::uint64_t suppressed_ = 0;
  std::mutex mu_;
};

#define NEC_LOG(component, level, ...)                               \
  do {                                                               \
    if (::nec::obs::LogEnabled((component), (level))) {              \
      ::nec::obs::Logf((component), (level), 0, __VA_ARGS__);        \
    }                                                                \
  } while (0)

#define NEC_LOG_DEBUG(component, ...) \
  NEC_LOG(component, ::nec::obs::LogLevel::kDebug, __VA_ARGS__)
#define NEC_LOG_INFO(component, ...) \
  NEC_LOG(component, ::nec::obs::LogLevel::kInfo, __VA_ARGS__)
#define NEC_LOG_WARN(component, ...) \
  NEC_LOG(component, ::nec::obs::LogLevel::kWarn, __VA_ARGS__)
#define NEC_LOG_ERROR(component, ...) \
  NEC_LOG(component, ::nec::obs::LogLevel::kError, __VA_ARGS__)

/// Rate-limited site: at most `per_second` records/s (burst 5) from THIS
/// macro expansion; the first record after a suppression window carries
/// the swallowed count.
#define NEC_LOG_EVERY(component, level, per_second, ...)                   \
  do {                                                                     \
    if (::nec::obs::LogEnabled((component), (level))) {                    \
      static ::nec::obs::LogRateLimit nec_log_rl_(per_second);             \
      std::uint64_t nec_log_suppressed_ = 0;                               \
      if (nec_log_rl_.Allow(&nec_log_suppressed_)) {                       \
        ::nec::obs::Logf((component), (level), nec_log_suppressed_,        \
                         __VA_ARGS__);                                     \
      }                                                                    \
    }                                                                      \
  } while (0)

}  // namespace nec::obs
