#include "obs/log.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <ctime>
#include <map>
#include <vector>

#include "obs/trace.h"

namespace nec::obs {
namespace {

struct LoggerState {
  std::mutex mu;
  std::map<std::string, LogLevel> component_levels;  // guarded by mu
  LogFormat format = LogFormat::kText;               // guarded by mu
  std::FILE* file = nullptr;                         // nullptr = stderr
  std::function<void(const LogRecord&)> capture;     // guarded by mu
};

LoggerState& State() {
  static LoggerState* s = new LoggerState;
  return *s;
}

// Fast-path gates: LogEnabled must not take the mutex when no component
// override exists (the common case).
std::atomic<int> g_global_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_num_overrides{0};

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Wall-clock timestamp "2026-08-07T12:00:00.123Z".
std::string WallTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

void SetLogLevel(LogLevel level) {
  g_global_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      g_global_level.load(std::memory_order_relaxed));
}

void SetComponentLogLevel(const std::string& component, LogLevel level) {
  LoggerState& s = State();
  std::lock_guard lock(s.mu);
  s.component_levels[component] = level;
  g_num_overrides.store(static_cast<int>(s.component_levels.size()),
                        std::memory_order_relaxed);
}

void ClearComponentLogLevels() {
  LoggerState& s = State();
  std::lock_guard lock(s.mu);
  s.component_levels.clear();
  g_num_overrides.store(0, std::memory_order_relaxed);
}

void SetLogFormat(LogFormat format) {
  LoggerState& s = State();
  std::lock_guard lock(s.mu);
  s.format = format;
}

void SetLogFile(std::FILE* file) {
  LoggerState& s = State();
  std::lock_guard lock(s.mu);
  s.file = file;
}

void SetLogCapture(std::function<void(const LogRecord&)> capture) {
  LoggerState& s = State();
  std::lock_guard lock(s.mu);
  s.capture = std::move(capture);
}

bool LogEnabled(const char* component, LogLevel level) {
  const int lvl = static_cast<int>(level);
  if (g_num_overrides.load(std::memory_order_relaxed) == 0) {
    return lvl >= g_global_level.load(std::memory_order_relaxed);
  }
  LoggerState& s = State();
  std::lock_guard lock(s.mu);
  const auto it = s.component_levels.find(component);
  const int threshold = it != s.component_levels.end()
                            ? static_cast<int>(it->second)
                            : g_global_level.load(std::memory_order_relaxed);
  return lvl >= threshold;
}

void LogWrite(const char* component, LogLevel level, std::string message,
              std::uint64_t suppressed) {
  LogRecord record{level, component, std::move(message), suppressed};
  LoggerState& s = State();
  std::lock_guard lock(s.mu);
  if (s.capture) {
    s.capture(record);
    return;
  }
  std::FILE* out = s.file != nullptr ? s.file : stderr;
  std::string line;
  line.reserve(record.message.size() + 96);
  if (s.format == LogFormat::kJson) {
    line += "{\"ts\":\"";
    line += WallTimestamp();
    line += "\",\"level\":\"";
    line += LogLevelName(level);
    line += "\",\"component\":\"";
    AppendEscaped(line, record.component);
    line += "\",\"msg\":\"";
    AppendEscaped(line, record.message);
    line += "\"";
    if (suppressed > 0) {
      line += ",\"suppressed\":";
      line += std::to_string(suppressed);
    }
    line += "}\n";
  } else {
    line += WallTimestamp();
    line += ' ';
    const char* name = LogLevelName(level);
    line += name;
    line.append(5 > std::strlen(name) ? 5 - std::strlen(name) : 0, ' ');
    line += " [";
    line += record.component;
    line += "] ";
    line += record.message;
    if (suppressed > 0) {
      line += " (";
      line += std::to_string(suppressed);
      line += " suppressed)";
    }
    line += '\n';
  }
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

void Logf(const char* component, LogLevel level, std::uint64_t suppressed,
          const char* format, ...) {
  char stack_buf[512];
  std::va_list args;
  va_start(args, format);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(stack_buf, sizeof stack_buf, format, args);
  va_end(args);
  std::string message;
  if (n < 0) {
    message = "(log format error)";
    va_end(args_copy);
  } else if (static_cast<std::size_t>(n) < sizeof stack_buf) {
    message.assign(stack_buf, static_cast<std::size_t>(n));
    va_end(args_copy);
  } else {
    std::vector<char> big(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(big.data(), big.size(), format, args_copy);
    va_end(args_copy);
    message.assign(big.data(), static_cast<std::size_t>(n));
  }
  LogWrite(component, level, std::move(message), suppressed);
}

LogRateLimit::LogRateLimit(double per_second, double burst)
    : per_second_(std::max(0.0, per_second)),
      burst_(std::max(1.0, burst)),
      last_ns_(TraceNowNs()),
      tokens_(burst_) {}

bool LogRateLimit::Allow(std::uint64_t* suppressed_before) {
  return AllowAt(TraceNowNs(), suppressed_before);
}

void LogRateLimit::AdvanceForTest(double seconds) {
  // Credits the refill directly instead of rewinding last_ns_: the steady
  // clock anchor is process start, so early in a process there may be no
  // room to rewind a full interval.
  std::lock_guard lock(mu_);
  tokens_ = std::min(burst_,
                     tokens_ + std::max(0.0, seconds) * per_second_);
}

bool LogRateLimit::AllowAt(std::uint64_t now_ns,
                           std::uint64_t* suppressed_before) {
  std::lock_guard lock(mu_);
  const double elapsed_s =
      now_ns > last_ns_ ? static_cast<double>(now_ns - last_ns_) / 1e9 : 0.0;
  last_ns_ = now_ns;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * per_second_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    *suppressed_before = suppressed_;
    suppressed_ = 0;
    return true;
  }
  ++suppressed_;
  return false;
}

}  // namespace nec::obs
