// Pipeline tracing: wait-free per-thread span recording, exported as
// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing).
//
// The runtime's aggregate RuntimeStats quantiles say *that* a chunk was
// slow; a trace says *where* it spent its time — STFT vs. selector forward
// vs. inverse STFT vs. AM modulation, and in the serving layer submit →
// coalesce → batch dispatch → strand run. Every pipeline stage wraps
// itself in NEC_TRACE_SPAN(name); the recorder timestamps the scope with a
// steady nanosecond clock and appends one fixed-size event to the calling
// thread's private ring buffer. Batch spans carry flow ids that link the
// batched selector forward back to each member chunk's completion span.
//
// Cost contract (verified by bench_obs_overhead): tracing is compiled in
// everywhere but DISABLED by default, and a disabled span site costs one
// relaxed atomic load plus a predictable branch — no clock read, no
// allocation, no store. Enabled recording is wait-free: each thread owns
// its ring (registered once per thread under a mutex), so recording never
// contends with other threads or perturbs the latencies being measured.
// When a ring wraps, the oldest events are overwritten and counted as
// dropped — a trace is a recent-history window, not an unbounded log.
//
// Snapshot contract: WriteChromeTrace / events_recorded / events_dropped
// are safe to call WHILE other threads record — each ring carries a tiny
// spinlock that the owner takes per event and the exporter takes per ring
// copy, so a live `GET /trace` sees a consistent recent-history window
// without stopping the daemon. Enable / Disable / Clear remain
// control-plane calls: invoke them with no concurrent span recording
// (necd flips tracing at startup, tests after joining their threads).
// The enabled() flip itself is safe at any time — in-flight TraceSpans
// that observed the old value simply finish (or skip) their one event.
//
// Flow ids are process-salted: NextFlowId() packs a per-process random
// salt in the high 32 bits and a counter in the low 32, so flows minted
// by different fleet members never collide when `necctl trace` merges
// their rings into one file. A flow id carried over the wire
// (kTraceContext) keeps its origin's salt end to end.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace nec::obs {

namespace internal {
struct ThreadRing;  // one thread's private event ring (trace.cpp)
}  // namespace internal

/// Steady nanoseconds since an arbitrary process-wide anchor. One clock
/// read; the common currency between spans and ModuleTimings-style ms
/// accounting (ns / 1e6 is the ms the rest of the codebase reports).
std::uint64_t TraceNowNs();

enum class TraceEventKind : std::uint8_t {
  kSpan,       ///< complete duration event (Chrome "X")
  kInstant,    ///< point-in-time marker (Chrome "i"), e.g. a fault
  kFlowBegin,  ///< flow arrow tail (Chrome "s"), e.g. chunk enqueued
  kFlowEnd,    ///< flow arrow head (Chrome "f"), e.g. chunk completed
};

/// One recorded event. POD on purpose: recording is a struct copy into the
/// thread's ring. `name`/`category` must point at static-storage strings
/// (string literals) — the export may run long after the scope ended.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  ///< TraceNowNs() at scope entry
  std::uint64_t dur_ns = 0;    ///< kSpan only
  std::uint64_t flow_id = 0;   ///< nonzero links events across threads
  std::uint64_t arg = kNoArg;  ///< numeric payload (session id, batch size)
  std::uint32_t tid = 0;       ///< dense per-process thread index
  TraceEventKind kind = TraceEventKind::kSpan;

  static constexpr std::uint64_t kNoArg = ~std::uint64_t{0};
};

/// Process-wide trace recorder (mirrors FaultInjector::Global()).
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  static TraceRecorder& Global();

  /// Arms span recording. Rings (existing and future) hold
  /// `ring_capacity` events each; an already-registered thread's ring is
  /// cleared and resized. Quiescence contract applies.
  void Enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void Disable();

  /// The only cost at a disabled span site.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fresh nonzero flow id for linking events across threads — and, via
  /// the per-process salt in the high bits, across processes.
  std::uint64_t NextFlowId();

  /// Appends a complete span with explicit timestamps. No-op while
  /// disabled. Wait-free after the calling thread's first record. Explicit
  /// timestamps let a caller that already timed an interval (ModuleTimings
  /// accounting in core::StreamingProcessor) feed the same clock reads to
  /// both the aggregate counters and the trace.
  void RecordSpan(const char* name, const char* category,
                  std::uint64_t start_ns, std::uint64_t dur_ns,
                  std::uint64_t flow_id = 0,
                  std::uint64_t arg = TraceEvent::kNoArg);

  /// Appends an instant marker stamped now. No-op while disabled.
  void RecordInstant(const char* name, const char* category,
                     std::uint64_t arg = TraceEvent::kNoArg);

  /// Appends a flow endpoint stamped now. No-op while disabled.
  void RecordFlow(TraceEventKind kind, const char* name,
                  std::uint64_t flow_id);

  /// Names the calling thread in the exported trace ("worker-0",
  /// "coalescer"). Safe any time; `name` must be static-storage.
  static void SetThreadName(const char* name);

  /// Discards every recorded event (ring contents + drop counters).
  /// Quiescence contract applies.
  void Clear();

  /// Events currently held across all rings.
  std::uint64_t events_recorded() const;
  /// Events overwritten by ring wraparound (recorded - held).
  std::uint64_t events_dropped() const;

  /// Writes `{"traceEvents": [...]}` Chrome trace JSON: one "M" metadata
  /// event per named thread, then every held event in ring order.
  /// Timestamps are microseconds (`ts`/`dur`), pid is fixed at 1 (the
  /// cross-process merger in necctl remaps it per source). Safe while
  /// other threads record — each ring is copied under its snapshot lock.
  void WriteChromeTrace(std::ostream& os) const;

  /// WriteChromeTrace to a string (tests, small traces).
  std::string ChromeTraceJson() const;

 private:
  TraceRecorder() = default;

  internal::ThreadRing* RingForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_flow_id_{0};
};

/// RAII span scope. Construction latches enabled() once — one relaxed
/// load — and reads the clock only when tracing is on; destruction records
/// the complete span. SetFlow links the span to a flow arrow.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "nec",
                     std::uint64_t arg = TraceEvent::kNoArg)
      : start_ns_(TraceRecorder::Global().enabled() ? TraceNowNs() : 0),
        name_(name),
        category_(category),
        arg_(arg) {}

  ~TraceSpan() {
    if (start_ns_ != 0) {
      TraceRecorder::Global().RecordSpan(name_, category_, start_ns_,
                                         TraceNowNs() - start_ns_, flow_id_,
                                         arg_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void SetFlow(std::uint64_t flow_id) { flow_id_ = flow_id; }
  void SetArg(std::uint64_t arg) { arg_ = arg; }
  /// True when this scope is actually recording (tracing was enabled).
  bool armed() const { return start_ns_ != 0; }

 private:
  const std::uint64_t start_ns_;
  const char* name_;
  const char* category_;
  std::uint64_t flow_id_ = 0;
  std::uint64_t arg_;
};

#define NEC_OBS_CAT2(a, b) a##b
#define NEC_OBS_CAT(a, b) NEC_OBS_CAT2(a, b)

/// Scoped span for the enclosing block. `name` must be a string literal.
#define NEC_TRACE_SPAN(name) \
  ::nec::obs::TraceSpan NEC_OBS_CAT(nec_trace_span_, __LINE__)(name)
#define NEC_TRACE_SPAN_ARG(name, arg) \
  ::nec::obs::TraceSpan NEC_OBS_CAT(nec_trace_span_, __LINE__)(name, "nec", \
                                                               (arg))

/// Instant marker (fault, demotion, drop). Cheap call; checks enabled()
/// internally — use freely on cold paths.
inline void TraceInstant(const char* name,
                         std::uint64_t arg = TraceEvent::kNoArg) {
  TraceRecorder& r = TraceRecorder::Global();
  if (r.enabled()) r.RecordInstant(name, "nec", arg);
}

}  // namespace nec::obs
