#include "obs/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/log.h"

namespace nec::obs {
namespace {

constexpr const char* kComponent = "obs.http";

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Reads until the end of the request headers ("\r\n\r\n") or a small
/// cap; we never need a body for GET.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[2048];
  while (head->size() < 16 * 1024) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 2000);
    if (pr <= 0) return false;  // timeout or error
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    head->append(buf, static_cast<std::size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

}  // namespace

MetricsServer::MetricsServer() = default;

MetricsServer::~MetricsServer() { Stop(); }

void MetricsServer::Handle(std::string path, HttpHandler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

bool MetricsServer::Start(const Options& options, std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad listen address: " + options.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    *error = std::string("bind ") + options.host + ":" +
             std::to_string(options.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  NEC_LOG_INFO(kComponent, "metrics server listening on %s:%d",
               options.host.c_str(), port_);
  return true;
}

void MetricsServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);  // 100ms tick re-checks stop_
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsServer::HandleConnection(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) return;

  // Request line: METHOD SP target SP version.
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  HttpResponse resp;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp.status = 400;
    resp.body = "malformed request\n";
    WriteAll(fd, RenderResponse(resp));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
    WriteAll(fd, RenderResponse(resp));
    return;
  }
  std::string query;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    query = target.substr(qpos + 1);
    target.resize(qpos);
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& [path, handler] : handlers_) {
    if (path == target) {
      resp = handler(target, query);
      WriteAll(fd, RenderResponse(resp));
      return;
    }
  }
  resp.status = 404;
  resp.body = "no handler for " + target + "\n";
  WriteAll(fd, RenderResponse(resp));
}

bool HttpGet(const std::string& host, int port, const std::string& path,
             std::string* body, int* status, std::string* error,
             const HttpGetOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host (only IPv4 literals and localhost): " + host;
    ::close(fd);
    return false;
  }
  const std::string where = resolved + ":" + std::to_string(port);
  // Non-blocking connect bounded by connect_timeout_ms, so a dead
  // process ("connection refused") and an unreachable one ("connect
  // timed out") produce distinct, immediate errors instead of hanging.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      *error = std::string("connect ") + where + ": " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    struct pollfd pfd{fd, POLLOUT, 0};
    int pr;
    do {
      pr = ::poll(&pfd, 1, options.connect_timeout_ms);
    } while (pr < 0 && errno == EINTR);
    if (pr == 0) {
      *error = std::string("connect ") + where + ": connect timed out after " +
               std::to_string(options.connect_timeout_ms) + " ms";
      ::close(fd);
      return false;
    }
    int so_error = 0;
    socklen_t so_len = sizeof so_error;
    if (pr < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0 ||
        so_error != 0) {
      *error = std::string("connect ") + where + ": " +
               std::strerror(so_error != 0 ? so_error : errno);
      ::close(fd);
      return false;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " +
                              resolved + "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    *error = "send failed";
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, options.read_timeout_ms);
    if (pr <= 0) {
      *error = std::string("read ") + where + ": timed out after " +
               std::to_string(options.read_timeout_ms) + " ms";
      ::close(fd);
      return false;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      *error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t sp = response.find(' ');
  if (response.compare(0, 5, "HTTP/") != 0 || sp == std::string::npos) {
    *error = "not an HTTP response";
    return false;
  }
  *status = std::atoi(response.c_str() + sp + 1);
  const std::size_t body_at = response.find("\r\n\r\n");
  *body = body_at == std::string::npos ? "" : response.substr(body_at + 4);
  return true;
}

bool HttpGet(const std::string& host, int port, const std::string& path,
             std::string* body, int* status, std::string* error) {
  return HttpGet(host, port, path, body, status, error, HttpGetOptions{});
}

bool ParseHttpUrl(const std::string& url, std::string* host, int* port,
                  std::string* path) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.compare(0, scheme.size(), scheme) == 0) {
    rest = rest.substr(scheme.size());
  } else if (rest.find("://") != std::string::npos) {
    return false;  // https or other schemes unsupported
  }
  *port = 9464;
  *path = "/";
  const std::size_t slash = rest.find('/');
  if (slash != std::string::npos) {
    *path = rest.substr(slash);
    rest.resize(slash);
  }
  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    *port = std::atoi(rest.c_str() + colon + 1);
    rest.resize(colon);
  }
  if (rest.empty() || *port <= 0 || *port > 65535) return false;
  *host = rest;
  return true;
}

}  // namespace nec::obs
