// Minimal single-threaded HTTP/1.1 listener for metrics/health endpoints.
//
// Scope: GET-only, one request per connection, loopback by default. This
// is a scrape target for Prometheus and `necctl stats`, not a web server.
// The listener runs on one background thread with a poll loop; handlers
// execute on that thread, so they must be quick and must only touch
// thread-safe state (RuntimeStats snapshots are).
//
// Binding port 0 picks an ephemeral port; `port()` reports the real one
// (tests and `necd --metrics-port 0` use this).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace nec::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one path. `query` is the raw string after '?' (may be
/// empty); the return value is written back verbatim.
using HttpHandler =
    std::function<HttpResponse(const std::string& path,
                               const std::string& query)>;

class MetricsServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; see port() after Start()
  };

  MetricsServer();
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Registers a handler for an exact path ("/metrics"). Must be called
  /// before Start().
  void Handle(std::string path, HttpHandler handler);

  /// Binds + listens + spawns the serving thread. Returns false (with a
  /// reason in *error) if the socket can't be bound.
  bool Start(const Options& options, std::string* error);

  /// Stops the serving thread and closes the socket. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  std::vector<std::pair<std::string, HttpHandler>> handlers_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  int port_ = 0;
};

/// Deadlines for HttpGet. Connect uses a non-blocking connect + poll so
/// "connection refused" (dead process) and "connect timed out" (black
/// hole / wrong host) come back as distinct error messages; read is the
/// per-poll inactivity budget while receiving the response.
struct HttpGetOptions {
  int connect_timeout_ms = 2000;
  int read_timeout_ms = 5000;
};

/// Blocking HTTP GET against http://host:port/path. Used by `necctl
/// stats`, the router health prober, and tests; no TLS, no redirects.
/// Returns false with a reason in *error on connect/protocol failure;
/// fills *body with the response payload (any status) and *status with
/// the status code.
bool HttpGet(const std::string& host, int port, const std::string& path,
             std::string* body, int* status, std::string* error,
             const HttpGetOptions& options);
bool HttpGet(const std::string& host, int port, const std::string& path,
             std::string* body, int* status, std::string* error);

/// Splits "http://host:port/path" (scheme optional). Returns false on
/// malformed input. Defaults: port 9464, path "/".
bool ParseHttpUrl(const std::string& url, std::string* host, int* port,
                  std::string* path);

}  // namespace nec::obs
