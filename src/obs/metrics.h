// Neutral metrics data model + Prometheus/JSON exposition.
//
// The runtime's RuntimeStatsSnapshot (and anything else that wants to be
// scraped) converts itself into a vector of MetricFamily — the same shape
// the Prometheus exposition format describes — and the renderers here turn
// that into the text format a Prometheus/VictoriaMetrics scraper ingests,
// or a JSON document for humans and ad-hoc tooling. ParsePrometheusText
// is the inverse for the text format: necctl uses it to pretty-print a
// scraped endpoint, and tests use it as an exposition-format lint
// (TYPE-before-samples, monotone histogram buckets, le="+Inf" == count).
//
// Histograms carry the FULL bucket surface — cumulative counts per upper
// bound, Prometheus-style — not just pre-derived quantiles, so a scraper
// can aggregate across processes and compute any quantile server-side.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nec::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Histogram in Prometheus form: `cumulative[i]` counts observations
/// <= upper_bounds[i]; the implicit +Inf bucket equals `count`.
struct HistogramData {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One sample of a family (a label combination).
struct Metric {
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;        ///< counter/gauge
  HistogramData histogram;   ///< histogram families only
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<Metric> metrics;
};

// ------------------------------------------------------------ builders

MetricFamily MakeCounter(std::string name, std::string help, double value);
MetricFamily MakeGauge(std::string name, std::string help, double value);

// ------------------------------------------------------------ rendering

/// Prometheus exposition text (version 0.0.4): # HELP / # TYPE headers,
/// `_bucket{le=...}` / `_sum` / `_count` series for histograms.
std::string RenderPrometheusText(std::span<const MetricFamily> families);

/// The same families as one JSON object:
/// {"families":[{"name":...,"type":...,"help":...,"metrics":[...]}]}.
std::string RenderMetricsJson(std::span<const MetricFamily> families);

/// Escapes a string for embedding in a JSON document (no quotes added).
std::string JsonEscape(std::string_view s);

// ------------------------------------------------------------- parsing

/// Parses (and lints) Prometheus exposition text back into families.
/// Enforces: TYPE known and declared at most once per family, samples
/// only for declared-or-untyped families, histogram buckets cumulative
/// (non-decreasing), le="+Inf" bucket present and equal to `_count` —
/// checked per label set: a histogram family carries one Metric per
/// distinct non-le label combination. Label values are unescaped
/// (\\, \", \n), so values containing '}' or quotes round-trip. A family
/// whose TYPE line has no samples yet parses as an empty family (legal
/// exposition; fleet merges rely on it). Returns false with a diagnostic
/// in `*error` on the first violation.
bool ParsePrometheusText(const std::string& text,
                         std::vector<MetricFamily>* families,
                         std::string* error);

/// Quantile (0..1) from a cumulative histogram: the upper bound of the
/// bucket where the CDF crosses p (matches LatencyHistogram::Quantiles
/// semantics). Returns 0 for an empty histogram.
double HistogramQuantile(const HistogramData& h, double p);

}  // namespace nec::obs
