#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

namespace nec::obs {
namespace {

/// %.10g keeps integers exact (counters) and doubles compact.
std::string NumberToString(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, and newline
/// must be escaped (exposition format 0.0.4). Fleet label values carry
/// arbitrary shard addresses and error strings, so this is load-bearing,
/// not insurance.
void AppendEscapedLabelValue(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void AppendLabels(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string* extra_key = nullptr,
    const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    AppendEscapedLabelValue(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += *extra_key;
    out += "=\"";
    AppendEscapedLabelValue(out, *extra_value);
    out += '"';
  }
  out += '}';
}

}  // namespace

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

MetricFamily MakeCounter(std::string name, std::string help, double value) {
  MetricFamily f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.type = MetricType::kCounter;
  f.metrics.push_back(Metric{.value = value});
  return f;
}

MetricFamily MakeGauge(std::string name, std::string help, double value) {
  MetricFamily f = MakeCounter(std::move(name), std::move(help), value);
  f.type = MetricType::kGauge;
  return f;
}

std::string RenderPrometheusText(std::span<const MetricFamily> families) {
  std::string out;
  const std::string le = "le";
  for (const MetricFamily& f : families) {
    if (!f.help.empty()) {
      out += "# HELP ";
      out += f.name;
      out += ' ';
      out += f.help;
      out += '\n';
    }
    out += "# TYPE ";
    out += f.name;
    out += ' ';
    out += MetricTypeName(f.type);
    out += '\n';
    for (const Metric& m : f.metrics) {
      if (f.type != MetricType::kHistogram) {
        out += f.name;
        AppendLabels(out, m.labels);
        out += ' ';
        out += NumberToString(m.value);
        out += '\n';
        continue;
      }
      const HistogramData& h = m.histogram;
      for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
        out += f.name;
        out += "_bucket";
        const std::string bound = NumberToString(h.upper_bounds[i]);
        AppendLabels(out, m.labels, &le, &bound);
        out += ' ';
        out += std::to_string(h.cumulative[i]);
        out += '\n';
      }
      out += f.name;
      out += "_bucket";
      const std::string inf = "+Inf";
      AppendLabels(out, m.labels, &le, &inf);
      out += ' ';
      out += std::to_string(h.count);
      out += '\n';
      out += f.name;
      out += "_sum";
      AppendLabels(out, m.labels);
      out += ' ';
      out += NumberToString(h.sum);
      out += '\n';
      out += f.name;
      out += "_count";
      AppendLabels(out, m.labels);
      out += ' ';
      out += std::to_string(h.count);
      out += '\n';
    }
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderMetricsJson(std::span<const MetricFamily> families) {
  std::string out = "{\"families\":[";
  bool first_family = true;
  for (const MetricFamily& f : families) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"" + JsonEscape(f.name) + "\",\"type\":\"";
    out += MetricTypeName(f.type);
    out += "\",\"help\":\"" + JsonEscape(f.help) + "\",\"metrics\":[";
    bool first_metric = true;
    for (const Metric& m : f.metrics) {
      if (!first_metric) out += ',';
      first_metric = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : m.labels) {
        if (!first_label) out += ',';
        first_label = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out += '}';
      if (f.type == MetricType::kHistogram) {
        const HistogramData& h = m.histogram;
        out += ",\"count\":" + std::to_string(h.count);
        out += ",\"sum\":" + NumberToString(h.sum);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          if (i > 0) out += ',';
          out += "{\"le\":" + NumberToString(h.upper_bounds[i]) +
                 ",\"cumulative\":" + std::to_string(h.cumulative[i]) + "}";
        }
        out += ']';
      } else {
        out += ",\"value\":" + NumberToString(m.value);
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

double HistogramQuantile(const HistogramData& h, double p) {
  if (h.count == 0) return 0.0;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(p, 0.0, 1.0) * static_cast<double>(h.count)));
  for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
    if (h.cumulative[i] >= rank) return h.upper_bounds[i];
  }
  return h.upper_bounds.empty() ? 0.0 : h.upper_bounds.back();
}

// --------------------------------------------------------------- parser

namespace {

struct ParsedSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

bool ParseSampleLine(const std::string& line, ParsedSample* out,
                     std::string* error) {
  std::size_t i = line.find_first_of("{ \t");
  if (i == std::string::npos || i == 0) {
    *error = "malformed sample line: " + line;
    return false;
  }
  out->name = line.substr(0, i);
  out->labels.clear();
  if (line[i] == '{') {
    // Scan label pairs one character at a time: label VALUES may contain
    // '}', ',', and escaped quotes (\\, \", \n per the exposition
    // format), so the closing brace cannot be located with find().
    std::size_t p = i + 1;
    for (;;) {
      while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
      if (p >= line.size()) {
        *error = "unterminated label set: " + line;
        return false;
      }
      if (line[p] == '}') {
        ++p;
        break;
      }
      const std::size_t eq = line.find('=', p);
      if (eq == std::string::npos) {
        *error = "malformed label: " + line;
        return false;
      }
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        *error = "unquoted label value: " + line;
        return false;
      }
      std::string value;
      std::size_t q = eq + 2;
      bool closed = false;
      while (q < line.size()) {
        const char c = line[q];
        if (c == '\\' && q + 1 < line.size()) {
          const char esc = line[q + 1];
          if (esc == '\\') {
            value += '\\';
          } else if (esc == '"') {
            value += '"';
          } else if (esc == 'n') {
            value += '\n';
          } else {
            value += '\\';
            value += esc;
          }
          q += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          break;
        }
        value += c;
        ++q;
      }
      if (!closed) {
        *error = "unterminated label value: " + line;
        return false;
      }
      out->labels.emplace_back(line.substr(p, eq - p), std::move(value));
      p = q + 1;
      if (p < line.size() && line[p] == ',') ++p;
    }
    i = p;
  }
  const std::string value_text = line.substr(i);
  const std::size_t v0 = value_text.find_first_not_of(" \t");
  if (v0 == std::string::npos) {
    *error = "sample without a value: " + line;
    return false;
  }
  const std::string v = value_text.substr(v0);
  if (v == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  out->value = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) {
    *error = "unparsable value '" + v + "' in: " + line;
    return false;
  }
  return true;
}

/// Strips a histogram series suffix; returns the family name and which
/// series kind the sample belongs to.
enum class SeriesKind { kPlain, kBucket, kSum, kCount };

std::string FamilyNameOf(const std::string& sample_name,
                         const std::map<std::string, MetricFamily*>& hists,
                         SeriesKind* kind) {
  *kind = SeriesKind::kPlain;
  for (const auto& [suffix, k] :
       {std::pair<const char*, SeriesKind>{"_bucket", SeriesKind::kBucket},
        {"_sum", SeriesKind::kSum},
        {"_count", SeriesKind::kCount}}) {
    const std::size_t len = std::strlen(suffix);
    if (sample_name.size() > len &&
        sample_name.compare(sample_name.size() - len, len, suffix) == 0) {
      const std::string base = sample_name.substr(0, sample_name.size() - len);
      if (hists.count(base) != 0) {
        *kind = k;
        return base;
      }
    }
  }
  return sample_name;
}

}  // namespace

bool ParsePrometheusText(const std::string& text,
                         std::vector<MetricFamily>* families,
                         std::string* error) {
  families->clear();
  std::map<std::string, MetricFamily*> by_name;
  std::map<std::string, MetricFamily*> histograms;
  // Reserve-free two-pass is overkill; use stable storage via deque-like
  // indices instead: store families in a list of unique indexes.
  std::vector<std::unique_ptr<MetricFamily>> storage;

  const auto family_for = [&](const std::string& name) -> MetricFamily* {
    const auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    storage.push_back(std::make_unique<MetricFamily>());
    storage.back()->name = name;
    storage.back()->type = MetricType::kGauge;  // untyped default
    by_name[name] = storage.back().get();
    return storage.back().get();
  };

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line);
      std::string hash, keyword, name;
      hs >> hash >> keyword >> name;
      if (keyword == "HELP") {
        std::string rest;
        std::getline(hs, rest);
        const std::size_t r0 = rest.find_first_not_of(" \t");
        family_for(name)->help =
            r0 == std::string::npos ? "" : rest.substr(r0);
      } else if (keyword == "TYPE") {
        std::string type_name;
        hs >> type_name;
        MetricFamily* f = family_for(name);
        if (!f->metrics.empty()) {
          *error = "TYPE for " + name + " declared after its samples";
          return false;
        }
        if (type_name == "counter") {
          f->type = MetricType::kCounter;
        } else if (type_name == "gauge") {
          f->type = MetricType::kGauge;
        } else if (type_name == "histogram") {
          f->type = MetricType::kHistogram;
          histograms[name] = f;
        } else {
          *error = "unknown TYPE '" + type_name + "' for " + name;
          return false;
        }
      }
      continue;
    }

    ParsedSample sample;
    if (!ParseSampleLine(line, &sample, error)) return false;
    SeriesKind kind;
    const std::string fname = FamilyNameOf(sample.name, histograms, &kind);
    MetricFamily* f = family_for(fname);

    if (f->type == MetricType::kHistogram) {
      // A histogram family carries one Metric per NON-le label set
      // (nec_hop_latency_seconds{hop="reply",...} and {hop="shard_queue",
      // ...} are distinct surfaces); find-or-create the matching one
      // instead of collapsing every sample into metrics[0].
      std::string le_text;
      bool has_le = false;
      std::vector<std::pair<std::string, std::string>> base_labels;
      for (auto& [k, v] : sample.labels) {
        if (k == "le" && kind == SeriesKind::kBucket) {
          le_text = v;
          has_le = true;
        } else {
          base_labels.emplace_back(std::move(k), std::move(v));
        }
      }
      Metric* metric = nullptr;
      for (Metric& existing : f->metrics) {
        if (existing.labels == base_labels) {
          metric = &existing;
          break;
        }
      }
      if (metric == nullptr) {
        f->metrics.push_back(Metric{});
        f->metrics.back().labels = base_labels;
        metric = &f->metrics.back();
      }
      HistogramData& h = metric->histogram;
      switch (kind) {
        case SeriesKind::kBucket: {
          if (!has_le) {
            *error = fname + "_bucket without an le label";
            return false;
          }
          const double le =
              le_text == "+Inf" ? std::numeric_limits<double>::infinity()
                                : std::strtod(le_text.c_str(), nullptr);
          const std::uint64_t c =
              static_cast<std::uint64_t>(sample.value);
          if (!h.cumulative.empty() && c < h.cumulative.back()) {
            *error = fname + " bucket counts are not cumulative";
            return false;
          }
          if (!h.upper_bounds.empty() && le <= h.upper_bounds.back()) {
            *error = fname + " bucket bounds are not increasing";
            return false;
          }
          h.upper_bounds.push_back(le);
          h.cumulative.push_back(c);
          break;
        }
        case SeriesKind::kSum:
          h.sum = sample.value;
          break;
        case SeriesKind::kCount:
          h.count = static_cast<std::uint64_t>(sample.value);
          break;
        case SeriesKind::kPlain:
          *error = "bare sample " + sample.name + " for histogram " + fname;
          return false;
      }
      continue;
    }

    Metric m;
    m.labels = std::move(sample.labels);
    m.value = sample.value;
    f->metrics.push_back(std::move(m));
  }

  // Histogram post-lint, per label set: +Inf present and equal to count.
  // A histogram family with ZERO samples is legal exposition (a TYPE line
  // with nothing recorded yet — fleet merges scrape such families all the
  // time), so an empty metrics vector passes.
  for (const auto& [name, f] : histograms) {
    for (Metric& metric : f->metrics) {
      HistogramData& h = metric.histogram;
      if (h.upper_bounds.empty() ||
          !std::isinf(h.upper_bounds.back())) {
        *error = "histogram " + name + " lacks an le=\"+Inf\" bucket";
        return false;
      }
      if (h.cumulative.back() != h.count) {
        *error = "histogram " + name + " +Inf bucket != _count";
        return false;
      }
      // Drop the +Inf entry from the parsed surface: HistogramData models
      // it implicitly via `count`, matching what the renderer emits.
      h.upper_bounds.pop_back();
      h.cumulative.pop_back();
    }
  }

  families->reserve(storage.size());
  for (auto& f : storage) families->push_back(std::move(*f));
  return true;
}

}  // namespace nec::obs
