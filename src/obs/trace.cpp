#include "obs/trace.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

namespace nec::obs {
namespace {

/// splitmix64 finalizer, for the per-process flow-id salt.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// High-32-bit salt mixed from the pid and the process start instant, so
/// two shards booted on the same host (or the same shard restarted) mint
/// disjoint flow-id spaces. Bit 32 is forced on: a salted id is never 0
/// and never collides with a pre-salt id of another process whose low
/// counter happens to match.
std::uint64_t FlowSalt() {
  static const std::uint64_t salt = [] {
    std::uint64_t x = static_cast<std::uint64_t>(::getpid());
    x ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    x ^= static_cast<std::uint64_t>(
             std::chrono::system_clock::now().time_since_epoch().count())
         << 17;
    return (Mix64(x) | 1ull) << 32;
  }();
  return salt;
}

/// Registry of every thread's ring. Rings are owned here, not by the
/// threads, so events of an exited worker survive until export.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<internal::ThreadRing>> rings;
  std::size_t ring_capacity = TraceRecorder::kDefaultRingCapacity;
  std::uint32_t next_tid = 0;
};

Registry& GetRegistry() {
  static Registry* r = new Registry;  // leaked: outlives exiting threads
  return *r;
}

}  // namespace

std::uint64_t TraceNowNs() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

namespace internal {

struct ThreadRing {
  std::vector<TraceEvent> events;  ///< fixed capacity once registered
  std::size_t head = 0;            ///< next write index
  std::uint64_t recorded = 0;      ///< lifetime writes (drops = rec - held)
  std::uint32_t tid = 0;
  const char* thread_name = nullptr;
  /// Snapshot lock: taken by the OWNER per event write and by an exporter
  /// per ring copy. Owner/exporter is the only possible contention —
  /// recording threads never touch each other's rings — so the exchange
  /// is uncontended in steady state and recording stays effectively
  /// wait-free; an exporter holds it only for one memcpy-sized copy.
  mutable std::atomic<bool> busy{false};

  void Lock() const {
    while (busy.exchange(true, std::memory_order_acquire)) {
      // Spin: the holder is mid-copy or mid-write, both short.
    }
  }
  void Unlock() const { busy.store(false, std::memory_order_release); }

  void Write(const TraceEvent& ev) {
    Lock();
    events[head] = ev;
    head = head + 1 == events.size() ? 0 : head + 1;
    ++recorded;
    Unlock();
  }
  /// Caller holds the snapshot lock.
  std::uint64_t held() const {
    return recorded < events.size() ? recorded : events.size();
  }
};

}  // namespace internal

using internal::ThreadRing;

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

std::uint64_t TraceRecorder::NextFlowId() {
  const std::uint64_t seq =
      next_flow_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  return FlowSalt() | (seq & 0xFFFFFFFFull);
}

internal::ThreadRing* TraceRecorder::RingForThisThread() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    Registry& reg = GetRegistry();
    std::lock_guard lock(reg.mu);
    auto owned = std::make_unique<ThreadRing>();
    owned->tid = reg.next_tid++;
    owned->events.resize(reg.ring_capacity);
    ring = owned.get();
    reg.rings.push_back(std::move(owned));
  }
  return ring;
}

void TraceRecorder::Enable(std::size_t ring_capacity) {
  Registry& reg = GetRegistry();
  {
    std::lock_guard lock(reg.mu);
    if (ring_capacity == 0) ring_capacity = 1;
    reg.ring_capacity = ring_capacity;
    for (auto& ring : reg.rings) {
      ring->Lock();
      ring->events.assign(ring_capacity, TraceEvent{});
      ring->head = 0;
      ring->recorded = 0;
      ring->Unlock();
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::RecordSpan(const char* name, const char* category,
                               std::uint64_t start_ns, std::uint64_t dur_ns,
                               std::uint64_t flow_id, std::uint64_t arg) {
  if (!enabled()) return;
  ThreadRing* ring = RingForThisThread();
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.flow_id = flow_id;
  ev.arg = arg;
  ev.tid = ring->tid;
  ev.kind = TraceEventKind::kSpan;
  ring->Write(ev);
}

void TraceRecorder::RecordInstant(const char* name, const char* category,
                                  std::uint64_t arg) {
  if (!enabled()) return;
  ThreadRing* ring = RingForThisThread();
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.start_ns = TraceNowNs();
  ev.arg = arg;
  ev.tid = ring->tid;
  ev.kind = TraceEventKind::kInstant;
  ring->Write(ev);
}

void TraceRecorder::RecordFlow(TraceEventKind kind, const char* name,
                               std::uint64_t flow_id) {
  if (!enabled() || flow_id == 0) return;
  ThreadRing* ring = RingForThisThread();
  TraceEvent ev;
  ev.name = name;
  ev.category = "flow";
  ev.start_ns = TraceNowNs();
  ev.flow_id = flow_id;
  ev.tid = ring->tid;
  ev.kind = kind;
  ring->Write(ev);
}

void TraceRecorder::SetThreadName(const char* name) {
  Global().RingForThisThread()->thread_name = name;
}

void TraceRecorder::Clear() {
  Registry& reg = GetRegistry();
  std::lock_guard lock(reg.mu);
  for (auto& ring : reg.rings) {
    ring->Lock();
    ring->head = 0;
    ring->recorded = 0;
    ring->Unlock();
  }
}

std::uint64_t TraceRecorder::events_recorded() const {
  Registry& reg = GetRegistry();
  std::lock_guard lock(reg.mu);
  std::uint64_t held = 0;
  for (const auto& ring : reg.rings) {
    ring->Lock();
    held += ring->held();
    ring->Unlock();
  }
  return held;
}

std::uint64_t TraceRecorder::events_dropped() const {
  Registry& reg = GetRegistry();
  std::lock_guard lock(reg.mu);
  std::uint64_t dropped = 0;
  for (const auto& ring : reg.rings) {
    ring->Lock();
    dropped += ring->recorded - ring->held();
    ring->Unlock();
  }
  return dropped;
}

namespace {

/// JSON string escaping for the few dynamic strings a trace contains
/// (thread names are literals today, but escaping is cheap insurance).
void AppendJsonEscaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void WriteEventJson(std::ostream& os, const TraceEvent& ev, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  const double ts_us = static_cast<double>(ev.start_ns) / 1000.0;
  os << "{\"name\":\"";
  AppendJsonEscaped(os, ev.name != nullptr ? ev.name : "?");
  os << "\",\"cat\":\"";
  AppendJsonEscaped(os, ev.category != nullptr ? ev.category : "nec");
  os << "\",\"pid\":1,\"tid\":" << ev.tid;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ts_us);
  os << ",\"ts\":" << buf;
  switch (ev.kind) {
    case TraceEventKind::kSpan: {
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      os << ",\"ph\":\"X\",\"dur\":" << buf;
      break;
    }
    case TraceEventKind::kInstant:
      os << ",\"ph\":\"i\",\"s\":\"t\"";
      break;
    case TraceEventKind::kFlowBegin:
      os << ",\"ph\":\"s\",\"id\":" << ev.flow_id;
      break;
    case TraceEventKind::kFlowEnd:
      os << ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << ev.flow_id;
      break;
  }
  if (ev.kind == TraceEventKind::kSpan && ev.flow_id != 0) {
    // Also emit the span's flow id as an arg so the linkage survives
    // viewers that collapse flow arrows.
    os << ",\"id\":" << ev.flow_id;
  }
  if (ev.arg != TraceEvent::kNoArg) {
    os << ",\"args\":{\"v\":" << ev.arg << "}";
  }
  os << "}";
}

}  // namespace

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  Registry& reg = GetRegistry();
  std::lock_guard lock(reg.mu);
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& ring : reg.rings) {
    if (ring->thread_name == nullptr) continue;
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << ring->tid << ",\"args\":{\"name\":\"";
    AppendJsonEscaped(os, ring->thread_name);
    os << "\"}}";
  }
  // Copy each ring under its snapshot lock (bounded hold: one vector
  // copy), then serialize outside it so a recording owner never spins
  // behind JSON formatting.
  std::vector<TraceEvent> snapshot;
  for (const auto& ring : reg.rings) {
    snapshot.clear();
    ring->Lock();
    const std::uint64_t held = ring->held();
    // Oldest-first: a wrapped ring starts at head (the next overwrite
    // victim is the oldest event).
    const std::size_t cap = ring->events.size();
    const std::size_t start = ring->recorded <= cap ? 0 : ring->head;
    snapshot.reserve(held);
    for (std::uint64_t k = 0; k < held; ++k) {
      snapshot.push_back(ring->events[(start + k) % cap]);
    }
    ring->Unlock();
    for (const TraceEvent& ev : snapshot) {
      WriteEventJson(os, ev, &first);
    }
  }
  os << "\n]}\n";
}

std::string TraceRecorder::ChromeTraceJson() const {
  std::ostringstream os;
  WriteChromeTrace(os);
  return os.str();
}

}  // namespace nec::obs
