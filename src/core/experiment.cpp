#include "core/experiment.h"

#include <algorithm>
#include <cmath>

#include "audio/level.h"
#include "common/check.h"

namespace nec::core {

ScenarioRunner::ScenarioRunner(channel::SceneOptions scene_options)
    : scene_(scene_options) {}

audio::Waveform ScenarioRunner::StemAt(const audio::Waveform& stem,
                                       double spl_db, double distance_m,
                                       bool remove_delay) const {
  audio::Waveform leveled = stem;
  const float rms = leveled.Rms();
  if (rms > 0.0f) {
    leveled.Scale(static_cast<float>(
                      audio::SplScale(scene_.options().full_scale_db_spl)
                          .SplToRms(spl_db)) /
                  rms);
  }
  channel::AirChannel air({.distance_m = distance_m,
                           .ref_distance_m = scene_.options().ref_distance_m,
                           .absorption_ref_hz = 1000.0});
  if (remove_delay) {
    leveled.Scale(static_cast<float>(air.Gain()));
    return leveled;
  }
  return air.Propagate(leveled);
}

double ScenarioRunner::CalibrateEmitSpl(const audio::Waveform& modulated,
                                        const ScenarioSetup& setup,
                                        double target_rms) const {
  constexpr double kProbeSpl = 100.0;
  channel::MicrophoneModel mic(setup.device,
                               {.noise_seed = setup.noise_seed + 77});
  const audio::Waveform probe = scene_.Record(
      {}, {{.wave = &modulated,
            .distance_m = setup.nec_distance_m,
            .spl_at_ref_db = kProbeSpl,
            .carrier_hz = setup.carrier_hz}},
      mic);
  // Separate the demodulated content from the mic's own noise floor.
  const double noise_rms = audio::SplScale().SplToRms(
      setup.device.noise_floor_db_spl);
  const double probe_rms = probe.Rms();
  const double demod_rms = std::sqrt(std::max(
      probe_rms * probe_rms - noise_rms * noise_rms, 1e-20));
  // Demodulated level ~ (emit amplitude)^2 → half the dB distance.
  const double spl =
      kProbeSpl + 10.0 * std::log10(std::max(target_rms, 1e-12) / demod_rms);
  return std::clamp(spl, 60.0, 135.0);
}

ScenarioResult ScenarioRunner::Run(NecPipeline& pipeline,
                                   const synth::MixInstance& inst,
                                   const ScenarioSetup& setup) const {
  NEC_CHECK_MSG(pipeline.enrolled(), "enroll the pipeline before Run");
  [[maybe_unused]] const double c = 343.0;
  ScenarioResult result;

  // --- What the worn NEC monitor hears: Bob at ~5 cm, background farther.
  // Delays are removed here (they are re-introduced physically below).
  audio::Waveform bob_at_monitor = StemAt(inst.target, setup.bob_spl_db,
                                          setup.bob_to_nec_m,
                                          /*remove_delay=*/true);
  audio::Waveform bk_at_monitor = StemAt(inst.background, setup.bk_spl_db,
                                         setup.bk_to_nec_m,
                                         /*remove_delay=*/true);
  result.monitor_mix = audio::Mix(bob_at_monitor, bk_at_monitor);

  // --- Ideal stems at the recorder (aligned with the recordings below,
  // which carry the same physical propagation delays).
  result.bob_at_recorder = StemAt(inst.target, setup.bob_spl_db,
                                  setup.bob_distance_m);
  result.bk_at_recorder = StemAt(inst.background, setup.bk_spl_db,
                                 setup.bk_distance_m);

  // --- NEC generates and modulates the shadow from the monitored mix.
  result.shadow_baseband =
      pipeline.GenerateShadow(result.monitor_mix, setup.selector_kind);
  channel::ModulationConfig mod = pipeline.options().modulation;
  mod.carrier_hz = setup.carrier_hz;
  const audio::Waveform modulated =
      channel::ModulateAm(result.shadow_baseband, mod);

  // --- Timing (Eq. 10). The shadow's content carries no baked-in delay
  // (monitor stems are delay-free, t_AB ≈ 0); it leaves the emitter after
  // t_p and the scene adds its nec_distance propagation, while Bob's direct
  // sound gets bob_distance propagation — so the arrival offset
  // t_p + (t_BC - t_AC) emerges physically. With the default equidistant
  // geometry and t_p = 0 this reproduces the paper's synchronized
  // benchmark assumption.

  const double audible_extra_s = 0.0;
  const double ultra_offset_s = setup.processing_latency_s;

  // --- Emitter power: the shadow cancels Bob when the demodulated level
  // at the recorder equals the shadow's level rescaled from monitor scale
  // to recorder scale (Bob's amplitude ratio between the two positions).
  const float bob_rms_monitor = bob_at_monitor.Rms();
  const float bob_rms_recorder = result.bob_at_recorder.Rms();
  const double scale_ratio =
      bob_rms_monitor > 0 ? bob_rms_recorder / bob_rms_monitor : 1.0;
  const double target_rms = static_cast<double>(result.shadow_baseband.Rms()) *
                            scale_ratio * setup.shadow_gain;
  result.emit_spl_db =
      setup.emit_spl_override.has_value()
          ? *setup.emit_spl_override
          : CalibrateEmitSpl(modulated, setup, target_rms);
  if (setup.emit_spl_cap.has_value()) {
    result.emit_spl_db = std::min(result.emit_spl_db, *setup.emit_spl_cap);
  }

  // --- Record the scene with and without NEC.
  channel::MicrophoneModel mic(setup.device,
                               {.noise_seed = setup.noise_seed});
  const std::vector<channel::AudibleSource> audible = {
      {.wave = &inst.target,
       .distance_m = setup.bob_distance_m,
       .spl_at_ref_db = setup.bob_spl_db,
       .start_offset_s = audible_extra_s},
      {.wave = &inst.background,
       .distance_m = setup.bk_distance_m,
       .spl_at_ref_db = setup.bk_spl_db,
       .start_offset_s = audible_extra_s},
  };
  result.recorded_without_nec = scene_.Record(audible, {}, mic);
  result.recorded_with_nec = scene_.Record(
      audible,
      {{.wave = &modulated,
        .distance_m = setup.nec_distance_m,
        .spl_at_ref_db = result.emit_spl_db,
        .carrier_hz = setup.carrier_hz,
        .start_offset_s = ultra_offset_s}},
      mic);

  // Align the ideal stems with the (possibly shifted) recordings.
  if (audible_extra_s > 0.0) {
    const std::size_t shift = static_cast<std::size_t>(
        audible_extra_s * result.bob_at_recorder.sample_rate());
    audio::Waveform bob_shift(result.bob_at_recorder.sample_rate(), shift);
    bob_shift.Append(result.bob_at_recorder);
    result.bob_at_recorder = std::move(bob_shift);
    audio::Waveform bk_shift(result.bk_at_recorder.sample_rate(), shift);
    bk_shift.Append(result.bk_at_recorder);
    result.bk_at_recorder = std::move(bk_shift);
  }
  return result;
}

}  // namespace nec::core
