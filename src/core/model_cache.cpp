#include "core/model_cache.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "obs/log.h"

namespace nec::core {

std::string DefaultCacheDir() {
  const char* env = std::getenv("NEC_CACHE_DIR");
  std::filesystem::path dir =
      env != nullptr && *env != '\0'
          ? std::filesystem::path(env)
          : std::filesystem::temp_directory_path() / "nec_cache";
  std::filesystem::create_directories(dir);
  return dir.string();
}

namespace {

std::string CacheKey(const NecConfig& c, const TrainerOptions& o) {
  std::ostringstream os;
  os << "selector_v2_sr" << c.sample_rate << "_fft" << c.stft.fft_size << "_w"
     << c.stft.win_length << "_h" << c.stft.hop_length << "_c"
     << c.conv_channels << "_fc" << c.fc_hidden << "_e" << c.embedding_dim
     << "_steps" << o.steps << "_spk" << o.num_speakers << "_ips"
     << o.instances_per_speaker << "_bs" << o.batch_size << "_crop"
     << static_cast<int>(o.crop_s * 1000) << "_lr"
     << static_cast<int>(o.lr * 1e6) << "_seed" << o.seed << ".necm";
  return os.str();
}

}  // namespace

Selector GetOrTrainSelector(const NecConfig& config,
                            const encoder::SpeakerEncoder& encoder,
                            const TrainerOptions& options,
                            const std::string& cache_dir, bool verbose) {
  const std::string dir = cache_dir.empty() ? DefaultCacheDir() : cache_dir;
  const std::string path =
      (std::filesystem::path(dir) / CacheKey(config, options)).string();

  // verbose keeps its historical meaning — progress at the default log
  // level — while quiet runs still leave a debug-level breadcrumb.
  const obs::LogLevel level =
      verbose ? obs::LogLevel::kInfo : obs::LogLevel::kDebug;
  if (std::filesystem::exists(path)) {
    NEC_LOG("model_cache", level, "loading cached selector: %s",
            path.c_str());
    return Selector::Load(path);
  }

  NEC_LOG("model_cache", level,
          "training selector (%zu steps, one-time; cached to %s)",
          options.steps, path.c_str());
  TrainerOptions opt = options;
  opt.verbose = verbose;
  Selector selector(config, /*init_seed=*/options.seed + 1);
  SelectorTrainer trainer(config, encoder, opt);
  const float zero_loss = trainer.ZeroShadowLoss();
  const float final_loss = trainer.Train(selector);
  NEC_LOG("model_cache", level,
          "training done: loss %.5f (zero-shadow baseline %.5f)",
          static_cast<double>(final_loss), static_cast<double>(zero_loss));
  selector.Save(path);
  return selector;
}

NecPipeline StandardModel::MakePipeline(PipelineOptions options) const {
  return NecPipeline(std::shared_ptr<const Selector>(selector), encoder,
                     options);
}

StandardModel StandardModel::Get(bool verbose) {
  StandardModel m;
  m.config = NecConfig::Fast();
  m.encoder = std::make_shared<encoder::LasEncoder>(m.config.embedding_dim);
  m.selector = std::make_shared<Selector>(GetOrTrainSelector(
      m.config, *m.encoder, TrainerOptions{}, "", verbose));
  return m;
}

}  // namespace nec::core
