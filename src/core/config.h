// Spectrogram / selector configuration presets.
//
// The paper's configuration (§IV-B1): 16 kHz audio, 3 s clips, FFT 1200
// (601 bins, 13.31 Hz resolution), window 400 (25 ms), hop 160 (10 ms,
// 15 ms overlap), 299 frames. Training a 601-bin selector is hours of CPU
// work on this machine, so the default experiment preset ("Fast") keeps the
// same 16 kHz rate and 25 ms/10 ms framing structure at reduced frequency
// resolution; the architecture and training objective are identical and
// Paper() remains fully supported for forward-pass and latency studies.
#pragma once

#include <cstddef>

#include "dsp/stft.h"

namespace nec::core {

struct NecConfig {
  int sample_rate = 16000;
  dsp::StftConfig stft;
  /// Selector width parameters (the paper uses 64 conv filters; Fast
  /// scales down proportionally to the reduced bin count).
  std::size_t conv_channels = 16;
  std::size_t fc_hidden = 128;
  std::size_t embedding_dim = 40;  ///< must match the encoder in use

  std::size_t num_bins() const { return stft.num_bins(); }

  /// The paper's exact spectrogram/selector dimensions.
  static NecConfig Paper() {
    NecConfig c;
    c.stft = {.fft_size = 1200, .win_length = 400, .hop_length = 160};
    c.conv_channels = 64;
    c.fc_hidden = 256;
    return c;
  }

  /// Reduced-resolution preset used by the CPU training/eval pipeline:
  /// FFT 256 → 129 bins, same 16 kHz rate and hop structure.
  static NecConfig Fast() {
    NecConfig c;
    c.stft = {.fft_size = 256, .win_length = 256, .hop_length = 128};
    c.conv_channels = 16;
    c.fc_hidden = 128;
    return c;
  }
};

}  // namespace nec::core
