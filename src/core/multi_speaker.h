// Multi-speaker protection — the paper's §VII future work.
//
// "It is a challenge to protect a conversation that involves multiple
//  speakers ... We failed to train a Selector model that is applicable to
//  multiple target speakers with the current system architecture. In
//  future work, we will figure out how to integrate the multiple
//  speakers' embeddings."
//
// This module implements the two integration strategies that sketch
// suggests, reusing the *single-speaker* selector unchanged:
//
//   * kMergedEmbedding — average the enrolled d-vectors into one pseudo-
//     speaker embedding and run the selector once. Cheap; degrades when
//     the targets' timbres are far apart (the merged vector points at
//     nobody).
//   * kIterativeResidual — run the selector once per enrolled target,
//     each pass on the residual spectrogram left by the previous passes,
//     and emit the union shadow. N× the compute, but each pass sees a
//     well-formed single-target problem.
//
// bench_ext_multispeaker quantifies both against the single-target
// baseline.
#pragma once

#include <span>
#include <vector>

#include "audio/waveform.h"
#include "core/pipeline.h"

namespace nec::core {

enum class MultiStrategy {
  kMergedEmbedding,
  kIterativeResidual,
};

class MultiSpeakerProtector {
 public:
  /// Shares the pipeline's trained selector and encoder (borrowed const —
  /// only its immutable model is used). The pipeline itself does not need
  /// to be enrolled.
  explicit MultiSpeakerProtector(const NecPipeline& pipeline);

  /// Enrolls one protected participant from reference clips. Returns the
  /// target's index.
  std::size_t EnrollTarget(std::span<const audio::Waveform> references);

  std::size_t num_targets() const { return dvectors_.size(); }

  /// Generates a baseband shadow canceling *all* enrolled targets.
  audio::Waveform GenerateShadow(const audio::Waveform& mixed,
                                 MultiStrategy strategy);

 private:
  const NecPipeline& pipeline_;
  std::vector<std::vector<float>> dvectors_;
};

}  // namespace nec::core
