// Scenario runner: wires a NecPipeline into the physical channel simulation
// to produce "what Alice's phone records" with and without NEC.
//
// Geometry (Fig. 12, Eq. 10): Bob wears the NEC device, so the monitor
// hears Bob at ~5 cm (t_AB ≈ 0) — this head start is what makes the
// shadow's arrival offset ≈ t_p + (t_BC - t_AC) ≈ t_p when the emitter and
// Bob are equidistant from the recorder. The paper's system benchmark
// assumes simultaneous arrival ("the effectiveness of wave superposition is
// guaranteed for testing scenarios, as mixed audio and shadow sound arrive
// simultaneously at the microphone"), which corresponds to
// processing_latency_s = 0; the Fig. 9 offset study sweeps it.
//
// Ground-truth stems as heard at the recorder are returned for
// SDR/SONR/WER scoring.
#pragma once

#include <cstdint>
#include <optional>

#include "audio/waveform.h"
#include "channel/device_profile.h"
#include "channel/scene.h"
#include "core/pipeline.h"
#include "synth/dataset.h"

namespace nec::core {

struct ScenarioSetup {
  double bob_distance_m = 1.0;    ///< target speaker → recorder
  double bk_distance_m = 1.0;     ///< background source → recorder
  double nec_distance_m = 1.0;    ///< ultrasonic emitter → recorder
  double bob_to_nec_m = 0.05;     ///< Bob → NEC monitor (worn: 5 cm)
  double bk_to_nec_m = 1.0;       ///< background → NEC monitor
  double bob_spl_db = 77.0;       ///< at 5 cm (paper's calibration)
  double bk_spl_db = 74.0;
  channel::DeviceProfile device = channel::ReferenceRecorder();
  double carrier_hz = 27000.0;
  /// System processing delay t_p of Eq. 10. 0 reproduces the paper's
  /// synchronized benchmark assumption; Table II measures ~15 ms on a PC.
  double processing_latency_s = 0.0;
  /// Shadow strength relative to the exact-cancellation level. The paper
  /// finds a power coefficient a <= 0.6 favorable (§IV-C2), i.e. the
  /// shadow over-powered by ~1/0.6 ≈ 1.67x; we default to that regime.
  double shadow_gain = 1.6;
  SelectorKind selector_kind = SelectorKind::kNeural;
  /// When set, skips the calibration probe and emits at this SPL.
  std::optional<double> emit_spl_override;
  /// When set, caps the *calibrated* emitter power — the physical limit
  /// of the ultrasonic amplifier. Beyond the distance where calibration
  /// wants more than this, cancellation starts to fall short (the
  /// mechanism behind Table III's max distances).
  std::optional<double> emit_spl_cap;
  std::uint64_t noise_seed = 1;
};

struct ScenarioResult {
  audio::Waveform recorded_with_nec;     ///< 16 kHz recorder output
  audio::Waveform recorded_without_nec;  ///< same scene, NEC off
  audio::Waveform bob_at_recorder;       ///< ideal target stem at recorder
  audio::Waveform bk_at_recorder;        ///< ideal background stem
  audio::Waveform monitor_mix;           ///< what NEC's monitor heard
  audio::Waveform shadow_baseband;       ///< generated shadow (16 kHz)
  double emit_spl_db = 0.0;              ///< calibrated emitter power
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(channel::SceneOptions scene_options = {});

  /// Runs one instance through the full physical pipeline.
  ScenarioResult Run(NecPipeline& pipeline, const synth::MixInstance& inst,
                     const ScenarioSetup& setup) const;

  /// Probes the scene to find the emitter SPL at which the demodulated
  /// shadow reaches `target_rms` at the recorder (demodulated level scales
  /// with the square of the emitted amplitude; one probe suffices).
  double CalibrateEmitSpl(const audio::Waveform& modulated,
                          const ScenarioSetup& setup,
                          double target_rms) const;

  /// Ideal (pre-microphone) rendering of one stem: SPL leveling + 16 kHz
  /// air propagation to `distance_m`, with the propagation delay removed
  /// when `remove_delay` (so stems from different positions stay aligned).
  audio::Waveform StemAt(const audio::Waveform& stem, double spl_db,
                         double distance_m, bool remove_delay = false) const;

  const channel::SceneSimulator& scene() const { return scene_; }

 private:
  channel::SceneSimulator scene_;
};

}  // namespace nec::core
