// Carrier frequency auto-selection (§VI-D "Diversity of Hardware
// Dependence").
//
// "The variance of the non-linearity for the hardware ... can influence
//  the optimal selection of the modulation parameters. ... All the tested
//  smartphones have a range of acceptable frequency settings."
//
// In deployment, NEC cannot know the eavesdropper's exact device; the
// paper tunes the carrier per device by measurement. CarrierProbe
// automates that measurement against a device model: it plays a modulated
// probe tone across candidate carriers, measures the demodulated baseband
// level at the recorder, and reports the response curve, best carrier and
// acceptance band — exactly what Table III's columns summarize.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/device_profile.h"

namespace nec::core {

struct CarrierProbeOptions {
  double sweep_lo_hz = 21000.0;
  double sweep_hi_hz = 33000.0;
  double step_hz = 500.0;
  double probe_distance_m = 0.5;
  double probe_spl_db = 110.0;
  double probe_tone_hz = 800.0;
  double probe_duration_s = 0.4;
  /// Band edges are where the response falls this many dB below the peak.
  double band_edge_db = 10.0;
  std::uint64_t noise_seed = 5;
};

struct CarrierResponse {
  std::vector<double> carrier_hz;   ///< sweep grid
  std::vector<double> demod_level;  ///< recorded baseband RMS per carrier
  double best_carrier_hz = 0.0;
  double band_lo_hz = 0.0;  ///< acceptance band (within band_edge_db)
  double band_hi_hz = 0.0;
};

/// Sweeps the carrier against `device` and returns its response curve.
CarrierResponse ProbeCarrierResponse(const channel::DeviceProfile& device,
                                     const CarrierProbeOptions& options = {});

/// Convenience: the best carrier for one device.
double SelectBestCarrier(const channel::DeviceProfile& device,
                         const CarrierProbeOptions& options = {});

/// The carrier maximizing the *minimum* response across several devices —
/// the Table IV "affect multiple recorders simultaneously" tuning knob.
double SelectCarrierForAll(
    const std::vector<channel::DeviceProfile>& devices,
    const CarrierProbeOptions& options = {});

}  // namespace nec::core
