// Disk cache for trained selector models.
//
// Training the selector takes minutes of single-core CPU; every bench and
// example that needs a trained model goes through GetOrTrainSelector so
// one training run is shared across all binaries. The cache key encodes
// the NecConfig and TrainerOptions, so changing either retrains.
#pragma once

#include <string>

#include "core/pipeline.h"
#include "core/selector.h"
#include "core/trainer.h"
#include "encoder/encoder.h"

namespace nec::core {

/// $NEC_CACHE_DIR if set, else <temp>/nec_cache. Created if missing.
std::string DefaultCacheDir();

/// Loads the cached selector for (config, options) or trains and caches
/// one. `verbose` prints training progress to stdout.
Selector GetOrTrainSelector(const NecConfig& config,
                            const encoder::SpeakerEncoder& encoder,
                            const TrainerOptions& options,
                            const std::string& cache_dir = "",
                            bool verbose = false);

/// The standard experiment bundle: Fast() config + LasEncoder(40) + the
/// default TrainerOptions. All figure/table benches share this model.
struct StandardModel {
  NecConfig config;
  std::shared_ptr<encoder::SpeakerEncoder> encoder;
  /// Never null after Get().
  std::shared_ptr<Selector> selector;

  static StandardModel Get(bool verbose = false);

  /// Builds a pipeline that *shares* this model's selector and encoder
  /// (no weight copy). Call repeatedly to fan out concurrent runtime
  /// sessions over one trained weight set.
  NecPipeline MakePipeline(PipelineOptions options = {}) const;
};

}  // namespace nec::core
